// Ephemeris sweep: drive the batch propagation kernel directly.
//
// Compiles an Iridium-like shell into a FleetEphemeris once, then walks a
// full orbital period with a warm-started TimeSweep — the pattern every
// time-stepped experiment (coverage curves, temporal routing, handover
// timelines) uses under the hood. Prints a per-sample visibility summary
// for one ground user.
//
//   $ ./ephemeris_sweep
#include <cstdio>
#include <vector>

#include <openspace/geo/units.hpp>
#include <openspace/orbit/propagation_batch.hpp>
#include <openspace/orbit/visibility.hpp>
#include <openspace/orbit/walker.hpp>

int main() {
  using namespace openspace;

  const auto elements = makeWalkerStar(iridiumConfig());
  const FleetEphemeris fleet(elements);
  std::printf("compiled %zu satellites into a FleetEphemeris\n\n",
              fleet.size());

  const Geodetic user = Geodetic::fromDegrees(64.1466, -21.9426);  // Reykjavik
  const double maskRad = deg2rad(10.0);
  const double periodS = elements.front().periodS();
  const double stepS = periodS / 12.0;

  TimeSweep sweep(fleet);
  std::vector<Vec3> eci, ecef;
  std::printf("%-10s %-10s %-14s\n", "t_min", "visible", "nearest_km");
  for (int s = 0; s <= 12; ++s) {
    const double t = s * stepS;
    sweep.advance(t, eci, ecef);
    const Vec3 userEcef = geodeticToEcef(user);
    int visible = 0;
    double nearestM = -1.0;
    for (std::size_t i = 0; i < eci.size(); ++i) {
      if (elevationFrom(eci[i], user, t) < maskRad) continue;
      ++visible;
      const double rangeM = userEcef.distanceTo(ecef[i]);
      if (nearestM < 0.0 || rangeM < nearestM) nearestM = rangeM;
    }
    if (visible > 0) {
      std::printf("%-10.1f %-10d %-14.0f\n", t / 60.0, visible,
                  nearestM / 1000.0);
    } else {
      std::printf("%-10.1f %-10d %-14s\n", t / 60.0, visible, "-");
    }
  }

  std::printf("\none %zu-satellite step costs a few microseconds; the fleet\n"
              "compile above is paid once per constellation, not per step\n",
              fleet.size());
  return 0;
}
