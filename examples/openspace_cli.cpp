// openspace_cli — a small command-line front end over the library, the kind
// of tool an OpenSpace participant would script against.
//
//   $ ./openspace_cli generate 66 6 780 86.4 > fleet.txt
//   $ ./openspace_cli coverage fleet.txt 10
//   $ ./openspace_cli route fleet.txt 40.44 -79.99 48.86 2.35
//   $ ./openspace_cli flood fleet.txt
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include <openspace/coverage/coverage.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/io/ephemeris_io.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/routing/linkstate.hpp>
#include <openspace/topology/builder.hpp>

namespace {

using namespace openspace;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  openspace_cli generate <sats> <planes> <alt_km> <incl_deg>\n"
               "      emit a Walker Star ephemeris file on stdout\n"
               "  openspace_cli coverage <file> <mask_deg>\n"
               "      Monte-Carlo coverage of the fleet in <file>\n"
               "  openspace_cli route <file> <lat1> <lon1> <lat2> <lon2>\n"
               "      route between two ground sites over the fleet\n"
               "  openspace_cli flood <file>\n"
               "      LSA flood convergence over the fleet's ISL mesh\n");
  return 2;
}

EphemerisService loadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw NotFoundError("cannot open '" + path + "'");
  return loadEphemeris(in);
}

int cmdGenerate(int argc, char** argv) {
  if (argc != 6) return usage();
  WalkerConfig wc;
  wc.totalSatellites = std::atoi(argv[2]);
  wc.planes = std::atoi(argv[3]);
  wc.phasing = 1 % std::max(1, wc.planes);
  wc.altitudeM = km(std::atof(argv[4]));
  wc.inclinationRad = deg2rad(std::atof(argv[5]));
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(wc)) eph.publish(ProviderId{1}, el);
  saveEphemeris(eph, std::cout);
  return 0;
}

int cmdCoverage(int argc, char** argv) {
  if (argc != 4) return usage();
  const EphemerisService eph = loadFile(argv[2]);
  std::vector<OrbitalElements> sats;
  for (const SatelliteId sid : eph.satellites()) {
    sats.push_back(eph.record(sid).elements);
  }
  Rng rng(1);
  const auto cov = monteCarloCoverage(sats, 0.0, deg2rad(std::atof(argv[3])),
                                      20'000, rng);
  std::printf("satellites: %zu\ncoverage:   %.2f%%\n", sats.size(),
              100.0 * cov.coverageFraction);
  return 0;
}

int cmdRoute(int argc, char** argv) {
  if (argc != 7) return usage();
  const EphemerisService eph = loadFile(argv[2]);
  TopologyBuilder topo(eph);
  const NodeId a = topo.addUser(
      {"site-a", Geodetic::fromDegrees(std::atof(argv[3]), std::atof(argv[4])),
       ProviderId{1}});
  const NodeId b = topo.nodeOf(topo.addGroundStation(
      {"site-b", Geodetic::fromDegrees(std::atof(argv[5]), std::atof(argv[6])),
       ProviderId{2}}));
  SnapshotOptions opt;
  opt.wiring = IslWiring::NearestNeighbors;
  opt.nearestK = 4;
  opt.minElevationRad = deg2rad(10.0);
  const NetworkGraph g = topo.snapshot(0.0, opt);
  const Route r = shortestPath(g, a, b, latencyCost());
  if (!r.valid()) {
    std::printf("no path at t=0 (site out of coverage or mesh partitioned)\n");
    return 1;
  }
  std::printf("hops: %d\nlatency: %.2f ms\nbottleneck: %.1f Mbps\npath:", r.hops(),
              toMilliseconds(r.totalDelayS()), r.bottleneckBps / 1e6);
  for (const NodeId n : r.nodes) std::printf(" %s", g.node(n).name.c_str());
  std::printf("\n");
  return 0;
}

int cmdFlood(int argc, char** argv) {
  if (argc != 3) return usage();
  const EphemerisService eph = loadFile(argv[2]);
  TopologyBuilder topo(eph);
  SnapshotOptions opt;
  opt.wiring = IslWiring::NearestNeighbors;
  opt.nearestK = 4;
  const NetworkGraph g = topo.snapshot(0.0, opt);
  const auto sats = g.nodesOfKind(NodeKind::Satellite);
  if (sats.empty()) {
    std::printf("empty fleet\n");
    return 1;
  }
  const FloodReport rep = simulateLsaFlood(g, sats.front());
  std::printf("satellites reached: %d / %zu\nconvergence: %.1f ms\n"
              "messages: %d\n",
              rep.nodesReached, sats.size(),
              toMilliseconds(rep.convergenceTimeS), rep.messagesSent);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmdGenerate(argc, argv);
    if (cmd == "coverage") return cmdCoverage(argc, argv);
    if (cmd == "route") return cmdRoute(argc, argv);
    if (cmd == "flood") return cmdFlood(argc, argv);
  } catch (const openspace::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
