// Constellation planning: the decision tool a prospective OpenSpace
// provider runs before committing capital.
//
// Given a candidate fleet size and design, it reports: demand-weighted
// coverage (what customers experience), delta-v / propellant budgets for
// slot acquisition (the §3 "maneuvering satellites into the desired orbit"
// cost), total capex including licensing across example jurisdictions, and
// how the numbers change if the provider joins an OpenSpace coalition
// instead of going it alone.
//
//   $ ./constellation_planning
#include <cstdio>

#include <openspace/econ/capex.hpp>
#include <openspace/econ/incentives.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/maneuver.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/regulation/regime.hpp>
#include <openspace/sim/population.hpp>

int main() {
  using namespace openspace;

  // --- the candidate fleet ------------------------------------------------
  WalkerConfig wc;
  wc.totalSatellites = 18;
  wc.planes = 3;
  wc.phasing = 1;
  wc.altitudeM = km(780.0);
  wc.inclinationRad = deg2rad(53.0);
  const auto fleet = makeWalkerDelta(wc);
  std::printf("candidate fleet: %d satellites, %d planes, %.0f km, %.1f deg\n\n",
              wc.totalSatellites, wc.planes, wc.altitudeM / 1e3,
              rad2deg(wc.inclinationRad));

  // --- what customers would experience -------------------------------------
  const PopulationModel world = defaultWorldPopulation();
  Rng rng(7);
  const double demandCov =
      world.demandWeightedCoverage(fleet, 0.0, deg2rad(10.0), 4000, rng);
  std::printf("demand-weighted coverage (10 deg mask): %.1f%%\n",
              100.0 * demandCov);

  // --- maneuvering budget ---------------------------------------------------
  // Rideshare drops the spacecraft at 500 km; each must raise to 780 km and
  // phase into its slot (worst case: half a slot spacing of error).
  const double worstPhaseError =
      std::numbers::pi / (wc.totalSatellites / wc.planes);
  const SlotAcquisition acq =
      planSlotAcquisition(500e3, fleet.front(), worstPhaseError,
                          /*dryMassKg=*/rfOnlySatellite().totalMassKg());
  std::printf("\nslot acquisition per satellite:\n");
  std::printf("  delta-v:     %.1f m/s\n", acq.totalDeltaVMps);
  std::printf("  duration:    %.1f days\n", acq.totalDurationS / 86'400.0);
  std::printf("  propellant:  %.1f kg (Isp 220 s)\n", acq.propellantKg);

  // --- capex incl. regulation ------------------------------------------------
  const SatelliteCostModel satModel = rfOnlySatellite();
  const GroundStationCostModel gsModel;
  const RegulatoryRegime regime = exampleGlobalRegime();
  const double fleetCost = wc.totalSatellites * satModel.unitCostUsd();
  const double stations = 2 * gsModel.unitCostUsd();
  const double landing = regime.totalLandingFeesUsd(wc.totalSatellites);
  const double propellantLaunch = wc.totalSatellites * acq.propellantKg *
                                  satModel.launchUsdPerKg;
  std::printf("\ncapex going it alone:\n");
  std::printf("  fleet:              $%.1fM\n", fleetCost / 1e6);
  std::printf("  2 ground stations:  $%.1fM\n", stations / 1e6);
  std::printf("  landing rights:     $%.2fM (3 jurisdictions)\n", landing / 1e6);
  std::printf("  maneuver propellant:$%.2fM (launch mass)\n",
              propellantLaunch / 1e6);
  std::printf("  total:              $%.1fM\n",
              (fleetCost + stations + landing + propellantLaunch) / 1e6);

  // --- joining a coalition -----------------------------------------------------
  Rng crng(11);
  std::vector<CoalitionMember> members;
  members.push_back({"us", fleet});
  Rng peers(13);
  for (int i = 0; i < 3; ++i) {
    members.push_back({"peer-" + std::to_string(i),
                       makeRandomConstellation(18, km(780.0), peers)});
  }
  const auto analysis =
      analyzeCoalition(members, 200e6, 0.0, deg2rad(10.0), 3000, 50, crng);
  std::printf("\njoining a 4-provider OpenSpace coalition:\n");
  std::printf("  coalition coverage:   %.1f%% (ours alone: %.1f%%)\n",
              100.0 * analysis.coalitionCoverage,
              100.0 * analysis.members[0].standaloneCoverage);
  std::printf("  our revenue alone:    $%.1fM\n",
              analysis.members[0].standaloneRevenueUsd / 1e6);
  std::printf("  our coalition share:  $%.1fM (Shapley %.1f%%)\n",
              analysis.members[0].coalitionRevenueUsd / 1e6,
              100.0 * analysis.members[0].shapleyShare);
  std::printf("  joining rational:     %s\n",
              analysis.members[0].requiredTransferUsd <= 1e-6
                  ? "yes"
                  : "needs a side transfer");
  return 0;
}
