// Figure 2(a) scenario as a runnable example: an Iridium-like Walker Star
// constellation whose six planes are owned by six independent providers,
// wired with +grid ISLs through the standardized pairing protocol, serving
// a globally distributed set of gateways.
//
//   $ ./iridium_constellation
#include <cstdio>

#include <openspace/coverage/coverage.hpp>
#include <openspace/econ/capex.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/isl/fleet.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/topology/builder.hpp>

int main() {
  using namespace openspace;

  // --- the democratized fleet: one provider per plane -------------------
  const WalkerConfig wc = iridiumConfig();
  const auto elements = makeWalkerStar(wc);
  const int perPlane = wc.totalSatellites / wc.planes;

  EphemerisService eph;
  for (std::size_t i = 0; i < elements.size(); ++i) {
    eph.publish(static_cast<ProviderId>(1 + static_cast<int>(i) / perPlane),
                elements[i]);
  }
  std::printf("constellation: %d satellites, %d planes, %.0f km, %d providers\n",
              wc.totalSatellites, wc.planes, wc.altitudeM / 1e3, wc.planes);

  // --- run the ISL establishment protocol fleet-wide ---------------------
  IslFleet fleet(eph, FleetConfig{});
  const auto established = fleet.runDiscoveryRound(0.0);
  int crossProvider = 0;
  for (const auto& l : established) {
    if (eph.record(l.a).owner != eph.record(l.b).owner) ++crossProvider;
  }
  std::printf("ISL discovery round: %zu links established (%d cross-provider)\n",
              established.size(), crossProvider);

  // --- topology + a trans-constellation route ---------------------------
  TopologyBuilder topo(eph);
  const NodeId tokyo = topo.nodeOf(topo.addGroundStation(
      {"tokyo-gw", Geodetic::fromDegrees(35.6762, 139.6503), ProviderId{1}}));
  const NodeId saoPaulo = topo.nodeOf(topo.addGroundStation(
      {"sao-paulo-gw", Geodetic::fromDegrees(-23.5505, -46.6333), ProviderId{4}}));

  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = wc.planes;
  opt.minElevationRad = deg2rad(10.0);
  const NetworkGraph g = topo.snapshot(0.0, opt);
  std::printf("snapshot: %zu nodes, %zu links\n", g.nodeCount(), g.linkCount());

  const Route r = shortestPath(g, tokyo, saoPaulo, latencyCost());
  if (r.valid()) {
    std::printf("Tokyo -> Sao Paulo: %d hops, %.2f ms propagation\n", r.hops(),
                toMilliseconds(r.propagationDelayS));
    int owners = 0;
    ProviderId prev{};
    for (const NodeId n : r.nodes) {
      const ProviderId p = g.node(n).provider;
      if (p != prev) {
        ++owners;
        prev = p;
      }
    }
    std::printf("path crosses %d ownership domains\n", owners);
  } else {
    std::printf("Tokyo -> Sao Paulo: no path at t=0\n");
  }

  // --- coverage + what the fleet costs each provider ---------------------
  Rng rng(3);
  const auto cov = monteCarloCoverage(elements, 0.0, deg2rad(10.0), 20'000, rng);
  std::printf("instantaneous coverage (10 deg mask): %.1f%%\n",
              100.0 * cov.coverageFraction);

  const auto costs = collaborationCosts(wc.planes, wc.totalSatellites, 6,
                                        rfOnlySatellite(), GroundStationCostModel{});
  std::printf("capex: monolith $%.0fM vs $%.0fM per collaborating provider\n",
              costs.monolithicCapexUsd / 1e6, costs.perProviderCapexUsd / 1e6);
  return 0;
}
