// Disaster relief (paper §1 motivation): a region's terrestrial backhaul is
// knocked out; satellite Internet is "often the only option for communities
// ... in areas affected by natural disasters". No single small provider
// covers the region continuously — but pooled under OpenSpace interfaces,
// their fleets restore near-continuous service, incrementally improving as
// more providers join.
//
//   $ ./disaster_relief
#include <cstdio>

#include <openspace/geo/rng.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/handover/handover.hpp>
#include <openspace/orbit/walker.hpp>

namespace {

using namespace openspace;

/// Fraction of [t0, t1] during which at least one fleet satellite serves
/// the site, plus the mean gap length when nothing does.
struct ServiceStats {
  double availability = 0.0;
  int gaps = 0;
  double worstGapS = 0.0;
};

ServiceStats availabilityOf(const EphemerisService& eph, const Geodetic& site,
                            double t0, double t1) {
  const HandoverPlanner planner(eph, deg2rad(10.0));
  ServiceStats st;
  const double step = 10.0;
  double covered = 0.0;
  double gap = 0.0;
  bool inGap = false;
  for (double t = t0; t < t1; t += step) {
    if (planner.closestSatelliteAt(site, t)) {
      covered += step;
      if (inGap) {
        ++st.gaps;
        st.worstGapS = std::max(st.worstGapS, gap);
        inGap = false;
        gap = 0.0;
      }
    } else {
      inGap = true;
      gap += step;
    }
  }
  if (inGap) {
    ++st.gaps;
    st.worstGapS = std::max(st.worstGapS, gap);
  }
  st.availability = covered / (t1 - t0);
  return st;
}

}  // namespace

int main() {
  const Geodetic portAuPrince = Geodetic::fromDegrees(18.5944, -72.3074);
  const double window = 6.0 * 3600.0;  // six hours after the event

  std::printf("# Disaster scenario: terrestrial backhaul lost at Port-au-Prince\n");
  std::printf("# Each provider flies 8 satellites on independent random orbits.\n\n");
  std::printf("%-12s %-8s %-14s %-8s %-12s\n", "providers", "sats",
              "availability", "gaps", "worst_gap_s");

  // Incremental deployment: providers join one at a time, pooling fleets.
  EphemerisService pooled;
  Rng rng(2024);
  for (int k = 1; k <= 8; ++k) {
    for (const auto& el : makeRandomConstellation(8, km(780.0), rng)) {
      pooled.publish(static_cast<ProviderId>(k), el);
    }
    const ServiceStats st =
        availabilityOf(pooled, portAuPrince, 0.0, window);
    std::printf("%-12d %-8zu %-14.3f %-8d %-12.0f\n", k, pooled.size(),
                st.availability, st.gaps, st.worstGapS);
  }

  std::printf("\nOne 8-satellite provider leaves hours-long holes; pooling\n"
              "several small fleets through OpenSpace interfaces drives\n"
              "availability toward 1 without any single firm fielding a\n"
              "mega-constellation — the paper's incremental-deployment path.\n");
  return 0;
}
