// Multi-provider roaming (§2.2): a user whose home ISP owns none of the
// satellites overhead associates anyway — authentication rides the ISLs to
// the home provider's gateway, a roaming certificate comes back, and
// traffic is accounted to whoever carries it.
//
//   $ ./multi_provider_roaming
#include <cstdio>

#include <openspace/geo/units.hpp>
#include <openspace/sim/scenario.hpp>

int main() {
  using namespace openspace;

  // Three small providers; the user subscribes to "polarnet", whose fleet
  // covers high latitudes. The user sits near the equator, where overhead
  // satellites almost always belong to someone else: rampant roaming.
  ScenarioConfig cfg;
  cfg.providers = {{"polarnet", 12, 0.0, 0.06},
                   {"equatorlink", 24, 0.25, 0.04},
                   {"midband", 18, 0.0, 0.09}};
  cfg.coordinatedWalker = true;  // pooled Walker Star, interleaved ownership
  cfg.stations = {
      {"svalbard-gw", Geodetic::fromDegrees(78.23, 15.41), 0},   // polarnet
      {"singapore-gw", Geodetic::fromDegrees(1.35, 103.82), 1},  // equatorlink
      {"lagos-gw", Geodetic::fromDegrees(6.52, 3.38), 2}};       // midband
  cfg.users = {{"quito-user", Geodetic::fromDegrees(-0.18, -78.47), 0}};
  cfg.seed = 11;

  Scenario scenario(cfg);

  // --- association with roaming -----------------------------------------
  const AssociationResult assoc = scenario.associateUser(0, /*t=*/0.0);
  if (!assoc.success) {
    std::printf("association failed: %s\n", assoc.failureReason.c_str());
    return 1;
  }
  std::printf("user home ISP:      polarnet (provider 1)\n");
  std::printf("serving satellite:  sat-%u (provider %u)%s\n",
              assoc.servingSatellite.value(), assoc.servingProvider.value(),
              assoc.servingProvider != ProviderId{1} ? "  <-- roaming" : "");
  std::printf("beacon wait:        %.1f ms\n",
              toMilliseconds(assoc.beaconScanLatencyS));
  std::printf("RADIUS over ISLs:   %.1f ms\n", toMilliseconds(assoc.authLatencyS));
  std::printf("certificate valid:  %.0f s (issued by provider %u)\n",
              assoc.certificate.expiresAtS - assoc.certificate.issuedAtS,
              assoc.certificate.homeProvider.value());

  // --- traffic + settlement ----------------------------------------------
  const TrafficReport rep = scenario.runTrafficEpoch(0.0, 5.0, 1e6);
  std::printf("\ntraffic epoch: %zu packets, %.2f ms mean latency, loss %.4f\n",
              rep.packetsDelivered, toMilliseconds(rep.meanLatencyS),
              rep.lossProbability);
  std::printf("ledgers cross-verified: %s\n",
              rep.ledgersCrossVerified ? "yes" : "NO");
  for (const auto& item : rep.settlement) {
    std::printf("provider %u owes provider %u  $%.6f for %.2f MB of transit\n",
                item.payer.value(), item.payee.value(), item.amountUsd, item.bytes / 1e6);
  }
  return 0;
}
