// Handover demo (§2.2): follow one user through successive satellite
// handovers over an orbital pass, comparing the OpenSpace predictive scheme
// (successor chosen from the public ephemeris, no re-authentication)
// against the naive break-before-make re-association baseline.
//
//   $ ./handover_demo
#include <cstdio>

#include <openspace/geo/units.hpp>
#include <openspace/handover/handover.hpp>
#include <openspace/orbit/walker.hpp>

int main() {
  using namespace openspace;

  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  const HandoverPlanner planner(eph, deg2rad(10.0));

  const Geodetic user = Geodetic::fromDegrees(-1.2921, 36.8219);  // Nairobi
  const double horizon = 3600.0;

  // --- step through the predictive plan, satellite by satellite -----------
  std::printf("predictive handover walk (Nairobi, 60 min):\n");
  double t = 0.0;
  auto serving = planner.bestSatelliteAt(user, t);
  if (!serving) {
    std::printf("no coverage at t=0\n");
    return 1;
  }
  int step = 0;
  while (t < horizon && step < 12) {
    const HandoverPlan plan = planner.plan(*serving, user, t, horizon);
    std::printf("  t=%6.0fs  serving sat-%-3u  until t=%6.0fs", t, serving->value(),
                plan.serviceEndsAtS);
    if (plan.serviceEndsAtS >= horizon) {
      std::printf("  (end of demo window)\n");
      break;
    }
    if (!plan.found) {
      std::printf("  (coverage gap follows - no successor in view)\n");
      break;
    }
    std::printf("  successor sat-%-3u (visible %5.0fs more)\n", plan.successor.value(),
                plan.successorUntilS - plan.serviceEndsAtS);
    t = plan.serviceEndsAtS;
    serving = plan.successor;
    ++step;
  }

  // --- aggregate comparison ----------------------------------------------
  std::printf("\nmode comparison over %.0f min:\n", horizon / 60.0);
  for (const HandoverMode mode :
       {HandoverMode::Predictive, HandoverMode::ReAssociate}) {
    const auto tl = simulateHandovers(planner, user, 0.0, horizon, mode);
    std::printf("  %-13s %2d handovers, outage %7.3f s, availability %.4f%%\n",
                mode == HandoverMode::Predictive ? "predictive" : "re-associate",
                tl.handovers(), tl.outageS,
                100.0 * (1.0 - tl.outageS / horizon));
  }
  std::printf("\nPredictive handover keeps the certificate and session: the\n"
              "only gap is signaling. Re-association pays a beacon wait plus\n"
              "a RADIUS round-trip over ISLs on every switch.\n");
  return 0;
}
