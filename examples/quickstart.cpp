// Quickstart: assemble a small multi-provider OpenSpace deployment with the
// facade API, snapshot the topology, route a packet, and print the path.
//
//   $ ./quickstart
#include <cstdio>

#include <openspace/core/network.hpp>
#include <openspace/geo/units.hpp>

int main() {
  using namespace openspace;

  OpenSpaceNetwork net;

  // Two small providers pool their fleets.
  const ProviderId northStar = net.registerProvider("NorthStar Orbital");
  const ProviderId equatorLink = net.registerProvider("EquatorLink");

  WalkerConfig wc;
  wc.totalSatellites = 24;
  wc.planes = 4;
  wc.phasing = 1;
  wc.altitudeM = km(780.0);
  wc.inclinationRad = deg2rad(86.4);
  const auto polarFleet = net.launchWalkerStar(northStar, wc);

  // EquatorLink flies twenty-four satellites on uncoordinated orbits.
  const auto equatorFleet = net.launchRandom(equatorLink, 24, km(780.0), 7);

  // A couple of laser upgrades on the coordinated fleet.
  net.equipLaserTerminal(polarFleet[0]);
  net.equipLaserTerminal(polarFleet[1]);

  // Ground segment: EquatorLink runs the gateway, NorthStar the user.
  const NodeId gateway = net.addGroundStation(
      equatorLink, "nairobi-gw", Geodetic::fromDegrees(-1.2921, 36.8219));
  const NodeId user = net.addUser(northStar, "reykjavik-user",
                                  Geodetic::fromDegrees(64.1466, -21.9426));

  std::printf("OpenSpace quickstart: %zu satellites from %zu providers\n",
              net.satelliteCount(), net.providers().size());

  // Route at a few instants — the topology changes as satellites move.
  SnapshotOptions opt;
  opt.minElevationRad = deg2rad(5.0);
  for (const double t : {0.0, 300.0, 600.0, 900.0, 1200.0, 1500.0}) {
    const Route r = net.route(user, gateway, t, QosClass::Standard, opt);
    if (!r.valid()) {
      std::printf("t=%5.0fs: no path (user or gateway out of coverage)\n", t);
      continue;
    }
    std::printf("t=%5.0fs: %d hops, %.2f ms propagation, bottleneck %.1f Mbps\n",
                t, r.hops(), toMilliseconds(r.propagationDelayS),
                r.bottleneckBps / 1e6);
    const NetworkGraph g = net.topologyAt(t, opt);
    std::printf("          path:");
    for (const NodeId n : r.nodes) {
      std::printf(" %s", g.node(n).name.c_str());
    }
    std::printf("\n");
  }

  // Coverage of the pooled fleet vs either provider alone — the OpenSpace
  // pitch in one number.
  const double pooled = net.coverageAt(0.0, deg2rad(10.0), 4000, 99);
  std::printf("\npooled instantaneous coverage (10 deg mask): %.1f%%\n",
              100.0 * pooled);
  return 0;
}
