// Unit tests for the net module: event queue, latency stats, forwarding
// engine (queueing, drops), flow generation.
#include <gtest/gtest.h>

#include <openspace/geo/error.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/net/flows.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/net/forwarding.hpp>

namespace openspace {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.runAll(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoTieBreakAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(1.0, [&, i] { order.push_back(i); });
  }
  q.runAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilBoundsTime) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  EXPECT_EQ(q.run(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
  q.runAll();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 5) q.scheduleIn(1.0, next);
  };
  q.schedule(0.0, next);
  q.runAll();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.runAll();
  EXPECT_THROW(q.schedule(1.0, [] {}), InvalidArgumentError);
}

TEST(LatencyStats, SummaryStatistics) {
  LatencyStats s;
  for (const double v : {0.05, 0.01, 0.03, 0.02, 0.04}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_NEAR(s.meanS(), 0.03, 1e-12);
  EXPECT_DOUBLE_EQ(s.minS(), 0.01);
  EXPECT_DOUBLE_EQ(s.maxS(), 0.05);
  EXPECT_DOUBLE_EQ(s.p50S(), 0.03);
  EXPECT_DOUBLE_EQ(s.percentileS(1.0), 0.05);
  EXPECT_DOUBLE_EQ(s.percentileS(0.0), 0.01);
}

TEST(LatencyStats, LossAccounting) {
  LatencyStats s;
  s.add(0.01);
  s.addLoss();
  s.addLoss();
  EXPECT_EQ(s.losses(), 2u);
  EXPECT_NEAR(s.lossRate(), 2.0 / 3.0, 1e-12);
  LatencyStats empty;
  EXPECT_DOUBLE_EQ(empty.lossRate(), 0.0);
}

TEST(LatencyStats, ErrorsOnEmptyAndBadArgs) {
  LatencyStats s;
  EXPECT_THROW(s.meanS(), NotFoundError);
  EXPECT_THROW(s.p95S(), NotFoundError);
  EXPECT_THROW(s.add(-1.0), InvalidArgumentError);
  s.add(0.5);
  EXPECT_THROW(s.percentileS(1.5), InvalidArgumentError);
}

TEST(LatencyStats, AddAfterPercentileKeepsCorrectOrder) {
  LatencyStats s;
  s.add(0.3);
  EXPECT_DOUBLE_EQ(s.p50S(), 0.3);
  s.add(0.1);  // added after a sorted read
  EXPECT_DOUBLE_EQ(s.minS(), 0.1);
  EXPECT_DOUBLE_EQ(s.maxS(), 0.3);
}

// --- forwarding -------------------------------------------------------------

/// A 3-node line: src --(slow)--> mid --(fast)--> dst.
class LineGraph : public ::testing::Test {
 protected:
  LineGraph() {
    for (NodeId::rep_type idValue = 1; idValue <= 3; ++idValue) {
      const NodeId id{idValue};
      Node n;
      n.id = id;
      n.kind = NodeKind::Satellite;
      n.provider = ProviderId{idValue};
      n.name = "n" + std::to_string(idValue);
      n.satellite = SatelliteId{idValue};
      g_.addNode(std::move(n));
    }
    slow_ = addLink(NodeId{1}, NodeId{2}, 1e6);   // 1 Mbps
    fast_ = addLink(NodeId{2}, NodeId{3}, 100e6); // 100 Mbps
    route_ = shortestPath(g_, NodeId{1}, NodeId{3}, latencyCost());
  }

  LinkId addLink(NodeId a, NodeId b, double cap) {
    Link l;
    l.a = a;
    l.b = b;
    l.distanceM = 1000e3;
    l.propagationDelayS = l.distanceM / kSpeedOfLightMps;
    l.capacityBps = cap;
    return g_.addLink(l);
  }

  Packet mkPacket(PacketId id, double bits = 12'000.0) {
    Packet p;
    p.id = id;
    p.src = NodeId{1};
    p.dst = NodeId{3};
    p.sizeBits = bits;
    p.createdAtS = 0.0;
    return p;
  }

  NetworkGraph g_;
  LinkId slow_ = {}, fast_ = LinkId{0};
  Route route_;
};

TEST_F(LineGraph, SinglePacketLatencyIsTransmitPlusPropagate) {
  EventQueue ev;
  ForwardingEngine engine(g_, ev);
  engine.send(mkPacket(1), route_);
  ev.runAll();
  ASSERT_EQ(engine.delivered(), 1u);
  const double expected = 12'000.0 / 1e6 + 12'000.0 / 100e6 +
                          2.0 * (1000e3 / kSpeedOfLightMps);
  EXPECT_NEAR(engine.stats().meanS(), expected, 1e-12);
}

TEST_F(LineGraph, BackToBackPacketsQueueOnSlowLink) {
  EventQueue ev;
  ForwardingEngine engine(g_, ev);
  engine.send(mkPacket(1), route_);
  engine.send(mkPacket(2), route_);  // same instant: must wait 12 ms
  ev.runAll();
  ASSERT_EQ(engine.delivered(), 2u);
  EXPECT_NEAR(engine.stats().maxS() - engine.stats().minS(), 0.012, 1e-9);
}

TEST_F(LineGraph, QueueOverflowDropsTail) {
  EventQueue ev;
  QueueConfig cfg;
  cfg.maxQueueBits = 30'000.0;  // room for ~2.5 packets
  ForwardingEngine engine(g_, ev, cfg);
  std::vector<DropReason> drops;
  engine.onComplete([&](const DeliveryRecord& rec) {
    if (!rec.delivered) drops.push_back(rec.drop);
  });
  for (PacketId i = 1; i <= 10; ++i) engine.send(mkPacket(i), route_);
  ev.runAll();
  EXPECT_GT(engine.dropped(), 0u);
  EXPECT_EQ(engine.delivered() + engine.dropped(), 10u);
  for (const DropReason r : drops) EXPECT_EQ(r, DropReason::QueueOverflow);
}

TEST_F(LineGraph, InvalidRouteCountsAsNoRoute) {
  EventQueue ev;
  ForwardingEngine engine(g_, ev);
  DeliveryRecord last;
  engine.onComplete([&](const DeliveryRecord& rec) { last = rec; });
  engine.send(mkPacket(1), Route{});
  EXPECT_EQ(engine.dropped(), 1u);
  EXPECT_EQ(last.drop, DropReason::NoRoute);
}

TEST_F(LineGraph, MismatchedEndpointsThrow) {
  EventQueue ev;
  ForwardingEngine engine(g_, ev);
  Packet p = mkPacket(1);
  p.dst = NodeId{2};  // route goes to 3
  EXPECT_THROW(engine.send(p, route_), InvalidArgumentError);
  Packet bad = mkPacket(2);
  bad.sizeBits = 0.0;
  EXPECT_THROW(engine.send(bad, route_), InvalidArgumentError);
}

TEST_F(LineGraph, CarriedBitsAccumulate) {
  EventQueue ev;
  ForwardingEngine engine(g_, ev);
  engine.send(mkPacket(1), route_);
  engine.send(mkPacket(2), route_);
  ev.runAll();
  EXPECT_DOUBLE_EQ(engine.bitsCarried(slow_), 24'000.0);
  EXPECT_DOUBLE_EQ(engine.bitsCarried(fast_), 24'000.0);
  EXPECT_DOUBLE_EQ(engine.bitsCarried(LinkId{999}), 0.0);
}

TEST_F(LineGraph, BacklogDrainsToZero) {
  EventQueue ev;
  ForwardingEngine engine(g_, ev);
  for (PacketId i = 1; i <= 5; ++i) engine.send(mkPacket(i), route_);
  ev.runAll();
  EXPECT_DOUBLE_EQ(engine.backlogBits(slow_, LinkDir::AtoB), 0.0);
  EXPECT_DOUBLE_EQ(engine.backlogBits(fast_, LinkDir::AtoB), 0.0);
}

TEST_F(LineGraph, ZeroQueueLimitRejected) {
  EventQueue ev;
  QueueConfig cfg;
  cfg.maxQueueBits = 0.0;
  EXPECT_THROW(ForwardingEngine(g_, ev, cfg), InvalidArgumentError);
}

// --- flows -------------------------------------------------------------------

TEST(FlowGenerator, EmitsApproximatelyConfiguredRate) {
  EventQueue ev;
  Rng rng(9);
  std::size_t count = 0;
  FlowGenerator gen(ev, rng, [&](const Packet&) { ++count; });
  FlowSpec flow;
  flow.src = NodeId{1};
  flow.dst = NodeId{2};
  flow.rateBps = 1e6;
  flow.packetBits = 10'000.0;
  flow.startS = 0.0;
  flow.stopS = 10.0;  // expect ~1000 packets
  gen.addFlow(flow);
  ev.runAll();
  EXPECT_EQ(gen.packetsEmitted(), count);
  EXPECT_NEAR(static_cast<double>(count), 1000.0, 120.0);
}

TEST(FlowGenerator, PacketsCarryFlowMetadata) {
  EventQueue ev;
  Rng rng(10);
  std::vector<Packet> seen;
  FlowGenerator gen(ev, rng, [&](const Packet& p) { seen.push_back(p); });
  FlowSpec flow;
  flow.src = NodeId{7};
  flow.dst = NodeId{8};
  flow.rateBps = 1e6;
  flow.packetBits = 12'000.0;
  flow.qos = QosClass::Premium;
  flow.homeProvider = ProviderId{3};
  flow.startS = 1.0;
  flow.stopS = 2.0;
  gen.addFlow(flow);
  ev.runAll();
  ASSERT_FALSE(seen.empty());
  PacketId prev = 0;
  for (const Packet& p : seen) {
    EXPECT_EQ(p.src, NodeId{7u});
    EXPECT_EQ(p.dst, NodeId{8u});
    EXPECT_EQ(p.qos, QosClass::Premium);
    EXPECT_EQ(p.homeProvider, ProviderId{3u});
    EXPECT_GE(p.createdAtS, 1.0);
    EXPECT_LT(p.createdAtS, 2.0);
    EXPECT_GT(p.id, prev);  // ids ascend
    prev = p.id;
  }
}

TEST(FlowGenerator, DegenerateAndInvalidFlows) {
  EventQueue ev;
  Rng rng(11);
  FlowGenerator gen(ev, rng, [](const Packet&) {});
  FlowSpec flow;
  flow.rateBps = 1e6;
  flow.packetBits = 1e4;
  flow.startS = 5.0;
  flow.stopS = 5.0;  // empty interval: no packets, no throw
  gen.addFlow(flow);
  ev.runAll();
  EXPECT_EQ(gen.packetsEmitted(), 0u);
  flow.stopS = 10.0;
  flow.rateBps = 0.0;
  EXPECT_THROW(gen.addFlow(flow), InvalidArgumentError);
  flow.rateBps = 1e6;
  flow.packetBits = 0.0;
  EXPECT_THROW(gen.addFlow(flow), InvalidArgumentError);
  EXPECT_THROW(FlowGenerator(ev, rng, nullptr), InvalidArgumentError);
}

TEST(FlowGenerator, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    EventQueue ev;
    Rng rng(seed);
    std::vector<double> times;
    FlowGenerator gen(ev, rng,
                      [&](const Packet& p) { times.push_back(p.createdAtS); });
    FlowSpec flow;
    flow.rateBps = 1e6;
    flow.packetBits = 1e4;
    flow.stopS = 3.0;
    gen.addFlow(flow);
    ev.runAll();
    return times;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace openspace
