// Unit tests for the coverage module: cap geometry, the paper's worst-case
// overlap model, Monte-Carlo union coverage, k-fold coverage.
#include <gtest/gtest.h>

#include <numbers>

#include <openspace/coverage/coverage.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/visibility.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {
namespace {

TEST(CapArea, KnownValues) {
  EXPECT_DOUBLE_EQ(capAreaFraction(0.0), 0.0);
  EXPECT_NEAR(capAreaFraction(std::numbers::pi / 2), 0.5, 1e-12);  // hemisphere
  EXPECT_NEAR(capAreaFraction(std::numbers::pi), 1.0, 1e-12);      // full sphere
  EXPECT_THROW(capAreaFraction(-0.1), InvalidArgumentError);
}

TEST(CapArea, ClampsBeyondFullSphere) {
  // Half-angles past pi describe the whole sphere, not more of it.
  EXPECT_DOUBLE_EQ(capAreaFraction(2.0 * std::numbers::pi), 1.0);
}

TEST(FootprintGeometry, ZeroMaskIsTheHorizonCap) {
  // Elevation mask 0 gives the widest (horizon-limited) footprint; the
  // Monte-Carlo fraction of a single satellite must match its cap area.
  const std::vector<OrbitalElements> one = {
      OrbitalElements::circular(km(780.0), 1.0, 2.0, 3.0)};
  Rng rng(20);
  const auto est = monteCarloCoverage(one, 0.0, 0.0, 50'000, rng);
  const double horizonCap = capAreaFraction(footprintHalfAngleRad(780e3, 0.0));
  EXPECT_NEAR(est.coverageFraction, horizonCap, 0.005);
  EXPECT_GT(horizonCap,
            capAreaFraction(footprintHalfAngleRad(780e3, deg2rad(10.0))));
}

TEST(FootprintGeometry, SubSatellitePointAlwaysCovered) {
  // The footprint cap is centered on the sub-satellite direction: that
  // direction is covered at any mask in [0, pi/2), its antipode never is.
  Rng rng(21);
  const auto sats = makeRandomConstellation(10, km(780.0), rng);
  const auto snap = SnapshotCache::global().at(sats, 500.0);
  const FootprintIndex fp(*snap, deg2rad(10.0));
  for (std::size_t i = 0; i < fp.size(); ++i) {
    const Vec3 sub = snap->eci(i).normalized();
    EXPECT_TRUE(fp.covers(sub, i));
    EXPECT_FALSE(fp.covers(Vec3{-sub.x, -sub.y, -sub.z}, i));
  }
}

TEST(FootprintGeometry, PolarSamplesCoveredByNearPolarShell) {
  // Iridium's 86.4 deg shell keeps both poles inside some footprint; the
  // pole samples are the latitude-band edge cases of the coverage index.
  const auto sats = makeWalkerStar(iridiumConfig());
  const auto snap = SnapshotCache::global().at(sats, 0.0);
  EXPECT_TRUE(snap->closestVisible(Geodetic{std::numbers::pi / 2, 0.0, 0.0},
                                   deg2rad(5.0))
                  .has_value());
  EXPECT_TRUE(snap->closestVisible(Geodetic{-std::numbers::pi / 2, 0.0, 0.0},
                                   deg2rad(5.0))
                  .has_value());
}

TEST(WorstCase, EmptyAndSingle) {
  const auto none = worstCaseOverlapCoverage({}, 0.0, 0.1);
  EXPECT_DOUBLE_EQ(none.coverageFraction, 0.0);
  EXPECT_EQ(none.effectiveSatellites, 0);

  const std::vector<OrbitalElements> one = {
      OrbitalElements::circular(km(780.0), 0.5, 0.0, 0.0)};
  const auto est = worstCaseOverlapCoverage(one, 0.0, deg2rad(10.0));
  EXPECT_EQ(est.effectiveSatellites, 1);
  const double cap =
      capAreaFraction(footprintHalfAngleRad(780e3, deg2rad(10.0)));
  EXPECT_NEAR(est.coverageFraction, cap, 0.01);
}

TEST(WorstCase, TwoOverlappingCollapseToOne) {
  // Same orbit, tiny phase offset: footprints fully overlap.
  const std::vector<OrbitalElements> sats = {
      OrbitalElements::circular(km(780.0), 0.5, 0.0, 0.00),
      OrbitalElements::circular(km(780.0), 0.5, 0.0, 0.01)};
  const auto est = worstCaseOverlapCoverage(sats, 0.0, deg2rad(10.0));
  EXPECT_EQ(est.effectiveSatellites, 1);
}

TEST(WorstCase, TwoAntipodalCountSeparately) {
  const std::vector<OrbitalElements> sats = {
      OrbitalElements::circular(km(780.0), 0.0, 0.0, 0.0),
      OrbitalElements::circular(km(780.0), 0.0, 0.0, std::numbers::pi)};
  const auto est = worstCaseOverlapCoverage(sats, 0.0, deg2rad(10.0));
  EXPECT_EQ(est.effectiveSatellites, 2);
  EXPECT_NEAR(est.coverageFraction,
              2.0 * capAreaFraction(footprintHalfAngleRad(780e3, deg2rad(10.0))),
              0.01);
}

TEST(WorstCase, ThreeCloseSatellitesPairwiseCollapse) {
  // Three co-located footprints: one pair collapses, the third keeps its
  // own cap (greedy matching leaves one unmatched).
  const std::vector<OrbitalElements> sats = {
      OrbitalElements::circular(km(780.0), 0.5, 0.0, 0.00),
      OrbitalElements::circular(km(780.0), 0.5, 0.0, 0.01),
      OrbitalElements::circular(km(780.0), 0.5, 0.0, 0.02)};
  const auto est = worstCaseOverlapCoverage(sats, 0.0, deg2rad(10.0));
  EXPECT_EQ(est.effectiveSatellites, 2);
}

TEST(WorstCase, NeverExceedsFullCoverage) {
  Rng rng(1);
  const auto sats = makeRandomConstellation(200, km(780.0), rng);
  const auto est = worstCaseOverlapCoverage(sats, 0.0, deg2rad(10.0));
  EXPECT_LE(est.coverageFraction, 1.0);
  EXPECT_GE(est.coverageFraction, 0.0);
}

TEST(WorstCase, ConservativeRelativeToUnionAtScale) {
  // The worst-case model must not exceed Monte-Carlo union coverage by
  // more than sampling noise once constellations are dense.
  Rng rng(2);
  const auto sats = makeRandomConstellation(30, km(780.0), rng);
  const auto wc = worstCaseOverlapCoverage(sats, 0.0, deg2rad(10.0));
  Rng rng2(3);
  const auto mc = monteCarloCoverage(sats, 0.0, deg2rad(10.0), 20'000, rng2);
  EXPECT_LE(wc.coverageFraction, mc.coverageFraction + 0.05);
}

TEST(MonteCarlo, FullConstellationCoversEverything) {
  const auto sats = makeWalkerStar(iridiumConfig());
  Rng rng(4);
  const auto est = monteCarloCoverage(sats, 0.0, deg2rad(5.0), 10'000, rng);
  EXPECT_GT(est.coverageFraction, 0.98);
  EXPECT_EQ(est.effectiveSatellites, 66);
}

TEST(MonteCarlo, SingleSatelliteMatchesCapArea) {
  const std::vector<OrbitalElements> one = {
      OrbitalElements::circular(km(780.0), 1.0, 2.0, 3.0)};
  Rng rng(5);
  const auto est = monteCarloCoverage(one, 0.0, deg2rad(10.0), 50'000, rng);
  const double cap =
      capAreaFraction(footprintHalfAngleRad(780e3, deg2rad(10.0)));
  EXPECT_NEAR(est.coverageFraction, cap, 0.005);
}

TEST(MonteCarlo, CoverageGrowsWithMaskRelaxation) {
  const auto sats = makeWalkerStar(cboConfig());
  Rng a(6), b(6);
  const double strict =
      monteCarloCoverage(sats, 0.0, deg2rad(25.0), 10'000, a).coverageFraction;
  const double loose =
      monteCarloCoverage(sats, 0.0, deg2rad(5.0), 10'000, b).coverageFraction;
  EXPECT_GT(loose, strict);
}

TEST(MonteCarlo, CboAnchorRoughly95Percent) {
  // The paper cites the CBO estimate: 72 sats, 12x6 planes, 80 deg ⇒ ~95%
  // coverage. With a service-grade mask our estimate lands in the
  // 90-100% band.
  const auto sats = makeWalkerStar(cboConfig());
  Rng rng(7);
  const auto est = monteCarloCoverage(sats, 0.0, deg2rad(10.0), 20'000, rng);
  EXPECT_GT(est.coverageFraction, 0.90);
}

TEST(MonteCarlo, Validation) {
  Rng rng(8);
  EXPECT_THROW(monteCarloCoverage({}, 0.0, 0.1, 0, rng), InvalidArgumentError);
  const auto none = monteCarloCoverage({}, 0.0, 0.1, 100, rng);
  EXPECT_DOUBLE_EQ(none.coverageFraction, 0.0);
}

TEST(MonteCarlo, DeterministicGivenSeed) {
  const auto sats = makeWalkerStar(iridiumConfig());
  Rng a(9), b(9);
  EXPECT_DOUBLE_EQ(
      monteCarloCoverage(sats, 0.0, deg2rad(10.0), 3000, a).coverageFraction,
      monteCarloCoverage(sats, 0.0, deg2rad(10.0), 3000, b).coverageFraction);
}

TEST(TimeAveraged, SmoothsInstantaneousOscillation) {
  const auto sats = makeWalkerStar(iridiumConfig());
  Rng rng(10);
  const double avg = timeAveragedCoverage(sats, 0.0, sats.front().periodS(), 8,
                                          deg2rad(10.0), 3000, rng);
  EXPECT_GT(avg, 0.9);
  EXPECT_LE(avg, 1.0);
  EXPECT_THROW(timeAveragedCoverage(sats, 0.0, 100.0, 0, 0.1, 100, rng),
               InvalidArgumentError);
  EXPECT_THROW(timeAveragedCoverage(sats, 100.0, 0.0, 2, 0.1, 100, rng),
               InvalidArgumentError);
}

TEST(KFold, MonotoneInK) {
  const auto sats = makeWalkerStar(iridiumConfig());
  Rng a(11), b(11), c(11);
  const double k1 = kFoldCoverage(sats, 0.0, deg2rad(10.0), 1, 5000, a);
  const double k2 = kFoldCoverage(sats, 0.0, deg2rad(10.0), 2, 5000, b);
  const double k4 = kFoldCoverage(sats, 0.0, deg2rad(10.0), 4, 5000, c);
  EXPECT_GE(k1, k2);
  EXPECT_GE(k2, k4);
  EXPECT_GT(k1, 0.95);
}

TEST(KFold, RedundancyGrowsWithFleetSize) {
  // §4: "additional satellites ensure redundancy". Double coverage should
  // improve markedly from 66 to 132 satellites.
  WalkerConfig big = iridiumConfig();
  big.totalSatellites = 132;
  const auto sats66 = makeWalkerStar(iridiumConfig());
  const auto sats132 = makeWalkerStar(big);
  Rng a(12), b(12);
  const double k2small = kFoldCoverage(sats66, 0.0, deg2rad(10.0), 2, 5000, a);
  const double k2big = kFoldCoverage(sats132, 0.0, deg2rad(10.0), 2, 5000, b);
  EXPECT_GT(k2big, k2small);
}

TEST(KFold, Validation) {
  Rng rng(13);
  const auto sats = makeWalkerStar(iridiumConfig());
  EXPECT_THROW(kFoldCoverage(sats, 0.0, 0.1, 0, 100, rng),
               InvalidArgumentError);
  EXPECT_THROW(kFoldCoverage(sats, 0.0, 0.1, 1, 0, rng), InvalidArgumentError);
  EXPECT_DOUBLE_EQ(kFoldCoverage({}, 0.0, 0.1, 1, 100, rng), 0.0);
}

}  // namespace
}  // namespace openspace
