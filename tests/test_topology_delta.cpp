// Property tests for the incremental temporal topology pipeline
// (topology/delta.hpp): delta-built CompactGraphs must be bit-identical to
// fresh compileGraph() output, across all three ISL wiring policies, over
// randomized constellations and sweeps. The fresh path is the executable
// spec; contentChecksum() is the witness.
#include <gtest/gtest.h>

#include <openspace/core/hash.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/snapshot_delta.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/engine.hpp>
#include <openspace/topology/delta.hpp>

namespace openspace {
namespace {

LinkCapabilities laserCaps() {
  LinkCapabilities c;
  c.islBands = {Band::S};  // RF interoperability minimum
  c.hasLaserTerminal = true;
  return c;
}

/// A builder over a randomized Walker star with ground stations, users, and
/// a random subset of laser-capable satellites.
struct Scenario {
  EphemerisService eph;
  std::unique_ptr<TopologyBuilder> topo;
};

std::unique_ptr<Scenario> makeScenario(Rng& rng, int planes, int perPlane,
                                       int stations, int users) {
  auto sc = std::make_unique<Scenario>();
  WalkerConfig cfg;
  cfg.totalSatellites = planes * perPlane;
  cfg.planes = planes;
  cfg.phasing = static_cast<int>(rng.uniformInt(0, planes - 1));
  cfg.altitudeM = rng.uniform(km(500.0), km(1200.0));
  cfg.inclinationRad = rng.uniform(deg2rad(50.0), deg2rad(90.0));
  for (const auto& el : makeWalkerStar(cfg)) {
    sc->eph.publish(ProviderId{1}, el);
  }
  sc->topo = std::make_unique<TopologyBuilder>(sc->eph);
  for (const SatelliteId sid : sc->eph.satellites()) {
    if (rng.chance(0.5)) sc->topo->setCapabilities(sid, laserCaps());
  }
  for (int i = 0; i < stations; ++i) {
    sc->topo->addGroundStation(
        {"gw" + std::to_string(i), rng.surfacePoint(), ProviderId{2}});
  }
  for (int i = 0; i < users; ++i) {
    sc->topo->addUser({"u" + std::to_string(i), rng.surfacePoint(), ProviderId{1}});
  }
  return sc;
}

SnapshotOptions optsFor(IslWiring wiring, int planes, Rng& rng) {
  SnapshotOptions opt;
  opt.wiring = wiring;
  opt.planes = planes;
  opt.nearestK = static_cast<int>(rng.uniformInt(2, 5));
  opt.maxIslRangeM = rng.uniform(km(3000.0), km(6000.0));
  opt.minElevationRad = deg2rad(rng.uniform(5.0, 25.0));
  opt.interPlaneSeam = rng.chance(0.5);
  opt.preferLaser = rng.chance(0.8);
  return opt;
}

/// One sweep: every step's delta graph checksums equal to a fresh compile
/// of the same snapshot under the same cost model.
void expectBitIdenticalSweep(IslWiring wiring, const TemporalCostModel& model,
                             std::uint64_t seed) {
  Rng rng(seed);
  const int planes = 4;
  const auto sc = makeScenario(rng, planes, 6, 2, 3);
  const SnapshotOptions opt = optsFor(wiring, planes, rng);
  IncrementalTopology inc(*sc->topo, opt, model);

  std::size_t structuralSteps = 0;
  std::size_t patchedSteps = 0;
  double t = 0.0;
  for (int k = 0; k < 24; ++k) {
    const TopologyDelta& d = inc.step(t);
    const CompactGraph fresh =
        compileGraph(sc->topo->snapshot(t, opt), model.link);
    ASSERT_NE(inc.graph(), nullptr);
    ASSERT_EQ(inc.graph()->contentChecksum(), fresh.contentChecksum())
        << "wiring=" << static_cast<int>(wiring) << " seed=" << seed
        << " t=" << t;
    if (d.structural) {
      ++structuralSteps;
    } else if (d.costChangedLinks > 0) {
      ++patchedSteps;
    }
    // Bookkeeping closes: every current link is added, changed, or kept.
    ASSERT_EQ(d.addedLinks + d.costChangedLinks + d.unchangedLinks, d.linkCount);
    t += rng.uniform(5.0, 40.0);
  }
  // The sweep exercised the patch path, not just rebuilds (step sizes are
  // small enough that most steps keep the link set).
  EXPECT_GT(patchedSteps, 0u) << "seed=" << seed;
  // The first step is always structural (nothing to patch against).
  EXPECT_GE(structuralSteps, 1u);
}

class DeltaBitIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaBitIdentity, PlusGridDelayCost) {
  expectBitIdenticalSweep(IslWiring::PlusGrid, delayCostModel(), GetParam());
}

TEST_P(DeltaBitIdentity, NearestNeighborsDelayCost) {
  expectBitIdenticalSweep(IslWiring::NearestNeighbors, delayCostModel(),
                          GetParam());
}

TEST_P(DeltaBitIdentity, AllInRangeDelayCost) {
  expectBitIdenticalSweep(IslWiring::AllInRange, delayCostModel(), GetParam());
}

TEST_P(DeltaBitIdentity, PlusGridHopCost) {
  expectBitIdenticalSweep(IslWiring::PlusGrid, hopCostModel(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaBitIdentity,
                         ::testing::Values(1u, 2u, 3u, 4u));

// --- Step/delta semantics --------------------------------------------------

TEST(IncrementalTopology, RepeatedTimestampSharesGraph) {
  Rng rng(11);
  const auto sc = makeScenario(rng, 4, 6, 1, 1);
  SnapshotOptions opt = optsFor(IslWiring::PlusGrid, 4, rng);
  IncrementalTopology inc(*sc->topo, opt);
  inc.step(100.0);
  const auto first = inc.graph();
  const TopologyDelta& d = inc.step(100.0);
  EXPECT_FALSE(d.structural);
  EXPECT_EQ(d.costChangedLinks, 0u);
  EXPECT_EQ(d.addedLinks, 0u);
  EXPECT_EQ(d.unchangedLinks, d.linkCount);
  // Bitwise-identical step: the graph object itself is reused, not copied.
  EXPECT_EQ(inc.graph().get(), first.get());
  EXPECT_EQ(inc.stepCount(), 2u);
}

TEST(IncrementalTopology, HopCostStepsAreNotStructuralUnderStaticLinks) {
  // Hop cost is constant, so a persisting link set patches zero payloads
  // only if the geometry payloads (delay, capacity) were also unchanged —
  // which they are not between distinct times. The delta must still notice
  // the payload drift even though the *cost* is static.
  Rng rng(12);
  const auto sc = makeScenario(rng, 4, 6, 0, 0);
  SnapshotOptions opt = optsFor(IslWiring::PlusGrid, 4, rng);
  opt.includeGroundStations = false;
  opt.includeUserLinks = false;
  IncrementalTopology inc(*sc->topo, opt, hopCostModel());
  inc.step(0.0);
  const TopologyDelta& d = inc.step(1.0);
  if (!d.structural) {
    EXPECT_EQ(d.costChangedLinks + d.unchangedLinks, d.linkCount);
    EXPECT_GT(d.costChangedLinks, 0u);
  }
}

TEST(IncrementalTopology, RegistryFreeze) {
  Rng rng(13);
  const auto sc = makeScenario(rng, 4, 6, 1, 1);
  const SnapshotOptions opt = optsFor(IslWiring::NearestNeighbors, 4, rng);
  IncrementalTopology inc(*sc->topo, opt);
  inc.step(0.0);
  sc->topo->addUser({"late", Geodetic::fromDegrees(0.0, 0.0), ProviderId{1}});
  EXPECT_THROW(inc.step(1.0), StateError);
}

TEST(IncrementalTopology, PlusGridValidation) {
  Rng rng(14);
  const auto sc = makeScenario(rng, 4, 6, 0, 0);
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 0;  // missing plane geometry
  EXPECT_THROW(IncrementalTopology(*sc->topo, opt), InvalidArgumentError);
  opt.planes = 5;  // does not divide 24
  EXPECT_THROW(IncrementalTopology(*sc->topo, opt), InvalidArgumentError);
}

TEST(IncrementalTopology, DegeneratePlusGridSelfPairThrows) {
  // Two planes of one slot each: the intra-plane ring neighbor of slot 0
  // is slot 0 itself. The incremental pipeline rejects the degenerate grid
  // eagerly instead of emitting a self-loop.
  EphemerisService eph;
  WalkerConfig cfg;
  cfg.totalSatellites = 2;
  cfg.planes = 2;
  cfg.altitudeM = km(780.0);
  cfg.inclinationRad = deg2rad(86.4);
  for (const auto& el : makeWalkerStar(cfg)) eph.publish(ProviderId{1}, el);
  const TopologyBuilder topo(eph);
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 2;
  EXPECT_THROW(IncrementalTopology(topo, opt), InvalidArgumentError);
}

TEST(IncrementalTopology, NullCostModelThrows) {
  Rng rng(15);
  const auto sc = makeScenario(rng, 4, 6, 0, 0);
  const SnapshotOptions opt = optsFor(IslWiring::AllInRange, 4, rng);
  TemporalCostModel broken;  // default-constructed: null callbacks
  EXPECT_THROW(IncrementalTopology(*sc->topo, opt, std::move(broken)),
               InvalidArgumentError);
}

// --- Route repair ----------------------------------------------------------

/// Repaired trees must equal fresh trees node-for-node: bitwise-equal dist
/// arrays and identical parent edges. Run a delta sweep keeping one tree
/// alive per source and repairing it each step.
void expectRepairEqualsFresh(const TemporalCostModel& model, std::uint64_t seed,
                             std::size_t* repairedSteps) {
  Rng rng(seed);
  const auto sc = makeScenario(rng, 4, 6, 2, 2);
  SnapshotOptions opt = optsFor(IslWiring::PlusGrid, 4, rng);
  IncrementalTopology inc(*sc->topo, opt, model);

  const std::vector<NodeId> sources = {
      sc->topo->nodeOf(sc->eph.satellites().front()),
      sc->topo->stationSites().front().node,
      sc->topo->userSites().front().node,
  };
  std::vector<PathTree> trees(sources.size());
  double t = 0.0;
  for (int k = 0; k < 16; ++k) {
    inc.step(t);
    const RouteEngine engine(inc.graph());
    for (std::size_t s = 0; s < sources.size(); ++s) {
      const PathTree fresh = engine.shortestPathTree(sources[s]);
      if (!trees[s].valid()) {
        trees[s] = fresh;
        continue;
      }
      TreeRepairStats stats;
      const PathTree repaired = engine.repairShortestPathTree(trees[s], &stats);
      if (stats.repaired) ++*repairedSteps;
      ASSERT_EQ(repaired.source(), fresh.source());
      ASSERT_EQ(repaired.distByIndex().size(), fresh.distByIndex().size());
      for (std::size_t i = 0; i < fresh.distByIndex().size(); ++i) {
        ASSERT_EQ(bitsOf(repaired.distByIndex()[i]),
                  bitsOf(fresh.distByIndex()[i]))
            << "seed=" << seed << " t=" << t << " src=" << s << " node=" << i;
        ASSERT_EQ(repaired.parentEdgeByIndex()[i], fresh.parentEdgeByIndex()[i])
            << "seed=" << seed << " t=" << t << " src=" << s << " node=" << i;
      }
      trees[s] = repaired;
    }
    t += rng.uniform(2.0, 20.0);
  }
}

class RepairBitIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RepairBitIdentity, HopCostRepairsStructuralChurn) {
  // Hop cost is static per link, so persisting links never reseed the
  // repair: only actual link churn (contacts opening/closing) perturbs the
  // tree, and the repair path must actually engage.
  std::size_t repaired = 0;
  expectRepairEqualsFresh(hopCostModel(), GetParam(), &repaired);
  EXPECT_GT(repaired, 0u);
}

TEST_P(RepairBitIdentity, DelayCostStaysCorrectUnderSeedFlood) {
  // Delay costs drift on every edge every step, so most repairs exceed the
  // seed budget and fall back to fresh runs — the result must be identical
  // either way.
  std::size_t repaired = 0;
  expectRepairEqualsFresh(delayCostModel(), GetParam(), &repaired);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairBitIdentity, ::testing::Values(31u, 32u, 33u));

TEST(RouteRepair, SameGraphIsIdentityAndCheap) {
  Rng rng(41);
  const auto sc = makeScenario(rng, 4, 6, 1, 1);
  const SnapshotOptions opt = optsFor(IslWiring::PlusGrid, 4, rng);
  IncrementalTopology inc(*sc->topo, opt);
  inc.step(0.0);
  const RouteEngine engine(inc.graph());
  const NodeId src = sc->topo->userSites().front().node;
  const PathTree tree = engine.shortestPathTree(src);
  TreeRepairStats stats;
  const PathTree again = engine.repairShortestPathTree(tree, &stats);
  EXPECT_TRUE(stats.repaired);
  EXPECT_EQ(stats.seedNodes, 0u);
  EXPECT_EQ(stats.queuePops, 0u);
  EXPECT_EQ(again.distByIndex(), tree.distByIndex());
}

TEST(RouteRepair, NodeTemplateMismatchFallsBack) {
  Rng rng(42);
  const auto scA = makeScenario(rng, 4, 6, 1, 1);
  const SnapshotOptions opt = optsFor(IslWiring::PlusGrid, 4, rng);
  IncrementalTopology incA(*scA->topo, opt);
  incA.step(0.0);
  const RouteEngine engineA(incA.graph());
  const NodeId src = scA->topo->nodeOf(scA->eph.satellites().front());
  const PathTree treeA = engineA.shortestPathTree(src);

  Rng rng2(43);
  const auto scB = makeScenario(rng2, 4, 6, 2, 1);  // extra station
  SnapshotOptions optB = optsFor(IslWiring::PlusGrid, 4, rng2);
  IncrementalTopology incB(*scB->topo, optB);
  incB.step(0.0);
  const RouteEngine engineB(incB.graph());
  TreeRepairStats stats;
  const PathTree repaired = engineB.repairShortestPathTree(treeA, &stats);
  EXPECT_FALSE(stats.repaired);
  EXPECT_STREQ(stats.fallbackReason, "node-set-changed");
  // Fallback result is still a correct fresh tree over engineB's graph.
  const PathTree fresh = engineB.shortestPathTree(src);
  EXPECT_EQ(repaired.distByIndex(), fresh.distByIndex());
}

TEST(RouteRepair, InvalidPreviousThrows) {
  Rng rng(44);
  const auto sc = makeScenario(rng, 4, 6, 0, 1);
  const SnapshotOptions opt = optsFor(IslWiring::AllInRange, 4, rng);
  IncrementalTopology inc(*sc->topo, opt);
  inc.step(0.0);
  const RouteEngine engine(inc.graph());
  EXPECT_THROW(engine.repairShortestPathTree(PathTree{}), InvalidArgumentError);
}

// --- Orbit-layer link diff (snapshot_delta.hpp) ----------------------------

/// Brute-force reference: set-diff the two topologies' undirected pairs.
TEST(SnapshotDelta, MatchesBruteForceSetDiff) {
  Rng rng(21);
  WalkerConfig cfg;
  cfg.totalSatellites = 24;
  cfg.planes = 4;
  cfg.altitudeM = km(780.0);
  cfg.inclinationRad = deg2rad(70.0);
  const auto elements = makeWalkerStar(cfg);
  EphemerisService eph;
  for (const auto& el : elements) eph.publish(ProviderId{1}, el);

  const double range = km(4000.0);
  for (int k = 0; k < 6; ++k) {
    const double t0 = rng.uniform(0.0, 3000.0);
    const double t1 = t0 + rng.uniform(1.0, 120.0);
    const auto a = SnapshotCache::global().at(eph, t0);
    const auto b = SnapshotCache::global().at(eph, t1);
    const SnapshotDelta d = diffIslTopology(*a, *b, range);

    const auto pairsOf = [&](const ConstellationSnapshot& s) {
      std::set<std::pair<std::size_t, std::size_t>> out;
      const auto topo = s.islTopology(range);
      for (std::size_t i = 0; i < s.size(); ++i) {
        for (const auto& [j, dist] : topo->adjacency[i]) {
          if (j > i) out.insert({i, j});
        }
      }
      return out;
    };
    const auto pa = pairsOf(*a);
    const auto pb = pairsOf(*b);
    std::size_t added = 0;
    std::size_t removed = 0;
    std::size_t persisted = 0;
    for (const auto& p : pb) {
      if (pa.count(p) != 0) {
        ++persisted;
      } else {
        ++added;
      }
    }
    for (const auto& p : pa) {
      if (pb.count(p) == 0) ++removed;
    }
    EXPECT_EQ(d.added.size(), added);
    EXPECT_EQ(d.removed.size(), removed);
    EXPECT_EQ(d.rangeChanged.size() + d.unchanged, persisted);
    for (const auto& c : d.added) EXPECT_LT(c.i, c.j);
    for (const auto& c : d.removed) EXPECT_LT(c.i, c.j);
  }
}

TEST(SnapshotDelta, IdenticalSnapshotsProduceEmptyDelta) {
  EphemerisService eph;
  WalkerConfig cfg = iridiumConfig();
  for (const auto& el : makeWalkerStar(cfg)) eph.publish(ProviderId{1}, el);
  const auto a = SnapshotCache::global().at(eph, 500.0);
  const SnapshotDelta d = diffIslTopology(*a, *a, km(4000.0));
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(d.structural());
  EXPECT_EQ(d.added.size() + d.removed.size() + d.rangeChanged.size(), 0u);
  EXPECT_GT(d.unchanged, 0u);
}

TEST(SnapshotDelta, FleetSizeMismatchThrows) {
  EphemerisService a;
  EphemerisService b;
  WalkerConfig cfg;
  cfg.totalSatellites = 8;
  cfg.planes = 2;
  cfg.altitudeM = km(780.0);
  cfg.inclinationRad = deg2rad(86.4);
  for (const auto& el : makeWalkerStar(cfg)) a.publish(ProviderId{1}, el);
  cfg.totalSatellites = 12;
  cfg.planes = 2;
  for (const auto& el : makeWalkerStar(cfg)) b.publish(ProviderId{1}, el);
  const auto sa = SnapshotCache::global().at(a, 0.0);
  const auto sb = SnapshotCache::global().at(b, 0.0);
  EXPECT_THROW(diffIslTopology(*sa, *sb, km(4000.0)), InvalidArgumentError);
}

}  // namespace
}  // namespace openspace
