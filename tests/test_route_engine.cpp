// Property tests for the CSR RouteEngine against the legacy reference
// implementations (openspace::legacy), which serve as the executable
// specification: across randomized constellation snapshots and all three
// ISL wiring policies, engine routes must match legacy routes node-for-node
// and bit-for-bit in every accumulated QoS field, and the parallel batch
// API must be bit-identical to serial execution.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/routing/engine.hpp>
#include <openspace/routing/legacy.hpp>
#include <openspace/topology/builder.hpp>

namespace openspace {
namespace {

std::uint64_t bitsOf(double d) {
  std::uint64_t b = 0;
  std::memcpy(&b, &d, sizeof b);
  return b;
}

/// Bit-exact route equality: identical node/link sequences and identical
/// IEEE bit patterns in every accumulated QoS field. EXPECT_* based so a
/// failure reports which field diverged.
void expectRoutesIdentical(const Route& got, const Route& want) {
  EXPECT_EQ(got.nodes, want.nodes);
  EXPECT_EQ(got.links, want.links);
  EXPECT_EQ(bitsOf(got.cost), bitsOf(want.cost));
  EXPECT_EQ(bitsOf(got.propagationDelayS), bitsOf(want.propagationDelayS));
  EXPECT_EQ(bitsOf(got.queueingDelayS), bitsOf(want.queueingDelayS));
  EXPECT_EQ(bitsOf(got.bottleneckBps), bitsOf(want.bottleneckBps));
}

/// A randomized constellation snapshot: Walker geometry varied by seed,
/// ground stations and users scattered at random surface points, snapshot
/// taken at a random epoch. `wiring` selects the ISL policy; AllInRange
/// gets a smaller fleet to keep its O(n^2) closure tractable.
NetworkGraph randomSnapshot(IslWiring wiring, std::uint64_t seed,
                            EphemerisService& eph, Rng& rng) {
  WalkerConfig wc;
  wc.planes = 3 + static_cast<int>(seed % 4);  // 3..6 planes
  const int perPlane = wiring == IslWiring::AllInRange
                           ? 4
                           : 6 + static_cast<int>(seed % 6);  // 6..11
  wc.totalSatellites = wc.planes * perPlane;
  wc.phasing = static_cast<int>(seed % wc.planes);
  wc.altitudeM = km(rng.uniform(500.0, 1400.0));
  wc.inclinationRad = deg2rad(rng.uniform(53.0, 98.0));
  const auto els =
      (seed % 2 == 0) ? makeWalkerStar(wc) : makeWalkerDelta(wc);
  for (const auto& el : els) {
    eph.publish(ProviderId{1 + static_cast<std::uint32_t>(seed % 3)}, el);
  }

  TopologyBuilder topo(eph);
  for (int i = 0; i < 3; ++i) {
    GroundSite site;
    site.name = "gs" + std::to_string(i);
    site.location = rng.surfacePoint();
    site.provider = ProviderId{7};
    topo.addGroundStation(site);
  }
  for (int i = 0; i < 4; ++i) {
    GroundSite site;
    site.name = "user" + std::to_string(i);
    site.location = rng.surfacePoint();
    site.provider = ProviderId{8};
    topo.addUser(site);
  }

  SnapshotOptions opt;
  opt.wiring = wiring;
  opt.planes = wc.planes;
  opt.nearestK = 4;
  return topo.snapshot(rng.uniform(0.0, 6000.0), opt);
}

/// A cost model exercising every weight the compiled per-edge cost bakes in.
LinkCostFn richCost() {
  CostWeights w;
  w.latencyWeight = 1.0;
  w.bandwidthWeight = 1e5;
  w.hopPenalty = 1e-4;
  w.foreignPenalty = 2e-4;
  return makeCostFunction(w);
}

class EngineVsLegacy
    : public ::testing::TestWithParam<std::tuple<IslWiring, std::uint64_t>> {};

TEST_P(EngineVsLegacy, PointQueriesMatchBitForBit) {
  const auto [wiring, seed] = GetParam();
  EphemerisService eph;
  Rng rng(seed);
  const NetworkGraph g = randomSnapshot(wiring, seed, eph, rng);
  for (const LinkCostFn& cost : {latencyCost(), richCost()}) {
    const ProviderId home{1};
    const RouteEngine engine(g, cost, home);
    const auto& nodes = g.nodes();
    ASSERT_FALSE(nodes.empty());
    for (int q = 0; q < 40; ++q) {
      const NodeId src =
          nodes[static_cast<std::size_t>(rng.uniformInt(0, nodes.size() - 1))];
      const NodeId dst =
          nodes[static_cast<std::size_t>(rng.uniformInt(0, nodes.size() - 1))];
      const Route want = legacy::shortestPath(g, src, dst, cost, home);
      const Route got = engine.shortestPath(src, dst);
      ASSERT_EQ(got.valid(), want.valid())
          << "src=" << src.value() << " dst=" << dst.value();
      expectRoutesIdentical(got, want);
    }
  }
}

TEST_P(EngineVsLegacy, SingleSourceTreesMatch) {
  const auto [wiring, seed] = GetParam();
  EphemerisService eph;
  Rng rng(seed + 1000);
  const NetworkGraph g = randomSnapshot(wiring, seed, eph, rng);
  const auto cost = latencyCost();
  const RouteEngine engine(g, cost);
  const auto& nodes = g.nodes();
  for (int q = 0; q < 4; ++q) {
    const NodeId src =
        nodes[static_cast<std::size_t>(rng.uniformInt(0, nodes.size() - 1))];
    const auto want = legacy::shortestPathTree(g, src, cost);
    const PathTree tree = engine.shortestPathTree(src);
    ASSERT_TRUE(tree.valid());
    EXPECT_EQ(tree.source(), src);
    const auto got = tree.allRoutes();
    ASSERT_EQ(got.size(), want.size());
    for (const auto& [dst, wantRoute] : want) {
      const auto it = got.find(dst);
      ASSERT_NE(it, got.end()) << "missing dst " << dst.value();
      expectRoutesIdentical(it->second, wantRoute);
      EXPECT_TRUE(tree.reaches(dst));
      EXPECT_EQ(bitsOf(tree.costTo(dst)), bitsOf(wantRoute.cost));
      expectRoutesIdentical(tree.routeTo(dst), wantRoute);
    }
  }
}

TEST_P(EngineVsLegacy, YenKShortestMatch) {
  const auto [wiring, seed] = GetParam();
  EphemerisService eph;
  Rng rng(seed + 2000);
  const NetworkGraph g = randomSnapshot(wiring, seed, eph, rng);
  const auto cost = latencyCost();
  const RouteEngine engine(g, cost);
  const auto& nodes = g.nodes();
  for (int q = 0; q < 3; ++q) {
    const NodeId src =
        nodes[static_cast<std::size_t>(rng.uniformInt(0, nodes.size() - 1))];
    const NodeId dst =
        nodes[static_cast<std::size_t>(rng.uniformInt(0, nodes.size() - 1))];
    const auto want = legacy::kShortestPaths(g, src, dst, 5, cost);
    const auto got = engine.kShortestPaths(src, dst, 5);
    ASSERT_EQ(got.size(), want.size())
        << "src=" << src.value() << " dst=" << dst.value();
    for (std::size_t i = 0; i < want.size(); ++i) {
      expectRoutesIdentical(got[i], want[i]);
    }
  }
}

TEST_P(EngineVsLegacy, BatchParallelBitIdenticalToSerial) {
  const auto [wiring, seed] = GetParam();
  EphemerisService eph;
  Rng rng(seed + 3000);
  const NetworkGraph g = randomSnapshot(wiring, seed, eph, rng);
  const RouteEngine engine(g, latencyCost());
  const std::vector<NodeId> sources = g.nodesOfKind(NodeKind::Satellite);
  ASSERT_FALSE(sources.empty());

  const std::size_t pool = parallelThreadCount();
  setParallelThreadCount(1);
  const auto serial = engine.batchShortestPathTrees(sources);
  setParallelThreadCount(pool);
  const auto parallel = engine.batchShortestPathTrees(sources);

  ASSERT_EQ(serial.size(), sources.size());
  ASSERT_EQ(parallel.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(serial[i].source(), sources[i]);
    EXPECT_EQ(parallel[i].source(), sources[i]);
    const auto& ds = serial[i].distByIndex();
    const auto& dp = parallel[i].distByIndex();
    ASSERT_EQ(ds.size(), dp.size());
    for (std::size_t j = 0; j < ds.size(); ++j) {
      ASSERT_EQ(bitsOf(ds[j]), bitsOf(dp[j])) << "source " << i << " node " << j;
    }
    ASSERT_EQ(serial[i].parentEdgeByIndex(), parallel[i].parentEdgeByIndex());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Wirings, EngineVsLegacy,
    ::testing::Combine(::testing::Values(IslWiring::PlusGrid,
                                         IslWiring::NearestNeighbors,
                                         IslWiring::AllInRange),
                       ::testing::Values(1, 2, 3)));

// --- Arena reuse: repeated queries on one engine are stateless --------------

TEST(RouteEngineArena, RepeatedAndInterleavedQueriesAreStateless) {
  EphemerisService eph;
  Rng rng(42);
  const NetworkGraph g =
      randomSnapshot(IslWiring::NearestNeighbors, 4, eph, rng);
  const RouteEngine engine(g, latencyCost());
  const auto& nodes = g.nodes();
  const NodeId a = nodes.front();
  const NodeId b = nodes.back();
  const NodeId c = nodes[nodes.size() / 2];

  const Route first = engine.shortestPath(a, b);
  // Dirty every arena the engine owns: tree scratch, Yen's forbidden-node /
  // forbidden-edge masks, other point queries.
  (void)engine.shortestPathTree(c);
  (void)engine.kShortestPaths(b, c, 4);
  (void)engine.shortestPath(c, a);
  const Route again = engine.shortestPath(a, b);
  expectRoutesIdentical(again, first);

  // And a freshly-built engine agrees, so reuse leaks no state at all.
  const RouteEngine fresh(g, latencyCost());
  expectRoutesIdentical(fresh.shortestPath(a, b), first);
}

// --- Compile-time semantics -------------------------------------------------

TEST(RouteEngineCompile, ForbiddenEdgesMatchLegacyAvoidance) {
  EphemerisService eph;
  Rng rng(7);
  const NetworkGraph g = randomSnapshot(IslWiring::PlusGrid, 2, eph, rng);
  // Forbid RF ISLs outright (+inf): compiled out of the CSR, lazily skipped
  // by legacy — results must still agree.
  const LinkCostFn cost = [](const NetworkGraph& graph, const Link& l,
                             ProviderId) {
    if (l.type == LinkType::IslRf) {
      return std::numeric_limits<double>::infinity();
    }
    return l.totalDelayS();
  };
  const RouteEngine engine(g, cost);
  const auto& nodes = g.nodes();
  for (int q = 0; q < 20; ++q) {
    const NodeId src =
        nodes[static_cast<std::size_t>(rng.uniformInt(0, nodes.size() - 1))];
    const NodeId dst =
        nodes[static_cast<std::size_t>(rng.uniformInt(0, nodes.size() - 1))];
    expectRoutesIdentical(engine.shortestPath(src, dst),
                          legacy::shortestPath(g, src, dst, cost));
  }
}

TEST(RouteEngineCompile, NegativeCostThrowsAtCompile) {
  EphemerisService eph;
  Rng rng(9);
  const NetworkGraph g = randomSnapshot(IslWiring::PlusGrid, 2, eph, rng);
  const LinkCostFn bad = [](const NetworkGraph&, const Link&, ProviderId) {
    return -1.0;
  };
  EXPECT_THROW(RouteEngine(g, bad), InvalidArgumentError);
}

TEST(RouteEngineCompile, UnknownEndpointsThrow) {
  EphemerisService eph;
  Rng rng(11);
  const NetworkGraph g = randomSnapshot(IslWiring::PlusGrid, 2, eph, rng);
  const RouteEngine engine(g, latencyCost());
  const NodeId bogus{999'999};
  EXPECT_THROW((void)engine.shortestPath(g.nodes().front(), bogus),
               NotFoundError);
  EXPECT_THROW((void)engine.shortestPathTree(bogus), NotFoundError);
  EXPECT_THROW((void)engine.batchShortestPathTrees({g.nodes().front(), bogus}),
               NotFoundError);
  EXPECT_THROW((void)engine.kShortestPaths(bogus, g.nodes().front(), 2),
               NotFoundError);
  EXPECT_THROW((void)engine.kShortestPaths(g.nodes().front(),
                                           g.nodes().back(), 0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace openspace
