// Unit tests for the orbit module: elements, Kepler solver, propagation,
// Walker constellations, visibility, contact windows, ephemeris service.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include <openspace/geo/error.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/ephemeris.hpp>
#include <openspace/orbit/visibility.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Elements, CircularFactory) {
  const auto el = OrbitalElements::circular(km(780.0), deg2rad(86.4), 1.0, 2.0);
  EXPECT_NEAR(el.semiMajorAxisM, wgs84::kMeanRadiusM + 780e3, 1e-6);
  EXPECT_DOUBLE_EQ(el.eccentricity, 0.0);
  EXPECT_DOUBLE_EQ(el.raanRad, 1.0);
  EXPECT_DOUBLE_EQ(el.meanAnomalyAtEpochRad, 2.0);
  EXPECT_THROW(OrbitalElements::circular(0.0, 0.0, 0.0, 0.0),
               InvalidArgumentError);
}

TEST(Elements, IridiumPeriodAbout100Minutes) {
  const auto el = OrbitalElements::circular(km(780.0), deg2rad(86.4), 0, 0);
  EXPECT_NEAR(el.periodS(), 100.0 * 60.0, 120.0);  // ~100.1 min
}

TEST(Elements, PeriodGrowsWithAltitude) {
  const auto low = OrbitalElements::circular(km(400.0), 0, 0, 0);
  const auto high = OrbitalElements::circular(km(1200.0), 0, 0, 0);
  EXPECT_LT(low.periodS(), high.periodS());
}

TEST(Elements, MeanMotionMatchesPeriod) {
  const auto el = OrbitalElements::circular(km(780.0), 0.5, 0, 0);
  EXPECT_NEAR(el.meanMotionRadPerS() * el.periodS(), 2 * kPi, 1e-9);
}

TEST(Kepler, CircularIsIdentity) {
  EXPECT_DOUBLE_EQ(solveKepler(1.234, 0.0), 1.234);
}

class KeplerResidual
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(KeplerResidual, SatisfiesKeplersEquation) {
  const auto [m, e] = GetParam();
  const double eAnom = solveKepler(m, e);
  EXPECT_NEAR(eAnom - e * std::sin(eAnom), m, 1e-10)
      << "M=" << m << " e=" << e;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KeplerResidual,
    ::testing::Combine(::testing::Values(-5.0, -1.0, 0.0, 0.5, 1.5, 3.0, 6.2,
                                         12.5),
                       ::testing::Values(0.0, 0.01, 0.1, 0.5, 0.9, 0.99)));

TEST(Kepler, ConvergesAcrossHighEccentricityGrid) {
  // Regression: plain Newton from the pi start oscillates for e ~> 0.82
  // with mean anomaly near +-pi and used to exit unconverged after 20
  // iterations, leaving residuals of whole radians (found by the batch
  // kernel's warm-vs-cold property tests). The bisection-safeguarded
  // fallback must hold every residual at solver tolerance.
  for (double e = 0.80; e < 0.999; e += 0.01) {
    for (double m = -3.14; m <= 3.14; m += 0.05) {
      const double eAnom = solveKepler(m, e);
      EXPECT_NEAR(eAnom - e * std::sin(eAnom), m, 1e-12)
          << "M=" << m << " e=" << e;
    }
  }
}

TEST(Kepler, InvalidEccentricityThrows) {
  EXPECT_THROW(solveKepler(1.0, -0.1), InvalidArgumentError);
  EXPECT_THROW(solveKepler(1.0, 1.0), InvalidArgumentError);
}

TEST(Propagate, RadiusConstantForCircularOrbit) {
  const auto el = OrbitalElements::circular(km(780.0), deg2rad(53.0), 0.4, 1.1);
  for (double t = 0.0; t < el.periodS(); t += el.periodS() / 17.0) {
    EXPECT_NEAR(positionEci(el, t).norm(), el.semiMajorAxisM, 1.0);
  }
}

TEST(Propagate, PeriodicInOnePeriod) {
  const auto el = OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.7, 0.3);
  const Vec3 p0 = positionEci(el, 0.0);
  const Vec3 p1 = positionEci(el, el.periodS());
  EXPECT_NEAR(p0.distanceTo(p1), 0.0, 1.0);
}

TEST(Propagate, VelocityMatchesVisViva) {
  const auto el = OrbitalElements::circular(km(780.0), 1.0, 0.0, 0.0);
  const StateVector sv = propagate(el, 100.0);
  const double vExpected = std::sqrt(wgs84::kMuM3PerS2 / el.semiMajorAxisM);
  EXPECT_NEAR(sv.velocityMps.norm(), vExpected, 0.5);
}

TEST(Propagate, VelocityPerpendicularToRadiusForCircular) {
  const auto el = OrbitalElements::circular(km(500.0), 0.9, 0.2, 0.5);
  const StateVector sv = propagate(el, 1234.0);
  EXPECT_NEAR(sv.positionM.normalized().dot(sv.velocityMps.normalized()), 0.0,
              1e-9);
}

TEST(Propagate, VelocityIsNumericalDerivativeOfPosition) {
  const auto el = OrbitalElements::circular(km(780.0), 1.2, 0.3, 0.9);
  const double t = 500.0, h = 1e-3;
  const Vec3 numeric =
      (positionEci(el, t + h) - positionEci(el, t - h)) / (2.0 * h);
  const Vec3 analytic = propagate(el, t).velocityMps;
  EXPECT_NEAR(numeric.distanceTo(analytic), 0.0, 0.01);
}

TEST(Propagate, InclinationBoundsLatitude) {
  const double incl = deg2rad(53.0);
  const auto el = OrbitalElements::circular(km(550.0), incl, 0.0, 0.0);
  double maxLat = 0.0;
  for (double t = 0.0; t < el.periodS(); t += 20.0) {
    const Vec3 p = positionEci(el, t);
    const double lat = std::asin(p.z / p.norm());
    maxLat = std::max(maxLat, std::abs(lat));
  }
  EXPECT_NEAR(maxLat, incl, 0.01);
}

TEST(Propagate, EccentricOrbitRespectsApsides) {
  OrbitalElements el;
  el.semiMajorAxisM = wgs84::kMeanRadiusM + 1000e3;
  el.eccentricity = 0.1;
  const double rPeri = el.semiMajorAxisM * (1 - el.eccentricity);
  const double rApo = el.semiMajorAxisM * (1 + el.eccentricity);
  for (double t = 0.0; t < el.periodS(); t += el.periodS() / 50.0) {
    const double r = positionEci(el, t).norm();
    EXPECT_GE(r, rPeri - 1.0);
    EXPECT_LE(r, rApo + 1.0);
  }
  EXPECT_NEAR(positionEci(el, 0.0).norm(), rPeri, 1.0);  // M0=0 => perigee
}

TEST(GroundTrack, CoversRequestedSpanAndValidatesArgs) {
  const auto el = OrbitalElements::circular(km(780.0), deg2rad(86.4), 0, 0);
  const auto track = groundTrack(el, 0.0, 600.0, 60.0);
  ASSERT_EQ(track.size(), 11u);
  EXPECT_DOUBLE_EQ(track.front().tSeconds, 0.0);
  EXPECT_DOUBLE_EQ(track.back().tSeconds, 600.0);
  for (const auto& p : track) {
    EXPECT_NEAR(p.altitudeM, 780e3, 30e3);  // ellipsoid vs sphere slack
  }
  EXPECT_THROW(groundTrack(el, 0, 10, 0), InvalidArgumentError);
  EXPECT_THROW(groundTrack(el, 10, 0, 1), InvalidArgumentError);
}

// --- Walker ------------------------------------------------------------

TEST(Walker, IridiumConfigShape) {
  const auto cfg = iridiumConfig();
  const auto sats = makeWalkerStar(cfg);
  ASSERT_EQ(sats.size(), 66u);
  // 6 distinct RAANs spread over < 180 degrees.
  std::set<long> raans;
  for (const auto& s : sats) {
    raans.insert(std::lround(s.raanRad * 1e6));
    EXPECT_NEAR(s.inclinationRad, deg2rad(86.4), 1e-12);
    EXPECT_NEAR(s.perigeeAltitudeM(), 780e3, 1.0);
  }
  EXPECT_EQ(raans.size(), 6u);
  EXPECT_LT(*std::max_element(raans.begin(), raans.end()),
            std::lround(kPi * 1e6));
}

TEST(Walker, DeltaSpreadsPlanesOver360) {
  WalkerConfig cfg;
  cfg.totalSatellites = 12;
  cfg.planes = 4;
  cfg.phasing = 1;
  cfg.altitudeM = km(550.0);
  cfg.inclinationRad = deg2rad(53.0);
  const auto sats = makeWalkerDelta(cfg);
  std::set<long> raans;
  for (const auto& s : sats) raans.insert(std::lround(s.raanRad * 1e6));
  ASSERT_EQ(raans.size(), 4u);
  // Last plane RAAN = 3/4 * 360 = 270 deg > 180 deg.
  EXPECT_GT(*std::max_element(raans.begin(), raans.end()),
            std::lround(kPi * 1e6));
}

TEST(Walker, InPlanePhasingIsEven) {
  const auto sats = makeWalkerStar(iridiumConfig());
  // Plane 0 has 11 satellites spaced 2*pi/11.
  for (int s = 0; s + 1 < 11; ++s) {
    const double gap = sats[static_cast<std::size_t>(s) + 1].meanAnomalyAtEpochRad -
                       sats[static_cast<std::size_t>(s)].meanAnomalyAtEpochRad;
    EXPECT_NEAR(gap, 2 * kPi / 11, 1e-12);
  }
}

TEST(Walker, InvalidConfigsThrow) {
  WalkerConfig cfg = iridiumConfig();
  cfg.planes = 7;  // does not divide 66
  EXPECT_THROW(makeWalkerStar(cfg), InvalidArgumentError);
  cfg = iridiumConfig();
  cfg.phasing = 6;  // >= planes
  EXPECT_THROW(makeWalkerStar(cfg), InvalidArgumentError);
  cfg = iridiumConfig();
  cfg.altitudeM = -5.0;
  EXPECT_THROW(makeWalkerStar(cfg), InvalidArgumentError);
  cfg = iridiumConfig();
  cfg.totalSatellites = 0;
  EXPECT_THROW(makeWalkerStar(cfg), InvalidArgumentError);
}

TEST(Walker, CboConfigMatchesPaper) {
  const auto cfg = cboConfig();
  EXPECT_EQ(cfg.totalSatellites, 72);
  EXPECT_EQ(cfg.planes, 6);
  EXPECT_NEAR(cfg.inclinationRad, deg2rad(80.0), 1e-12);
  EXPECT_EQ(makeWalkerStar(cfg).size(), 72u);
}

TEST(RandomConstellation, SizeAltitudeAndDeterminism) {
  Rng rngA(5), rngB(5);
  const auto a = makeRandomConstellation(25, km(780.0), rngA);
  const auto b = makeRandomConstellation(25, km(780.0), rngB);
  ASSERT_EQ(a.size(), 25u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].raanRad, b[i].raanRad);
    EXPECT_DOUBLE_EQ(a[i].inclinationRad, b[i].inclinationRad);
    EXPECT_NEAR(a[i].perigeeAltitudeM(), 780e3, 1e-6);
  }
  EXPECT_THROW(makeRandomConstellation(-1, km(780.0), rngA),
               InvalidArgumentError);
  EXPECT_THROW(makeRandomConstellation(1, 0.0, rngA), InvalidArgumentError);
}

TEST(RandomConstellation, OrbitNormalsAreaUniform) {
  // acos(U[-1,1]) inclination sampling => mean inclination pi/2.
  Rng rng(11);
  const auto sats = makeRandomConstellation(4000, km(780.0), rng);
  double sum = 0.0;
  for (const auto& s : sats) sum += s.inclinationRad;
  EXPECT_NEAR(sum / static_cast<double>(sats.size()), kPi / 2, 0.03);
}

// --- Visibility ----------------------------------------------------------

TEST(Footprint, HalfAngleShrinksWithMask) {
  const double h = 780e3;
  const double l0 = footprintHalfAngleRad(h, 0.0);
  const double l10 = footprintHalfAngleRad(h, deg2rad(10.0));
  const double l40 = footprintHalfAngleRad(h, deg2rad(40.0));
  EXPECT_GT(l0, l10);
  EXPECT_GT(l10, l40);
  EXPECT_GT(l40, 0.0);
}

TEST(Footprint, KnownGeometryAtZeroMask) {
  // lambda = acos(Re/(Re+h)) at zero elevation.
  const double h = 780e3;
  const double expected =
      std::acos(wgs84::kMeanRadiusM / (wgs84::kMeanRadiusM + h));
  EXPECT_NEAR(footprintHalfAngleRad(h, 0.0), expected, 1e-12);
}

TEST(Footprint, InvalidArgsThrow) {
  EXPECT_THROW(footprintHalfAngleRad(0.0, 0.1), InvalidArgumentError);
  EXPECT_THROW(footprintHalfAngleRad(780e3, -0.1), InvalidArgumentError);
  EXPECT_THROW(footprintHalfAngleRad(780e3, 2.0), InvalidArgumentError);
}

TEST(SlantRange, AltitudeAtZenithAndLongerAtMask) {
  const double h = 780e3;
  // At 90 degrees elevation the slant range is the altitude itself.
  EXPECT_NEAR(maxSlantRangeM(h, kPi / 2 * 0.9999), h, 2e3);
  EXPECT_GT(maxSlantRangeM(h, deg2rad(10.0)), h);
  EXPECT_GT(maxSlantRangeM(h, 0.0), maxSlantRangeM(h, deg2rad(10.0)));
}

TEST(Visibility, SatelliteDirectlyOverhead) {
  const Geodetic site = Geodetic::fromDegrees(0.0, 0.0);
  // Equatorial orbit passing over lon 0 at t=0: phase 0, raan 0, incl 0.
  const auto el = OrbitalElements::circular(km(780.0), 0.0, 0.0, 0.0);
  EXPECT_TRUE(isVisible(positionEci(el, 0.0), site, 0.0, deg2rad(80.0)));
  EXPECT_NEAR(elevationFrom(positionEci(el, 0.0), site, 0.0), kPi / 2, 0.02);
}

TEST(Visibility, AntipodalSatelliteNotVisible) {
  const Geodetic site = Geodetic::fromDegrees(0.0, 180.0);
  const auto el = OrbitalElements::circular(km(780.0), 0.0, 0.0, 0.0);
  EXPECT_FALSE(isVisible(positionEci(el, 0.0), site, 0.0, 0.0));
}

TEST(ContactWindows, EquatorialPassStructure) {
  const Geodetic site = Geodetic::fromDegrees(0.0, 0.0);
  const auto el = OrbitalElements::circular(km(780.0), 0.0, 0.0, 0.0);
  const auto windows =
      contactWindows(el, site, 0.0, el.periodS() * 2.0, deg2rad(10.0), 10.0);
  ASSERT_GE(windows.size(), 1u);
  // Satellite is overhead at t=0, so the first window starts at 0.
  EXPECT_DOUBLE_EQ(windows.front().startS, 0.0);
  for (const auto& w : windows) {
    EXPECT_GT(w.durationS(), 0.0);
    EXPECT_LT(w.durationS(), 20 * 60.0);  // LEO passes are minutes long
  }
  // Windows are disjoint and ordered.
  for (std::size_t i = 1; i < windows.size(); ++i) {
    EXPECT_GT(windows[i].startS, windows[i - 1].endS);
  }
}

TEST(ContactWindows, EdgeRefinementIsTight) {
  const Geodetic site = Geodetic::fromDegrees(0.0, 0.0);
  const auto el = OrbitalElements::circular(km(780.0), 0.0, 0.0, 0.0);
  const double mask = deg2rad(10.0);
  const auto windows = contactWindows(el, site, 0.0, el.periodS(), mask, 30.0);
  ASSERT_FALSE(windows.empty());
  const double end = windows.front().endS;
  // Elevation at the refined edge is within a hair of the mask.
  const double elevAtEnd = elevationFrom(positionEci(el, end), site, end);
  EXPECT_NEAR(elevAtEnd, mask, 1e-4);
}

TEST(ContactWindows, NoWindowsForPolarSiteEquatorialOrbit) {
  const Geodetic pole = Geodetic::fromDegrees(89.9, 0.0);
  const auto el = OrbitalElements::circular(km(780.0), 0.0, 0.0, 0.0);
  const auto windows = contactWindows(el, pole, 0.0, el.periodS(), deg2rad(10.0));
  EXPECT_TRUE(windows.empty());
}

TEST(ContactWindows, InvalidArgsThrow) {
  const auto el = OrbitalElements::circular(km(780.0), 0.0, 0.0, 0.0);
  const Geodetic site = Geodetic::fromDegrees(0.0, 0.0);
  EXPECT_THROW(contactWindows(el, site, 0.0, 100.0, 0.1, 0.0),
               InvalidArgumentError);
  EXPECT_THROW(contactWindows(el, site, 100.0, 0.0, 0.1), InvalidArgumentError);
}

// --- Ephemeris -------------------------------------------------------------

TEST(Ephemeris, PublishAndLookup) {
  EphemerisService eph;
  const auto el = OrbitalElements::circular(km(780.0), 1.0, 0.5, 0.0);
  const SatelliteId id = eph.publish(ProviderId{7}, el);
  EXPECT_TRUE(eph.contains(id));
  EXPECT_EQ(eph.record(id).owner, ProviderId{7u});
  EXPECT_EQ(eph.size(), 1u);
  EXPECT_EQ(eph.positionEci(id, 50.0), positionEci(el, 50.0));
}

TEST(Ephemeris, UnknownIdThrows) {
  EphemerisService eph;
  EXPECT_THROW(eph.record(SatelliteId{42}), NotFoundError);
  EXPECT_THROW(eph.positionEci(SatelliteId{42}, 0.0), NotFoundError);
  EXPECT_FALSE(eph.contains(SatelliteId{42}));
}

TEST(Ephemeris, ExplicitIdsAndCollision) {
  EphemerisService eph;
  const auto el = OrbitalElements::circular(km(500.0), 0, 0, 0);
  eph.publishWithId(SatelliteId{100}, ProviderId{1}, el);
  EXPECT_THROW(eph.publishWithId(SatelliteId{100}, ProviderId{2}, el), InvalidArgumentError);
  // Auto-assign skips taken ids.
  const SatelliteId next = eph.publish(ProviderId{1}, el);
  EXPECT_NE(next, SatelliteId{100u});
  EXPECT_TRUE(eph.contains(next));
}

TEST(Ephemeris, SatellitesOfFiltersByOwner) {
  EphemerisService eph;
  const auto el = OrbitalElements::circular(km(500.0), 0, 0, 0);
  const auto a1 = eph.publish(ProviderId{1}, el);
  const auto b1 = eph.publish(ProviderId{2}, el);
  const auto a2 = eph.publish(ProviderId{1}, el);
  const auto mine = eph.satellitesOf(ProviderId{1});
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_EQ(mine[0], a1);
  EXPECT_EQ(mine[1], a2);
  EXPECT_EQ(eph.satellitesOf(ProviderId{2}).size(), 1u);
  EXPECT_EQ(eph.satellitesOf(ProviderId{2})[0], b1);
  EXPECT_TRUE(eph.satellitesOf(ProviderId{3}).empty());
}

TEST(Ephemeris, PublicTopologyIsSharedKnowledge) {
  // Any participant can predict any satellite's position arbitrarily far
  // ahead — the property OpenSpace routing rests on.
  EphemerisService eph;
  const auto el = OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.1, 0.2);
  const SatelliteId id = eph.publish(ProviderId{1}, el);
  const double future = 7 * 24 * 3600.0;  // one week out
  EXPECT_EQ(eph.positionEci(id, future), positionEci(el, future));
}

}  // namespace
}  // namespace openspace
