// Unit tests for the econ module: ledgers, cross-verification, settlement,
// peering recommendation, capex model.
#include <gtest/gtest.h>

#include <openspace/econ/capex.hpp>
#include <openspace/econ/ledger.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>

namespace openspace {
namespace {

TEST(Ledger, RecordAndQuery) {
  TrafficLedger ledger(ProviderId{1});
  ledger.record(ProviderId{2}, ProviderId{1}, 1000.0);
  ledger.record(ProviderId{2}, ProviderId{1}, 500.0);
  ledger.record(ProviderId{3}, ProviderId{1}, 200.0);
  EXPECT_DOUBLE_EQ(ledger.carriedBytes(ProviderId{2}, ProviderId{1}), 1500.0);
  EXPECT_DOUBLE_EQ(ledger.carriedBytes(ProviderId{3}, ProviderId{1}), 200.0);
  EXPECT_DOUBLE_EQ(ledger.carriedBytes(ProviderId{9}, ProviderId{9}), 0.0);
  EXPECT_EQ(ledger.observer(), ProviderId{1u});
  EXPECT_THROW(ledger.record(ProviderId{2}, ProviderId{1}, -1.0), InvalidArgumentError);
}

TEST(Ledger, TransitExcludesSelfCarriage) {
  TrafficLedger ledger(ProviderId{2});
  ledger.record(ProviderId{2}, ProviderId{1}, 1000.0);  // carried for someone else
  ledger.record(ProviderId{2}, ProviderId{2}, 9999.0);  // own traffic on own assets
  EXPECT_DOUBLE_EQ(ledger.totalTransitBytes(ProviderId{2}), 1000.0);
}

/// Builds a 3-provider path graph: user(P1) - satA(P2) - satB(P3) - gs(P1).
class SettlementTest : public ::testing::Test {
 protected:
  SettlementTest() {
    auto addNode = [&](NodeId id, NodeKind kind, ProviderId p) {
      Node n;
      n.id = id;
      n.kind = kind;
      n.provider = p;
      n.name = "n" + std::to_string(id.value());
      if (kind == NodeKind::Satellite) {
        n.satellite = SatelliteId{id.value()};
      } else {
        n.location = Geodetic::fromDegrees(0, 0);
      }
      g_.addNode(std::move(n));
    };
    addNode(NodeId{1}, NodeKind::User, ProviderId{1});
    addNode(NodeId{2}, NodeKind::Satellite, ProviderId{2});
    addNode(NodeId{3}, NodeKind::Satellite, ProviderId{3});
    addNode(NodeId{4}, NodeKind::GroundStation, ProviderId{1});
    auto addLink = [&](NodeId a, NodeId b) {
      Link l;
      l.a = a;
      l.b = b;
      l.capacityBps = 1e9;
      l.distanceM = 1000e3;
      l.propagationDelayS = l.distanceM / kSpeedOfLightMps;
      g_.addLink(l);
    };
    addLink(NodeId{1}, NodeId{2});
    addLink(NodeId{2}, NodeId{3});
    addLink(NodeId{3}, NodeId{4});
    route_ = shortestPath(g_, NodeId{1}, NodeId{4}, latencyCost());
  }
  NetworkGraph g_;
  Route route_;
};

TEST_F(SettlementTest, RouteAttributionPerTransmittingProvider) {
  SettlementEngine engine;
  engine.recordRouteTraffic(g_, route_, /*owner=*/ProviderId{1}, 1e6);
  // Hop 1->2 transmitted by user (P1, owner: free). Hop 2->3 by sat P2.
  // Hop 3->4 by sat P3.
  EXPECT_DOUBLE_EQ(engine.ledger(ProviderId{1}).carriedBytes(ProviderId{2}, ProviderId{1}), 1e6);
  EXPECT_DOUBLE_EQ(engine.ledger(ProviderId{1}).carriedBytes(ProviderId{3}, ProviderId{1}), 1e6);
  EXPECT_DOUBLE_EQ(engine.ledger(ProviderId{2}).carriedBytes(ProviderId{2}, ProviderId{1}), 1e6);
  EXPECT_DOUBLE_EQ(engine.ledger(ProviderId{3}).carriedBytes(ProviderId{3}, ProviderId{1}), 1e6);
  // Own infrastructure is never billed.
  EXPECT_DOUBLE_EQ(engine.ledger(ProviderId{1}).carriedBytes(ProviderId{1}, ProviderId{1}), 0.0);
  EXPECT_TRUE(engine.crossVerify());
}

TEST_F(SettlementTest, SettlementUsesTariffs) {
  SettlementEngine engine;
  engine.setTariff({ProviderId{2}, ProviderId{0}, 0.10});   // P2 default rate
  engine.setTariff({ProviderId{3}, ProviderId{1}, 0.50});   // P3 bilateral rate for P1
  engine.recordRouteTraffic(g_, route_, ProviderId{1}, 1e9);  // 1 GB
  const auto items = engine.settle();
  ASSERT_EQ(items.size(), 2u);
  double toP2 = 0.0, toP3 = 0.0;
  for (const auto& it : items) {
    EXPECT_EQ(it.payer, ProviderId{1u});
    if (it.payee == ProviderId{2}) toP2 = it.amountUsd;
    if (it.payee == ProviderId{3}) toP3 = it.amountUsd;
  }
  EXPECT_NEAR(toP2, 0.10, 1e-9);
  EXPECT_NEAR(toP3, 0.50, 1e-9);
}

TEST_F(SettlementTest, TariffFallbackAndValidation) {
  SettlementEngine engine;
  engine.setTariff({ProviderId{2}, ProviderId{}, 0.20});
  EXPECT_DOUBLE_EQ(engine.tariffUsdPerGb(ProviderId{2}, ProviderId{7}), 0.20);  // default
  engine.setTariff({ProviderId{2}, ProviderId{7}, 0.05});
  EXPECT_DOUBLE_EQ(engine.tariffUsdPerGb(ProviderId{2}, ProviderId{7}), 0.05);  // bilateral wins
  EXPECT_DOUBLE_EQ(engine.tariffUsdPerGb(ProviderId{9}, ProviderId{7}), 0.0);   // unknown carrier
  EXPECT_THROW(engine.setTariff({ProviderId{1}, ProviderId{}, -0.1}), InvalidArgumentError);
}

TEST_F(SettlementTest, CrossVerifyDetectsInflatedBooks) {
  SettlementEngine engine;
  engine.recordRouteTraffic(g_, route_, ProviderId{1}, 1e6);
  ASSERT_TRUE(engine.crossVerify());
  // Carrier P2 inflates its own books beyond what the owner saw.
  const_cast<TrafficLedger&>(engine.ledger(ProviderId{2})).record(ProviderId{2}, ProviderId{1}, 5e5);
  EXPECT_FALSE(engine.crossVerify());
}

TEST_F(SettlementTest, RecordValidation) {
  SettlementEngine engine;
  EXPECT_THROW(engine.recordRouteTraffic(g_, Route{}, ProviderId{1}, 100.0),
               InvalidArgumentError);
  EXPECT_THROW(engine.recordRouteTraffic(g_, route_, ProviderId{1}, -5.0),
               InvalidArgumentError);
  EXPECT_THROW(engine.ledger(ProviderId{42}), NotFoundError);
}

TEST_F(SettlementTest, PeeringDetection) {
  SettlementEngine engine;
  // Symmetric mutual carriage between 2 and 3 via direct records.
  engine.addProvider(ProviderId{2});
  engine.addProvider(ProviderId{3});
  const_cast<TrafficLedger&>(engine.ledger(ProviderId{2})).record(ProviderId{2}, ProviderId{3}, 1e6);
  const_cast<TrafficLedger&>(engine.ledger(ProviderId{3})).record(ProviderId{3}, ProviderId{2}, 0.9e6);
  const auto peers = engine.recommendPeering(0.7, 1e3);
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].a, ProviderId{2u});
  EXPECT_EQ(peers[0].b, ProviderId{3u});
  EXPECT_NEAR(peers[0].symmetry, 0.9, 1e-9);
  // Raising the bar excludes them.
  EXPECT_TRUE(engine.recommendPeering(0.95, 1e3).empty());
  // Volume floor excludes small pairs.
  EXPECT_TRUE(engine.recommendPeering(0.7, 1e7).empty());
}

// --- capex -------------------------------------------------------------------

TEST(Capex, UnitCostIncludesAllComponents) {
  SatelliteCostModel m;
  m.busCostUsd = 1e6;
  m.integrationCostUsd = 2e5;
  m.launchUsdPerKg = 5000.0;
  m.busMassKg = 100.0;
  m.fccLicensingUsd = 12'145.0;
  m.terminals = {terminals::sBandIsl()};
  const TerminalSpec s = terminals::sBandIsl();
  const double expected =
      1e6 + 2e5 + 12'145.0 + s.unitCostUsd + (100.0 + s.massKg) * 5000.0;
  EXPECT_NEAR(m.unitCostUsd(), expected, 1e-6);
  EXPECT_NEAR(m.totalMassKg(), 100.0 + s.massKg, 1e-12);
}

TEST(Capex, FccFeeMatchesPaper) {
  // §3: "the FCC has proposed small satellite regulatory fees of about
  // $12,145".
  EXPECT_DOUBLE_EQ(rfOnlySatellite().fccLicensingUsd, 12'145.0);
}

TEST(Capex, LaserFleetCarriesThePremium) {
  const double rf = rfOnlySatellite().unitCostUsd();
  const double laser = laserEquippedSatellite().unitCostUsd();
  // Two laser terminals at $500k each plus launch mass.
  EXPECT_GT(laser - rf, 1'000'000.0);
}

TEST(Capex, CollaborationDividesTheBarrier) {
  const auto costs = collaborationCosts(6, 66, 6, rfOnlySatellite(),
                                        GroundStationCostModel{});
  EXPECT_NEAR(costs.totalCollaborativeUsd, costs.monolithicCapexUsd, 1.0);
  EXPECT_LT(costs.perProviderCapexUsd, costs.monolithicCapexUsd / 5.0);
  EXPECT_GT(costs.perProviderCapexUsd, costs.monolithicCapexUsd / 7.0);
}

TEST(Capex, UnevenSplitChargesTheRemainderHolders) {
  // 7 satellites over 3 providers: shares 3/2/2 -> max share has 3.
  const SatelliteCostModel sat = rfOnlySatellite();
  const GroundStationCostModel gs;
  const auto costs = collaborationCosts(3, 7, 0, sat, gs);
  EXPECT_NEAR(costs.perProviderCapexUsd, 3 * sat.unitCostUsd(), 1e-6);
}

TEST(Capex, DeploymentPlanTotals) {
  DeploymentPlan plan;
  plan.satellites = 10;
  plan.groundStations = 2;
  plan.satelliteModel = rfOnlySatellite();
  plan.stationModel = GroundStationCostModel{};
  EXPECT_NEAR(plan.capexUsd(),
              10 * plan.satelliteModel.unitCostUsd() +
                  2 * plan.stationModel.unitCostUsd(),
              1e-6);
}

TEST(Capex, Validation) {
  EXPECT_THROW(collaborationCosts(0, 66, 6, rfOnlySatellite(),
                                  GroundStationCostModel{}),
               InvalidArgumentError);
  EXPECT_THROW(collaborationCosts(3, 0, 6, rfOnlySatellite(),
                                  GroundStationCostModel{}),
               InvalidArgumentError);
  EXPECT_THROW(collaborationCosts(3, 66, -1, rfOnlySatellite(),
                                  GroundStationCostModel{}),
               InvalidArgumentError);
}

}  // namespace
}  // namespace openspace
