// Unit tests for the topology module: graph container, snapshot builder,
// link capacity assignment.
#include <gtest/gtest.h>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/topology/builder.hpp>

namespace openspace {
namespace {

Node satNode(NodeId id, SatelliteId sid, ProviderId p = ProviderId{1}) {
  Node n;
  n.id = id;
  n.kind = NodeKind::Satellite;
  n.provider = p;
  n.name = "sat";
  n.satellite = sid;
  return n;
}

Node groundNode(NodeId id, NodeKind kind, ProviderId p = ProviderId{1}) {
  Node n;
  n.id = id;
  n.kind = kind;
  n.provider = p;
  n.name = "gs";
  n.location = Geodetic::fromDegrees(0, 0);
  return n;
}

Link mkLink(NodeId a, NodeId b, double cap = 1e6) {
  Link l;
  l.a = a;
  l.b = b;
  l.capacityBps = cap;
  l.distanceM = 1000e3;
  l.propagationDelayS = l.distanceM / kSpeedOfLightMps;
  return l;
}

TEST(Graph, AddAndQueryNodes) {
  NetworkGraph g;
  g.addNode(satNode(NodeId{1}, SatelliteId{10}));
  g.addNode(groundNode(NodeId{2}, NodeKind::GroundStation));
  EXPECT_EQ(g.nodeCount(), 2u);
  EXPECT_TRUE(g.hasNode(NodeId{1}));
  EXPECT_FALSE(g.hasNode(NodeId{3}));
  EXPECT_TRUE(g.node(NodeId{1}).isSatellite());
  EXPECT_TRUE(g.node(NodeId{2}).isGroundStation());
  EXPECT_THROW(g.node(NodeId{99}), NotFoundError);
}

TEST(Graph, DuplicateNodeRejected) {
  NetworkGraph g;
  g.addNode(satNode(NodeId{1}, SatelliteId{10}));
  EXPECT_THROW(g.addNode(satNode(NodeId{1}, SatelliteId{11})), InvalidArgumentError);
}

TEST(Graph, InconsistentNodeRejected) {
  NetworkGraph g;
  Node bad = satNode(NodeId{1}, SatelliteId{10});
  bad.location = Geodetic{};  // satellite with a ground fix: inconsistent
  EXPECT_THROW(g.addNode(bad), InvalidArgumentError);
  Node bad2 = groundNode(NodeId{2}, NodeKind::User);
  bad2.location.reset();  // ground asset without a fix
  EXPECT_THROW(g.addNode(bad2), InvalidArgumentError);
}

TEST(Graph, LinkLifecycle) {
  NetworkGraph g;
  g.addNode(satNode(NodeId{1}, SatelliteId{10}));
  g.addNode(satNode(NodeId{2}, SatelliteId{11}));
  const LinkId lid = g.addLink(mkLink(NodeId{1}, NodeId{2}));
  EXPECT_EQ(g.linkCount(), 1u);
  EXPECT_EQ(g.link(lid).otherEnd(NodeId{1}), NodeId{2u});
  EXPECT_EQ(g.link(lid).otherEnd(NodeId{2}), NodeId{1u});
  EXPECT_THROW(g.link(lid).otherEnd(NodeId{7}), InvalidArgumentError);
  EXPECT_EQ(g.linksOf(NodeId{1}).size(), 1u);
  g.removeLink(lid);
  EXPECT_EQ(g.linkCount(), 0u);
  EXPECT_TRUE(g.linksOf(NodeId{1}).empty());
  EXPECT_THROW(g.removeLink(lid), NotFoundError);
}

TEST(Graph, LinkValidation) {
  NetworkGraph g;
  g.addNode(satNode(NodeId{1}, SatelliteId{10}));
  g.addNode(satNode(NodeId{2}, SatelliteId{11}));
  EXPECT_THROW(g.addLink(mkLink(NodeId{1}, NodeId{99})), NotFoundError);
  EXPECT_THROW(g.addLink(mkLink(NodeId{1}, NodeId{1})), InvalidArgumentError);
  EXPECT_THROW(g.addLink(mkLink(NodeId{1}, NodeId{2}, 0.0)), InvalidArgumentError);
}

TEST(Graph, FindLinkEitherDirection) {
  NetworkGraph g;
  g.addNode(satNode(NodeId{1}, SatelliteId{10}));
  g.addNode(satNode(NodeId{2}, SatelliteId{11}));
  g.addNode(satNode(NodeId{3}, SatelliteId{12}));
  const LinkId lid = g.addLink(mkLink(NodeId{1}, NodeId{2}));
  EXPECT_EQ(g.findLink(NodeId{1}, NodeId{2}), std::optional<LinkId>(lid));
  EXPECT_EQ(g.findLink(NodeId{2}, NodeId{1}), std::optional<LinkId>(lid));
  EXPECT_EQ(g.findLink(NodeId{1}, NodeId{3}), std::nullopt);
  EXPECT_EQ(g.findLink(NodeId{99}, NodeId{1}), std::nullopt);
}

TEST(Graph, NodesOfKind) {
  NetworkGraph g;
  g.addNode(satNode(NodeId{1}, SatelliteId{10}));
  g.addNode(groundNode(NodeId{2}, NodeKind::GroundStation));
  g.addNode(groundNode(NodeId{3}, NodeKind::User));
  g.addNode(satNode(NodeId{4}, SatelliteId{11}));
  EXPECT_EQ(g.nodesOfKind(NodeKind::Satellite).size(), 2u);
  EXPECT_EQ(g.nodesOfKind(NodeKind::GroundStation).size(), 1u);
  EXPECT_EQ(g.nodesOfKind(NodeKind::User).size(), 1u);
}

TEST(Graph, TotalDelayCombinesPropagationAndQueueing) {
  Link l = mkLink(NodeId{1}, NodeId{2});
  l.queueingDelayS = 0.005;
  EXPECT_DOUBLE_EQ(l.totalDelayS(), l.propagationDelayS + 0.005);
}

// --- builder ---------------------------------------------------------------

class BuilderTest : public ::testing::Test {
 protected:
  BuilderTest() {
    for (const auto& el : makeWalkerStar(iridiumConfig())) {
      eph_.publish(ProviderId{static_cast<std::uint32_t>(1 + (eph_.size() % 3))}, el);  // 3 providers interleaved
    }
    builder_ = std::make_unique<TopologyBuilder>(eph_);
  }
  EphemerisService eph_;
  std::unique_ptr<TopologyBuilder> builder_;
};

TEST_F(BuilderTest, SatelliteNodesAreStable) {
  EXPECT_EQ(builder_->satelliteCount(), 66u);
  const SatelliteId sid = eph_.satellites().front();
  const NodeId nid = builder_->nodeOf(sid);
  EXPECT_EQ(builder_->satelliteOf(nid), sid);
  EXPECT_THROW(builder_->nodeOf(SatelliteId{9999}), NotFoundError);
  EXPECT_THROW(builder_->satelliteOf(NodeId{9999}), NotFoundError);
}

TEST_F(BuilderTest, DefaultCapabilitiesAreRfOnly) {
  const auto& caps = builder_->capabilities(eph_.satellites().front());
  EXPECT_FALSE(caps.hasLaserTerminal);
  EXPECT_FALSE(caps.islBands.empty());
}

TEST_F(BuilderTest, CapabilitiesMustIncludeRf) {
  LinkCapabilities caps;
  caps.islBands = {};  // violates the OpenSpace minimum
  EXPECT_THROW(builder_->setCapabilities(eph_.satellites().front(), caps),
               InvalidArgumentError);
  EXPECT_THROW(builder_->setCapabilities(SatelliteId{9999}, LinkCapabilities{}),
               NotFoundError);
}

TEST_F(BuilderTest, PlusGridSnapshotWiresRings) {
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  const NetworkGraph g = builder_->snapshot(0.0, opt);
  EXPECT_EQ(g.nodeCount(), 66u);
  // 66 intra-plane + 55 inter-plane candidate links; nearly all close.
  EXPECT_GE(g.linkCount(), 100u);
  EXPECT_LE(g.linkCount(), 121u);
  // Every satellite has at least 2 ISLs (its ring neighbors).
  for (const NodeId n : g.nodes()) {
    EXPECT_GE(g.linksOf(n).size(), 2u);
  }
}

TEST_F(BuilderTest, PlusGridRequiresValidPlaneCount) {
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 7;  // does not divide 66
  EXPECT_THROW(builder_->snapshot(0.0, opt), InvalidArgumentError);
}

TEST_F(BuilderTest, NearestNeighborsHonorsK) {
  SnapshotOptions opt;
  opt.wiring = IslWiring::NearestNeighbors;
  opt.nearestK = 2;
  const NetworkGraph g2 = builder_->snapshot(0.0, opt);
  opt.nearestK = 6;
  const NetworkGraph g6 = builder_->snapshot(0.0, opt);
  EXPECT_GT(g6.linkCount(), g2.linkCount());
}

TEST_F(BuilderTest, LaserUpgradeTakesEffect) {
  // Give everyone laser terminals: +grid links become optical.
  for (const SatelliteId sid : eph_.satellites()) {
    LinkCapabilities caps;
    caps.islBands = {Band::S};
    caps.hasLaserTerminal = true;
    builder_->setCapabilities(sid, caps);
  }
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  const NetworkGraph g = builder_->snapshot(0.0, opt);
  for (const LinkId lid : g.links()) {
    EXPECT_EQ(g.link(lid).type, LinkType::IslLaser);
    EXPECT_EQ(g.link(lid).band, Band::Optical);
  }
  // preferLaser=false keeps them RF even when capable.
  opt.preferLaser = false;
  const NetworkGraph gRf = builder_->snapshot(0.0, opt);
  for (const LinkId lid : gRf.links()) {
    EXPECT_EQ(gRf.link(lid).type, LinkType::IslRf);
  }
}

TEST_F(BuilderTest, GroundAssetsGetLinksWhenVisible) {
  const NodeId gs = builder_->nodeOf(builder_->addGroundStation(
      {"gs", Geodetic::fromDegrees(45.0, 10.0), ProviderId{9}}));
  const NodeId user =
      builder_->addUser({"u", Geodetic::fromDegrees(-20.0, 130.0), ProviderId{9}});
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  opt.minElevationRad = deg2rad(10.0);
  const NetworkGraph g = builder_->snapshot(0.0, opt);
  EXPECT_EQ(g.nodeCount(), 68u);
  int gsl = 0, ul = 0;
  for (const LinkId lid : g.links()) {
    const Link& l = g.link(lid);
    if (l.type == LinkType::Gsl) {
      ++gsl;
      EXPECT_TRUE(l.a == gs || l.b == gs);
    }
    if (l.type == LinkType::UserLink) {
      ++ul;
      EXPECT_TRUE(l.a == user || l.b == user);
    }
  }
  // A 66-sat polar constellation nearly always covers both sites.
  EXPECT_GE(gsl, 1);
  EXPECT_GE(ul, 1);
}

TEST_F(BuilderTest, ExcludingGroundAssetsWorks) {
  builder_->addGroundStation({"gs", Geodetic::fromDegrees(45.0, 10.0), ProviderId{9}});
  builder_->addUser({"u", Geodetic::fromDegrees(-20.0, 130.0), ProviderId{9}});
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  opt.includeGroundStations = false;
  opt.includeUserLinks = false;
  const NetworkGraph g = builder_->snapshot(0.0, opt);
  EXPECT_EQ(g.nodeCount(), 66u);
}

TEST_F(BuilderTest, ProvidersSurviveIntoSnapshot) {
  SnapshotOptions opt;
  opt.wiring = IslWiring::NearestNeighbors;
  const NetworkGraph g = builder_->snapshot(0.0, opt);
  for (const SatelliteId sid : eph_.satellites()) {
    EXPECT_EQ(g.node(builder_->nodeOf(sid)).provider, eph_.record(sid).owner);
  }
}

TEST_F(BuilderTest, LinkDelayMatchesDistance) {
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  const NetworkGraph g = builder_->snapshot(0.0, opt);
  for (const LinkId lid : g.links()) {
    const Link& l = g.link(lid);
    EXPECT_NEAR(l.propagationDelayS, l.distanceM / kSpeedOfLightMps, 1e-12);
    EXPECT_GT(l.capacityBps, 0.0);
  }
}

TEST(Capacity, LaserBeatsRfAndDecaysWithDistance) {
  EXPECT_GT(islCapacityBps(2000e3, true), islCapacityBps(2000e3, false));
  EXPECT_GE(islCapacityBps(1000e3, false), islCapacityBps(5000e3, false));
  // Beyond some distance the RF MODCOD ladder no longer closes.
  EXPECT_EQ(islCapacityBps(50'000e3, false), 0.0);
}

TEST(Capacity, GroundLinksCloseAtLeoSlantRanges) {
  EXPECT_GT(gslCapacityBps(2000e3, deg2rad(20.0)), 0.0);
  EXPECT_GT(userLinkCapacityBps(2000e3, deg2rad(20.0)), 0.0);
  // Ground station (big dish) out-performs the user terminal.
  EXPECT_GT(gslCapacityBps(2000e3, deg2rad(20.0)),
            userLinkCapacityBps(2000e3, deg2rad(20.0)));
}

}  // namespace
}  // namespace openspace
