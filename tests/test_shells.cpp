// Multi-shell fleet composition: index bookkeeping, hash identity, and
// +grid / cross-shell ISL wiring edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/shells.hpp>
#include <openspace/orbit/snapshot.hpp>

namespace openspace {
namespace {

ShellSpec star(int total, int planes, double altitudeM, double inclDeg,
               int phasing = 0) {
  ShellSpec s;
  s.kind = ShellKind::Star;
  s.walker.totalSatellites = total;
  s.walker.planes = planes;
  s.walker.phasing = phasing;
  s.walker.altitudeM = altitudeM;
  s.walker.inclinationRad = deg2rad(inclDeg);
  return s;
}

ShellSpec delta(int total, int planes, double altitudeM, double inclDeg,
                int phasing = 0) {
  ShellSpec s = star(total, planes, altitudeM, inclDeg, phasing);
  s.kind = ShellKind::Delta;
  return s;
}

TEST(MultiShellFleet, ComposesShellsWithContiguousIndexRanges) {
  MultiShellConfig cfg;
  cfg.shells = {star(66, 6, km(780.0), 86.4, 2), delta(72, 6, km(550.0), 53.0, 1)};
  const MultiShellFleet fleet(cfg);

  EXPECT_EQ(fleet.shellCount(), 2u);
  EXPECT_EQ(fleet.size(), 138u);
  EXPECT_EQ(fleet.shellRange(0), (std::pair<std::size_t, std::size_t>{0, 66}));
  EXPECT_EQ(fleet.shellRange(1), (std::pair<std::size_t, std::size_t>{66, 138}));
  EXPECT_EQ(fleet.shellBegin(2), fleet.size());

  // The composed list is exactly the per-shell generators concatenated.
  const auto shell0 = makeWalkerStar(cfg.shells[0].walker);
  const auto shell1 = makeWalkerDelta(cfg.shells[1].walker);
  for (std::size_t i = 0; i < shell0.size(); ++i) {
    EXPECT_EQ(fleet.elements()[i].semiMajorAxisM, shell0[i].semiMajorAxisM);
    EXPECT_EQ(fleet.elements()[i].raanRad, shell0[i].raanRad);
  }
  for (std::size_t i = 0; i < shell1.size(); ++i) {
    EXPECT_EQ(fleet.elements()[66 + i].inclinationRad, shell1[i].inclinationRad);
  }
  // Plane grids are per shell.
  EXPECT_EQ(fleet.grid(0).planeCount(), 6u);
  EXPECT_EQ(fleet.grid(0).satsPerPlane(), 11u);
  EXPECT_EQ(fleet.grid(1).satsPerPlane(), 12u);
}

TEST(MultiShellFleet, ShellOfIsUniqueAndConsistent) {
  MultiShellConfig cfg;
  cfg.shells = {star(12, 3, km(780.0), 86.4), delta(1, 1, km(550.0), 53.0),
                delta(8, 2, km(1200.0), 70.0)};
  const MultiShellFleet fleet(cfg);
  ASSERT_EQ(fleet.size(), 21u);
  // Every global index belongs to exactly one shell, and the per-shell
  // ranges partition [0, size) — cross-shell ID uniqueness.
  std::vector<std::size_t> seen(fleet.size(), 0);
  for (std::size_t s = 0; s < fleet.shellCount(); ++s) {
    const auto [begin, end] = fleet.shellRange(s);
    for (std::size_t i = begin; i < end; ++i) {
      EXPECT_EQ(fleet.shellOf(i), s);
      ++seen[i];
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](std::size_t c) { return c == 1; }));
  EXPECT_THROW((void)fleet.shellOf(fleet.size()), InvalidArgumentError);
}

TEST(MultiShellFleet, DuplicateAltitudeShellsKeepDistinctIdentity) {
  // Two shells at the same altitude are still distinct shells: disjoint
  // index ranges, and the composed hash differs from one merged shell of
  // the same satellite count.
  MultiShellConfig two;
  two.shells = {star(33, 3, km(780.0), 86.4), star(33, 3, km(780.0), 70.0)};
  const MultiShellFleet fleet(two);
  EXPECT_EQ(fleet.shellCount(), 2u);
  EXPECT_EQ(fleet.shellOf(0), 0u);
  EXPECT_EQ(fleet.shellOf(33), 1u);

  MultiShellConfig one;
  one.shells = {star(66, 6, km(780.0), 86.4)};
  EXPECT_NE(fleet.elementsHash(), MultiShellFleet(one).elementsHash());
}

TEST(MultiShellFleet, HashMatchesConstellationHashAndIsOrderSensitive) {
  MultiShellConfig ab;
  ab.shells = {star(66, 6, km(780.0), 86.4, 2), delta(72, 6, km(550.0), 53.0)};
  MultiShellConfig ba;
  ba.shells = {ab.shells[1], ab.shells[0]};

  const MultiShellFleet fab(ab);
  const MultiShellFleet fba(ba);
  // The fleet hash is exactly constellationHash of the composed list, so
  // every snapshot/ephemeris cache keys multi-shell fleets correctly.
  EXPECT_EQ(fab.elementsHash(), constellationHash(fab.elements()));
  // Shell order changes satellite numbering, so it must change identity.
  EXPECT_NE(fab.elementsHash(), fba.elementsHash());
  // Same elements, different order only: the multisets agree.
  auto key = [](const OrbitalElements& e) {
    return std::make_tuple(e.semiMajorAxisM, e.inclinationRad, e.raanRad,
                           e.meanAnomalyAtEpochRad);
  };
  std::multiset<std::tuple<double, double, double, double>> sab, sba;
  for (const auto& e : fab.elements()) sab.insert(key(e));
  for (const auto& e : fba.elements()) sba.insert(key(e));
  EXPECT_EQ(sab, sba);
}

TEST(MultiShellFleet, SingleSatelliteShellHasNoSelfLinks) {
  MultiShellConfig cfg;
  cfg.shells = {delta(1, 1, km(550.0), 53.0)};
  const MultiShellFleet fleet(cfg);
  EXPECT_EQ(fleet.size(), 1u);
  const ConstellationSnapshot snap(fleet.elements(), 0.0);
  const auto links = fleet.islLinks(snap);
  EXPECT_TRUE(links.empty());  // ring neighbor wraps onto itself: skipped
}

TEST(MultiShellFleet, PlusGridLinksAreSortedUniqueAndWithinPredicate) {
  MultiShellConfig cfg;
  cfg.shells = {star(66, 6, km(780.0), 86.4, 2), delta(72, 6, km(550.0), 53.0, 1)};
  const MultiShellFleet fleet(cfg);
  const ConstellationSnapshot snap(fleet.elements(), 120.0);
  const auto links = fleet.islLinks(snap);
  ASSERT_FALSE(links.empty());
  for (std::size_t i = 0; i < links.size(); ++i) {
    EXPECT_LT(links[i].a, links[i].b);
    EXPECT_FALSE(links[i].crossShell);  // policy None: intra-shell only
    EXPECT_LE(links[i].distanceM, cfg.maxIslRangeM);
    // Both endpoints in the same shell under policy None.
    EXPECT_EQ(fleet.shellOf(links[i].a), fleet.shellOf(links[i].b));
    if (i > 0) {
      EXPECT_TRUE(links[i - 1].a < links[i].a ||
                  (links[i - 1].a == links[i].a && links[i - 1].b < links[i].b));
    }
  }
  // Deterministic: a second evaluation produces the identical list.
  const auto again = fleet.islLinks(snap);
  ASSERT_EQ(links.size(), again.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    EXPECT_EQ(links[i].a, again[i].a);
    EXPECT_EQ(links[i].b, again[i].b);
    EXPECT_EQ(links[i].distanceM, again[i].distanceM);
  }
}

TEST(MultiShellFleet, CrossShellNearestVisibleLinksShells) {
  MultiShellConfig cfg;
  cfg.shells = {star(66, 6, km(780.0), 86.4, 2), delta(72, 6, km(550.0), 53.0, 1)};
  cfg.crossShell = CrossShellLinkPolicy::NearestVisible;
  cfg.crossShellK = 1;
  const MultiShellFleet fleet(cfg);
  const ConstellationSnapshot snap(fleet.elements(), 0.0);
  const auto links = fleet.islLinks(snap);

  std::size_t cross = 0;
  for (const auto& l : links) {
    if (l.crossShell) {
      ++cross;
      EXPECT_NE(fleet.shellOf(l.a), fleet.shellOf(l.b));
      EXPECT_LE(l.distanceM, cfg.crossShellMaxRangeM);
    }
  }
  // 230 km of altitude separation: every satellite finds a partner.
  EXPECT_GE(cross, fleet.size() / 2);
  // No duplicate undirected edges survive the merge.
  std::set<std::pair<std::size_t, std::size_t>> edges;
  for (const auto& l : links) EXPECT_TRUE(edges.insert({l.a, l.b}).second);
}

TEST(MultiShellFleet, RejectsInvalidConfigs) {
  EXPECT_THROW(MultiShellFleet{MultiShellConfig{}}, InvalidArgumentError);

  MultiShellConfig badWalker;
  badWalker.shells = {star(10, 3, km(780.0), 86.4)};  // 3 does not divide 10
  EXPECT_THROW(MultiShellFleet{badWalker}, InvalidArgumentError);

  MultiShellConfig badK;
  badK.shells = {star(6, 3, km(780.0), 86.4), delta(4, 2, km(550.0), 53.0)};
  badK.crossShell = CrossShellLinkPolicy::NearestVisible;
  badK.crossShellK = 0;
  EXPECT_THROW(MultiShellFleet{badK}, InvalidArgumentError);

  MultiShellConfig badRange;
  badRange.shells = {star(6, 3, km(780.0), 86.4)};
  badRange.maxIslRangeM = 0.0;
  EXPECT_THROW(MultiShellFleet{badRange}, InvalidArgumentError);
}

TEST(MultiShellFleet, IslLinksRejectsForeignSnapshot) {
  MultiShellConfig cfg;
  cfg.shells = {star(6, 3, km(780.0), 86.4)};
  const MultiShellFleet fleet(cfg);
  const ConstellationSnapshot other(makeWalkerStar(iridiumConfig()), 0.0);
  EXPECT_THROW((void)fleet.islLinks(other), InvalidArgumentError);
}

}  // namespace
}  // namespace openspace
