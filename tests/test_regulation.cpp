// Unit tests for the regulation module (§5(3)): region geometry, spectrum
// policy, privacy egress rules, compliance-constrained routing.
#include <gtest/gtest.h>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/regulation/regime.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/topology/builder.hpp>

namespace openspace {
namespace {

TEST(RegionExtent, SimpleBoxContainment) {
  RegionExtent box{deg2rad(-10.0), deg2rad(10.0), deg2rad(20.0), deg2rad(40.0)};
  EXPECT_TRUE(box.contains(Geodetic::fromDegrees(0.0, 30.0)));
  EXPECT_FALSE(box.contains(Geodetic::fromDegrees(11.0, 30.0)));
  EXPECT_FALSE(box.contains(Geodetic::fromDegrees(0.0, 41.0)));
  EXPECT_TRUE(box.contains(Geodetic::fromDegrees(-10.0, 20.0)));  // inclusive
}

TEST(RegionExtent, AntimeridianWrap) {
  // Box from 170E to -170E (spans the dateline).
  RegionExtent box{deg2rad(-10.0), deg2rad(10.0), deg2rad(170.0),
                   deg2rad(-170.0)};
  EXPECT_TRUE(box.contains(Geodetic::fromDegrees(0.0, 175.0)));
  EXPECT_TRUE(box.contains(Geodetic::fromDegrees(0.0, -175.0)));
  EXPECT_FALSE(box.contains(Geodetic::fromDegrees(0.0, 0.0)));
}

TEST(Regime, RegistrationAndLookup) {
  const RegulatoryRegime regime = exampleGlobalRegime();
  EXPECT_EQ(regime.regionCount(), 3u);
  EXPECT_EQ(regime.regionOf(Geodetic::fromDegrees(40.44, -79.99)),
            std::optional<RegionId>(1));  // Pittsburgh -> Americas
  EXPECT_EQ(regime.regionOf(Geodetic::fromDegrees(48.86, 2.35)),
            std::optional<RegionId>(2));  // Paris -> EMEA
  EXPECT_EQ(regime.regionOf(Geodetic::fromDegrees(35.68, 139.69)),
            std::optional<RegionId>(3));  // Tokyo -> APAC
  EXPECT_EQ(regime.regionOf(Geodetic::fromDegrees(-80.0, 0.0)), std::nullopt);
  EXPECT_EQ(regime.policy(2).name, "EMEA");
  EXPECT_THROW(regime.policy(9), NotFoundError);
}

TEST(Regime, DuplicateAndInvertedRejected) {
  RegulatoryRegime regime;
  RegionPolicy p;
  p.id = 1;
  p.extent = {0.0, 0.5, 0.0, 0.5};
  regime.addRegion(p);
  EXPECT_THROW(regime.addRegion(p), InvalidArgumentError);
  RegionPolicy bad;
  bad.id = 2;
  bad.extent = {0.5, 0.0, 0.0, 0.5};  // latMin > latMax
  EXPECT_THROW(regime.addRegion(bad), InvalidArgumentError);
}

TEST(Regime, SpectrumPolicy) {
  const RegulatoryRegime regime = exampleGlobalRegime();
  EXPECT_TRUE(regime.groundBandAllowed(1, Band::Ka));   // Americas: Ku+Ka
  EXPECT_FALSE(regime.groundBandAllowed(2, Band::Ka));  // EMEA: Ku only
  EXPECT_TRUE(regime.groundBandAllowed(2, Band::Ku));
}

TEST(Regime, EgressTrust) {
  const RegulatoryRegime regime = exampleGlobalRegime();
  EXPECT_TRUE(regime.egressAllowed(1, 1));   // self always trusted
  EXPECT_TRUE(regime.egressAllowed(1, 2));   // Americas trusts EMEA
  EXPECT_FALSE(regime.egressAllowed(1, 3));  // but not APAC
  EXPECT_FALSE(regime.egressAllowed(3, 1));  // APAC localizes strictly
  EXPECT_TRUE(regime.egressAllowed(3, 3));
}

TEST(Regime, LandingFees) {
  const RegulatoryRegime regime = exampleGlobalRegime();
  EXPECT_NEAR(regime.totalLandingFeesUsd(10),
              10 * (12'145.0 + 9'500.0 + 15'000.0), 1e-6);
  EXPECT_DOUBLE_EQ(regime.totalLandingFeesUsd(0), 0.0);
  EXPECT_THROW(regime.totalLandingFeesUsd(-1), InvalidArgumentError);
}

// --- compliance-constrained routing ------------------------------------------

class ComplianceRouting : public ::testing::Test {
 protected:
  ComplianceRouting() : regime_(exampleGlobalRegime()) {
    for (const auto& el : makeWalkerStar(iridiumConfig())) eph_.publish(ProviderId{1}, el);
    topo_ = std::make_unique<TopologyBuilder>(eph_);
    // A user in APAC (Tokyo) and gateways in all three regions.
    user_ = topo_->addUser({"tokyo-user", Geodetic::fromDegrees(35.68, 139.69), ProviderId{1}});
    gwAmericas_ = topo_->nodeOf(topo_->addGroundStation(
        {"seattle-gw", Geodetic::fromDegrees(47.61, -122.33), ProviderId{2}}));
    gwEmea_ = topo_->nodeOf(topo_->addGroundStation(
        {"paris-gw", Geodetic::fromDegrees(48.86, 2.35), ProviderId{2}}));
    gwApac_ = topo_->nodeOf(topo_->addGroundStation(
        {"osaka-gw", Geodetic::fromDegrees(34.69, 135.50), ProviderId{2}}));
    SnapshotOptions opt;
    opt.wiring = IslWiring::PlusGrid;
    opt.planes = 6;
    opt.minElevationRad = deg2rad(10.0);
    graph_ = topo_->snapshot(0.0, opt);
  }

  EphemerisService eph_;
  std::unique_ptr<TopologyBuilder> topo_;
  RegulatoryRegime regime_;
  NodeId user_ = {}, gwAmericas_ = NodeId{0}, gwEmea_ = NodeId{0}, gwApac_ = NodeId{0};
  NetworkGraph graph_;
};

TEST_F(ComplianceRouting, ApacUserMayOnlyEgressLocally) {
  const LinkCostFn cost =
      complianceConstrainedCost(latencyCost(), regime_, /*userRegion=*/3);
  // Route to the local gateway exists.
  const Route local = shortestPath(graph_, user_, gwApac_, cost);
  EXPECT_TRUE(local.valid());
  // Foreign gateways are unreachable under APAC's localization rule.
  EXPECT_FALSE(shortestPath(graph_, user_, gwAmericas_, cost).valid());
  EXPECT_FALSE(shortestPath(graph_, user_, gwEmea_, cost).valid());
}

TEST_F(ComplianceRouting, AmericasUserMayUseEmeaGateways) {
  const LinkCostFn cost =
      complianceConstrainedCost(latencyCost(), regime_, /*userRegion=*/1);
  EXPECT_TRUE(shortestPath(graph_, user_, gwAmericas_, cost).valid());
  EXPECT_TRUE(shortestPath(graph_, user_, gwEmea_, cost).valid());
  EXPECT_FALSE(shortestPath(graph_, user_, gwApac_, cost).valid());
}

TEST_F(ComplianceRouting, ComplianceNeverBeatsUnconstrainedLatency) {
  const LinkCostFn cost =
      complianceConstrainedCost(latencyCost(), regime_, /*userRegion=*/3);
  const Route constrained = shortestPath(graph_, user_, gwApac_, cost);
  const Route free = shortestPath(graph_, user_, gwApac_, latencyCost());
  ASSERT_TRUE(constrained.valid());
  ASSERT_TRUE(free.valid());
  EXPECT_GE(constrained.propagationDelayS, free.propagationDelayS - 1e-12);
}

TEST_F(ComplianceRouting, BandPolicyBlocksUnlicensedGroundLinks) {
  // Force all GSLs to Ka: EMEA (Ku-only) gateways become unusable even for
  // users whose region trusts EMEA.
  NetworkGraph kaGraph = graph_;
  for (const LinkId lid : kaGraph.links()) {
    Link& l = kaGraph.link(lid);
    if (l.type == LinkType::Gsl) l.band = Band::Ka;
  }
  const LinkCostFn cost =
      complianceConstrainedCost(latencyCost(), regime_, /*userRegion=*/1);
  EXPECT_FALSE(shortestPath(kaGraph, user_, gwEmea_, cost).valid());
  // Americas licenses Ka, so its gateway still works.
  EXPECT_TRUE(shortestPath(kaGraph, user_, gwAmericas_, cost).valid());
}

TEST_F(ComplianceRouting, IslsAreNeverRegulated) {
  // Compliance rules touch ground links only; the space segment is free.
  const LinkCostFn cost =
      complianceConstrainedCost(latencyCost(), regime_, /*userRegion=*/3);
  for (const LinkId lid : graph_.links()) {
    const Link& l = graph_.link(lid);
    if (l.type == LinkType::IslRf || l.type == LinkType::IslLaser) {
      EXPECT_FALSE(std::isinf(cost(graph_, l, ProviderId{})));
    }
  }
}

}  // namespace
}  // namespace openspace
