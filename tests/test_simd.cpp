// Property tests for the vectorized batch-propagation kernel
// (orbit/propagation_simd.hpp):
//   * the AVX2 and scalar-fallback instantiations are bit-identical;
//   * TimeSweep's Simd kernel tracks the scalar executable spec within
//     the documented bounds (a few ULP of the orbital radius for e == 0,
//     1e-13-scale of the semi-major axis otherwise);
//   * Simd sweeps are bit-identical at any thread count.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <vector>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/geo/spherical_index.hpp>
#include <openspace/geo/spherical_index_simd.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/propagation_batch.hpp>
#include <openspace/orbit/propagation_simd.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {
namespace {

/// Mixed-eccentricity fleet exercising every solver path: e == 0
/// short-circuit, near-circular warm 1-2 iteration solves, moderately and
/// highly eccentric orbits.
std::vector<OrbitalElements> mixedFleet(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const double eccs[] = {0.0, 0.0, 1e-3, 0.1, 0.45, 0.74};
  std::vector<OrbitalElements> els;
  els.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    OrbitalElements el;
    el.semiMajorAxisM = rng.uniform(km(6900.0), km(8500.0));
    el.eccentricity = eccs[i % (sizeof(eccs) / sizeof(eccs[0]))];
    el.inclinationRad = rng.uniform(0.0, std::numbers::pi);
    el.raanRad = rng.uniform(0.0, 2.0 * std::numbers::pi);
    el.argPerigeeRad = rng.uniform(0.0, 2.0 * std::numbers::pi);
    el.meanAnomalyAtEpochRad = rng.uniform(0.0, 2.0 * std::numbers::pi);
    els.push_back(el);
  }
  return els;
}

/// The FleetSoA a FleetEphemeris would compile — same expressions, built
/// here because the tests drive the lane kernels directly.
struct Soa {
  std::vector<double> a, ecc, nMot, m0, b, p1, p2, p3, q1, q2, q3;

  explicit Soa(const std::vector<OrbitalElements>& els) {
    for (const OrbitalElements& el : els) {
      a.push_back(el.semiMajorAxisM);
      ecc.push_back(el.eccentricity);
      nMot.push_back(el.meanMotionRadPerS());
      m0.push_back(el.meanAnomalyAtEpochRad);
      b.push_back(el.semiMajorAxisM *
                  std::sqrt(1.0 - el.eccentricity * el.eccentricity));
      const double cO = std::cos(el.raanRad), sO = std::sin(el.raanRad);
      const double cI = std::cos(el.inclinationRad);
      const double sI = std::sin(el.inclinationRad);
      const double cW = std::cos(el.argPerigeeRad);
      const double sW = std::sin(el.argPerigeeRad);
      p1.push_back(cO * cW - sO * sW * cI);
      q1.push_back(-cO * sW - sO * cW * cI);
      p2.push_back(sO * cW + cO * sW * cI);
      q2.push_back(-sO * sW + cO * cW * cI);
      p3.push_back(sW * sI);
      q3.push_back(cW * sI);
    }
  }

  simd::FleetSoA view() const {
    return {a.size(),  a.data(),  ecc.data(), nMot.data(),
            m0.data(), b.data(),  p1.data(),  p2.data(),
            p3.data(), q1.data(), q2.data(),  q3.data()};
  }
};

bool bitEqual(double x, double y) {
  return std::bit_cast<std::uint64_t>(x) == std::bit_cast<std::uint64_t>(y);
}

bool bitEqual(const Vec3& x, const Vec3& y) {
  return bitEqual(x.x, y.x) && bitEqual(x.y, y.y) && bitEqual(x.z, y.z);
}

TEST(SimdKernel, DispatchLevelIsConsistent) {
  const SimdLevel level = simd::sweepKernelLevel();
  if (level == SimdLevel::Avx2) {
    EXPECT_TRUE(simd::avx2KernelAvailable());
  }
  EXPECT_TRUE(level == SimdLevel::Avx2 || level == SimdLevel::Scalar4);
}

TEST(SimdKernel, Avx2MatchesScalar4BitForBit) {
  if (!simd::avx2KernelAvailable()) {
    GTEST_SKIP() << "AVX2 kernel not available on this host";
  }
  // 103 satellites: a 3-lane tail group every sweep.
  const auto els = mixedFleet(103, 7);
  const Soa soa(els);
  const std::size_t n = els.size();

  std::vector<double> prevMa(n, 0.0), prevEa(n, 0.0);
  std::vector<double> prevMb(n, 0.0), prevEb(n, 0.0);
  std::vector<Vec3> eciA(n), ecefA(n), eciB(n), ecefB(n);

  // Unprimed first step, warm steps, a backward jump, and a far jump that
  // forces warm-start fallbacks.
  const double times[] = {0.0, 60.0, 120.0, 30.0, 86'400.0, 86'460.0};
  bool primed = false;
  for (const double t : times) {
    const double ang = -0.1 * t;  // any rotation angle; both sides share it
    const double c = std::cos(ang), s = std::sin(ang);
    simd::sweepRangeScalar4(soa.view(), t, primed, prevMa.data(),
                            prevEa.data(), eciA.data(), ecefA.data(), c, s, 0,
                            n);
    simd::sweepRangeAvx2(soa.view(), t, primed, prevMb.data(), prevEb.data(),
                         eciB.data(), ecefB.data(), c, s, 0, n);
    primed = true;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(bitEqual(eciA[i], eciB[i])) << "t=" << t << " sat " << i;
      ASSERT_TRUE(bitEqual(ecefA[i], ecefB[i])) << "t=" << t << " sat " << i;
      ASSERT_TRUE(bitEqual(prevMa[i], prevMb[i])) << "t=" << t << " sat " << i;
      ASSERT_TRUE(bitEqual(prevEa[i], prevEb[i])) << "t=" << t << " sat " << i;
    }
  }
}

TEST(SimdKernel, TimeSweepSimdMatchesSpecCircular) {
  // Walker fleets are circular: the only SIMD-vs-spec divergence is the
  // final sin/cos pair, so positions agree to a few ULP of the radius.
  WalkerConfig cfg = iridiumConfig();
  cfg.totalSatellites = 660;
  cfg.planes = 20;
  const auto els = makeWalkerStar(cfg);
  const FleetEphemeris fleet(els);
  TimeSweep spec(fleet);
  TimeSweep simdSweep(fleet);
  simdSweep.setKernel(TimeSweep::Kernel::Simd);
  EXPECT_EQ(simdSweep.kernel(), TimeSweep::Kernel::Simd);

  std::vector<Vec3> eciSpec, ecefSpec, eciSimd, ecefSimd;
  for (const double t : {0.0, 30.0, 60.0, 5'000.0, 86'400.0}) {
    spec.advance(t, eciSpec, ecefSpec);
    simdSweep.advance(t, eciSimd, ecefSimd);
    for (std::size_t i = 0; i < els.size(); ++i) {
      const double tol = 2e-15 * els[i].semiMajorAxisM;
      EXPECT_NEAR(eciSpec[i].x, eciSimd[i].x, tol) << "t=" << t;
      EXPECT_NEAR(eciSpec[i].y, eciSimd[i].y, tol) << "t=" << t;
      EXPECT_NEAR(eciSpec[i].z, eciSimd[i].z, tol) << "t=" << t;
      EXPECT_NEAR(ecefSpec[i].x, ecefSimd[i].x, tol) << "t=" << t;
      EXPECT_NEAR(ecefSpec[i].y, ecefSimd[i].y, tol) << "t=" << t;
      EXPECT_NEAR(ecefSpec[i].z, ecefSimd[i].z, tol) << "t=" << t;
    }
  }
}

TEST(SimdKernel, TimeSweepSimdMatchesSpecEccentric) {
  // Eccentric orbits add the Newton stopping slop (|step| < 1e-14 leaves
  // each solver within ~1e-14 of the root from either side): the bound is
  // the warm-vs-cold convention scaled by the mutual divergence.
  const auto els = mixedFleet(97, 11);
  const FleetEphemeris fleet(els);
  TimeSweep spec(fleet);
  TimeSweep simdSweep(fleet);
  simdSweep.setKernel(TimeSweep::Kernel::Simd);

  std::vector<Vec3> eciSpec, eciSimd;
  for (const double t : {0.0, 60.0, 120.0, 30.0, 7'200.0}) {
    spec.advance(t, eciSpec);
    simdSweep.advance(t, eciSimd);
    for (std::size_t i = 0; i < els.size(); ++i) {
      const double tol = 5e-13 * els[i].semiMajorAxisM;
      EXPECT_NEAR(eciSpec[i].x, eciSimd[i].x, tol) << "t=" << t << " i=" << i;
      EXPECT_NEAR(eciSpec[i].y, eciSimd[i].y, tol) << "t=" << t << " i=" << i;
      EXPECT_NEAR(eciSpec[i].z, eciSimd[i].z, tol) << "t=" << t << " i=" << i;
    }
  }
}

TEST(SimdKernel, TimeSweepSimdSerialEqualsParallel) {
  const auto els = mixedFleet(1000, 23);
  const FleetEphemeris fleet(els);

  auto sweepAll = [&](int threads) {
    setParallelThreadCount(threads);
    TimeSweep sweep(fleet);
    sweep.setKernel(TimeSweep::Kernel::Simd);
    std::vector<Vec3> eci, ecef, acc;
    for (const double t : {0.0, 60.0, 120.0, 180.0}) {
      sweep.advance(t, eci, ecef);
      acc.insert(acc.end(), eci.begin(), eci.end());
      acc.insert(acc.end(), ecef.begin(), ecef.end());
    }
    return acc;
  };

  const auto serial = sweepAll(1);
  const auto parallel = sweepAll(4);
  setParallelThreadCount(0);  // restore default
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(bitEqual(serial[i], parallel[i])) << "i=" << i;
  }
}

TEST(SimdKernel, SimdKernelSurvivesColdJumpsLikeSpec) {
  // A sweep that teleports far forward and backward must stay within the
  // spec bound at every step (warm misses fall back to the cold solver).
  const auto els = mixedFleet(64, 31);
  const FleetEphemeris fleet(els);
  TimeSweep spec(fleet);
  TimeSweep simdSweep(fleet);
  simdSweep.setKernel(TimeSweep::Kernel::Simd);

  std::vector<Vec3> eciSpec, eciSimd;
  for (const double t : {0.0, 43'200.0, 10.0, 86'400.0, 60.0}) {
    spec.advance(t, eciSpec);
    simdSweep.advance(t, eciSimd);
    for (std::size_t i = 0; i < els.size(); ++i) {
      const double tol = 5e-13 * els[i].semiMajorAxisM;
      EXPECT_NEAR(eciSpec[i].x, eciSimd[i].x, tol) << "t=" << t << " i=" << i;
      EXPECT_NEAR(eciSpec[i].y, eciSimd[i].y, tol) << "t=" << t << " i=" << i;
      EXPECT_NEAR(eciSpec[i].z, eciSimd[i].z, tol) << "t=" << t << " i=" << i;
    }
  }
}

/// Query directions stressing every branch of the cell map: generic unit
/// vectors, the poles and axes (guard and clamp edges), the +-pi seam
/// (x < 0 with tiny |y| of both signs), zero vectors and NaNs (the
/// !(scaled > 0) guards), and non-unit magnitudes.
std::vector<Vec3> adversarialDirs(std::size_t randomCount,
                                  std::uint64_t seed) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Vec3> dirs = {
      {0.0, 0.0, 1.0},       {0.0, 0.0, -1.0},     {1.0, 0.0, 0.0},
      {-1.0, 0.0, 0.0},      {0.0, 1.0, 0.0},      {0.0, -1.0, 0.0},
      {-1.0, 1e-300, 0.0},   {-1.0, -1e-300, 0.0}, {-1.0, 0.0, 0.5},
      {0.0, 0.0, 0.0},       {-0.0, -0.0, -0.0},   {nan, 0.5, 0.5},
      {0.5, nan, 0.5},       {0.5, 0.5, nan},      {3.0, -4.0, 12.0},
      {-0.5, -0.5, 1.0e-17},
  };
  Rng rng(seed);
  for (std::size_t i = 0; i < randomCount; ++i) {
    dirs.push_back(rng.unitSphere());
  }
  return dirs;
}

TEST(CellKernel, Avx2MatchesScalar4BitForBit) {
  if (!simd::avx2CellKernelAvailable()) {
    GTEST_SKIP() << "AVX2 cell kernel not available on this host";
  }
  // 419 directions: a 3-lane tail group. Several grid shapes, including
  // the degenerate 1x1 grid of an empty index.
  const auto dirs = adversarialDirs(403, 17);
  const std::size_t grids[][2] = {{1, 1}, {13, 64}, {97, 128}, {256, 512}};
  for (const auto& g : grids) {
    std::vector<std::uint32_t> a(dirs.size()), b(dirs.size());
    simd::cellIndicesScalar4(dirs.data(), a.data(), g[0], g[1], 0,
                             dirs.size());
    simd::cellIndicesAvx2(dirs.data(), b.data(), g[0], g[1], 0, dirs.size());
    for (std::size_t i = 0; i < dirs.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "grid " << g[0] << "x" << g[1] << " dir " << i;
    }
  }
}

TEST(CellKernel, BatchMatchesScalarCellIndexOf) {
  // The dispatched batch map must equal the scalar member exactly — this
  // is what keeps the batched Monte-Carlo loops bit-identical to their
  // per-query spec (and it must hold for NaN/zero inputs too).
  Rng rng(29);
  std::vector<SphericalCapIndex::Cap> caps;
  for (std::size_t i = 0; i < 200; ++i) {
    caps.push_back({rng.unitSphere(), rng.uniform(0.01, 0.5)});
  }
  const SphericalCapIndex index(caps);
  const auto dirs = adversarialDirs(1000, 31);
  std::vector<std::uint32_t> cells(dirs.size());
  index.cellIndicesOf(dirs.data(), dirs.size(), cells.data());
  for (std::size_t i = 0; i < dirs.size(); ++i) {
    ASSERT_EQ(static_cast<std::size_t>(cells[i]), index.cellIndexOf(dirs[i]))
        << "dir " << i;
  }
}

}  // namespace
}  // namespace openspace
