// Unit tests for the sim module: the §4 Figure 2 engine and the
// multi-provider scenario orchestrator.
#include <gtest/gtest.h>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/sim/scenario.hpp>

namespace openspace {
namespace {

TEST(Fig2Trial, ZeroSatellitesDisconnected) {
  Rng rng(1);
  const Fig2Trial t = runFig2Trial(0, Fig2Config{}, rng);
  EXPECT_FALSE(t.userCovered);
  EXPECT_FALSE(t.connected);
}

TEST(Fig2Trial, ConnectedTrialHasConsistentFields) {
  Fig2Config cfg;
  Rng rng(2);
  // With 120 satellites virtually every trial connects; find one.
  for (int i = 0; i < 10; ++i) {
    const Fig2Trial t = runFig2Trial(120, cfg, rng);
    if (!t.connected) continue;
    EXPECT_TRUE(t.userCovered);
    EXPECT_TRUE(t.stationCovered);
    EXPECT_GT(t.pathLengthM, 0.0);
    EXPECT_NEAR(t.latencyS, t.pathLengthM / kSpeedOfLightMps, 1e-15);
    EXPECT_GT(t.endToEndLatencyS, t.latencyS);  // adds up/down legs
    EXPECT_GE(t.islHops, 1);
    return;
  }
  FAIL() << "no connected trial in 10 attempts at N=120";
}

TEST(Fig2Trial, SameSatelliteServesBothEndsMeansZeroPath) {
  // User and station co-located: the same satellite picks both up.
  Fig2Config cfg;
  cfg.user = Geodetic::fromDegrees(10.0, 10.0);
  cfg.groundStation = Geodetic::fromDegrees(10.1, 10.1);
  Rng rng(3);
  bool sawZeroHop = false;
  for (int i = 0; i < 20 && !sawZeroHop; ++i) {
    const Fig2Trial t = runFig2Trial(40, cfg, rng);
    if (t.connected && t.islHops == 0) {
      EXPECT_DOUBLE_EQ(t.pathLengthM, 0.0);
      EXPECT_GT(t.endToEndLatencyS, 0.0);
      sawZeroHop = true;
    }
  }
  EXPECT_TRUE(sawZeroHop);
}

TEST(Fig2Sweep, ConnectivityImprovesWithFleetSize) {
  const auto sweep = fig2LatencySweep({5, 40, 100}, 40, Fig2Config{}, 7);
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_LE(sweep[0].connectivity, sweep[1].connectivity);
  EXPECT_LE(sweep[1].connectivity, sweep[2].connectivity);
  EXPECT_GT(sweep[2].connectivity, 0.8);
}

TEST(Fig2Sweep, PaperPlateauAnchor) {
  // Past ~25 satellites the paper reports latency flattening around 30 ms.
  const auto sweep = fig2LatencySweep({30, 60, 90}, 60, Fig2Config{}, 2024);
  for (const auto& pt : sweep) {
    ASSERT_GT(pt.connectedTrials, 0);
    EXPECT_GT(toMilliseconds(pt.meanLatencyS), 10.0);
    EXPECT_LT(toMilliseconds(pt.meanLatencyS), 60.0);
  }
}

TEST(Fig2Sweep, DeterministicGivenSeed) {
  const auto a = fig2LatencySweep({20}, 30, Fig2Config{}, 99);
  const auto b = fig2LatencySweep({20}, 30, Fig2Config{}, 99);
  EXPECT_DOUBLE_EQ(a[0].meanLatencyS, b[0].meanLatencyS);
  EXPECT_EQ(a[0].connectedTrials, b[0].connectedTrials);
}

TEST(Fig2Sweep, Validation) {
  EXPECT_THROW(fig2LatencySweep({}, 10, Fig2Config{}, 1), InvalidArgumentError);
  EXPECT_THROW(fig2LatencySweep({10}, 0, Fig2Config{}, 1),
               InvalidArgumentError);
  EXPECT_THROW(fig2CoverageSweep({}, 10, Fig2Config{}, 1),
               InvalidArgumentError);
  EXPECT_THROW(fig2CoverageSweep({10}, 0, Fig2Config{}, 1),
               InvalidArgumentError);
}

TEST(Fig2Coverage, MonotoneGrowthAndSaturation) {
  Fig2Config cfg;
  cfg.minElevationRad = deg2rad(10.0);
  const auto sweep = fig2CoverageSweep({5, 30, 90}, 10, cfg, 5);
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_LT(sweep[0].worstCaseCoverage, sweep[1].worstCaseCoverage);
  EXPECT_LT(sweep[1].worstCaseCoverage, sweep[2].worstCaseCoverage);
  EXPECT_GT(sweep[2].worstCaseCoverage, 0.9);  // near total at N=90
  // Effective satellites never exceed actual satellites.
  for (const auto& pt : sweep) {
    EXPECT_LE(pt.meanEffectiveSatellites, pt.satellites);
    EXPECT_GT(pt.meanEffectiveSatellites, 0.0);
  }
}

// --- scenario ----------------------------------------------------------------

ScenarioConfig smallScenario() {
  ScenarioConfig cfg;
  cfg.providers = {{"alpha", 33, 0.0, 0.10}, {"beta", 33, 0.5, 0.05}};
  cfg.coordinatedWalker = true;
  cfg.stations = {{"gw-a", Geodetic::fromDegrees(47.0, -122.0), 0},
                  {"gw-b", Geodetic::fromDegrees(1.35, 103.82), 1}};
  cfg.users = {{"u-a", Geodetic::fromDegrees(40.44, -79.99), 0},
               {"u-b", Geodetic::fromDegrees(-33.87, 151.21), 1}};
  cfg.seed = 5;
  return cfg;
}

TEST(Scenario, BuildsAllPieces) {
  Scenario s(smallScenario());
  EXPECT_EQ(s.ephemeris().size(), 66u);
  EXPECT_EQ(s.topology().groundStationCount(), 2u);
  EXPECT_EQ(s.topology().userCount(), 2u);
  EXPECT_EQ(s.providerId(0), ProviderId{1u});
  EXPECT_EQ(s.providerId(1), ProviderId{2u});
  EXPECT_THROW(s.providerId(5), InvalidArgumentError);
  EXPECT_EQ(s.beaconsAt(0.0).size(), 66u);
}

TEST(Scenario, OwnershipSplitMatchesConfig) {
  Scenario s(smallScenario());
  EXPECT_EQ(s.ephemeris().satellitesOf(ProviderId{1}).size(), 33u);
  EXPECT_EQ(s.ephemeris().satellitesOf(ProviderId{2}).size(), 33u);
}

TEST(Scenario, ValidationRejectsBadConfigs) {
  ScenarioConfig empty;
  EXPECT_THROW(Scenario{empty}, InvalidArgumentError);
  ScenarioConfig zeroSats = smallScenario();
  zeroSats.providers[0].satellites = 0;
  EXPECT_THROW(Scenario{zeroSats}, InvalidArgumentError);
  ScenarioConfig badStation = smallScenario();
  badStation.stations[0].ownerProviderIndex = 9;
  EXPECT_THROW(Scenario{badStation}, InvalidArgumentError);
  ScenarioConfig badUser = smallScenario();
  badUser.users[0].homeProviderIndex = 9;
  EXPECT_THROW(Scenario{badUser}, InvalidArgumentError);
}

TEST(Scenario, HomeGatewayResolution) {
  Scenario s(smallScenario());
  EXPECT_EQ(s.homeGatewayOf(0), s.stationNode(0));
  EXPECT_EQ(s.homeGatewayOf(1), s.stationNode(1));
  EXPECT_THROW(s.homeGatewayOf(9), InvalidArgumentError);
  ScenarioConfig cfg = smallScenario();
  cfg.stations.pop_back();  // beta loses its gateway
  Scenario s2(cfg);
  EXPECT_THROW(s2.homeGatewayOf(1), NotFoundError);
}

TEST(Scenario, UserAssociationSucceeds) {
  Scenario s(smallScenario());
  const AssociationResult res = s.associateUser(0, 0.0);
  EXPECT_TRUE(res.success) << res.failureReason;
  EXPECT_EQ(res.certificate.homeProvider, ProviderId{1u});
}

TEST(Scenario, TrafficEpochDeliversAndSettles) {
  Scenario s(smallScenario());
  const TrafficReport rep = s.runTrafficEpoch(0.0, 3.0, 1e6);
  EXPECT_GT(rep.packetsOffered, 0u);
  EXPECT_GT(rep.packetsDelivered, 0u);
  EXPECT_TRUE(rep.ledgersCrossVerified);
  EXPECT_GT(rep.meanLatencyS, 0.0);
  EXPECT_GE(rep.p95LatencyS, rep.meanLatencyS * 0.5);
  EXPECT_THROW(s.runTrafficEpoch(0.0, 0.0, 1e6), InvalidArgumentError);
  EXPECT_THROW(s.runTrafficEpoch(0.0, 1.0, 0.0), InvalidArgumentError);
}

TEST(Scenario, RandomOrbitsModeWorks) {
  ScenarioConfig cfg = smallScenario();
  cfg.coordinatedWalker = false;
  Scenario s(cfg);
  EXPECT_EQ(s.ephemeris().size(), 66u);
  const NetworkGraph g = s.snapshot(0.0);
  EXPECT_GT(g.linkCount(), 10u);
}

TEST(Scenario, NodeAccessorsValidate) {
  Scenario s(smallScenario());
  EXPECT_NO_THROW(s.userNode(0));
  EXPECT_NO_THROW(s.stationNode(1));
  EXPECT_THROW(s.userNode(9), InvalidArgumentError);
  EXPECT_THROW(s.stationNode(9), InvalidArgumentError);
}

TEST(Scenario, AdaptiveEpochsRunAndReport) {
  Scenario s(smallScenario());
  const AdaptiveReport rep = s.runAdaptiveEpochs(0.0, 3, 2.0, 1e6);
  ASSERT_EQ(rep.epochMeanLatencyS.size(), 3u);
  ASSERT_EQ(rep.epochLossRate.size(), 3u);
  EXPECT_GT(rep.totalDelivered, 0u);
  for (const double lat : rep.epochMeanLatencyS) EXPECT_GE(lat, 0.0);
  EXPECT_THROW(s.runAdaptiveEpochs(0.0, 0, 1.0, 1e6), InvalidArgumentError);
  EXPECT_THROW(s.runAdaptiveEpochs(0.0, 1, 0.0, 1e6), InvalidArgumentError);
  EXPECT_THROW(s.runAdaptiveEpochs(0.0, 1, 1.0, 0.0), InvalidArgumentError);
}

TEST(Scenario, AdaptiveFeedbackDoesNotDegradeService) {
  // After congestion feedback, later epochs must not lose more packets than
  // epoch 0 (route choices only get better-informed).
  Scenario s(smallScenario());
  const AdaptiveReport rep = s.runAdaptiveEpochs(0.0, 4, 2.0, 5e6);
  for (std::size_t e = 1; e < rep.epochLossRate.size(); ++e) {
    EXPECT_LE(rep.epochLossRate[e], rep.epochLossRate[0] + 0.05);
  }
}

}  // namespace
}  // namespace openspace
