// Unit tests for the mac module: beacon scheduling, CSMA/CA contention,
// TDMA, OFDMA scheduling.
#include <gtest/gtest.h>

#include <numeric>

#include <openspace/geo/units.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/mac/beacon.hpp>
#include <openspace/mac/csma.hpp>
#include <openspace/mac/ofdma.hpp>

namespace openspace {
namespace {

TEST(BeaconSchedule, PeriodicityAndPhase) {
  const BeaconSchedule sched(2.0);
  const double t1 = sched.nextBeaconTime(SatelliteId{42}, 0.0);
  EXPECT_GE(t1, 0.0);
  EXPECT_LT(t1, 2.0);
  const double t2 = sched.nextBeaconTime(SatelliteId{42}, t1 + 0.001);
  EXPECT_NEAR(t2 - t1, 2.0, 1e-9);
}

TEST(BeaconSchedule, NextAtOrAfterQuery) {
  const BeaconSchedule sched(5.0);
  for (const SatelliteId id : {SatelliteId{1u}, SatelliteId{7u}, SatelliteId{99u}}) {
    for (const double t : {0.0, 3.3, 12.7, 100.0}) {
      EXPECT_GE(sched.nextBeaconTime(id, t), t);
    }
  }
}

TEST(BeaconSchedule, DifferentSatellitesAreStaggered) {
  const BeaconSchedule sched(2.0);
  // Not all satellites beacon at the same instant (collision avoidance).
  const double a = sched.nextBeaconTime(SatelliteId{1}, 0.0);
  const double b = sched.nextBeaconTime(SatelliteId{2}, 0.0);
  const double c = sched.nextBeaconTime(SatelliteId{3}, 0.0);
  EXPECT_TRUE(a != b || b != c);
}

TEST(BeaconSchedule, CountOverInterval) {
  const BeaconSchedule sched(2.0);
  // Exactly 5 beacons fit in any 10-second window (one per period).
  EXPECT_EQ(sched.beaconCount(SatelliteId{5}, 0.0, 10.0), 5);
  EXPECT_EQ(sched.beaconCount(SatelliteId{5}, 0.0, 0.0), 0);
  EXPECT_EQ(sched.beaconCount(SatelliteId{5}, 10.0, 0.0), 0);
}

TEST(BeaconSchedule, InvalidPeriodThrows) {
  EXPECT_THROW(BeaconSchedule(0.0), InvalidArgumentError);
  EXPECT_THROW(BeaconSchedule(-1.0), InvalidArgumentError);
}

TEST(CsmaCa, SingleNodeHasNoCollisions) {
  Rng rng(1);
  const auto r = simulateCsmaCa(CsmaConfig{}, 1, 5.0, rng);
  EXPECT_DOUBLE_EQ(r.collisionFraction, 0.0);
  EXPECT_DOUBLE_EQ(r.droppedFrames, 0.0);
  EXPECT_GT(r.deliveredFrames, 0.0);
  EXPECT_GT(r.throughputFraction, 0.5);
}

TEST(CsmaCa, CollisionsGrowWithContention) {
  Rng rngA(2), rngB(2);
  const auto few = simulateCsmaCa(CsmaConfig{}, 2, 5.0, rngA);
  const auto many = simulateCsmaCa(CsmaConfig{}, 16, 5.0, rngB);
  EXPECT_GT(many.collisionFraction, few.collisionFraction);
  EXPECT_GT(many.meanAccessDelayS, few.meanAccessDelayS);
}

TEST(CsmaCa, PaperClaimHigherOverheadThanTdma) {
  // §2.1: CSMA/CA "is prone to higher overhead and corresponding larger
  // latency due to Inter-Frame Spacing and backoff window requirements".
  Rng rng(3);
  const auto csma = simulateCsmaCa(CsmaConfig{}, 8, 5.0, rng);
  const auto tdma = simulateTdma(TdmaConfig{}, 8, 5.0);
  EXPECT_GT(csma.meanOverheadS, tdma.meanOverheadS);
  EXPECT_LT(csma.throughputFraction, tdma.throughputFraction);
}

TEST(CsmaCa, DeterministicGivenSeed) {
  Rng a(42), b(42);
  const auto ra = simulateCsmaCa(CsmaConfig{}, 4, 2.0, a);
  const auto rb = simulateCsmaCa(CsmaConfig{}, 4, 2.0, b);
  EXPECT_DOUBLE_EQ(ra.deliveredFrames, rb.deliveredFrames);
  EXPECT_DOUBLE_EQ(ra.meanAccessDelayS, rb.meanAccessDelayS);
  EXPECT_DOUBLE_EQ(ra.collisionFraction, rb.collisionFraction);
}

TEST(CsmaCa, P95AtLeastMean) {
  Rng rng(5);
  const auto r = simulateCsmaCa(CsmaConfig{}, 8, 5.0, rng);
  EXPECT_GE(r.p95AccessDelayS, r.meanAccessDelayS * 0.5);
  EXPECT_GE(r.p95AccessDelayS, 0.0);
}

TEST(CsmaCa, ClosedFormOverheadFloor) {
  const CsmaConfig cfg;
  const double floor = csmaPerFrameOverheadS(cfg);
  // DIFS + mean backoff (7.5 slots) + SIFS.
  EXPECT_NEAR(floor, cfg.difsS + 7.5 * cfg.slotTimeS + cfg.sifsS, 1e-12);
  // The simulated single-node overhead should sit near the floor.
  Rng rng(6);
  const auto r = simulateCsmaCa(cfg, 1, 5.0, rng);
  EXPECT_NEAR(r.meanOverheadS, floor, floor * 0.25);
}

TEST(CsmaCa, InvalidArgsThrow) {
  Rng rng(1);
  EXPECT_THROW(simulateCsmaCa(CsmaConfig{}, 0, 1.0, rng), InvalidArgumentError);
  EXPECT_THROW(simulateCsmaCa(CsmaConfig{}, 1, 0.0, rng), InvalidArgumentError);
}

TEST(Tdma, DeterministicAndCollisionFree) {
  const auto r = simulateTdma(TdmaConfig{}, 8, 10.0);
  EXPECT_DOUBLE_EQ(r.collisionFraction, 0.0);
  EXPECT_DOUBLE_EQ(r.droppedFrames, 0.0);
  EXPECT_DOUBLE_EQ(r.offeredFrames, r.deliveredFrames);
}

TEST(Tdma, AccessDelayScalesWithNodes) {
  const auto few = simulateTdma(TdmaConfig{}, 2, 10.0);
  const auto many = simulateTdma(TdmaConfig{}, 16, 10.0);
  EXPECT_GT(many.meanAccessDelayS, few.meanAccessDelayS);
  // Saturated wait = cycle - own slot.
  const TdmaConfig cfg;
  EXPECT_NEAR(many.meanAccessDelayS, 16 * (cfg.slotS + cfg.guardS) - cfg.slotS,
              1e-12);
}

TEST(Tdma, InvalidArgsThrow) {
  EXPECT_THROW(simulateTdma(TdmaConfig{}, 0, 1.0), InvalidArgumentError);
  EXPECT_THROW(simulateTdma(TdmaConfig{}, 1, 0.0), InvalidArgumentError);
  TdmaConfig bad;
  bad.slotS = 0.0;
  EXPECT_THROW(simulateTdma(bad, 1, 1.0), InvalidArgumentError);
}

// --- OFDMA -----------------------------------------------------------------

TEST(Ofdma, BlockArithmetic) {
  const OfdmaScheduler sched(megahertz(250.0), 100, OfdmaPolicy::RoundRobin);
  EXPECT_DOUBLE_EQ(sched.blockBandwidthHz(), 2.5e6);
  EXPECT_EQ(sched.resourceBlocks(), 100);
  EXPECT_THROW(OfdmaScheduler(0.0, 10, OfdmaPolicy::RoundRobin),
               InvalidArgumentError);
  EXPECT_THROW(OfdmaScheduler(1e6, 0, OfdmaPolicy::RoundRobin),
               InvalidArgumentError);
}

std::vector<OfdmaDemand> threeUsers() {
  return {{1, 50e6, 2.0, 1.0}, {2, 100e6, 2.0, 1.0}, {3, 25e6, 4.0, 2.0}};
}

TEST(Ofdma, GrantsNeverExceedBlockBudget) {
  for (const auto policy : {OfdmaPolicy::RoundRobin, OfdmaPolicy::ProportionalFair,
                            OfdmaPolicy::MaxThroughput}) {
    const OfdmaScheduler sched(megahertz(250.0), 64, policy);
    const auto grants = sched.schedule(threeUsers());
    int total = 0;
    for (const auto& g : grants) total += g.resourceBlocks;
    EXPECT_LE(total, 64) << "policy " << static_cast<int>(policy);
  }
}

TEST(Ofdma, ZeroDemandGetsNothing) {
  const OfdmaScheduler sched(megahertz(250.0), 64, OfdmaPolicy::ProportionalFair);
  const auto grants =
      sched.schedule({{1, 0.0, 2.0, 1.0}, {2, 500e6, 2.0, 1.0}});
  EXPECT_EQ(grants[0].resourceBlocks, 0);
  EXPECT_GT(grants[1].resourceBlocks, 0);
}

TEST(Ofdma, RoundRobinIsEvenUnderEqualDemand) {
  const OfdmaScheduler sched(megahertz(250.0), 60, OfdmaPolicy::RoundRobin);
  const auto grants = sched.schedule(
      {{1, 1e9, 2.0, 1.0}, {2, 1e9, 2.0, 1.0}, {3, 1e9, 2.0, 1.0}});
  EXPECT_EQ(grants[0].resourceBlocks, 20);
  EXPECT_EQ(grants[1].resourceBlocks, 20);
  EXPECT_EQ(grants[2].resourceBlocks, 20);
}

TEST(Ofdma, ProportionalFairRespectsWeights) {
  const OfdmaScheduler sched(megahertz(250.0), 90, OfdmaPolicy::ProportionalFair);
  const auto grants = sched.schedule(
      {{1, 1e9, 2.0, 1.0}, {2, 1e9, 2.0, 2.0}});  // user 2 pays for 2x weight
  EXPECT_NEAR(static_cast<double>(grants[1].resourceBlocks) /
                  static_cast<double>(grants[0].resourceBlocks),
              2.0, 0.15);
}

TEST(Ofdma, MaxThroughputFavorsGoodChannels) {
  const OfdmaScheduler sched(megahertz(250.0), 10, OfdmaPolicy::MaxThroughput);
  // User 2 has double the spectral efficiency and wants everything.
  const auto grants =
      sched.schedule({{1, 1e9, 2.0, 1.0}, {2, 1e9, 4.0, 1.0}});
  EXPECT_EQ(grants[1].resourceBlocks, 10);
  EXPECT_EQ(grants[0].resourceBlocks, 0);
}

TEST(Ofdma, GrantedRateMatchesBlocksAndEfficiency) {
  const OfdmaScheduler sched(megahertz(250.0), 50, OfdmaPolicy::RoundRobin);
  const auto grants = sched.schedule(threeUsers());
  for (std::size_t i = 0; i < grants.size(); ++i) {
    EXPECT_DOUBLE_EQ(grants[i].grantedBps,
                     grants[i].resourceBlocks * sched.blockBandwidthHz() *
                         threeUsers()[i].spectralEfficiency);
  }
}

TEST(Ofdma, DemandCapsAllocation) {
  // A user wanting one block's worth of rate gets exactly one block even
  // when the channel is idle (PF redistributes the rest to no one).
  const OfdmaScheduler sched(megahertz(250.0), 64, OfdmaPolicy::ProportionalFair);
  const double perBlock = sched.blockBandwidthHz() * 2.0;
  const auto grants = sched.schedule({{1, perBlock * 0.9, 2.0, 1.0}});
  EXPECT_EQ(grants[0].resourceBlocks, 1);
}

TEST(Ofdma, InvalidDemandThrows) {
  const OfdmaScheduler sched(megahertz(250.0), 64, OfdmaPolicy::RoundRobin);
  EXPECT_THROW(sched.schedule({{1, -1.0, 2.0, 1.0}}), InvalidArgumentError);
  EXPECT_THROW(sched.schedule({{1, 1e6, 0.0, 1.0}}), InvalidArgumentError);
  EXPECT_THROW(sched.schedule({{1, 1e6, 2.0, -0.5}}), InvalidArgumentError);
}

}  // namespace
}  // namespace openspace
