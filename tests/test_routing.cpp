// Unit tests for the routing module: cost models, Dijkstra, Yen k-shortest,
// proactive tables, congestion-aware on-demand routing.
#include <gtest/gtest.h>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/ondemand.hpp>
#include <openspace/routing/proactive.hpp>

namespace openspace {
namespace {

/// A hand-built diamond topology:
///        2
///   1 <     > 4 --- 5(gs)
///        3
/// Top path (via 2) is shorter; bottom path (via 3) has more capacity.
class DiamondGraph : public ::testing::Test {
 protected:
  DiamondGraph() {
    for (NodeId::rep_type idValue = 1; idValue <= 4; ++idValue) {
      const NodeId id{idValue};
      Node n;
      n.id = id;
      n.kind = NodeKind::Satellite;
      n.provider = ProviderId{(idValue % 2 == 0) ? 20u : 10u};
      n.name = "sat" + std::to_string(idValue);
      n.satellite = SatelliteId{idValue};
      g_.addNode(std::move(n));
    }
    Node gs;
    gs.id = NodeId{5};
    gs.kind = NodeKind::GroundStation;
    gs.provider = ProviderId{30};
    gs.name = "gs";
    gs.location = Geodetic::fromDegrees(0, 0);
    g_.addNode(std::move(gs));

    top1_ = addLink(NodeId{1}, NodeId{2}, 1000e3, 10e6);
    top2_ = addLink(NodeId{2}, NodeId{4}, 1000e3, 10e6);
    bot1_ = addLink(NodeId{1}, NodeId{3}, 2000e3, 100e6);
    bot2_ = addLink(NodeId{3}, NodeId{4}, 2000e3, 100e6);
    gsl_ = addLink(NodeId{4}, NodeId{5}, 1500e3, 500e6, LinkType::Gsl);
  }

  LinkId addLink(NodeId a, NodeId b, double dist, double cap,
                 LinkType type = LinkType::IslRf) {
    Link l;
    l.a = a;
    l.b = b;
    l.type = type;
    l.distanceM = dist;
    l.propagationDelayS = dist / kSpeedOfLightMps;
    l.capacityBps = cap;
    return g_.addLink(l);
  }

  NetworkGraph g_;
  LinkId top1_, top2_, bot1_, bot2_, gsl_;
};

TEST_F(DiamondGraph, ShortestPathPicksLowLatency) {
  const Route r = shortestPath(g_, NodeId{1}, NodeId{5}, latencyCost());
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(r.nodes, (std::vector<NodeId>{NodeId{1}, NodeId{2}, NodeId{4}, NodeId{5}}));
  EXPECT_EQ(r.hops(), 3);
  EXPECT_NEAR(r.propagationDelayS, 3500e3 / kSpeedOfLightMps, 1e-12);
  EXPECT_DOUBLE_EQ(r.bottleneckBps, 10e6);
}

TEST_F(DiamondGraph, BandwidthWeightFlipsChoice) {
  CostWeights w;
  w.latencyWeight = 1.0;
  w.bandwidthWeight = 1e6;  // 0.1 cost on 10 Mbps links vs 0.01 on 100 Mbps
  const Route r = shortestPath(g_, NodeId{1}, NodeId{5}, makeCostFunction(w));
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(r.nodes, (std::vector<NodeId>{NodeId{1}, NodeId{3}, NodeId{4}, NodeId{5}}));
  EXPECT_DOUBLE_EQ(r.bottleneckBps, 100e6);
}

TEST_F(DiamondGraph, TariffWeightAvoidsExpensiveLinks) {
  g_.link(top1_).tariffUsdPerGb = 10.0;
  g_.link(top2_).tariffUsdPerGb = 10.0;
  CostWeights w;
  w.latencyWeight = 1.0;
  w.tariffWeight = 50.0;
  const Route r = shortestPath(g_, NodeId{1}, NodeId{5}, makeCostFunction(w));
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(r.nodes, (std::vector<NodeId>{NodeId{1}, NodeId{3}, NodeId{4}, NodeId{5}}));
}

TEST_F(DiamondGraph, QueueingDelayStealsTraffic) {
  g_.link(top1_).queueingDelayS = 0.050;  // hot link
  const Route r = shortestPath(g_, NodeId{1}, NodeId{5}, latencyCost());
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(r.nodes, (std::vector<NodeId>{NodeId{1}, NodeId{3}, NodeId{4}, NodeId{5}}));
  EXPECT_DOUBLE_EQ(r.queueingDelayS, 0.0);
}

TEST_F(DiamondGraph, ForeignPenaltySteersTowardHomeAssets) {
  // Provider 10 owns odd satellites (1, 3); via-3 keeps one endpoint home
  // on every hop, via-2 does not (hop 2-4 is fully foreign).
  CostWeights w;
  w.latencyWeight = 1.0;
  w.foreignPenalty = 0.1;
  const Route r = shortestPath(g_, NodeId{1}, NodeId{5}, makeCostFunction(w), /*home=*/ProviderId{10});
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(r.nodes, (std::vector<NodeId>{NodeId{1}, NodeId{3}, NodeId{4}, NodeId{5}}));
}

TEST_F(DiamondGraph, PremiumRequiresLaser) {
  // All links are RF: a Premium flow that mandates laser finds no path.
  const Route r =
      shortestPath(g_, NodeId{1}, NodeId{5}, makeCostFunction(CostWeights::forQos(QosClass::Premium)));
  EXPECT_FALSE(r.valid());
}

TEST_F(DiamondGraph, SameSourceAndDestination) {
  const Route r = shortestPath(g_, NodeId{3}, NodeId{3}, latencyCost());
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(r.hops(), 0);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST_F(DiamondGraph, UnknownEndpointsThrow) {
  EXPECT_THROW(shortestPath(g_, NodeId{1}, NodeId{99}, latencyCost()), NotFoundError);
  EXPECT_THROW(shortestPath(g_, NodeId{99}, NodeId{1}, latencyCost()), NotFoundError);
  EXPECT_THROW(shortestPathTree(g_, NodeId{99}, latencyCost()), NotFoundError);
}

TEST_F(DiamondGraph, UnreachableGivesInvalidRoute) {
  Node lonely;
  lonely.id = NodeId{42};
  lonely.kind = NodeKind::User;
  lonely.provider = ProviderId{1};
  lonely.name = "lonely";
  lonely.location = Geodetic::fromDegrees(0, 0);
  g_.addNode(std::move(lonely));
  const Route r = shortestPath(g_, NodeId{1}, NodeId{42}, latencyCost());
  EXPECT_FALSE(r.valid());
}

TEST_F(DiamondGraph, ShortestPathTreeCoversComponent) {
  const auto tree = shortestPathTree(g_, NodeId{1}, latencyCost());
  EXPECT_EQ(tree.size(), 5u);  // all five nodes reachable
  EXPECT_EQ(tree.at(NodeId{5}).nodes.front(), NodeId{1u});
  EXPECT_EQ(tree.at(NodeId{5}).nodes.back(), NodeId{5u});
  // Subpath optimality: the tree's route to 4 is a prefix of the one to 5.
  const auto& r4 = tree.at(NodeId{4});
  const auto& r5 = tree.at(NodeId{5});
  ASSERT_EQ(r5.nodes.size(), r4.nodes.size() + 1);
  EXPECT_TRUE(std::equal(r4.nodes.begin(), r4.nodes.end(), r5.nodes.begin()));
}

TEST_F(DiamondGraph, KShortestFindsBothDiamondArms) {
  const auto routes = kShortestPaths(g_, NodeId{1}, NodeId{5}, 3, latencyCost());
  ASSERT_EQ(routes.size(), 2u);  // only two simple paths exist
  EXPECT_EQ(routes[0].nodes, (std::vector<NodeId>{NodeId{1}, NodeId{2}, NodeId{4}, NodeId{5}}));
  EXPECT_EQ(routes[1].nodes, (std::vector<NodeId>{NodeId{1}, NodeId{3}, NodeId{4}, NodeId{5}}));
  EXPECT_LE(routes[0].cost, routes[1].cost);
}

TEST_F(DiamondGraph, KShortestValidation) {
  EXPECT_THROW(kShortestPaths(g_, NodeId{1}, NodeId{5}, 0, latencyCost()),
               InvalidArgumentError);
  // Unreachable destination: empty result, not a throw.
  Node lonely;
  lonely.id = NodeId{42};
  lonely.kind = NodeKind::User;
  lonely.provider = ProviderId{1};
  lonely.name = "l";
  lonely.location = Geodetic::fromDegrees(0, 0);
  g_.addNode(std::move(lonely));
  EXPECT_TRUE(kShortestPaths(g_, NodeId{1}, NodeId{42}, 3, latencyCost()).empty());
}

TEST_F(DiamondGraph, NegativeCostRejected) {
  const LinkCostFn bad = [](const NetworkGraph&, const Link&, ProviderId) {
    return -1.0;
  };
  EXPECT_THROW(shortestPath(g_, NodeId{1}, NodeId{5}, bad), InvalidArgumentError);
}

TEST_F(DiamondGraph, InfiniteCostForbidsLink) {
  const LinkCostFn noTop = [this](const NetworkGraph& gr, const Link& l,
                                  ProviderId) {
    if (l.id == top1_) return std::numeric_limits<double>::infinity();
    return l.totalDelayS();
  };
  const Route r = shortestPath(g_, NodeId{1}, NodeId{5}, noTop);
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(r.nodes, (std::vector<NodeId>{NodeId{1}, NodeId{3}, NodeId{4}, NodeId{5}}));
}

TEST(QosPresets, PremiumWeighsLatencyHarder) {
  const CostWeights bulk = CostWeights::forQos(QosClass::Bulk);
  const CostWeights prem = CostWeights::forQos(QosClass::Premium);
  EXPECT_GT(prem.latencyWeight, bulk.latencyWeight);
  EXPECT_GT(bulk.tariffWeight, prem.tariffWeight);
  EXPECT_TRUE(prem.requireLaserForPremium);
}

// --- proactive router --------------------------------------------------------

class ProactiveTest : public ::testing::Test {
 protected:
  ProactiveTest() {
    for (const auto& el : makeWalkerStar(iridiumConfig())) eph_.publish(ProviderId{1}, el);
    builder_ = std::make_unique<TopologyBuilder>(eph_);
    gs_ = builder_->nodeOf(builder_->addGroundStation(
        {"gs", Geodetic::fromDegrees(48.86, 2.35), ProviderId{2}}));
    user_ = builder_->addUser({"u", Geodetic::fromDegrees(40.44, -79.99), ProviderId{3}});
    opt_.wiring = IslWiring::PlusGrid;
    opt_.planes = 6;
    opt_.minElevationRad = deg2rad(10.0);
  }
  EphemerisService eph_;
  std::unique_ptr<TopologyBuilder> builder_;
  NodeId gs_ = {}, user_ = NodeId{0};
  SnapshotOptions opt_;
};

TEST_F(ProactiveTest, PrecomputesSnapshotGrid) {
  const ProactiveRouter router(*builder_, opt_, 0.0, 300.0, 60.0);
  EXPECT_EQ(router.snapshotCount(), 6u);
  const auto grid = router.gridTimes();
  ASSERT_EQ(grid.size(), 6u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 300.0);
}

TEST_F(ProactiveTest, RoutesFromCachedSnapshots) {
  const ProactiveRouter router(*builder_, opt_, 0.0, 600.0, 120.0);
  const Route r = router.route(user_, gs_, 30.0);
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(r.nodes.front(), user_);
  EXPECT_EQ(r.nodes.back(), gs_);
  // Repeat lookups hit the cached tree and agree.
  const Route r2 = router.route(user_, gs_, 30.0);
  EXPECT_EQ(r.nodes, r2.nodes);
  EXPECT_DOUBLE_EQ(r.cost, r2.cost);
}

TEST_F(ProactiveTest, SnapshotSelectionIsFloor) {
  // Grid: {0, 300}.
  const ProactiveRouter router(*builder_, opt_, 0.0, 300.0, 300.0);
  ASSERT_EQ(router.snapshotCount(), 2u);
  // t=299 uses snapshot 0; t=301 uses snapshot 300.
  const NetworkGraph& s0 = router.snapshotAt(299.0);
  const NetworkGraph& s1 = router.snapshotAt(301.0);
  EXPECT_NE(&s0, &s1);
  EXPECT_EQ(&router.snapshotAt(0.0), &s0);
  EXPECT_EQ(&router.snapshotAt(-50.0), &s0);  // before grid -> first snapshot
  EXPECT_EQ(&router.snapshotAt(1e9), &s1);    // after grid -> last snapshot
}

TEST_F(ProactiveTest, ValidationThrows) {
  EXPECT_THROW(ProactiveRouter(*builder_, opt_, 0.0, 0.0, 60.0),
               InvalidArgumentError);
  EXPECT_THROW(ProactiveRouter(*builder_, opt_, 0.0, 600.0, 0.0),
               InvalidArgumentError);
  const ProactiveRouter router(*builder_, opt_, 0.0, 300.0, 300.0);
  EXPECT_THROW(router.route(user_, NodeId{9999}, 0.0), NotFoundError);
}

// --- on-demand router --------------------------------------------------------

TEST_F(ProactiveTest, OnDemandSelectsBestGroundStation) {
  const NodeId gs2 = builder_->nodeOf(builder_->addGroundStation(
      {"gs2", Geodetic::fromDegrees(40.0, -80.5), ProviderId{2}}));  // right by the user
  const NetworkGraph g = builder_->snapshot(0.0, opt_);
  const OnDemandRouter router(g, latencyCost());
  const Route best = router.selectGroundStation(user_);
  ASSERT_TRUE(best.valid());
  EXPECT_EQ(best.nodes.back(), gs2);  // the nearby gateway wins
}

TEST_F(ProactiveTest, AlternativesAreDistinctAndOrdered) {
  const NetworkGraph g = builder_->snapshot(0.0, opt_);
  const OnDemandRouter router(g, latencyCost());
  const auto alts = router.alternatives(user_, gs_, 4);
  ASSERT_GE(alts.size(), 2u);
  for (std::size_t i = 1; i < alts.size(); ++i) {
    EXPECT_GE(alts[i].cost, alts[i - 1].cost);
    EXPECT_NE(alts[i].nodes, alts[i - 1].nodes);
  }
}

TEST(QueueEstimate, Mm1Shape) {
  const double cap = 10e6;
  EXPECT_DOUBLE_EQ(estimateQueueingDelayS(0.0, cap), 0.0);
  const double half = estimateQueueingDelayS(0.5, cap);
  const double ninety = estimateQueueingDelayS(0.9, cap);
  EXPECT_GT(ninety, half);
  EXPECT_NEAR(half, (12'000.0 / cap) * 1.0, 1e-12);  // rho/(1-rho) = 1
  EXPECT_DOUBLE_EQ(estimateQueueingDelayS(1.5, cap), 2.0);  // saturated cap
  EXPECT_THROW(estimateQueueingDelayS(-0.1, cap), InvalidArgumentError);
  EXPECT_THROW(estimateQueueingDelayS(0.5, 0.0), InvalidArgumentError);
}

}  // namespace
}  // namespace openspace
