// Unit tests for the handover module: visibility-end prediction, successor
// planning, and the predictive vs re-associate timeline simulation.
#include <gtest/gtest.h>

#include <limits>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/handover/handover.hpp>
#include <openspace/orbit/visibility.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {
namespace {

class HandoverTest : public ::testing::Test {
 protected:
  HandoverTest() {
    for (const auto& el : makeWalkerStar(iridiumConfig())) eph_.publish(ProviderId{1}, el);
    planner_ = std::make_unique<HandoverPlanner>(eph_, deg2rad(10.0));
  }
  EphemerisService eph_;
  std::unique_ptr<HandoverPlanner> planner_;
  const Geodetic user_ = Geodetic::fromDegrees(40.44, -79.99);
};

TEST_F(HandoverTest, ElevationMaskValidation) {
  EXPECT_THROW(HandoverPlanner(eph_, -0.1), InvalidArgumentError);
  EXPECT_THROW(HandoverPlanner(eph_, 1.6), InvalidArgumentError);
}

TEST_F(HandoverTest, VisibilityEndMatchesContactWindows) {
  // Pick a satellite visible at t=0 and compare against the orbit module's
  // independent contact-window computation.
  const auto serving = planner_->bestSatelliteAt(user_, 0.0);
  ASSERT_TRUE(serving.has_value());
  const double end = planner_->visibilityEndS(*serving, user_, 0.0);
  const auto windows = contactWindows(eph_.record(*serving).elements, user_,
                                      0.0, 3600.0, deg2rad(10.0), 5.0);
  ASSERT_FALSE(windows.empty());
  EXPECT_NEAR(end, windows.front().endS, 0.5);
}

TEST_F(HandoverTest, VisibilityEndForInvisibleSatelliteIsNow) {
  // Find a satellite NOT visible at t=0.
  for (const SatelliteId sid : eph_.satellites()) {
    const Vec3 pos = eph_.positionEci(sid, 0.0);
    if (elevationFrom(pos, user_, 0.0) < deg2rad(10.0)) {
      EXPECT_DOUBLE_EQ(planner_->visibilityEndS(sid, user_, 0.0), 0.0);
      return;
    }
  }
  FAIL() << "every satellite visible (implausible for a 66-sat shell)";
}

TEST_F(HandoverTest, BestSatelliteMaximizesRemainingService) {
  const auto best = planner_->bestSatelliteAt(user_, 0.0);
  ASSERT_TRUE(best.has_value());
  const double bestUntil = planner_->visibilityEndS(*best, user_, 0.0);
  for (const SatelliteId sid : eph_.satellites()) {
    if (sid == *best) continue;
    const Vec3 pos = eph_.positionEci(sid, 0.0);
    if (elevationFrom(pos, user_, 0.0) < deg2rad(10.0)) continue;
    EXPECT_LE(planner_->visibilityEndS(sid, user_, 0.0), bestUntil + 0.5);
  }
}

TEST_F(HandoverTest, BestSatelliteAtMatchesPerCandidateColdScan) {
  // bestSatelliteAt reuses one warm SatelliteSweep across candidates; the
  // reference below constructs a fresh sweep per candidate through the
  // public visibilityEndS. Winners must be identical, not merely close —
  // reset() is pinned bit-for-bit to fresh construction.
  for (const double t : {0.0, 137.0, 605.5, 1'234.25}) {
    SatelliteId exclude{};
    for (int pass = 0; pass < 2; ++pass) {
      std::optional<SatelliteId> expect;
      double bestUntil = -1.0;
      for (const SatelliteId sid : eph_.satellites()) {
        if (sid == exclude) continue;
        if (elevationFrom(eph_.positionEci(sid, t), user_, t) < deg2rad(10.0)) {
          continue;
        }
        const double until = planner_->visibilityEndS(sid, user_, t);
        if (until > bestUntil) {
          bestUntil = until;
          expect = sid;
        }
      }
      const auto got = planner_->bestSatelliteAt(user_, t, exclude);
      EXPECT_EQ(got, expect) << "t " << t << " pass " << pass;
      if (!expect) break;
      // Second pass: exclude the winner, as the successor search does.
      exclude = *expect;
    }
  }
}

TEST_F(HandoverTest, ClosestSatelliteIsVisible) {
  const auto closest = planner_->closestSatelliteAt(user_, 0.0);
  ASSERT_TRUE(closest.has_value());
  const Vec3 pos = eph_.positionEci(*closest, 0.0);
  EXPECT_GE(elevationFrom(pos, user_, 0.0), deg2rad(10.0));
}

TEST_F(HandoverTest, PlanProducesUsableSuccessor) {
  const auto serving = planner_->bestSatelliteAt(user_, 0.0);
  ASSERT_TRUE(serving.has_value());
  const HandoverPlan plan = planner_->plan(*serving, user_, 0.0);
  ASSERT_TRUE(plan.found);
  EXPECT_NE(plan.successor, *serving);
  EXPECT_GT(plan.serviceEndsAtS, 0.0);
  // The successor is actually visible at the switch instant.
  const Vec3 pos = eph_.positionEci(plan.successor, plan.serviceEndsAtS - 1e-3);
  EXPECT_GE(elevationFrom(pos, user_, plan.serviceEndsAtS - 1e-3),
            deg2rad(10.0));
  // And serves beyond the handover time.
  EXPECT_GT(plan.successorUntilS, plan.serviceEndsAtS);
}

TEST_F(HandoverTest, TimelineCoversWindowAndHandsOver) {
  const auto tl =
      simulateHandovers(*planner_, user_, 0.0, 3600.0, HandoverMode::Predictive);
  EXPECT_GT(tl.handovers(), 0);
  EXPECT_GT(tl.coveredS, 3000.0);  // mostly covered for a 66-sat shell
  EXPECT_LT(tl.outageS, 600.0);
  // Events are time-ordered and chain correctly.
  for (std::size_t i = 1; i < tl.events.size(); ++i) {
    EXPECT_GT(tl.events[i].atS, tl.events[i - 1].atS);
    EXPECT_EQ(tl.events[i].from, tl.events[i - 1].to);
  }
}

TEST_F(HandoverTest, PredictiveBeatsReassociationOnOutage) {
  const auto pred =
      simulateHandovers(*planner_, user_, 0.0, 3600.0, HandoverMode::Predictive);
  const auto reassoc = simulateHandovers(*planner_, user_, 0.0, 3600.0,
                                         HandoverMode::ReAssociate);
  ASSERT_GT(pred.handovers(), 0);
  ASSERT_GT(reassoc.handovers(), 0);
  EXPECT_LT(pred.outageS, reassoc.outageS);
  // Per-handover latency: predictive is milliseconds, reassociation ~1 s.
  double predMax = 0.0, reassocMin = 1e9;
  for (const auto& e : pred.events) predMax = std::max(predMax, e.latencyS);
  for (const auto& e : reassoc.events) {
    reassocMin = std::min(reassocMin, e.latencyS);
  }
  EXPECT_LT(predMax, 0.1);
  EXPECT_GT(reassocMin, 0.5);
}

TEST_F(HandoverTest, ReassociationCostIsConfigurable) {
  ReAssociationCost cheap;
  cheap.beaconPeriodS = 0.2;
  cheap.authRttS = 0.010;
  const auto tl = simulateHandovers(*planner_, user_, 0.0, 3600.0,
                                    HandoverMode::ReAssociate, cheap);
  for (const auto& e : tl.events) {
    EXPECT_NEAR(e.latencyS, 0.1 + 0.010, 1e-12);
  }
}

TEST_F(HandoverTest, InvalidWindowThrows) {
  EXPECT_THROW(
      simulateHandovers(*planner_, user_, 10.0, 10.0, HandoverMode::Predictive),
      InvalidArgumentError);
  EXPECT_THROW(
      simulateHandovers(*planner_, user_, 10.0, 5.0, HandoverMode::Predictive),
      InvalidArgumentError);
}

TEST(HandoverHorizon, AlwaysVisibleSatelliteReturnsHorizonBound) {
  // A geostationary-altitude satellite parked over the user never crosses
  // the elevation mask: the LOS scan must stop at the horizon bound rather
  // than searching forever for a transition that does not exist.
  EphemerisService eph;
  const SatelliteId sid =
      eph.publish(ProviderId{1},
                  OrbitalElements::circular(km(35'786.0), 0.0, 0.0, 0.0));
  const HandoverPlanner planner(eph, deg2rad(10.0));
  const Geodetic user = Geodetic::fromDegrees(0.0, 0.0);
  EXPECT_DOUBLE_EQ(planner.visibilityEndS(sid, user, 0.0), 3'600.0);
  EXPECT_DOUBLE_EQ(planner.visibilityEndS(sid, user, 50.0, 600.0), 650.0);
  // Horizon shorter than the scan grid still clamps exactly to the bound.
  EXPECT_DOUBLE_EQ(planner.visibilityEndS(sid, user, 0.0, 3.5), 3.5);
  // Degenerate zero-length window: visible now, search ends immediately.
  EXPECT_DOUBLE_EQ(planner.visibilityEndS(sid, user, 10.0, 0.0), 10.0);
}

TEST(HandoverHorizon, InvalidHorizonThrows) {
  EphemerisService eph;
  const SatelliteId sid =
      eph.publish(ProviderId{1},
                  OrbitalElements::circular(km(780.0), 0.0, 0.0, 0.0));
  const HandoverPlanner planner(eph, deg2rad(10.0));
  const Geodetic user = Geodetic::fromDegrees(0.0, 0.0);
  EXPECT_THROW(planner.visibilityEndS(sid, user, 0.0, -1.0),
               InvalidArgumentError);
  EXPECT_THROW(planner.visibilityEndS(sid, user, 0.0,
                                      std::numeric_limits<double>::infinity()),
               InvalidArgumentError);
  EXPECT_THROW(planner.visibilityEndS(sid, user, 0.0,
                                      std::numeric_limits<double>::quiet_NaN()),
               InvalidArgumentError);
}

TEST(HandoverSparse, NoCoverageMeansNoHandovers) {
  // One equatorial satellite, user at the pole: never visible.
  EphemerisService eph;
  eph.publish(ProviderId{1}, OrbitalElements::circular(km(780.0), 0.0, 0.0, 0.0));
  const HandoverPlanner planner(eph, deg2rad(10.0));
  const Geodetic pole = Geodetic::fromDegrees(89.0, 0.0);
  const auto tl =
      simulateHandovers(planner, pole, 0.0, 3600.0, HandoverMode::Predictive);
  EXPECT_EQ(tl.handovers(), 0);
  EXPECT_DOUBLE_EQ(tl.coveredS, 0.0);
  EXPECT_NEAR(tl.outageS, 3600.0, 15.0);
}

TEST(HandoverSparse, SingleSatellitePlanHasNoSuccessor) {
  EphemerisService eph;
  const SatelliteId only =
      eph.publish(ProviderId{1}, OrbitalElements::circular(km(780.0), 0.0, 0.0, 0.0));
  const HandoverPlanner planner(eph, deg2rad(10.0));
  const Geodetic equator = Geodetic::fromDegrees(0.0, 0.0);
  const HandoverPlan plan = planner.plan(only, equator, 0.0);
  EXPECT_FALSE(plan.found);
  EXPECT_GT(plan.serviceEndsAtS, 0.0);  // it does serve for a while
}

TEST(HandoverDensity, DenserFleetsCoverGapsBetter) {
  const Geodetic user = Geodetic::fromDegrees(40.44, -79.99);
  auto outageFor = [&](int sats, int planes) {
    EphemerisService eph;
    WalkerConfig wc = iridiumConfig();
    wc.totalSatellites = sats;
    wc.planes = planes;
    wc.phasing = wc.phasing % planes;
    for (const auto& el : makeWalkerStar(wc)) eph.publish(ProviderId{1}, el);
    const HandoverPlanner planner(eph, deg2rad(10.0));
    return simulateHandovers(planner, user, 0.0, 7200.0,
                             HandoverMode::Predictive)
        .outageS;
  };
  EXPECT_LE(outageFor(66, 6), outageFor(22, 2) + 1.0);
}

}  // namespace
}  // namespace openspace
