// Unit tests for orbital maneuver planning: Hohmann transfers, plane
// changes, phasing, propellant budgets, slot acquisition.
#include <gtest/gtest.h>

#include <numbers>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/maneuver.hpp>

namespace openspace {
namespace {

TEST(Maneuver, CircularVelocityKnownValues) {
  // LEO at ~780 km: ~7.45 km/s; GEO radius: ~3.07 km/s.
  EXPECT_NEAR(circularVelocityMps(wgs84::kMeanRadiusM + 780e3), 7'460.0, 30.0);
  EXPECT_NEAR(circularVelocityMps(42'164e3), 3'075.0, 10.0);
  EXPECT_THROW(circularVelocityMps(0.0), InvalidArgumentError);
}

TEST(Maneuver, HohmannLeoToGeoTextbookValue) {
  // ~3.9 km/s from a 300 km LEO to GEO (textbook).
  const double r1 = wgs84::kMeanRadiusM + 300e3;
  const double r2 = 42'164e3;
  EXPECT_NEAR(hohmannDeltaVMps(r1, r2), 3'900.0, 60.0);
}

TEST(Maneuver, HohmannSymmetricAndZeroForSameOrbit) {
  const double r1 = wgs84::kMeanRadiusM + 500e3;
  const double r2 = wgs84::kMeanRadiusM + 780e3;
  EXPECT_DOUBLE_EQ(hohmannDeltaVMps(r1, r2), hohmannDeltaVMps(r2, r1));
  EXPECT_DOUBLE_EQ(hohmannDeltaVMps(r1, r1), 0.0);
  EXPECT_THROW(hohmannDeltaVMps(-1.0, r2), InvalidArgumentError);
}

TEST(Maneuver, HohmannTransferTimeIsHalfEllipsePeriod) {
  const double r1 = wgs84::kMeanRadiusM + 500e3;
  const double r2 = wgs84::kMeanRadiusM + 780e3;
  const double t = hohmannTransferTimeS(r1, r2);
  // Between half-periods of the two circular orbits.
  const auto lo = OrbitalElements::circular(500e3, 0, 0, 0);
  const auto hi = OrbitalElements::circular(780e3, 0, 0, 0);
  EXPECT_GT(t, lo.periodS() / 2.0);
  EXPECT_LT(t, hi.periodS() / 2.0);
}

TEST(Maneuver, PlaneChangeCosts) {
  const double r = wgs84::kMeanRadiusM + 780e3;
  // 60 deg plane change costs exactly one circular velocity.
  EXPECT_NEAR(planeChangeDeltaVMps(r, deg2rad(60.0)), circularVelocityMps(r),
              1e-6);
  EXPECT_DOUBLE_EQ(planeChangeDeltaVMps(r, 0.0), 0.0);
  // Small changes are ~linear: v * angle.
  EXPECT_NEAR(planeChangeDeltaVMps(r, 0.01), circularVelocityMps(r) * 0.01,
              0.5);
}

TEST(Maneuver, PlaneChangeDwarfsAltitudeChange) {
  // The "launch into your plane" rule: a 30 deg re-plane costs far more
  // than raising 400 -> 780 km.
  const double r = wgs84::kMeanRadiusM + 780e3;
  EXPECT_GT(planeChangeDeltaVMps(r, deg2rad(30.0)),
            10.0 * hohmannDeltaVMps(wgs84::kMeanRadiusM + 400e3, r));
}

TEST(Phasing, DriftDirectionAndCost) {
  const auto orbit = OrbitalElements::circular(780e3, deg2rad(86.4), 0, 0);
  const PhasingPlan ahead = planPhasing(orbit, 0.5, 10);
  EXPECT_GT(ahead.deltaVMps, 0.0);
  // Moving ahead = shorter-period phasing orbit = smaller semi-major axis.
  EXPECT_LT(ahead.phasingSemiMajorAxisM, orbit.semiMajorAxisM);
  const PhasingPlan behind = planPhasing(orbit, -0.5, 10);
  EXPECT_GT(behind.phasingSemiMajorAxisM, orbit.semiMajorAxisM);
  // Duration ~ revolutions * period.
  EXPECT_NEAR(ahead.durationS, 10 * orbit.periodS(), orbit.periodS());
}

TEST(Phasing, MoreRevolutionsAreCheaper) {
  const auto orbit = OrbitalElements::circular(780e3, deg2rad(86.4), 0, 0);
  const PhasingPlan fast = planPhasing(orbit, 1.0, 5);
  const PhasingPlan slow = planPhasing(orbit, 1.0, 25);
  EXPECT_LT(slow.deltaVMps, fast.deltaVMps);
  EXPECT_GT(slow.durationS, fast.durationS);
}

TEST(Phasing, ZeroPhaseIsFree) {
  const auto orbit = OrbitalElements::circular(780e3, 0, 0, 0);
  const PhasingPlan plan = planPhasing(orbit, 0.0, 5);
  EXPECT_DOUBLE_EQ(plan.deltaVMps, 0.0);
  EXPECT_DOUBLE_EQ(plan.durationS, 0.0);
}

TEST(Phasing, Validation) {
  const auto orbit = OrbitalElements::circular(780e3, 0, 0, 0);
  EXPECT_THROW(planPhasing(orbit, 0.5, 0), InvalidArgumentError);
  EXPECT_THROW(planPhasing(orbit, 7.0, 5), InvalidArgumentError);
  // An aggressive single-revolution phase change from low orbit dips below
  // the safety floor.
  const auto low = OrbitalElements::circular(200e3, 0, 0, 0);
  EXPECT_THROW(planPhasing(low, 3.0, 1), InvalidArgumentError);
}

TEST(Propellant, RocketEquation) {
  // dv = Isp * g0 * ln(1 + mp/md): invert a simple case.
  const double isp = 220.0;
  const double g0 = 9.80665;
  const double mp = propellantMassKg(100.0, isp * g0 * std::numbers::ln2, isp);
  EXPECT_NEAR(mp, 100.0, 1e-6);  // ln(2) of delta-v doubles the mass
  EXPECT_DOUBLE_EQ(propellantMassKg(100.0, 0.0, isp), 0.0);
  EXPECT_THROW(propellantMassKg(0.0, 10.0, isp), InvalidArgumentError);
  EXPECT_THROW(propellantMassKg(100.0, -1.0, isp), InvalidArgumentError);
  EXPECT_THROW(propellantMassKg(100.0, 10.0, 0.0), InvalidArgumentError);
}

TEST(SlotAcquisition, RideshareToOperationalSlot) {
  const auto slot = OrbitalElements::circular(780e3, deg2rad(86.4), 0, 1.0);
  const SlotAcquisition acq =
      planSlotAcquisition(500e3, slot, /*phaseError=*/1.0, /*dryMass=*/100.0);
  EXPECT_GT(acq.totalDeltaVMps, 100.0);   // raise 280 km + phasing
  EXPECT_LT(acq.totalDeltaVMps, 400.0);   // sane bound
  EXPECT_GT(acq.totalDurationS, 3'600.0); // phasing dominates: hours-days
  EXPECT_GT(acq.propellantKg, 0.0);
  EXPECT_LT(acq.propellantKg, 25.0);      // small fraction of dry mass
}

TEST(SlotAcquisition, NoPhasingNeeded) {
  const auto slot = OrbitalElements::circular(780e3, deg2rad(86.4), 0, 0);
  const SlotAcquisition acq = planSlotAcquisition(500e3, slot, 0.0, 100.0);
  EXPECT_NEAR(acq.totalDeltaVMps,
              hohmannDeltaVMps(wgs84::kMeanRadiusM + 500e3,
                               wgs84::kMeanRadiusM + 780e3),
              1e-9);
  EXPECT_THROW(planSlotAcquisition(0.0, slot, 0.0, 100.0),
               InvalidArgumentError);
}

TEST(SlotAcquisition, ManeuveringCostFeedsCapexScale) {
  // Sanity link to §3: slot acquisition propellant for a 100 kg smallsat is
  // a few kg — the launch-mass line item, not a showstopper; re-planing
  // (which OpenSpace avoids) would be.
  const auto slot = OrbitalElements::circular(780e3, deg2rad(86.4), 0, 0);
  const double planeChange = planeChangeDeltaVMps(slot.semiMajorAxisM,
                                                  deg2rad(30.0));
  const double rePlaneProp = propellantMassKg(100.0, planeChange, 220.0);
  EXPECT_GT(rePlaneProp, 100.0);  // more propellant than the satellite itself
}

}  // namespace
}  // namespace openspace
