// Unit tests for the ISL establishment protocol (§2.1): beaconing, pairing
// handshake, capability negotiation, optical upgrade, power admission, and
// fleet-level discovery.
#include <gtest/gtest.h>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/isl/fleet.hpp>
#include <openspace/isl/pairing.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {
namespace {

LinkCapabilities rfCaps(int maxIsl = 4) {
  LinkCapabilities c;
  c.islBands = {Band::S, Band::Uhf};
  c.maxIslCount = maxIsl;
  return c;
}

LinkCapabilities laserCaps(int maxIsl = 4) {
  LinkCapabilities c = rfCaps(maxIsl);
  c.hasLaserTerminal = true;
  return c;
}

PowerBudget richPower() { return PowerBudget(200.0, 300.0, 35.0); }
PowerBudget poorPower() { return PowerBudget(45.0, 50.0, 35.0); }  // 10 W spare

IslEndpoint mkEndpoint(SatelliteId id, const LinkCapabilities& caps,
                       PowerBudget pb = richPower()) {
  return IslEndpoint(id, ProviderId{id.value() * 10}, caps, std::move(pb));
}

const Vec3 kPosA{7158e3, 0.0, 0.0};
const Vec3 kPosB{7158e3 * std::cos(0.3), 7158e3 * std::sin(0.3), 0.0};

TEST(IslEndpoint, RequiresRfMinimum) {
  LinkCapabilities opticalOnly;
  opticalOnly.islBands = {Band::Optical};
  EXPECT_THROW(IslEndpoint(SatelliteId{1}, ProviderId{1}, opticalOnly, richPower()),
               InvalidArgumentError);
  LinkCapabilities none;
  EXPECT_THROW(IslEndpoint(SatelliteId{1}, ProviderId{1}, none, richPower()), InvalidArgumentError);
  LinkCapabilities zeroLinks = rfCaps(0);
  EXPECT_THROW(IslEndpoint(SatelliteId{1}, ProviderId{1}, zeroLinks, richPower()), InvalidArgumentError);
}

TEST(IslEndpoint, BeaconCarriesIdentityAndCapabilities) {
  const auto ep = mkEndpoint(SatelliteId{7}, laserCaps());
  const auto el = OrbitalElements::circular(km(780.0), 1.0, 0.5, 0.2);
  const BeaconMessage b = ep.makeBeacon(123.0, el);
  EXPECT_EQ(b.satellite, SatelliteId{7u});
  EXPECT_EQ(b.provider, ProviderId{70u});
  EXPECT_DOUBLE_EQ(b.txTimeS, 123.0);
  EXPECT_TRUE(b.capabilities.hasLaserTerminal);
  EXPECT_DOUBLE_EQ(b.elements.raanRad, 0.5);
}

TEST(Pairing, RfHandshakeSucceeds) {
  auto a = mkEndpoint(SatelliteId{1}, rfCaps());
  auto b = mkEndpoint(SatelliteId{2}, rfCaps());
  const auto est = establishIsl(a, b, kPosA, kPosB, 0.0);
  EXPECT_TRUE(est.rfEstablished);
  EXPECT_FALSE(est.opticalEstablished);
  EXPECT_EQ(a.stateWith(SatelliteId{2}), IslState::RfActive);
  EXPECT_EQ(b.stateWith(SatelliteId{1}), IslState::RfActive);
  // Handshake costs 3 one-way propagation delays.
  const double prop = kPosA.distanceTo(kPosB) / kSpeedOfLightMps;
  EXPECT_NEAR(est.rfReadyAtS, 3.0 * prop, 1e-9);
}

TEST(Pairing, IgnoresOwnBeacon) {
  auto a = mkEndpoint(SatelliteId{1}, rfCaps());
  const BeaconMessage selfBeacon = a.makeBeacon(0.0, OrbitalElements{});
  EXPECT_EQ(a.considerPairing(selfBeacon, 0.0), std::nullopt);
}

TEST(Pairing, DoesNotRePairmExistingPeer) {
  auto a = mkEndpoint(SatelliteId{1}, rfCaps());
  auto b = mkEndpoint(SatelliteId{2}, rfCaps());
  ASSERT_TRUE(establishIsl(a, b, kPosA, kPosB, 0.0).rfEstablished);
  const BeaconMessage beacon = b.makeBeacon(1.0, OrbitalElements{});
  EXPECT_EQ(a.considerPairing(beacon, 1.0), std::nullopt);
}

TEST(Pairing, TerminalCapacityEnforced) {
  auto hub = mkEndpoint(SatelliteId{1}, rfCaps(/*maxIsl=*/2));
  auto s2 = mkEndpoint(SatelliteId{2}, rfCaps());
  auto s3 = mkEndpoint(SatelliteId{3}, rfCaps());
  auto s4 = mkEndpoint(SatelliteId{4}, rfCaps());
  EXPECT_TRUE(establishIsl(hub, s2, kPosA, kPosB, 0.0).rfEstablished);
  EXPECT_TRUE(establishIsl(hub, s3, kPosA, kPosB, 0.0).rfEstablished);
  EXPECT_TRUE(hub.atCapacity());
  const auto est = establishIsl(hub, s4, kPosA, kPosB, 0.0);
  EXPECT_FALSE(est.rfEstablished);
  EXPECT_FALSE(est.failureReason.empty());
}

TEST(Pairing, ResponderAtCapacityRejects) {
  auto a = mkEndpoint(SatelliteId{1}, rfCaps());
  auto hub = mkEndpoint(SatelliteId{2}, rfCaps(/*maxIsl=*/1));
  auto c = mkEndpoint(SatelliteId{3}, rfCaps());
  ASSERT_TRUE(establishIsl(hub, c, kPosA, kPosB, 0.0).rfEstablished);
  const auto est = establishIsl(a, hub, kPosA, kPosB, 0.0);
  EXPECT_FALSE(est.rfEstablished);
  EXPECT_EQ(a.stateWith(SatelliteId{2}), IslState::Idle);  // initiator rolls back cleanly
}

TEST(Pairing, PowerShortageRejects) {
  // 10 W spare < the 28 W S-band draw: the responder must refuse.
  auto a = mkEndpoint(SatelliteId{1}, rfCaps());
  auto b = mkEndpoint(SatelliteId{2}, rfCaps(), poorPower());
  const auto est = establishIsl(a, b, kPosA, kPosB, 0.0);
  EXPECT_FALSE(est.rfEstablished);
}

TEST(Pairing, PoorInitiatorNeverSendsRequest) {
  auto a = mkEndpoint(SatelliteId{1}, rfCaps(), poorPower());
  auto b = mkEndpoint(SatelliteId{2}, rfCaps());
  const auto est = establishIsl(a, b, kPosA, kPosB, 0.0);
  EXPECT_FALSE(est.rfEstablished);
  EXPECT_EQ(b.stateWith(SatelliteId{1}), IslState::Idle);  // b never saw a request
}

TEST(Pairing, NoCommonBandRejects) {
  LinkCapabilities uhfOnly;
  uhfOnly.islBands = {Band::Uhf};
  uhfOnly.maxIslCount = 4;
  LinkCapabilities sOnly;
  sOnly.islBands = {Band::S};
  sOnly.maxIslCount = 4;
  auto a = mkEndpoint(SatelliteId{1}, uhfOnly);
  auto b = mkEndpoint(SatelliteId{2}, sOnly);
  const auto est = establishIsl(a, b, kPosA, kPosB, 0.0);
  EXPECT_FALSE(est.rfEstablished);
  EXPECT_NE(est.failureReason.find("band"), std::string::npos);
}

TEST(Pairing, OpticalUpgradeWhenBothCapable) {
  auto a = mkEndpoint(SatelliteId{1}, laserCaps());
  auto b = mkEndpoint(SatelliteId{2}, laserCaps());
  const auto est = establishIsl(a, b, kPosA, kPosB, 0.0);
  EXPECT_TRUE(est.rfEstablished);
  EXPECT_TRUE(est.opticalEstablished);
  EXPECT_GT(est.opticalReadyAtS, est.rfReadyAtS);
  // Slew + acquisition dominates: at least the PAT settle time.
  EXPECT_GE(est.opticalReadyAtS - est.rfReadyAtS,
            IslEndpoint::kOpticalAcquisitionS);
  EXPECT_EQ(a.stateWith(SatelliteId{2}), IslState::OpticalActive);
  EXPECT_EQ(b.stateWith(SatelliteId{1}), IslState::OpticalActive);
}

TEST(Pairing, NoOpticalWhenOneSideRfOnly) {
  auto a = mkEndpoint(SatelliteId{1}, laserCaps());
  auto b = mkEndpoint(SatelliteId{2}, rfCaps());
  const auto est = establishIsl(a, b, kPosA, kPosB, 0.0);
  EXPECT_TRUE(est.rfEstablished);
  EXPECT_FALSE(est.opticalEstablished);
  EXPECT_EQ(a.stateWith(SatelliteId{2}), IslState::RfActive);
}

TEST(Pairing, TeardownReleasesPowerForNewLinks) {
  // Power for exactly one RF link (S-band draws 28 W).
  auto a = mkEndpoint(SatelliteId{1}, rfCaps(), PowerBudget(70.0, 50.0, 35.0));
  auto b = mkEndpoint(SatelliteId{2}, rfCaps());
  auto c = mkEndpoint(SatelliteId{3}, rfCaps());
  ASSERT_TRUE(establishIsl(a, b, kPosA, kPosB, 0.0).rfEstablished);
  EXPECT_FALSE(establishIsl(a, c, kPosA, kPosB, 1.0).rfEstablished);
  a.teardown(SatelliteId{2});
  b.teardown(SatelliteId{1});
  EXPECT_EQ(a.stateWith(SatelliteId{2}), IslState::Torn);
  EXPECT_TRUE(establishIsl(a, c, kPosA, kPosB, 2.0).rfEstablished);
}

TEST(Pairing, TeardownUnknownPeerThrows) {
  auto a = mkEndpoint(SatelliteId{1}, rfCaps());
  EXPECT_THROW(a.teardown(SatelliteId{42}), NotFoundError);
}

TEST(Pairing, OpticalUpgradeStateMachineGuards) {
  auto a = mkEndpoint(SatelliteId{1}, laserCaps());
  EXPECT_THROW(a.beginOpticalUpgrade(SatelliteId{2}, 0.1, 0.0), StateError);
  EXPECT_THROW(a.completeOpticalUpgrade(SatelliteId{2}), StateError);
  EXPECT_THROW(a.abortOpticalUpgrade(SatelliteId{2}), StateError);
}

TEST(Pairing, ResponseWithoutRequestThrows) {
  auto a = mkEndpoint(SatelliteId{1}, rfCaps());
  PairResponse resp;
  resp.from = SatelliteId{9};
  resp.to = SatelliteId{1};
  resp.accepted = true;
  EXPECT_THROW(a.onPairResponse(resp, 0.0), StateError);
}

TEST(Pairing, SlewTimeScalesWithAngle) {
  auto a1 = mkEndpoint(SatelliteId{1}, laserCaps());
  auto b1 = mkEndpoint(SatelliteId{2}, laserCaps());
  ASSERT_TRUE(establishIsl(a1, b1, kPosA, kPosB, 0.0).rfEstablished);
  // Manually drive upgrades with two different slew angles.
  auto a2 = mkEndpoint(SatelliteId{3}, laserCaps());
  auto b2 = mkEndpoint(SatelliteId{4}, laserCaps());
  ASSERT_TRUE(establishIsl(a2, b2, kPosA, kPosB, 0.0).rfEstablished);
  // a1/b1 already upgraded optically by establishIsl (both laser) — use
  // fresh RF-active pairs instead.
  auto c = mkEndpoint(SatelliteId{5}, laserCaps());
  auto d = mkEndpoint(SatelliteId{6}, rfCaps());
  ASSERT_TRUE(establishIsl(c, d, kPosA, kPosB, 0.0).rfEstablished);
  const auto readySmall = c.beginOpticalUpgrade(SatelliteId{6}, 0.1, 100.0);
  ASSERT_TRUE(readySmall.has_value());
  auto e = mkEndpoint(SatelliteId{7}, laserCaps());
  auto f = mkEndpoint(SatelliteId{8}, rfCaps());
  ASSERT_TRUE(establishIsl(e, f, kPosA, kPosB, 0.0).rfEstablished);
  const auto readyLarge = e.beginOpticalUpgrade(SatelliteId{8}, 1.0, 100.0);
  ASSERT_TRUE(readyLarge.has_value());
  EXPECT_GT(*readyLarge, *readySmall);
}

TEST(Pairing, SlewDrawsBatteryEnergy) {
  auto a = mkEndpoint(SatelliteId{1}, laserCaps());
  auto b = mkEndpoint(SatelliteId{2}, rfCaps());
  ASSERT_TRUE(establishIsl(a, b, kPosA, kPosB, 0.0).rfEstablished);
  const double before = a.power().batteryChargeWh();
  ASSERT_TRUE(a.beginOpticalUpgrade(SatelliteId{2}, 1.0, 10.0).has_value());
  EXPECT_NEAR(before - a.power().batteryChargeWh(),
              IslEndpoint::kSlewEnergyWhPerRad, 1e-9);
}

// --- fleet ------------------------------------------------------------------

TEST(Fleet, DiscoveryEstablishesLinks) {
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  IslFleet fleet(eph, FleetConfig{});
  const auto links = fleet.runDiscoveryRound(0.0);
  EXPECT_GT(links.size(), 30u);
  for (const auto& l : links) {
    EXPECT_EQ(fleet.endpoint(l.a).stateWith(l.b), IslState::RfActive);
    EXPECT_EQ(fleet.endpoint(l.b).stateWith(l.a), IslState::RfActive);
    EXPECT_LE(l.distanceM, FleetConfig{}.rfDiscoveryRangeM);
  }
}

TEST(Fleet, RespectsTerminalBudgets) {
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  IslFleet fleet(eph, FleetConfig{});
  fleet.runDiscoveryRound(0.0);
  for (const SatelliteId sid : eph.satellites()) {
    EXPECT_LE(fleet.endpoint(sid).activeLinkCount(), 4u);
  }
}

TEST(Fleet, LinksTearDownWhenGeometryBreaks) {
  // Two satellites in the same plane, opposite phases: close at t=0? No —
  // place them close at epoch and far half a period later via different
  // planes. Use a 2-sat custom setup.
  EphemerisService eph;
  const auto a = OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.0, 0.0);
  const auto b = OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.0, 0.2);
  const SatelliteId ida = eph.publish(ProviderId{1}, a);
  const SatelliteId idb = eph.publish(ProviderId{2}, b);
  IslFleet fleet(eph, FleetConfig{});
  const auto links = fleet.runDiscoveryRound(0.0);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(fleet.liveLinks().size(), 1u);
  // Half a period later the two are on opposite sides of the planet?
  // Same plane, same rate: separation is constant. Instead move the test
  // forward with a third satellite: simply verify the link persists.
  fleet.runDiscoveryRound(100.0);
  EXPECT_EQ(fleet.liveLinks().size(), 1u);
  EXPECT_EQ(fleet.endpoint(ida).stateWith(idb), IslState::RfActive);
}

TEST(Fleet, OpposingSatellitesNeverLink) {
  EphemerisService eph;
  // Same plane, antipodal phases: always blocked by the Earth.
  eph.publish(ProviderId{1}, OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.0, 0.0));
  eph.publish(ProviderId{2}, OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.0,
                                           std::numbers::pi));
  IslFleet fleet(eph, FleetConfig{});
  EXPECT_TRUE(fleet.runDiscoveryRound(0.0).empty());
  EXPECT_TRUE(fleet.liveLinks().empty());
}

TEST(Fleet, CapabilitiesUpgradeYieldsOpticalLinks) {
  EphemerisService eph;
  eph.publish(ProviderId{1}, OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.0, 0.0));
  eph.publish(ProviderId{2}, OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.0, 0.2));
  IslFleet fleet(eph, FleetConfig{});
  fleet.setCapabilities(SatelliteId{1}, laserCaps());
  fleet.setCapabilities(SatelliteId{2}, laserCaps());
  const auto links = fleet.runDiscoveryRound(0.0);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_TRUE(links[0].optical);
  EXPECT_THROW(fleet.setCapabilities(SatelliteId{99}, laserCaps()), NotFoundError);
}

TEST(Fleet, UnknownEndpointThrows) {
  EphemerisService eph;
  eph.publish(ProviderId{1}, OrbitalElements::circular(km(780.0), 0.0, 0.0, 0.0));
  IslFleet fleet(eph, FleetConfig{});
  EXPECT_THROW(fleet.endpoint(SatelliteId{42}), NotFoundError);
}

TEST(IslStateNames, AllNamed) {
  for (const IslState s : {IslState::Idle, IslState::PairRequested,
                           IslState::RfActive, IslState::Acquiring,
                           IslState::OpticalActive, IslState::Torn}) {
    EXPECT_FALSE(islStateName(s).empty());
    EXPECT_NE(islStateName(s), "?");
  }
}

}  // namespace
}  // namespace openspace
