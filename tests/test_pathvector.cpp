// Unit tests for the path-vector inter-provider control plane (§3 BGP
// comparison) and link-state dissemination.
#include <gtest/gtest.h>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/linkstate.hpp>
#include <openspace/routing/pathvector.hpp>
#include <openspace/topology/builder.hpp>

namespace openspace {
namespace {

ProviderLink mesh(ProviderId a, ProviderId b) {
  return {a, b, Relationship::Mesh, Relationship::Mesh};
}

/// a buys transit from b: a sees b as Provider, b sees a as Customer.
ProviderLink transit(ProviderId customer, ProviderId provider) {
  return {customer, provider, Relationship::Provider, Relationship::Customer};
}

ProviderLink peer(ProviderId a, ProviderId b) {
  return {a, b, Relationship::Peer, Relationship::Peer};
}

TEST(PathVector, SelfNeighborRejected) {
  PathVectorNode node(ProviderId{1});
  EXPECT_THROW(node.addNeighbor(ProviderId{1}, Relationship::Mesh), InvalidArgumentError);
  EXPECT_THROW(node.receive(ProviderId{9}, PathAdvertisement{}), NotFoundError);
  EXPECT_THROW(node.exportTo(ProviderId{9}), NotFoundError);
}

TEST(PathVector, LoopPreventionDropsOwnAsPaths) {
  PathVectorNode node(ProviderId{1});
  node.addNeighbor(ProviderId{2}, Relationship::Mesh);
  PathAdvertisement adv;
  adv.destination = ProviderId{3};
  adv.path = {ProviderId{2}, ProviderId{1}, ProviderId{3}};  // our id already on the path
  EXPECT_FALSE(node.receive(ProviderId{2}, adv));
  EXPECT_FALSE(node.bestRoute(ProviderId{3}).has_value());
}

TEST(PathVector, PrefersShorterPathsInMesh) {
  PathVectorNode node(ProviderId{1});
  node.addNeighbor(ProviderId{2}, Relationship::Mesh);
  node.addNeighbor(ProviderId{3}, Relationship::Mesh);
  PathAdvertisement longAdv;
  longAdv.destination = ProviderId{9};
  longAdv.path = {ProviderId{2}, ProviderId{5}, ProviderId{6}, ProviderId{9}};
  PathAdvertisement shortAdv;
  shortAdv.destination = ProviderId{9};
  shortAdv.path = {ProviderId{3}, ProviderId{9}};
  EXPECT_TRUE(node.receive(ProviderId{2}, longAdv));
  EXPECT_TRUE(node.receive(ProviderId{3}, shortAdv));
  const auto best = node.bestRoute(ProviderId{9});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->path, shortAdv.path);
  // A worse route does not displace it.
  EXPECT_FALSE(node.receive(ProviderId{2}, longAdv));
}

TEST(PathVector, CustomerRoutesPreferredOverProviderRoutes) {
  // Gao-Rexford economics: prefer routes your customer gives you even when
  // longer (they pay you to carry the traffic).
  PathVectorNode node(ProviderId{1});
  node.addNeighbor(ProviderId{2}, Relationship::Customer);
  node.addNeighbor(ProviderId{3}, Relationship::Provider);
  PathAdvertisement viaProvider;
  viaProvider.destination = ProviderId{9};
  viaProvider.path = {ProviderId{3}, ProviderId{9}};
  PathAdvertisement viaCustomer;
  viaCustomer.destination = ProviderId{9};
  viaCustomer.path = {ProviderId{2}, ProviderId{7}, ProviderId{8}, ProviderId{9}};
  EXPECT_TRUE(node.receive(ProviderId{3}, viaProvider));
  EXPECT_TRUE(node.receive(ProviderId{2}, viaCustomer));
  const auto best = node.bestRoute(ProviderId{9});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->path.front(), ProviderId{2u});
}

TEST(PathVector, GaoRexfordExportRules) {
  // Node 1 with a customer 2, a peer 3, a provider 4. A route learned from
  // the peer must be exported to the customer but NOT to the provider.
  PathVectorNode node(ProviderId{1});
  node.addNeighbor(ProviderId{2}, Relationship::Customer);
  node.addNeighbor(ProviderId{3}, Relationship::Peer);
  node.addNeighbor(ProviderId{4}, Relationship::Provider);
  PathAdvertisement fromPeer;
  fromPeer.destination = ProviderId{9};
  fromPeer.path = {ProviderId{3}, ProviderId{9}};
  ASSERT_TRUE(node.receive(ProviderId{3}, fromPeer));

  const auto toCustomer = node.exportTo(ProviderId{2});
  const auto toProvider = node.exportTo(ProviderId{4});
  const auto has9 = [](const std::vector<PathAdvertisement>& advs) {
    for (const auto& a : advs) {
      if (a.destination == ProviderId{9}) return true;
    }
    return false;
  };
  EXPECT_TRUE(has9(toCustomer));
  EXPECT_FALSE(has9(toProvider));
  // Self is always advertised, with self prepended on exported paths.
  EXPECT_EQ(toProvider.front().destination, ProviderId{1u});
  for (const auto& a : toCustomer) {
    if (a.destination == ProviderId{9}) EXPECT_EQ(a.path.front(), ProviderId{1u});
  }
}

TEST(PathVector, SplitHorizonSuppressesEcho) {
  PathVectorNode node(ProviderId{1});
  node.addNeighbor(ProviderId{2}, Relationship::Mesh);
  PathAdvertisement adv;
  adv.destination = ProviderId{9};
  adv.path = {ProviderId{2}, ProviderId{9}};
  ASSERT_TRUE(node.receive(ProviderId{2}, adv));
  // The route learned from 2 is not advertised back to 2.
  for (const auto& a : node.exportTo(ProviderId{2})) {
    EXPECT_NE(a.destination, ProviderId{9u});
  }
}

TEST(PathVector, MeshConvergesToFullReachability) {
  // Ring of five mesh providers.
  const std::vector<ProviderId> ps = {ProviderId{1}, ProviderId{2}, ProviderId{3}, ProviderId{4}, ProviderId{5}};
  std::vector<ProviderLink> links;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    links.push_back(mesh(ps[i], ps[(i + 1) % ps.size()]));
  }
  const auto rep = runPathVector(ps, links);
  EXPECT_TRUE(rep.converged);
  EXPECT_DOUBLE_EQ(rep.reachability, 1.0);
  EXPECT_GT(rep.meanPathHops, 1.0);
  EXPECT_LE(rep.meanPathHops, 3.0);  // ring diameter 2 + destination hop
}

TEST(PathVector, GaoRexfordValleyFreePoliciesLoseReachability) {
  // The §3 claim, quantified: two stub providers buying transit from two
  // different providers that merely *peer* sideways cannot reach providers
  // behind the other peer's other peer (no valley-free path), while the
  // same physical adjacency under OpenSpace mesh policy is fully reachable.
  //   1 -customer-> 2 <-peer-> 3 <-peer-> 4 <-customer- 5
  const std::vector<ProviderId> ps = {ProviderId{1}, ProviderId{2}, ProviderId{3}, ProviderId{4}, ProviderId{5}};
  std::vector<ProviderLink> gr = {transit(ProviderId{1}, ProviderId{2}), peer(ProviderId{2}, ProviderId{3}), peer(ProviderId{3}, ProviderId{4}),
                                  transit(ProviderId{5}, ProviderId{4})};
  const auto grRep = runPathVector(ps, gr);
  EXPECT_TRUE(grRep.converged);
  EXPECT_LT(grRep.reachability, 1.0);  // peer-peer-peer paths are forbidden

  std::vector<ProviderLink> open = {mesh(ProviderId{1}, ProviderId{2}), mesh(ProviderId{2}, ProviderId{3}), mesh(ProviderId{3}, ProviderId{4}),
                                    mesh(ProviderId{5}, ProviderId{4})};
  const auto meshRep = runPathVector(ps, open);
  EXPECT_TRUE(meshRep.converged);
  EXPECT_DOUBLE_EQ(meshRep.reachability, 1.0);
}

TEST(PathVector, SpecificUnreachablePairUnderGaoRexford) {
  const std::vector<ProviderId> ps = {ProviderId{1}, ProviderId{2}, ProviderId{3}, ProviderId{4}, ProviderId{5}};
  std::vector<ProviderLink> gr = {transit(ProviderId{1}, ProviderId{2}), peer(ProviderId{2}, ProviderId{3}), peer(ProviderId{3}, ProviderId{4}),
                                  transit(ProviderId{5}, ProviderId{4})};
  std::map<ProviderId, PathVectorNode> nodes;
  runPathVector(ps, gr, 100, &nodes);
  // 1 can reach its provider 2, and 3 (2 exports customer+self... 3 is a
  // peer of 2: 2 exports self and customer routes to peers, so 3 learns 1;
  // and 2 exports peer routes to its customer 1, so 1 learns 3). But 1
  // cannot reach 5: the only physical path crosses two peering links.
  EXPECT_TRUE(nodes.at(ProviderId{1}).bestRoute(ProviderId{2}).has_value());
  EXPECT_TRUE(nodes.at(ProviderId{1}).bestRoute(ProviderId{3}).has_value());
  EXPECT_FALSE(nodes.at(ProviderId{1}).bestRoute(ProviderId{5}).has_value());
  EXPECT_FALSE(nodes.at(ProviderId{5}).bestRoute(ProviderId{1}).has_value());
}

TEST(PathVector, RunValidation) {
  EXPECT_THROW(runPathVector({ProviderId{1}, ProviderId{2}}, {mesh(ProviderId{1}, ProviderId{2})}, 0), InvalidArgumentError);
  EXPECT_THROW(runPathVector({ProviderId{1}}, {mesh(ProviderId{1}, ProviderId{2})}), NotFoundError);
}

// --- link-state dissemination -----------------------------------------------

TEST(LinkStateDb, SequenceFiltering) {
  LinkStateDb db;
  Lsa lsa;
  lsa.origin = NodeId{7};
  lsa.sequence = 3;
  lsa.originatedAtS = 10.0;
  EXPECT_TRUE(db.install(lsa));
  EXPECT_FALSE(db.install(lsa));  // duplicate
  lsa.sequence = 2;
  EXPECT_FALSE(db.install(lsa));  // stale
  lsa.sequence = 4;
  lsa.originatedAtS = 20.0;
  EXPECT_TRUE(db.install(lsa));
  ASSERT_NE(db.lookup(NodeId{7}), nullptr);
  EXPECT_EQ(db.lookup(NodeId{7})->sequence, 4u);
  EXPECT_EQ(db.lookup(NodeId{8}), nullptr);
  EXPECT_DOUBLE_EQ(db.oldestAgeS(25.0), 5.0);
  EXPECT_EQ(db.size(), 1u);
}

class FloodTest : public ::testing::Test {
 protected:
  FloodTest() {
    for (const auto& el : makeWalkerStar(iridiumConfig())) eph_.publish(ProviderId{1}, el);
    topo_ = std::make_unique<TopologyBuilder>(eph_);
    SnapshotOptions opt;
    opt.wiring = IslWiring::PlusGrid;
    opt.planes = 6;
    graph_ = topo_->snapshot(0.0, opt);
  }
  EphemerisService eph_;
  std::unique_ptr<TopologyBuilder> topo_;
  NetworkGraph graph_;
};

TEST_F(FloodTest, ReachesWholeConstellation) {
  const NodeId origin = graph_.nodesOfKind(NodeKind::Satellite).front();
  const FloodReport rep = simulateLsaFlood(graph_, origin);
  EXPECT_EQ(rep.nodesReached, 66);
  EXPECT_GT(rep.messagesSent, 65);  // at least a spanning tree
  EXPECT_GT(rep.convergenceTimeS, 0.0);
  // 66-sat +grid diameter ~8 hops, ~15 ms/hop + processing: < 1 s.
  EXPECT_LT(rep.convergenceTimeS, 1.0);
  EXPECT_LT(rep.meanArrivalS, rep.convergenceTimeS);
}

TEST_F(FloodTest, ProcessingTimeDominatesConvergence) {
  const NodeId origin = graph_.nodesOfKind(NodeKind::Satellite).front();
  const double fast = stateDisseminationTimeS(graph_, origin, 0.0);
  const double slow = stateDisseminationTimeS(graph_, origin, 50e-3);
  EXPECT_GT(slow, fast + 0.1);  // ~hops * 50 ms extra
}

TEST_F(FloodTest, GroundNodesDoNotRelay) {
  // Add a ground station bridging nothing: flood counts only satellites.
  TopologyBuilder topo2(eph_);
  topo2.addGroundStation({"gw", Geodetic::fromDegrees(45.0, 0.0), ProviderId{1}});
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  opt.minElevationRad = deg2rad(10.0);
  const NetworkGraph g2 = topo2.snapshot(0.0, opt);
  const NodeId origin = g2.nodesOfKind(NodeKind::Satellite).front();
  const FloodReport rep = simulateLsaFlood(g2, origin);
  EXPECT_EQ(rep.nodesReached, 66);  // satellites only
}

TEST_F(FloodTest, Validation) {
  EXPECT_THROW(simulateLsaFlood(graph_, NodeId{9999}), NotFoundError);
  const NodeId origin = graph_.nodesOfKind(NodeKind::Satellite).front();
  EXPECT_THROW(simulateLsaFlood(graph_, origin, -1.0), InvalidArgumentError);
}

TEST(FloodSparse, IsolatedOriginReachesOnlyItself) {
  EphemerisService eph;
  eph.publish(ProviderId{1}, OrbitalElements::circular(km(780.0), 0.0, 0.0, 0.0));
  TopologyBuilder topo(eph);
  SnapshotOptions opt;
  const NetworkGraph g = topo.snapshot(0.0, opt);
  const NodeId origin = g.nodes().front();
  const FloodReport rep = simulateLsaFlood(g, origin);
  EXPECT_EQ(rep.nodesReached, 1);
  EXPECT_EQ(rep.messagesSent, 0);
  EXPECT_DOUBLE_EQ(rep.convergenceTimeS, 0.0);
}

}  // namespace
}  // namespace openspace
