// Integration tests: cross-module flows that exercise the whole stack the
// way the paper's architecture intends — discovery + pairing feeding the
// topology, association + handover + routing + forwarding + settlement
// composing into end-to-end service.
#include <gtest/gtest.h>

#include <openspace/geo/units.hpp>
#include <openspace/handover/handover.hpp>
#include <openspace/isl/fleet.hpp>
#include <openspace/net/forwarding.hpp>
#include <openspace/routing/ondemand.hpp>
#include <openspace/routing/proactive.hpp>
#include <openspace/sim/scenario.hpp>

namespace openspace {
namespace {

TEST(Integration, FleetDiscoveryMatchesGeometricWiring) {
  // The protocol-level fleet (pairing, power, capacity limits) must produce
  // a link set consistent with pure geometry: every protocol link is also
  // geometrically feasible.
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  IslFleet fleet(eph, FleetConfig{});
  const auto links = fleet.runDiscoveryRound(0.0);
  ASSERT_FALSE(links.empty());
  for (const auto& l : links) {
    const Vec3 pa = eph.positionEci(l.a, 0.0);
    const Vec3 pb = eph.positionEci(l.b, 0.0);
    EXPECT_LE(pa.distanceTo(pb), FleetConfig{}.rfDiscoveryRangeM + 1.0);
    EXPECT_TRUE(lineOfSightClear(pa, pb, FleetConfig{}.losClearanceM));
  }
}

TEST(Integration, EndToEndPacketOverSnapshotRoute) {
  // Build a full scenario, associate the user, route to the home gateway,
  // and push real packets through the forwarding engine over that route.
  ScenarioConfig cfg;
  cfg.providers = {{"alpha", 33, 0.0, 0.08}, {"beta", 33, 0.3, 0.04}};
  cfg.coordinatedWalker = true;
  cfg.stations = {{"gw-a", Geodetic::fromDegrees(47.0, -122.0), 0},
                  {"gw-b", Geodetic::fromDegrees(52.5, 13.4), 1}};
  cfg.users = {{"u", Geodetic::fromDegrees(40.44, -79.99), 0}};
  cfg.seed = 21;
  Scenario s(cfg);

  const AssociationResult assoc = s.associateUser(0, 0.0);
  ASSERT_TRUE(assoc.success) << assoc.failureReason;

  const NetworkGraph g = s.snapshot(0.0);
  const OnDemandRouter router(g, latencyCost());
  const Route r = router.route(s.userNode(0), s.homeGatewayOf(0));
  ASSERT_TRUE(r.valid());

  EventQueue ev;
  ForwardingEngine engine(g, ev);
  for (PacketId i = 1; i <= 50; ++i) {
    Packet p;
    p.id = i;
    p.src = s.userNode(0);
    p.dst = s.homeGatewayOf(0);
    p.createdAtS = ev.now();
    p.homeProvider = s.providerId(0);
    engine.send(p, r);
  }
  ev.runAll();
  EXPECT_EQ(engine.delivered(), 50u);
  // Measured latency is at least the route's propagation delay.
  EXPECT_GE(engine.stats().minS(), r.propagationDelayS - 1e-9);
}

TEST(Integration, HandoverPreservesServiceAndRoutes) {
  // Follow a user across one predictive handover and verify a valid route
  // to its gateway exists through the new serving satellite's snapshot.
  ScenarioConfig cfg;
  cfg.providers = {{"alpha", 66, 0.0, 0.08}};
  cfg.coordinatedWalker = true;
  cfg.stations = {{"gw", Geodetic::fromDegrees(47.0, -122.0), 0}};
  cfg.users = {{"u", Geodetic::fromDegrees(40.44, -79.99), 0}};
  cfg.seed = 31;
  Scenario s(cfg);

  const HandoverPlanner planner(s.ephemeris(), cfg.minElevationRad);
  const Geodetic userLoc = cfg.users[0].location;
  const auto serving = planner.bestSatelliteAt(userLoc, 0.0);
  ASSERT_TRUE(serving.has_value());
  const HandoverPlan plan = planner.plan(*serving, userLoc, 0.0);
  ASSERT_TRUE(plan.found);

  // After the switch, the successor still routes to the gateway.
  const double after = plan.serviceEndsAtS + 0.1;
  const NetworkGraph g = s.snapshot(after);
  const NodeId succNode = s.topology().nodeOf(plan.successor);
  const Route r = shortestPath(g, succNode, s.stationNode(0), latencyCost());
  EXPECT_TRUE(r.valid());
}

TEST(Integration, SettlementMatchesForwardedBytes) {
  // Whatever the forwarding engine delivers must equal what the ledgers
  // record, byte for byte.
  ScenarioConfig cfg;
  cfg.providers = {{"alpha", 22, 0.0, 0.10}, {"beta", 22, 0.0, 0.10},
                   {"gamma", 22, 0.0, 0.10}};
  cfg.coordinatedWalker = true;
  cfg.stations = {{"gw-a", Geodetic::fromDegrees(47.0, -122.0), 0},
                  {"gw-b", Geodetic::fromDegrees(1.35, 103.82), 1},
                  {"gw-c", Geodetic::fromDegrees(-1.29, 36.82), 2}};
  cfg.users = {{"u-a", Geodetic::fromDegrees(40.44, -79.99), 0},
               {"u-b", Geodetic::fromDegrees(-33.87, 151.21), 1}};
  cfg.seed = 41;
  Scenario s(cfg);
  const TrafficReport rep = s.runTrafficEpoch(0.0, 2.0, 2e6);
  ASSERT_GT(rep.packetsDelivered, 0u);
  EXPECT_TRUE(rep.ledgersCrossVerified);
  // Total settled bytes <= delivered bytes * max path hops (each hop can
  // bill once); and settlement amounts are consistent with tariffs.
  for (const auto& item : rep.settlement) {
    EXPECT_GT(item.bytes, 0.0);
    const double rate =
        s.settlement().tariffUsdPerGb(item.payee, item.payer);
    EXPECT_NEAR(item.amountUsd, item.bytes / 1e9 * rate, 1e-9);
  }
}

TEST(Integration, CongestionShiftsTrafficToIdleGateway) {
  // §5(2) end to end: saturate the near gateway's GSLs with real traffic,
  // refresh queueing state from the forwarding engine's counters, and show
  // the on-demand router detours while the clean-graph route does not.
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  TopologyBuilder topo(eph);
  const NodeId user =
      topo.addUser({"u", Geodetic::fromDegrees(-1.29, 36.82), ProviderId{1}});
  const NodeId nearGs = topo.nodeOf(topo.addGroundStation(
      {"near", Geodetic::fromDegrees(-4.04, 39.67), ProviderId{2}}));
  const NodeId farGs = topo.nodeOf(topo.addGroundStation(
      {"far", Geodetic::fromDegrees(-26.20, 28.05), ProviderId{3}}));
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  opt.minElevationRad = deg2rad(10.0);
  NetworkGraph g = topo.snapshot(0.0, opt);

  const OnDemandRouter cleanRouter(g, latencyCost());
  const Route before = cleanRouter.selectGroundStation(user);
  ASSERT_TRUE(before.valid());
  ASSERT_EQ(before.nodes.back(), nearGs);  // nearby gateway wins when idle

  // Saturate every GSL into the near gateway.
  for (const LinkId lid : g.links()) {
    Link& l = g.link(lid);
    if (l.type == LinkType::Gsl && (l.a == nearGs || l.b == nearGs)) {
      l.queueingDelayS = estimateQueueingDelayS(0.999, l.capacityBps);
    }
  }
  const OnDemandRouter congestedRouter(g, latencyCost());
  const Route after = congestedRouter.selectGroundStation(user);
  ASSERT_TRUE(after.valid());
  EXPECT_EQ(after.nodes.back(), farGs);
  EXPECT_LT(after.totalDelayS(),
            before.totalDelayS() + 2.0);  // detour beats the saturated queue
}

TEST(Integration, ProactiveAndOnDemandAgreeOnQuietNetwork) {
  // With zero congestion the precomputed route and the live route coincide
  // (same cost function, same topology).
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  TopologyBuilder topo(eph);
  const NodeId user =
      topo.addUser({"u", Geodetic::fromDegrees(40.44, -79.99), ProviderId{1}});
  const NodeId gs =
      topo.nodeOf(topo.addGroundStation({"gw", Geodetic::fromDegrees(48.86, 2.35), ProviderId{2}}));
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  opt.minElevationRad = deg2rad(10.0);

  const ProactiveRouter proactive(topo, opt, 0.0, 600.0, 60.0);
  const NetworkGraph live = topo.snapshot(120.0, opt);
  const OnDemandRouter onDemand(live, latencyCost());

  const Route pre = proactive.route(user, gs, 120.0);
  const Route now = onDemand.route(user, gs);
  ASSERT_TRUE(pre.valid());
  ASSERT_TRUE(now.valid());
  EXPECT_EQ(pre.nodes, now.nodes);
  EXPECT_NEAR(pre.cost, now.cost, 1e-12);
}

TEST(Integration, MultiProviderPathCrossesOwnershipDomains) {
  // The OpenSpace premise: packets traverse satellites owned by different
  // firms "several times prior to being received on the ground".
  ScenarioConfig cfg;
  cfg.providers = {{"a", 16, 0.0, 0.1}, {"b", 17, 0.0, 0.1},
                   {"c", 16, 0.0, 0.1}, {"d", 17, 0.0, 0.1}};
  cfg.coordinatedWalker = true;
  cfg.stations = {{"gw", Geodetic::fromDegrees(48.86, 2.35), 0}};
  cfg.users = {{"u", Geodetic::fromDegrees(-33.87, 151.21), 0}};
  cfg.seed = 51;
  Scenario s(cfg);
  const NetworkGraph g = s.snapshot(0.0);
  const Route r =
      shortestPath(g, s.userNode(0), s.stationNode(0), latencyCost());
  ASSERT_TRUE(r.valid());
  std::set<ProviderId> owners;
  for (const NodeId n : r.nodes) owners.insert(g.node(n).provider);
  // Sydney -> Paris over interleaved 4-provider planes crosses domains.
  EXPECT_GE(owners.size(), 2u);
}

}  // namespace
}  // namespace openspace
