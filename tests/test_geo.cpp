// Unit tests for the geo module: vectors, units, frames, great-circle
// geometry, line-of-sight, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include <openspace/geo/error.hpp>
#include <openspace/geo/geodetic.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/geo/vec3.hpp>
#include <openspace/geo/wgs84.hpp>

namespace openspace {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec3, BasicAlgebra) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-1.0, 0.5, 2.0};
  EXPECT_EQ(a + b, (Vec3{0.0, 2.5, 5.0}));
  EXPECT_EQ(a - b, (Vec3{2.0, 1.5, 1.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  EXPECT_EQ(-a, (Vec3{-1.0, -2.0, -3.0}));
  EXPECT_DOUBLE_EQ(a.dot(b), -1.0 + 1.0 + 6.0);
}

TEST(Vec3, CrossProductIsOrthogonal) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, -1.0, 0.5};
  const Vec3 c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Vec3, CrossFollowsRightHandRule) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0};
  EXPECT_EQ(x.cross(y), (Vec3{0, 0, 1}));
  EXPECT_EQ(y.cross(x), (Vec3{0, 0, -1}));
}

TEST(Vec3, NormAndNormalize) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.normSquared(), 25.0);
  const Vec3 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-15);
  EXPECT_NEAR(u.x, 0.6, 1e-15);
}

TEST(Vec3, DistanceIsSymmetric) {
  const Vec3 a{1, 2, 3}, b{-4, 0, 9};
  EXPECT_DOUBLE_EQ(a.distanceTo(b), b.distanceTo(a));
  EXPECT_DOUBLE_EQ(a.distanceTo(a), 0.0);
}

TEST(AngleBetween, KnownAngles) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0};
  EXPECT_NEAR(angleBetween(x, y), kPi / 2, 1e-12);
  EXPECT_NEAR(angleBetween(x, x), 0.0, 1e-7);
  EXPECT_NEAR(angleBetween(x, -x), kPi, 1e-7);
}

TEST(AngleBetween, ZeroVectorThrows) {
  EXPECT_THROW(angleBetween({0, 0, 0}, {1, 0, 0}), InvalidArgumentError);
}

TEST(Units, AngleRoundTrip) {
  EXPECT_NEAR(rad2deg(deg2rad(123.456)), 123.456, 1e-12);
  EXPECT_DOUBLE_EQ(deg2rad(180.0), kPi);
}

TEST(Units, DistanceTimeFrequency) {
  EXPECT_DOUBLE_EQ(km(1.5), 1500.0);
  EXPECT_DOUBLE_EQ(minutes(2.0), 120.0);
  EXPECT_DOUBLE_EQ(hours(1.0), 3600.0);
  EXPECT_DOUBLE_EQ(milliseconds(250.0), 0.25);
  EXPECT_DOUBLE_EQ(megahertz(5.0), 5e6);
  EXPECT_DOUBLE_EQ(gbps(2.0), 2e9);
  EXPECT_DOUBLE_EQ(toMilliseconds(0.03), 30.0);
}

TEST(Units, DecibelConversions) {
  EXPECT_NEAR(wattsToDbw(1.0), 0.0, 1e-12);
  EXPECT_NEAR(wattsToDbw(10.0), 10.0, 1e-12);
  EXPECT_NEAR(wattsToDbm(1.0), 30.0, 1e-12);
  EXPECT_NEAR(dbwToWatts(wattsToDbw(123.0)), 123.0, 1e-9);
  EXPECT_NEAR(dbmToWatts(wattsToDbm(0.02)), 0.02, 1e-12);
  EXPECT_NEAR(dbToRatio(ratioToDb(42.0)), 42.0, 1e-9);
  EXPECT_THROW(wattsToDbw(0.0), InvalidArgumentError);
  EXPECT_THROW(wattsToDbw(-1.0), InvalidArgumentError);
  EXPECT_THROW(ratioToDb(0.0), InvalidArgumentError);
}

TEST(Geodetic, FromDegrees) {
  const Geodetic g = Geodetic::fromDegrees(45.0, -90.0, 100.0);
  EXPECT_NEAR(g.latitudeRad, kPi / 4, 1e-12);
  EXPECT_NEAR(g.longitudeRad, -kPi / 2, 1e-12);
  EXPECT_DOUBLE_EQ(g.altitudeM, 100.0);
}

TEST(Geodetic, EquatorPrimeMeridianEcef) {
  const Vec3 p = geodeticToEcef(Geodetic::fromDegrees(0.0, 0.0, 0.0));
  EXPECT_NEAR(p.x, wgs84::kSemiMajorAxisM, 1e-6);
  EXPECT_NEAR(p.y, 0.0, 1e-6);
  EXPECT_NEAR(p.z, 0.0, 1e-6);
}

TEST(Geodetic, NorthPoleEcef) {
  const Vec3 p = geodeticToEcef(Geodetic::fromDegrees(90.0, 0.0, 0.0));
  EXPECT_NEAR(p.x, 0.0, 1e-6);
  EXPECT_NEAR(p.y, 0.0, 1e-6);
  EXPECT_NEAR(p.z, wgs84::kSemiMinorAxisM, 1e-6);
}

TEST(Geodetic, LatitudeOutOfRangeThrows) {
  Geodetic g;
  g.latitudeRad = 2.0;  // > pi/2
  EXPECT_THROW(geodeticToEcef(g), InvalidArgumentError);
}

class GeodeticRoundTrip : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(GeodeticRoundTrip, EcefAndBack) {
  const auto [latDeg, lonDeg, altM] = GetParam();
  const Geodetic in = Geodetic::fromDegrees(latDeg, lonDeg, altM);
  const Geodetic out = ecefToGeodetic(geodeticToEcef(in));
  EXPECT_NEAR(out.latitudeRad, in.latitudeRad, 1e-9)
      << "lat=" << latDeg << " lon=" << lonDeg << " alt=" << altM;
  EXPECT_NEAR(out.longitudeRad, in.longitudeRad, 1e-9);
  EXPECT_NEAR(out.altitudeM, in.altitudeM, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeodeticRoundTrip,
    ::testing::Values(std::make_tuple(0.0, 0.0, 0.0),
                      std::make_tuple(45.0, 45.0, 1000.0),
                      std::make_tuple(-33.9, 151.2, 50.0),
                      std::make_tuple(40.44, -79.99, 300.0),
                      std::make_tuple(89.0, 10.0, 780e3),
                      std::make_tuple(-89.0, -170.0, 500e3),
                      std::make_tuple(0.0, 179.9, 780e3),
                      std::make_tuple(51.5, -0.12, 35786e3)));

TEST(Frames, EciEcefRoundTrip) {
  const Vec3 p{7000e3, -1234e3, 4500e3};
  const double t = 5432.1;
  const Vec3 back = ecefToEci(eciToEcef(p, t), t);
  EXPECT_NEAR(back.x, p.x, 1e-6);
  EXPECT_NEAR(back.y, p.y, 1e-6);
  EXPECT_NEAR(back.z, p.z, 1e-6);
}

TEST(Frames, FramesCoincideAtEpoch) {
  const Vec3 p{7000e3, 100e3, -2000e3};
  EXPECT_EQ(eciToEcef(p, 0.0), p);
}

TEST(Frames, EarthRotatesEastward) {
  // A point fixed in ECI above the equator drifts westward in ECEF
  // longitude as the Earth rotates under it.
  const Vec3 eci{7000e3, 0.0, 0.0};
  const Geodetic g0 = ecefToGeodetic(eciToEcef(eci, 0.0));
  const Geodetic g1 = ecefToGeodetic(eciToEcef(eci, 600.0));
  EXPECT_LT(g1.longitudeRad, g0.longitudeRad);
}

TEST(Frames, ZAxisUnaffectedByRotation) {
  const Vec3 pole{0.0, 0.0, 7000e3};
  EXPECT_EQ(eciToEcef(pole, 1234.5), pole);
}

TEST(GreatCircle, QuarterMeridian) {
  const Geodetic equator = Geodetic::fromDegrees(0.0, 0.0);
  const Geodetic pole = Geodetic::fromDegrees(90.0, 0.0);
  EXPECT_NEAR(centralAngleRad(equator, pole), kPi / 2, 1e-12);
  EXPECT_NEAR(greatCircleDistanceM(equator, pole),
              wgs84::kMeanRadiusM * kPi / 2, 1.0);
}

TEST(GreatCircle, SymmetricAndZeroOnIdentical) {
  const Geodetic a = Geodetic::fromDegrees(40.44, -79.99);
  const Geodetic b = Geodetic::fromDegrees(48.86, 2.35);
  EXPECT_DOUBLE_EQ(greatCircleDistanceM(a, b), greatCircleDistanceM(b, a));
  EXPECT_DOUBLE_EQ(greatCircleDistanceM(a, a), 0.0);
}

TEST(GreatCircle, PittsburghToParisPlausible) {
  // Known value ~6,140 km.
  const Geodetic pgh = Geodetic::fromDegrees(40.4406, -79.9959);
  const Geodetic paris = Geodetic::fromDegrees(48.8566, 2.3522);
  const double d = greatCircleDistanceM(pgh, paris);
  EXPECT_GT(d, 6.0e6);
  EXPECT_LT(d, 6.3e6);
}

TEST(Elevation, ZenithTargetIs90Degrees) {
  const Vec3 obs = geodeticToEcef(Geodetic::fromDegrees(10.0, 20.0));
  const Vec3 overhead = obs * 1.1;  // radially outward
  EXPECT_NEAR(elevationAngleRad(obs, overhead), kPi / 2, 1e-9);
}

TEST(Elevation, AntipodalTargetIsBelowHorizon) {
  const Vec3 obs = geodeticToEcef(Geodetic::fromDegrees(0.0, 0.0));
  const Vec3 anti = geodeticToEcef(Geodetic::fromDegrees(0.0, 180.0, 780e3));
  EXPECT_LT(elevationAngleRad(obs, anti), 0.0);
}

TEST(LineOfSight, ClearAboveEarth) {
  // Two satellites on the same side of the planet.
  const Vec3 a{7000e3, 0, 0};
  const Vec3 b{7000e3 * std::cos(0.3), 7000e3 * std::sin(0.3), 0};
  EXPECT_TRUE(lineOfSightClear(a, b));
}

TEST(LineOfSight, BlockedThroughEarth) {
  const Vec3 a{7000e3, 0, 0};
  const Vec3 b{-7000e3, 0, 0};
  EXPECT_FALSE(lineOfSightClear(a, b));
}

TEST(LineOfSight, ClearanceMarginMatters) {
  // A grazing path: clear with zero clearance, blocked with 300 km margin.
  const double r = wgs84::kMeanRadiusM + 100e3;  // closest approach 100 km up
  const Vec3 a{r, 2000e3, 0};
  const Vec3 b{r, -2000e3, 0};
  EXPECT_TRUE(lineOfSightClear(a, b, 0.0));
  EXPECT_FALSE(lineOfSightClear(a, b, 300e3));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    sawLo |= (v == 0);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, InvalidArgsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(3.0, 2.0), InvalidArgumentError);
  EXPECT_THROW(rng.uniformInt(5, 4), InvalidArgumentError);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgumentError);
  EXPECT_THROW(rng.normal(0.0, -1.0), InvalidArgumentError);
  EXPECT_THROW(rng.chance(1.5), InvalidArgumentError);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(99);
  const double rate = 2.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.02);
}

TEST(Rng, UnitSphereIsUnitAndCoversHemispheres) {
  Rng rng(3);
  int north = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const Vec3 p = rng.unitSphere();
    EXPECT_NEAR(p.norm(), 1.0, 1e-12);
    if (p.z > 0) ++north;
  }
  EXPECT_NEAR(static_cast<double>(north) / n, 0.5, 0.05);
}

TEST(Rng, SurfacePointIsAreaUniform) {
  // Area-uniform sampling => |lat| < 30 deg holds exactly sin(30) = 50% of
  // points; naive lat/lon-uniform sampling would give 33%.
  Rng rng(17);
  int lowLat = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (std::abs(rng.surfacePoint().latitudeRad) < deg2rad(30.0)) ++lowLat;
  }
  EXPECT_NEAR(static_cast<double>(lowLat) / n, 0.5, 0.02);
}

TEST(ErrorHierarchy, AllDeriveFromError) {
  EXPECT_THROW(throw InvalidArgumentError("x"), Error);
  EXPECT_THROW(throw NotFoundError("x"), Error);
  EXPECT_THROW(throw StateError("x"), Error);
  EXPECT_THROW(throw ProtocolError("x"), Error);
  EXPECT_THROW(throw CapacityError("x"), Error);
}

}  // namespace
}  // namespace openspace
