// Unit tests for the strong identifier layer (core/ids.hpp) and the typed
// plane/slot arithmetic built on it (orbit/walker.hpp PlaneGrid).
#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include <openspace/core/ids.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {
namespace {

// --- the whole point: cross-domain mixups do not compile ---------------------

// No implicit construction from raw integers...
static_assert(!std::is_convertible_v<int, SatId>);
static_assert(!std::is_convertible_v<std::uint32_t, NodeId>);
// ...and no conversion between domains, in either direction.
static_assert(!std::is_convertible_v<PlaneId, SatId>);
static_assert(!std::is_convertible_v<SatId, PlaneId>);
static_assert(!std::is_convertible_v<SatelliteId, NodeId>);
static_assert(!std::is_convertible_v<NodeId, SatelliteId>);
static_assert(!std::is_convertible_v<ProviderId, NodeId>);
static_assert(!std::is_convertible_v<GroundStationId, NodeId>);
static_assert(!std::is_convertible_v<LinkId, NodeId>);
// Not even explicitly: a SatId cannot be static_cast into a PlaneId.
static_assert(!std::is_constructible_v<PlaneId, SatId>);
static_assert(!std::is_constructible_v<NodeId, GroundStationId>);
// SatelliteId is the historical spelling of SatId, not a third domain.
static_assert(std::is_same_v<SatId, SatelliteId>);
// Ids stay exactly as cheap as the integer they wrap.
static_assert(std::is_trivially_copyable_v<SatId>);
static_assert(sizeof(SatId) == sizeof(SatId::rep_type));

TEST(TaggedId, DefaultConstructedIsUnset) {
  const NodeId unset;
  EXPECT_FALSE(unset.isValid());
  EXPECT_EQ(unset.value(), 0u);
  EXPECT_EQ(unset, NodeId{0});
  EXPECT_TRUE(NodeId{1}.isValid());
}

TEST(TaggedId, ComparesWithinDomain) {
  EXPECT_EQ(SatId{7}, SatId{7});
  EXPECT_NE(SatId{7}, SatId{8});
  EXPECT_LT(SatId{7}, SatId{8});
  EXPECT_GE(SatId{8}, SatId{7});
}

TEST(TaggedId, HashesIntoStandardContainers) {
  std::unordered_set<SatId> seen;
  seen.insert(SatId{1});
  seen.insert(SatId{2});
  seen.insert(SatId{1});  // duplicate
  EXPECT_EQ(seen.size(), 2u);

  std::unordered_map<ProviderId, int> owned;
  owned[ProviderId{3}] = 10;
  owned[ProviderId{4}] = 20;
  EXPECT_EQ(owned.at(ProviderId{3}), 10);
  EXPECT_EQ(std::hash<SatId>{}(SatId{42}),
            std::hash<SatId::rep_type>{}(42u));
}

TEST(TaggedId, StreamsAsRawValue) {
  std::ostringstream os;
  os << "sat " << SatId{66} << " plane " << PlaneId{5};
  EXPECT_EQ(os.str(), "sat 66 plane 5");
}

// --- PlaneGrid: typed plane/slot arithmetic ----------------------------------

TEST(PlaneGrid, RoundTripsIndexPlaneSlot) {
  const PlaneGrid grid(66, 6);  // Iridium: 6 planes x 11 slots
  EXPECT_EQ(grid.planeCount(), 6u);
  EXPECT_EQ(grid.satsPerPlane(), 11u);
  for (std::size_t idx = 0; idx < 66; ++idx) {
    const PlaneId plane = grid.planeOf(idx);
    const std::size_t slot = grid.slotOf(idx);
    EXPECT_LT(plane.value(), 6u);
    EXPECT_LT(slot, 11u);
    EXPECT_EQ(grid.indexOf(plane, slot), idx);
  }
}

TEST(PlaneGrid, SlotsWrapWithinAPlane) {
  const PlaneGrid grid(12, 3);
  // Slot 4 of a 4-slot plane is slot 0 again (ring neighbors).
  EXPECT_EQ(grid.indexOf(PlaneId{1}, 4), grid.indexOf(PlaneId{1}, 0));
}

TEST(PlaneGrid, SeamPlaneWrapsToPlaneZero) {
  const PlaneGrid grid(12, 3);
  EXPECT_FALSE(grid.isSeamPlane(PlaneId{0}));
  EXPECT_TRUE(grid.isSeamPlane(PlaneId{2}));
  EXPECT_EQ(grid.nextPlane(PlaneId{0}), PlaneId{1});
  EXPECT_EQ(grid.nextPlane(PlaneId{2}), PlaneId{0});
}

TEST(PlaneGrid, RejectsInconsistentLayouts) {
  EXPECT_THROW(PlaneGrid(10, 3), InvalidArgumentError);   // 3 does not divide 10
  EXPECT_THROW(PlaneGrid(10, 0), InvalidArgumentError);   // no planes
  EXPECT_THROW(PlaneGrid(0, 1), InvalidArgumentError);    // empty fleet
  EXPECT_THROW(PlaneGrid(12, 3).planeOf(12), InvalidArgumentError);
  EXPECT_THROW(PlaneGrid(12, 3).slotOf(99), InvalidArgumentError);
  EXPECT_THROW(PlaneGrid(12, 3).indexOf(PlaneId{3}, 0), InvalidArgumentError);
}

}  // namespace
}  // namespace openspace
