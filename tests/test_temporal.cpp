// Unit tests for time-expanded contact-graph routing (store-carry-forward
// over the predictable topology).
#include <gtest/gtest.h>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/routing/temporal.hpp>

namespace openspace {
namespace {

SnapshotOptions denseOpts() {
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  opt.minElevationRad = deg2rad(10.0);
  return opt;
}

class DenseConstellation : public ::testing::Test {
 protected:
  DenseConstellation() {
    for (const auto& el : makeWalkerStar(iridiumConfig())) eph_.publish(ProviderId{1}, el);
    topo_ = std::make_unique<TopologyBuilder>(eph_);
    user_ = topo_->addUser({"u", Geodetic::fromDegrees(40.44, -79.99), ProviderId{1}});
    gw_ = topo_->nodeOf(topo_->addGroundStation(
        {"gw", Geodetic::fromDegrees(48.86, 2.35), ProviderId{2}}));
  }
  EphemerisService eph_;
  std::unique_ptr<TopologyBuilder> topo_;
  NodeId user_ = {}, gw_ = NodeId{0};
};

TEST_F(DenseConstellation, ImmediateDeliveryWhenPathExists) {
  const ContactGraphRouter router(*topo_, denseOpts(), 0.0, 600.0, 60.0);
  const TemporalRoute r = router.earliestArrival(user_, gw_, 0.0);
  ASSERT_TRUE(r.reachable);
  // Dense constellation: delivery within the first interval, no waiting.
  EXPECT_EQ(r.intervalsUsed, 1);
  EXPECT_NEAR(r.waitingS, 0.0, 1e-6);
  EXPECT_GT(r.hops, 0);
  // Arrival time equals the instantaneous shortest path delay.
  const NetworkGraph g = topo_->snapshot(0.0, denseOpts());
  const Route instant = shortestPath(g, user_, gw_, latencyCost());
  ASSERT_TRUE(instant.valid());
  EXPECT_NEAR(r.totalDelayS(), instant.totalDelayS(), 1e-6);
}

TEST_F(DenseConstellation, LaterStartUsesLaterSnapshot) {
  const ContactGraphRouter router(*topo_, denseOpts(), 0.0, 600.0, 60.0);
  const TemporalRoute r = router.earliestArrival(user_, gw_, 250.0);
  ASSERT_TRUE(r.reachable);
  EXPECT_GE(r.arrivalS, 250.0);
  EXPECT_DOUBLE_EQ(r.departureS, 250.0);
}

TEST_F(DenseConstellation, Validation) {
  EXPECT_THROW(ContactGraphRouter(*topo_, denseOpts(), 0.0, 0.0, 60.0),
               InvalidArgumentError);
  EXPECT_THROW(ContactGraphRouter(*topo_, denseOpts(), 0.0, 600.0, 0.0),
               InvalidArgumentError);
  const ContactGraphRouter router(*topo_, denseOpts(), 0.0, 120.0, 60.0);
  EXPECT_THROW(router.earliestArrival(user_, NodeId{9999}, 0.0), NotFoundError);
}

class SparseConstellation : public ::testing::Test {
 protected:
  SparseConstellation() {
    // Two satellites in one polar plane, half an orbit apart: never in
    // mutual line of sight, each passes over both sites in turn.
    eph_.publish(ProviderId{1}, OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.0,
                                              0.0));
    eph_.publish(ProviderId{1}, OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.0,
                                              std::numbers::pi));
    topo_ = std::make_unique<TopologyBuilder>(eph_);
    // Two sites under the orbital plane, well separated along the track.
    siteA_ = topo_->addUser({"a", Geodetic::fromDegrees(0.0, 0.0), ProviderId{1}});
    siteB_ = topo_->nodeOf(topo_->addGroundStation(
        {"b", Geodetic::fromDegrees(60.0, 0.0), ProviderId{2}}));
  }
  EphemerisService eph_;
  std::unique_ptr<TopologyBuilder> topo_;
  NodeId siteA_{}, siteB_{};
};

TEST_F(SparseConstellation, NoInstantaneousPathExists) {
  SnapshotOptions opt;
  opt.wiring = IslWiring::AllInRange;
  opt.minElevationRad = deg2rad(10.0);
  bool everInstant = false;
  for (double t = 0.0; t < 6'000.0; t += 100.0) {
    const NetworkGraph g = topo_->snapshot(t, opt);
    if (shortestPath(g, siteA_, siteB_, latencyCost()).valid()) {
      everInstant = true;
      break;
    }
  }
  // Sites 60 degrees apart exceed a single 780 km footprint, and the two
  // satellites never link: no instantaneous path at any time.
  EXPECT_FALSE(everInstant);
}

TEST_F(SparseConstellation, StoreCarryForwardDelivers) {
  SnapshotOptions opt;
  opt.wiring = IslWiring::AllInRange;
  opt.minElevationRad = deg2rad(10.0);
  // Horizon: one orbital period (~100 min) sampled every 60 s.
  const ContactGraphRouter router(*topo_, opt, 0.0, 6'100.0, 60.0);
  const TemporalRoute r = router.earliestArrival(siteA_, siteB_, 0.0);
  ASSERT_TRUE(r.reachable);
  // Delivery required waiting for orbital motion: whole minutes, not ms.
  EXPECT_GT(r.waitingS, 60.0);
  EXPECT_GT(r.intervalsUsed, 1);
  EXPECT_GE(r.hops, 2);  // up to a satellite, later down to the station
  EXPECT_LT(r.inFlightS, 1.0);
  EXPECT_GT(r.arrivalS, r.departureS);
}

TEST_F(SparseConstellation, UnreachableBeyondHorizon) {
  SnapshotOptions opt;
  opt.wiring = IslWiring::AllInRange;
  opt.minElevationRad = deg2rad(10.0);
  // A 2-minute horizon is too short for orbital motion to bridge the gap.
  const ContactGraphRouter router(*topo_, opt, 0.0, 120.0, 60.0);
  const TemporalRoute r = router.earliestArrival(siteA_, siteB_, 0.0);
  EXPECT_FALSE(r.reachable);
}

// --- Build modes and the snapshot cache ------------------------------------

TEST_F(DenseConstellation, DeltaAndFreshBuildsRouteIdentically) {
  const ContactGraphRouter delta(*topo_, denseOpts(), 0.0, 600.0, 60.0,
                                 TemporalBuild::Delta);
  const ContactGraphRouter fresh(*topo_, denseOpts(), 0.0, 600.0, 60.0,
                                 TemporalBuild::FreshCompile);
  for (const double tStart : {0.0, 90.0, 250.0, 599.0}) {
    const TemporalRoute a = delta.earliestArrival(user_, gw_, tStart);
    const TemporalRoute b = fresh.earliestArrival(user_, gw_, tStart);
    ASSERT_EQ(a.reachable, b.reachable) << "tStart=" << tStart;
    // The underlying graphs are bit-identical, so so are the labels.
    EXPECT_EQ(a.arrivalS, b.arrivalS) << "tStart=" << tStart;
    EXPECT_EQ(a.hops, b.hops);
    EXPECT_EQ(a.intervalsUsed, b.intervalsUsed);
  }
}

TEST_F(DenseConstellation, RepeatedSweepsHitTheSnapshotCache) {
  SnapshotCache& cache = SnapshotCache::global();
  cache.clear();
  const ContactGraphRouter first(*topo_, denseOpts(), 0.0, 600.0, 60.0);
  const std::size_t missesAfterFirst = cache.misses();
  const std::size_t hitsAfterFirst = cache.hits();
  EXPECT_GE(missesAfterFirst, 10u);  // one propagation per interval
  // A second sweep over the same grid re-uses every cached snapshot.
  const ContactGraphRouter second(*topo_, denseOpts(), 0.0, 600.0, 60.0);
  EXPECT_EQ(cache.misses(), missesAfterFirst);
  EXPECT_GE(cache.hits(), hitsAfterFirst + 10u);
}

// --- Interval-boundary semantics -------------------------------------------

class SinglePassConstellation : public ::testing::Test {
 protected:
  SinglePassConstellation() {
    // One polar satellite passing over two nearby equatorial sites around
    // t=0; once it moves down-track the contact is gone for the rest of
    // the orbit (~100 min).
    eph_.publish(ProviderId{1},
                 OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.0, 0.0));
    topo_ = std::make_unique<TopologyBuilder>(eph_);
    user_ = topo_->addUser({"u", Geodetic::fromDegrees(0.0, 0.0), ProviderId{1}});
    gw_ = topo_->nodeOf(topo_->addGroundStation(
        {"gw", Geodetic::fromDegrees(3.0, 0.5), ProviderId{2}}));
  }
  static SnapshotOptions opts() {
    SnapshotOptions opt;
    opt.wiring = IslWiring::AllInRange;
    opt.minElevationRad = deg2rad(10.0);
    return opt;
  }
  EphemerisService eph_;
  std::unique_ptr<TopologyBuilder> topo_;
  NodeId user_{}, gw_{};
};

TEST_F(SinglePassConstellation, PathValidInOneIntervalBrokenInTheNext) {
  // Interval grid of 5 minutes: the pass lives in interval 0; by interval
  // 2 the satellite is thousands of km down-track.
  const ContactGraphRouter router(*topo_, opts(), 0.0, 1'500.0, 300.0);
  const TemporalRoute during = router.earliestArrival(user_, gw_, 0.0);
  ASSERT_TRUE(during.reachable);
  EXPECT_EQ(during.intervalsUsed, 1);
  // Departing after the contact closed: the remaining horizon never
  // re-establishes the pass, so the same query is now unreachable.
  const TemporalRoute after = router.earliestArrival(user_, gw_, 600.0);
  EXPECT_FALSE(after.reachable);
}

TEST_F(DenseConstellation, DepartureExactlyAtIntervalEdge) {
  // tStart == the edge between intervals [0,60) and [60,120). The closing
  // interval still participates (its end is not strictly before the
  // departure) but cannot transmit — any positive-delay arrival overshoots
  // its end — so delivery happens in the next interval with zero waiting,
  // at the instantaneous shortest-path delay of the t=60 snapshot.
  const ContactGraphRouter router(*topo_, denseOpts(), 0.0, 600.0, 60.0);
  const TemporalRoute r = router.earliestArrival(user_, gw_, 60.0);
  ASSERT_TRUE(r.reachable);
  EXPECT_EQ(r.intervalsUsed, 2);
  EXPECT_NEAR(r.waitingS, 0.0, 1e-9);
  const NetworkGraph g = topo_->snapshot(60.0, denseOpts());
  const Route instant = shortestPath(g, user_, gw_, latencyCost());
  ASSERT_TRUE(instant.valid());
  EXPECT_NEAR(r.totalDelayS(), instant.totalDelayS(), 1e-9);
}

TEST_F(SparseConstellation, EarliestArrivalIsMonotoneInStartTime) {
  SnapshotOptions opt;
  opt.wiring = IslWiring::AllInRange;
  opt.minElevationRad = deg2rad(10.0);
  const ContactGraphRouter router(*topo_, opt, 0.0, 6'100.0, 60.0);
  const TemporalRoute early = router.earliestArrival(siteA_, siteB_, 0.0);
  const TemporalRoute later = router.earliestArrival(siteA_, siteB_, 300.0);
  ASSERT_TRUE(early.reachable);
  if (later.reachable) {
    EXPECT_GE(later.arrivalS, early.arrivalS - 1e-6);
  }
}

}  // namespace
}  // namespace openspace
