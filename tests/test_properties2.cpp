// Second property-test suite: invariants across parameter sweeps for the
// phy, mac, econ, maneuver, temporal-routing and security modules.
#include <gtest/gtest.h>

#include <openspace/econ/ledger.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/mac/csma.hpp>
#include <openspace/mac/reservation.hpp>
#include <openspace/orbit/maneuver.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/phy/linkbudget.hpp>
#include <openspace/orbit/visibility.hpp>
#include <openspace/routing/temporal.hpp>
#include <openspace/topology/builder.hpp>
#include <openspace/security/reputation.hpp>
#include <openspace/sim/scenario.hpp>

namespace openspace {
namespace {

// --- Property: link capacity is monotone non-increasing in distance ---------

class CapacityMonotone : public ::testing::TestWithParam<bool> {};

TEST_P(CapacityMonotone, OverDistance) {
  const bool laser = GetParam();
  double prev = std::numeric_limits<double>::infinity();
  for (double d = 200e3; d <= 60'000e3; d *= 1.6) {
    const double cap = islCapacityBps(d, laser);
    ASSERT_LE(cap, prev) << "capacity increased at distance " << d;
    ASSERT_GE(cap, 0.0);
    prev = cap;
  }
  // Eventually the ladder fails to close.
  EXPECT_EQ(islCapacityBps(laser ? 1e10 : 1e8, laser), 0.0);
}

INSTANTIATE_TEST_SUITE_P(RfAndLaser, CapacityMonotone, ::testing::Bool());

// --- Property: link budget SNR monotone in every beneficial knob ------------

TEST(LinkBudgetProperty, MonotoneInPowerGainsAndInverseNoise) {
  LinkBudgetInput base;
  base.band = Band::S;
  base.distanceM = 2000e3;
  base.txPowerW = 5.0;
  base.txAntennaGainDb = 10.0;
  base.rxAntennaGainDb = 10.0;
  const double snr0 = computeLinkBudget(base).snrDb;
  for (double f = 1.5; f <= 8.0; f *= 2.0) {
    LinkBudgetInput in = base;
    in.txPowerW = base.txPowerW * f;
    ASSERT_GT(computeLinkBudget(in).snrDb, snr0);
    in = base;
    in.txAntennaGainDb += f;
    ASSERT_GT(computeLinkBudget(in).snrDb, snr0);
    in = base;
    in.systemNoiseTempK = 290.0 * f;
    ASSERT_LT(computeLinkBudget(in).snrDb, snr0);
  }
}

// --- Property: Hohmann delta-v grows with altitude gap ----------------------

class HohmannMonotone : public ::testing::TestWithParam<double> {};

TEST_P(HohmannMonotone, GrowsWithGap) {
  const double r1 = wgs84::kMeanRadiusM + km(GetParam());
  double prev = 0.0;
  for (double dAlt = 50.0; dAlt <= 3200.0; dAlt *= 2.0) {
    const double dv = hohmannDeltaVMps(r1, r1 + km(dAlt));
    ASSERT_GT(dv, prev);
    prev = dv;
  }
}

INSTANTIATE_TEST_SUITE_P(StartAltitudes, HohmannMonotone,
                         ::testing::Values(300.0, 550.0, 780.0, 1200.0));

// --- Property: MAC delivered-frame accounting is exact -----------------------

class MacAccounting : public ::testing::TestWithParam<int> {};

TEST_P(MacAccounting, CsmaDeliveredPlusDroppedEqualsOffered) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto r = simulateCsmaCa(CsmaConfig{}, GetParam(), 3.0, rng);
  EXPECT_DOUBLE_EQ(r.offeredFrames, r.deliveredFrames + r.droppedFrames);
  EXPECT_GE(r.throughputFraction, 0.0);
  EXPECT_LE(r.throughputFraction, 1.0);
  EXPECT_GE(r.collisionFraction, 0.0);
  EXPECT_LE(r.collisionFraction, 1.0);
}

TEST_P(MacAccounting, ReservationInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const auto r = simulateReservationMac(ReservationConfig{}, GetParam(), 3.0, rng);
  EXPECT_DOUBLE_EQ(r.offeredFrames, r.deliveredFrames);  // no drops by design
  EXPECT_LE(r.throughputFraction, 1.0);
  EXPECT_GE(r.meanAccessDelayS, 0.0);
  EXPECT_GE(r.p95AccessDelayS, r.meanAccessDelayS * 0.3);
}

INSTANTIATE_TEST_SUITE_P(Nodes, MacAccounting,
                         ::testing::Values(1, 2, 3, 5, 9, 17, 33));

// --- Property: settlement conservation across random scenarios --------------

class SettlementConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SettlementConservation, PaymentsMatchLedgersAndVerify) {
  ScenarioConfig cfg;
  cfg.providers = {{"a", 22, 0.0, 0.10}, {"b", 22, 0.0, 0.20},
                   {"c", 22, 0.0, 0.30}};
  cfg.coordinatedWalker = true;
  cfg.stations = {{"g1", Geodetic::fromDegrees(47.0, -122.0), 0},
                  {"g2", Geodetic::fromDegrees(1.35, 103.82), 1},
                  {"g3", Geodetic::fromDegrees(-1.29, 36.82), 2}};
  cfg.users = {{"u1", Geodetic::fromDegrees(40.44, -79.99), 0},
               {"u2", Geodetic::fromDegrees(-33.87, 151.21), 1}};
  cfg.seed = GetParam();
  Scenario s(cfg);
  const TrafficReport rep = s.runTrafficEpoch(0.0, 2.0, 1e6);
  ASSERT_TRUE(rep.ledgersCrossVerified);
  // Every settlement item equals carrier-ledger bytes x tariff; totals are
  // additive and non-negative.
  double total = 0.0;
  for (const auto& item : rep.settlement) {
    ASSERT_GE(item.amountUsd, 0.0);
    const double expected =
        s.settlement().ledger(item.payee).carriedBytes(item.payee, item.payer) /
        1e9 * s.settlement().tariffUsdPerGb(item.payee, item.payer);
    ASSERT_NEAR(item.amountUsd, expected, 1e-9);
    total += item.amountUsd;
  }
  ASSERT_NEAR(total, rep.totalSettlementUsd, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SettlementConservation,
                         ::testing::Values(1, 2, 3, 4));

// --- Property: temporal routing dominates waiting ----------------------------

class TemporalDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TemporalDominance, EarlierStartNeverArrivesLater) {
  // For any random sparse fleet, starting earlier can never produce a
  // strictly later earliest arrival (waiting is always allowed).
  Rng rng(GetParam());
  EphemerisService eph;
  for (const auto& el : makeRandomConstellation(8, km(780.0), rng)) {
    eph.publish(ProviderId{1}, el);
  }
  TopologyBuilder topo(eph);
  const NodeId a = topo.addUser({"a", Geodetic::fromDegrees(10.0, 20.0), ProviderId{1}});
  const NodeId b =
      topo.nodeOf(topo.addGroundStation({"b", Geodetic::fromDegrees(-20.0, 120.0), ProviderId{2}}));
  SnapshotOptions opt;
  opt.wiring = IslWiring::AllInRange;
  opt.minElevationRad = deg2rad(10.0);
  const ContactGraphRouter router(topo, opt, 0.0, 3'000.0, 100.0);
  const TemporalRoute early = router.earliestArrival(a, b, 0.0);
  const TemporalRoute late = router.earliestArrival(a, b, 600.0);
  if (early.reachable && late.reachable) {
    ASSERT_LE(early.arrivalS, late.arrivalS + 1e-9);
  } else if (late.reachable) {
    FAIL() << "reachable from a later start but not an earlier one";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemporalDominance,
                         ::testing::Range<std::uint64_t>(50, 60));

// --- Property: reputation scores stay in (0,1) and respond monotonically ----

class ReputationBounds : public ::testing::TestWithParam<double> {};

TEST_P(ReputationBounds, ScoresBoundedAndMonotone) {
  ReputationTracker rep(GetParam());
  double prev = rep.score(ProviderId{1});
  for (int i = 0; i < 30; ++i) {
    rep.reportMisbehavior(ProviderId{1}, MisbehaviorKind::TamperedPayload, 0.7);
    const double s = rep.score(ProviderId{1});
    ASSERT_GT(s, 0.0);
    ASSERT_LT(s, 1.0);
    ASSERT_LT(s, prev);
    prev = s;
  }
  for (int i = 0; i < 60; ++i) {
    rep.reportGoodService(ProviderId{1});
    const double s = rep.score(ProviderId{1});
    ASSERT_GT(s, prev);
    ASSERT_LT(s, 1.0);
    prev = s;
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ReputationBounds,
                         ::testing::Values(0.2, 0.5, 0.8));

// --- Property: footprint + slant range consistency over altitude ------------

class FootprintSlantConsistency : public ::testing::TestWithParam<double> {};

TEST_P(FootprintSlantConsistency, LawOfCosinesHolds) {
  const double altM = km(GetParam());
  for (double maskDeg = 0.0; maskDeg <= 60.0; maskDeg += 7.5) {
    const double mask = deg2rad(maskDeg);
    const double lambda = footprintHalfAngleRad(altM, mask);
    const double slant = maxSlantRangeM(altM, mask);
    // Triangle check: Re^2 + slant^2 + 2*Re*slant*sin(mask) == (Re+h)^2.
    const double re = wgs84::kMeanRadiusM;
    const double lhs =
        re * re + slant * slant + 2.0 * re * slant * std::sin(mask);
    const double rhs = (re + altM) * (re + altM);
    ASSERT_NEAR(lhs / rhs, 1.0, 1e-9) << "mask " << maskDeg;
    ASSERT_GT(lambda, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Altitudes, FootprintSlantConsistency,
                         ::testing::Values(340.0, 550.0, 780.0, 1500.0));

}  // namespace
}  // namespace openspace
