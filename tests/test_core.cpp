// Unit tests for the core facade: provider registry, launches, ground
// assets, topology/routing/coverage queries.
#include <gtest/gtest.h>

#include <openspace/core/network.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>

namespace openspace {
namespace {

WalkerConfig smallWalker() {
  WalkerConfig wc;
  wc.totalSatellites = 12;
  wc.planes = 3;
  wc.phasing = 1;
  wc.altitudeM = km(780.0);
  wc.inclinationRad = deg2rad(86.4);
  return wc;
}

TEST(Network, ProviderRegistry) {
  OpenSpaceNetwork net;
  const ProviderId a = net.registerProvider("alpha");
  const ProviderId b = net.registerProvider("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(net.providerName(a), "alpha");
  EXPECT_EQ(net.providers().size(), 2u);
  EXPECT_THROW(net.registerProvider(""), InvalidArgumentError);
  EXPECT_THROW(net.registerProvider("alpha"), InvalidArgumentError);
  EXPECT_THROW(net.providerName(ProviderId{99}), NotFoundError);
}

TEST(Network, LaunchesAssignOwnership) {
  OpenSpaceNetwork net;
  const ProviderId a = net.registerProvider("alpha");
  const auto walker = net.launchWalkerStar(a, smallWalker());
  EXPECT_EQ(walker.size(), 12u);
  const ProviderId b = net.registerProvider("beta");
  const auto random = net.launchRandom(b, 5, km(600.0), 3);
  EXPECT_EQ(random.size(), 5u);
  EXPECT_EQ(net.satelliteCount(), 17u);
  EXPECT_EQ(net.ephemeris().satellitesOf(a).size(), 12u);
  EXPECT_EQ(net.ephemeris().satellitesOf(b).size(), 5u);
  EXPECT_THROW(net.launchRandom(ProviderId{99}, 1, km(600.0), 1), NotFoundError);
}

TEST(Network, SingleSatelliteLaunch) {
  OpenSpaceNetwork net;
  const ProviderId a = net.registerProvider("alpha");
  const SatelliteId sid =
      net.launchSatellite(a, OrbitalElements::circular(km(500.0), 1.0, 0, 0));
  EXPECT_TRUE(net.ephemeris().contains(sid));
}

TEST(Network, LaunchAfterGroundAssetsRejected) {
  OpenSpaceNetwork net;
  const ProviderId a = net.registerProvider("alpha");
  net.launchWalkerStar(a, smallWalker());
  net.addUser(a, "u", Geodetic::fromDegrees(0, 0));
  EXPECT_THROW(net.launchRandom(a, 1, km(600.0), 1), StateError);
  EXPECT_THROW(net.launchWalkerStar(a, smallWalker()), StateError);
  EXPECT_THROW(
      net.launchSatellite(a, OrbitalElements::circular(km(500.0), 1, 0, 0)),
      StateError);
}

TEST(Network, GroundAssetsGetDistinctStableNodes) {
  OpenSpaceNetwork net;
  const ProviderId a = net.registerProvider("alpha");
  net.launchWalkerStar(a, smallWalker());
  const NodeId gs = net.addGroundStation(a, "gs", Geodetic::fromDegrees(1, 1));
  const NodeId u1 = net.addUser(a, "u1", Geodetic::fromDegrees(2, 2));
  const NodeId u2 = net.addUser(a, "u2", Geodetic::fromDegrees(3, 3));
  EXPECT_NE(gs, u1);
  EXPECT_NE(u1, u2);
  const NetworkGraph g = net.topologyAt(0.0);
  EXPECT_EQ(g.nodeCount(), 15u);  // 12 sats + 3 assets, no duplicates
  EXPECT_TRUE(g.node(gs).isGroundStation());
  EXPECT_TRUE(g.node(u1).isUser());
  EXPECT_EQ(g.node(u2).name, "u2");
}

TEST(Network, LaserUpgradeReflectsInTopology) {
  OpenSpaceNetwork net;
  const ProviderId a = net.registerProvider("alpha");
  const auto sats = net.launchWalkerStar(a, smallWalker());
  for (const SatelliteId sid : sats) net.equipLaserTerminal(sid);
  EXPECT_THROW(net.equipLaserTerminal(SatelliteId{9999}), NotFoundError);
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 3;
  const NetworkGraph g = net.topologyAt(0.0, opt);
  ASSERT_GT(g.linkCount(), 0u);
  for (const LinkId lid : g.links()) {
    EXPECT_EQ(g.link(lid).type, LinkType::IslLaser);
  }
}

TEST(Network, RouteBetweenAssets) {
  OpenSpaceNetwork net;
  const ProviderId a = net.registerProvider("alpha");
  WalkerConfig wc = smallWalker();
  wc.totalSatellites = 33;
  wc.planes = 3;
  net.launchWalkerStar(a, wc);
  const NodeId gs =
      net.addGroundStation(a, "gs", Geodetic::fromDegrees(48.86, 2.35));
  const NodeId user = net.addUser(a, "u", Geodetic::fromDegrees(40.44, -79.99));
  SnapshotOptions opt;
  opt.minElevationRad = deg2rad(5.0);
  opt.nearestK = 6;
  // Polar 33-sat shell: both mid-latitude sites are covered most of the
  // time; try a few instants.
  bool found = false;
  for (double t = 0.0; t <= 3000.0 && !found; t += 300.0) {
    const Route r = net.route(user, gs, t, QosClass::Standard, opt);
    if (r.valid()) {
      EXPECT_EQ(r.nodes.front(), user);
      EXPECT_EQ(r.nodes.back(), gs);
      EXPECT_GT(r.bottleneckBps, 0.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Network, NodeOfRoundTrip) {
  OpenSpaceNetwork net;
  const ProviderId a = net.registerProvider("alpha");
  const auto sats = net.launchWalkerStar(a, smallWalker());
  const NodeId n = net.nodeOf(sats[3]);
  const NetworkGraph g = net.topologyAt(0.0);
  EXPECT_EQ(g.node(n).satellite, sats[3]);
}

TEST(Network, CoverageGrowsWithFleet) {
  OpenSpaceNetwork net;
  const ProviderId a = net.registerProvider("alpha");
  net.launchWalkerStar(a, smallWalker());
  const double small = net.coverageAt(0.0, deg2rad(10.0), 4000, 1);
  OpenSpaceNetwork net2;
  const ProviderId b = net2.registerProvider("alpha");
  WalkerConfig big = smallWalker();
  big.totalSatellites = 66;
  big.planes = 6;
  net2.launchWalkerStar(b, big);
  const double large = net2.coverageAt(0.0, deg2rad(10.0), 4000, 1);
  EXPECT_GT(large, small);
  EXPECT_GT(large, 0.95);
}

}  // namespace
}  // namespace openspace
