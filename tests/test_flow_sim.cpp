// Tests for the flow-simulation stack: the hierarchical timer wheel (firing
// order, cancellation, cascades — property-tested against EventQueue, the
// executable spec), the LinkDir typed direction API, exclusive stopS flow
// semantics, and FlowSimulator itself (bit-for-bit equivalence with the
// legacy FlowGenerator + ForwardingEngine stack, analytic zero-load and
// M/D/1 pins, serial==parallel city-flow determinism).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/net/flows.hpp>
#include <openspace/net/forwarding.hpp>
#include <openspace/net/link_dir.hpp>
#include <openspace/net/scheduler.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/routing/engine.hpp>
#include <openspace/sim/flow_sim.hpp>
#include <openspace/sim/flow_sweep.hpp>
#include <openspace/topology/builder.hpp>

namespace openspace {
namespace {

struct Tag {
  int v = 0;
};

// --- timer wheel ----------------------------------------------------------

TEST(TimerWheel, FiresInTimeOrder) {
  TimerWheel<Tag> w;
  std::vector<int> order;
  w.schedule(3.0, Tag{3});
  w.schedule(1.0, Tag{1});
  w.schedule(2.0, Tag{2});
  EXPECT_EQ(w.runAll([&](double, const Tag& t) { order.push_back(t.v); }), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(w.now(), 3.0);
  EXPECT_TRUE(w.empty());
}

TEST(TimerWheel, FifoTieBreakAtSameTime) {
  TimerWheel<Tag> w;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) w.schedule(1.0, Tag{i});
  w.runAll([&](double, const Tag& t) { order.push_back(t.v); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TimerWheel, OrdersByExactTimestampWithinOneTick) {
  // Tick = 1 s, all events inside tick 0: the due buffer must order by the
  // exact double timestamp, not by insertion or bucketing.
  TimerWheel<Tag> w(1.0);
  std::vector<int> order;
  w.schedule(0.3, Tag{3});
  w.schedule(0.1, Tag{1});
  w.schedule(0.2, Tag{2});
  w.runAll([&](double, const Tag& t) { order.push_back(t.v); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, FarFutureEventsCascadeAcrossLevels) {
  // With a 1 µs tick these spread over every wheel level (1e7 s ~ 2^43
  // ticks) and must still fire in global time order.
  TimerWheel<Tag> w(1e-6);
  const std::vector<double> times = {1e7, 3.0,  1e-5, 4000.0, 0.5,
                                     1e6, 60.0, 1e-3, 86400.0};
  for (std::size_t i = 0; i < times.size(); ++i) {
    w.schedule(times[i], Tag{static_cast<int>(i)});
  }
  std::vector<double> fired;
  w.runAll([&](double tS, const Tag&) { fired.push_back(tS); });
  std::vector<double> sorted = times;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(fired, sorted);
}

TEST(TimerWheel, EventsCanScheduleEvents) {
  TimerWheel<Tag> w;
  int chain = 0;
  const std::size_t n = w.runAll([&](double tS, const Tag&) {
    if (++chain < 5) w.schedule(tS + 1.0, Tag{});
  });
  EXPECT_EQ(n, 0u);  // nothing scheduled yet
  w.schedule(0.0, Tag{});
  w.runAll([&](double tS, const Tag&) {
    if (++chain < 6) w.schedule(tS + 1.0, Tag{});
  });
  EXPECT_EQ(chain, 6);
  EXPECT_DOUBLE_EQ(w.now(), 5.0);
}

TEST(TimerWheel, PastSchedulingThrows) {
  TimerWheel<Tag> w;
  w.schedule(5.0, Tag{});
  w.runAll([](double, const Tag&) {});
  EXPECT_THROW(w.schedule(1.0, Tag{}), InvalidArgumentError);
  w.schedule(5.0, Tag{});  // exactly now() is allowed
}

TEST(TimerWheel, RunUntilBoundsTimeAndResumes) {
  TimerWheel<Tag> w;
  int fired = 0;
  w.schedule(1.0, Tag{});
  w.schedule(5.0, Tag{});
  auto count = [&](double, const Tag&) { ++fired; };
  EXPECT_EQ(w.run(2.0, count), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(w.now(), 2.0);
  EXPECT_EQ(w.pending(), 1u);
  w.schedule(3.0, Tag{});  // between now and the parked event
  w.runAll(count);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(w.now(), 5.0);
}

TEST(TimerWheel, CancelSemantics) {
  TimerWheel<Tag> w;
  const TimerEventId a = w.schedule(1.0, Tag{1});
  const TimerEventId b = w.schedule(2.0, Tag{2});
  EXPECT_TRUE(w.cancel(b));
  EXPECT_FALSE(w.cancel(b));           // double cancel
  EXPECT_FALSE(w.cancel(TimerEventId{}));  // unset handle
  std::vector<int> order;
  w.runAll([&](double, const Tag& t) { order.push_back(t.v); });
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_FALSE(w.cancel(a));  // already fired
}

TEST(TimerWheel, StaleHandleAfterRecycleIsRejected) {
  TimerWheel<Tag> w;
  const TimerEventId a = w.schedule(1.0, Tag{1});
  w.runAll([](double, const Tag&) {});
  // The fired record's slab slot is recycled by this schedule; the old
  // handle's generation no longer matches.
  w.schedule(2.0, Tag{2});
  EXPECT_FALSE(w.cancel(a));
  int fired = 0;
  w.runAll([&](double, const Tag&) { ++fired; });
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, HandlerCanCancelPendingEvent) {
  TimerWheel<Tag> w;
  TimerEventId victim = w.schedule(2.0, Tag{2});
  w.schedule(1.0, Tag{1});
  std::vector<int> order;
  w.runAll([&](double, const Tag& t) {
    order.push_back(t.v);
    if (t.v == 1) EXPECT_TRUE(w.cancel(victim));
  });
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_TRUE(w.empty());
}

TEST(TimerWheel, RejectsNonPositiveTick) {
  EXPECT_THROW(TimerWheel<Tag>(0.0), InvalidArgumentError);
  EXPECT_THROW(TimerWheel<Tag>(-1.0), InvalidArgumentError);
}

// The property test: the wheel's firing order must equal the legacy
// EventQueue's on an identical randomized workload — duplicate timestamps
// (FIFO ties), pre-run cancellations, and events scheduled from handlers.
TEST(TimerWheel, MatchesEventQueueOrderOnRandomWorkload) {
  constexpr int kEvents = 3000;
  Rng rng(2024);
  std::vector<double> times(kEvents);
  std::vector<bool> cancelled(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    // Quantize to 1 ms so many events collide exactly (tie-break coverage).
    times[i] = std::floor(rng.uniform(0.0, 10.0) * 1000.0) / 1000.0;
    cancelled[i] = (i % 7) == 3;
  }
  // A fired base event with id % 3 == 1 schedules one child; the child id
  // and delay are pure functions of the parent so both systems agree.
  const auto childDelay = [](int id) { return 0.25 + 0.125 * (id % 5); };

  std::vector<std::pair<double, int>> legacy;
  {
    EventQueue q;
    std::vector<EventId> ids(kEvents);
    std::function<void(int, double)> onFire = [&](int id, double tS) {
      legacy.emplace_back(tS, id);
      if (id < kEvents && id % 3 == 1) {
        const int child = id + 1'000'000;
        q.schedule(tS + childDelay(id), [&, child, tS, id] {
          onFire(child, tS + childDelay(id));
        });
      }
    };
    for (int i = 0; i < kEvents; ++i) {
      ids[static_cast<std::size_t>(i)] =
          q.schedule(times[static_cast<std::size_t>(i)],
                     [&, i] { onFire(i, q.now()); });
    }
    for (int i = 0; i < kEvents; ++i) {
      if (cancelled[static_cast<std::size_t>(i)]) {
        EXPECT_TRUE(q.cancel(ids[static_cast<std::size_t>(i)]));
      }
    }
    q.runAll();
  }

  std::vector<std::pair<double, int>> wheel;
  {
    TimerWheel<Tag> w(1e-4);  // several events per tick on average
    std::vector<TimerEventId> ids(kEvents);
    for (int i = 0; i < kEvents; ++i) {
      ids[static_cast<std::size_t>(i)] =
          w.schedule(times[static_cast<std::size_t>(i)], Tag{i});
    }
    for (int i = 0; i < kEvents; ++i) {
      if (cancelled[static_cast<std::size_t>(i)]) {
        EXPECT_TRUE(w.cancel(ids[static_cast<std::size_t>(i)]));
      }
    }
    w.runAll([&](double tS, const Tag& t) {
      wheel.emplace_back(tS, t.v);
      if (t.v < kEvents && t.v % 3 == 1) {
        w.schedule(tS + childDelay(t.v), Tag{t.v + 1'000'000});
      }
    });
  }

  ASSERT_EQ(legacy.size(), wheel.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i], wheel[i]) << "diverged at event " << i;
  }
}

// --- event queue cancellation ---------------------------------------------

TEST(EventQueueCancel, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.schedule(1.0, [&] { ++fired; });
  const EventId b = q.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(b));
  EXPECT_FALSE(q.cancel(b));
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.runAll(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.cancel(a));  // already fired
}

TEST(EventQueueCancel, CancelledHeadDoesNotStallRun) {
  EventQueue q;
  std::vector<int> order;
  const EventId head = q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.cancel(head);
  EXPECT_FALSE(q.empty());
  q.runAll();
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_TRUE(q.empty());
}

// --- typed link directions -------------------------------------------------

TEST(LinkDirApi, DirectionFromEndpoints) {
  Link l;
  l.id = LinkId{9};
  l.a = NodeId{1};
  l.b = NodeId{2};
  EXPECT_EQ(directionFrom(l, NodeId{1}), LinkDir::AtoB);
  EXPECT_EQ(directionFrom(l, NodeId{2}), LinkDir::BtoA);
  EXPECT_THROW((void)directionFrom(l, NodeId{3}), InvalidArgumentError);
  EXPECT_EQ(reverse(LinkDir::AtoB), LinkDir::BtoA);
  EXPECT_EQ(reverse(LinkDir::BtoA), LinkDir::AtoB);

  const DirectedLinkId fwd = directedFrom(l, NodeId{1});
  const DirectedLinkId rev = fwd.reversed();
  EXPECT_EQ(fwd.link, LinkId{9u});
  EXPECT_EQ(fwd.dir, LinkDir::AtoB);
  EXPECT_EQ(rev.dir, LinkDir::BtoA);
  EXPECT_NE(fwd, rev);
  EXPECT_EQ(rev.reversed(), fwd);
  EXPECT_NE(fwd.key(), rev.key());
  EXPECT_NE(std::hash<DirectedLinkId>{}(fwd), std::hash<DirectedLinkId>{}(rev));
}

// --- shared fixture: the 3-node line graph ---------------------------------

/// src --(1 Mbps)--> mid --(100 Mbps)--> dst, 1000 km per hop.
class FlowSimLine : public ::testing::Test {
 protected:
  FlowSimLine() {
    for (NodeId::rep_type idValue = 1; idValue <= 3; ++idValue) {
      Node n;
      n.id = NodeId{idValue};
      n.kind = NodeKind::Satellite;
      n.provider = ProviderId{1};
      n.name = "n" + std::to_string(idValue);
      n.satellite = SatelliteId{idValue};
      g_.addNode(std::move(n));
    }
    addLink(NodeId{1}, NodeId{2}, 1e6);
    addLink(NodeId{2}, NodeId{3}, 100e6);
    route_ = shortestPath(g_, NodeId{1}, NodeId{3}, latencyCost());
    graph_ = std::make_shared<const CompactGraph>(
        compileGraph(g_, latencyCost()));
  }

  void addLink(NodeId a, NodeId b, double cap) {
    Link l;
    l.a = a;
    l.b = b;
    l.distanceM = 1000e3;
    l.propagationDelayS = l.distanceM / kSpeedOfLightMps;
    l.capacityBps = cap;
    g_.addLink(l);
  }

  FlowSpec mkFlow(double rateBps, double stopS, double startS = 0.0) {
    FlowSpec f;
    f.src = NodeId{1};
    f.dst = NodeId{3};
    f.rateBps = rateBps;
    f.packetBits = 12'000.0;
    f.startS = startS;
    f.stopS = stopS;
    return f;
  }

  NetworkGraph g_;
  Route route_;
  std::shared_ptr<const CompactGraph> graph_;
};

// --- stopS exclusive-bound semantics (generator and simulator) -------------

TEST_F(FlowSimLine, GeneratorStopAtExactEmissionTimeExcludesIt) {
  // Capture the first would-be emission time, then rerun with stopS set to
  // exactly that time: the bound is exclusive, so nothing may be emitted.
  double firstT = -1.0;
  {
    EventQueue ev;
    Rng rng(77);
    FlowGenerator gen(ev, rng, [&](const Packet& p) {
      if (firstT < 0.0) firstT = p.createdAtS;
    });
    gen.addFlow(mkFlow(1e5, 50.0));
    ev.runAll();
    ASSERT_GT(firstT, 0.0);
  }
  EventQueue ev;
  Rng rng(77);  // same seed: same first draw
  std::size_t count = 0;
  FlowGenerator gen(ev, rng, [&](const Packet&) { ++count; });
  gen.addFlow(mkFlow(1e5, firstT));
  ev.runAll();
  EXPECT_EQ(count, 0u);
  EXPECT_EQ(gen.packetsEmitted(), 0u);
}

TEST_F(FlowSimLine, SimulatorStopSemanticsMatchGenerator) {
  // stopS == startS: registered, but no packets and no RNG draw.
  {
    FlowSimulator sim(graph_, FlowSimConfig{}.withSeed(77));
    sim.addFlow(mkFlow(1e5, 2.0, 2.0), route_);
    const FlowSimReport rep = sim.run();
    EXPECT_EQ(rep.packetsOffered, 0u);
    ASSERT_EQ(rep.flows.size(), 1u);
    EXPECT_EQ(rep.flows[0].offered, 0u);
  }
  // stopS exactly at the first arrival time: excluded.
  double firstT = -1.0;
  {
    FlowSimulator sim(graph_, FlowSimConfig{}.withSeed(77));
    sim.addFlow(mkFlow(1e5, 50.0), route_);
    sim.onComplete([&](const DeliveryRecord& rec) {
      if (firstT < 0.0) firstT = rec.packet.createdAtS;
    });
    sim.run();
    ASSERT_GT(firstT, 0.0);
  }
  FlowSimulator sim(graph_, FlowSimConfig{}.withSeed(77));
  sim.addFlow(mkFlow(1e5, firstT), route_);
  const FlowSimReport rep = sim.run();
  EXPECT_EQ(rep.packetsOffered, 0u);
}

// --- simulator == legacy, bit for bit --------------------------------------

std::vector<DeliveryRecord> runLegacy(const NetworkGraph& g, const Route& route,
                                      const std::vector<FlowSpec>& flows,
                                      std::uint64_t seed, double queueBits) {
  EventQueue ev;
  Rng rng(seed);
  QueueConfig qc;
  qc.maxQueueBits = queueBits;
  ForwardingEngine engine(g, ev, qc);
  std::vector<DeliveryRecord> records;
  engine.onComplete([&](const DeliveryRecord& r) { records.push_back(r); });
  FlowGenerator gen(ev, rng, [&](const Packet& p) {
    // Route by source: NodeId{1} flows ride the line route, everything else
    // is deliberately unroutable (NoRoute parity coverage).
    engine.send(p, p.src == NodeId{1} ? route : Route{});
  });
  for (const FlowSpec& f : flows) gen.addFlow(f);
  ev.runAll();
  return records;
}

void expectRecordsEqual(const std::vector<DeliveryRecord>& legacy,
                        const std::vector<DeliveryRecord>& sim) {
  ASSERT_EQ(legacy.size(), sim.size());
  std::uint64_t hLegacy = kFnvOffsetBasis;
  std::uint64_t hSim = kFnvOffsetBasis;
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    const DeliveryRecord& a = legacy[i];
    const DeliveryRecord& b = sim[i];
    EXPECT_EQ(a.packet.id, b.packet.id) << "record " << i;
    EXPECT_EQ(a.packet.src, b.packet.src) << "record " << i;
    EXPECT_EQ(a.packet.dst, b.packet.dst) << "record " << i;
    EXPECT_EQ(a.packet.sizeBits, b.packet.sizeBits) << "record " << i;
    EXPECT_EQ(a.packet.createdAtS, b.packet.createdAtS) << "record " << i;
    EXPECT_EQ(a.delivered, b.delivered) << "record " << i;
    EXPECT_EQ(a.drop, b.drop) << "record " << i;
    EXPECT_EQ(a.deliveredAtS, b.deliveredAtS) << "record " << i;
    EXPECT_EQ(a.latencyS, b.latencyS) << "record " << i;
    EXPECT_EQ(a.hops, b.hops) << "record " << i;
    hLegacy = mixDeliveryRecord(hLegacy, a);
    hSim = mixDeliveryRecord(hSim, b);
  }
  EXPECT_EQ(hLegacy, hSim);
}

TEST_F(FlowSimLine, MatchesLegacyUnderCongestionDropsAndNoRoute) {
  // Three flows on one RNG stream: a slow-link-saturating flow (queueing +
  // overflow drops against a small buffer), a background flow, and an
  // unroutable flow. Record streams must match bit for bit.
  std::vector<FlowSpec> flows;
  flows.push_back(mkFlow(1.5e6, 2.0));  // 150% of the slow link
  flows.push_back(mkFlow(2e5, 2.0, 0.5));
  FlowSpec lost = mkFlow(1e5, 2.0);
  lost.src = NodeId{2};
  lost.dst = NodeId{3};
  flows.push_back(lost);
  const double kQueueBits = 60'000.0;  // ~5 packets: forces overflow

  const std::vector<DeliveryRecord> legacy =
      runLegacy(g_, route_, flows, 42, kQueueBits);

  FlowSimulator sim(graph_,
                    FlowSimConfig{}.withSeed(42).withQueueBits(kQueueBits));
  std::vector<DeliveryRecord> records;
  sim.onComplete([&](const DeliveryRecord& r) { records.push_back(r); });
  sim.addFlow(flows[0], route_);
  sim.addFlow(flows[1], route_);
  sim.addFlow(flows[2], Route{});  // kNoPath
  const FlowSimReport rep = sim.run();

  expectRecordsEqual(legacy, records);
  // The report aggregates the same stream it checksummed.
  std::size_t drops = 0;
  std::size_t deliveries = 0;
  for (const DeliveryRecord& r : legacy) {
    r.delivered ? ++deliveries : ++drops;
  }
  EXPECT_GT(drops, 0u);      // congestion actually happened
  EXPECT_GT(deliveries, 0u);
  EXPECT_EQ(rep.packetsDelivered, deliveries);
  EXPECT_EQ(rep.packetsDropped, drops);
  EXPECT_EQ(rep.packetsOffered, legacy.size());
}

TEST(FlowSimIridium, MatchesLegacyOnConstellationRoutes) {
  // Same contract at constellation scale: Iridium plus-grid, two gateways,
  // multiple sat->gateway flows hot enough to queue on shared GSLs.
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) {
    eph.publish(ProviderId{1}, el);
  }
  TopologyBuilder topo(eph);
  const NodeId gwA = topo.nodeOf(topo.addGroundStation(
      {"paris", Geodetic::fromDegrees(48.86, 2.35), ProviderId{1}}));
  const NodeId gwB = topo.nodeOf(topo.addGroundStation(
      {"jburg", Geodetic::fromDegrees(-26.20, 28.05), ProviderId{1}}));
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  opt.minElevationRad = deg2rad(10.0);
  const NetworkGraph g = topo.snapshot(0.0, opt);

  RouteEngine engine(g, latencyCost());
  std::vector<FlowSpec> flows;
  std::vector<Route> routes;
  for (std::uint32_t s = 0; s < 16; ++s) {
    const NodeId src = topo.nodeOf(SatelliteId{s * 4 + 1});
    const NodeId dst = (s % 2 == 0) ? gwA : gwB;
    const Route r = engine.shortestPath(src, dst);
    ASSERT_TRUE(r.valid());
    FlowSpec f;
    f.src = src;
    f.dst = dst;
    f.rateBps = 30e6;  // 16 x 30 Mbps into two gateways: real contention
    f.packetBits = 12'000.0;
    f.stopS = 0.25;
    flows.push_back(f);
    routes.push_back(r);
  }

  std::vector<DeliveryRecord> legacy;
  {
    EventQueue ev;
    Rng rng(7);
    ForwardingEngine fwd(g, ev);
    fwd.onComplete([&](const DeliveryRecord& r) { legacy.push_back(r); });
    FlowGenerator gen(ev, rng, [&](const Packet& p) {
      for (std::size_t i = 0; i < flows.size(); ++i) {
        if (flows[i].src == p.src && flows[i].dst == p.dst) {
          fwd.send(p, routes[i]);
          return;
        }
      }
      FAIL() << "packet from unknown flow";
    });
    for (const FlowSpec& f : flows) gen.addFlow(f);
    ev.runAll();
  }

  FlowSimulator sim(engine.sharedGraph(), FlowSimConfig{}.withSeed(7));
  std::vector<DeliveryRecord> records;
  sim.onComplete([&](const DeliveryRecord& r) { records.push_back(r); });
  for (std::size_t i = 0; i < flows.size(); ++i) {
    sim.addFlow(flows[i], routes[i]);
  }
  const FlowSimReport rep = sim.run();

  ASSERT_FALSE(legacy.empty());
  expectRecordsEqual(legacy, records);
  EXPECT_GT(rep.eventsExecuted, legacy.size());  // emits + txdones + arrivals
}

// --- analytic pins ----------------------------------------------------------

TEST_F(FlowSimLine, ZeroLoadLatencyIsPropagationPlusSerialization) {
  // At negligible load the minimum latency is the analytic fig2b value:
  // route propagation delay plus per-hop serialization. Exact to an ulp.
  FlowSimulator sim(graph_, FlowSimConfig{}.withSeed(5).withDuration(100.0));
  sim.addFlow(mkFlow(1e3, 100.0), route_);  // ~1 packet / 12 s
  const FlowSimReport rep = sim.run();
  ASSERT_GT(rep.packetsDelivered, 0u);
  double expected = route_.propagationDelayS;
  for (const LinkId lid : route_.links) {
    expected += 12'000.0 / g_.link(lid).capacityBps;
  }
  EXPECT_NEAR(rep.latency.minS(), expected, 1e-12);
  ASSERT_EQ(rep.flows.size(), 1u);
  EXPECT_NEAR(rep.flows[0].minLatencyS, expected, 1e-12);
}

TEST(FlowSimAnalytic, MD1MeanWaitMatchesClosedForm) {
  // Poisson arrivals into one fixed-capacity link are an M/D/1 queue:
  // mean wait W = rho * D / (2 (1 - rho)). Pin the simulator against the
  // closed form at rho = 0.7.
  NetworkGraph g;
  for (NodeId::rep_type idValue = 1; idValue <= 2; ++idValue) {
    Node n;
    n.id = NodeId{idValue};
    n.kind = NodeKind::Satellite;
    n.provider = ProviderId{1};
    n.name = "m" + std::to_string(idValue);
    n.satellite = SatelliteId{idValue};
    g.addNode(std::move(n));
  }
  Link l;
  l.a = NodeId{1};
  l.b = NodeId{2};
  l.distanceM = 1000e3;
  l.propagationDelayS = l.distanceM / kSpeedOfLightMps;
  l.capacityBps = 1e6;
  g.addLink(l);
  const Route route = shortestPath(g, NodeId{1}, NodeId{2}, latencyCost());

  const double rho = 0.7;
  const double bits = 1'000.0;
  const double horizonS = 200.0;  // ~140k packets
  FlowSpec f;
  f.src = NodeId{1};
  f.dst = NodeId{2};
  f.rateBps = rho * l.capacityBps;
  f.packetBits = bits;
  f.stopS = horizonS;

  auto graph = std::make_shared<const CompactGraph>(
      compileGraph(g, latencyCost()));
  FlowSimulator sim(graph, FlowSimConfig{}
                               .withSeed(13)
                               .withDuration(horizonS)
                               .withQueueBits(1e9));  // no drops
  sim.addFlow(f, route);
  const FlowSimReport rep = sim.run();
  ASSERT_EQ(rep.packetsDropped, 0u);
  ASSERT_GT(rep.packetsDelivered, 100'000u);

  const double serviceD = bits / l.capacityBps;
  const double analyticW = rho * serviceD / (2.0 * (1.0 - rho));
  const double simW = rep.latency.meanS() - serviceD - l.propagationDelayS;
  EXPECT_NEAR(simW, analyticW, 0.08 * analyticW);
}

// --- API contract ------------------------------------------------------------

TEST_F(FlowSimLine, ConfigBuilderAndValidation) {
  const FlowSimConfig cfg = FlowSimConfig{}
                                .withStart(5.0)
                                .withDuration(30.0)
                                .withQueueBits(1e6)
                                .withTick(1e-5)
                                .withSeed(99);
  EXPECT_DOUBLE_EQ(cfg.startS, 5.0);
  EXPECT_DOUBLE_EQ(cfg.durationS, 30.0);
  EXPECT_DOUBLE_EQ(cfg.maxQueueBits, 1e6);
  EXPECT_DOUBLE_EQ(cfg.tickS, 1e-5);
  EXPECT_EQ(cfg.seed, 99u);

  EXPECT_THROW(FlowSimulator(nullptr), InvalidArgumentError);
  EXPECT_THROW(FlowSimulator(graph_, FlowSimConfig{}.withQueueBits(0.0)),
               InvalidArgumentError);
  EXPECT_THROW(FlowSimulator(graph_, FlowSimConfig{}.withTick(0.0)),
               InvalidArgumentError);

  FlowSimulator sim(graph_);
  EXPECT_THROW(sim.addFlow(mkFlow(0.0, 1.0), route_), InvalidArgumentError);
  EXPECT_THROW(sim.addFlow(mkFlow(1e5, 1.0), 7u), InvalidArgumentError);
  FlowSpec wrongDst = mkFlow(1e5, 1.0);
  wrongDst.dst = NodeId{2};  // route_ ends at 3
  const std::uint32_t path = sim.addPath(route_);
  EXPECT_THROW(sim.addFlow(wrongDst, path), InvalidArgumentError);
  EXPECT_THROW(sim.addPath(Route{}), InvalidArgumentError);
  sim.addFlow(mkFlow(1e5, 0.01), path);
  EXPECT_EQ(sim.flowCount(), 1u);
  sim.run();
  EXPECT_THROW(sim.run(), StateError);  // single-shot
}

// --- city flows --------------------------------------------------------------

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(parallelThreadCount()) {}
  ~ThreadCountGuard() { setParallelThreadCount(saved_); }

 private:
  int saved_;
};

class CityFlowsFixture : public ::testing::Test {
 protected:
  CityFlowsFixture() {
    for (const auto& el : makeWalkerStar(iridiumConfig())) {
      eph_.publish(ProviderId{1}, el);
    }
    topo_ = std::make_unique<TopologyBuilder>(eph_);
    gateways_.push_back(topo_->nodeOf(topo_->addGroundStation(
        {"paris", Geodetic::fromDegrees(48.86, 2.35), ProviderId{1}})));
    gateways_.push_back(topo_->nodeOf(topo_->addGroundStation(
        {"denver", Geodetic::fromDegrees(39.74, -104.99), ProviderId{1}})));
    SnapshotOptions opt;
    opt.wiring = IslWiring::PlusGrid;
    opt.planes = 6;
    opt.minElevationRad = deg2rad(10.0);
    g_ = topo_->snapshot(0.0, opt);
    engine_ = std::make_unique<RouteEngine>(g_, latencyCost());
    snapshot_ = std::make_shared<const ConstellationSnapshot>(eph_, 0.0);
    for (const SatelliteId sid : eph_.satellites()) {
      satNodes_.push_back(topo_->nodeOf(sid));
    }
  }

  CityFlowConfig cfg(int users) const {
    CityFlowConfig c;
    c.users = users;
    c.meanRateBps = 64e3;
    c.durationS = 0.25;
    c.minElevationRad = deg2rad(10.0);
    c.seed = 31;
    return c;
  }

  EphemerisService eph_;
  std::unique_ptr<TopologyBuilder> topo_;
  std::vector<NodeId> gateways_;
  NetworkGraph g_;
  std::unique_ptr<RouteEngine> engine_;
  std::shared_ptr<const ConstellationSnapshot> snapshot_;
  std::vector<NodeId> satNodes_;
};

TEST_F(CityFlowsFixture, SerialAndParallelBuildsAreBitIdentical) {
  ThreadCountGuard guard;
  setParallelThreadCount(1);
  const CityFlows serial =
      buildCityFlows(cfg(9000), snapshot_, satNodes_, gateways_, *engine_);
  setParallelThreadCount(4);
  const CityFlows parallel =
      buildCityFlows(cfg(9000), snapshot_, satNodes_, gateways_, *engine_);
  EXPECT_EQ(serial.checksum, parallel.checksum);
  EXPECT_EQ(serial.specs.size(), parallel.specs.size());
  EXPECT_EQ(serial.unservedUsers, parallel.unservedUsers);
  ASSERT_FALSE(serial.specs.empty());
  for (std::size_t i = 0; i < serial.specs.size(); ++i) {
    EXPECT_EQ(serial.specs[i].rateBps, parallel.specs[i].rateBps);
    EXPECT_EQ(serial.specs[i].src, parallel.specs[i].src);
  }
}

TEST_F(CityFlowsFixture, CityTrafficDrivesTheSimulator) {
  const CityFlows flows =
      buildCityFlows(cfg(1500), snapshot_, satNodes_, gateways_, *engine_);
  ASSERT_FALSE(flows.specs.empty());

  FlowSimulator sim(engine_->sharedGraph(),
                    FlowSimConfig{}.withSeed(31).withDuration(0.25));
  // One compiled path per serving satellite, shared by its flows.
  std::vector<std::uint32_t> pathOf(flows.routes.size(),
                                    FlowSimulator::kNoPath);
  for (std::size_t i = 0; i < flows.specs.size(); ++i) {
    const std::uint32_t sat = flows.routeOf[i];
    if (pathOf[sat] == FlowSimulator::kNoPath) {
      pathOf[sat] = sim.addPath(flows.routes[sat]);
    }
    sim.addFlow(flows.specs[i], pathOf[sat]);
  }
  const FlowSimReport rep = sim.run();
  EXPECT_EQ(rep.packetsOffered, rep.packetsDelivered + rep.packetsDropped);
  EXPECT_GT(rep.packetsDelivered, 0u);
  EXPECT_EQ(rep.flows.size(), flows.specs.size());
  EXPECT_EQ(rep.edgeUtilization.size(), engine_->graph().edgeCount());
  double maxUtil = 0.0;
  for (const double u : rep.edgeUtilization) {
    EXPECT_GE(u, 0.0);
    maxUtil = std::max(maxUtil, u);
  }
  EXPECT_GT(maxUtil, 0.0);
  EXPECT_GT(rep.latency.minS(), 0.0);
}

TEST_F(CityFlowsFixture, RejectsBadInputs) {
  EXPECT_THROW(
      buildCityFlows(cfg(100), nullptr, satNodes_, gateways_, *engine_),
      InvalidArgumentError);
  EXPECT_THROW(buildCityFlows(cfg(100), snapshot_, {}, gateways_, *engine_),
               InvalidArgumentError);
  EXPECT_THROW(buildCityFlows(cfg(100), snapshot_, satNodes_, {}, *engine_),
               InvalidArgumentError);
  CityFlowConfig bad = cfg(100);
  bad.meanRateBps = 0.0;
  EXPECT_THROW(buildCityFlows(bad, snapshot_, satNodes_, gateways_, *engine_),
               InvalidArgumentError);
}

// --- multi-snapshot flow sweeps over the delta path -------------------------

class FlowSweepFixture : public ::testing::Test {
 protected:
  FlowSweepFixture() {
    for (const auto& el : makeWalkerStar(iridiumConfig())) {
      eph_.publish(ProviderId{1}, el);
    }
    topo_ = std::make_unique<TopologyBuilder>(eph_);
    gwA_ = topo_->nodeOf(topo_->addGroundStation(
        {"paris", Geodetic::fromDegrees(48.86, 2.35), ProviderId{1}}));
    gwB_ = topo_->nodeOf(topo_->addGroundStation(
        {"jburg", Geodetic::fromDegrees(-26.20, 28.05), ProviderId{1}}));
    for (std::uint32_t s = 0; s < 8; ++s) {
      FlowSweepDemand d;
      d.src = topo_->nodeOf(SatelliteId{s * 8 + 1});
      d.dst = (s % 2 == 0) ? gwA_ : gwB_;
      d.rateBps = 10e6;
      demands_.push_back(d);
    }
  }
  static SnapshotOptions opts() {
    SnapshotOptions opt;
    opt.wiring = IslWiring::PlusGrid;
    opt.planes = 6;
    opt.minElevationRad = deg2rad(10.0);
    return opt;
  }
  static FlowSweepConfig sweep(TemporalBuild build) {
    FlowSweepConfig cfg;
    cfg.t0S = 0.0;
    cfg.horizonS = 2.0;
    cfg.stepS = 0.5;
    cfg.sim = FlowSimConfig{}.withSeed(11);
    cfg.build = build;
    return cfg;
  }
  EphemerisService eph_;
  std::unique_ptr<TopologyBuilder> topo_;
  NodeId gwA_{}, gwB_{};
  std::vector<FlowSweepDemand> demands_;
};

TEST_F(FlowSweepFixture, DeltaAndFreshSweepsAreBitIdentical) {
  const FlowSweepReport delta =
      runFlowSweep(*topo_, opts(), demands_, sweep(TemporalBuild::Delta));
  const FlowSweepReport fresh =
      runFlowSweep(*topo_, opts(), demands_, sweep(TemporalBuild::FreshCompile));
  ASSERT_EQ(delta.steps.size(), 4u);
  ASSERT_EQ(fresh.steps.size(), 4u);
  EXPECT_GT(delta.packetsOffered, 0u);
  EXPECT_GT(delta.packetsDelivered, 0u);
  // The delta path's graphs are bit-identical to fresh compiles and
  // repaired trees equal fresh trees, so the whole simulated packet
  // stream matches record-for-record.
  EXPECT_EQ(delta.checksum, fresh.checksum);
  EXPECT_EQ(delta.packetsOffered, fresh.packetsOffered);
  EXPECT_EQ(delta.packetsDelivered, fresh.packetsDelivered);
  EXPECT_EQ(delta.packetsDropped, fresh.packetsDropped);
  for (std::size_t i = 0; i < delta.steps.size(); ++i) {
    EXPECT_EQ(delta.steps[i].recordChecksum, fresh.steps[i].recordChecksum)
        << "step " << i;
  }
  // The fresh path rebuilds every step; the delta path compiled step 0 and
  // patched the short-interval follow-ups (link payload drift only).
  EXPECT_EQ(fresh.structuralSteps, fresh.steps.size());
  EXPECT_GE(delta.structuralSteps, 1u);
  EXPECT_LT(delta.structuralSteps, delta.steps.size());
}

TEST_F(FlowSweepFixture, SweepValidation) {
  FlowSweepConfig bad = sweep(TemporalBuild::Delta);
  bad.stepS = 0.0;
  EXPECT_THROW(runFlowSweep(*topo_, opts(), demands_, bad),
               InvalidArgumentError);
  bad = sweep(TemporalBuild::Delta);
  bad.horizonS = -1.0;
  EXPECT_THROW(runFlowSweep(*topo_, opts(), demands_, bad),
               InvalidArgumentError);
  std::vector<FlowSweepDemand> unset(1);
  EXPECT_THROW(runFlowSweep(*topo_, opts(), unset, sweep(TemporalBuild::Delta)),
               InvalidArgumentError);
  FlowSweepDemand unknown;
  unknown.src = NodeId{999'999};
  unknown.dst = gwA_;
  EXPECT_THROW(runFlowSweep(*topo_, opts(), {unknown},
                            sweep(TemporalBuild::Delta)),
               NotFoundError);
}

}  // namespace
}  // namespace openspace
