// Unit tests for the incentives analysis (§5(4)) and the reservation MAC
// (§2.1 future work).
#include <gtest/gtest.h>

#include <openspace/econ/incentives.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/mac/reservation.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {
namespace {

std::vector<CoalitionMember> threeSmallProviders(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CoalitionMember> members;
  for (int i = 0; i < 3; ++i) {
    members.push_back(
        {"small-" + std::to_string(i), makeRandomConstellation(8, km(780.0), rng)});
  }
  return members;
}

TEST(Incentives, SharesSumToOneAndRevenueIsConsistent) {
  auto members = threeSmallProviders(1);
  Rng rng(2);
  const auto analysis = analyzeCoalition(members, 100e6, 0.0, deg2rad(10.0),
                                         2000, 40, rng);
  double shareSum = 0.0, revenueSum = 0.0;
  for (const auto& m : analysis.members) {
    EXPECT_GE(m.shapleyShare, 0.0);
    EXPECT_LE(m.shapleyShare, 1.0);
    shareSum += m.shapleyShare;
    revenueSum += m.coalitionRevenueUsd;
  }
  EXPECT_NEAR(shareSum, 1.0, 1e-9);
  EXPECT_NEAR(revenueSum, analysis.coalitionRevenueUsd, 1.0);
}

TEST(Incentives, CoalitionCoverageDominatesMembers) {
  auto members = threeSmallProviders(3);
  Rng rng(4);
  const auto analysis = analyzeCoalition(members, 100e6, 0.0, deg2rad(10.0),
                                         2000, 40, rng);
  for (const auto& m : analysis.members) {
    EXPECT_GE(analysis.coalitionCoverage, m.standaloneCoverage - 1e-12);
  }
  EXPECT_GE(analysis.coverageSynergy, 0.0);
}

TEST(Incentives, SmallProvidersGainFromPooling) {
  // The paper's core pitch: small overlapping-coverage providers earn more
  // selling the pooled footprint than their fragments. Superadditive
  // coverage + proportional split should make the coalition self-enforcing
  // for symmetric small fleets.
  auto members = threeSmallProviders(5);
  Rng rng(6);
  const auto analysis = analyzeCoalition(members, 100e6, 0.0, deg2rad(10.0),
                                         3000, 60, rng);
  EXPECT_GT(analysis.coalitionRevenueUsd, analysis.sumStandaloneRevenueUsd * 0.95);
  int winners = 0;
  for (const auto& m : analysis.members) {
    if (m.requiredTransferUsd <= 1e-6) ++winners;
  }
  EXPECT_GE(winners, 2);  // at least most members gain outright
}

TEST(Incentives, DominantProviderMayNeedATransfer) {
  // A mega-constellation owner joining three tiny fleets: its standalone
  // coverage is nearly the coalition's, so its proportional share can fall
  // short — exactly the §5(4) concern. requiredTransferUsd quantifies it.
  Rng rng(7);
  std::vector<CoalitionMember> members;
  members.push_back({"mega", makeWalkerStar(iridiumConfig())});
  for (int i = 0; i < 3; ++i) {
    members.push_back(
        {"tiny-" + std::to_string(i), makeRandomConstellation(2, km(780.0), rng)});
  }
  Rng rng2(8);
  const auto analysis = analyzeCoalition(members, 100e6, 0.0, deg2rad(10.0),
                                         3000, 60, rng2);
  const auto& mega = analysis.members[0];
  EXPECT_GT(mega.standaloneCoverage, 0.9);
  // The mega provider's share is large but its marginal loss (if any) is
  // bounded by what the tinies take.
  EXPECT_GT(mega.shapleyShare, 0.6);
  EXPECT_LT(mega.requiredTransferUsd, 0.15 * analysis.coalitionRevenueUsd);
}

TEST(Incentives, Validation) {
  Rng rng(9);
  EXPECT_THROW(analyzeCoalition({}, 1e6, 0.0, 0.1, 100, 10, rng),
               InvalidArgumentError);
  auto members = threeSmallProviders(10);
  EXPECT_THROW(analyzeCoalition(members, 0.0, 0.0, 0.1, 100, 10, rng),
               InvalidArgumentError);
  EXPECT_THROW(analyzeCoalition(members, 1e6, 0.0, 0.1, 0, 10, rng),
               InvalidArgumentError);
  EXPECT_THROW(analyzeCoalition(members, 1e6, 0.0, 0.1, 100, 0, rng),
               InvalidArgumentError);
}

TEST(Incentives, DeterministicGivenSeed) {
  auto members = threeSmallProviders(11);
  Rng a(12), b(12);
  const auto ra = analyzeCoalition(members, 1e6, 0.0, 0.1, 500, 20, a);
  const auto rb = analyzeCoalition(members, 1e6, 0.0, 0.1, 500, 20, b);
  EXPECT_DOUBLE_EQ(ra.coalitionCoverage, rb.coalitionCoverage);
  for (std::size_t i = 0; i < ra.members.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.members[i].shapleyShare, rb.members[i].shapleyShare);
  }
}

// --- reservation MAC ----------------------------------------------------------

TEST(ReservationMac, DeliversCollisionFreeData) {
  Rng rng(20);
  const auto r = simulateReservationMac(ReservationConfig{}, 4, 10.0, rng);
  EXPECT_GT(r.deliveredFrames, 0.0);
  EXPECT_DOUBLE_EQ(r.droppedFrames, 0.0);
  EXPECT_GT(r.throughputFraction, 0.4);
}

TEST(ReservationMac, OverheadBelowCsmaUnderContention) {
  // The real-time argument: contention is confined to cheap minislots, so
  // per-delivered-frame overhead stays far below CSMA/CA's IFS + backoff +
  // collided-airtime cost at the same population.
  Rng a(21), b(21);
  const auto res = simulateReservationMac(ReservationConfig{}, 16, 10.0, a);
  const auto csma = simulateCsmaCa(CsmaConfig{}, 16, 10.0, b);
  EXPECT_LT(res.meanOverheadS, csma.meanOverheadS);
}

TEST(ReservationMac, ThroughputStableAcrossContention) {
  // p-persistent reservation keeps the data slots flowing regardless of
  // population; CSMA/CA throughput degrades with contention.
  Rng a(22), b(22), c(22), d(22);
  const auto lightRes = simulateReservationMac(ReservationConfig{}, 2, 10.0, a);
  const auto heavyRes = simulateReservationMac(ReservationConfig{}, 32, 10.0, b);
  EXPECT_GT(heavyRes.throughputFraction, lightRes.throughputFraction * 0.8);
  const auto lightCsma = simulateCsmaCa(CsmaConfig{}, 2, 10.0, c);
  const auto heavyCsma = simulateCsmaCa(CsmaConfig{}, 32, 10.0, d);
  const double resRatio = heavyRes.throughputFraction / lightRes.throughputFraction;
  const double csmaRatio =
      heavyCsma.throughputFraction / lightCsma.throughputFraction;
  EXPECT_GT(resRatio, csmaRatio);
}

TEST(ReservationMac, AccessDelayBoundedByServiceRate) {
  // Saturated access delay tracks the analytic service rate: with W
  // expected winners per frame, a population of n waits ~n/W frames.
  const ReservationConfig cfg;
  Rng rng(26);
  const int nodes = 16;
  const auto r = simulateReservationMac(cfg, nodes, 20.0, rng);
  ASSERT_GT(r.deliveredFrames, 0.0);
  const double framesTotal = 20.0 / cfg.frameDurationS();
  const double winnersPerFrame = r.deliveredFrames / framesTotal;
  const double expectedDelay = nodes / winnersPerFrame * cfg.frameDurationS();
  EXPECT_NEAR(r.meanAccessDelayS, expectedDelay, expectedDelay);  // same scale
  EXPECT_LT(r.p95AccessDelayS, 6.0 * expectedDelay);
}

TEST(ReservationMac, SingleNodeHasNoCollisions) {
  Rng rng(23);
  const auto r = simulateReservationMac(ReservationConfig{}, 1, 5.0, rng);
  EXPECT_DOUBLE_EQ(r.collisionFraction, 0.0);
  EXPECT_GT(r.deliveredFrames, 0.0);
}

TEST(ReservationMac, Validation) {
  Rng rng(24);
  EXPECT_THROW(simulateReservationMac(ReservationConfig{}, 0, 1.0, rng),
               InvalidArgumentError);
  EXPECT_THROW(simulateReservationMac(ReservationConfig{}, 1, 0.0, rng),
               InvalidArgumentError);
  ReservationConfig bad;
  bad.dataSlots = 0;
  EXPECT_THROW(simulateReservationMac(bad, 1, 1.0, rng), InvalidArgumentError);
  ReservationConfig bad2;
  bad2.minislotS = 0.0;
  EXPECT_THROW(simulateReservationMac(bad2, 1, 1.0, rng), InvalidArgumentError);
}

TEST(ReservationMac, DeterministicGivenSeed) {
  Rng a(25), b(25);
  const auto ra = simulateReservationMac(ReservationConfig{}, 8, 5.0, a);
  const auto rb = simulateReservationMac(ReservationConfig{}, 8, 5.0, b);
  EXPECT_DOUBLE_EQ(ra.deliveredFrames, rb.deliveredFrames);
  EXPECT_DOUBLE_EQ(ra.meanAccessDelayS, rb.meanAccessDelayS);
}

}  // namespace
}  // namespace openspace
