// Property tests for the spherical footprint index (DESIGN.md §10).
//
// Three layers under test:
//  * SphericalCapIndex: the candidate sets are supersets of the true
//    containing/overlapping cap sets, each cap visited at most once;
//  * FootprintIndex2: bit-identical to the orbit-layer FootprintIndex cap
//    predicate and to ConstellationSnapshot::closestVisible, including
//    polar sites, high-altitude sites (full-scan fallback) and empty
//    constellations;
//  * the rerouted estimators: monteCarloCoverage / kFoldCoverage /
//    timeAveragedCoverage / worstCaseOverlapCoverage must reproduce the
//    openspace::legacy executable specs bit for bit, and associateUsers
//    must match the per-user brute association exactly.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <numbers>
#include <vector>

#include <openspace/auth/association.hpp>
#include <openspace/coverage/coverage.hpp>
#include <openspace/coverage/footprint_index.hpp>
#include <openspace/coverage/legacy.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/geodetic.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/geo/spherical_index.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/visibility.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {
namespace {

constexpr double kPi = std::numbers::pi;

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Central angle between two unit vectors.
double centralAngleRad(const Vec3& a, const Vec3& b) {
  return std::acos(std::clamp(a.dot(b), -1.0, 1.0));
}

// ---------------------------------------------------------------------------
// SphericalCapIndex properties
// ---------------------------------------------------------------------------

std::vector<SphericalCapIndex::Cap> randomCaps(int n, Rng& rng,
                                               double minHalfAngleRad,
                                               double maxHalfAngleRad) {
  std::vector<SphericalCapIndex::Cap> caps;
  caps.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    caps.push_back(
        {rng.unitSphere(), rng.uniform(minHalfAngleRad, maxHalfAngleRad)});
  }
  return caps;
}

/// Every cap containing the query direction (with a tiny interior margin so
/// the property is robust to the index's own build-time rounding) must be
/// visited, and no cap more than once.
void checkCandidateSuperset(const std::vector<SphericalCapIndex::Cap>& caps,
                            const SphericalCapIndex& index, Rng& rng,
                            int queries) {
  for (int q = 0; q < queries; ++q) {
    Vec3 dir = rng.unitSphere();
    if (q == 0) dir = Vec3{0.0, 0.0, 1.0};   // north pole
    if (q == 1) dir = Vec3{0.0, 0.0, -1.0};  // south pole
    if (q == 2) dir = Vec3{-1.0, 0.0, 0.0};  // +-pi longitude seam
    std::vector<int> visits(caps.size(), 0);
    index.forEachCandidate(dir, [&](std::uint32_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < caps.size(); ++i) {
      EXPECT_LE(visits[i], 1) << "cap " << i << " visited twice";
      const double angle = centralAngleRad(dir, caps[i].unitCenter);
      if (angle <= caps[i].halfAngleRad - 1e-9) {
        EXPECT_EQ(visits[i], 1)
            << "containing cap " << i << " missed (angle " << angle
            << ", half-angle " << caps[i].halfAngleRad << ")";
      }
    }
  }
}

TEST(SphericalCapIndex, CandidateSupersetSmallCaps) {
  Rng rng(101);
  const auto caps = randomCaps(120, rng, deg2rad(1.0), deg2rad(25.0));
  const SphericalCapIndex index(caps);
  EXPECT_EQ(index.size(), caps.size());
  checkCandidateSuperset(caps, index, rng, 300);
}

TEST(SphericalCapIndex, CandidateSupersetMixedCaps) {
  // Tiny through hemisphere-and-beyond caps in one index: wide caps must
  // land in every band their extent touches (pole wrap => width pi).
  Rng rng(102);
  auto caps = randomCaps(40, rng, 0.0, kPi);
  caps.push_back({Vec3{0.0, 0.0, 1.0}, kPi / 2});         // polar hemisphere
  caps.push_back({Vec3{1.0, 0.0, 0.0}, kPi / 2 + 0.1});   // super-hemisphere
  caps.push_back({Vec3{0.0, 1.0, 0.0}, kPi});             // whole sphere
  caps.push_back({Vec3{0.0, 0.0, -1.0}, 0.0});            // degenerate point
  const SphericalCapIndex index(caps);
  checkCandidateSuperset(caps, index, rng, 300);
}

TEST(SphericalCapIndex, HemisphereCapsReachableFromEveryBand) {
  // A cap with half-angle >= pi/2 contains directions at every latitude;
  // queries anywhere on the sphere must see it as a candidate.
  const std::vector<SphericalCapIndex::Cap> caps = {
      {Vec3{0.0, 0.0, 1.0}, kPi / 2},
      {Vec3{1.0, 0.0, 0.0}, kPi / 2},
  };
  const SphericalCapIndex index(caps);
  Rng rng(103);
  checkCandidateSuperset(caps, index, rng, 500);
}

TEST(SphericalCapIndex, EmptyIndexVisitsNothing) {
  const SphericalCapIndex defaulted;
  const SphericalCapIndex built{std::vector<SphericalCapIndex::Cap>{}};
  int visited = 0;
  defaulted.forEachCandidate(Vec3{0.8, 0.5, 0.3},
                             [&](std::uint32_t) { ++visited; });
  built.forEachCandidate(Vec3{0.1, -0.7, -0.7},
                         [&](std::uint32_t) { ++visited; });
  EXPECT_EQ(visited, 0);
  EXPECT_EQ(defaulted.size(), 0u);
  EXPECT_EQ(built.entryCount(), 0u);
}

TEST(SphericalCapIndex, NeighborhoodSuperset) {
  Rng rng(104);
  const auto caps = randomCaps(80, rng, deg2rad(2.0), deg2rad(40.0));
  const SphericalCapIndex index(caps);
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    const double radius = caps[i].halfAngleRad + deg2rad(40.0);
    index.neighborhoodCandidates(i, radius, out);
    // Ascending, deduplicated, never the probe cap itself.
    for (std::size_t k = 0; k < out.size(); ++k) {
      EXPECT_NE(out[k], static_cast<std::uint32_t>(i));
      if (k > 0) EXPECT_LT(out[k - 1], out[k]);
    }
    for (std::size_t j = 0; j < caps.size(); ++j) {
      if (j == i) continue;
      const double d =
          centralAngleRad(caps[i].unitCenter, caps[j].unitCenter);
      if (d <= radius - 1e-9) {
        EXPECT_TRUE(std::find(out.begin(), out.end(),
                              static_cast<std::uint32_t>(j)) != out.end())
            << "center " << j << " at distance " << d
            << " missing from radius-" << radius << " neighborhood of " << i;
      }
    }
  }
}

TEST(SphericalCapIndex, NearFullWindowRegistersWholeBand) {
  // Regression: a pole-wrapping cap whose longitude half-width at some band
  // falls just short of pi leaves a gap narrower than one sector — both
  // window endpoints land in the same sector, and deriving the sector span
  // from the endpoints alone collapsed the registration to that single
  // sector, silently dropping the cap from the rest of the band. Construct
  // exactly that geometry: the cap starts covering whole latitude circles
  // (width pi) a hair above a band boundary, so the band just below
  // registers with width pi - O(1e-3), far inside one sector's width.
  const auto dirAt = [](double latRad, double lonRad) {
    return Vec3{std::cos(latRad) * std::cos(lonRad),
                std::cos(latRad) * std::sin(lonRad), std::sin(latRad)};
  };
  Rng rng(106);
  const double rho = 0.45;
  auto caps = randomCaps(200, rng, rho, rho);
  caps.push_back({Vec3{0.0, 0.0, 1.0}, rho});
  // Probe build: same cap count and mean half-angle as the final indexes,
  // so band/sector counts match and the tuned geometry below stays valid.
  const SphericalCapIndex probe(caps);
  const double bands = static_cast<double>(probe.bandCount());
  // Top boundary of a band reachable by a pole-wrapping cap whose center
  // latitude stays below pi/2.
  double bandTopLat = 0.0;
  for (std::size_t b = 0; b + 1 < probe.bandCount(); ++b) {
    const double zHi = -1.0 + 2.0 * static_cast<double>(b + 1) / bands;
    const double lat = std::asin(std::clamp(zHi, -1.0, 1.0));
    if (lat > kPi / 2 - rho + 0.05 && lat < kPi / 2 - 0.05) bandTopLat = lat;
  }
  ASSERT_GT(bandTopLat, 0.0) << "no band boundary in the tunable range";
  // Whole latitude circles lie inside the cap for latitudes above
  // pi - centerLat - rho; park that threshold just above the boundary.
  const double wrapLat = bandTopLat + 1e-7;
  const double centerLat = kPi - rho - wrapLat;
  ASSERT_LT(centerLat, kPi / 2);
  ASSERT_GT(centerLat + rho, kPi / 2) << "cap must wrap the pole";
  // The band's registered half-width must land in the dangerous range:
  // below pi, but with a gap smaller than one sector's true-angle width.
  const double w =
      capLonHalfWidthRad(centerLat, rho, centerLat - rho, bandTopLat);
  ASSERT_GT(w, kPi - 4.0 / static_cast<double>(probe.sectorCount()));
  ASSERT_LT(w, kPi);
  // Same band as bandTopLat, and the cap still spans nearly all longitudes.
  const double queryLat = bandTopLat - 1e-4;
  // Several center longitudes so the narrow gap lands at varied offsets
  // within (and occasionally across) sector boundaries.
  for (const double centerLon :
       {0.3, 1.1, 2.0, 2.9, -2.5, -1.6, -0.7, 3.05}) {
    caps.back() = {dirAt(centerLat, centerLon), rho};
    const SphericalCapIndex index(caps);
    ASSERT_EQ(index.bandCount(), probe.bandCount());
    ASSERT_EQ(index.sectorCount(), probe.sectorCount());
    for (int k = -30; k <= 30; ++k) {
      const double lon = centerLon + 0.1 * static_cast<double>(k);
      const Vec3 dir = dirAt(queryLat, lon);
      if (centralAngleRad(dir, caps.back().unitCenter) > rho - 1e-9) continue;
      bool visited = false;
      index.forEachCandidate(dir, [&](std::uint32_t i) {
        visited = visited || (i + 1 == caps.size());
      });
      EXPECT_TRUE(visited) << "cap dropped from its own band: centerLon="
                           << centerLon << " query lon offset=" << 0.1 * k;
    }
  }
}

TEST(SphericalCapIndex, CapIndexScaling) {
  // Pins the two-regime cell sizing (spherical_index.cpp) at
  // mega-constellation scale: build cost stays ~O(N) — the entry count,
  // which drives both the counting-sort build and the index's memory, is
  // bounded by a constant per cap — and per-cell candidate lists stay
  // within a small multiple of the fleet's intrinsic per-point cover
  // count kappa = N * capAreaFraction (the floor no cell sizing can beat:
  // every cap covering a point registers in that point's cell).
  Rng rng(99);
  const double lam = 0.25;  // LEO-like footprint half-angle, radians
  for (const int n : {1000, 8000, 66000}) {
    const auto caps = randomCaps(n, rng, lam - 0.05, lam + 0.05);
    const SphericalCapIndex index(caps);
    const auto nd = static_cast<double>(n);
    // O(N) build: measured ~68 entries/cap, independent of N.
    EXPECT_GE(index.entryCount(), static_cast<std::size_t>(n));
    EXPECT_LE(index.entryCount(), static_cast<std::size_t>(90 * n)) << n;
    // Bounded candidate lists: within 2x of the kappa floor (plus a
    // small-N slack term for the per-cap minimum of one cell).
    const double kappa = nd * (1.0 - std::cos(lam)) / 2.0;
    const double perCell = static_cast<double>(index.entryCount()) /
                           static_cast<double>(index.cellCount());
    EXPECT_LE(perCell, 2.0 * (kappa + 64.0)) << n;
  }
}

TEST(CapLonHalfWidth, KnownValues) {
  // Pole-wrapping cap: every longitude qualifies.
  EXPECT_DOUBLE_EQ(
      capLonHalfWidthRad(deg2rad(80.0), deg2rad(20.0), deg2rad(75.0),
                         deg2rad(90.0)),
      kPi);
  // Whole-sphere cap.
  EXPECT_DOUBLE_EQ(capLonHalfWidthRad(0.0, kPi, -0.5, 0.5), kPi);
  // Degenerate point cap: zero width at its own latitude.
  EXPECT_DOUBLE_EQ(capLonHalfWidthRad(0.3, 0.0, 0.3, 0.3), 0.0);
  // Equatorial cap measured at the equator: width equals the radius.
  EXPECT_NEAR(capLonHalfWidthRad(0.0, deg2rad(10.0), 0.0, 0.0),
              deg2rad(10.0), 1e-12);
}

TEST(CapLonHalfWidth, BoundsSampledCapPoints) {
  // For points of the cap whose latitude falls inside the band, the
  // longitude offset from the center never exceeds the reported width.
  Rng rng(105);
  for (int trial = 0; trial < 200; ++trial) {
    const double lat1 = rng.uniform(-1.4, 1.4);
    const double rho = rng.uniform(0.01, 1.2);
    const double latLo = rng.uniform(-kPi / 2, kPi / 2);
    const double latHi = latLo + rng.uniform(0.0, 0.3);
    const double width = capLonHalfWidthRad(lat1, rho, latLo, latHi);
    for (int s = 0; s < 40; ++s) {
      // Destination point at bearing theta, angular distance d <= rho.
      const double theta = rng.uniform(0.0, 2 * kPi);
      const double d = rho * std::sqrt(rng.uniform(0.0, 1.0));
      const double sinLat2 = std::sin(lat1) * std::cos(d) +
                             std::cos(lat1) * std::sin(d) * std::cos(theta);
      const double lat2 = std::asin(std::clamp(sinLat2, -1.0, 1.0));
      if (lat2 < latLo || lat2 > latHi) continue;
      const double dLon = std::atan2(
          std::sin(theta) * std::sin(d) * std::cos(lat1),
          std::cos(d) - std::sin(lat1) * sinLat2);
      EXPECT_LE(std::abs(dLon), width + 1e-9)
          << "cap(lat=" << lat1 << ", rho=" << rho << ") band [" << latLo
          << ", " << latHi << "]";
    }
  }
}

// ---------------------------------------------------------------------------
// FootprintIndex2 vs. the orbit-layer brute predicates
// ---------------------------------------------------------------------------

TEST(FootprintIndex2, CoversBitIdenticalToOrbitIndex) {
  Rng rng(201);
  for (const int n : {1, 7, 66}) {
    const auto sats = (n == 66) ? makeWalkerStar(iridiumConfig())
                                : makeRandomConstellation(n, km(780.0), rng);
    const auto snap = SnapshotCache::global().at(sats, 300.0);
    const FootprintIndex brute(*snap, deg2rad(10.0));
    const auto indexed = FootprintIndex2::compiled(snap, deg2rad(10.0));
    ASSERT_EQ(indexed->size(), brute.size());
    for (int q = 0; q < 500; ++q) {
      Vec3 p = rng.unitSphere();
      if (q == 0) p = Vec3{0.0, 0.0, 1.0};
      if (q == 1) p = Vec3{0.0, 0.0, -1.0};
      for (std::size_t i = 0; i < brute.size(); ++i) {
        ASSERT_EQ(indexed->covers(p, i), brute.covers(p, i));
      }
      ASSERT_EQ(indexed->anyCovers(p), brute.anyCovers(p));
      for (const int stopAfter :
           {-1, 0, 1, 2, n, n + 3, static_cast<int>(brute.size())}) {
        ASSERT_EQ(indexed->countCovering(p, stopAfter),
                  brute.countCovering(p, stopAfter))
            << "stopAfter=" << stopAfter;
      }
    }
  }
}

TEST(FootprintIndex2, ClosestVisibleMatchesSnapshotBrute) {
  Rng rng(202);
  const auto sats = makeWalkerStar(iridiumConfig());
  // A nonzero snapshot time exercises the ECEF/ECI longitude offset.
  const auto snap = SnapshotCache::global().at(sats, 1234.5);
  for (const double maskRad : {0.0, deg2rad(10.0), deg2rad(25.0)}) {
    const auto indexed = FootprintIndex2::compiled(snap, maskRad);
    for (int q = 0; q < 400; ++q) {
      Geodetic site = rng.surfacePoint();
      if (q == 0) site = Geodetic{kPi / 2, 0.0, 0.0};       // north pole
      if (q == 1) site = Geodetic{-kPi / 2, 0.0, 0.0};      // south pole
      if (q == 2) site = Geodetic{0.0, kPi, 0.0};           // date line
      if (q == 3) site.altitudeM = 8000.0;                  // airborne
      if (q == 4) site.altitudeM = 200e3;                   // full-scan path
      const Vec3 ecef = geodeticToEcef(site);
      const auto a = indexed->closestVisible(ecef);
      const auto b = snap->closestVisible(ecef, maskRad);
      ASSERT_EQ(a.has_value(), b.has_value())
          << "mask " << maskRad << " site (" << site.latitudeRad << ", "
          << site.longitudeRad << ", " << site.altitudeM << ")";
      if (a) ASSERT_EQ(*a, *b);
      const auto viaGeodetic = indexed->closestVisible(site);
      ASSERT_EQ(viaGeodetic, a);
      // anyVisibleFrom agrees with "closestVisible found something".
      ASSERT_EQ(indexed->anyVisibleFrom(ecef), a.has_value());
    }
  }
}

TEST(FootprintIndex2, GroundCandidatesAreSuperset) {
  Rng rng(203);
  const auto sats = makeRandomConstellation(50, km(600.0), rng);
  const auto snap = SnapshotCache::global().at(sats, 42.0);
  const double maskRad = deg2rad(5.0);
  const auto indexed = FootprintIndex2::compiled(snap, maskRad);
  for (int q = 0; q < 300; ++q) {
    const Geodetic site = rng.surfacePoint();
    const Vec3 ecef = geodeticToEcef(site);
    std::vector<int> visits(sats.size(), 0);
    indexed->forEachGroundCandidate(ecef, [&](std::uint32_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < sats.size(); ++i) {
      EXPECT_LE(visits[i], 1);
      if (elevationAngleRad(ecef, snap->ecef(i)) >= maskRad) {
        EXPECT_EQ(visits[i], 1) << "visible satellite " << i << " pruned";
      }
    }
  }
}

TEST(FootprintIndex2, EmptyConstellation) {
  const auto snap =
      SnapshotCache::global().at(std::vector<OrbitalElements>{}, 0.0);
  const auto indexed = FootprintIndex2::compiled(snap, deg2rad(10.0));
  EXPECT_EQ(indexed->size(), 0u);
  EXPECT_FALSE(indexed->anyCovers(Vec3{0.0, 0.0, 1.0}));
  EXPECT_EQ(indexed->countCovering(Vec3{0.0, 0.0, 1.0}, 5), 0);
  EXPECT_FALSE(indexed->closestVisible(Geodetic{0.0, 0.0, 0.0}).has_value());
}

TEST(FootprintIndex2, MaskDomainMatchesBrutePath) {
  Rng rng(204);
  const auto sats = makeRandomConstellation(4, km(780.0), rng);
  const auto snap = SnapshotCache::global().at(sats, 0.0);
  EXPECT_THROW(FootprintIndex2(snap, -0.01), InvalidArgumentError);
  EXPECT_THROW(FootprintIndex2(snap, kPi / 2 + 0.01), InvalidArgumentError);
  EXPECT_NO_THROW(FootprintIndex2(snap, 0.0));
}

TEST(FootprintIndex2, CompiledCacheReturnsSharedInstance) {
  Rng rng(205);
  const auto sats = makeRandomConstellation(12, km(780.0), rng);
  const auto snap = SnapshotCache::global().at(sats, 77.0);
  const auto a = FootprintIndex2::compiled(snap, deg2rad(10.0));
  const auto b = FootprintIndex2::compiled(snap, deg2rad(10.0));
  EXPECT_EQ(a.get(), b.get());
  const auto c = FootprintIndex2::compiled(snap, deg2rad(15.0));
  EXPECT_NE(a.get(), c.get());
}

TEST(FootprintIndex2, CompiledCacheByteBudgetEvictsLru) {
  Rng rng(206);
  const auto sats = makeRandomConstellation(12, km(780.0), rng);
  const auto snapA = SnapshotCache::global().at(sats, 80.0);
  const auto snapB = SnapshotCache::global().at(sats, 81.0);
  const double mask = deg2rad(10.0);
  // Budget for exactly one compiled index of snapA: compiling a second
  // index must evict the first from the LRU tail.
  const std::size_t one = FootprintIndex2(snapA, mask).approxBytes();
  const std::size_t previous =
      FootprintIndex2::setCompiledCacheByteBudget(one);
  const auto a = FootprintIndex2::compiled(snapA, mask);
  EXPECT_EQ(FootprintIndex2::compiled(snapA, mask).get(), a.get());
  EXPECT_EQ(FootprintIndex2::compiledCacheApproxBytes(), one);
  const auto b = FootprintIndex2::compiled(snapB, mask);  // evicts A
  EXPECT_EQ(FootprintIndex2::compiled(snapB, mask).get(), b.get());
  // A was evicted, so asking for it again rebuilds.
  EXPECT_NE(FootprintIndex2::compiled(snapA, mask).get(), a.get());
  FootprintIndex2::setCompiledCacheByteBudget(previous);
}

// ---------------------------------------------------------------------------
// Indexed estimators vs. the openspace::legacy executable specs
// ---------------------------------------------------------------------------

TEST(LegacyEquivalence, MonteCarloBitForBit) {
  Rng mk(301);
  for (const int n : {1, 5, 40, 66}) {
    const auto sats = (n == 66) ? makeWalkerStar(iridiumConfig())
                                : makeRandomConstellation(n, km(780.0), mk);
    for (const double maskRad : {0.0, deg2rad(10.0)}) {
      for (const std::uint64_t seed : {17u, 18u}) {
        Rng a(seed), b(seed);
        const auto fast = monteCarloCoverage(sats, 250.0, maskRad, 4096, a);
        const auto spec =
            legacy::monteCarloCoverage(sats, 250.0, maskRad, 4096, b);
        EXPECT_EQ(bits(fast.coverageFraction), bits(spec.coverageFraction))
            << "n=" << n << " mask=" << maskRad << " seed=" << seed;
        EXPECT_EQ(fast.effectiveSatellites, spec.effectiveSatellites);
      }
    }
  }
}

TEST(LegacyEquivalence, KFoldBitForBit) {
  Rng mk(302);
  const auto sats = makeRandomConstellation(30, km(780.0), mk);
  for (const int k : {1, 2, 4}) {
    Rng a(23), b(23);
    EXPECT_EQ(bits(kFoldCoverage(sats, 90.0, deg2rad(10.0), k, 4096, a)),
              bits(legacy::kFoldCoverage(sats, 90.0, deg2rad(10.0), k, 4096, b)))
        << "k=" << k;
  }
}

TEST(LegacyEquivalence, TimeAveragedBitForBit) {
  const auto sats = makeWalkerStar(iridiumConfig());
  Rng a(31), b(31);
  const double fast =
      timeAveragedCoverage(sats, 0.0, 3000.0, 4, deg2rad(10.0), 2048, a);
  const double spec =
      legacy::timeAveragedCoverage(sats, 0.0, 3000.0, 4, deg2rad(10.0), 2048, b);
  EXPECT_EQ(bits(fast), bits(spec));
}

TEST(LegacyEquivalence, WorstCaseGreedyMatchingPinned) {
  // The band-sweep must reproduce the O(N^2) greedy matching exactly:
  // same effectiveSatellites, same coverage bits, on randomized
  // constellations of every size class.
  Rng mk(303);
  for (const int n : {2, 3, 10, 50, 120}) {
    for (int trial = 0; trial < 4; ++trial) {
      const auto sats = makeRandomConstellation(n, km(780.0), mk);
      const auto fast = worstCaseOverlapCoverage(sats, 60.0, deg2rad(10.0));
      const auto spec =
          legacy::worstCaseOverlapCoverage(sats, 60.0, deg2rad(10.0));
      EXPECT_EQ(fast.effectiveSatellites, spec.effectiveSatellites)
          << "n=" << n << " trial=" << trial;
      EXPECT_EQ(bits(fast.coverageFraction), bits(spec.coverageFraction));
    }
  }
  // Dense Walker shells collapse many pairs; pin those too.
  const auto iridium = makeWalkerStar(iridiumConfig());
  const auto fast = worstCaseOverlapCoverage(iridium, 0.0, deg2rad(10.0));
  const auto spec = legacy::worstCaseOverlapCoverage(iridium, 0.0, deg2rad(10.0));
  EXPECT_EQ(fast.effectiveSatellites, spec.effectiveSatellites);
  EXPECT_EQ(bits(fast.coverageFraction), bits(spec.coverageFraction));
}

// ---------------------------------------------------------------------------
// Batched association
// ---------------------------------------------------------------------------

TEST(AssociateUsers, MatchesPerUserBrute) {
  Rng rng(401);
  const auto fleet = makeWalkerStar(iridiumConfig());
  const double tS = 510.0;
  const double maskRad = deg2rad(10.0);
  std::vector<Geodetic> users;
  for (int i = 0; i < 600; ++i) users.push_back(rng.surfacePoint());
  users.push_back(Geodetic{kPi / 2, 0.0, 0.0});
  users.push_back(Geodetic{-kPi / 2, 0.0, 0.0});
  const auto out = associateUsers(fleet, tS, users, maskRad);
  ASSERT_EQ(out.size(), users.size());
  const auto snap = SnapshotCache::global().at(fleet, tS);
  for (std::size_t u = 0; u < users.size(); ++u) {
    const Vec3 ecef = geodeticToEcef(users[u]);
    const auto brute = snap->closestVisible(ecef, maskRad);
    ASSERT_EQ(out[u].covered, brute.has_value()) << "user " << u;
    if (!brute) continue;
    ASSERT_EQ(out[u].satelliteIndex, static_cast<std::uint32_t>(*brute));
    ASSERT_EQ(bits(out[u].slantRangeM),
              bits(ecef.distanceTo(snap->ecef(*brute))));
  }
}

TEST(AssociateUsers, BeaconOverloadFillsSatelliteIds) {
  Rng rng(402);
  const auto fleet = makeRandomConstellation(20, km(780.0), rng);
  std::vector<BeaconMessage> beacons;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    BeaconMessage b;
    b.satellite = SatelliteId(static_cast<std::uint32_t>(1000 + i));
    b.elements = fleet[i];
    beacons.push_back(b);
  }
  std::vector<Geodetic> users;
  for (int i = 0; i < 100; ++i) users.push_back(rng.surfacePoint());
  const auto viaBeacons = associateUsers(beacons, 5.0, users, 0.0);
  const auto viaFleet = associateUsers(fleet, 5.0, users, 0.0);
  ASSERT_EQ(viaBeacons.size(), viaFleet.size());
  for (std::size_t u = 0; u < users.size(); ++u) {
    ASSERT_EQ(viaBeacons[u].covered, viaFleet[u].covered);
    if (!viaFleet[u].covered) continue;
    ASSERT_EQ(viaBeacons[u].satelliteIndex, viaFleet[u].satelliteIndex);
    ASSERT_EQ(viaBeacons[u].satellite,
              beacons[viaFleet[u].satelliteIndex].satellite);
    ASSERT_EQ(bits(viaBeacons[u].slantRangeM), bits(viaFleet[u].slantRangeM));
  }
}

TEST(AssociateUsers, EmptyInputs) {
  const auto fleet = makeWalkerStar(iridiumConfig());
  EXPECT_TRUE(associateUsers(fleet, 0.0, {}, 0.1).empty());
  const auto none = associateUsers(std::vector<OrbitalElements>{}, 0.0,
                                   {Geodetic{0.0, 0.0, 0.0}}, 0.1);
  ASSERT_EQ(none.size(), 1u);
  EXPECT_FALSE(none[0].covered);
}

TEST(AssociateUsers, AgreesWithSelectSatellite) {
  // The batched sweep and the per-agent selection rule are the same §2.2
  // rule; their winners must coincide beacon-for-beacon.
  Rng rng(403);
  const auto fleet = makeRandomConstellation(30, km(780.0), rng);
  std::vector<BeaconMessage> beacons;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    BeaconMessage b;
    b.satellite = SatelliteId(static_cast<std::uint32_t>(i + 1));
    b.elements = fleet[i];
    beacons.push_back(b);
  }
  const double maskRad = deg2rad(15.0);
  for (int i = 0; i < 50; ++i) {
    const Geodetic where = rng.surfacePoint();
    const AssociationAgent agent(1, ProviderId(1), 7, where);
    const auto single = agent.selectSatellite(beacons, 30.0, maskRad);
    const auto batch = associateUsers(beacons, 30.0, {where}, maskRad);
    ASSERT_EQ(single.has_value(), batch[0].covered);
    if (single) ASSERT_EQ(*single, batch[0].satellite);
  }
}

}  // namespace
}  // namespace openspace
