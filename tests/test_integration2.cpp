// Integration tests across the extension modules: serialization feeding
// topology/routing, population feeding scenarios, the full §5(6) fraud →
// audit → quarantine → reroute pipeline, temporal-vs-instant routing
// consistency, and the physical-adjacency path-vector control plane.
#include <gtest/gtest.h>

#include <sstream>

#include <openspace/geo/units.hpp>
#include <openspace/handover/handover.hpp>
#include <openspace/io/ephemeris_io.hpp>
#include <openspace/orbit/maneuver.hpp>
#include <openspace/routing/linkstate.hpp>
#include <openspace/routing/pathvector.hpp>
#include <openspace/routing/temporal.hpp>
#include <openspace/security/reputation.hpp>
#include <openspace/sim/population.hpp>
#include <openspace/sim/scenario.hpp>

namespace openspace {
namespace {

TEST(Integration2, SerializedEphemerisReproducesTopologyAndRoutes) {
  // A fleet published by one participant and loaded by another from the
  // interchange format must produce identical snapshots and routes — the
  // "public topology" guarantee the routing design rests on.
  EphemerisService original;
  int p = 0;
  for (const auto& el : makeWalkerStar(iridiumConfig())) {
    original.publish(static_cast<ProviderId>(1 + (p++ % 2)), el);
  }
  const EphemerisService loaded =
      ephemerisFromString(ephemerisToString(original));

  TopologyBuilder topoA(original);
  TopologyBuilder topoB(loaded);
  const NodeId userA =
      topoA.addUser({"u", Geodetic::fromDegrees(40.44, -79.99), ProviderId{1}});
  const NodeId gwA =
      topoA.nodeOf(topoA.addGroundStation({"g", Geodetic::fromDegrees(48.86, 2.35), ProviderId{2}}));
  const NodeId userB =
      topoB.addUser({"u", Geodetic::fromDegrees(40.44, -79.99), ProviderId{1}});
  const NodeId gwB =
      topoB.nodeOf(topoB.addGroundStation({"g", Geodetic::fromDegrees(48.86, 2.35), ProviderId{2}}));

  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  opt.minElevationRad = deg2rad(10.0);
  const NetworkGraph gA = topoA.snapshot(1234.5, opt);
  const NetworkGraph gB = topoB.snapshot(1234.5, opt);
  ASSERT_EQ(gA.nodeCount(), gB.nodeCount());
  ASSERT_EQ(gA.linkCount(), gB.linkCount());

  const Route rA = shortestPath(gA, userA, gwA, latencyCost());
  const Route rB = shortestPath(gB, userB, gwB, latencyCost());
  ASSERT_EQ(rA.valid(), rB.valid());
  if (rA.valid()) {
    EXPECT_EQ(rA.nodes, rB.nodes);
    EXPECT_DOUBLE_EQ(rA.propagationDelayS, rB.propagationDelayS);
  }
}

TEST(Integration2, PopulationSampledUsersFormAWorkingScenario) {
  // Build a scenario whose users come from the §5(1) demand model.
  const PopulationModel world = defaultWorldPopulation();
  Rng rng(31);
  const auto sampled = world.sampleUsers(4, rng);

  ScenarioConfig cfg;
  cfg.providers = {{"alpha", 33, 0.0, 0.05}, {"beta", 33, 0.0, 0.05}};
  cfg.coordinatedWalker = true;
  cfg.stations = {{"gw-a", Geodetic::fromDegrees(47.0, -122.0), 0},
                  {"gw-b", Geodetic::fromDegrees(1.35, 103.82), 1}};
  for (std::size_t i = 0; i < sampled.size(); ++i) {
    cfg.users.push_back({"pop-user-" + std::to_string(i), sampled[i].location,
                         i % 2});
  }
  cfg.seed = 77;
  Scenario s(cfg);
  const TrafficReport rep = s.runTrafficEpoch(0.0, 2.0, 1e6);
  // Some sampled users may be over ocean/out of momentary coverage; the
  // scenario must still run and account correctly for the rest.
  EXPECT_TRUE(rep.ledgersCrossVerified);
  EXPECT_EQ(rep.packetsDelivered + rep.packetsDropped, rep.packetsOffered);
}

TEST(Integration2, FraudAuditQuarantineReroutePipeline) {
  // End-to-end §5(6): run traffic, inflate one provider's books, audit,
  // quarantine, and verify the quarantine-aware route avoids the cheat
  // while an honest alternative exists.
  // Three providers: the third is the witness the audit needs to
  // arbitrate between mallory's books and the owner's.
  ScenarioConfig cfg;
  cfg.providers = {{"honest-a", 22, 0.0, 0.05},
                   {"mallory", 22, 0.0, 0.05},
                   {"honest-b", 22, 0.0, 0.05}};
  cfg.coordinatedWalker = true;
  cfg.stations = {{"gw-a", Geodetic::fromDegrees(47.0, -122.0), 0},
                  {"gw-m", Geodetic::fromDegrees(1.35, 103.82), 1},
                  {"gw-b", Geodetic::fromDegrees(-1.29, 36.82), 2}};
  cfg.users = {{"u", Geodetic::fromDegrees(40.44, -79.99), 0},
               {"v", Geodetic::fromDegrees(-33.87, 151.21), 2}};
  cfg.seed = 13;
  Scenario s(cfg);
  ASSERT_GT(s.runTrafficEpoch(0.0, 3.0, 2e6).packetsDelivered, 0u);

  const ProviderId mallory = s.providerId(1);
  auto& book = const_cast<TrafficLedger&>(s.settlement().ledger(mallory));
  const auto entries = book.entries();  // copy: we mutate below
  for (const auto& [key, bytes] : entries) {
    if (key.first == mallory && key.second != mallory) {
      book.record(key.first, key.second, bytes * 9.0);  // 10x inflation
    }
  }
  ReputationTracker rep(0.7);
  applyAuditFindings(auditLedgers(s.settlement()), rep);
  if (!rep.quarantined(mallory)) {
    GTEST_SKIP() << "no billable mallory hop this epoch";
  }

  const NetworkGraph g = s.snapshot(0.0);
  const LinkCostFn guarded = quarantineAwareCost(latencyCost(), rep);
  const Route r = shortestPath(g, s.userNode(0), s.homeGatewayOf(0), guarded);
  if (r.valid()) {
    for (const NodeId n : r.nodes) {
      EXPECT_NE(g.node(n).provider, mallory);
    }
  }
}

TEST(Integration2, TemporalNeverBeatsInstantaneousOnDenseFleet) {
  // On a dense fleet the earliest-arrival delivery cannot be faster than
  // the best instantaneous route (it uses the same links), and must not be
  // slower than it by more than numerical noise when a path exists at the
  // start snapshot.
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  TopologyBuilder topo(eph);
  const NodeId user =
      topo.addUser({"u", Geodetic::fromDegrees(-1.29, 36.82), ProviderId{1}});
  const NodeId gw =
      topo.nodeOf(topo.addGroundStation({"g", Geodetic::fromDegrees(-4.04, 39.67), ProviderId{2}}));
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  opt.minElevationRad = deg2rad(10.0);

  const NetworkGraph g = topo.snapshot(0.0, opt);
  const Route instant = shortestPath(g, user, gw, latencyCost());
  ASSERT_TRUE(instant.valid());

  const ContactGraphRouter router(topo, opt, 0.0, 300.0, 60.0);
  const TemporalRoute temporal = router.earliestArrival(user, gw, 0.0);
  ASSERT_TRUE(temporal.reachable);
  EXPECT_NEAR(temporal.totalDelayS(), instant.totalDelayS(), 1e-9);
}

TEST(Integration2, PathVectorOverPhysicalAdjacencyMatchesIslReachability) {
  // Providers adjacent iff a cross-provider ISL exists; under mesh policy
  // the control plane must reach exactly the providers in the same
  // physical component.
  EphemerisService eph;
  const auto elements = makeWalkerStar(iridiumConfig());
  for (std::size_t i = 0; i < elements.size(); ++i) {
    eph.publish(static_cast<ProviderId>(1 + (i % 4)), elements[i]);
  }
  TopologyBuilder topo(eph);
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  const NetworkGraph g = topo.snapshot(0.0, opt);

  std::set<std::pair<ProviderId, ProviderId>> adjacency;
  for (const LinkId lid : g.links()) {
    const Link& l = g.link(lid);
    const ProviderId a = g.node(l.a).provider;
    const ProviderId b = g.node(l.b).provider;
    if (a != b) adjacency.insert({std::min(a, b), std::max(a, b)});
  }
  ASSERT_FALSE(adjacency.empty());
  std::vector<ProviderLink> links;
  for (const auto& [a, b] : adjacency) {
    links.push_back({a, b, Relationship::Mesh, Relationship::Mesh});
  }
  const auto rep = runPathVector({ProviderId{1}, ProviderId{2}, ProviderId{3}, ProviderId{4}}, links);
  EXPECT_TRUE(rep.converged);
  EXPECT_DOUBLE_EQ(rep.reachability, 1.0);  // interleaved planes: connected
}

TEST(Integration2, ManeuverBudgetsForWholeConstellationAreBounded) {
  // Every satellite of an Iridium-like deployment can be placed from a
  // 500 km rideshare with single-digit-percent propellant fractions.
  const auto slots = makeWalkerStar(iridiumConfig());
  const double dryMass = 100.0;
  double totalProp = 0.0;
  for (std::size_t i = 0; i < slots.size(); i += 11) {  // one per plane
    const SlotAcquisition acq =
        planSlotAcquisition(500e3, slots[i], /*phaseErr=*/0.5, dryMass);
    EXPECT_LT(acq.propellantKg, 0.12 * dryMass);
    totalProp += acq.propellantKg;
  }
  EXPECT_GT(totalProp, 0.0);
}

TEST(Integration2, LinkStateFloodFasterThanHandoverCadence) {
  // Sanity across subsystems: congestion state disseminates (~100 ms)
  // orders of magnitude faster than topology changes (~minutes between
  // handovers), so congestion-aware routing over flooded state is
  // self-consistent.
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  TopologyBuilder topo(eph);
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  const NetworkGraph g = topo.snapshot(0.0, opt);
  const double floodS =
      stateDisseminationTimeS(g, g.nodesOfKind(NodeKind::Satellite).front());
  EXPECT_LT(floodS, 1.0);

  const HandoverPlanner planner(eph, deg2rad(10.0));
  const auto tl = simulateHandovers(planner, Geodetic::fromDegrees(40.44, -79.99),
                                    0.0, 3600.0, HandoverMode::Predictive);
  ASSERT_GT(tl.handovers(), 0);
  EXPECT_GT(tl.meanIntervalS, 100.0 * floodS);
}

}  // namespace
}  // namespace openspace
