// Session-plane tests: the sharded SessionTable, the batched HandoverSweep
// epoch kernel, and the sim scenarios built on them.
//
// The central property: with SeedMode::Planner and non-expiring
// certificates, the sweep's per-user event streams are *bit-for-bit* the
// HandoverTimeline events the legacy per-user simulateHandovers produces,
// for any partition of the window into epochs — the legacy path is the
// executable spec. Everything else (determinism at any thread count,
// occupancy accounting, certificate caching, regional outage) is layered
// on top of that pinned equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include <openspace/auth/association.hpp>
#include <openspace/auth/certificate.hpp>
#include <openspace/concurrency/parallel.hpp>
#include <openspace/core/hash.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/handover/handover.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/session/handover_sweep.hpp>
#include <openspace/session/session_table.hpp>
#include <openspace/sim/session_scenarios.hpp>

namespace openspace {
namespace {

/// Restores the ambient worker count when a test overrides it.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(parallelThreadCount()) {}
  ~ThreadCountGuard() { setParallelThreadCount(saved_); }

 private:
  int saved_;
};

/// A certificate expiry far beyond any test window: equivalence runs must
/// never trip the expiry rule.
constexpr double kNeverExpiresS = 4.0e9;

class SessionSweepTest : public ::testing::Test {
 protected:
  SessionSweepTest() {
    for (const auto& el : makeWalkerStar(iridiumConfig())) {
      eph_.publish(ProviderId{1}, el);
    }
    planner_ = std::make_unique<HandoverPlanner>(eph_, mask_);
    cfg_.minElevationRad = mask_;
    cfg_.dropOnCertExpiry = false;
    const auto& sats = eph_.satellites();
    for (std::size_t i = 0; i < sats.size(); ++i) {
      indexOf_[sats[i].value()] = static_cast<std::uint32_t>(i);
    }
  }

  std::vector<SessionSeed> seedsFor(const std::vector<Geodetic>& sites,
                                    double certExpiresAtS = kNeverExpiresS) const {
    std::vector<SessionSeed> seeds;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      seeds.push_back(SessionSeed{static_cast<UserId>(i + 1), sites[i],
                                  certExpiresAtS, 0x1000 + i});
    }
    return seeds;
  }

  /// Run the sweep over `sites` across the given epoch boundaries and
  /// return (events, per-epoch stats, final state checksum).
  struct SweepRun {
    std::vector<SessionEvent> events;
    std::vector<EpochStats> stats;
    std::uint64_t finalChecksum = 0;
  };
  SweepRun runSweep(const std::vector<Geodetic>& sites,
                    const std::vector<double>& boundaries,
                    double certExpiresAtS = kNeverExpiresS) const {
    SessionTable table(eph_.satellites().size());
    const HandoverSweep sweep(eph_, cfg_);
    sweep.seed(table, seedsFor(sites, certExpiresAtS), 0.0, SeedMode::Planner);
    SweepRun run;
    for (const double t1 : boundaries) {
      run.stats.push_back(sweep.runEpoch(table, t1, &run.events));
    }
    run.finalChecksum = table.stateChecksum();
    return run;
  }

  /// The sweep's events for one user, in time order.
  static std::vector<SessionEvent> eventsOf(const std::vector<SessionEvent>& all,
                                            UserId user) {
    std::vector<SessionEvent> out;
    for (const SessionEvent& e : all) {
      if (e.user == user) out.push_back(e);
    }
    return out;
  }

  /// Expect the sweep stream to be bit-for-bit the legacy timeline.
  void expectMatchesLegacy(const std::vector<SessionEvent>& mine,
                           const HandoverTimeline& legacy) const {
    ASSERT_EQ(mine.size(), legacy.events.size());
    for (std::size_t j = 0; j < mine.size(); ++j) {
      EXPECT_EQ(bitsOf(mine[j].atS), bitsOf(legacy.events[j].atS)) << j;
      EXPECT_EQ(mine[j].fromSat, indexOf_.at(legacy.events[j].from.value())) << j;
      EXPECT_EQ(mine[j].toSat, indexOf_.at(legacy.events[j].to.value())) << j;
      EXPECT_EQ(bitsOf(mine[j].latencyS), bitsOf(legacy.events[j].latencyS)) << j;
    }
  }

  const double mask_ = deg2rad(10.0);
  EphemerisService eph_;
  std::unique_ptr<HandoverPlanner> planner_;
  SweepConfig cfg_;
  std::unordered_map<std::uint32_t, std::uint32_t> indexOf_;
  const std::vector<Geodetic> sites_ = {
      Geodetic::fromDegrees(40.44, -79.99),   // Pittsburgh
      Geodetic::fromDegrees(-33.87, 151.21),  // Sydney
      Geodetic::fromDegrees(51.5, -0.13),     // London
      Geodetic::fromDegrees(-1.29, 36.82),    // Nairobi
      Geodetic::fromDegrees(78.22, 15.63),    // Svalbard (polar convergence)
      Geodetic::fromDegrees(0.0, -160.0),     // mid-Pacific
  };
};

// --- sweep == legacy, the executable-spec property ------------------------

TEST_F(SessionSweepTest, EventsMatchLegacySimulationForAnyEpochPartition) {
  const double T = 1'800.0;
  const std::vector<std::vector<double>> partitions = {
      {T},
      {600.0, 1'200.0, T},
      {137.0, 450.0, 1'000.0, 1'337.5, T},
  };
  std::vector<HandoverTimeline> legacy;
  for (const Geodetic& site : sites_) {
    legacy.push_back(
        simulateHandovers(*planner_, site, 0.0, T, HandoverMode::Predictive));
  }
  for (const auto& partition : partitions) {
    const SweepRun run = runSweep(sites_, partition);
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      SCOPED_TRACE("site " + std::to_string(i) + " partition size " +
                   std::to_string(partition.size()));
      expectMatchesLegacy(eventsOf(run.events, i + 1), legacy[i]);
    }
  }
}

TEST_F(SessionSweepTest, FineEpochPartitionStillMatchesLegacy) {
  const double T = 1'800.0;
  std::vector<double> fine;
  for (double t = 60.0; t <= T; t += 60.0) fine.push_back(t);
  const SweepRun run = runSweep(sites_, fine);
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    SCOPED_TRACE("site " + std::to_string(i));
    expectMatchesLegacy(
        eventsOf(run.events, i + 1),
        simulateHandovers(*planner_, sites_[i], 0.0, T, HandoverMode::Predictive));
  }
}

TEST_F(SessionSweepTest, ReAssociateModeMatchesLegacyToo) {
  cfg_.mode = HandoverMode::ReAssociate;
  const double T = 1'200.0;
  const SweepRun run = runSweep(sites_, {400.0, 800.0, T});
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    SCOPED_TRACE("site " + std::to_string(i));
    expectMatchesLegacy(eventsOf(run.events, i + 1),
                        simulateHandovers(*planner_, sites_[i], 0.0, T,
                                          HandoverMode::ReAssociate));
  }
}

TEST_F(SessionSweepTest, FinalTableStateIsPartitionInvariant) {
  const double T = 1'800.0;
  const SweepRun one = runSweep(sites_, {T});
  const SweepRun uneven = runSweep(sites_, {250.0, 251.0, 900.0, T});
  std::vector<double> fine;
  for (double t = 60.0; t <= T; t += 60.0) fine.push_back(t);
  const SweepRun many = runSweep(sites_, fine);
  EXPECT_EQ(one.finalChecksum, uneven.finalChecksum);
  EXPECT_EQ(one.finalChecksum, many.finalChecksum);
}

// --- determinism ----------------------------------------------------------

TEST_F(SessionSweepTest, SerialAndParallelSweepsAreBitIdentical) {
  ThreadCountGuard guard;
  const std::vector<double> boundaries = {300.0, 900.0, 1'800.0};
  setParallelThreadCount(1);
  const SweepRun serial = runSweep(sites_, boundaries);
  for (const int threads : {2, 4, 16}) {
    setParallelThreadCount(threads);
    const SweepRun parallel = runSweep(sites_, boundaries);
    EXPECT_EQ(parallel.finalChecksum, serial.finalChecksum) << threads;
    ASSERT_EQ(parallel.stats.size(), serial.stats.size());
    for (std::size_t e = 0; e < serial.stats.size(); ++e) {
      EXPECT_EQ(parallel.stats[e].eventChecksum, serial.stats[e].eventChecksum)
          << threads << " epoch " << e;
      EXPECT_EQ(parallel.stats[e].handovers, serial.stats[e].handovers);
      EXPECT_EQ(bitsOf(parallel.stats[e].outageS), bitsOf(serial.stats[e].outageS));
    }
    ASSERT_EQ(parallel.events.size(), serial.events.size());
    for (std::size_t j = 0; j < serial.events.size(); ++j) {
      EXPECT_EQ(parallel.events[j].user, serial.events[j].user);
      EXPECT_EQ(bitsOf(parallel.events[j].atS), bitsOf(serial.events[j].atS));
    }
  }
}

// --- seeding --------------------------------------------------------------

TEST_F(SessionSweepTest, ClosestAssociationSeedingMatchesAssociateUsers) {
  std::vector<OrbitalElements> fleet;
  for (const SatelliteId sid : eph_.satellites()) {
    fleet.push_back(eph_.record(sid).elements);
  }
  const auto assoc = associateUsers(fleet, 0.0, sites_, mask_);
  SessionTable table(fleet.size());
  const HandoverSweep sweep(eph_, cfg_);
  sweep.seed(table, seedsFor(sites_), 0.0, SeedMode::ClosestAssociation);
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const auto view = table.find(i + 1);
    ASSERT_TRUE(view.has_value()) << i;
    if (assoc[i].covered) {
      EXPECT_EQ(view->state, SessionState::Serving) << i;
      EXPECT_EQ(view->servingSat, assoc[i].satelliteIndex) << i;
    } else {
      EXPECT_EQ(view->state, SessionState::Scanning) << i;
    }
  }
}

TEST_F(SessionSweepTest, SeedValidatesClockAndDuplicates) {
  SessionTable table(eph_.satellites().size());
  const HandoverSweep sweep(eph_, cfg_);
  const auto seeds = seedsFor(sites_);
  sweep.seed(table, seeds, 0.0, SeedMode::Planner);
  // Active duplicates are a caller bug.
  EXPECT_THROW(sweep.seed(table, seeds, 0.0, SeedMode::Planner),
               InvalidArgumentError);
  // Later seeds must arrive at the table clock (an epoch boundary).
  std::vector<SessionSeed> late = {
      SessionSeed{99, Geodetic::fromDegrees(10.0, 10.0), kNeverExpiresS, 7}};
  EXPECT_THROW(sweep.seed(table, late, 123.0, SeedMode::Planner),
               InvalidArgumentError);
  sweep.seed(table, late, 0.0, SeedMode::Planner);
  EXPECT_EQ(table.size(), sites_.size() + 1);
}

TEST_F(SessionSweepTest, RunEpochRequiresForwardTime) {
  SessionTable table(eph_.satellites().size());
  const HandoverSweep sweep(eph_, cfg_);
  sweep.seed(table, seedsFor(sites_), 0.0, SeedMode::Planner);
  EXPECT_THROW(sweep.runEpoch(table, 0.0), InvalidArgumentError);
  EXPECT_THROW(sweep.runEpoch(table, -5.0), InvalidArgumentError);
  sweep.runEpoch(table, 60.0);
  EXPECT_DOUBLE_EQ(table.clockS(), 60.0);
  EXPECT_THROW(sweep.runEpoch(table, 59.0), InvalidArgumentError);
}

// --- table accounting -----------------------------------------------------

TEST_F(SessionSweepTest, OccupancyTracksServingSessions) {
  SessionTable table(eph_.satellites().size());
  const HandoverSweep sweep(eph_, cfg_);
  sweep.seed(table, seedsFor(sites_), 0.0, SeedMode::Planner);
  const auto countServing = [&] {
    std::size_t n = 0;
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      const auto v = table.find(i + 1);
      n += (v && v->state == SessionState::Serving) ? 1 : 0;
    }
    return n;
  };
  const auto occupancySum = [&] {
    std::uint64_t n = 0;
    for (const std::uint64_t c : table.perSatelliteOccupancy()) n += c;
    return n;
  };
  EXPECT_EQ(occupancySum(), countServing());
  sweep.runEpoch(table, 900.0);
  EXPECT_EQ(occupancySum(), countServing());
  sweep.runEpoch(table, 1'800.0);
  EXPECT_EQ(occupancySum(), countServing());
}

TEST_F(SessionSweepTest, CertificateCacheCoversEveryHandover) {
  SessionTable table(eph_.satellites().size());
  const HandoverSweep sweep(eph_, cfg_);
  sweep.seed(table, seedsFor(sites_), 0.0, SeedMode::Planner);
  std::size_t handovers = 0, hits = 0, misses = 0;
  for (const double t1 : {600.0, 1'200.0, 1'800.0, 2'400.0}) {
    const EpochStats s = sweep.runEpoch(table, t1);
    handovers += s.handovers;
    hits += s.certCacheHits;
    misses += s.certCacheMisses;
  }
  ASSERT_GT(handovers, 0u);
  // Every executed handover runs exactly one certificate check.
  EXPECT_EQ(hits + misses, handovers);
  // Steady state: each user misses once (first handover), then hits.
  EXPECT_GT(hits, 0u);
  EXPECT_LE(misses, sites_.size());
  EXPECT_GT(table.certificateCacheApproxBytes(), 0u);
}

TEST_F(SessionSweepTest, TinyCertificateCacheBudgetStillWorks) {
  SessionTable table(eph_.satellites().size());
  const std::size_t previous = table.setCertificateCacheByteBudget(0);
  EXPECT_GT(previous, 0u);
  const HandoverSweep sweep(eph_, cfg_);
  sweep.seed(table, seedsFor(sites_), 0.0, SeedMode::Planner);
  std::size_t handovers = 0, hits = 0, misses = 0;
  for (const double t1 : {600.0, 1'200.0, 1'800.0}) {
    const EpochStats s = sweep.runEpoch(table, t1);
    handovers += s.handovers;
    hits += s.certCacheHits;
    misses += s.certCacheMisses;
  }
  // Accounting still exact, and the cache never exceeds one entry per
  // shard worth of bytes by much (newest-entry exemption).
  EXPECT_EQ(hits + misses, handovers);
}

TEST_F(SessionSweepTest, DisassociateRegionDropsAndReseedRestores) {
  SessionTable table(eph_.satellites().size());
  const HandoverSweep sweep(eph_, cfg_);
  sweep.seed(table, seedsFor(sites_), 0.0, SeedMode::Planner);
  sweep.runEpoch(table, 600.0);
  const std::size_t activeBefore = table.activeCount();
  // Drop everything within 500 km of London — exactly one test site.
  const std::size_t dropped =
      table.disassociateRegion(Geodetic::fromDegrees(51.5, -0.13), 500.0e3);
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(table.activeCount(), activeBefore - 1);
  const auto view = table.find(3);  // London is sites_[2] -> user 3
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->state, SessionState::Disassociated);
  EXPECT_EQ(view->servingSat, kNoSatellite);
  // The dropped user re-associates in place at the current clock.
  std::vector<SessionSeed> reseed = {
      SessionSeed{3, sites_[2], kNeverExpiresS, 0xBEEF}};
  sweep.seed(table, reseed, table.clockS(), SeedMode::ClosestAssociation);
  EXPECT_EQ(table.activeCount(), activeBefore);
  EXPECT_EQ(table.size(), sites_.size());  // in place, not a new slot
  const auto after = table.find(3);
  ASSERT_TRUE(after.has_value());
  EXPECT_NE(after->state, SessionState::Disassociated);
  EXPECT_EQ(after->certTag, 0xBEEFu);
  sweep.runEpoch(table, 1'200.0);  // and the run continues fine
}

TEST_F(SessionSweepTest, ExpiredCertificatesDropSessionsAtHandover) {
  cfg_.dropOnCertExpiry = true;
  SessionTable table(eph_.satellites().size());
  const HandoverSweep sweep(eph_, cfg_);
  // Certificates die at t=300: the first post-expiry handover drops each
  // session instead of adopting a successor.
  sweep.seed(table, seedsFor(sites_, 300.0), 0.0, SeedMode::Planner);
  std::size_t expiries = 0;
  for (const double t1 : {900.0, 1'800.0, 2'700.0, 3'600.0}) {
    expiries += sweep.runEpoch(table, t1).certExpiries;
  }
  EXPECT_GT(expiries, 0u);
  EXPECT_LT(table.activeCount(), sites_.size());
  bool sawDropped = false;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const auto v = table.find(i + 1);
    ASSERT_TRUE(v.has_value());
    if (v->state == SessionState::Disassociated) sawDropped = true;
  }
  EXPECT_TRUE(sawDropped);
}

TEST_F(SessionSweepTest, TableValidatesConstruction) {
  EXPECT_THROW(SessionTable(0), InvalidArgumentError);
  SessionTable table(66, 0);  // shard count clamps to >= 1
  EXPECT_EQ(table.shardCount(), 1u);
  EXPECT_EQ(table.fleetSize(), 66u);
  EXPECT_FALSE(table.find(1).has_value());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_GT(table.approxBytes(), 0u);
}

TEST_F(SessionSweepTest, SweepValidatesConstruction) {
  EphemerisService empty;
  EXPECT_THROW(HandoverSweep(empty, cfg_), InvalidArgumentError);
  SweepConfig bad = cfg_;
  bad.minElevationRad = -0.1;
  EXPECT_THROW(HandoverSweep(eph_, bad), InvalidArgumentError);
  const HandoverSweep sweep(eph_, cfg_);
  EXPECT_EQ(sweep.fleet().size(), eph_.satellites().size());
  EXPECT_GT(sweep.maxAngularRateRadPerS(), 0.0);
}

TEST(SessionStateNames, AllNamed) {
  for (const auto s : {SessionState::Serving, SessionState::Scanning,
                       SessionState::Disassociated}) {
    EXPECT_NE(sessionStateName(s), "?");
  }
}

// --- sim scenarios --------------------------------------------------------

class SessionScenarioTest : public ::testing::Test {
 protected:
  SessionScenarioTest() {
    for (const auto& el : makeWalkerStar(iridiumConfig())) {
      eph_.publish(ProviderId{1}, el);
    }
    cfg_.baseUsers = 400;
    cfg_.epochS = 60.0;
    cfg_.epochCount = 4;
  }
  EphemerisService eph_;
  SessionScenarioConfig cfg_;
};

TEST_F(SessionScenarioTest, FlashCrowdIsDeterministicAndAdmitsTheCrowd) {
  const Geodetic center = Geodetic::fromDegrees(51.5, -0.13);
  const auto a = runFlashCrowdScenario(eph_, cfg_, center, 50.0e3, 120);
  const auto b = runFlashCrowdScenario(eph_, cfg_, center, 50.0e3, 120);
  EXPECT_EQ(a.finalStateChecksum, b.finalStateChecksum);
  EXPECT_EQ(a.seededUsers, cfg_.baseUsers + 120);
  EXPECT_EQ(a.epochs.size(), cfg_.epochCount);
  EXPECT_GT(a.finalActive, 0u);
}

TEST_F(SessionScenarioTest, RegionalOutageDropsAndRecovers) {
  // A generous radius around New York catches base-population users.
  const Geodetic center = Geodetic::fromDegrees(40.7, -74.0);
  const auto res = runRegionalOutageScenario(eph_, cfg_, center, 1'500.0e3);
  EXPECT_GT(res.droppedSessions, 0u);
  // Every dropped user re-associated one epoch later.
  EXPECT_EQ(res.seededUsers, cfg_.baseUsers + res.droppedSessions);
  const auto res2 = runRegionalOutageScenario(eph_, cfg_, center, 1'500.0e3);
  EXPECT_EQ(res.finalStateChecksum, res2.finalStateChecksum);
}

TEST_F(SessionScenarioTest, DiurnalLoadShiftAdmitsArrivalsDeterministically) {
  const auto a = runDiurnalLoadShiftScenario(eph_, cfg_, 80);
  const auto b = runDiurnalLoadShiftScenario(eph_, cfg_, 80);
  EXPECT_EQ(a.finalStateChecksum, b.finalStateChecksum);
  EXPECT_GE(a.seededUsers, cfg_.baseUsers);
  // The diurnal factor is in [0.3, 1.0]: some arrivals must be admitted.
  EXPECT_GT(a.seededUsers, cfg_.baseUsers);
}

TEST_F(SessionScenarioTest, ScenariosAreThreadCountInvariant) {
  ThreadCountGuard guard;
  const Geodetic center = Geodetic::fromDegrees(40.7, -74.0);
  setParallelThreadCount(1);
  const auto serial = runRegionalOutageScenario(eph_, cfg_, center, 1'000.0e3);
  setParallelThreadCount(8);
  const auto parallel = runRegionalOutageScenario(eph_, cfg_, center, 1'000.0e3);
  EXPECT_EQ(serial.finalStateChecksum, parallel.finalStateChecksum);
  EXPECT_EQ(serial.droppedSessions, parallel.droppedSessions);
  ASSERT_EQ(serial.epochs.size(), parallel.epochs.size());
  for (std::size_t e = 0; e < serial.epochs.size(); ++e) {
    EXPECT_EQ(serial.epochs[e].eventChecksum, parallel.epochs[e].eventChecksum);
  }
}

}  // namespace
}  // namespace openspace
