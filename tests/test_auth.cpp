// Unit tests for the auth module: keyed tags, certificates, RADIUS-style
// authentication, and the user association state machine.
#include <gtest/gtest.h>

#include <limits>

#include <openspace/auth/association.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {
namespace {

TEST(KeyedTag, DeterministicAndKeySensitive) {
  EXPECT_EQ(keyedTag(1, "hello"), keyedTag(1, "hello"));
  EXPECT_NE(keyedTag(1, "hello"), keyedTag(2, "hello"));
  EXPECT_NE(keyedTag(1, "hello"), keyedTag(1, "hellp"));
  EXPECT_NE(keyedTag(1, ""), keyedTag(2, ""));
}

TEST(Certificate, IssueAndVerify) {
  const CertificateAuthority ca(ProviderId{5}, 0xDEADBEEF, 3600.0);
  const Certificate cert = ca.issue(42, 100.0);
  EXPECT_EQ(cert.user, 42u);
  EXPECT_EQ(cert.homeProvider, ProviderId{5u});
  EXPECT_DOUBLE_EQ(cert.issuedAtS, 100.0);
  EXPECT_DOUBLE_EQ(cert.expiresAtS, 3700.0);
  EXPECT_TRUE(ca.verify(cert, 200.0));
}

TEST(Certificate, ExpiryEnforced) {
  const CertificateAuthority ca(ProviderId{5}, 1, 100.0);
  const Certificate cert = ca.issue(42, 0.0);
  EXPECT_TRUE(ca.verify(cert, 99.9));
  EXPECT_FALSE(ca.verify(cert, 100.0));
  EXPECT_TRUE(cert.expired(150.0));
}

TEST(Certificate, TamperingDetected) {
  const CertificateAuthority ca(ProviderId{5}, 0xABCD, 3600.0);
  Certificate cert = ca.issue(42, 0.0);
  cert.user = 43;  // forge a different user
  EXPECT_FALSE(ca.verify(cert, 10.0));
  Certificate cert2 = ca.issue(42, 0.0);
  cert2.expiresAtS += 1e6;  // extend validity
  EXPECT_FALSE(ca.verify(cert2, 10.0));
}

TEST(Certificate, WrongAuthorityRejects) {
  const CertificateAuthority caA(ProviderId{1}, 111, 3600.0);
  const CertificateAuthority caB(ProviderId{2}, 222, 3600.0);
  const Certificate cert = caA.issue(42, 0.0);
  EXPECT_FALSE(caB.verify(cert, 10.0));
}

TEST(Certificate, InvalidLifetimeThrows) {
  EXPECT_THROW(CertificateAuthority(ProviderId{1}, 1, 0.0), InvalidArgumentError);
}

TEST(Radius, AcceptsValidCredentials) {
  RadiusServer server(ProviderId{3}, 0xFEED);
  server.enroll(7, 0x1234);
  AccessRequest req;
  req.user = 7;
  req.homeProvider = ProviderId{3};
  req.nonce = "n-1";
  req.credentialProof = RadiusServer::proveCredential(0x1234, "n-1");
  const AccessResponse resp = server.authenticate(req, 50.0);
  EXPECT_TRUE(resp.accepted);
  EXPECT_TRUE(server.authority().verify(resp.certificate, 60.0));
  EXPECT_EQ(resp.certificate.user, 7u);
}

TEST(Radius, RejectsBadProofUnknownUserWrongProvider) {
  RadiusServer server(ProviderId{3}, 0xFEED);
  server.enroll(7, 0x1234);
  AccessRequest req;
  req.user = 7;
  req.homeProvider = ProviderId{3};
  req.nonce = "n-1";
  req.credentialProof = RadiusServer::proveCredential(0x9999, "n-1");
  EXPECT_FALSE(server.authenticate(req, 0.0).accepted);  // wrong secret

  req.credentialProof = RadiusServer::proveCredential(0x1234, "n-2");
  EXPECT_FALSE(server.authenticate(req, 0.0).accepted);  // replayed nonce

  req.user = 8;  // unknown subscriber
  req.credentialProof = RadiusServer::proveCredential(0x1234, "n-1");
  EXPECT_FALSE(server.authenticate(req, 0.0).accepted);

  req.user = 7;
  req.homeProvider = ProviderId{4};  // wrong home
  EXPECT_FALSE(server.authenticate(req, 0.0).accepted);
}

TEST(Radius, RevocationWorks) {
  RadiusServer server(ProviderId{3}, 0xFEED);
  server.enroll(7, 0x1234);
  EXPECT_EQ(server.subscriberCount(), 1u);
  server.revoke(7);
  EXPECT_EQ(server.subscriberCount(), 0u);
  EXPECT_THROW(server.revoke(7), NotFoundError);
  AccessRequest req;
  req.user = 7;
  req.homeProvider = ProviderId{3};
  req.nonce = "n";
  req.credentialProof = RadiusServer::proveCredential(0x1234, "n");
  EXPECT_FALSE(server.authenticate(req, 0.0).accepted);
}

// --- association --------------------------------------------------------------

class AssociationTest : public ::testing::Test {
 protected:
  AssociationTest()
      : server_(ProviderId{1}, 0xCAFE),
        schedule_(2.0),
        user_(Geodetic::fromDegrees(40.44, -79.99)) {
    // Interleave two providers across the Iridium constellation.
    int i = 0;
    for (const auto& el : makeWalkerStar(iridiumConfig())) {
      eph_.publish(ProviderId{static_cast<std::uint32_t>(1 + (i++ % 2))}, el);
    }
    builder_ = std::make_unique<TopologyBuilder>(eph_);
    // Provider 1's gateway (where its RADIUS server lives).
    gateway_ = builder_->nodeOf(builder_->addGroundStation(
        {"home-gw", Geodetic::fromDegrees(47.0, -122.0), ProviderId{1}}));
    server_.enroll(1, 0xABC);
    opt_.wiring = IslWiring::PlusGrid;
    opt_.planes = 6;
    opt_.minElevationRad = deg2rad(10.0);
  }

  std::vector<BeaconMessage> beaconsAt(double t) const {
    std::vector<BeaconMessage> out;
    for (const SatelliteId sid : eph_.satellites()) {
      BeaconMessage b;
      b.satellite = sid;
      b.provider = eph_.record(sid).owner;
      b.txTimeS = t;
      b.elements = eph_.record(sid).elements;
      out.push_back(std::move(b));
    }
    return out;
  }

  EphemerisService eph_;
  std::unique_ptr<TopologyBuilder> builder_;
  RadiusServer server_;
  BeaconSchedule schedule_;
  Geodetic user_;
  NodeId gateway_{};
  SnapshotOptions opt_;
};

TEST_F(AssociationTest, SelectsClosestVisibleSatellite) {
  AssociationAgent agent(1, ProviderId{1}, 0xABC, user_);
  const auto chosen =
      agent.selectSatellite(beaconsAt(0.0), 0.0, deg2rad(10.0));
  ASSERT_TRUE(chosen.has_value());
  // Verify it is indeed the closest visible one.
  const Vec3 userEcef = geodeticToEcef(user_);
  double chosenRange = 0.0, bestRange = 1e18;
  for (const SatelliteId sid : eph_.satellites()) {
    const Vec3 satEcef = eciToEcef(eph_.positionEci(sid, 0.0), 0.0);
    if (elevationAngleRad(userEcef, satEcef) < deg2rad(10.0)) continue;
    const double range = userEcef.distanceTo(satEcef);
    bestRange = std::min(bestRange, range);
    if (sid == *chosen) chosenRange = range;
  }
  EXPECT_DOUBLE_EQ(chosenRange, bestRange);
}

TEST_F(AssociationTest, SelectIndexBoundaryIsInvisible) {
  // The indexed mega-constellation path of selectSatellite engages at
  // kSelectIndexMinBeacons. The crossover must be pure performance: on
  // either side of the boundary the winner equals the brute first-wins
  // ascending scan, for users that see many satellites and users that see
  // none.
  WalkerConfig cfg;
  cfg.totalSatellites = static_cast<int>(kSelectIndexMinBeacons) + 1;
  cfg.planes = 27;  // 513 = 27 * 19
  cfg.phasing = 5;
  cfg.altitudeM = km(550.0);
  cfg.inclinationRad = deg2rad(53.0);
  const auto fleet = makeWalkerDelta(cfg);

  std::vector<BeaconMessage> all;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    BeaconMessage b;
    b.satellite = SatelliteId{static_cast<std::uint32_t>(i) + 1000u};
    b.provider = ProviderId{1};
    b.elements = fleet[i];
    all.push_back(std::move(b));
  }

  const double t = 30.0, mask = deg2rad(25.0);
  const std::vector<Geodetic> sites = {
      Geodetic::fromDegrees(40.44, -79.99),
      Geodetic::fromDegrees(-33.9, 18.4),
      Geodetic::fromDegrees(89.0, 0.0),  // above the 53-degree shell: no view
  };
  for (const Geodetic& site : sites) {
    AssociationAgent agent(1, ProviderId{1}, 0xABC, site);
    const Vec3 userEcef = geodeticToEcef(site);
    for (const std::size_t n :
         {kSelectIndexMinBeacons - 1, kSelectIndexMinBeacons,
          kSelectIndexMinBeacons + 1}) {
      const std::vector<BeaconMessage> beacons(all.begin(),
                                               all.begin() + static_cast<std::ptrdiff_t>(n));
      // Brute replica of the small-list scan.
      std::optional<SatelliteId> expect;
      double bestRange = std::numeric_limits<double>::infinity();
      for (const BeaconMessage& b : beacons) {
        const Vec3 satEcef = eciToEcef(positionEci(b.elements, t), t);
        if (elevationAngleRad(userEcef, satEcef) < mask) continue;
        const double range = userEcef.distanceTo(satEcef);
        if (range < bestRange) {
          bestRange = range;
          expect = b.satellite;
        }
      }
      EXPECT_EQ(agent.selectSatellite(beacons, t, mask), expect) << n;
    }
  }
}

TEST_F(AssociationTest, FullAssociationIssuesRoamingCertificate) {
  AssociationAgent agent(1, ProviderId{1}, 0xABC, user_);
  const NetworkGraph g = builder_->snapshot(0.0, opt_);
  const AssociationResult res =
      agent.associate(beaconsAt(0.0), g, *builder_, server_, gateway_, 0.0,
                      deg2rad(10.0), schedule_);
  ASSERT_TRUE(res.success) << res.failureReason;
  EXPECT_EQ(agent.state(), AssociationState::Associated);
  EXPECT_TRUE(agent.certificate().has_value());
  EXPECT_TRUE(server_.authority().verify(res.certificate,
                                         res.certificate.issuedAtS + 1.0));
  EXPECT_GT(res.authLatencyS, 0.0);
  EXPECT_GE(res.beaconScanLatencyS, 0.0);
  EXPECT_LE(res.beaconScanLatencyS, schedule_.periodS());
  EXPECT_EQ(agent.servingSatellite(), res.servingSatellite);
}

TEST_F(AssociationTest, RoamingOntoForeignSatelliteStillAuthenticatesHome) {
  AssociationAgent agent(1, ProviderId{1}, 0xABC, user_);
  const NetworkGraph g = builder_->snapshot(0.0, opt_);
  const AssociationResult res =
      agent.associate(beaconsAt(0.0), g, *builder_, server_, gateway_, 0.0,
                      deg2rad(10.0), schedule_);
  ASSERT_TRUE(res.success);
  // Whoever serves, the certificate comes from the home provider.
  EXPECT_EQ(res.certificate.homeProvider, ProviderId{1u});
}

TEST_F(AssociationTest, WrongCredentialFailsCleanly) {
  AssociationAgent agent(1, ProviderId{1}, 0xBAD, user_);  // wrong secret
  const NetworkGraph g = builder_->snapshot(0.0, opt_);
  const AssociationResult res =
      agent.associate(beaconsAt(0.0), g, *builder_, server_, gateway_, 0.0,
                      deg2rad(10.0), schedule_);
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.failureReason.find("RADIUS"), std::string::npos);
  EXPECT_EQ(agent.state(), AssociationState::Scanning);
  EXPECT_FALSE(agent.certificate().has_value());
}

TEST_F(AssociationTest, NoVisibleSatelliteFails) {
  AssociationAgent agent(1, ProviderId{1}, 0xABC, user_);
  const NetworkGraph g = builder_->snapshot(0.0, opt_);
  const AssociationResult res =
      agent.associate({}, g, *builder_, server_, gateway_, 0.0, deg2rad(10.0),
                      schedule_);
  EXPECT_FALSE(res.success);
}

TEST_F(AssociationTest, MoveRequiresReassociation) {
  AssociationAgent agent(1, ProviderId{1}, 0xABC, user_);
  const NetworkGraph g = builder_->snapshot(0.0, opt_);
  ASSERT_TRUE(agent
                  .associate(beaconsAt(0.0), g, *builder_, server_, gateway_,
                             0.0, deg2rad(10.0), schedule_)
                  .success);
  agent.moveTo(Geodetic::fromDegrees(-33.87, 151.21));
  EXPECT_EQ(agent.state(), AssociationState::Disassociated);
  EXPECT_FALSE(agent.certificate().has_value());
  EXPECT_FALSE(agent.servingSatellite().has_value());
}

TEST_F(AssociationTest, SuccessorAdoptionSkipsReauth) {
  AssociationAgent agent(1, ProviderId{1}, 0xABC, user_);
  const NetworkGraph g = builder_->snapshot(0.0, opt_);
  const auto res = agent.associate(beaconsAt(0.0), g, *builder_, server_,
                                   gateway_, 0.0, deg2rad(10.0), schedule_);
  ASSERT_TRUE(res.success);
  const Certificate before = *agent.certificate();
  agent.adoptSuccessor(SatelliteId{res.servingSatellite.value() + 1});
  EXPECT_EQ(agent.state(), AssociationState::Associated);
  EXPECT_EQ(agent.servingSatellite(), SatelliteId{res.servingSatellite.value() + 1});
  // Certificate unchanged: no re-authentication happened.
  EXPECT_EQ(agent.certificate()->tag, before.tag);
}

TEST_F(AssociationTest, AdoptWithoutAssociationThrows) {
  AssociationAgent agent(1, ProviderId{1}, 0xABC, user_);
  EXPECT_THROW(agent.adoptSuccessor(SatelliteId{5}), StateError);
}

TEST_F(AssociationTest, TimedAdoptionKeepsCertificateWhileValid) {
  AssociationAgent agent(1, ProviderId{1}, 0xABC, user_);
  const NetworkGraph g = builder_->snapshot(0.0, opt_);
  const auto res = agent.associate(beaconsAt(0.0), g, *builder_, server_,
                                   gateway_, 0.0, deg2rad(10.0), schedule_);
  ASSERT_TRUE(res.success);
  const Certificate before = *agent.certificate();
  const SatelliteId succ{res.servingSatellite.value() + 1};
  // Associated -> Associated: the predictive handover sticks, certificate
  // untouched (no re-authentication).
  EXPECT_TRUE(agent.adoptSuccessor(succ, before.expiresAtS - 1.0));
  EXPECT_EQ(agent.state(), AssociationState::Associated);
  EXPECT_EQ(agent.servingSatellite(), succ);
  EXPECT_EQ(agent.certificate()->tag, before.tag);
}

TEST_F(AssociationTest, TimedAdoptionOnExpiredCertificateDisassociates) {
  AssociationAgent agent(1, ProviderId{1}, 0xABC, user_);
  const NetworkGraph g = builder_->snapshot(0.0, opt_);
  const auto res = agent.associate(beaconsAt(0.0), g, *builder_, server_,
                                   gateway_, 0.0, deg2rad(10.0), schedule_);
  ASSERT_TRUE(res.success);
  const double expiry = agent.certificate()->expiresAtS;
  const SatelliteId succ{res.servingSatellite.value() + 1};
  // Associated -> Disassociated: an expired roaming certificate cannot
  // ride a predictive handover (expiry is inclusive: nowS == expiresAtS).
  EXPECT_FALSE(agent.adoptSuccessor(succ, expiry));
  EXPECT_EQ(agent.state(), AssociationState::Disassociated);
  EXPECT_FALSE(agent.certificate().has_value());
  EXPECT_FALSE(agent.servingSatellite().has_value());
  // And a further adoption now throws, like any non-associated agent.
  EXPECT_THROW(agent.adoptSuccessor(succ, expiry + 1.0), StateError);
}

TEST_F(AssociationTest, TimedAdoptionWithoutAssociationThrows) {
  AssociationAgent agent(1, ProviderId{1}, 0xABC, user_);
  EXPECT_THROW(agent.adoptSuccessor(SatelliteId{5}, 0.0), StateError);
}

TEST(AssociationStateNames, AllNamed) {
  for (const auto s : {AssociationState::Scanning, AssociationState::Authenticating,
                       AssociationState::Associated,
                       AssociationState::Disassociated}) {
    EXPECT_NE(associationStateName(s), "?");
  }
}

}  // namespace
}  // namespace openspace
