// Unit tests for the population/demand model (§5(1)) and demand-weighted
// coverage.
#include <gtest/gtest.h>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/coverage/coverage.hpp>
#include <openspace/sim/population.hpp>

namespace openspace {
namespace {

TEST(Population, DefaultModelIsSane) {
  const PopulationModel model = defaultWorldPopulation();
  EXPECT_GE(model.centers().size(), 20u);
  EXPECT_GT(model.totalWeightMillions(), 300.0);
}

TEST(Population, ConstructionValidation) {
  EXPECT_THROW(PopulationModel({}, 0.3), InvalidArgumentError);
  std::vector<PopulationCenter> centers = {
      {"x", Geodetic::fromDegrees(0, 0), 1.0}};
  EXPECT_THROW(PopulationModel(centers, -0.1), InvalidArgumentError);
  EXPECT_THROW(PopulationModel(centers, 1.1), InvalidArgumentError);
  std::vector<PopulationCenter> bad = {{"x", Geodetic::fromDegrees(0, 0), 0.0}};
  EXPECT_THROW(PopulationModel(bad, 0.3), InvalidArgumentError);
}

TEST(Population, SamplingIsDeterministicAndBounded) {
  const PopulationModel model = defaultWorldPopulation();
  Rng a(5), b(5);
  const auto ua = model.sampleUsers(500, a);
  const auto ub = model.sampleUsers(500, b);
  ASSERT_EQ(ua.size(), 500u);
  for (std::size_t i = 0; i < ua.size(); ++i) {
    EXPECT_DOUBLE_EQ(ua[i].location.latitudeRad, ub[i].location.latitudeRad);
    EXPECT_GE(ua[i].weight, 1.0);
    EXPECT_LE(std::abs(ua[i].location.latitudeRad), std::numbers::pi / 2);
  }
  Rng c(5);
  EXPECT_TRUE(model.sampleUsers(0, c).empty());
  EXPECT_THROW(model.sampleUsers(-1, c), InvalidArgumentError);
}

TEST(Population, UrbanSamplesClusterNearCenters) {
  // With zero rural fraction every sample lies within ~1000 km of a center.
  std::vector<PopulationCenter> centers = {
      {"tokyo", Geodetic::fromDegrees(35.68, 139.69), 10.0},
      {"paris", Geodetic::fromDegrees(48.86, 2.35), 10.0}};
  const PopulationModel model(centers, 0.0);
  Rng rng(9);
  for (const auto& u : model.sampleUsers(300, rng)) {
    double nearest = 1e18;
    for (const auto& c : centers) {
      nearest = std::min(nearest, greatCircleDistanceM(u.location, c.location));
    }
    EXPECT_LT(nearest, 1'200e3);
  }
}

TEST(Population, RuralSamplesSpreadGlobally) {
  std::vector<PopulationCenter> centers = {
      {"tokyo", Geodetic::fromDegrees(35.68, 139.69), 10.0}};
  const PopulationModel model(centers, 1.0);  // all rural
  Rng rng(11);
  const auto users = model.sampleUsers(2000, rng);
  int west = 0;
  for (const auto& u : users) {
    EXPECT_LE(std::abs(u.location.latitudeRad), deg2rad(65.0));
    if (u.location.longitudeRad < 0) ++west;
  }
  // Roughly half the globe is west of Greenwich.
  EXPECT_NEAR(static_cast<double>(west) / 2000.0, 0.5, 0.06);
}

TEST(Population, DemandCoverageOfGlobalFleetIsNearTotal) {
  const PopulationModel model = defaultWorldPopulation();
  const auto sats = makeWalkerStar(iridiumConfig());
  Rng rng(13);
  const double cov =
      model.demandWeightedCoverage(sats, 0.0, deg2rad(10.0), 2000, rng);
  EXPECT_GT(cov, 0.97);
  Rng rng2(13);
  EXPECT_DOUBLE_EQ(model.demandWeightedCoverage({}, 0.0, 0.1, 100, rng2), 0.0);
  EXPECT_THROW(model.demandWeightedCoverage(sats, 0.0, 0.1, 0, rng2),
               InvalidArgumentError);
}

TEST(Population, EquatorialShellFavorsDemandOverArea) {
  // A low-inclination shell misses the poles (no demand there) but covers
  // the urban belt: demand-weighted coverage should exceed area coverage.
  WalkerConfig wc;
  wc.totalSatellites = 36;
  wc.planes = 6;
  wc.phasing = 1;
  wc.altitudeM = km(780.0);
  wc.inclinationRad = deg2rad(35.0);
  const auto sats = makeWalkerDelta(wc);
  const PopulationModel model = defaultWorldPopulation();
  Rng a(15), b(15);
  const double demandCov =
      model.demandWeightedCoverage(sats, 0.0, deg2rad(10.0), 3000, a);
  const double areaCov =
      monteCarloCoverage(sats, 0.0, deg2rad(10.0), 3000, b).coverageFraction;
  EXPECT_GT(demandCov, areaCov);
}

TEST(Diurnal, PeaksEveningTroughsMorning) {
  const double lon = 0.0;
  const double peak = diurnalDemandFactor(20.0 * 3600.0, lon);
  const double trough = diurnalDemandFactor(8.0 * 3600.0, lon);
  EXPECT_NEAR(peak, 1.0, 1e-9);
  EXPECT_NEAR(trough, 0.3, 1e-9);
  // Bounded everywhere.
  for (double t = 0.0; t < 86'400.0; t += 3'600.0) {
    const double f = diurnalDemandFactor(t, lon);
    EXPECT_GE(f, 0.3 - 1e-9);
    EXPECT_LE(f, 1.0 + 1e-9);
  }
}

TEST(Diurnal, LongitudeShiftsLocalTime) {
  // 90 deg east is 6 hours ahead: UTC 14:00 there is local 20:00 (peak).
  const double utc = 14.0 * 3600.0;
  EXPECT_NEAR(diurnalDemandFactor(utc, deg2rad(90.0)), 1.0, 1e-9);
  EXPECT_LT(diurnalDemandFactor(utc, 0.0),
            diurnalDemandFactor(utc, deg2rad(90.0)));
  // Periodic in 24 h.
  EXPECT_NEAR(diurnalDemandFactor(5'000.0, 0.3),
              diurnalDemandFactor(5'000.0 + 86'400.0, 0.3), 1e-9);
}

}  // namespace
}  // namespace openspace
