// Unit tests for the security module (§5(6)): authenticated encryption,
// reputation/quarantine, ledger auditing, quarantine-aware routing.
#include <gtest/gtest.h>

#include <openspace/econ/ledger.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/security/crypto.hpp>
#include <openspace/security/reputation.hpp>

namespace openspace {
namespace {

TEST(SecureChannel, RoundTrip) {
  const SecureChannel ch(0xDEADBEEFCAFEull);
  const SealedMessage msg = ch.seal("user payload over ISLs", 1);
  const auto plain = ch.open(msg);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, "user payload over ISLs");
}

TEST(SecureChannel, CiphertextDiffersFromPlaintext) {
  const SecureChannel ch(42);
  const SealedMessage msg = ch.seal("secret", 7);
  std::string raw(msg.ciphertext.begin(), msg.ciphertext.end());
  EXPECT_NE(raw, "secret");
  EXPECT_EQ(msg.ciphertext.size(), 6u);
}

TEST(SecureChannel, TamperingDetected) {
  const SecureChannel ch(42);
  SealedMessage msg = ch.seal("do not modify", 9);
  msg.ciphertext[3] ^= 0x01;  // a malicious relay flips one bit
  EXPECT_EQ(ch.open(msg), std::nullopt);
}

TEST(SecureChannel, TagForgeryDetected) {
  const SecureChannel ch(42);
  SealedMessage msg = ch.seal("payload", 11);
  msg.tag ^= 1;
  EXPECT_EQ(ch.open(msg), std::nullopt);
  SealedMessage msg2 = ch.seal("payload", 11);
  msg2.nonce = 12;  // replay under a different nonce
  EXPECT_EQ(ch.open(msg2), std::nullopt);
}

TEST(SecureChannel, WrongKeyCannotOpen) {
  const SecureChannel alice(1111);
  const SecureChannel eve(2222);
  const SealedMessage msg = alice.seal("for bob only", 3);
  EXPECT_EQ(eve.open(msg), std::nullopt);
}

TEST(SecureChannel, NoncesChangeCiphertext) {
  const SecureChannel ch(42);
  const SealedMessage a = ch.seal("same text", 1);
  const SealedMessage b = ch.seal("same text", 2);
  EXPECT_NE(a.ciphertext, b.ciphertext);
  EXPECT_NE(a.tag, b.tag);
}

TEST(SecureChannel, SessionKeyDerivationIsSymmetric) {
  const auto kAB = SecureChannel::deriveSessionKey(111, 222);
  const auto kBA = SecureChannel::deriveSessionKey(222, 111);
  EXPECT_EQ(kAB, kBA);
  EXPECT_NE(kAB, SecureChannel::deriveSessionKey(111, 333));
  // Both sides can talk using the derived key.
  const SecureChannel a(kAB), b(kBA);
  const auto opened = b.open(a.seal("hello", 5));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, "hello");
}

TEST(SecureChannel, EmptyMessageRoundTrips) {
  const SecureChannel ch(42);
  const auto opened = ch.open(ch.seal("", 1));
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

// --- reputation ---------------------------------------------------------------

TEST(Reputation, StartsTrustedDegradesWithEvidence) {
  ReputationTracker rep(0.5);
  EXPECT_GT(rep.score(ProviderId{7}), 0.5);
  EXPECT_FALSE(rep.quarantined(ProviderId{7}));
  for (int i = 0; i < 12; ++i) {
    rep.reportMisbehavior(ProviderId{7}, MisbehaviorKind::TamperedPayload);
  }
  EXPECT_LT(rep.score(ProviderId{7}), 0.5);
  EXPECT_TRUE(rep.quarantined(ProviderId{7}));
  EXPECT_EQ(rep.quarantinedProviders(), std::vector<ProviderId>{ProviderId{7}});
}

TEST(Reputation, GoodServiceRestoresTrust) {
  ReputationTracker rep(0.5);
  for (int i = 0; i < 12; ++i) {
    rep.reportMisbehavior(ProviderId{3}, MisbehaviorKind::LedgerInflation);
  }
  ASSERT_TRUE(rep.quarantined(ProviderId{3}));
  for (int i = 0; i < 40; ++i) rep.reportGoodService(ProviderId{3});
  EXPECT_FALSE(rep.quarantined(ProviderId{3}));
}

TEST(Reputation, IncidentBookkeeping) {
  ReputationTracker rep;
  rep.reportMisbehavior(ProviderId{5}, MisbehaviorKind::AuthAbuse);
  rep.reportMisbehavior(ProviderId{5}, MisbehaviorKind::AuthAbuse);
  rep.reportMisbehavior(ProviderId{5}, MisbehaviorKind::Interception, 0.5);
  const auto inc = rep.incidents(ProviderId{5});
  EXPECT_EQ(inc.at(MisbehaviorKind::AuthAbuse), 2);
  EXPECT_EQ(inc.at(MisbehaviorKind::Interception), 1);
  EXPECT_TRUE(rep.incidents(ProviderId{99}).empty());
}

TEST(Reputation, Validation) {
  EXPECT_THROW(ReputationTracker(0.0), InvalidArgumentError);
  EXPECT_THROW(ReputationTracker(1.0), InvalidArgumentError);
  EXPECT_THROW(ReputationTracker(0.5, 0.0, 1.0), InvalidArgumentError);
  ReputationTracker rep;
  EXPECT_THROW(rep.reportMisbehavior(ProviderId{1}, MisbehaviorKind::AuthAbuse, -1.0),
               InvalidArgumentError);
  EXPECT_THROW(rep.reportGoodService(ProviderId{1}, -1.0), InvalidArgumentError);
}

TEST(MisbehaviorNames, AllNamed) {
  for (const auto k : {MisbehaviorKind::LedgerInflation,
                       MisbehaviorKind::TamperedPayload,
                       MisbehaviorKind::AuthAbuse, MisbehaviorKind::Interception}) {
    EXPECT_NE(misbehaviorName(k), "?");
  }
}

// --- ledger auditing ------------------------------------------------------------

/// Engine with three providers and one honest traffic relationship:
/// carrier 2 carried 1 MB for owner 1, witnessed by provider 3.
SettlementEngine honestEngine() {
  SettlementEngine engine;
  for (ProviderId p : {ProviderId{1u}, ProviderId{2u}, ProviderId{3u}}) engine.addProvider(p);
  // All three parties record the same carriage (as recordRouteTraffic would).
  for (ProviderId p : {ProviderId{1u}, ProviderId{2u}, ProviderId{3u}}) {
    const_cast<TrafficLedger&>(engine.ledger(p)).record(ProviderId{2}, ProviderId{1}, 1e6);
  }
  return engine;
}

TEST(Audit, CleanBooksProduceNoFindings) {
  const SettlementEngine engine = honestEngine();
  EXPECT_TRUE(auditLedgers(engine).empty());
}

TEST(Audit, InflatedCarrierIsSuspected) {
  SettlementEngine engine = honestEngine();
  // Carrier 2 inflates its claim by 50%.
  const_cast<TrafficLedger&>(engine.ledger(ProviderId{2})).record(ProviderId{2}, ProviderId{1}, 5e5);
  const auto findings = auditLedgers(engine);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].carrier, ProviderId{2u});
  EXPECT_EQ(findings[0].owner, ProviderId{1u});
  EXPECT_EQ(findings[0].suspected, ProviderId{2u});  // witness 3 backs the owner
  EXPECT_DOUBLE_EQ(findings[0].carrierClaimBytes, 1.5e6);
  EXPECT_DOUBLE_EQ(findings[0].ownerClaimBytes, 1e6);
}

TEST(Audit, UnderstatingOwnerIsSuspected) {
  SettlementEngine engine;
  for (ProviderId p : {ProviderId{1u}, ProviderId{2u}, ProviderId{3u}}) engine.addProvider(p);
  const_cast<TrafficLedger&>(engine.ledger(ProviderId{2})).record(ProviderId{2}, ProviderId{1}, 1e6);
  const_cast<TrafficLedger&>(engine.ledger(ProviderId{3})).record(ProviderId{2}, ProviderId{1}, 1e6);
  // Owner 1 claims only half (dodging the bill).
  const_cast<TrafficLedger&>(engine.ledger(ProviderId{1})).record(ProviderId{2}, ProviderId{1}, 5e5);
  const auto findings = auditLedgers(engine);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].suspected, ProviderId{1u});
}

TEST(Audit, NoWitnessMeansNoAttribution) {
  SettlementEngine engine;
  engine.addProvider(ProviderId{1});
  engine.addProvider(ProviderId{2});
  const_cast<TrafficLedger&>(engine.ledger(ProviderId{2})).record(ProviderId{2}, ProviderId{1}, 2e6);
  const_cast<TrafficLedger&>(engine.ledger(ProviderId{1})).record(ProviderId{2}, ProviderId{1}, 1e6);
  const auto findings = auditLedgers(engine);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].suspected, ProviderId{0u});
}

TEST(Audit, FindingsFeedReputationAndQuarantine) {
  SettlementEngine engine = honestEngine();
  const_cast<TrafficLedger&>(engine.ledger(ProviderId{2})).record(ProviderId{2}, ProviderId{1}, 9e6);  // 10x fraud
  ReputationTracker rep(0.8);
  applyAuditFindings(auditLedgers(engine), rep);
  EXPECT_LT(rep.score(ProviderId{2}), rep.score(ProviderId{1}));
  EXPECT_TRUE(rep.quarantined(ProviderId{2}));
  const auto inc = rep.incidents(ProviderId{2});
  EXPECT_EQ(inc.at(MisbehaviorKind::LedgerInflation), 1);
}

// --- quarantine-aware routing ----------------------------------------------------

TEST(QuarantineRouting, CutsOffBadActorsLinks) {
  // Line: 1(P1) - 2(P2) - 4(P1); diamond alternative 1 - 3(P3) - 4.
  NetworkGraph g;
  auto addNode = [&](NodeId id, ProviderId p) {
    Node n;
    n.id = id;
    n.kind = NodeKind::Satellite;
    n.provider = p;
    n.name = std::to_string(id.value());
    n.satellite = SatelliteId{id.value()};
    g.addNode(std::move(n));
  };
  addNode(NodeId{1}, ProviderId{1});
  addNode(NodeId{2}, ProviderId{2});
  addNode(NodeId{3}, ProviderId{3});
  addNode(NodeId{4}, ProviderId{1});
  auto addLink = [&](NodeId a, NodeId b, double dist) {
    Link l;
    l.a = a;
    l.b = b;
    l.capacityBps = 1e6;
    l.distanceM = dist;
    l.propagationDelayS = dist / kSpeedOfLightMps;
    g.addLink(l);
  };
  addLink(NodeId{1}, NodeId{2}, 1000e3);  // short path via provider 2
  addLink(NodeId{2}, NodeId{4}, 1000e3);
  addLink(NodeId{1}, NodeId{3}, 3000e3);  // long path via provider 3
  addLink(NodeId{3}, NodeId{4}, 3000e3);

  ReputationTracker rep(0.5);
  const LinkCostFn cost = quarantineAwareCost(latencyCost(), rep);

  // Trusted network: short path via provider 2 wins.
  Route r = shortestPath(g, NodeId{1}, NodeId{4}, cost);
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(r.nodes, (std::vector<NodeId>{NodeId{1}, NodeId{2}, NodeId{4}}));

  // Provider 2 caught misbehaving: quarantine reroutes around it.
  for (int i = 0; i < 12; ++i) {
    rep.reportMisbehavior(ProviderId{2}, MisbehaviorKind::Interception);
  }
  r = shortestPath(g, NodeId{1}, NodeId{4}, cost);
  ASSERT_TRUE(r.valid());
  EXPECT_EQ(r.nodes, (std::vector<NodeId>{NodeId{1}, NodeId{3}, NodeId{4}}));

  // Both relays quarantined: the network is (correctly) partitioned.
  for (int i = 0; i < 12; ++i) {
    rep.reportMisbehavior(ProviderId{3}, MisbehaviorKind::Interception);
  }
  EXPECT_FALSE(shortestPath(g, NodeId{1}, NodeId{4}, cost).valid());
}

}  // namespace
}  // namespace openspace
