// Unit tests for the constellation-snapshot engine: the parallel-for
// primitive, snapshot correctness against brute-force propagation, the
// spatially pruned ISL adjacency, the snapshot LRU cache, and the
// determinism contract (parallel == serial, bit for bit).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/coverage/coverage.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/ephemeris.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/visibility.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/sim/fig2.hpp>

namespace openspace {
namespace {

/// Restores the ambient worker count when a test overrides it.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(parallelThreadCount()) {}
  ~ThreadCountGuard() { setParallelThreadCount(saved_); }

 private:
  int saved_;
};

std::vector<OrbitalElements> testConstellation(int n, std::uint64_t seed = 7) {
  Rng rng(seed);
  return makeRandomConstellation(n, km(780.0), rng);
}

// --- parallelFor ---------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (const int threads : {1, 4}) {
    setParallelThreadCount(threads);
    std::vector<std::atomic<int>> hits(1000);
    for (auto& h : hits) h = 0;
    parallelFor(hits.size(), 64, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (const auto& h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelFor, ChunkBoundariesAreFixed) {
  ThreadCountGuard guard;
  // The decomposition must not depend on the thread count: record the
  // (begin, end) pairs serially and check the parallel run sees the same
  // set.
  const std::size_t count = 107, chunk = 10;
  std::vector<std::pair<std::size_t, std::size_t>> serial;
  setParallelThreadCount(1);
  parallelFor(count, chunk, [&](std::size_t b, std::size_t e) {
    serial.emplace_back(b, e);
  });
  ASSERT_EQ(serial.size(), 11u);
  EXPECT_EQ(serial.back().second, count);  // short tail chunk

  setParallelThreadCount(4);
  std::vector<std::atomic<bool>> seen(serial.size());
  for (auto& s : seen) s = false;
  parallelFor(count, chunk, [&](std::size_t b, std::size_t e) {
    ASSERT_EQ(b % chunk, 0u);
    EXPECT_EQ(e, std::min(b + chunk, count));
    seen[b / chunk] = true;
  });
  for (const auto& s : seen) EXPECT_TRUE(s);
}

TEST(ParallelFor, EmptyRangeAndZeroChunk) {
  int calls = 0;
  parallelFor(0, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_THROW(parallelFor(10, 0, [](std::size_t, std::size_t) {}),
               InvalidArgumentError);
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadCountGuard guard;
  for (const int threads : {1, 4}) {
    setParallelThreadCount(threads);
    EXPECT_THROW(
        parallelFor(100, 8,
                    [](std::size_t begin, std::size_t) {
                      if (begin >= 32) throw std::runtime_error("boom");
                    }),
        std::runtime_error);
  }
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadCountGuard guard;
  setParallelThreadCount(4);
  std::atomic<int> total{0};
  parallelFor(8, 1, [&](std::size_t, std::size_t) {
    parallelFor(8, 1, [&](std::size_t, std::size_t) { ++total; });
  });
  EXPECT_EQ(total, 64);
}

TEST(ParallelFor, ThreadCountOverrideClamps) {
  ThreadCountGuard guard;
  setParallelThreadCount(-3);
  EXPECT_EQ(parallelThreadCount(), 1);
  setParallelThreadCount(5);
  EXPECT_EQ(parallelThreadCount(), 5);
}

// --- ConstellationSnapshot ----------------------------------------------

TEST(Snapshot, MatchesBruteForcePropagation) {
  const auto sats = testConstellation(24);
  const double t = 345.6;
  const ConstellationSnapshot snap(sats, t);
  ASSERT_EQ(snap.size(), sats.size());
  for (std::size_t i = 0; i < sats.size(); ++i) {
    const Vec3 eci = positionEci(sats[i], t);
    const Vec3 ecef = eciToEcef(eci, t);
    EXPECT_DOUBLE_EQ(snap.eci(i).x, eci.x);
    EXPECT_DOUBLE_EQ(snap.eci(i).y, eci.y);
    EXPECT_DOUBLE_EQ(snap.eci(i).z, eci.z);
    EXPECT_DOUBLE_EQ(snap.ecef(i).x, ecef.x);
    EXPECT_DOUBLE_EQ(snap.ecef(i).y, ecef.y);
    EXPECT_DOUBLE_EQ(snap.ecef(i).z, ecef.z);
  }
}

TEST(Snapshot, EphemerisConstructorFollowsPublicationOrder) {
  const auto sats = testConstellation(10);
  EphemerisService eph;
  for (const auto& el : sats) eph.publish(ProviderId{1}, el);
  const double t = 100.0;
  const ConstellationSnapshot snap(eph, t);
  ASSERT_EQ(snap.size(), sats.size());
  for (std::size_t i = 0; i < sats.size(); ++i) {
    const Vec3 eci = eph.positionEci(eph.satellites()[i], t);
    EXPECT_DOUBLE_EQ(snap.eci(i).x, eci.x);
    EXPECT_DOUBLE_EQ(snap.eci(i).y, eci.y);
    EXPECT_DOUBLE_EQ(snap.eci(i).z, eci.z);
  }
}

TEST(Snapshot, ClosestVisibleMatchesBruteForce) {
  const auto sats = testConstellation(40);
  const double t = 0.0;
  const ConstellationSnapshot snap(sats, t);
  const Geodetic site{deg2rad(40.44), deg2rad(-79.99), 0.0};  // Pittsburgh
  const Vec3 siteEcef = geodeticToEcef(site);
  const double minElev = deg2rad(10.0);

  std::optional<std::size_t> expect;
  double best = 0.0;
  for (std::size_t i = 0; i < sats.size(); ++i) {
    const Vec3 satEcef = eciToEcef(positionEci(sats[i], t), t);
    if (elevationAngleRad(siteEcef, satEcef) < minElev) continue;
    const double d = siteEcef.distanceTo(satEcef);
    if (!expect || d < best) {
      expect = i;
      best = d;
    }
  }
  EXPECT_EQ(snap.closestVisible(site, minElev), expect);

  // A site with the mask at zenith sees nothing.
  EXPECT_EQ(snap.closestVisible(site, deg2rad(89.9)), std::nullopt);
}

TEST(Snapshot, IslTopologyMatchesAllPairsScan) {
  const auto sats = testConstellation(48);
  const double t = 12.0, maxRange = 3'000'000.0;
  const ConstellationSnapshot snap(sats, t);
  const auto isl = snap.islTopology(maxRange);
  ASSERT_EQ(isl->adjacency.size(), sats.size());
  EXPECT_DOUBLE_EQ(isl->maxRangeM, maxRange);

  std::size_t expectLinks = 0;
  for (std::size_t i = 0; i < sats.size(); ++i) {
    std::vector<std::pair<std::size_t, double>> expect;
    for (std::size_t j = 0; j < sats.size(); ++j) {
      if (j == i) continue;
      const double d = snap.eci(i).distanceTo(snap.eci(j));
      if (d <= maxRange && lineOfSightClear(snap.eci(i), snap.eci(j), km(80.0))) {
        expect.emplace_back(j, d);
      }
    }
    expectLinks += expect.size();
    ASSERT_EQ(isl->adjacency[i].size(), expect.size()) << "sat " << i;
    for (std::size_t n = 0; n < expect.size(); ++n) {
      EXPECT_EQ(isl->adjacency[i][n].first, expect[n].first);
      EXPECT_DOUBLE_EQ(isl->adjacency[i][n].second, expect[n].second);
    }
  }
  EXPECT_EQ(isl->linkCount, expectLinks / 2);

  // Same parameters must return the identical cached object.
  EXPECT_EQ(snap.islTopology(maxRange).get(), isl.get());
  // Different parameters rebuild.
  EXPECT_NE(snap.islTopology(maxRange * 2).get(), isl.get());
}

TEST(Snapshot, GridPrunedAdjacencyMatchesAllPairs) {
  // Above the brute-force cutoff the adjacency comes from the spatial
  // grid; it must agree edge-for-edge with the all-pairs definition.
  const auto sats = testConstellation(300, 11);
  const double maxRange = 2'000'000.0;
  const ConstellationSnapshot snap(sats, 5.0);
  const auto isl = snap.islTopology(maxRange);

  std::size_t expectLinks = 0;
  for (std::size_t i = 0; i < sats.size(); ++i) {
    std::vector<std::pair<std::size_t, double>> expect;
    for (std::size_t j = 0; j < sats.size(); ++j) {
      if (j == i) continue;
      const double d = snap.eci(i).distanceTo(snap.eci(j));
      if (d <= maxRange && lineOfSightClear(snap.eci(i), snap.eci(j), km(80.0))) {
        expect.emplace_back(j, d);
      }
    }
    expectLinks += expect.size();
    ASSERT_EQ(isl->adjacency[i], expect) << "sat " << i;
  }
  EXPECT_EQ(isl->linkCount, expectLinks / 2);
}

TEST(Snapshot, TinyRangeGridClampMatchesAllPairs) {
  // A maxRangeM of a few meters against LEO-magnitude positions used to
  // overflow the packed cell keys' 21-bit per-axis budget and silently
  // fall back to the all-pairs scan. The grid now clamps its cell side up
  // until the coordinates fit (side >= maxRangeM keeps the +-1-neighbor
  // property, so only candidate-set size changes) — the pruned path must
  // agree with the all-pairs definition for any range, however extreme.
  const auto sats = testConstellation(300, 7);
  const ConstellationSnapshot snap(sats, 3.0);
  for (const double maxRange : {5.0, 2'000.0, 500'000.0}) {
    const auto isl = snap.islTopology(maxRange);
    ASSERT_EQ(isl->adjacency.size(), sats.size());
    std::size_t expectLinks = 0;
    for (std::size_t i = 0; i < sats.size(); ++i) {
      std::vector<std::pair<std::size_t, double>> expect;
      for (std::size_t j = 0; j < sats.size(); ++j) {
        if (j == i) continue;
        const double d = snap.eci(i).distanceTo(snap.eci(j));
        if (d <= maxRange &&
            lineOfSightClear(snap.eci(i), snap.eci(j), km(80.0))) {
          expect.emplace_back(j, d);
        }
      }
      expectLinks += expect.size();
      ASSERT_EQ(isl->adjacency[i], expect)
          << "range " << maxRange << " sat " << i;
    }
    EXPECT_EQ(isl->linkCount, expectLinks / 2) << "range " << maxRange;
  }
}

TEST(Snapshot, IslPathSelectionBoundaryIsInvisible) {
  // islTopology() switches from the all-pairs scan to the spatial grid
  // strictly above kIslAllPairsMaxSats. The crossover is a perf decision
  // only: at 255 / 256 (all-pairs) and 257 (grid) satellites the adjacency
  // must match the all-pairs definition pair-for-pair, bitwise distances
  // and ordering included.
  const double maxRange = 2'500'000.0;
  for (const std::size_t n :
       {kIslAllPairsMaxSats - 1, kIslAllPairsMaxSats, kIslAllPairsMaxSats + 1}) {
    const auto sats = testConstellation(static_cast<int>(n), 19);
    const ConstellationSnapshot snap(sats, 42.0);
    const auto isl = snap.islTopology(maxRange);
    ASSERT_EQ(isl->adjacency.size(), n);
    std::size_t expectLinks = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::pair<std::size_t, double>> expect;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double d = snap.eci(i).distanceTo(snap.eci(j));
        if (d <= maxRange &&
            lineOfSightClear(snap.eci(i), snap.eci(j), km(80.0))) {
          expect.emplace_back(j, d);
        }
      }
      expectLinks += expect.size();
      ASSERT_EQ(isl->adjacency[i], expect) << "n=" << n << " sat " << i;
    }
    EXPECT_EQ(isl->linkCount, expectLinks / 2) << "n=" << n;
  }
}

TEST(Snapshot, ShortestIslPathSelfAndDisconnected) {
  const auto sats = testConstellation(16);
  const ConstellationSnapshot snap(sats, 0.0);
  const auto self = snap.shortestIslPath(3, 3, 3'000'000.0);
  ASSERT_TRUE(self.has_value());
  EXPECT_DOUBLE_EQ(self->first, 0.0);
  EXPECT_EQ(self->second, 0);

  // A max range below any pairwise distance disconnects everything.
  EXPECT_FALSE(snap.shortestIslPath(0, 1, 1.0).has_value());
}

TEST(Snapshot, FootprintIndexMatchesElevationTest) {
  const auto sats = testConstellation(20);
  const double t = 0.0, minElev = deg2rad(10.0);
  const ConstellationSnapshot snap(sats, t);
  const FootprintIndex fp(snap, minElev);
  ASSERT_EQ(fp.size(), sats.size());

  Rng rng(99);
  for (int s = 0; s < 200; ++s) {
    const Vec3 unit = rng.unitSphere();
    const Vec3 surfEci = unit * wgs84::kMeanRadiusM;
    bool any = false;
    int count = 0;
    for (std::size_t i = 0; i < sats.size(); ++i) {
      const bool covered = elevationAngleRad(surfEci, snap.eci(i)) >= minElev;
      EXPECT_EQ(fp.covers(unit, i), covered) << "sample " << s << " sat " << i;
      any |= covered;
      count += covered ? 1 : 0;
    }
    EXPECT_EQ(fp.anyCovers(unit), any);
    EXPECT_EQ(fp.countCovering(unit, static_cast<int>(sats.size())), count);
  }
}

// --- SnapshotCache -------------------------------------------------------

TEST(SnapshotCacheTest, HitOnSameKeyMissOnDifferent) {
  SnapshotCache cache(4);
  const auto sats = testConstellation(8);

  const auto a = cache.at(sats, 100.0);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  // Exact repeat and a sub-microsecond perturbation both hit.
  EXPECT_EQ(cache.at(sats, 100.0).get(), a.get());
  EXPECT_EQ(cache.at(sats, 100.0 + 1e-8).get(), a.get());
  EXPECT_EQ(cache.hits(), 2u);

  // A different time misses.
  const auto b = cache.at(sats, 200.0);
  EXPECT_NE(b.get(), a.get());
  EXPECT_EQ(cache.misses(), 2u);

  // A modified element invalidates (different constellation hash).
  auto mutated = sats;
  mutated[0].raanRad += 1e-9;
  EXPECT_NE(cache.at(mutated, 100.0).get(), a.get());
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(SnapshotCacheTest, LruEviction) {
  SnapshotCache cache(2);
  const auto sats = testConstellation(6);

  const auto a = cache.at(sats, 1.0);
  cache.at(sats, 2.0);
  // Touch t=1 so t=2 is the least recently used...
  EXPECT_EQ(cache.at(sats, 1.0).get(), a.get());
  // ...then insert a third entry, evicting t=2.
  cache.at(sats, 3.0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.at(sats, 1.0).get(), a.get());  // still cached
  const std::size_t missesBefore = cache.misses();
  cache.at(sats, 2.0);  // evicted: must rebuild
  EXPECT_EQ(cache.misses(), missesBefore + 1);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SnapshotCacheTest, ByteBudgetEvictsInLruOrder) {
  const auto sats = testConstellation(6);
  // Every snapshot of the same fleet has the same approxBytes, so a budget
  // sized for exactly two of them must reproduce the capacity-2 LRU
  // eviction sequence of the test above, entry for entry.
  const std::size_t one = ConstellationSnapshot(sats, 1.0).approxBytes();
  SnapshotCache cache(/*capacity=*/8, /*byteBudget=*/2 * one);
  EXPECT_EQ(cache.byteBudget(), 2 * one);

  const auto a = cache.at(sats, 1.0);
  EXPECT_EQ(cache.approxBytes(), one);
  cache.at(sats, 2.0);
  EXPECT_EQ(cache.approxBytes(), 2 * one);
  // Touch t=1 so t=2 is the least recently used...
  EXPECT_EQ(cache.at(sats, 1.0).get(), a.get());
  // ...then insert a third entry: over budget, t=2 is evicted.
  cache.at(sats, 3.0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.approxBytes(), 2 * one);
  EXPECT_EQ(cache.at(sats, 1.0).get(), a.get());  // still cached
  const std::size_t missesBefore = cache.misses();
  cache.at(sats, 2.0);  // evicted: must rebuild
  EXPECT_EQ(cache.misses(), missesBefore + 1);

  // A budget smaller than any entry still caches the newest entry (the
  // just-inserted entry is exempt from eviction).
  SnapshotCache tiny(/*capacity=*/8, /*byteBudget=*/1);
  tiny.at(sats, 1.0);
  EXPECT_EQ(tiny.size(), 1u);
  const auto newest = tiny.at(sats, 2.0);
  EXPECT_EQ(tiny.size(), 1u);
  EXPECT_EQ(tiny.at(sats, 2.0).get(), newest.get());
}

TEST(SnapshotCacheTest, EphemerisAndElementListShareEntries) {
  SnapshotCache cache(4);
  const auto sats = testConstellation(5);
  EphemerisService eph;
  for (const auto& el : sats) eph.publish(ProviderId{1}, el);

  const auto a = cache.at(sats, 50.0);
  EXPECT_EQ(cache.at(eph, 50.0).get(), a.get());
  EXPECT_EQ(cache.hits(), 1u);
}

// --- Determinism: parallel == serial, bit for bit ------------------------

TEST(Determinism, MonteCarloCoverage) {
  ThreadCountGuard guard;
  const auto sats = testConstellation(30);

  setParallelThreadCount(1);
  Rng serialRng(42);
  const auto serial =
      monteCarloCoverage(sats, 0.0, deg2rad(10.0), 20'000, serialRng);

  setParallelThreadCount(4);
  Rng parallelRng(42);
  const auto parallel =
      monteCarloCoverage(sats, 0.0, deg2rad(10.0), 20'000, parallelRng);

  EXPECT_EQ(serial.coverageFraction, parallel.coverageFraction);
  // Both paths must advance the caller's stream identically too.
  EXPECT_EQ(serialRng.engine()(), parallelRng.engine()());
}

TEST(Determinism, KFoldCoverage) {
  ThreadCountGuard guard;
  const auto sats = testConstellation(40);

  setParallelThreadCount(1);
  Rng serialRng(43);
  const double serial = kFoldCoverage(sats, 0.0, deg2rad(10.0), 2, 10'000, serialRng);

  setParallelThreadCount(4);
  Rng parallelRng(43);
  const double parallel =
      kFoldCoverage(sats, 0.0, deg2rad(10.0), 2, 10'000, parallelRng);

  EXPECT_EQ(serial, parallel);
}

TEST(Determinism, Fig2LatencySweep) {
  ThreadCountGuard guard;
  const std::vector<int> counts = {4, 12, 24};
  const Fig2Config cfg;

  setParallelThreadCount(1);
  const auto serial = fig2LatencySweep(counts, 40, cfg, 2024);
  setParallelThreadCount(4);
  const auto parallel = fig2LatencySweep(counts, 40, cfg, 2024);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].connectedTrials, parallel[i].connectedTrials);
    EXPECT_EQ(serial[i].connectivity, parallel[i].connectivity);
    EXPECT_EQ(serial[i].meanLatencyS, parallel[i].meanLatencyS);
    EXPECT_EQ(serial[i].meanEndToEndLatencyS, parallel[i].meanEndToEndLatencyS);
    EXPECT_EQ(serial[i].meanIslHops, parallel[i].meanIslHops);
  }
}

TEST(Determinism, Fig2CoverageSweep) {
  ThreadCountGuard guard;
  const std::vector<int> counts = {6, 18};
  Fig2Config cfg;
  cfg.minElevationRad = deg2rad(10.0);

  setParallelThreadCount(1);
  const auto serial = fig2CoverageSweep(counts, 10, cfg, 2024);
  setParallelThreadCount(4);
  const auto parallel = fig2CoverageSweep(counts, 10, cfg, 2024);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].worstCaseCoverage, parallel[i].worstCaseCoverage);
    EXPECT_EQ(serial[i].monteCarloCoverage, parallel[i].monteCarloCoverage);
    EXPECT_EQ(serial[i].meanEffectiveSatellites,
              parallel[i].meanEffectiveSatellites);
  }
}

}  // namespace
}  // namespace openspace
