// Multi-threaded stress tests for the annotated concurrency substrate
// (PR 7): many std::threads hammering the three process-wide LRU caches —
// SnapshotCache, FleetEphemeris::compiled, FootprintIndex2::compiled —
// concurrently, checking that every thread observes fully built,
// value-correct entries, plus the TimerWheel generation-stamp contract for
// stale handles. The cache tests are deliberately racy (that is the
// point): the TSan CI lane runs this binary with 4 pool threads and
// halt_on_error, so any lock-discipline regression the clang thread-safety
// analysis misses shows up as a data race here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include <openspace/coverage/footprint_index.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/net/scheduler.hpp>
#include <openspace/orbit/propagation_batch.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {
namespace {

std::vector<OrbitalElements> testConstellation(int n, std::uint64_t seed) {
  Rng rng(seed);
  return makeRandomConstellation(n, km(780.0), rng);
}

/// Run `fn(thread, iteration)` from `threads` std::threads, `iters` times
/// each. Any EXPECT failure inside fn is reported against the spawning
/// test as usual (gtest expectations are thread-safe on POSIX).
template <typename Fn>
void hammer(int threads, int iters, Fn&& fn) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([t, iters, &fn] {
      for (int i = 0; i < iters; ++i) fn(t, i);
    });
  }
  for (std::thread& th : pool) th.join();
}

// --- SnapshotCache under contention --------------------------------------

TEST(ThreadSafetyStress, SnapshotCacheConcurrentMixedKeys) {
  // More keys than capacity so the threads race insert/evict/promote, not
  // just the hit path.
  SnapshotCache cache(4);
  const int kFleets = 3;
  std::vector<std::vector<OrbitalElements>> fleets;
  std::vector<std::uint64_t> hashes;
  for (int f = 0; f < kFleets; ++f) {
    fleets.push_back(testConstellation(24, 100 + static_cast<std::uint64_t>(f)));
    hashes.push_back(constellationHash(fleets.back()));
  }
  const double times[] = {0.0, 30.0, 60.0, 90.0};

  std::atomic<std::size_t> calls{0};
  hammer(8, 120, [&](int t, int i) {
    const int f = (t + i) % kFleets;
    const double tS = times[(t * 7 + i) % 4];
    const auto snap = cache.at(fleets[static_cast<std::size_t>(f)], tS);
    ASSERT_NE(snap, nullptr);
    // Whatever entry the race hands back must be the fully built snapshot
    // of exactly the requested (fleet, t).
    EXPECT_EQ(snap->size(), fleets[static_cast<std::size_t>(f)].size());
    EXPECT_EQ(snap->elementsHash(), hashes[static_cast<std::size_t>(f)]);
    EXPECT_DOUBLE_EQ(snap->timeSeconds(), tS);
    EXPECT_EQ(snap->eci().size(), snap->size());
    EXPECT_EQ(snap->ecef().size(), snap->size());
    calls.fetch_add(1, std::memory_order_relaxed);
  });

  // Every probe is counted exactly once as a hit or a miss.
  EXPECT_EQ(cache.hits() + cache.misses(), calls.load());
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(ThreadSafetyStress, SnapshotCacheConcurrentSameKeyAgreesBitForBit) {
  SnapshotCache cache(8);
  const auto fleet = testConstellation(32, 42);
  const ConstellationSnapshot reference(fleet, 45.0);

  hammer(8, 50, [&](int, int) {
    const auto snap = cache.at(fleet, 45.0);
    ASSERT_NE(snap, nullptr);
    ASSERT_EQ(snap->size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      // Racing duplicate builds may hand different threads different
      // instances, but the propagation is deterministic, so every instance
      // is bit-identical to the serial reference.
      EXPECT_EQ(snap->eci(i).x, reference.eci(i).x);
      EXPECT_EQ(snap->eci(i).y, reference.eci(i).y);
      EXPECT_EQ(snap->eci(i).z, reference.eci(i).z);
    }
  });
}

// --- FleetEphemeris::compiled under contention ----------------------------

TEST(ThreadSafetyStress, FleetEphemerisCompiledConcurrent) {
  const int kFleets = 3;
  std::vector<std::vector<OrbitalElements>> fleets;
  std::vector<std::uint64_t> hashes;
  std::vector<std::vector<Vec3>> reference(kFleets);
  for (int f = 0; f < kFleets; ++f) {
    fleets.push_back(testConstellation(20, 200 + static_cast<std::uint64_t>(f)));
    hashes.push_back(constellationHash(fleets.back()));
    FleetEphemeris(fleets.back())
        .positionsAt(120.0, reference[static_cast<std::size_t>(f)]);
  }

  hammer(8, 100, [&](int t, int i) {
    const auto f = static_cast<std::size_t>((t * 13 + i) % kFleets);
    const auto fleet = FleetEphemeris::compiled(fleets[f], hashes[f]);
    ASSERT_NE(fleet, nullptr);
    ASSERT_EQ(fleet->size(), fleets[f].size());
    std::vector<Vec3> eci;
    fleet->positionsAt(120.0, eci);
    ASSERT_EQ(eci.size(), reference[f].size());
    for (std::size_t s = 0; s < eci.size(); ++s) {
      EXPECT_EQ(eci[s].x, reference[f][s].x);
      EXPECT_EQ(eci[s].y, reference[f][s].y);
      EXPECT_EQ(eci[s].z, reference[f][s].z);
    }
  });
}

// --- FootprintIndex2::compiled under contention ---------------------------

TEST(ThreadSafetyStress, FootprintIndexCompiledConcurrent) {
  const auto fleet = testConstellation(48, 300);
  const auto snapshot = std::make_shared<const ConstellationSnapshot>(fleet, 15.0);
  const double masks[] = {deg2rad(25.0), deg2rad(40.0)};

  // Serial references per mask, computed once up front.
  std::vector<std::optional<std::size_t>> refClosest;
  const Geodetic site{deg2rad(48.0), deg2rad(11.0), 0.0};
  for (const double mask : masks) {
    refClosest.push_back(snapshot->closestVisible(site, mask));
  }

  hammer(8, 100, [&](int t, int i) {
    const auto m = static_cast<std::size_t>((t + i) % 2);
    const auto index = FootprintIndex2::compiled(snapshot, masks[m]);
    ASSERT_NE(index, nullptr);
    ASSERT_EQ(index->size(), fleet.size());
    EXPECT_DOUBLE_EQ(index->minElevationRad(), masks[m]);
    // Exactly the brute answer, whichever racing instance we got.
    EXPECT_EQ(index->closestVisible(site), refClosest[m]);
  });
}

// --- all three caches at once ---------------------------------------------

TEST(ThreadSafetyStress, AllCachesHammeredTogether) {
  // The realistic contention shape: coverage sweeps, association batches
  // and handover planning all touch the same timestep through different
  // caches at once. Each thread interleaves the three cache entry points.
  SnapshotCache cache(4);
  const auto fleet = testConstellation(24, 400);
  const auto hash = constellationHash(fleet);
  const double mask = deg2rad(30.0);

  hammer(6, 60, [&](int t, int i) {
    const double tS = 10.0 * ((t + i) % 3);
    const auto snap = cache.at(fleet, tS);
    ASSERT_NE(snap, nullptr);
    const auto compiledFleet = FleetEphemeris::compiled(fleet, hash);
    ASSERT_NE(compiledFleet, nullptr);
    EXPECT_EQ(compiledFleet->size(), snap->size());
    const auto index = FootprintIndex2::compiled(snap, mask);
    ASSERT_NE(index, nullptr);
    EXPECT_EQ(index->size(), snap->size());
    // The compiled fleet's cold evaluation at the snapshot's time must
    // reproduce the snapshot's own positions bit for bit.
    const Vec3 p = compiledFleet->positionAt(0, tS);
    EXPECT_EQ(p.x, snap->eci(0).x);
    EXPECT_EQ(p.y, snap->eci(0).y);
    EXPECT_EQ(p.z, snap->eci(0).z);
  });
}

// --- TimerWheel stale handles ---------------------------------------------

TEST(TimerWheelHandles, CancelAfterFireReturnsFalse) {
  TimerWheel<int> wheel(1e-3);
  const TimerEventId id = wheel.scheduleIn(0.5, 7);
  EXPECT_TRUE(id.isValid());

  int fired = 0;
  EXPECT_EQ(wheel.run(1.0, [&](double, const int& v) { fired += v; }), 1u);
  EXPECT_EQ(fired, 7);
  // The event already fired: its handle is dead, not cancellable.
  EXPECT_FALSE(wheel.cancel(id));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelHandles, StaleHandleDoesNotCancelRecycledSlot) {
  TimerWheel<int> wheel(1e-3);
  const TimerEventId first = wheel.scheduleIn(0.25, 1);
  EXPECT_EQ(wheel.runAll([](double, const int&) {}), 1u);

  // The next schedule recycles the fired record's slab slot under a bumped
  // generation. The stale handle must NOT cancel the new event.
  const TimerEventId second = wheel.scheduleIn(0.25, 2);
  EXPECT_NE(first.value(), second.value());
  EXPECT_FALSE(wheel.cancel(first));
  EXPECT_EQ(wheel.pending(), 1u);

  // The fresh handle still cancels its own event, exactly once.
  EXPECT_TRUE(wheel.cancel(second));
  EXPECT_FALSE(wheel.cancel(second));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelHandles, CancelledThenRecycledSlotKeepsOldHandleDead) {
  TimerWheel<int> wheel(1e-3);
  const TimerEventId a = wheel.scheduleIn(0.5, 1);
  EXPECT_TRUE(wheel.cancel(a));
  // Drain the lazily reclaimed record so the slot returns to the free list.
  EXPECT_EQ(wheel.runAll([](double, const int&) {}), 0u);

  const TimerEventId b = wheel.scheduleIn(0.5, 2);
  EXPECT_FALSE(wheel.cancel(a));  // stale generation
  int fired = 0;
  EXPECT_EQ(wheel.runAll([&](double, const int& v) { fired = v; }), 1u);
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace openspace
