// Property-based tests: parameterized sweeps asserting invariants across
// broad input ranges rather than single examples.
#include <gtest/gtest.h>

#include <numbers>
#include <set>

#include <openspace/coverage/coverage.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/visibility.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/topology/builder.hpp>

namespace openspace {
namespace {

// --- Property: geodetic <-> ECEF round trip over random points -------------

class RandomGeodeticRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGeodeticRoundTrip, Holds) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Geodetic g = rng.surfacePoint();
    g.altitudeM = rng.uniform(0.0, 2000e3);
    const Geodetic back = ecefToGeodetic(geodeticToEcef(g));
    ASSERT_NEAR(back.latitudeRad, g.latitudeRad, 1e-8);
    ASSERT_NEAR(back.longitudeRad, g.longitudeRad, 1e-8);
    ASSERT_NEAR(back.altitudeM, g.altitudeM, 1e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGeodeticRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- Property: orbital energy and angular momentum conserved ----------------

class OrbitConservation
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(OrbitConservation, EnergyAndMomentumConstant) {
  const auto [altKm, incDeg, ecc] = GetParam();
  OrbitalElements el;
  el.semiMajorAxisM = wgs84::kMeanRadiusM + km(altKm);
  el.eccentricity = ecc;
  el.inclinationRad = deg2rad(incDeg);
  el.raanRad = 0.7;
  el.argPerigeeRad = 0.4;

  const StateVector sv0 = propagate(el, 0.0);
  const double e0 = sv0.velocityMps.normSquared() / 2.0 -
                    wgs84::kMuM3PerS2 / sv0.positionM.norm();
  const double h0 = sv0.positionM.cross(sv0.velocityMps).norm();
  for (double t = 0.0; t <= el.periodS(); t += el.periodS() / 13.0) {
    const StateVector sv = propagate(el, t);
    const double e = sv.velocityMps.normSquared() / 2.0 -
                     wgs84::kMuM3PerS2 / sv.positionM.norm();
    const double h = sv.positionM.cross(sv.velocityMps).norm();
    ASSERT_NEAR(e / e0, 1.0, 1e-9) << "t=" << t;
    ASSERT_NEAR(h / h0, 1.0, 1e-9) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Orbits, OrbitConservation,
    ::testing::Combine(::testing::Values(400.0, 780.0, 1400.0),
                       ::testing::Values(0.0, 53.0, 86.4, 97.8),
                       ::testing::Values(0.0, 0.05, 0.2)));

// --- Property: footprint shrinks monotonically with the elevation mask ------

class FootprintMonotone : public ::testing::TestWithParam<double> {};

TEST_P(FootprintMonotone, Holds) {
  const double altM = km(GetParam());
  double prev = std::numbers::pi;
  for (double maskDeg = 0.0; maskDeg <= 60.0; maskDeg += 5.0) {
    const double lam = footprintHalfAngleRad(altM, deg2rad(maskDeg));
    ASSERT_LT(lam, prev) << "mask " << maskDeg;
    ASSERT_GT(lam, 0.0);
    prev = lam;
  }
}

INSTANTIATE_TEST_SUITE_P(Altitudes, FootprintMonotone,
                         ::testing::Values(340.0, 550.0, 780.0, 1200.0, 2000.0));

// --- Property: Walker constellations are valid and evenly distributed -------

class WalkerShape
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WalkerShape, StructureHolds) {
  const auto [total, planes, phasing] = GetParam();
  WalkerConfig cfg;
  cfg.totalSatellites = total;
  cfg.planes = planes;
  cfg.phasing = phasing;
  cfg.altitudeM = km(780.0);
  cfg.inclinationRad = deg2rad(86.4);
  for (const auto make : {makeWalkerStar, makeWalkerDelta}) {
    const auto sats = make(cfg);
    ASSERT_EQ(sats.size(), static_cast<std::size_t>(total));
    std::set<long> raans;
    for (const auto& el : sats) {
      raans.insert(std::lround(el.raanRad * 1e9));
      ASSERT_NEAR(el.perigeeAltitudeM(), 780e3, 1e-3);
      ASSERT_DOUBLE_EQ(el.eccentricity, 0.0);
    }
    ASSERT_EQ(raans.size(), static_cast<std::size_t>(planes));
    // No two satellites share an orbit slot: crossing-plane pairs may
    // coincide at one instant (planes intersect), but only identical
    // orbits coincide at two generic instants.
    for (std::size_t i = 0; i < sats.size(); ++i) {
      for (std::size_t j = i + 1; j < sats.size(); ++j) {
        const double d0 =
            positionEci(sats[i], 0.0).distanceTo(positionEci(sats[j], 0.0));
        const double d1 = positionEci(sats[i], 137.77)
                              .distanceTo(positionEci(sats[j], 137.77));
        ASSERT_GT(std::max(d0, d1), 1e3)
            << "satellites " << i << "," << j << " share an orbit";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, WalkerShape,
                         ::testing::Values(std::make_tuple(12, 3, 1),
                                           std::make_tuple(24, 4, 2),
                                           std::make_tuple(66, 6, 2),
                                           std::make_tuple(72, 6, 1),
                                           std::make_tuple(60, 12, 5)));

// --- Property: coverage estimators are monotone in fleet size ---------------

class CoverageMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoverageMonotone, UnionCoverageNeverDropsWhenAddingSatellites) {
  Rng rng(GetParam());
  auto sats = makeRandomConstellation(10, km(780.0), rng);
  Rng sampler(99);  // fixed sample set across increments
  double prev = 0.0;
  for (int round = 0; round < 4; ++round) {
    Rng s2(99);  // same points each time: strict monotonicity holds
    const double cov =
        monteCarloCoverage(sats, 0.0, deg2rad(10.0), 3000, s2).coverageFraction;
    ASSERT_GE(cov, prev - 1e-12);
    prev = cov;
    const auto more = makeRandomConstellation(10, km(780.0), rng);
    sats.insert(sats.end(), more.begin(), more.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageMonotone,
                         ::testing::Values(11, 22, 33, 44));

// --- Property: Dijkstra optimality vs brute force on small graphs ------------

class DijkstraOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraOptimality, MatchesBruteForceEnumeration) {
  Rng rng(GetParam());
  // Random connected-ish graph of 8 satellites.
  NetworkGraph g;
  const int n = 8;
  for (NodeId::rep_type idValue = 1; idValue <= static_cast<NodeId::rep_type>(n);
       ++idValue) {
    const NodeId id{idValue};
    Node node;
    node.id = id;
    node.kind = NodeKind::Satellite;
    node.provider = ProviderId{1};
    node.name = std::to_string(idValue);
    node.satellite = SatelliteId{idValue};
    g.addNode(std::move(node));
  }
  for (NodeId::rep_type av = 1; av <= static_cast<NodeId::rep_type>(n); ++av) {
    for (NodeId::rep_type bv = av + 1; bv <= static_cast<NodeId::rep_type>(n);
         ++bv) {
      if (rng.chance(0.45)) {
        const NodeId a{av}, b{bv};
        Link l;
        l.a = a;
        l.b = b;
        l.capacityBps = 1e6;
        l.distanceM = rng.uniform(100e3, 5000e3);
        l.propagationDelayS = l.distanceM / kSpeedOfLightMps;
        g.addLink(l);
      }
    }
  }

  // Brute force: DFS enumeration of all simple paths 1 -> n.
  double best = std::numeric_limits<double>::infinity();
  std::vector<NodeId> stack{NodeId{1}};
  std::set<NodeId> visited{NodeId{1}};
  std::function<void(NodeId, double)> dfs = [&](NodeId u, double cost) {
    if (u == NodeId{static_cast<NodeId::rep_type>(n)}) {
      best = std::min(best, cost);
      return;
    }
    for (const LinkId lid : g.linksOf(u)) {
      const Link& l = g.link(lid);
      const NodeId v = l.otherEnd(u);
      if (visited.contains(v)) continue;
      visited.insert(v);
      dfs(v, cost + l.totalDelayS());
      visited.erase(v);
    }
  };
  dfs(NodeId{1}, 0.0);

  const Route r = shortestPath(g, NodeId{1}, NodeId{static_cast<NodeId::rep_type>(n)}, latencyCost());
  if (std::isinf(best)) {
    ASSERT_FALSE(r.valid());
  } else {
    ASSERT_TRUE(r.valid());
    ASSERT_NEAR(r.cost, best, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraOptimality,
                         ::testing::Range<std::uint64_t>(100, 115));

// --- Property: Yen's k paths are loop-free, distinct and sorted -------------

class YenProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(YenProperties, Holds) {
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  TopologyBuilder topo(eph);
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  const NetworkGraph g = topo.snapshot(0.0, opt);
  Rng rng(GetParam());
  const auto sats = g.nodesOfKind(NodeKind::Satellite);
  const NodeId src = sats[static_cast<std::size_t>(
      rng.uniformInt(0, static_cast<std::int64_t>(sats.size()) - 1))];
  const NodeId dst = sats[static_cast<std::size_t>(
      rng.uniformInt(0, static_cast<std::int64_t>(sats.size()) - 1))];
  if (src == dst) return;
  const auto routes = kShortestPaths(g, src, dst, 5, latencyCost());
  ASSERT_FALSE(routes.empty());
  std::set<std::vector<NodeId>> unique;
  double prevCost = 0.0;
  for (const Route& r : routes) {
    ASSERT_TRUE(r.valid());
    ASSERT_EQ(r.nodes.front(), src);
    ASSERT_EQ(r.nodes.back(), dst);
    // Loop-free.
    const std::set<NodeId> distinct(r.nodes.begin(), r.nodes.end());
    ASSERT_EQ(distinct.size(), r.nodes.size());
    // Sorted by cost, all distinct.
    ASSERT_GE(r.cost, prevCost - 1e-12);
    prevCost = r.cost;
    ASSERT_TRUE(unique.insert(r.nodes).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YenProperties,
                         ::testing::Values(7, 17, 27, 37, 47, 57));

// --- Property: contact windows respect the elevation mask -------------------

class ContactWindowProperty : public ::testing::TestWithParam<double> {};

TEST_P(ContactWindowProperty, ElevationAboveMaskInsideWindows) {
  const double maskDeg = GetParam();
  const auto el = OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.3, 0.0);
  const Geodetic site = Geodetic::fromDegrees(40.0, -80.0);
  const auto windows =
      contactWindows(el, site, 0.0, 2 * el.periodS(), deg2rad(maskDeg), 10.0);
  for (const auto& w : windows) {
    // Probe the interior of each window.
    for (double f = 0.1; f < 1.0; f += 0.2) {
      const double t = w.startS + f * w.durationS();
      ASSERT_GE(elevationFrom(positionEci(el, t), site, t),
                deg2rad(maskDeg) - 1e-3)
          << "window [" << w.startS << "," << w.endS << "] t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Masks, ContactWindowProperty,
                         ::testing::Values(0.0, 5.0, 10.0, 25.0, 40.0));

}  // namespace
}  // namespace openspace
