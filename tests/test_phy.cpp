// Unit tests for the phy module: bands, link budgets, MODCOD, terminals,
// power budgets.
#include <gtest/gtest.h>
#include <cmath>


#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/phy/bands.hpp>
#include <openspace/phy/linkbudget.hpp>
#include <openspace/phy/power.hpp>
#include <openspace/phy/terminal.hpp>

namespace openspace {
namespace {

TEST(Bands, MetadataIsConsistent) {
  for (const Band b : {Band::Uhf, Band::S, Band::Ku, Band::Ka, Band::Optical}) {
    const BandInfo& info = bandInfo(b);
    EXPECT_EQ(info.band, b);
    EXPECT_GT(info.carrierHz, 0.0);
    EXPECT_GT(info.channelBandwidthHz, 0.0);
    EXPECT_FALSE(bandName(b).empty());
  }
}

TEST(Bands, IslAndGroundRoles) {
  // The paper's band plan: UHF/S ISLs, Ku/Ka ground, optical ISL-only.
  EXPECT_TRUE(bandInfo(Band::Uhf).usableForIsl);
  EXPECT_TRUE(bandInfo(Band::S).usableForIsl);
  EXPECT_TRUE(bandInfo(Band::Optical).usableForIsl);
  EXPECT_FALSE(bandInfo(Band::Ku).usableForIsl);
  EXPECT_TRUE(bandInfo(Band::Ku).usableForGround);
  EXPECT_FALSE(bandInfo(Band::Optical).usableForGround);
}

TEST(Bands, CarrierOrdering) {
  EXPECT_LT(bandInfo(Band::Uhf).carrierHz, bandInfo(Band::S).carrierHz);
  EXPECT_LT(bandInfo(Band::S).carrierHz, bandInfo(Band::Ku).carrierHz);
  EXPECT_LT(bandInfo(Band::Ku).carrierHz, bandInfo(Band::Ka).carrierHz);
  EXPECT_LT(bandInfo(Band::Ka).carrierHz, bandInfo(Band::Optical).carrierHz);
}

TEST(Atmosphere, LossGrowsTowardHorizon) {
  const double zenith = atmosphericLossDb(Band::Ku, deg2rad(90.0));
  const double slant = atmosphericLossDb(Band::Ku, deg2rad(10.0));
  EXPECT_GT(slant, zenith);
  EXPECT_GT(zenith, 0.0);
}

TEST(Atmosphere, RainAddsLossAndScalesWithFrequency) {
  const double dryKu = atmosphericLossDb(Band::Ku, deg2rad(30.0), 0.0);
  const double wetKu = atmosphericLossDb(Band::Ku, deg2rad(30.0), 25.0);
  const double wetKa = atmosphericLossDb(Band::Ka, deg2rad(30.0), 25.0);
  EXPECT_GT(wetKu, dryKu);
  EXPECT_GT(wetKa, wetKu);  // rain fade is worse at Ka
}

TEST(Atmosphere, OpticalVacuumPathIsLossless) {
  EXPECT_DOUBLE_EQ(atmosphericLossDb(Band::Optical, deg2rad(45.0), 50.0), 0.0);
}

TEST(Atmosphere, InvalidArgsThrow) {
  EXPECT_THROW(atmosphericLossDb(Band::Ku, 0.0), InvalidArgumentError);
  EXPECT_THROW(atmosphericLossDb(Band::Ku, -0.1), InvalidArgumentError);
  EXPECT_THROW(atmosphericLossDb(Band::Ku, 0.5, -1.0), InvalidArgumentError);
}

TEST(Fspl, KnownValue) {
  // FSPL(1 km, 1 GHz) ~ 92.45 dB (textbook).
  EXPECT_NEAR(freeSpacePathLossDb(1e3, 1e9), 92.45, 0.01);
}

TEST(Fspl, SquareLawInDistanceAndFrequency) {
  const double base = freeSpacePathLossDb(1000e3, 2e9);
  EXPECT_NEAR(freeSpacePathLossDb(2000e3, 2e9), base + 6.02, 0.01);
  EXPECT_NEAR(freeSpacePathLossDb(1000e3, 4e9), base + 6.02, 0.01);
  EXPECT_THROW(freeSpacePathLossDb(0.0, 1e9), InvalidArgumentError);
  EXPECT_THROW(freeSpacePathLossDb(1e3, 0.0), InvalidArgumentError);
}

TEST(Noise, ThermalNoiseMatchesKtb) {
  // kTB at 290 K, 1 Hz = -204 dBW (textbook anchor).
  EXPECT_NEAR(wattsToDbw(thermalNoiseW(1.0, 290.0)), -203.98, 0.05);
  EXPECT_THROW(thermalNoiseW(0.0, 290.0), InvalidArgumentError);
  EXPECT_THROW(thermalNoiseW(1e6, 0.0), InvalidArgumentError);
}

TEST(LinkBudget, SnrDecreasesWithDistance) {
  LinkBudgetInput in;
  in.band = Band::S;
  in.txPowerW = 10.0;
  in.txAntennaGainDb = 18.0;
  in.rxAntennaGainDb = 18.0;
  in.distanceM = 1000e3;
  const double snrNear = computeLinkBudget(in).snrDb;
  in.distanceM = 4000e3;
  const double snrFar = computeLinkBudget(in).snrDb;
  EXPECT_GT(snrNear, snrFar);
  EXPECT_NEAR(snrNear - snrFar, 12.04, 0.05);  // 4x distance = +12 dB FSPL
}

TEST(LinkBudget, ShannonConsistentWithSnr) {
  LinkBudgetInput in;
  in.band = Band::S;
  in.txPowerW = 10.0;
  in.txAntennaGainDb = 18.0;
  in.rxAntennaGainDb = 18.0;
  in.distanceM = 2000e3;
  const auto out = computeLinkBudget(in);
  const double expected = bandInfo(Band::S).channelBandwidthHz *
                          std::log2(1.0 + dbToRatio(out.snrDb));
  EXPECT_NEAR(out.shannonCapacityBps, expected, 1.0);
}

TEST(LinkBudget, ExtraLossesReduceSnrOneForOne) {
  LinkBudgetInput in;
  in.band = Band::Ku;
  in.txPowerW = 20.0;
  in.txAntennaGainDb = 30.0;
  in.rxAntennaGainDb = 40.0;
  in.distanceM = 1500e3;
  const double snr0 = computeLinkBudget(in).snrDb;
  in.extraLossesDb = 3.0;
  in.atmosphericLossDb = 2.0;
  EXPECT_NEAR(computeLinkBudget(in).snrDb, snr0 - 5.0, 1e-9);
}

TEST(LinkBudget, InvalidPowerThrows) {
  LinkBudgetInput in;
  in.distanceM = 1e6;
  in.txPowerW = 0.0;
  EXPECT_THROW(computeLinkBudget(in), InvalidArgumentError);
}

TEST(Modcod, LadderIsMonotone) {
  const auto& ladder = modcodLadder();
  ASSERT_GE(ladder.size(), 5u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i].requiredSnrDb, ladder[i - 1].requiredSnrDb);
    EXPECT_GT(ladder[i].spectralEfficiency, ladder[i - 1].spectralEfficiency);
  }
}

TEST(Modcod, SelectionRespectsThresholds) {
  EXPECT_EQ(selectModcod(-10.0), nullptr);  // below the most robust entry
  const Modcod* lowest = selectModcod(-2.0);
  ASSERT_NE(lowest, nullptr);
  EXPECT_EQ(lowest->name, "QPSK-1/4");
  const Modcod* highest = selectModcod(50.0);
  ASSERT_NE(highest, nullptr);
  EXPECT_EQ(highest->name, "32APSK-9/10");
}

TEST(Modcod, RateIsEfficiencyTimesBandwidth) {
  const Modcod* m = selectModcod(7.0);
  ASSERT_NE(m, nullptr);
  EXPECT_DOUBLE_EQ(modcodRateBps(7.0, 5e6), m->spectralEfficiency * 5e6);
  EXPECT_DOUBLE_EQ(modcodRateBps(-50.0, 5e6), 0.0);
  EXPECT_THROW(modcodRateBps(7.0, 0.0), InvalidArgumentError);
}

TEST(Terminals, PaperLaserTerminalAnchors) {
  // §2.1: "$500,000 per terminal ... 0.0234 sq.m of volume and at least
  // 15 kg of weight".
  const TerminalSpec t = terminals::laserIsl();
  EXPECT_DOUBLE_EQ(t.unitCostUsd, 500'000.0);
  EXPECT_GE(t.massKg, 15.0);
  EXPECT_DOUBLE_EQ(t.volumeM3, 0.0234);
  EXPECT_TRUE(t.isOptical());
  EXPECT_GT(t.beamDivergenceRad, 0.0);
  EXPECT_GT(t.slewRateRadPerS, 0.0);
}

TEST(Terminals, RfTerminalsAreCheapAndLight) {
  // The accessibility argument: the RF minimum must be far below the laser
  // premium so small spacecraft can join.
  const TerminalSpec uhf = terminals::uhfIsl();
  const TerminalSpec s = terminals::sBandIsl();
  const TerminalSpec laser = terminals::laserIsl();
  EXPECT_LT(uhf.unitCostUsd, laser.unitCostUsd / 10.0);
  EXPECT_LT(s.unitCostUsd, laser.unitCostUsd / 5.0);
  EXPECT_LT(uhf.massKg, 1.0);
  EXPECT_FALSE(uhf.isOptical());
  EXPECT_FALSE(s.isOptical());
}

TEST(Terminals, SBandClosesWalkerGridDistances) {
  // The standardized S-band radio must close a 4,000 km intra-plane ISL
  // (the geometry the paper's Walker Star argument depends on).
  const TerminalSpec s = terminals::sBandIsl();
  LinkBudgetInput in;
  in.band = Band::S;
  in.distanceM = 4000e3;
  in.txPowerW = s.txPowerW;
  in.txAntennaGainDb = s.antennaGainDb;
  in.rxAntennaGainDb = s.antennaGainDb;
  in.systemNoiseTempK = s.systemNoiseTempK;
  in.extraLossesDb = 3.0;
  const auto out = computeLinkBudget(in);
  EXPECT_NE(selectModcod(out.snrDb), nullptr)
      << "S-band ISL fails to close at 4000 km (SNR " << out.snrDb << " dB)";
}

TEST(Terminals, LaserGainFollowsDivergence) {
  // Narrower beam, higher gain; (4/theta)^2 in dB.
  EXPECT_GT(laserGainDb(10e-6), laserGainDb(100e-6));
  EXPECT_NEAR(laserGainDb(15e-6) - laserGainDb(150e-6), 20.0, 1e-9);
  EXPECT_THROW(laserGainDb(0.0), InvalidArgumentError);
}

TEST(PowerBudget, CommitReleaseCycle) {
  PowerBudget pb(120.0, 200.0, 35.0);
  EXPECT_DOUBLE_EQ(pb.availableW(), 85.0);
  EXPECT_TRUE(pb.canCommit(80.0));
  EXPECT_FALSE(pb.canCommit(90.0));
  const int id = pb.commit(30.0, "isl");
  EXPECT_DOUBLE_EQ(pb.availableW(), 55.0);
  EXPECT_EQ(pb.activeCommitments(), 1u);
  pb.release(id);
  EXPECT_DOUBLE_EQ(pb.availableW(), 85.0);
  EXPECT_EQ(pb.activeCommitments(), 0u);
}

TEST(PowerBudget, OverCommitThrowsCapacity) {
  PowerBudget pb(100.0, 50.0, 40.0);
  pb.commit(50.0, "a");
  EXPECT_THROW(pb.commit(20.0, "b"), CapacityError);
  EXPECT_THROW(pb.commit(0.0, "zero"), InvalidArgumentError);
  EXPECT_THROW(pb.release(999), NotFoundError);
}

TEST(PowerBudget, ConstructorValidation) {
  EXPECT_THROW(PowerBudget(0.0, 100.0, 0.0), InvalidArgumentError);
  EXPECT_THROW(PowerBudget(100.0, -1.0, 10.0), InvalidArgumentError);
  EXPECT_THROW(PowerBudget(100.0, 100.0, 100.0), InvalidArgumentError);
  EXPECT_THROW(PowerBudget(100.0, 100.0, 150.0), InvalidArgumentError);
}

TEST(PowerBudget, BatteryDrawAndRecharge) {
  PowerBudget pb(120.0, 100.0, 40.0);
  pb.drawEnergy(60.0);
  EXPECT_DOUBLE_EQ(pb.batteryChargeWh(), 40.0);
  EXPECT_THROW(pb.drawEnergy(50.0), CapacityError);
  // Surplus = 80 W; one hour recharges 80 Wh but caps at capacity.
  pb.recharge(3600.0);
  EXPECT_DOUBLE_EQ(pb.batteryChargeWh(), 100.0);
  EXPECT_THROW(pb.drawEnergy(-1.0), InvalidArgumentError);
  EXPECT_THROW(pb.recharge(-1.0), InvalidArgumentError);
}

TEST(PowerBudget, RechargeRateReflectsCommitments) {
  PowerBudget pb(120.0, 100.0, 40.0);
  pb.drawEnergy(100.0);
  pb.commit(60.0, "payload");  // surplus now 20 W
  pb.recharge(3600.0);
  EXPECT_NEAR(pb.batteryChargeWh(), 20.0, 1e-9);
}

// --- CapacityKernel ---------------------------------------------------------

/// The full-path reference the kernel must reproduce bit for bit (the same
/// shape the topology builder's capacity helpers used before compiling
/// their terminal pairs into kernels).
double fullPathRateBps(const TerminalSpec& tx, const TerminalSpec& rx,
                       double distanceM, double atmosphericDb) {
  LinkBudgetInput in;
  in.band = tx.band;
  in.distanceM = distanceM;
  in.txPowerW = tx.txPowerW;
  in.txAntennaGainDb = tx.antennaGainDb;
  in.rxAntennaGainDb = rx.antennaGainDb;
  in.systemNoiseTempK = rx.systemNoiseTempK;
  in.extraLossesDb = 3.0;
  in.atmosphericLossDb = atmosphericDb;
  const LinkBudgetResult out = computeLinkBudget(in);
  return modcodRateBps(out.snrDb, bandInfo(tx.band).channelBandwidthHz);
}

TEST(CapacityKernel, BitIdenticalToFullLinkBudgetAcrossDistances) {
  const struct {
    TerminalSpec tx, rx;
  } pairs[] = {
      {terminals::sBandIsl(), terminals::sBandIsl()},
      {terminals::laserIsl(), terminals::laserIsl()},
      {terminals::kuGround(), terminals::kuGroundStation()},
      {terminals::kuGround(), terminals::kuUserTerminal()},
  };
  for (const auto& p : pairs) {
    const CapacityKernel kernel(p.tx, p.rx, 3.0);
    // Log-spaced distances from 1 km to 100,000 km sweep the whole MODCOD
    // ladder including both can't-close ends; a few atmospheric losses
    // cover the ground-link path. EXPECT_EQ on doubles: the contract is
    // bitwise, not approximate.
    for (int i = 0; i <= 500; ++i) {
      const double distanceM = 1e3 * std::pow(10.0, i / 100.0);
      for (const double atmDb : {0.0, 0.37, 2.4, 11.0}) {
        EXPECT_EQ(kernel.rateBps(distanceM, atmDb),
                  fullPathRateBps(p.tx, p.rx, distanceM, atmDb))
            << "d=" << distanceM << " atm=" << atmDb;
      }
    }
  }
}

TEST(CapacityKernel, Validation) {
  TerminalSpec dead = terminals::sBandIsl();
  dead.txPowerW = 0.0;
  EXPECT_THROW(CapacityKernel(dead, terminals::sBandIsl(), 3.0),
               InvalidArgumentError);
  const CapacityKernel kernel(terminals::sBandIsl(), terminals::sBandIsl(),
                              3.0);
  EXPECT_THROW(kernel.rateBps(0.0), InvalidArgumentError);
  EXPECT_THROW(kernel.rateBps(-1.0), InvalidArgumentError);
}

}  // namespace
}  // namespace openspace
