// Property tests pinning the batch propagation kernel to the scalar spec.
//
// The scalar propagate()/positionEci() in orbit/elements.cpp is the
// executable specification; FleetEphemeris' cold path must reproduce it
// bit for bit, TimeSweep's warm-started solves must agree with cold starts
// to within a few ULP per component, and every batch path must be
// bit-identical at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/geodetic.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/ephemeris.hpp>
#include <openspace/orbit/propagation_batch.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {
namespace {

/// Restores the ambient worker count when a test overrides it.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(parallelThreadCount()) {}
  ~ThreadCountGuard() { setParallelThreadCount(saved_); }

 private:
  int saved_;
};

/// Distance between two doubles in units in the last place (steps along
/// the ordered representable doubles); huge for sign disagreements.
std::uint64_t ulpDistance(double a, double b) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b)) return UINT64_MAX;
  auto ordered = [](double v) {
    std::int64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits < 0 ? std::int64_t{INT64_MIN} - bits : bits;
  };
  const std::int64_t oa = ordered(a), ob = ordered(b);
  return oa > ob ? static_cast<std::uint64_t>(oa) - static_cast<std::uint64_t>(ob)
                 : static_cast<std::uint64_t>(ob) - static_cast<std::uint64_t>(oa);
}

std::uint64_t maxUlp(const Vec3& a, const Vec3& b) {
  return std::max({ulpDistance(a.x, b.x), ulpDistance(a.y, b.y),
                   ulpDistance(a.z, b.z)});
}

/// Warm- and cold-started Newton solves agree on the eccentric anomaly to
/// ~1 ULP; one ULP of anomaly moves a position component by up to
/// a * 2^-52, which can be many ULPs of a near-zero component. The right
/// yardstick for warm==cold is therefore relative to the orbit scale, not
/// per-component ULPs: |delta| <= 1e-13 * |r| on every axis (sub-micrometer
/// for LEO, far below any physical meaning in the simulator).
void expectWarmMatchesCold(const Vec3& warm, const Vec3& cold,
                           const char* label, double tSeconds) {
  const double tol = 1e-13 * std::max(1.0, cold.norm());
  EXPECT_NEAR(warm.x, cold.x, tol) << label << " t " << tSeconds;
  EXPECT_NEAR(warm.y, cold.y, tol) << label << " t " << tSeconds;
  EXPECT_NEAR(warm.z, cold.z, tol) << label << " t " << tSeconds;
}

/// Randomized general elements covering the regimes the kernel must pin:
/// near-circular LEO, high-eccentricity, retrograde inclination, and
/// equatorial / polar edge cases appear with fixed probability.
OrbitalElements randomElements(Rng& rng) {
  OrbitalElements el;
  el.semiMajorAxisM = wgs84::kMeanRadiusM + rng.uniform(km(300.0), km(36'000.0));
  const double roll = rng.uniform(0.0, 1.0);
  if (roll < 0.25) {
    el.eccentricity = 0.0;  // exactly circular (the solver's shortcut path)
  } else if (roll < 0.5) {
    el.eccentricity = rng.uniform(0.0, 0.02);  // near-circular LEO
  } else if (roll < 0.75) {
    el.eccentricity = rng.uniform(0.6, 0.95);  // high-e (past the 0.8 guess)
  } else {
    el.eccentricity = rng.uniform(0.0, 0.6);
  }
  const double inclRoll = rng.uniform(0.0, 1.0);
  if (inclRoll < 0.2) {
    el.inclinationRad = 0.0;  // equatorial
  } else if (inclRoll < 0.4) {
    el.inclinationRad = rng.uniform(deg2rad(95.0), deg2rad(180.0));  // retrograde
  } else {
    el.inclinationRad = rng.uniform(0.0, deg2rad(95.0));
  }
  el.raanRad = rng.uniform(0.0, 2.0 * std::numbers::pi);
  el.argPerigeeRad = rng.uniform(0.0, 2.0 * std::numbers::pi);
  el.meanAnomalyAtEpochRad = rng.uniform(-2.0, 8.0);
  return el;
}

std::vector<OrbitalElements> randomFleet(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<OrbitalElements> fleet;
  fleet.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) fleet.push_back(randomElements(rng));
  return fleet;
}

// --- cold path == scalar spec, bit for bit --------------------------------

TEST(FleetEphemeris, MatchesScalarBitForBitAcrossRandomElements) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    const auto fleet = randomFleet(64, seed);
    const FleetEphemeris batch(fleet);
    std::vector<Vec3> eci, ecef;
    for (const double t : {0.0, 1.5, 600.0, 5'400.0, -250.0, 86'400.0}) {
      batch.positionsAt(t, eci, ecef);
      ASSERT_EQ(eci.size(), fleet.size());
      for (std::size_t i = 0; i < fleet.size(); ++i) {
        const Vec3 want = positionEci(fleet[i], t);
        EXPECT_DOUBLE_EQ(eci[i].x, want.x) << "seed " << seed << " sat " << i;
        EXPECT_DOUBLE_EQ(eci[i].y, want.y) << "seed " << seed << " sat " << i;
        EXPECT_DOUBLE_EQ(eci[i].z, want.z) << "seed " << seed << " sat " << i;
        const Vec3 wantEcef = eciToEcef(want, t);
        EXPECT_DOUBLE_EQ(ecef[i].x, wantEcef.x);
        EXPECT_DOUBLE_EQ(ecef[i].y, wantEcef.y);
        EXPECT_DOUBLE_EQ(ecef[i].z, wantEcef.z);
      }
    }
  }
}

TEST(FleetEphemeris, SingleSatelliteAccessorMatchesBatch) {
  const auto fleet = randomFleet(16, 99);
  const FleetEphemeris batch(fleet);
  std::vector<Vec3> eci;
  batch.positionsAt(321.5, eci);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const Vec3 one = batch.positionAt(i, 321.5);
    EXPECT_DOUBLE_EQ(one.x, eci[i].x);
    EXPECT_DOUBLE_EQ(one.y, eci[i].y);
    EXPECT_DOUBLE_EQ(one.z, eci[i].z);
  }
}

TEST(FleetEphemeris, EciOnlyOverloadMatchesCombined) {
  const auto fleet = randomFleet(32, 5);
  const FleetEphemeris batch(fleet);
  std::vector<Vec3> a, b, ecef;
  batch.positionsAt(777.0, a);
  batch.positionsAt(777.0, b, ecef);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
    EXPECT_DOUBLE_EQ(a[i].z, b[i].z);
  }
}

TEST(FleetEphemeris, RejectsInvalidEccentricity) {
  OrbitalElements bad = OrbitalElements::circular(km(780.0), 1.0, 0.0, 0.0);
  bad.eccentricity = 1.0;
  EXPECT_THROW(FleetEphemeris({bad}), InvalidArgumentError);
  bad.eccentricity = -0.1;
  EXPECT_THROW(FleetEphemeris({bad}), InvalidArgumentError);
  EXPECT_THROW(SatelliteSweep{bad}, InvalidArgumentError);
}

TEST(FleetEphemeris, EmptyFleetIsFine) {
  const FleetEphemeris batch(std::vector<OrbitalElements>{});
  EXPECT_TRUE(batch.empty());
  std::vector<Vec3> eci{Vec3{1, 2, 3}};
  batch.positionsAt(0.0, eci);
  EXPECT_TRUE(eci.empty());
}

TEST(FleetEphemeris, EphemerisServiceConstructorUsesPublicationOrder) {
  EphemerisService eph;
  const auto fleet = makeWalkerStar(iridiumConfig());
  for (const auto& el : fleet) eph.publish(ProviderId{1}, el);
  const FleetEphemeris batch(eph);
  ASSERT_EQ(batch.size(), fleet.size());
  std::vector<Vec3> eci;
  batch.positionsAt(120.0, eci);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const Vec3 want = eph.positionEci(eph.satellites()[i], 120.0);
    EXPECT_DOUBLE_EQ(eci[i].x, want.x);
    EXPECT_DOUBLE_EQ(eci[i].y, want.y);
    EXPECT_DOUBLE_EQ(eci[i].z, want.z);
  }
}

TEST(FleetEphemeris, CompiledCacheReturnsSharedInstance) {
  const auto fleet = randomFleet(24, 404);
  const std::uint64_t hash = constellationHash(fleet);
  const auto a = FleetEphemeris::compiled(fleet, hash);
  const auto b = FleetEphemeris::compiled(fleet, hash);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->size(), fleet.size());
}

TEST(FleetEphemeris, CompiledCacheByteBudgetEvictsLru) {
  const auto fleetA = randomFleet(24, 501);
  const auto fleetB = randomFleet(24, 502);
  const std::uint64_t hashA = constellationHash(fleetA);
  const std::uint64_t hashB = constellationHash(fleetB);
  // Budget for exactly one 24-satellite fleet: compiling a second
  // equal-size fleet must evict the first in plain LRU order.
  const std::size_t one = FleetEphemeris(fleetA).approxBytes();
  const std::size_t previous = FleetEphemeris::setCompiledCacheByteBudget(one);
  const auto a = FleetEphemeris::compiled(fleetA, hashA);
  EXPECT_EQ(FleetEphemeris::compiled(fleetA, hashA).get(), a.get());
  EXPECT_EQ(FleetEphemeris::compiledCacheApproxBytes(), one);
  const auto b = FleetEphemeris::compiled(fleetB, hashB);  // evicts A
  EXPECT_EQ(FleetEphemeris::compiledCacheApproxBytes(), one);
  EXPECT_EQ(FleetEphemeris::compiled(fleetB, hashB).get(), b.get());
  // A was evicted, so asking for it again rebuilds (and evicts B in turn).
  EXPECT_NE(FleetEphemeris::compiled(fleetA, hashA).get(), a.get());
  EXPECT_NE(FleetEphemeris::compiled(fleetB, hashB).get(), b.get());
  FleetEphemeris::setCompiledCacheByteBudget(previous);
}

// --- warm start == cold start ---------------------------------------------

TEST(TimeSweep, WarmStartAgreesWithColdStartWithinUlps) {
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
    const auto fleet = randomFleet(48, seed);
    const FleetEphemeris batch(fleet);
    TimeSweep sweep(batch);
    std::vector<Vec3> warm, cold;
    // Dense monotone grid (the warm solver's home turf), with one long
    // jump and one backwards jump to exercise the cold fallback guard.
    const double grid[] = {0.0,    30.0,   60.0,   90.0,    120.0,
                           150.0,  4000.0, 4030.0, -1000.0, -970.0};
    for (const double t : grid) {
      sweep.advance(t, warm);
      batch.positionsAt(t, cold);
      ASSERT_EQ(warm.size(), cold.size());
      for (std::size_t i = 0; i < warm.size(); ++i) {
        expectWarmMatchesCold(warm[i], cold[i], "warm sweep", t);
      }
    }
  }
}

TEST(TimeSweep, EcefOverloadMatchesScalarRotation) {
  const auto fleet = randomFleet(16, 31);
  const FleetEphemeris batch(fleet);
  TimeSweep sweep(batch);
  std::vector<Vec3> eci, ecef;
  for (const double t : {0.0, 45.0, 90.0}) {
    sweep.advance(t, eci, ecef);
    for (std::size_t i = 0; i < eci.size(); ++i) {
      const Vec3 want = eciToEcef(eci[i], t);
      EXPECT_DOUBLE_EQ(ecef[i].x, want.x);
      EXPECT_DOUBLE_EQ(ecef[i].y, want.y);
      EXPECT_DOUBLE_EQ(ecef[i].z, want.z);
    }
  }
}

TEST(SatelliteSweep, AgreesWithScalarAcrossScanAndBisectionPattern) {
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    const OrbitalElements el = randomElements(rng);
    SatelliteSweep sweep(el);
    // The handover search pattern: forward scan, then non-monotone
    // bisection probes inside one step.
    const double probes[] = {0.0,  10.0,  20.0, 30.0, 25.0,
                             22.5, 23.75, 24.0, 23.9, 4000.0};
    for (const double t : probes) {
      const Vec3 got = sweep.positionEciAt(t);
      const Vec3 want = positionEci(el, t);
      expectWarmMatchesCold(got, want, "satellite sweep", t);
    }
  }
}

TEST(SatelliteSweep, ResetMatchesFreshConstructionBitForBit) {
  // The candidate loops (HandoverPlanner::bestSatelliteAt, the session
  // sweep) reuse one SatelliteSweep across satellites via reset(); that is
  // only sound if a reset() sweep is indistinguishable from a freshly
  // constructed one on every subsequent query, bit for bit.
  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    const OrbitalElements a = randomElements(rng);
    const OrbitalElements b = randomElements(rng);
    SatelliteSweep reused(a);
    // Warm the reused sweep well into a's orbit before switching.
    for (double t = 0.0; t < 600.0; t += 10.0) (void)reused.positionEciAt(t);
    reused.reset(b);
    SatelliteSweep fresh(b);
    // The handover search pattern: forward grid scan, then bisection.
    std::vector<double> probes;
    for (double t = 0.0; t <= 900.0; t += 10.0) probes.push_back(t);
    double lo = 500.0, hi = 900.0;
    for (int i = 0; i < 40; ++i) {
      const double mid = 0.5 * (lo + hi);
      probes.push_back(mid);
      (i % 2 == 0 ? lo : hi) = mid;
    }
    for (const double t : probes) {
      const Vec3 got = reused.positionEciAt(t);
      const Vec3 want = fresh.positionEciAt(t);
      EXPECT_EQ(maxUlp(got, want), 0u) << "trial " << trial << " t " << t;
    }
  }
}

TEST(SatelliteSweep, DefaultConstructedThenResetMatchesFresh) {
  Rng rng(101);
  const OrbitalElements el = randomElements(rng);
  SatelliteSweep sweep;
  sweep.reset(el);
  SatelliteSweep fresh(el);
  for (const double t : {0.0, 10.0, 25.0, 24.5, 3'000.0}) {
    EXPECT_EQ(maxUlp(sweep.positionEciAt(t), fresh.positionEciAt(t)), 0u) << t;
  }
}

TEST(SatelliteSweep, ResetValidatesLikeTheConstructor) {
  OrbitalElements bad =
      OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.0, 0.0);
  bad.eccentricity = 1.0;
  SatelliteSweep sweep;
  EXPECT_THROW(sweep.reset(bad), InvalidArgumentError);
  EXPECT_THROW(SatelliteSweep{bad}, InvalidArgumentError);
}

// --- determinism: serial == parallel, bit for bit -------------------------

TEST(TimeSweep, SweepIsBitIdenticalAtAnyThreadCount) {
  ThreadCountGuard guard;
  const auto fleet = randomFleet(200, 55);
  const FleetEphemeris batch(fleet);

  const auto runSweep = [&](int threads) {
    setParallelThreadCount(threads);
    TimeSweep sweep(batch);
    std::vector<std::vector<Vec3>> frames;
    std::vector<Vec3> eci, ecef;
    for (double t = 0.0; t <= 600.0; t += 60.0) {
      sweep.advance(t, eci, ecef);
      frames.push_back(eci);
      frames.push_back(ecef);
    }
    return frames;
  };

  const auto serial = runSweep(1);
  for (const int threads : {2, 5, 16}) {
    const auto parallel = runSweep(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t f = 0; f < serial.size(); ++f) {
      for (std::size_t i = 0; i < serial[f].size(); ++i) {
        EXPECT_DOUBLE_EQ(serial[f][i].x, parallel[f][i].x);
        EXPECT_DOUBLE_EQ(serial[f][i].y, parallel[f][i].y);
        EXPECT_DOUBLE_EQ(serial[f][i].z, parallel[f][i].z);
      }
    }
  }
}

TEST(FleetEphemeris, ColdBatchIsBitIdenticalAtAnyThreadCount) {
  ThreadCountGuard guard;
  const auto fleet = randomFleet(150, 66);
  const FleetEphemeris batch(fleet);
  std::vector<Vec3> serialEci, serialEcef, parEci, parEcef;
  setParallelThreadCount(1);
  batch.positionsAt(300.0, serialEci, serialEcef);
  for (const int threads : {3, 8}) {
    setParallelThreadCount(threads);
    batch.positionsAt(300.0, parEci, parEcef);
    for (std::size_t i = 0; i < serialEci.size(); ++i) {
      EXPECT_DOUBLE_EQ(serialEci[i].x, parEci[i].x);
      EXPECT_DOUBLE_EQ(serialEci[i].y, parEci[i].y);
      EXPECT_DOUBLE_EQ(serialEci[i].z, parEci[i].z);
      EXPECT_DOUBLE_EQ(serialEcef[i].x, parEcef[i].x);
      EXPECT_DOUBLE_EQ(serialEcef[i].y, parEcef[i].y);
      EXPECT_DOUBLE_EQ(serialEcef[i].z, parEcef[i].z);
    }
  }
}

// --- integration: the snapshot engine rides the kernel --------------------

TEST(FleetEphemeris, SnapshotEngineStaysPinnedToScalarSpec) {
  const auto fleet = makeWalkerStar(iridiumConfig());
  const ConstellationSnapshot snap(fleet, 432.0);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const Vec3 want = positionEci(fleet[i], 432.0);
    EXPECT_DOUBLE_EQ(snap.eci(i).x, want.x);
    EXPECT_DOUBLE_EQ(snap.eci(i).y, want.y);
    EXPECT_DOUBLE_EQ(snap.eci(i).z, want.z);
  }
}

TEST(SatelliteSweep, GroundTrackMatchesScalarRecomputation) {
  const auto el = OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.4, 1.1);
  const auto track = groundTrack(el, 0.0, 1'200.0, 30.0);
  ASSERT_EQ(track.size(), 41u);
  for (const auto& p : track) {
    const Geodetic want = ecefToGeodetic(eciToEcef(positionEci(el, p.tSeconds),
                                                   p.tSeconds));
    EXPECT_NEAR(p.latitudeRad, want.latitudeRad, 1e-9);
    EXPECT_NEAR(p.longitudeRad, want.longitudeRad, 1e-9);
    EXPECT_NEAR(p.altitudeM, want.altitudeM, 1e-3);
  }
}

}  // namespace
}  // namespace openspace
