// Unit tests for ephemeris/site serialization (the public-topology
// interchange format).
#include <gtest/gtest.h>

#include <sstream>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/io/ephemeris_io.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {
namespace {

EphemerisService sampleEphemeris() {
  EphemerisService eph;
  int p = 0;
  for (const auto& el : makeWalkerStar(iridiumConfig())) {
    eph.publish(static_cast<ProviderId>(1 + (p++ % 3)), el);
  }
  return eph;
}

TEST(EphemerisIo, RoundTripIsExact) {
  const EphemerisService original = sampleEphemeris();
  const EphemerisService parsed =
      ephemerisFromString(ephemerisToString(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (const SatelliteId sid : original.satellites()) {
    ASSERT_TRUE(parsed.contains(sid));
    const auto& a = original.record(sid);
    const auto& b = parsed.record(sid);
    EXPECT_EQ(a.owner, b.owner);
    // max_digits10 serialization: bit-exact round trip.
    EXPECT_EQ(a.elements.semiMajorAxisM, b.elements.semiMajorAxisM);
    EXPECT_EQ(a.elements.eccentricity, b.elements.eccentricity);
    EXPECT_EQ(a.elements.inclinationRad, b.elements.inclinationRad);
    EXPECT_EQ(a.elements.raanRad, b.elements.raanRad);
    EXPECT_EQ(a.elements.argPerigeeRad, b.elements.argPerigeeRad);
    EXPECT_EQ(a.elements.meanAnomalyAtEpochRad,
              b.elements.meanAnomalyAtEpochRad);
    // Therefore positions agree exactly far into the future.
    EXPECT_EQ(original.positionEci(sid, 86'400.0),
              parsed.positionEci(sid, 86'400.0));
  }
}

TEST(EphemerisIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "\n"
      "sat 5 2 7158137.0 0 1.5 0.5 0 3.0\n"
      "# trailing comment\n";
  const EphemerisService eph = ephemerisFromString(text);
  EXPECT_EQ(eph.size(), 1u);
  EXPECT_TRUE(eph.contains(5));
  EXPECT_EQ(eph.record(5).owner, 2u);
}

TEST(EphemerisIo, MalformedRecordsThrow) {
  EXPECT_THROW(ephemerisFromString("sat 5 2 nonsense 0 1 0 0 0\n"),
               ProtocolError);
  EXPECT_THROW(ephemerisFromString("sat 5 2 7158137.0 0 1.5\n"),  // short
               ProtocolError);
  EXPECT_THROW(ephemerisFromString("sat 5 2 -100.0 0 1.5 0 0 0\n"),  // a <= 0
               ProtocolError);
  EXPECT_THROW(ephemerisFromString("sat 5 2 7158137.0 1.5 1.5 0 0 0\n"),  // e
               ProtocolError);
  EXPECT_THROW(
      ephemerisFromString("sat 5 2 7158137.0 0 1.5 0 0 0\n"
                          "sat 5 3 7158137.0 0 1.5 0 0 0\n"),  // dup id
      ProtocolError);
}

TEST(EphemerisIo, UnknownRecordKindsAreSkipped) {
  const std::string text =
      "sat 1 1 7158137.0 0 1.5 0 0 0\n"
      "tle 1 some legacy line\n"
      "site user 3 0.5 0.5 0 someone\n";
  const EphemerisService eph = ephemerisFromString(text);
  EXPECT_EQ(eph.size(), 1u);
}

TEST(SiteIo, RoundTripWithNamesContainingSpaces) {
  std::vector<SiteRecord> sites;
  SiteRecord gs;
  gs.isStation = true;
  gs.site = {"svalbard ground station", Geodetic::fromDegrees(78.23, 15.41),
             4};
  sites.push_back(gs);
  SiteRecord user;
  user.isStation = false;
  user.site = {"nomad user", Geodetic::fromDegrees(-1.29, 36.82, 1700.0), 7};
  sites.push_back(user);

  std::ostringstream os;
  saveSites(sites, os);
  std::istringstream is(os.str());
  const auto parsed = loadSites(is);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_TRUE(parsed[0].isStation);
  EXPECT_EQ(parsed[0].site.name, "svalbard ground station");
  EXPECT_EQ(parsed[0].site.provider, 4u);
  EXPECT_FALSE(parsed[1].isStation);
  EXPECT_EQ(parsed[1].site.name, "nomad user");
  EXPECT_EQ(parsed[1].site.location.altitudeM, 1700.0);
  EXPECT_EQ(parsed[1].site.location.latitudeRad,
            Geodetic::fromDegrees(-1.29, 0).latitudeRad);
}

TEST(SiteIo, MalformedSitesThrow) {
  std::istringstream bad1("site station notanumber 0 0 0 x\n");
  EXPECT_THROW(loadSites(bad1), ProtocolError);
  std::istringstream bad2("site tower 1 0 0 0 x\n");  // unknown kind
  EXPECT_THROW(loadSites(bad2), ProtocolError);
  std::istringstream bad3("site user 1 0 0 0\n");  // missing name
  EXPECT_THROW(loadSites(bad3), ProtocolError);
}

TEST(CombinedIo, OneFileCarriesBothRecordKinds) {
  const EphemerisService eph = sampleEphemeris();
  std::vector<SiteRecord> sites = {
      {true, {"gw", Geodetic::fromDegrees(47.0, -122.0), 1}}};
  std::ostringstream os;
  saveEphemeris(eph, os);
  saveSites(sites, os);
  const std::string file = os.str();

  std::istringstream is1(file);
  EXPECT_EQ(loadEphemeris(is1).size(), eph.size());
  std::istringstream is2(file);
  EXPECT_EQ(loadSites(is2).size(), 1u);
}

}  // namespace
}  // namespace openspace
