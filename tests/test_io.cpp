// Unit tests for ephemeris/site serialization (the public-topology
// interchange format).
#include <gtest/gtest.h>

#include <sstream>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/io/ephemeris_io.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {
namespace {

EphemerisService sampleEphemeris() {
  EphemerisService eph;
  int p = 0;
  for (const auto& el : makeWalkerStar(iridiumConfig())) {
    eph.publish(static_cast<ProviderId>(1 + (p++ % 3)), el);
  }
  return eph;
}

TEST(EphemerisIo, RoundTripIsExact) {
  const EphemerisService original = sampleEphemeris();
  const EphemerisService parsed =
      ephemerisFromString(ephemerisToString(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (const SatelliteId sid : original.satellites()) {
    ASSERT_TRUE(parsed.contains(sid));
    const auto& a = original.record(sid);
    const auto& b = parsed.record(sid);
    EXPECT_EQ(a.owner, b.owner);
    // max_digits10 serialization: bit-exact round trip.
    EXPECT_EQ(a.elements.semiMajorAxisM, b.elements.semiMajorAxisM);
    EXPECT_EQ(a.elements.eccentricity, b.elements.eccentricity);
    EXPECT_EQ(a.elements.inclinationRad, b.elements.inclinationRad);
    EXPECT_EQ(a.elements.raanRad, b.elements.raanRad);
    EXPECT_EQ(a.elements.argPerigeeRad, b.elements.argPerigeeRad);
    EXPECT_EQ(a.elements.meanAnomalyAtEpochRad,
              b.elements.meanAnomalyAtEpochRad);
    // Therefore positions agree exactly far into the future.
    EXPECT_EQ(original.positionEci(sid, 86'400.0),
              parsed.positionEci(sid, 86'400.0));
  }
}

TEST(EphemerisIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "\n"
      "sat 5 2 7158137.0 0 1.5 0.5 0 3.0\n"
      "# trailing comment\n";
  const EphemerisService eph = ephemerisFromString(text);
  EXPECT_EQ(eph.size(), 1u);
  EXPECT_TRUE(eph.contains(SatelliteId{5}));
  EXPECT_EQ(eph.record(SatelliteId{5}).owner, ProviderId{2u});
}

TEST(EphemerisIo, MalformedRecordsThrow) {
  EXPECT_THROW(ephemerisFromString("sat 5 2 nonsense 0 1 0 0 0\n"),
               ProtocolError);
  EXPECT_THROW(ephemerisFromString("sat 5 2 7158137.0 0 1.5\n"),  // short
               ProtocolError);
  EXPECT_THROW(ephemerisFromString("sat 5 2 -100.0 0 1.5 0 0 0\n"),  // a <= 0
               ProtocolError);
  EXPECT_THROW(ephemerisFromString("sat 5 2 7158137.0 1.5 1.5 0 0 0\n"),  // e
               ProtocolError);
  EXPECT_THROW(
      ephemerisFromString("sat 5 2 7158137.0 0 1.5 0 0 0\n"
                          "sat 5 3 7158137.0 0 1.5 0 0 0\n"),  // dup id
      ProtocolError);
}

TEST(EphemerisIo, NonFiniteElementsThrow) {
  // "nan"/"inf" parse as valid doubles and NaN slips past range checks
  // (NaN <= 0.0 is false), so the loader must reject them explicitly.
  EXPECT_THROW(ephemerisFromString("sat 5 2 nan 0 1.5 0 0 0\n"),
               ProtocolError);
  EXPECT_THROW(ephemerisFromString("sat 5 2 inf 0 1.5 0 0 0\n"),
               ProtocolError);
  EXPECT_THROW(ephemerisFromString("sat 5 2 7158137.0 nan 1.5 0 0 0\n"),
               ProtocolError);
  EXPECT_THROW(ephemerisFromString("sat 5 2 7158137.0 0 1.5 0 0 nan\n"),
               ProtocolError);
}

TEST(EphemerisIo, ReservedIdZeroThrows) {
  // Id 0 means "unset" in every domain (core/ids.hpp); a file that claims
  // it is corrupt, not merely unusual.
  EXPECT_THROW(ephemerisFromString("sat 0 2 7158137.0 0 1.5 0 0 0\n"),
               ProtocolError);
}

TEST(EphemerisIo, TruncatedStreamYieldsErrorNotPartialData) {
  // A file cut off mid-record (e.g. an interrupted download) must not load
  // as a smaller-but-valid constellation.
  const std::string full = ephemerisToString(sampleEphemeris());
  // Cut at the last field separator: the final record loses its mean
  // anomaly and must be rejected as short, not silently dropped.
  const std::string truncated = full.substr(0, full.find_last_of(' '));
  EXPECT_THROW(ephemerisFromString(truncated), ProtocolError);
}

TEST(EphemerisIo, EmptyInputIsAnEmptyService) {
  EXPECT_EQ(ephemerisFromString("").size(), 0u);
  EXPECT_EQ(ephemerisFromString("# only comments\n\n").size(), 0u);
}

TEST(EphemerisIo, ErrorMessagesNameTheOffendingLine) {
  try {
    ephemerisFromString("sat 1 1 7158137.0 0 1.5 0 0 0\nsat 9 2 bogus\n");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(EphemerisIo, UnknownRecordKindsAreSkipped) {
  const std::string text =
      "sat 1 1 7158137.0 0 1.5 0 0 0\n"
      "tle 1 some legacy line\n"
      "site user 3 0.5 0.5 0 someone\n";
  const EphemerisService eph = ephemerisFromString(text);
  EXPECT_EQ(eph.size(), 1u);
}

TEST(SiteIo, RoundTripWithNamesContainingSpaces) {
  std::vector<SiteRecord> sites;
  SiteRecord gs;
  gs.isStation = true;
  gs.site = {"svalbard ground station", Geodetic::fromDegrees(78.23, 15.41),
             ProviderId{4}};
  sites.push_back(gs);
  SiteRecord user;
  user.isStation = false;
  user.site = {"nomad user", Geodetic::fromDegrees(-1.29, 36.82, 1700.0), ProviderId{7}};
  sites.push_back(user);

  std::ostringstream os;
  saveSites(sites, os);
  std::istringstream is(os.str());
  const auto parsed = loadSites(is);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_TRUE(parsed[0].isStation);
  EXPECT_EQ(parsed[0].site.name, "svalbard ground station");
  EXPECT_EQ(parsed[0].site.provider, ProviderId{4u});
  EXPECT_FALSE(parsed[1].isStation);
  EXPECT_EQ(parsed[1].site.name, "nomad user");
  EXPECT_EQ(parsed[1].site.location.altitudeM, 1700.0);
  EXPECT_EQ(parsed[1].site.location.latitudeRad,
            Geodetic::fromDegrees(-1.29, 0).latitudeRad);
}

TEST(SiteIo, MalformedSitesThrow) {
  std::istringstream bad1("site station notanumber 0 0 0 x\n");
  EXPECT_THROW(loadSites(bad1), ProtocolError);
  std::istringstream bad2("site tower 1 0 0 0 x\n");  // unknown kind
  EXPECT_THROW(loadSites(bad2), ProtocolError);
  std::istringstream bad3("site user 1 0 0 0\n");  // missing name
  EXPECT_THROW(loadSites(bad3), ProtocolError);
  std::istringstream bad4("site user 1 nan 0 0 x\n");  // non-finite latitude
  EXPECT_THROW(loadSites(bad4), ProtocolError);
  std::istringstream bad5("site user 1 0 0\n");  // truncated record
  EXPECT_THROW(loadSites(bad5), ProtocolError);
}

TEST(CombinedIo, OneFileCarriesBothRecordKinds) {
  const EphemerisService eph = sampleEphemeris();
  std::vector<SiteRecord> sites = {
      {true, {"gw", Geodetic::fromDegrees(47.0, -122.0), ProviderId{1}}}};
  std::ostringstream os;
  saveEphemeris(eph, os);
  saveSites(sites, os);
  const std::string file = os.str();

  std::istringstream is1(file);
  EXPECT_EQ(loadEphemeris(is1).size(), eph.size());
  std::istringstream is2(file);
  EXPECT_EQ(loadSites(is2).size(), 1u);
}

}  // namespace
}  // namespace openspace
