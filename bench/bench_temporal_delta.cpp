// Incremental temporal topology benchmark: delta-patched CompactGraphs and
// repaired routing trees vs the full per-step recompile.
//
// Scenario (scale 1.0): the paper's 66-sat Iridium plus-grid, six
// gateways plus twelve user terminals, a 1-hour sweep at 1 s steps.
//
// Structure — verification and timing are separate sweeps:
//  * verify (untimed) — fresh and delta run side by side over every step.
//    Graphs: contentChecksum() equality per step under the delay cost
//    model. Routes: the full dist + parent-edge arrays of every repaired
//    tree against its fresh-Dijkstra twin per step under the hop cost
//    model. Any single-bit divergence on any step fails the run (hard
//    gate, exit non-zero). Checksumming lives here, outside the timed
//    passes, because hashing every edge payload costs more than the delta
//    step being measured and would dilute both sides of the ratio.
//  * graphs (timed) — per-step compiled-graph production. Fresh side runs
//    the executable spec every step: TopologyBuilder::snapshot()
//    (hash-map NetworkGraph, name strings) + compileGraph(). Delta side
//    walks one IncrementalTopology: flat LinkSpec enumeration, positional
//    diff, payload patch of the previous arrays. Timed loops fold a
//    cheap per-step summary (edge count + sampled cost bits) — identical
//    across modes (secondary gate) and stable across passes.
//  * routes (timed) — per-step topology + routing-tree maintenance, one
//    tree per source. Fresh recompiles and re-runs full Dijkstra for
//    every source; delta patches the graph and repairs the trees
//    (RouteEngine::repairShortestPathTree — only the delta-affected
//    frontier is re-settled). This is the >= 5x headline the committed
//    baseline pins via tools/bench_compare.py; wall-clock floors are
//    enforced there, not here (in-bench timing asserts flake on loaded
//    machines, checksum gates cannot).
//  * batch (untimed) — batchShortestPathTrees over all satellites, one
//    thread vs the pool: per-tree checksums must match bit for bit (hard
//    gate; the TSan lane runs this at reduced scale).
//
// Besides the human-readable table the bench writes a machine-readable
// JSON record to BENCH_temporal_delta.json (or argv[1]); argv[2] is an
// optional workload scale (e.g. 0.02 for the TSan lane).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/core/hash.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/engine.hpp>
#include <openspace/topology/builder.hpp>
#include <openspace/topology/compact_graph.hpp>
#include <openspace/topology/delta.hpp>

namespace {

using namespace openspace;

constexpr int kPasses = 3;  // best-of to shrug off scheduler noise

double nowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timed {
  double bestPassS = 0.0;
  std::uint64_t checksum = 0;
};

/// Time `pass` (returning a checksum) `passes` times; keep the fastest wall
/// time and require a stable checksum.
template <typename Pass>
Timed timeIt(Pass&& pass, int passes = kPasses) {
  Timed r;
  for (int p = 0; p < passes; ++p) {
    const double t0 = nowS();
    const std::uint64_t sum = pass();
    const double dt = nowS() - t0;
    if (p == 0 || dt < r.bestPassS) r.bestPassS = dt;
    if (p == 0) {
      r.checksum = sum;
    } else if (sum != r.checksum) {
      std::fprintf(stderr, "non-deterministic pass checksum\n");
      std::exit(1);
    }
  }
  return r;
}

/// Full-tree fold: every dist bit and parent edge (verification sweep).
std::uint64_t mixTree(std::uint64_t h, const PathTree& tree) {
  for (const double d : tree.distByIndex()) h = fnv1a(h, bitsOf(d));
  for (const std::uint32_t p : tree.parentEdgeByIndex()) h = fnv1a(h, p);
  return h;
}

/// O(1) per-step graph summary for the timed loops: identical for
/// content-identical graphs, cheap enough not to perturb the measurement.
std::uint64_t mixGraphSummary(std::uint64_t h, const CompactGraph& g) {
  const std::size_t e = g.edgeCount();
  h = fnv1a(h, e);
  if (e > 0) {
    h = fnv1a(h, bitsOf(g.edgeCost(0)));
    h = fnv1a(h, bitsOf(g.edgeCapacityBps(e - 1)));
  }
  return h;
}

/// O(1) per-tree summary for the timed loops.
std::uint64_t mixTreeSummary(std::uint64_t h, const PathTree& tree) {
  h = fnv1a(h, bitsOf(tree.distByIndex().back()));
  h = fnv1a(h, tree.parentEdgeByIndex().back());
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const char* jsonPath = argc > 1 ? argv[1] : "BENCH_temporal_delta.json";
  const double scale =
      argc > 2 ? std::clamp(std::atof(argv[2]), 1e-3, 10.0) : 1.0;
  const double wallStartS = nowS();
  const int poolThreads = parallelThreadCount();

  // --- shared constellation: the paper's 66-sat Iridium reference ----------
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) {
    eph.publish(ProviderId{1}, el);
  }
  TopologyBuilder topo(eph);
  const struct {
    const char* name;
    double latDeg, lonDeg;
  } kGateways[] = {
      {"paris", 48.86, 2.35},       {"denver", 39.74, -104.99},
      {"jburg", -26.20, 28.05},     {"sydney", -33.87, 151.21},
      {"saopaulo", -23.55, -46.63}, {"tokyo", 35.68, 139.69},
  };
  for (const auto& gw : kGateways) {
    topo.addGroundStation(
        {gw.name, Geodetic::fromDegrees(gw.latDeg, gw.lonDeg), ProviderId{1}});
  }
  // A dozen user terminals spread across latitudes: democratized access is
  // the workload, and user links are most of the fresh path's per-step
  // visibility scanning.
  for (int u = 0; u < 12; ++u) {
    topo.addUser({"user-" + std::to_string(u),
                  Geodetic::fromDegrees(-60.0 + 11.0 * u, 30.0 * u - 180.0),
                  ProviderId{2}});
  }
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  opt.minElevationRad = deg2rad(10.0);
  opt.includeUserLinks = true;

  const int steps = std::max(2, static_cast<int>(3'600 * scale));
  const double stepS = 1.0;
  const std::size_t satCount = eph.satellites().size();

  // One tree per source, sources spread across the constellation. The hop
  // model is cost-static, so the delta side's repairs touch work only where
  // the link set actually churned.
  std::vector<NodeId> sources;
  {
    const std::vector<SatelliteId> sats = eph.satellites();
    for (std::size_t s = 0; s < sats.size(); s += 8) {
      sources.push_back(topo.nodeOf(sats[s]));
    }
  }

  // --- verification sweep (untimed): delta==fresh, every step, every bit --
  bool graphMatch = true;
  bool routesMatch = true;
  std::uint64_t graphChecksum = kFnvOffsetBasis;
  std::uint64_t routesChecksum = kFnvOffsetBasis;
  std::size_t structuralSteps = 0, repairedSteps = 0, fallbackSteps = 0;
  {
    const CompactGraph::CostFn delayCost = delayCostModel().link;
    const CompactGraph::CostFn hopCost = hopCostModel().link;
    IncrementalTopology incG(topo, opt, delayCostModel());
    IncrementalTopology incR(topo, opt, hopCostModel());
    std::vector<PathTree> trees(sources.size());
    for (int i = 0; i < steps; ++i) {
      const double t = i * stepS;
      // Graphs under the delay model.
      const CompactGraph freshG = compileGraph(topo.snapshot(t, opt), delayCost);
      if (incG.step(t).structural) ++structuralSteps;
      const std::uint64_t freshSum = freshG.contentChecksum();
      graphMatch = graphMatch && freshSum == incG.graph()->contentChecksum();
      graphChecksum = fnv1a(graphChecksum, freshSum);
      // Trees under the hop model: every repaired tree against its
      // fresh-Dijkstra twin.
      incR.step(t);
      const RouteEngine freshEngine(std::make_shared<const CompactGraph>(
          compileGraph(topo.snapshot(t, opt), hopCost)));
      const RouteEngine deltaEngine(incR.graph());
      bool repairedAll = true;
      for (std::size_t s = 0; s < sources.size(); ++s) {
        if (trees[s].valid()) {
          TreeRepairStats stats;
          trees[s] = deltaEngine.repairShortestPathTree(trees[s], &stats);
          repairedAll = repairedAll && stats.repaired;
        } else {
          trees[s] = deltaEngine.shortestPathTree(sources[s]);
          repairedAll = false;
        }
        const std::uint64_t treeSum =
            mixTree(kFnvOffsetBasis, freshEngine.shortestPathTree(sources[s]));
        routesMatch =
            routesMatch && treeSum == mixTree(kFnvOffsetBasis, trees[s]);
        routesChecksum = fnv1a(routesChecksum, treeSum);
      }
      if (i > 0) ++(repairedAll ? repairedSteps : fallbackSteps);
    }
  }

  // --- phase A (timed): per-step graph production (delay cost model) -------
  const Timed graphFresh = timeIt([&] {
    const CompactGraph::CostFn cost = delayCostModel().link;
    std::uint64_t h = kFnvOffsetBasis;
    for (int i = 0; i < steps; ++i) {
      const CompactGraph g = compileGraph(topo.snapshot(i * stepS, opt), cost);
      h = mixGraphSummary(h, g);
    }
    return h;
  });

  const Timed graphDelta = timeIt([&] {
    IncrementalTopology inc(topo, opt, delayCostModel());
    std::uint64_t h = kFnvOffsetBasis;
    for (int i = 0; i < steps; ++i) {
      inc.step(i * stepS);
      h = mixGraphSummary(h, *inc.graph());
    }
    return h;
  });
  const bool graphSummaryMatch = graphFresh.checksum == graphDelta.checksum;
  const double speedupGraph = graphDelta.bestPassS > 0.0
                                  ? graphFresh.bestPassS / graphDelta.bestPassS
                                  : 0.0;

  // --- phase B (timed): per-step topology + routing trees (hop model) ------
  const Timed routesFresh = timeIt([&] {
    const CompactGraph::CostFn cost = hopCostModel().link;
    std::uint64_t h = kFnvOffsetBasis;
    for (int i = 0; i < steps; ++i) {
      const RouteEngine engine(std::make_shared<const CompactGraph>(
          compileGraph(topo.snapshot(i * stepS, opt), cost)));
      for (const NodeId src : sources) {
        h = mixTreeSummary(h, engine.shortestPathTree(src));
      }
    }
    return h;
  });

  const Timed routesDelta = timeIt([&] {
    IncrementalTopology inc(topo, opt, hopCostModel());
    std::vector<PathTree> trees(sources.size());
    std::uint64_t h = kFnvOffsetBasis;
    for (int i = 0; i < steps; ++i) {
      inc.step(i * stepS);
      const RouteEngine engine(inc.graph());
      for (std::size_t s = 0; s < sources.size(); ++s) {
        trees[s] = trees[s].valid()
                       ? engine.repairShortestPathTree(trees[s])
                       : engine.shortestPathTree(sources[s]);
        h = mixTreeSummary(h, trees[s]);
      }
    }
    return h;
  });
  const bool routesSummaryMatch = routesFresh.checksum == routesDelta.checksum;
  const double speedupRoutes =
      routesDelta.bestPassS > 0.0 ? routesFresh.bestPassS / routesDelta.bestPassS
                                  : 0.0;

  // --- phase C: batch trees, serial == parallel ----------------------------
  std::vector<NodeId> allSats;
  for (const SatelliteId sid : eph.satellites()) {
    allSats.push_back(topo.nodeOf(sid));
  }
  const auto batchGraph = std::make_shared<const CompactGraph>(
      compileGraph(topo.snapshot(0.0, opt), delayCostModel().link));
  const RouteEngine batchEngine(batchGraph);
  const auto batchChecksum = [&] {
    std::uint64_t h = kFnvOffsetBasis;
    for (const PathTree& t : batchEngine.batchShortestPathTrees(allSats)) {
      h = mixTree(h, t);
    }
    return h;
  };
  setParallelThreadCount(1);
  const std::uint64_t batchSerial = batchChecksum();
  setParallelThreadCount(std::max(poolThreads, 4));
  const int parThreads = parallelThreadCount();
  const std::uint64_t batchParallel = batchChecksum();
  setParallelThreadCount(poolThreads);
  const bool batchMatch = batchSerial == batchParallel;

  const bool allMatch = graphMatch && routesMatch && graphSummaryMatch &&
                        routesSummaryMatch && batchMatch;

  // --- report --------------------------------------------------------------
  const double perStepFreshMs = 1e3 * routesFresh.bestPassS / steps;
  const double perStepDeltaMs = 1e3 * routesDelta.bestPassS / steps;
  std::printf("# Incremental temporal topology: delta patching + route "
              "repair vs full recompile (%zu sats, %d steps of %.0f s, "
              "scale=%.3f, best of %d passes)\n\n",
              satCount, steps, stepS, scale, kPasses);
  std::printf("%-10s %-10s %-12s %-12s %-10s\n", "phase", "work", "fresh_s",
              "delta_s", "speedup");
  std::printf("%-10s %-10d %-12.3f %-12.3f %-10.2f\n", "graphs", steps,
              graphFresh.bestPassS, graphDelta.bestPassS, speedupGraph);
  std::printf("%-10s %-10d %-12.3f %-12.3f %-10.2f\n", "routes", steps,
              routesFresh.bestPassS, routesDelta.bestPassS, speedupRoutes);
  std::printf("\n# graphs: %zu structural steps (%.1f%%), the rest patched "
              "the previous arrays in place\n",
              structuralSteps,
              100.0 * static_cast<double>(structuralSteps) / steps);
  std::printf("# routes: %zu sources, %zu repaired steps, %zu fallback "
              "steps; per step %.3f ms fresh -> %.3f ms delta\n",
              sources.size(), repairedSteps, fallbackSteps, perStepFreshMs,
              perStepDeltaMs);
  std::printf("# gates: graphs delta==fresh %s  routes delta==fresh %s  "
              "batch serial==parallel %s  timed summaries %s\n",
              graphMatch ? "MATCH" : "MISMATCH",
              routesMatch ? "MATCH" : "MISMATCH",
              batchMatch ? "MATCH" : "MISMATCH",
              graphSummaryMatch && routesSummaryMatch ? "MATCH" : "MISMATCH");

  const double wallS = nowS() - wallStartS;
  if (std::FILE* f = std::fopen(jsonPath, "w")) {
    std::fprintf(
        f,
        "{\n  \"bench\": \"temporal_delta\",\n"
        "  \"wall_seconds\": %.6f,\n"
        "  \"threads\": %d,\n"
        "  \"scale\": %.4f,\n"
        "  \"sats\": %zu,\n"
        "  \"steps\": %d,\n"
        "  \"step_s\": %.3f,\n"
        "  \"graph_fresh_s\": %.6f,\n"
        "  \"graph_delta_s\": %.6f,\n"
        "  \"speedup_graph\": %.3f,\n"
        "  \"structural_steps\": %zu,\n"
        "  \"route_sources\": %zu,\n"
        "  \"routes_fresh_s\": %.6f,\n"
        "  \"routes_delta_s\": %.6f,\n"
        "  \"speedup_routes\": %.3f,\n"
        "  \"repaired_steps\": %zu,\n"
        "  \"fallback_steps\": %zu,\n"
        "  \"per_step_fresh_ms\": %.4f,\n"
        "  \"per_step_delta_ms\": %.4f,\n"
        "  \"graph_checksum\": \"%016llx\",\n"
        "  \"routes_checksum\": \"%016llx\",\n"
        "  \"batch_checksum\": \"%016llx\",\n"
        "  \"checksums_match\": %s\n}\n",
        wallS, parThreads, scale, satCount, steps, stepS,
        graphFresh.bestPassS, graphDelta.bestPassS, speedupGraph,
        structuralSteps, sources.size(), routesFresh.bestPassS,
        routesDelta.bestPassS, speedupRoutes, repairedSteps, fallbackSteps,
        perStepFreshMs, perStepDeltaMs,
        static_cast<unsigned long long>(graphChecksum),
        static_cast<unsigned long long>(routesChecksum),
        static_cast<unsigned long long>(batchSerial),
        allMatch ? "true" : "false");
    std::fclose(f);
    std::printf("# json: %s\n", jsonPath);
  }
  return allMatch ? 0 : 1;
}
