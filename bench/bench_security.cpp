// §5(6) study: detecting and cutting off bad actors.
//
// A malicious provider inflates its transit books by a sweep of fraud
// factors. The table reports: whether cross-verification catches it, what
// the witness-arbitrated audit attributes, the provider's reputation after
// the audit, and the routing availability before/after quarantine (the
// cost of cutting off an actor that also carries honest traffic).
#include <cstdio>

#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/security/reputation.hpp>
#include <openspace/sim/scenario.hpp>

int main() {
  using namespace openspace;

  std::printf("# Security study: ledger fraud detection and quarantine\n\n");
  std::printf("%-12s %-10s %-12s %-12s %-12s %-14s\n", "fraud_x", "caught",
              "suspected", "reputation", "quarantined", "reach_after");

  for (const double fraudFactor : {1.0, 1.05, 1.25, 1.5, 2.0, 5.0}) {
    // Three providers, shared constellation, real traffic epoch.
    ScenarioConfig cfg;
    cfg.providers = {{"honest-a", 22, 0.0, 0.08},
                     {"mallory", 22, 0.0, 0.08},
                     {"honest-b", 22, 0.0, 0.08}};
    cfg.coordinatedWalker = true;
    cfg.stations = {{"gw-a", Geodetic::fromDegrees(47.0, -122.0), 0},
                    {"gw-m", Geodetic::fromDegrees(1.35, 103.82), 1},
                    {"gw-b", Geodetic::fromDegrees(-1.29, 36.82), 2}};
    cfg.users = {{"u-a", Geodetic::fromDegrees(40.44, -79.99), 0},
                 {"u-b", Geodetic::fromDegrees(-33.87, 151.21), 2}};
    cfg.seed = 13;
    Scenario scenario(cfg);
    scenario.runTrafficEpoch(0.0, 3.0, 2e6);
    SettlementEngine& engine = scenario.settlement();

    // Mallory (provider 2) inflates every carried-for-others entry.
    const ProviderId mallory = scenario.providerId(1);
    if (fraudFactor > 1.0) {
      auto& book = const_cast<TrafficLedger&>(engine.ledger(mallory));
      const auto entries = book.entries();  // copy: we mutate below
      for (const auto& [key, bytes] : entries) {
        if (key.first == mallory && key.second != mallory) {
          book.record(key.first, key.second, bytes * (fraudFactor - 1.0));
        }
      }
    }

    const bool caught = !engine.crossVerify();
    const auto findings = auditLedgers(engine);
    ReputationTracker rep(0.7);
    applyAuditFindings(findings, rep);
    int suspectedMallory = 0;
    for (const auto& f : findings) {
      if (f.suspected == mallory) ++suspectedMallory;
    }

    // Routing availability for user A after quarantine enforcement.
    const NetworkGraph g = scenario.snapshot(0.0);
    const LinkCostFn cost = quarantineAwareCost(latencyCost(), rep);
    const Route r =
        shortestPath(g, scenario.userNode(0), scenario.homeGatewayOf(0), cost);

    std::printf("%-12.2f %-10s %-12d %-12.3f %-12s %-14s\n", fraudFactor,
                caught ? "yes" : "no", suspectedMallory, rep.score(mallory),
                rep.quarantined(mallory) ? "yes" : "no",
                r.valid() ? "routable" : "cut-off");
  }

  std::printf("\n# Reading: any inflation beyond tolerance is caught by\n"
              "# cross-verification and witness arbitration pins it on the\n"
              "# inflating carrier; large fraud crosses the quarantine\n"
              "# threshold. Note the enforcement trade-off the last column\n"
              "# exposes: cutting off a provider that owns a third of an\n"
              "# interleaved fleet can partition service for users whose\n"
              "# paths depended on it — quarantine has a coverage price.\n");
  return 0;
}
