// §5(1) "modelling a potential user base along with potential user traffic
// patterns": area coverage vs demand-weighted coverage across constellation
// designs, plus the diurnal load profile a provider must provision for.
//
// The architectural point: for small OpenSpace providers, *demand-weighted*
// coverage (what their customers experience) diverges from area coverage —
// a mid-inclination shell serving the urban belt beats a polar shell of the
// same size commercially, which shapes what kinds of fleets small players
// rationally contribute.
#include <cstdio>

#include <openspace/coverage/coverage.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/sim/population.hpp>

int main() {
  using namespace openspace;
  const PopulationModel world = defaultWorldPopulation();

  std::printf("# Demand vs area coverage (36-satellite shells, 780 km, "
              "10 deg mask)\n\n");
  std::printf("%-14s %-12s %-14s %-14s %-10s\n", "design", "incl_deg",
              "area_cov", "demand_cov", "ratio");

  struct Design {
    const char* name;
    double inclDeg;
    bool star;
  };
  const Design designs[] = {
      {"equator-belt", 20.0, false}, {"mid-incl", 35.0, false},
      {"starlink-like", 53.0, false}, {"high-incl", 70.0, false},
      {"polar-star", 86.4, true},
  };
  for (const auto& d : designs) {
    WalkerConfig wc;
    wc.totalSatellites = 36;
    wc.planes = 6;
    wc.phasing = 1;
    wc.altitudeM = km(780.0);
    wc.inclinationRad = deg2rad(d.inclDeg);
    const auto sats = d.star ? makeWalkerStar(wc) : makeWalkerDelta(wc);
    Rng a(3), b(3);
    const double area = timeAveragedCoverage(sats, 0.0, sats.front().periodS(),
                                             6, deg2rad(10.0), 3000, a);
    // Time-average the demand coverage over one period too.
    double demand = 0.0;
    const int steps = 6;
    for (int i = 0; i < steps; ++i) {
      const double t = sats.front().periodS() * i / steps;
      demand += world.demandWeightedCoverage(sats, t, deg2rad(10.0), 2000, b);
    }
    demand /= steps;
    std::printf("%-14s %-12.1f %-14.3f %-14.3f %-10.2f\n", d.name, d.inclDeg,
                area, demand, demand / std::max(area, 1e-9));
  }

  std::printf("\n# Diurnal demand profile (global aggregate, 24 centers):\n");
  std::printf("%-8s %-14s\n", "utc_h", "relative_load");
  const auto& centers = world.centers();
  for (int h = 0; h < 24; h += 2) {
    double load = 0.0, weight = 0.0;
    for (const auto& c : centers) {
      load += c.weightMillions *
              diurnalDemandFactor(h * 3600.0, c.location.longitudeRad);
      weight += c.weightMillions;
    }
    std::printf("%-8d %-14.3f\n", h, load / weight);
  }

  std::printf("\n# Reading: the demand/area ratio varies ~0.7-1.2x across\n"
              "# designs — a constellation's commercial value is not its area\n"
              "# coverage. Shells whose ground tracks dwell over the 20-55 N\n"
              "# demand belt (mid-inclination delta, polar star with its\n"
              "# dense high-latitude crossings) over-deliver demand coverage;\n"
              "# designs that park coverage over empty ocean/high latitudes\n"
              "# without belt dwell (70 deg delta here) under-deliver. The\n"
              "# aggregate diurnal curve stays within a ~1.5x band because\n"
              "# demand centers span all longitudes — the follow-the-evening\n"
              "# load walks around the planet rather than pulsing.\n");
  return 0;
}
