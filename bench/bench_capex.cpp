// Capex study (§3 + §4): what collaboration buys a small provider.
//
// Anchors: FCC small-sat fee $12,145 and the $500k laser terminal premium
// (both from the paper). The table shows the up-front cost of fielding a
// coverage-capable constellation as one monolith vs. split across K
// collaborating providers — the paper's argument that OpenSpace lowers the
// all-or-nothing entry barrier.
#include <cstdio>

#include <openspace/coverage/coverage.hpp>
#include <openspace/econ/capex.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>

int main() {
  using namespace openspace;

  const SatelliteCostModel rf = rfOnlySatellite();
  const SatelliteCostModel laser = laserEquippedSatellite();
  std::printf("# Unit economics (paper anchors: FCC fee $12,145; laser "
              "terminal $500k, 15 kg)\n");
  std::printf("RF-only satellite:       $%.2fM  (%.0f kg)\n",
              rf.unitCostUsd() / 1e6, rf.totalMassKg());
  std::printf("laser-equipped satellite: $%.2fM  (%.0f kg)  [+$%.2fM premium]\n\n",
              laser.unitCostUsd() / 1e6, laser.totalMassKg(),
              (laser.unitCostUsd() - rf.unitCostUsd()) / 1e6);

  // Coverage targets: how many Iridium-like satellites buy how much
  // coverage (time-averaged), and what that fleet costs under different
  // collaboration splits.
  std::printf("%-6s %-10s %-14s %-16s %-16s %-16s\n", "sats", "coverage",
              "monolith_$M", "2-way_max_$M", "6-way_max_$M", "12-way_max_$M");
  const GroundStationCostModel gs;
  for (const int n : {12, 24, 36, 48, 66, 72}) {
    WalkerConfig wc = iridiumConfig();
    wc.totalSatellites = n;
    wc.planes = 6;
    if (n % wc.planes != 0) wc.planes = (n % 4 == 0) ? 4 : 3;
    wc.phasing = wc.phasing % wc.planes;
    const auto sats = makeWalkerStar(wc);
    Rng rng(5);
    const double cov = timeAveragedCoverage(sats, 0.0, sats.front().periodS(),
                                            8, deg2rad(10.0), 4'000, rng);
    const int stations = 6;
    const auto c2 = collaborationCosts(2, n, stations, rf, gs);
    const auto c6 = collaborationCosts(6, n, stations, rf, gs);
    const auto c12 = collaborationCosts(12, n, stations, rf, gs);
    std::printf("%-6d %-10.3f %-14.1f %-16.1f %-16.1f %-16.1f\n", n, cov,
                c2.monolithicCapexUsd / 1e6, c2.perProviderCapexUsd / 1e6,
                c6.perProviderCapexUsd / 1e6, c12.perProviderCapexUsd / 1e6);
  }

  std::printf("\n# Reading: a 6-way OpenSpace collaboration fields the 66-sat\n"
              "# constellation for ~1/6 the up-front capital per provider —\n"
              "# the incremental-deployment path of section 4.\n");
  return 0;
}
