// Ablation R: proactive vs. congestion-aware on-demand routing (§2.2, §5(2)).
//
// Scenario: an Iridium-like constellation, a user in Nairobi, and two
// gateways — a *near* one (Mombasa) experiencing heavy load (deep queues +
// surge tariff on visitor traffic) and a *far* idle one (Johannesburg).
// Proactive routing, computed from ephemeris alone, cannot see the queueing
// and keeps sending traffic to the hot gateway; the on-demand router reads
// live congestion and detours. The table sweeps the hot gateway's queueing
// delay and reports each policy's end-to-end latency and path choice.
#include <cstdio>

#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/ondemand.hpp>
#include <openspace/topology/builder.hpp>

int main() {
  using namespace openspace;

  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  TopologyBuilder topo(eph);
  const NodeId user = topo.addUser(
      {"nairobi-user", Geodetic::fromDegrees(-1.2921, 36.8219), ProviderId{10}});
  const NodeId nearGs = topo.nodeOf(topo.addGroundStation(
      {"mombasa-gw", Geodetic::fromDegrees(-4.0435, 39.6682), ProviderId{20}}));
  const NodeId farGs = topo.nodeOf(topo.addGroundStation(
      {"johannesburg-gw", Geodetic::fromDegrees(-26.2041, 28.0473), ProviderId{30}}));

  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  opt.minElevationRad = deg2rad(10.0);

  std::printf("# Routing ablation: hot near gateway vs idle far gateway\n");
  std::printf("# user=Nairobi  near=Mombasa (congested)  far=Johannesburg (idle)\n\n");
  std::printf("%-14s %-22s %-22s %-12s\n", "hot_queue_ms",
              "proactive_latency_ms", "ondemand_latency_ms", "detoured");

  for (const double hotQueueMs : {0.0, 5.0, 20.0, 50.0, 100.0, 250.0}) {
    NetworkGraph g = topo.snapshot(0.0, opt);
    // Load the near gateway: every GSL touching it queues.
    for (const LinkId lid : g.links()) {
      Link& l = g.link(lid);
      if (l.type == LinkType::Gsl && (l.a == nearGs || l.b == nearGs)) {
        l.queueingDelayS = milliseconds(hotQueueMs);
        l.tariffUsdPerGb = 0.50;  // surge pricing on visitor traffic (§2.2)
      }
    }

    // Proactive: the precomputed choice ignores live queue state — model it
    // by routing on propagation delay only, then charging the path the
    // queueing it actually encounters.
    const LinkCostFn propOnly = [](const NetworkGraph&, const Link& l,
                                   ProviderId) { return l.propagationDelayS; };
    Route proactiveNear = shortestPath(g, user, nearGs, propOnly);
    Route proactiveFar = shortestPath(g, user, farGs, propOnly);
    const Route& proactive =
        (proactiveNear.valid() &&
         (!proactiveFar.valid() ||
          proactiveNear.propagationDelayS <= proactiveFar.propagationDelayS))
            ? proactiveNear
            : proactiveFar;

    // On-demand: full congestion-aware gateway selection.
    const OnDemandRouter router(g, latencyCost());
    const Route onDemand = router.selectGroundStation(user);

    if (!proactive.valid() || !onDemand.valid()) {
      std::printf("%-14.0f %-22s %-22s %-12s\n", hotQueueMs, "unreachable",
                  "unreachable", "-");
      continue;
    }
    const bool detoured = onDemand.nodes.back() != proactive.nodes.back();
    std::printf("%-14.0f %-22.2f %-22.2f %-12s\n", hotQueueMs,
                toMilliseconds(proactive.totalDelayS()),
                toMilliseconds(onDemand.totalDelayS()),
                detoured ? "yes" : "no");
  }

  std::printf("\n# Expected shape: identical at 0 queueing; once the hot\n"
              "# gateway's queues exceed the ~detour cost, on-demand switches\n"
              "# to the far gateway and its latency flattens while proactive\n"
              "# keeps absorbing the queue (the section 5(2) trade-off).\n");
  return 0;
}
