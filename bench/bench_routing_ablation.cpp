// Ablation R: proactive vs. congestion-aware on-demand routing (§2.2, §5(2)).
//
// Scenario: an Iridium-like constellation, a user in Nairobi, and two
// gateways — a *near* one (Mombasa) experiencing heavy load (deep queues +
// surge tariff on visitor traffic) and a *far* idle one (Johannesburg).
// Proactive routing, computed from ephemeris alone, cannot see the queueing
// and keeps sending traffic to the hot gateway; the on-demand router reads
// live congestion and detours. The table sweeps the hot gateway's queueing
// delay and reports each policy's end-to-end latency and path choice.
//
// Besides the human-readable table, the bench writes a machine-readable
// JSON record to BENCH_routing_ablation.json (or argv[1]): the sweep rows,
// plus a serial-vs-parallel RouteEngine batch section whose FNV route
// checksums must match (the engine's determinism contract, checked here on
// every CI perf run, not just in the unit tests).
#include <chrono>
#include <cstdio>
#include <cstring>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/engine.hpp>
#include <openspace/routing/ondemand.hpp>
#include <openspace/topology/builder.hpp>

namespace {

using namespace openspace;

double nowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v;
  h *= 0x100000001B3ull;
  return h;
}

std::uint64_t bitsOf(double v) noexcept {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

/// Order- and bit-sensitive checksum of a batch of path trees: any change
/// in a distance, a parent edge, or the tree order changes the value.
std::uint64_t treeChecksum(const std::vector<PathTree>& trees) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const PathTree& t : trees) {
    h = fnv1a(h, t.source().value());
    for (const double d : t.distByIndex()) h = fnv1a(h, bitsOf(d));
    for (const std::uint32_t p : t.parentEdgeByIndex()) h = fnv1a(h, p);
  }
  return h;
}

struct SweepRow {
  double hotQueueMs = 0.0;
  bool reachable = false;
  double proactiveMs = 0.0;
  double onDemandMs = 0.0;
  bool detoured = false;
};

}  // namespace

int main(int argc, char** argv) {
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  TopologyBuilder topo(eph);
  const NodeId user = topo.addUser(
      {"nairobi-user", Geodetic::fromDegrees(-1.2921, 36.8219), ProviderId{10}});
  const NodeId nearGs = topo.nodeOf(topo.addGroundStation(
      {"mombasa-gw", Geodetic::fromDegrees(-4.0435, 39.6682), ProviderId{20}}));
  const NodeId farGs = topo.nodeOf(topo.addGroundStation(
      {"johannesburg-gw", Geodetic::fromDegrees(-26.2041, 28.0473), ProviderId{30}}));

  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  opt.minElevationRad = deg2rad(10.0);

  const double wallStartS = nowS();

  std::printf("# Routing ablation: hot near gateway vs idle far gateway\n");
  std::printf("# user=Nairobi  near=Mombasa (congested)  far=Johannesburg (idle)\n\n");
  std::printf("%-14s %-22s %-22s %-12s\n", "hot_queue_ms",
              "proactive_latency_ms", "ondemand_latency_ms", "detoured");

  std::vector<SweepRow> rows;
  for (const double hotQueueMs : {0.0, 5.0, 20.0, 50.0, 100.0, 250.0}) {
    NetworkGraph g = topo.snapshot(0.0, opt);
    // Load the near gateway: every GSL touching it queues.
    for (const LinkId lid : g.links()) {
      Link& l = g.link(lid);
      if (l.type == LinkType::Gsl && (l.a == nearGs || l.b == nearGs)) {
        l.queueingDelayS = milliseconds(hotQueueMs);
        l.tariffUsdPerGb = 0.50;  // surge pricing on visitor traffic (§2.2)
      }
    }

    // Proactive: the precomputed choice ignores live queue state — model it
    // by routing on propagation delay only, then charging the path the
    // queueing it actually encounters. One compiled engine serves both
    // gateway queries.
    const LinkCostFn propOnly = [](const NetworkGraph&, const Link& l,
                                   ProviderId) { return l.propagationDelayS; };
    const RouteEngine propEngine(g, propOnly);
    Route proactiveNear = propEngine.shortestPath(user, nearGs);
    Route proactiveFar = propEngine.shortestPath(user, farGs);
    const Route& proactive =
        (proactiveNear.valid() &&
         (!proactiveFar.valid() ||
          proactiveNear.propagationDelayS <= proactiveFar.propagationDelayS))
            ? proactiveNear
            : proactiveFar;

    // On-demand: full congestion-aware gateway selection.
    const OnDemandRouter router(g, latencyCost());
    const Route onDemand = router.selectGroundStation(user);

    SweepRow row;
    row.hotQueueMs = hotQueueMs;
    if (!proactive.valid() || !onDemand.valid()) {
      std::printf("%-14.0f %-22s %-22s %-12s\n", hotQueueMs, "unreachable",
                  "unreachable", "-");
      rows.push_back(row);
      continue;
    }
    row.reachable = true;
    row.proactiveMs = toMilliseconds(proactive.totalDelayS());
    row.onDemandMs = toMilliseconds(onDemand.totalDelayS());
    row.detoured = onDemand.nodes.back() != proactive.nodes.back();
    rows.push_back(row);
    std::printf("%-14.0f %-22.2f %-22.2f %-12s\n", hotQueueMs, row.proactiveMs,
                row.onDemandMs, row.detoured ? "yes" : "no");
  }

  std::printf("\n# Expected shape: identical at 0 queueing; once the hot\n"
              "# gateway's queues exceed the ~detour cost, on-demand switches\n"
              "# to the far gateway and its latency flattens while proactive\n"
              "# keeps absorbing the queue (the section 5(2) trade-off).\n");

  // Batch determinism + throughput: all-satellite-source trees, serial vs
  // thread pool. Checksums are over raw distance bits and parent edges, so
  // "equal" here means bit-identical trees, not merely equal costs.
  const NetworkGraph g = topo.snapshot(0.0, opt);
  const RouteEngine engine(g, latencyCost());
  const std::vector<NodeId> sources = g.nodesOfKind(NodeKind::Satellite);

  const int poolThreads = parallelThreadCount();
  setParallelThreadCount(1);
  const double serialStartS = nowS();
  const auto serialTrees = engine.batchShortestPathTrees(sources);
  const double serialS = nowS() - serialStartS;
  setParallelThreadCount(poolThreads);
  const double parallelStartS = nowS();
  const auto parallelTrees = engine.batchShortestPathTrees(sources);
  const double parallelS = nowS() - parallelStartS;

  const std::uint64_t serialSum = treeChecksum(serialTrees);
  const std::uint64_t parallelSum = treeChecksum(parallelTrees);
  const bool checksumsMatch = serialSum == parallelSum;
  std::printf("\n# batch trees: %zu sources  serial %.4f s  parallel %.4f s "
              "(threads=%d)  checksums %s\n",
              sources.size(), serialS, parallelS, poolThreads,
              checksumsMatch ? "MATCH" : "MISMATCH");

  const double wallS = nowS() - wallStartS;
  const char* jsonPath = argc > 1 ? argv[1] : "BENCH_routing_ablation.json";
  if (std::FILE* f = std::fopen(jsonPath, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"routing_ablation\",\n"
                 "  \"wall_seconds\": %.6f,\n  \"threads\": %d,\n"
                 "  \"rows\": [\n",
                 wallS, poolThreads);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& r = rows[i];
      std::fprintf(f,
                   "    {\"hot_queue_ms\": %.1f, \"reachable\": %s, "
                   "\"proactive_latency_ms\": %.6f, "
                   "\"ondemand_latency_ms\": %.6f, \"detoured\": %s}%s\n",
                   r.hotQueueMs, r.reachable ? "true" : "false", r.proactiveMs,
                   r.onDemandMs, r.detoured ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"batch\": {\n"
                 "    \"sources\": %zu,\n"
                 "    \"serial_seconds\": %.6f,\n"
                 "    \"parallel_seconds\": %.6f,\n"
                 "    \"serial_checksum\": \"%016llx\",\n"
                 "    \"parallel_checksum\": \"%016llx\",\n"
                 "    \"checksums_match\": %s\n  }\n}\n",
                 sources.size(), serialS, parallelS,
                 static_cast<unsigned long long>(serialSum),
                 static_cast<unsigned long long>(parallelSum),
                 checksumsMatch ? "true" : "false");
    std::fclose(f);
    std::printf("# json: %s\n", jsonPath);
  }
  return checksumsMatch ? 0 : 1;
}
