// Mega-constellation scaling bench: 1k -> 10k -> 66k satellites through
// propagate -> index -> topology -> route, per-stage time normalized per
// satellite so a regression localizes to the stage (and tier) that caused
// it.
//
// Each tier is a realistic multi-shell fleet composed by MultiShellFleet
// (Starlink-style Delta shells stacked with a polar Star shell), not one
// giant Walker plane set, so the bench exercises the shell generator, the
// composed-hash cache keying, and the per-shell +grid wiring alongside the
// hot kernels.
//
// Structure — verification and timing are separate sweeps (the
// bench_temporal_delta convention):
//  * propagate (timed, single thread) — TimeSweep over the compiled fleet,
//    scalar executable-spec kernel vs the runtime-dispatched SIMD kernel.
//    The single-core scalar/SIMD ratio is the speedup_propagation headline
//    the committed baseline pins. Untimed gates: both kernels bit-identical
//    serial vs parallel (full-bit fold of every ECI+ECEF component over
//    every step), and SIMD within the documented 1e-13 * semi-major-axis
//    envelope of the scalar spec.
//  * index (timed) — FootprintIndex2 compile cost per satellite, plus the
//    batch cap-cell kernel: dispatched SIMD level vs the portable 4-lane
//    instantiation over a fixed sample block. Hard gate: the two
//    instantiations (and the scalar cellIndexOf member) are bit-identical
//    on every sample — the cap map uses only exactly-rounded IEEE ops, so
//    any divergence is a bug, not noise. Untimed gate: indexed
//    closestVisible == the snapshot's brute scan at several ground sites.
//  * topology (timed) — lazy ISL adjacency build (grid-pruned, never
//    all-pairs at these sizes) on a cold snapshot per pass; per-tier range
//    caps keep mean ISL degree in the tens like a real +grid/motif fleet.
//    Untimed gates: diffIslTopology(prev, next) patched onto prev's
//    adjacency reproduces next's adjacency bit-for-bit, and the
//    snapshot+topology pipeline is bit-identical serial vs parallel.
//  * route (timed) — shortestIslPath over spread satellite pairs on the
//    cached adjacency: Dijkstra cost at fleet scale.
//
// argv[1] = JSON output path (default BENCH_scale.json); argv[2] = workload
// scale in [1e-3, 10] (shrinks every shell's satellite count, e.g. 0.2 for
// the CI perf-smoke lane); argv[3] = number of tiers to run, 1..3 (the TSan
// lane runs only the 1k tier). Exit is non-zero unless every gate matches.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/core/hash.hpp>
#include <openspace/coverage/footprint_index.hpp>
#include <openspace/geo/geodetic.hpp>
#include <openspace/geo/spherical_index.hpp>
#include <openspace/geo/spherical_index_simd.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/propagation_batch.hpp>
#include <openspace/orbit/propagation_simd.hpp>
#include <openspace/orbit/shells.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/snapshot_delta.hpp>

namespace {

using namespace openspace;

constexpr int kPasses = 3;  // best-of to shrug off scheduler noise

double nowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timed {
  double bestPassS = 0.0;
  std::uint64_t checksum = 0;
};

/// Time `pass` (returning a checksum) `passes` times; keep the fastest wall
/// time and require a stable checksum.
template <typename Pass>
Timed timeIt(Pass&& pass, int passes = kPasses) {
  Timed r;
  for (int p = 0; p < passes; ++p) {
    const double t0 = nowS();
    const std::uint64_t sum = pass();
    const double dt = nowS() - t0;
    if (p == 0 || dt < r.bestPassS) r.bestPassS = dt;
    if (p == 0) {
      r.checksum = sum;
    } else if (sum != r.checksum) {
      std::fprintf(stderr, "non-deterministic pass checksum\n");
      std::exit(1);
    }
  }
  return r;
}

/// Full-bit fold of a position array (verification sweeps only).
std::uint64_t mixVecs(std::uint64_t h, const std::vector<Vec3>& v) {
  for (const Vec3& p : v) {
    h = fnv1a(h, bitsOf(p.x));
    h = fnv1a(h, bitsOf(p.y));
    h = fnv1a(h, bitsOf(p.z));
  }
  return h;
}

/// Full-bit fold of an ISL adjacency (verification sweeps only).
std::uint64_t mixAdjacency(
    std::uint64_t h,
    const std::vector<std::vector<std::pair<std::size_t, double>>>& adj) {
  for (const auto& nbrs : adj) {
    h = fnv1a(h, nbrs.size());
    for (const auto& [j, d] : nbrs) {
      h = fnv1a(h, j);
      h = fnv1a(h, bitsOf(d));
    }
  }
  return h;
}

/// Deterministic xorshift64* for sample directions (no process entropy:
/// the bench must produce the same workload in every run).
struct SplitRng {
  std::uint64_t state;
  double next() {  // uniform in [-1, 1)
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    const std::uint64_t bits = state * 0x2545F4914F6CDD1DULL;
    return static_cast<double>(bits >> 11) *
               (2.0 / 9007199254740992.0) -
           1.0;
  }
};

std::vector<Vec3> randomUnitDirs(std::size_t n, std::uint64_t seed) {
  std::vector<Vec3> dirs;
  dirs.reserve(n);
  SplitRng rng{seed};
  while (dirs.size() < n) {
    const Vec3 v{rng.next(), rng.next(), rng.next()};
    const double len = v.norm();
    if (len < 1e-3 || len > 1.0) continue;  // rejection-sample the ball
    dirs.push_back(Vec3{v.x / len, v.y / len, v.z / len});
  }
  return dirs;
}

/// One scaling tier: a named multi-shell fleet plus its ISL range cap
/// (chosen per tier to hold mean degree in the tens, like a real fleet).
struct Tier {
  const char* name;
  MultiShellConfig config;
  double maxIslRangeM;
};

ShellSpec delta(int t, int p, int f, double altM, double incDeg) {
  ShellSpec s;
  s.kind = ShellKind::Delta;
  s.walker = {t, p, f, altM, deg2rad(incDeg)};
  return s;
}

ShellSpec star(int t, int p, int f, double altM, double incDeg) {
  ShellSpec s;
  s.kind = ShellKind::Star;
  s.walker = {t, p, f, altM, deg2rad(incDeg)};
  return s;
}

/// Shrink a shell's satellite count by `scale`, keeping T a positive
/// multiple of P (the Walker validity requirement; F < P is untouched).
void applyScale(ShellSpec& shell, double scale) {
  const int p = shell.walker.planes;
  const int scaled = static_cast<int>(
      static_cast<double>(shell.walker.totalSatellites) * scale);
  shell.walker.totalSatellites = std::max(p, scaled / p * p);
}

std::vector<Tier> makeTiers(double scale) {
  std::vector<Tier> tiers;
  {
    Tier t;
    t.name = "1k";
    t.config.shells = {delta(720, 36, 17, km(550.0), 53.0),
                       star(360, 30, 1, km(560.0), 86.4)};
    // The small tier also exercises the cross-shell link policy; the big
    // tiers keep shells +grid-only so their topology time isolates the
    // grid-pruned adjacency build.
    t.config.crossShell = CrossShellLinkPolicy::NearestVisible;
    t.config.crossShellK = 1;
    t.maxIslRangeM = 3.0e6;
    tiers.push_back(t);
  }
  {
    Tier t;
    t.name = "10k";
    t.config.shells = {delta(4320, 72, 25, km(550.0), 53.0),
                       delta(3600, 60, 13, km(570.0), 70.0),
                       star(2160, 36, 5, km(560.0), 86.4)};
    t.maxIslRangeM = 1.2e6;
    tiers.push_back(t);
  }
  {
    Tier t;
    t.name = "66k";
    t.config.shells = {delta(28800, 144, 31, km(550.0), 53.0),
                       delta(21600, 120, 47, km(1110.0), 53.8),
                       star(15840, 96, 11, km(1130.0), 87.9)};
    t.maxIslRangeM = 5.0e5;
    tiers.push_back(t);
  }
  for (Tier& t : tiers) {
    for (ShellSpec& s : t.config.shells) applyScale(s, scale);
  }
  return tiers;
}

/// Results of one tier, in JSON field order.
struct TierResult {
  std::string name;
  std::size_t sats = 0;
  std::size_t shells = 0;
  std::size_t shellLinks = 0;
  // propagate
  int sweepSteps = 0;
  double propScalarS = 0.0;
  double propSimdS = 0.0;
  double speedupPropagation = 0.0;
  double nsPerSatStep = 0.0;
  double simdMaxDevM = 0.0;
  bool propSerialParallelMatch = false;
  // index
  double indexBuildS = 0.0;
  double usPerSatIndex = 0.0;
  std::size_t capSamples = 0;
  double capScalar4S = 0.0;
  double capSimdS = 0.0;
  double speedupCapIndex = 0.0;
  bool capBitIdentical = false;
  bool closestVisibleMatch = false;
  // topology
  double maxIslRangeM = 0.0;
  double topoBuildS = 0.0;
  double usPerSatTopo = 0.0;
  std::size_t islLinks = 0;
  double meanDegree = 0.0;
  bool deltaFreshMatch = false;
  bool topoSerialParallelMatch = false;
  // route
  std::size_t routePairs = 0;
  std::size_t routeReached = 0;
  double routeS = 0.0;

  bool allGates() const {
    return propSerialParallelMatch && capBitIdentical && closestVisibleMatch &&
           deltaFreshMatch && topoSerialParallelMatch && simdMaxDevM < 1e-5;
  }
};

/// Apply a SnapshotDelta onto a copy of prev's adjacency: the patched
/// result must reproduce next's adjacency bit-for-bit (the gate).
std::vector<std::vector<std::pair<std::size_t, double>>> patchAdjacency(
    const IslTopology& prev, const SnapshotDelta& delta) {
  auto adj = prev.adjacency;  // deep copy
  const auto erase = [&](std::size_t a, std::size_t b) {
    auto& nbrs = adj[a];
    for (auto it = nbrs.begin(); it != nbrs.end(); ++it) {
      if (it->first == b) {
        nbrs.erase(it);
        return;
      }
    }
  };
  const auto upsert = [&](std::size_t a, std::size_t b, double distM) {
    auto& nbrs = adj[a];
    auto it = nbrs.begin();
    while (it != nbrs.end() && it->first < b) ++it;
    if (it != nbrs.end() && it->first == b) {
      it->second = distM;
    } else {
      nbrs.insert(it, {b, distM});
    }
  };
  for (const IslLinkChange& c : delta.removed) {
    erase(c.i, c.j);
    erase(c.j, c.i);
  }
  for (const IslLinkChange& c : delta.added) {
    upsert(c.i, c.j, c.distanceM);
    upsert(c.j, c.i, c.distanceM);
  }
  for (const IslLinkChange& c : delta.rangeChanged) {
    upsert(c.i, c.j, c.distanceM);
    upsert(c.j, c.i, c.distanceM);
  }
  return adj;
}

TierResult runTier(const Tier& tier, int poolThreads) {
  TierResult r;
  r.name = tier.name;
  r.maxIslRangeM = tier.maxIslRangeM;

  const MultiShellFleet fleet(tier.config);
  const std::vector<OrbitalElements>& elements = fleet.elements();
  const std::size_t n = fleet.size();
  r.sats = n;
  r.shells = fleet.shellCount();

  const double t0S = 300.0;
  const double stepS = 1.0;
  const double maskRad = deg2rad(25.0);

  // Step count scaled so steps*sats stays roughly constant across tiers
  // (the per-step cost is linear in the fleet).
  const int steps = static_cast<int>(
      std::clamp<std::size_t>(262'144 / std::max<std::size_t>(n, 1), 4, 64));
  r.sweepSteps = steps;

  // --- propagate: scalar spec vs SIMD kernel, single thread ----------------
  const auto compiled =
      FleetEphemeris::compiled(elements, fleet.elementsHash());
  const auto sweepPass = [&](TimeSweep::Kernel kernel) {
    TimeSweep sweep(compiled);
    sweep.setKernel(kernel);
    std::vector<Vec3> eci;
    std::uint64_t h = kFnvOffsetBasis;
    for (int s = 0; s < steps; ++s) {
      sweep.advance(t0S + s * stepS, eci);
      // O(1) per-step summary: cheap enough not to perturb the timing,
      // deterministic so timeIt's stability assert has teeth.
      h = fnv1a(h, bitsOf(eci.front().x));
      h = fnv1a(h, bitsOf(eci[n / 2].y));
      h = fnv1a(h, bitsOf(eci.back().z));
    }
    return h;
  };
  setParallelThreadCount(1);
  const Timed propScalar =
      timeIt([&] { return sweepPass(TimeSweep::Kernel::ScalarSpec); });
  const Timed propSimd =
      timeIt([&] { return sweepPass(TimeSweep::Kernel::Simd); });
  setParallelThreadCount(poolThreads);
  r.propScalarS = propScalar.bestPassS;
  r.propSimdS = propSimd.bestPassS;
  r.speedupPropagation =
      propSimd.bestPassS > 0.0 ? propScalar.bestPassS / propSimd.bestPassS
                               : 0.0;
  r.nsPerSatStep = 1e9 * propSimd.bestPassS /
                   (static_cast<double>(n) * static_cast<double>(steps));

  // Untimed gates: (a) each kernel bit-identical serial vs parallel over
  // every step's full ECI+ECEF bits; (b) SIMD within the documented
  // accuracy envelope of the scalar spec at the end of a warm sweep.
  {
    const auto foldSweep = [&](TimeSweep::Kernel kernel) {
      TimeSweep sweep(compiled);
      sweep.setKernel(kernel);
      std::vector<Vec3> eci, ecef;
      std::uint64_t h = kFnvOffsetBasis;
      for (int s = 0; s < steps; ++s) {
        sweep.advance(t0S + s * stepS, eci, ecef);
        h = mixVecs(h, eci);
        h = mixVecs(h, ecef);
      }
      return h;
    };
    setParallelThreadCount(1);
    const std::uint64_t simdSerial = foldSweep(TimeSweep::Kernel::Simd);
    const std::uint64_t scalarSerial = foldSweep(TimeSweep::Kernel::ScalarSpec);
    setParallelThreadCount(std::max(poolThreads, 4));
    const std::uint64_t simdParallel = foldSweep(TimeSweep::Kernel::Simd);
    const std::uint64_t scalarParallel =
        foldSweep(TimeSweep::Kernel::ScalarSpec);
    setParallelThreadCount(poolThreads);
    r.propSerialParallelMatch =
        simdSerial == simdParallel && scalarSerial == scalarParallel;

    TimeSweep scalarSweep(compiled), simdSweep(compiled);
    scalarSweep.setKernel(TimeSweep::Kernel::ScalarSpec);
    simdSweep.setKernel(TimeSweep::Kernel::Simd);
    std::vector<Vec3> eciScalar, eciSimd;
    for (int s = 0; s < steps; ++s) {
      scalarSweep.advance(t0S + s * stepS, eciScalar);
      simdSweep.advance(t0S + s * stepS, eciSimd);
    }
    double maxDevM = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      maxDevM = std::max(maxDevM, std::abs(eciScalar[i].x - eciSimd[i].x));
      maxDevM = std::max(maxDevM, std::abs(eciScalar[i].y - eciSimd[i].y));
      maxDevM = std::max(maxDevM, std::abs(eciScalar[i].z - eciSimd[i].z));
    }
    r.simdMaxDevM = maxDevM;
  }

  // --- index: FootprintIndex2 compile + batch cap-cell kernel --------------
  const auto snap =
      std::make_shared<const ConstellationSnapshot>(elements, t0S);
  const Timed idxBuild = timeIt([&] {
    const FootprintIndex2 idx(snap, maskRad);
    return fnv1a(fnv1a(kFnvOffsetBasis, idx.approxBytes()), idx.size());
  });
  r.indexBuildS = idxBuild.bestPassS;
  r.usPerSatIndex = 1e6 * idxBuild.bestPassS / static_cast<double>(n);

  const FootprintIndex2 footprints(snap, maskRad);
  {
    // Indexed closestVisible against the snapshot's brute scan.
    const double sites[][2] = {{40.44, -79.99}, {-33.93, 18.42},
                               {78.22, 15.64},  {-51.63, -69.22},
                               {0.35, 32.58}};
    bool match = true;
    for (const auto& site : sites) {
      const Vec3 ecef =
          geodeticToEcef(Geodetic::fromDegrees(site[0], site[1]));
      match = match && footprints.closestVisible(ecef) ==
                           snap->closestVisible(ecef, maskRad);
    }
    r.closestVisibleMatch = match;
  }

  // Batch cap-cell kernel over the index's own caps: dispatched level vs
  // the portable 4-lane instantiation, bit-identical by contract.
  {
    std::vector<SphericalCapIndex::Cap> caps(n);
    for (std::size_t i = 0; i < n; ++i) {
      caps[i] = {footprints.direction(i), footprints.halfAngleRad(i)};
    }
    const SphericalCapIndex capIdx(caps);
    const std::size_t bands = capIdx.bandCount();
    const std::size_t sectors = capIdx.sectorCount();
    const std::size_t samples = 1u << 17;
    r.capSamples = samples;
    const std::vector<Vec3> dirs = randomUnitDirs(samples, 0x5CA1EULL);
    std::vector<std::uint32_t> cells(samples);
    const SimdLevel level = simd::cellKernelLevel();
    const auto capPass = [&](bool useSimd) {
      if (useSimd) {
        simd::cellIndices(level, dirs.data(), cells.data(), bands, sectors, 0,
                          samples);
      } else {
        simd::cellIndicesScalar4(dirs.data(), cells.data(), bands, sectors, 0,
                                 samples);
      }
      std::uint64_t h = kFnvOffsetBasis;
      h = fnv1a(h, cells.front());
      h = fnv1a(h, cells[samples / 2]);
      h = fnv1a(h, cells.back());
      return h;
    };
    const Timed capSimd = timeIt([&] { return capPass(true); });
    const Timed capScalar4 = timeIt([&] { return capPass(false); });
    r.capSimdS = capSimd.bestPassS;
    r.capScalar4S = capScalar4.bestPassS;
    r.speedupCapIndex = capSimd.bestPassS > 0.0
                            ? capScalar4.bestPassS / capSimd.bestPassS
                            : 0.0;
    // Hard gate, untimed: full output arrays bit-identical across the two
    // instantiations AND the scalar member spec.
    std::vector<std::uint32_t> simdCells(samples), scalarCells(samples);
    simd::cellIndices(level, dirs.data(), simdCells.data(), bands, sectors, 0,
                      samples);
    simd::cellIndicesScalar4(dirs.data(), scalarCells.data(), bands, sectors,
                             0, samples);
    bool identical = simdCells == scalarCells;
    for (std::size_t i = 0; identical && i < samples; i += 97) {
      identical = simdCells[i] == capIdx.cellIndexOf(dirs[i]);
    }
    r.capBitIdentical = identical;
  }

  // --- topology: cold ISL adjacency build per pass -------------------------
  {
    std::vector<std::unique_ptr<ConstellationSnapshot>> coldSnaps;
    for (int p = 0; p < kPasses; ++p) {
      coldSnaps.push_back(
          std::make_unique<ConstellationSnapshot>(elements, t0S));
    }
    int pass = 0;
    const Timed topo = timeIt([&] {
      const auto isl = coldSnaps[static_cast<std::size_t>(pass++)]->islTopology(
          tier.maxIslRangeM);
      return fnv1a(fnv1a(kFnvOffsetBasis, isl->linkCount),
                   isl->adjacency.front().size());
    });
    r.topoBuildS = topo.bestPassS;
    r.usPerSatTopo = 1e6 * topo.bestPassS / static_cast<double>(n);
    const auto isl = snap->islTopology(tier.maxIslRangeM);
    r.islLinks = isl->linkCount;
    r.meanDegree =
        2.0 * static_cast<double>(isl->linkCount) / static_cast<double>(n);
    r.shellLinks = fleet.islLinks(*snap).size();
  }

  // Delta==fresh gate: diff the t0 / t0+dt adjacencies, patch t0's arrays
  // with the delta, and require bit-identity with the fresh t0+dt build.
  {
    const double dtS = 15.0;
    const ConstellationSnapshot next(elements, t0S + dtS);
    const SnapshotDelta delta =
        diffIslTopology(*snap, next, tier.maxIslRangeM);
    const auto patched = patchAdjacency(*snap->islTopology(tier.maxIslRangeM),
                                        delta);
    const auto fresh = next.islTopology(tier.maxIslRangeM);
    r.deltaFreshMatch = mixAdjacency(kFnvOffsetBasis, patched) ==
                        mixAdjacency(kFnvOffsetBasis, fresh->adjacency);
  }

  // Serial==parallel gate over the snapshot+topology pipeline.
  {
    const auto foldPipeline = [&] {
      const ConstellationSnapshot s(elements, t0S);
      std::uint64_t h = mixVecs(kFnvOffsetBasis, s.eci());
      h = mixVecs(h, s.ecef());
      return mixAdjacency(h, s.islTopology(tier.maxIslRangeM)->adjacency);
    };
    setParallelThreadCount(1);
    const std::uint64_t serial = foldPipeline();
    setParallelThreadCount(std::max(poolThreads, 4));
    const std::uint64_t parallel = foldPipeline();
    setParallelThreadCount(poolThreads);
    r.topoSerialParallelMatch = serial == parallel;
  }

  // --- route: Dijkstra over the cached adjacency ---------------------------
  {
    // Endpoints inside shell 0: the big tiers keep shells +grid-only
    // (cross-shell policy None), so shells are deliberate islands and a
    // cross-shell pair would measure an unreachable flood, not a path.
    const auto [s0, s0End] = fleet.shellRange(0);
    const std::size_t m = s0End - s0;
    const std::size_t pairs[][2] = {{s0, s0 + m / 2},
                                    {s0 + m / 5, s0 + 4 * m / 5},
                                    {s0 + m / 3, s0End - 1}};
    r.routePairs = std::size(pairs);
    const Timed route = timeIt([&] {
      std::uint64_t h = kFnvOffsetBasis;
      for (const auto& pr : pairs) {
        const auto path =
            snap->shortestIslPath(pr[0], pr[1], tier.maxIslRangeM);
        if (path) {
          h = fnv1a(h, bitsOf(path->first));
          h = fnv1a(h, static_cast<std::uint64_t>(path->second));
        } else {
          h = fnv1a(h, 0xD15C0ULL);
        }
      }
      return h;
    });
    r.routeS = route.bestPassS;
    for (const auto& pr : pairs) {
      if (snap->shortestIslPath(pr[0], pr[1], tier.maxIslRangeM)) {
        ++r.routeReached;
      }
    }
  }

  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* jsonPath = argc > 1 ? argv[1] : "BENCH_scale.json";
  const double scale =
      argc > 2 ? std::clamp(std::atof(argv[2]), 1e-3, 10.0) : 1.0;
  const int maxTiers = argc > 3 ? std::clamp(std::atoi(argv[3]), 1, 3) : 3;
  const double wallStartS = nowS();
  const int poolThreads = parallelThreadCount();

  std::vector<Tier> tiers = makeTiers(scale);
  tiers.resize(static_cast<std::size_t>(
      std::min<int>(maxTiers, static_cast<int>(tiers.size()))));

  std::vector<TierResult> results;
  for (const Tier& tier : tiers) {
    results.push_back(runTier(tier, poolThreads));
  }

  bool allMatch = true;
  double bestSpeedupProp = 0.0, bestSpeedupCap = 0.0;
  for (const TierResult& r : results) {
    allMatch = allMatch && r.allGates();
    bestSpeedupProp = std::max(bestSpeedupProp, r.speedupPropagation);
    bestSpeedupCap = std::max(bestSpeedupCap, r.speedupCapIndex);
  }

  // --- report --------------------------------------------------------------
  std::printf("# Mega-constellation scaling: propagate -> index -> topology "
              "-> route (scale=%.3f, best of %d passes, single-thread "
              "kernel timings)\n\n",
              scale, kPasses);
  std::printf("%-5s %-7s %-9s %-9s %-9s %-9s %-9s %-8s %-8s\n", "tier",
              "sats", "prop", "simd", "idx", "topo", "route", "deg",
              "ns/sat");
  for (const TierResult& r : results) {
    std::printf("%-5s %-7zu %-9.4f %-9.4f %-9.4f %-9.4f %-9.4f %-8.1f "
                "%-8.1f\n",
                r.name.c_str(), r.sats, r.propScalarS, r.propSimdS,
                r.indexBuildS, r.topoBuildS, r.routeS, r.meanDegree,
                r.nsPerSatStep);
  }
  std::printf("\n");
  for (const TierResult& r : results) {
    std::printf("# %s: speedup propagation %.2fx cap-kernel %.2fx | gates: "
                "prop serial==parallel %s  cap bit-identical %s  "
                "closestVisible %s  delta==fresh %s  topo serial==parallel "
                "%s  simd dev %.2e m\n",
                r.name.c_str(), r.speedupPropagation, r.speedupCapIndex,
                r.propSerialParallelMatch ? "MATCH" : "MISMATCH",
                r.capBitIdentical ? "MATCH" : "MISMATCH",
                r.closestVisibleMatch ? "MATCH" : "MISMATCH",
                r.deltaFreshMatch ? "MATCH" : "MISMATCH",
                r.topoSerialParallelMatch ? "MATCH" : "MISMATCH",
                r.simdMaxDevM);
  }

  const double wallS = nowS() - wallStartS;
  if (std::FILE* f = std::fopen(jsonPath, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"scale\",\n"
                 "  \"wall_seconds\": %.6f,\n"
                 "  \"threads\": %d,\n"
                 "  \"scale\": %.4f,\n"
                 "  \"cap_kernel_level\": \"%s\",\n"
                 "  \"sweep_kernel_level\": \"%s\",\n"
                 "  \"speedup_propagation_best\": %.3f,\n"
                 "  \"speedup_capindex_best\": %.3f,\n"
                 "  \"tiers\": [\n",
                 wallS, poolThreads, scale,
                 simdLevelName(simd::cellKernelLevel()),
                 simdLevelName(simd::sweepKernelLevel()), bestSpeedupProp,
                 bestSpeedupCap);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const TierResult& r = results[i];
      std::fprintf(
          f,
          "    {\n"
          "      \"tier\": \"%s\",\n"
          "      \"sats\": %zu,\n"
          "      \"shells\": %zu,\n"
          "      \"shell_links\": %zu,\n"
          "      \"sweep_steps\": %d,\n"
          "      \"prop_scalar_s\": %.6f,\n"
          "      \"prop_simd_s\": %.6f,\n"
          "      \"speedup_propagation\": %.3f,\n"
          "      \"prop_ns_per_sat_step\": %.2f,\n"
          "      \"simd_max_dev_m\": %.3e,\n"
          "      \"index_build_s\": %.6f,\n"
          "      \"index_us_per_sat\": %.4f,\n"
          "      \"cap_samples\": %zu,\n"
          "      \"cap_scalar4_s\": %.6f,\n"
          "      \"cap_simd_s\": %.6f,\n"
          "      \"speedup_capindex\": %.3f,\n"
          "      \"max_isl_range_m\": %.1f,\n"
          "      \"topo_build_s\": %.6f,\n"
          "      \"topo_us_per_sat\": %.4f,\n"
          "      \"isl_links\": %zu,\n"
          "      \"mean_degree\": %.2f,\n"
          "      \"route_pairs\": %zu,\n"
          "      \"route_reached\": %zu,\n"
          "      \"route_s\": %.6f,\n"
          "      \"gates_match\": %s\n"
          "    }%s\n",
          r.name.c_str(), r.sats, r.shells, r.shellLinks, r.sweepSteps,
          r.propScalarS, r.propSimdS, r.speedupPropagation, r.nsPerSatStep,
          r.simdMaxDevM, r.indexBuildS, r.usPerSatIndex, r.capSamples,
          r.capScalar4S, r.capSimdS, r.speedupCapIndex, r.maxIslRangeM,
          r.topoBuildS, r.usPerSatTopo, r.islLinks, r.meanDegree,
          r.routePairs, r.routeReached, r.routeS,
          r.allGates() ? "true" : "false",
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"checksums_match\": %s\n}\n",
                 allMatch ? "true" : "false");
    std::fclose(f);
    std::printf("# json: %s\n", jsonPath);
  }
  return allMatch ? 0 : 1;
}
