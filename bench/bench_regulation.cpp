// §5(3) study: the price of regulatory compliance.
//
// Users homed in three jurisdictions route to the Internet under (a) no
// constraints and (b) the example regime's spectrum + data-egress rules.
// The table reports reachable gateways and the latency penalty compliance
// imposes — the quantified version of the paper's "regulatory challenges"
// discussion.
#include <cstdio>

#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/regulation/regime.hpp>
#include <openspace/routing/ondemand.hpp>
#include <openspace/topology/builder.hpp>

int main() {
  using namespace openspace;

  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  TopologyBuilder topo(eph);

  struct UserSite {
    const char* name;
    Geodetic loc;
    RegionId region;
  };
  const UserSite users[] = {
      {"pittsburgh", Geodetic::fromDegrees(40.44, -79.99), 1},
      {"paris", Geodetic::fromDegrees(48.86, 2.35), 2},
      {"tokyo", Geodetic::fromDegrees(35.68, 139.69), 3},
  };
  std::vector<NodeId> userNodes;
  for (const auto& u : users) {
    userNodes.push_back(topo.addUser({u.name, u.loc, ProviderId{1}}));
  }
  // Gateways in all three regions.
  const std::vector<std::pair<const char*, Geodetic>> gateways = {
      {"seattle-gw", Geodetic::fromDegrees(47.61, -122.33)},
      {"saopaulo-gw", Geodetic::fromDegrees(-23.55, -46.63)},
      {"paris-gw", Geodetic::fromDegrees(48.86, 2.35)},
      {"nairobi-gw", Geodetic::fromDegrees(-1.29, 36.82)},
      {"osaka-gw", Geodetic::fromDegrees(34.69, 135.50)},
      {"sydney-gw", Geodetic::fromDegrees(-33.87, 151.21)},
  };
  std::vector<NodeId> gatewayNodes;
  for (const auto& [name, loc] : gateways) {
    gatewayNodes.push_back(topo.nodeOf(topo.addGroundStation({name, loc, ProviderId{2}})));
  }

  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  opt.minElevationRad = deg2rad(10.0);
  const NetworkGraph g = topo.snapshot(0.0, opt);
  const RegulatoryRegime regime = exampleGlobalRegime();

  std::printf("# Regulatory compliance study (Americas/EMEA/APAC regime)\n");
  std::printf("# Americas<->EMEA mutual trust; APAC strict localization\n\n");
  std::printf("%-12s %-16s %-16s %-16s %-16s\n", "user", "free_gateways",
              "legal_gateways", "free_ms", "compliant_ms");

  for (std::size_t u = 0; u < userNodes.size(); ++u) {
    const LinkCostFn freeCost = latencyCost();
    const LinkCostFn legalCost =
        complianceConstrainedCost(latencyCost(), regime, users[u].region);

    int freeReach = 0, legalReach = 0;
    Route bestFree, bestLegal;
    for (const NodeId gw : gatewayNodes) {
      const Route rf = shortestPath(g, userNodes[u], gw, freeCost);
      if (rf.valid()) {
        ++freeReach;
        if (rf.cost < bestFree.cost) bestFree = rf;
      }
      const Route rl = shortestPath(g, userNodes[u], gw, legalCost);
      if (rl.valid()) {
        ++legalReach;
        if (rl.cost < bestLegal.cost) bestLegal = rl;
      }
    }
    if (bestLegal.valid()) {
      std::printf("%-12s %-16d %-16d %-16.2f %-16.2f\n", users[u].name,
                  freeReach, legalReach, toMilliseconds(bestFree.totalDelayS()),
                  toMilliseconds(bestLegal.totalDelayS()));
    } else {
      std::printf("%-12s %-16d %-16d %-16.2f %-16s\n", users[u].name, freeReach,
                  legalReach, toMilliseconds(bestFree.totalDelayS()),
                  "unreachable");
    }
  }

  std::printf("\n# landing fees for a 66-sat fleet across all regions: $%.0f\n",
              regime.totalLandingFeesUsd(66));
  std::printf("# Reading: compliance shrinks the gateway set (sharply for\n"
              "# data-localizing regions) and can only lengthen paths; the\n"
              "# fee line is the §3 licensing cost scaled across regimes.\n");
  return 0;
}
