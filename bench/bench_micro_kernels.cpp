// Microbenchmarks of the hot kernels: orbit propagation, topology snapshot,
// Dijkstra, Monte-Carlo coverage, ISL fleet discovery.
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include <openspace/coverage/coverage.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/isl/fleet.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/engine.hpp>
#include <openspace/routing/legacy.hpp>
#include <openspace/topology/builder.hpp>

namespace {

using namespace openspace;

void BM_Propagate(benchmark::State& state) {
  const auto el = OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.3, 0.7);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(positionEci(el, t));
    t += 1.0;
  }
}
BENCHMARK(BM_Propagate);

void BM_KeplerEccentric(benchmark::State& state) {
  double m = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solveKepler(m, 0.7));
    m += 0.01;
  }
}
BENCHMARK(BM_KeplerEccentric);

void BM_Snapshot(benchmark::State& state) {
  EphemerisService eph;
  WalkerConfig wc = iridiumConfig();
  wc.totalSatellites = static_cast<int>(state.range(0));
  wc.planes = 6;
  wc.totalSatellites -= wc.totalSatellites % 6;
  for (const auto& el : makeWalkerStar(wc)) eph.publish(ProviderId{1}, el);
  TopologyBuilder topo(eph);
  SnapshotOptions opt;
  opt.wiring = IslWiring::NearestNeighbors;
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.snapshot(t, opt));
    t += 10.0;
  }
}
BENCHMARK(BM_Snapshot)->Arg(24)->Arg(66)->Arg(120);

NetworkGraph iridiumPlusGridSnapshot(EphemerisService& eph) {
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  TopologyBuilder topo(eph);
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  return topo.snapshot(0.0, opt);
}

/// Fixed pseudo-random (src, dst) satellite pairs so the engine and legacy
/// point-query benchmarks run an identical query schedule with no per-
/// iteration index arithmetic in the timed loop.
std::vector<std::pair<NodeId, NodeId>> dijkstraQueryPairs(const NetworkGraph& g) {
  const auto nodes = g.nodesOfKind(NodeKind::Satellite);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    pairs.emplace_back(nodes[i], nodes[(i * 7 + 13) % nodes.size()]);
  }
  return pairs;
}

/// Point-to-point Dijkstra on the production path: the snapshot is compiled
/// once into a RouteEngine and every query reuses its scratch arena.
void BM_Dijkstra(benchmark::State& state) {
  EphemerisService eph;
  const NetworkGraph g = iridiumPlusGridSnapshot(eph);
  const RouteEngine engine(g, latencyCost());
  const auto pairs = dijkstraQueryPairs(g);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [src, dst] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(engine.shortestPath(src, dst));
  }
}
BENCHMARK(BM_Dijkstra);

/// The pre-engine reference path: hash-map graph walk, cost callback per
/// edge, fresh allocations per query. Kept for the before/after ratio.
void BM_DijkstraLegacy(benchmark::State& state) {
  EphemerisService eph;
  const NetworkGraph g = iridiumPlusGridSnapshot(eph);
  const auto cost = latencyCost();
  const auto pairs = dijkstraQueryPairs(g);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [src, dst] = pairs[i++ % pairs.size()];
    benchmark::DoNotOptimize(legacy::shortestPath(g, src, dst, cost));
  }
}
BENCHMARK(BM_DijkstraLegacy);

/// Single-source Dijkstra proper: the full tree from one satellite. The
/// engine returns a compact PathTree (two flat arrays); the legacy free
/// function materializes a Route per reachable destination. Same query
/// schedule for both.
void BM_ShortestPathTree(benchmark::State& state) {
  EphemerisService eph;
  const NetworkGraph g = iridiumPlusGridSnapshot(eph);
  const RouteEngine engine(g, latencyCost());
  const auto nodes = g.nodesOfKind(NodeKind::Satellite);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.shortestPathTree(nodes[i++ % nodes.size()]));
  }
}
BENCHMARK(BM_ShortestPathTree);

void BM_ShortestPathTreeLegacy(benchmark::State& state) {
  EphemerisService eph;
  const NetworkGraph g = iridiumPlusGridSnapshot(eph);
  const auto cost = latencyCost();
  const auto nodes = g.nodesOfKind(NodeKind::Satellite);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        legacy::shortestPathTree(g, nodes[i++ % nodes.size()], cost));
  }
}
BENCHMARK(BM_ShortestPathTreeLegacy);

/// One-shot CSR compilation cost (what a RouteEngine constructor pays, and
/// what one-shot shortestPath() calls amortize away by reusing an engine).
void BM_RouteEngineCompile(benchmark::State& state) {
  EphemerisService eph;
  const NetworkGraph g = iridiumPlusGridSnapshot(eph);
  const auto cost = latencyCost();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RouteEngine(g, cost));
  }
}
BENCHMARK(BM_RouteEngineCompile);

/// All-source tree batch over the process thread pool (deterministic
/// fan-out; results bit-identical to serial).
void BM_BatchTrees(benchmark::State& state) {
  EphemerisService eph;
  const NetworkGraph g = iridiumPlusGridSnapshot(eph);
  const RouteEngine engine(g, latencyCost());
  const auto sources = g.nodesOfKind(NodeKind::Satellite);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.batchShortestPathTrees(sources));
  }
}
BENCHMARK(BM_BatchTrees);

void BM_MonteCarloCoverage(benchmark::State& state) {
  const auto sats = makeWalkerStar(iridiumConfig());
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        monteCarloCoverage(sats, 0.0, deg2rad(10.0),
                           static_cast<int>(state.range(0)), rng));
  }
}
BENCHMARK(BM_MonteCarloCoverage)->Arg(500)->Arg(5000);

void BM_FleetDiscovery(benchmark::State& state) {
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  for (auto _ : state) {
    state.PauseTiming();
    IslFleet fleet(eph, FleetConfig{});
    state.ResumeTiming();
    benchmark::DoNotOptimize(fleet.runDiscoveryRound(0.0));
  }
}
BENCHMARK(BM_FleetDiscovery);

}  // namespace

BENCHMARK_MAIN();
