// Microbenchmarks of the hot kernels: orbit propagation, topology snapshot,
// Dijkstra, Monte-Carlo coverage, ISL fleet discovery.
#include <benchmark/benchmark.h>

#include <openspace/coverage/coverage.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/isl/fleet.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/topology/builder.hpp>

namespace {

using namespace openspace;

void BM_Propagate(benchmark::State& state) {
  const auto el = OrbitalElements::circular(km(780.0), deg2rad(86.4), 0.3, 0.7);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(positionEci(el, t));
    t += 1.0;
  }
}
BENCHMARK(BM_Propagate);

void BM_KeplerEccentric(benchmark::State& state) {
  double m = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solveKepler(m, 0.7));
    m += 0.01;
  }
}
BENCHMARK(BM_KeplerEccentric);

void BM_Snapshot(benchmark::State& state) {
  EphemerisService eph;
  WalkerConfig wc = iridiumConfig();
  wc.totalSatellites = static_cast<int>(state.range(0));
  wc.planes = 6;
  wc.totalSatellites -= wc.totalSatellites % 6;
  for (const auto& el : makeWalkerStar(wc)) eph.publish(ProviderId{1}, el);
  TopologyBuilder topo(eph);
  SnapshotOptions opt;
  opt.wiring = IslWiring::NearestNeighbors;
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.snapshot(t, opt));
    t += 10.0;
  }
}
BENCHMARK(BM_Snapshot)->Arg(24)->Arg(66)->Arg(120);

void BM_Dijkstra(benchmark::State& state) {
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  TopologyBuilder topo(eph);
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  const NetworkGraph g = topo.snapshot(0.0, opt);
  const auto cost = latencyCost();
  const auto nodes = g.nodesOfKind(NodeKind::Satellite);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shortestPath(g, nodes[i % nodes.size()],
                     nodes[(i * 7 + 13) % nodes.size()], cost));
    ++i;
  }
}
BENCHMARK(BM_Dijkstra);

void BM_MonteCarloCoverage(benchmark::State& state) {
  const auto sats = makeWalkerStar(iridiumConfig());
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        monteCarloCoverage(sats, 0.0, deg2rad(10.0),
                           static_cast<int>(state.range(0)), rng));
  }
}
BENCHMARK(BM_MonteCarloCoverage)->Arg(500)->Arg(5000);

void BM_FleetDiscovery(benchmark::State& state) {
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  for (auto _ : state) {
    state.PauseTiming();
    IslFleet fleet(eph, FleetConfig{});
    state.ResumeTiming();
    benchmark::DoNotOptimize(fleet.runDiscoveryRound(0.0));
  }
}
BENCHMARK(BM_FleetDiscovery);

}  // namespace

BENCHMARK_MAIN();
