// Propagation kernel benchmark: scalar spec vs batch kernel vs warm sweep.
//
// Scenario: the 66-satellite Iridium-like shell propagated over a dense
// time grid — the inner loop of every snapshot, coverage, fig2 and
// temporal-routing experiment. Three strategies are timed per step:
//
//  * scalar    — per-satellite positionEci() + eciToEcef(), the executable
//                spec (what ConstellationSnapshot did before the kernel);
//  * batch     — FleetEphemeris::positionsAt(), cold Kepler solves over the
//                structure-of-arrays fleet compiled once up front;
//  * warm      — TimeSweep::advance(), batch with warm-started Newton.
//
// Besides the human-readable table, the bench writes a machine-readable
// JSON record to BENCH_propagation.json (or argv[1]). Hard gates (nonzero
// exit, so CI fails loudly rather than recording garbage):
//  * the batch checksum equals the scalar checksum (bit-for-bit contract);
//  * the warm checksum equals the batch checksum (exact for this circular
//    fleet: e == 0 short-circuits both solvers identically);
//  * serial and parallel runs of both batch paths are bit-identical.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/geo/geodetic.hpp>
#include <openspace/orbit/propagation_batch.hpp>
#include <openspace/orbit/walker.hpp>

namespace {

using namespace openspace;

constexpr int kSteps = 512;
constexpr double kStepS = 10.0;
constexpr int kPasses = 3;  // best-of to shrug off scheduler noise

double nowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v;
  h *= 0x100000001B3ull;
  return h;
}

std::uint64_t bitsOf(double v) noexcept {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

std::uint64_t foldVecs(std::uint64_t h, const std::vector<Vec3>& vs) {
  for (const Vec3& v : vs) {
    h = fnv1a(h, bitsOf(v.x));
    h = fnv1a(h, bitsOf(v.y));
    h = fnv1a(h, bitsOf(v.z));
  }
  return h;
}

struct SweepResult {
  double bestPassS = 0.0;
  std::uint64_t checksum = 0;
  double usPerStep() const { return bestPassS / kSteps * 1e6; }
};

/// Time `pass` (a full sweep over the grid returning a checksum) kPasses
/// times; keep the fastest wall time and verify the checksum is stable.
template <typename Pass>
SweepResult timeSweep(Pass&& pass) {
  SweepResult r;
  for (int p = 0; p < kPasses; ++p) {
    const double t0 = nowS();
    const std::uint64_t sum = pass();
    const double dt = nowS() - t0;
    if (p == 0 || dt < r.bestPassS) r.bestPassS = dt;
    if (p == 0) {
      r.checksum = sum;
    } else if (sum != r.checksum) {
      std::fprintf(stderr, "non-deterministic pass checksum\n");
      std::exit(1);
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto fleet = makeWalkerStar(iridiumConfig());
  const double wallStartS = nowS();

  // Scalar spec: what the snapshot engine's inner loop used to be.
  const auto scalarPass = [&] {
    std::uint64_t h = 0xCBF29CE484222325ull;
    std::vector<Vec3> eci(fleet.size()), ecef(fleet.size());
    for (int s = 0; s < kSteps; ++s) {
      const double t = s * kStepS;
      for (std::size_t i = 0; i < fleet.size(); ++i) {
        eci[i] = positionEci(fleet[i], t);
        ecef[i] = eciToEcef(eci[i], t);
      }
      h = foldVecs(foldVecs(h, eci), ecef);
    }
    return h;
  };

  const double compileStartS = nowS();
  const FleetEphemeris batch(fleet);
  const double compileUs = (nowS() - compileStartS) * 1e6;

  const auto batchPass = [&] {
    std::uint64_t h = 0xCBF29CE484222325ull;
    std::vector<Vec3> eci, ecef;
    for (int s = 0; s < kSteps; ++s) {
      batch.positionsAt(s * kStepS, eci, ecef);
      h = foldVecs(foldVecs(h, eci), ecef);
    }
    return h;
  };

  const auto warmPass = [&] {
    std::uint64_t h = 0xCBF29CE484222325ull;
    TimeSweep sweep(batch);
    std::vector<Vec3> eci, ecef;
    for (int s = 0; s < kSteps; ++s) {
      sweep.advance(s * kStepS, eci, ecef);
      h = foldVecs(foldVecs(h, eci), ecef);
    }
    return h;
  };

  // Timed runs use the ambient worker count (OPENSPACE_THREADS in CI).
  const int poolThreads = parallelThreadCount();
  const SweepResult scalar = timeSweep(scalarPass);
  const SweepResult cold = timeSweep(batchPass);
  const SweepResult warm = timeSweep(warmPass);

  // Determinism gates: serial vs forced-4-thread checksums, both paths.
  setParallelThreadCount(1);
  const std::uint64_t coldSerial = batchPass();
  const std::uint64_t warmSerial = warmPass();
  setParallelThreadCount(4);
  const std::uint64_t coldParallel = batchPass();
  const std::uint64_t warmParallel = warmPass();
  setParallelThreadCount(poolThreads);

  const bool coldMatchesScalar = cold.checksum == scalar.checksum;
  const bool warmMatchesCold = warm.checksum == cold.checksum;
  const bool coldThreadInvariant =
      coldSerial == coldParallel && coldSerial == cold.checksum;
  const bool warmThreadInvariant =
      warmSerial == warmParallel && warmSerial == warm.checksum;
  const bool allMatch = coldMatchesScalar && warmMatchesCold &&
                        coldThreadInvariant && warmThreadInvariant;

  const double speedupCold = scalar.usPerStep() / cold.usPerStep();
  const double speedupWarm = scalar.usPerStep() / warm.usPerStep();

  std::printf("# Propagation kernel: %zu satellites, %d steps of %.0f s "
              "(threads=%d, best of %d passes)\n\n",
              fleet.size(), kSteps, kStepS, poolThreads, kPasses);
  std::printf("%-10s %-14s %-10s %-18s\n", "path", "us_per_step", "speedup",
              "checksum");
  std::printf("%-10s %-14.2f %-10s %016llx\n", "scalar", scalar.usPerStep(),
              "1.00x", static_cast<unsigned long long>(scalar.checksum));
  std::printf("%-10s %-14.2f %-10.2f %016llx\n", "batch", cold.usPerStep(),
              speedupCold, static_cast<unsigned long long>(cold.checksum));
  std::printf("%-10s %-14.2f %-10.2f %016llx\n", "warm", warm.usPerStep(),
              speedupWarm, static_cast<unsigned long long>(warm.checksum));
  std::printf("\n# fleet compile: %.1f us (amortized across every step)\n",
              compileUs);
  std::printf("# gates: batch==scalar %s  warm==batch %s  "
              "batch serial==parallel %s  warm serial==parallel %s\n",
              coldMatchesScalar ? "MATCH" : "MISMATCH",
              warmMatchesCold ? "MATCH" : "MISMATCH",
              coldThreadInvariant ? "MATCH" : "MISMATCH",
              warmThreadInvariant ? "MATCH" : "MISMATCH");

  const double wallS = nowS() - wallStartS;
  const char* jsonPath = argc > 1 ? argv[1] : "BENCH_propagation.json";
  if (std::FILE* f = std::fopen(jsonPath, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"propagation\",\n"
                 "  \"wall_seconds\": %.6f,\n"
                 "  \"threads\": %d,\n"
                 "  \"satellites\": %zu,\n"
                 "  \"steps\": %d,\n"
                 "  \"step_seconds\": %.1f,\n"
                 "  \"compile_us\": %.3f,\n"
                 "  \"scalar_us_per_step\": %.3f,\n"
                 "  \"batch_us_per_step\": %.3f,\n"
                 "  \"warm_us_per_step\": %.3f,\n"
                 "  \"speedup_batch\": %.3f,\n"
                 "  \"speedup_warm\": %.3f,\n"
                 "  \"scalar_checksum\": \"%016llx\",\n"
                 "  \"batch_checksum\": \"%016llx\",\n"
                 "  \"warm_checksum\": \"%016llx\",\n"
                 "  \"batch_matches_scalar\": %s,\n"
                 "  \"warm_matches_batch\": %s,\n"
                 "  \"checksums_match\": %s\n}\n",
                 wallS, poolThreads, fleet.size(), kSteps, kStepS, compileUs,
                 scalar.usPerStep(), cold.usPerStep(), warm.usPerStep(),
                 speedupCold, speedupWarm,
                 static_cast<unsigned long long>(scalar.checksum),
                 static_cast<unsigned long long>(cold.checksum),
                 static_cast<unsigned long long>(warm.checksum),
                 coldMatchesScalar ? "true" : "false",
                 warmMatchesCold ? "true" : "false",
                 allMatch ? "true" : "false");
    std::fclose(f);
    std::printf("# json: %s\n", jsonPath);
  }
  return allMatch ? 0 : 1;
}
