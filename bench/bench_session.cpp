// Million-user session plane: the batched HandoverSweep epoch kernel vs
// the stateless per-user HandoverPlanner scan (paper §2.2 at scale).
//
// Scenario (scale 1.0): the 66-sat Iridium-like Walker star serving
// 1,000,000 users drawn from the default world population model, swept
// through 24 epochs of 15 s — the paper's Starlink handover-cadence
// anchor sets the control-plane tick — over a six-minute steady-state
// window. The tick length is where the expiry heap earns its keep: the
// stateless planner scan pays O(users) per epoch regardless of how many
// sessions actually need a decision, while the sweep pays per executed
// handover plus one index compile per epoch. argv[2]
// scales the user count (0.2 -> 200k users for the perf-smoke lane,
// 0.02 -> 20k users for the TSan lane); argv[1] is the JSON output path.
//
// Structure — verification and timing are separate:
//  * verify (untimed) — a small-table sweep runs next to simulateHandovers
//    for a subsample of users: every handover's time, endpoints and
//    latency must match the legacy timeline bit for bit (hard gate, exit
//    non-zero). The legacy path stays in place as the executable spec; the
//    sweep is only allowed to be faster, never different.
//  * serial sweep (timed) — seed the full population, then run the epoch
//    chain at one thread. This is the single-core number the >= 10x
//    headline is measured against.
//  * parallel sweep (timed) — a fresh identically-seeded table swept at
//    the pool thread count. Final table state checksum and the per-epoch
//    event-checksum chain must match the serial run bit for bit (hard
//    gate; serial==parallel is the determinism contract).
//  * baseline (timed) — the per-user planner scan the sweep replaces:
//    bestSatelliteAt(user, t) at every epoch start, measured on a
//    subsample and extrapolated to the full population. The >= 10x floor
//    is enforced by tools/bench_compare.py, not here (wall-clock asserts
//    flake on loaded machines; checksum gates cannot).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/core/hash.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/handover/handover.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/session/handover_sweep.hpp>
#include <openspace/session/session_table.hpp>
#include <openspace/sim/population.hpp>
#include <openspace/sim/session_scenarios.hpp>

namespace {

using namespace openspace;

constexpr int kPasses = 3;      // best-of to shrug off scheduler noise
constexpr int kEpochs = 24;     // steady-state window: 24 x 15 s
constexpr double kEpochS = 15.0;

double nowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timed {
  double bestPassS = 0.0;
  std::uint64_t checksum = 0;
};

/// Time `pass` (returning a checksum) `passes` times; keep the fastest wall
/// time and require a stable checksum.
template <typename Pass>
Timed timeIt(Pass&& pass, int passes = kPasses) {
  Timed r;
  for (int p = 0; p < passes; ++p) {
    const double t0 = nowS();
    const std::uint64_t sum = pass();
    const double dt = nowS() - t0;
    if (p == 0 || dt < r.bestPassS) r.bestPassS = dt;
    if (p == 0) {
      r.checksum = sum;
    } else if (sum != r.checksum) {
      std::fprintf(stderr, "non-deterministic pass checksum\n");
      std::exit(1);
    }
  }
  return r;
}

/// One seed + epoch-chain run over the full population; the epoch loop is
/// the timed region.
struct SweepRun {
  double seedS = 0.0;
  double sweepS = 0.0;
  std::uint64_t stateChecksum = 0;
  std::uint64_t eventChain = kFnvOffsetBasis;
  std::size_t touched = 0;
  std::size_t handovers = 0;
  std::size_t holes = 0;
  std::size_t reacquisitions = 0;
  std::size_t certHits = 0;
  std::size_t certMisses = 0;
  double outageS = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const char* jsonPath = argc > 1 ? argv[1] : "BENCH_session.json";
  const double scale =
      argc > 2 ? std::clamp(std::atof(argv[2]), 1e-3, 10.0) : 1.0;
  const double wallStartS = nowS();
  const int poolThreads = parallelThreadCount();

  // --- shared constellation + population -----------------------------------
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) {
    eph.publish(ProviderId{1}, el);
  }
  const std::size_t satCount = eph.satellites().size();
  std::unordered_map<std::uint32_t, std::uint32_t> indexOf;
  {
    const auto& sats = eph.satellites();
    for (std::size_t i = 0; i < sats.size(); ++i) {
      indexOf[sats[i].value()] = static_cast<std::uint32_t>(i);
    }
  }

  SweepConfig cfg;
  cfg.minElevationRad = deg2rad(10.0);
  cfg.dropOnCertExpiry = false;  // legacy equivalence: certs never gate
  const HandoverSweep sweeper(eph, cfg);
  const HandoverPlanner planner(eph, cfg.minElevationRad);

  const std::size_t users = std::max<std::size_t>(
      256, static_cast<std::size_t>(1'000'000 * scale));
  const double windowS = kEpochs * kEpochS;

  Rng rng(42);
  const CertificateAuthority authority(ProviderId{1}, 0xB47C'5E55ull,
                                       /*lifetimeS=*/7.0 * 86'400.0);
  const auto sampled =
      defaultWorldPopulation().sampleUsers(static_cast<int>(users), rng);
  const std::vector<SessionSeed> seeds =
      issueSeedCertificates(authority, sampled, /*firstUser=*/1, /*nowS=*/0.0);
  // Provision the certificate caches for the population (the §2.2 point:
  // a steady-state handover is a cache hit, i.e. a purely local operation).
  const std::size_t cacheBudget = 128 * users;

  // --- verify (untimed): sweep == legacy, bit for bit ----------------------
  const std::size_t verifyUsers = std::min<std::size_t>(users, 200);
  bool legacyMatch = true;
  std::size_t verifyEvents = 0;
  {
    const std::vector<SessionSeed> sub(seeds.begin(),
                                       seeds.begin() + verifyUsers);
    SessionTable table(satCount);
    table.setCertificateCacheByteBudget(cacheBudget);
    sweeper.seed(table, sub, 0.0, SeedMode::Planner);
    std::vector<SessionEvent> events;
    for (int e = 1; e <= kEpochs; ++e) {
      sweeper.runEpoch(table, e * kEpochS, &events);
    }
    std::unordered_map<UserId, std::vector<SessionEvent>> byUser;
    for (const SessionEvent& ev : events) byUser[ev.user].push_back(ev);
    for (const SessionSeed& s : sub) {
      const HandoverTimeline tl = simulateHandovers(
          planner, s.location, 0.0, windowS, cfg.mode, cfg.reassocCost);
      const auto& mine = byUser[s.user];
      bool ok = mine.size() == tl.events.size();
      for (std::size_t j = 0; ok && j < mine.size(); ++j) {
        const HandoverEvent& ref = tl.events[j];
        ok = bitsOf(mine[j].atS) == bitsOf(ref.atS) &&
             mine[j].fromSat == indexOf.at(ref.from.value()) &&
             mine[j].toSat == indexOf.at(ref.to.value()) &&
             bitsOf(mine[j].latencyS) == bitsOf(ref.latencyS);
      }
      verifyEvents += tl.events.size();
      legacyMatch = legacyMatch && ok;
    }
  }

  // --- full-population sweeps: serial (timed) then parallel (timed) --------
  const int parThreads = std::max(poolThreads, 4);
  const auto runAt = [&](int threads) {
    SweepRun r;
    SessionTable table(satCount);
    table.setCertificateCacheByteBudget(cacheBudget);
    double t0 = nowS();
    // Seeding is thread-count invariant; run it on the pool either way so
    // the timed region is exactly the epoch chain.
    sweeper.seed(table, seeds, 0.0, SeedMode::Planner);
    r.seedS = nowS() - t0;
    setParallelThreadCount(threads);
    t0 = nowS();
    for (int e = 1; e <= kEpochs; ++e) {
      const EpochStats st = sweeper.runEpoch(table, e * kEpochS);
      r.eventChain = fnv1a(r.eventChain, st.eventChecksum);
      r.touched += st.sessionsTouched;
      r.handovers += st.handovers;
      r.holes += st.coverageHoles;
      r.reacquisitions += st.reacquisitions;
      r.certHits += st.certCacheHits;
      r.certMisses += st.certCacheMisses;
      r.outageS += st.outageS;
    }
    r.sweepS = nowS() - t0;
    setParallelThreadCount(poolThreads);
    r.stateChecksum = table.stateChecksum();
    return r;
  };
  const SweepRun serial = runAt(1);
  const SweepRun parallel = runAt(parThreads);
  const bool serialParallelMatch =
      serial.stateChecksum == parallel.stateChecksum &&
      serial.eventChain == parallel.eventChain &&
      serial.handovers == parallel.handovers &&
      bitsOf(serial.outageS) == bitsOf(parallel.outageS);

  // --- baseline (timed): the per-user planner scan, subsampled -------------
  const std::size_t baseUsers = std::min<std::size_t>(users, 384);
  setParallelThreadCount(1);  // single-core, like the serial sweep
  const Timed base = timeIt([&] {
    std::uint64_t h = kFnvOffsetBasis;
    for (int e = 0; e < kEpochs; ++e) {
      const double t = e * kEpochS;
      for (std::size_t u = 0; u < baseUsers; ++u) {
        const auto best = planner.bestSatelliteAt(seeds[u].location, t);
        h = fnv1a(h, best ? best->value() : kNoSatellite);
      }
    }
    return h;
  });
  setParallelThreadCount(poolThreads);
  const double baselineS =
      base.bestPassS * static_cast<double>(users) /
      static_cast<double>(baseUsers);
  const double speedupPlanner =
      serial.sweepS > 0.0 ? baselineS / serial.sweepS : 0.0;
  const double speedupParallel =
      parallel.sweepS > 0.0 ? serial.sweepS / parallel.sweepS : 0.0;

  const bool allMatch = legacyMatch && serialParallelMatch;

  // --- report --------------------------------------------------------------
  std::printf("# Session plane: batched epoch sweep vs per-user planner "
              "scan (%zu sats, %zu users, %d epochs of %.0f s, scale=%.3f)\n\n",
              satCount, users, kEpochs, kEpochS, scale);
  std::printf("%-22s %-12s %-14s %-10s\n", "path", "threads", "epochs_s",
              "speedup");
  std::printf("%-22s %-12zu %-14.3f %-10s\n", "planner scan (extrap)",
              std::size_t{1}, baselineS, "1.00");
  std::printf("%-22s %-12zu %-14.3f %-10.2f\n", "epoch sweep", std::size_t{1},
              serial.sweepS, speedupPlanner);
  std::printf("%-22s %-12d %-14.3f %-10.2f\n", "epoch sweep", parThreads,
              parallel.sweepS,
              parallel.sweepS > 0.0 ? baselineS / parallel.sweepS : 0.0);
  std::printf("\n# seed: %.3f s (%d threads); sweep touched %zu sessions, "
              "%zu handovers, %zu holes, %zu reacquisitions\n",
              serial.seedS, poolThreads, serial.touched, serial.handovers,
              serial.holes, serial.reacquisitions);
  std::printf("# cert cache: %zu hits / %zu misses (budget %zu B); "
              "outage %.3f s across the fleet\n",
              serial.certHits, serial.certMisses, cacheBudget, serial.outageS);
  std::printf("# gates: sweep==legacy (%zu users, %zu events) %s  "
              "serial==parallel %s\n",
              verifyUsers, verifyEvents, legacyMatch ? "MATCH" : "MISMATCH",
              serialParallelMatch ? "MATCH" : "MISMATCH");

  const double wallS = nowS() - wallStartS;
  if (std::FILE* f = std::fopen(jsonPath, "w")) {
    std::fprintf(
        f,
        "{\n  \"bench\": \"session\",\n"
        "  \"wall_seconds\": %.6f,\n"
        "  \"threads\": %d,\n"
        "  \"scale\": %.4f,\n"
        "  \"sats\": %zu,\n"
        "  \"users\": %zu,\n"
        "  \"epochs\": %d,\n"
        "  \"epoch_s\": %.3f,\n"
        "  \"seed_s\": %.6f,\n"
        "  \"sweep_serial_s\": %.6f,\n"
        "  \"sweep_parallel_s\": %.6f,\n"
        "  \"per_epoch_serial_ms\": %.4f,\n"
        "  \"sessions_touched\": %zu,\n"
        "  \"handovers\": %zu,\n"
        "  \"coverage_holes\": %zu,\n"
        "  \"reacquisitions\": %zu,\n"
        "  \"cert_cache_hits\": %zu,\n"
        "  \"cert_cache_misses\": %zu,\n"
        "  \"outage_s\": %.6f,\n"
        "  \"baseline_users\": %zu,\n"
        "  \"baseline_probe_s\": %.6f,\n"
        "  \"baseline_extrapolated_s\": %.6f,\n"
        "  \"speedup_vs_planner\": %.3f,\n"
        "  \"speedup_parallel\": %.3f,\n"
        "  \"equivalence_users\": %zu,\n"
        "  \"equivalence_events\": %zu,\n"
        "  \"state_checksum\": \"%016llx\",\n"
        "  \"event_checksum\": \"%016llx\",\n"
        "  \"checksums_match\": %s\n}\n",
        wallS, parThreads, scale, satCount, users, kEpochs, kEpochS,
        serial.seedS, serial.sweepS, parallel.sweepS,
        1e3 * serial.sweepS / kEpochs, serial.touched, serial.handovers,
        serial.holes, serial.reacquisitions, serial.certHits,
        serial.certMisses, serial.outageS, baseUsers, base.bestPassS,
        baselineS, speedupPlanner, speedupParallel, verifyUsers, verifyEvents,
        static_cast<unsigned long long>(serial.stateChecksum),
        static_cast<unsigned long long>(serial.eventChain),
        allMatch ? "true" : "false");
    std::fclose(f);
    std::printf("# json: %s\n", jsonPath);
  }
  return allMatch ? 0 : 1;
}
