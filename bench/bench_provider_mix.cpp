// §5(1): "What is the precise mix of small and big satellite players that
// are needed to realize OpenSpace?" — the provider-diversity study the
// paper calls for. A fixed 72-satellite budget is split across K providers
// (from one monolith to 24 micro-operators); for each mix we report
// coverage, network connectivity, the capital any single participant must
// raise, and whether the revenue split makes the coalition self-enforcing.
#include <cstdio>

#include <openspace/coverage/coverage.hpp>
#include <openspace/econ/capex.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/econ/incentives.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/topology/builder.hpp>

int main() {
  using namespace openspace;
  const int totalSats = 72;
  const double altitude = km(780.0);
  const double mask = deg2rad(10.0);

  std::printf("# Provider-mix study: %d satellites split across K providers\n",
              totalSats);
  std::printf("# (uncoordinated random orbits per provider — the realistic\n"
              "#  multi-firm case; coverage via Monte Carlo)\n\n");
  std::printf("%-10s %-10s %-10s %-12s %-14s %-16s %-14s\n", "providers",
              "sats_each", "coverage", "conn_frac", "capex_$M_each",
              "coalition_$gain", "stable");

  for (const int k : {1, 2, 4, 6, 12, 24}) {
    const int satsEach = totalSats / k;
    Rng rng(static_cast<std::uint64_t>(k) * 101);

    // Build the pooled fleet and the coalition members.
    std::vector<CoalitionMember> members;
    EphemerisService eph;
    std::vector<OrbitalElements> all;
    for (int p = 0; p < k; ++p) {
      CoalitionMember m;
      m.name = "p" + std::to_string(p);
      m.fleet = makeRandomConstellation(satsEach, altitude, rng);
      for (const auto& el : m.fleet) {
        eph.publish(static_cast<ProviderId>(p + 1), el);
        all.push_back(el);
      }
      members.push_back(std::move(m));
    }

    // Coverage of the pooled fleet.
    Rng covRng(7);
    const double coverage =
        monteCarloCoverage(all, 0.0, mask, 8'000, covRng).coverageFraction;

    // Connectivity: fraction of satellite pairs with an ISL path at t=0.
    TopologyBuilder topo(eph);
    SnapshotOptions opt;
    opt.wiring = IslWiring::NearestNeighbors;
    opt.nearestK = 4;
    const NetworkGraph g = topo.snapshot(0.0, opt);
    const auto sats = g.nodesOfKind(NodeKind::Satellite);
    const auto tree = shortestPathTree(g, sats.front(), latencyCost());
    double reachable = 0;
    for (const NodeId s : sats) {
      if (tree.contains(s)) reachable += 1;
    }
    const double connFrac = reachable / static_cast<double>(sats.size());

    // Capital each provider must raise.
    const auto costs = collaborationCosts(k, totalSats, 6, rfOnlySatellite(),
                                          GroundStationCostModel{});

    // Incentive: coalition revenue gain over fragmented standalone revenue.
    Rng incRng(11);
    const auto analysis =
        analyzeCoalition(members, 100e6, 0.0, mask, 2'000, 30, incRng);
    const double gain =
        analysis.coalitionRevenueUsd - analysis.sumStandaloneRevenueUsd;

    std::printf("%-10d %-10d %-10.3f %-12.3f %-14.1f %-16.1f %-14s\n", k,
                satsEach, coverage, connFrac, costs.perProviderCapexUsd / 1e6,
                gain / 1e6, analysis.selfEnforcing() ? "yes" : "no");
  }

  std::printf("\n# Reading: pooled coverage/connectivity are independent of\n"
              "# the ownership split (the OpenSpace point), while per-provider\n"
              "# capital falls ~1/K and the coalition surplus (continuity\n"
              "# premium over patchwork fragments) grows with fragmentation —\n"
              "# small players gain most from interoperating.\n");
  return 0;
}
