// Cost-model reproduction (§3): per-path traffic accounting, cross-
// verification, settlement, and peering detection.
//
// Scenario: three providers with interleaved fleets; users of each provider
// roam across the others' satellites (the OpenSpace norm). Every carried
// byte lands in every involved party's ledger; the engine cross-verifies
// the books, prices transit bilaterally, and flags symmetric pairs as
// peering candidates.
#include <cstdio>

#include <openspace/econ/ledger.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/sim/scenario.hpp>

int main() {
  using namespace openspace;

  ScenarioConfig cfg;
  cfg.providers = {{"aurora", 22, 0.0, 0.08},
                   {"borealis", 22, 0.5, 0.05},
                   {"cygnus", 22, 0.0, 0.12}};
  cfg.coordinatedWalker = true;
  cfg.stations = {{"svalbard-gw", Geodetic::fromDegrees(78.23, 15.41), 0},
                  {"punta-arenas-gw", Geodetic::fromDegrees(-53.16, -70.91), 1},
                  {"nairobi-gw", Geodetic::fromDegrees(-1.29, 36.82), 2}};
  cfg.users = {{"alice", Geodetic::fromDegrees(64.14, -21.94), 0},
               {"bob", Geodetic::fromDegrees(-33.87, 151.21), 1},
               {"carol", Geodetic::fromDegrees(19.43, -99.13), 2},
               {"dave", Geodetic::fromDegrees(35.68, 139.69), 0},
               {"erin", Geodetic::fromDegrees(52.52, 13.40), 1},
               {"frank", Geodetic::fromDegrees(-12.05, -77.04), 2}};
  cfg.seed = 77;

  Scenario scenario(cfg);
  const TrafficReport rep =
      scenario.runTrafficEpoch(/*t=*/0.0, /*duration=*/5.0, /*rate=*/2e6);

  std::printf("# Cost model study: 3 providers, 66 interleaved satellites, "
              "6 roaming users\n\n");
  std::printf("packets offered=%zu delivered=%zu dropped=%zu loss=%.4f\n",
              rep.packetsOffered, rep.packetsDelivered, rep.packetsDropped,
              rep.lossProbability);
  if (rep.packetsDelivered > 0) {
    std::printf("latency mean=%.2f ms p95=%.2f ms\n",
                toMilliseconds(rep.meanLatencyS),
                toMilliseconds(rep.p95LatencyS));
  }
  std::printf("ledgers cross-verified: %s\n\n",
              rep.ledgersCrossVerified ? "YES" : "NO");

  std::printf("%-8s %-8s %-14s %-12s\n", "payer", "payee", "transit_MB",
              "amount_usd");
  for (const auto& item : rep.settlement) {
    std::printf("%-8u %-8u %-14.3f %-12.6f\n", item.payer.value(), item.payee.value(),
                item.bytes / 1e6, item.amountUsd);
  }
  std::printf("\ntotal settlement: $%.6f\n", rep.totalSettlementUsd);

  const auto peers = scenario.settlement().recommendPeering(0.3, 1e3);
  std::printf("\npeering candidates (symmetry >= 0.3, >= 1 kB both ways): %zu\n",
              peers.size());
  for (const auto& p : peers) {
    std::printf("  providers %u <-> %u  (%.2f MB / %.2f MB, symmetry %.2f)\n",
                p.a.value(), p.b.value(), p.aCarriedForB / 1e6, p.bCarriedForA / 1e6,
                p.symmetry);
  }

  std::printf("\n# Expected shape: every provider both carries and consumes\n"
              "# transit (meshed roles, unlike BGP's strict customer/provider\n"
              "# split); books agree across all parties; heavily symmetric\n"
              "# pairs surface as peering candidates.\n");
  return 0;
}
