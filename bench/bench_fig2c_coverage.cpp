// Figure 2(c) reproduction: Earth coverage vs. number of satellites.
//
// Paper setup (§4): random orbital paths; worst-case overlap model — any
// overlapping pair of footprints collapses to a single footprint. Expected
// shape: total earth coverage achieved by about 50 satellites; additional
// satellites buy redundancy. The Monte-Carlo union column is the ablation
// (DESIGN.md §5(1)): the optimistic counterpart of the paper's worst case.
#include <cstdio>

#include <openspace/geo/units.hpp>
#include <openspace/sim/fig2.hpp>

int main() {
  using namespace openspace;
  Fig2Config cfg;
  // The latency experiment counts horizon visibility (mask 0); for the
  // coverage panel we apply a 10-degree *service* mask — a terminal at the
  // edge of the horizon is reachable but not usable.
  cfg.minElevationRad = deg2rad(10.0);
  const int trials = 30;

  std::vector<int> counts;
  for (int n = 1; n <= 30; ++n) counts.push_back(n);
  for (int n = 35; n <= 100; n += 5) counts.push_back(n);

  const auto sweep = fig2CoverageSweep(counts, trials, cfg, /*seed=*/2024);

  std::printf("# Figure 2(c): coverage vs constellation size\n");
  std::printf("# alt=%.0f km  mask=%.0f deg  trials=%d (random constellations)\n",
              cfg.altitudeM / 1000.0, rad2deg(cfg.minElevationRad), trials);
  std::printf("%-6s %-18s %-18s %-18s\n", "sats", "worstcase_cov",
              "montecarlo_cov", "effective_sats");
  int fullCoverageAt = -1;
  for (const auto& pt : sweep) {
    std::printf("%-6d %-18.4f %-18.4f %-18.2f\n", pt.satellites,
                pt.worstCaseCoverage, pt.monteCarloCoverage,
                pt.meanEffectiveSatellites);
    if (fullCoverageAt < 0 && pt.worstCaseCoverage >= 0.99) {
      fullCoverageAt = pt.satellites;
    }
  }
  if (fullCoverageAt > 0) {
    std::printf("\n# worst-case model reaches ~total coverage at N=%d "
                "(paper: ~50)\n", fullCoverageAt);
  } else {
    std::printf("\n# worst-case model did not reach 99%% coverage in sweep\n");
  }
  return 0;
}
