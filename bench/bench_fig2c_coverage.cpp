// Figure 2(c) reproduction: Earth coverage vs. number of satellites.
//
// Paper setup (§4): random orbital paths; worst-case overlap model — any
// overlapping pair of footprints collapses to a single footprint. Expected
// shape: total earth coverage achieved by about 50 satellites; additional
// satellites buy redundancy. The Monte-Carlo union column is the ablation
// (DESIGN.md §5(1)): the optimistic counterpart of the paper's worst case.
//
// Besides the human-readable table, the bench writes a machine-readable
// JSON record (wall time + every sweep point) to BENCH_fig2c_coverage.json
// (or argv[1]) so the performance trajectory can be tracked across PRs.
#include <chrono>
#include <cstdio>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/sim/fig2.hpp>

int main(int argc, char** argv) {
  using namespace openspace;
  Fig2Config cfg;
  // The latency experiment counts horizon visibility (mask 0); for the
  // coverage panel we apply a 10-degree *service* mask — a terminal at the
  // edge of the horizon is reachable but not usable.
  cfg.minElevationRad = deg2rad(10.0);
  const int trials = 30;

  std::vector<int> counts;
  for (int n = 1; n <= 30; ++n) counts.push_back(n);
  for (int n = 35; n <= 100; n += 5) counts.push_back(n);

  const auto start = std::chrono::steady_clock::now();
  const auto sweep = fig2CoverageSweep(counts, trials, cfg, /*seed=*/2024);
  const double wallS =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf("# Figure 2(c): coverage vs constellation size\n");
  std::printf("# alt=%.0f km  mask=%.0f deg  trials=%d (random constellations)\n",
              cfg.altitudeM / 1000.0, rad2deg(cfg.minElevationRad), trials);
  std::printf("%-6s %-18s %-18s %-18s\n", "sats", "worstcase_cov",
              "montecarlo_cov", "effective_sats");
  int fullCoverageAt = -1;
  for (const auto& pt : sweep) {
    std::printf("%-6d %-18.4f %-18.4f %-18.2f\n", pt.satellites,
                pt.worstCaseCoverage, pt.monteCarloCoverage,
                pt.meanEffectiveSatellites);
    if (fullCoverageAt < 0 && pt.worstCaseCoverage >= 0.99) {
      fullCoverageAt = pt.satellites;
    }
  }
  if (fullCoverageAt > 0) {
    std::printf("\n# worst-case model reaches ~total coverage at N=%d "
                "(paper: ~50)\n", fullCoverageAt);
  } else {
    std::printf("\n# worst-case model did not reach 99%% coverage in sweep\n");
  }
  std::printf("# wall time: %.3f s (threads=%d)\n", wallS,
              parallelThreadCount());

  const char* jsonPath = argc > 1 ? argv[1] : "BENCH_fig2c_coverage.json";
  if (std::FILE* f = std::fopen(jsonPath, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"fig2c_coverage\",\n  \"wall_seconds\": "
                 "%.6f,\n  \"threads\": %d,\n  \"trials\": %d,\n  "
                 "\"full_coverage_at\": %d,\n  \"points\": [\n",
                 wallS, parallelThreadCount(), trials, fullCoverageAt);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& pt = sweep[i];
      std::fprintf(f,
                   "    {\"satellites\": %d, \"worst_case_coverage\": %.6f, "
                   "\"monte_carlo_coverage\": %.6f, "
                   "\"mean_effective_satellites\": %.4f}%s\n",
                   pt.satellites, pt.worstCaseCoverage, pt.monteCarloCoverage,
                   pt.meanEffectiveSatellites, i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# json: %s\n", jsonPath);
  }
  return 0;
}
