// Flow-simulator benchmark: the timer-wheel scheduler vs the legacy
// EventQueue spec, FlowSimulator vs the legacy toy stack, and the headline
// constellation-scale run.
//
// Phases:
//  * scheduler — self-rescheduling open-timer workload (LCG-deterministic
//    delays spanning 1 us .. 0.1 s, so records land on every wheel level):
//    the legacy EventQueue pays a std::function allocation and a heap
//    percolation per event; the TimerWheel schedules POD records in O(1).
//    Identical fire-order checksums are a hard gate — the wheel must be a
//    drop-in ordering-exact replacement, not approximately right.
//  * equivalence — the same multi-flow Iridium workload (66-sat plus-grid,
//    six gateways, queueing contention) run through the legacy
//    FlowGenerator + ForwardingEngine stack and through FlowSimulator with
//    one shared seed. The FNV checksum over every delivery record — ids,
//    timestamps, latencies, drop reasons, completion order — must match
//    bit for bit (hard gate). The wall-time ratio is the end-to-end
//    simulator speedup.
//  * cityflows — buildCityFlows at one thread vs the pool: spec checksums
//    must match bit for bit (hard gate; this is the path the TSan lane
//    watches at reduced scale).
//  * scale — the headline: city-weighted users over the Iridium snapshot,
//    ~100k concurrent flows at scale 1.0, reporting wall time, events/s,
//    latency percentiles, loss and peak link utilization.
//
// Hard gates exit non-zero so CI fails loudly rather than recording
// garbage. Besides the human-readable table the bench writes a
// machine-readable JSON record to BENCH_flow_sim.json (or argv[1]);
// argv[2] is an optional workload scale (e.g. 0.02 for the TSan lane).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <vector>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/net/event.hpp>
#include <openspace/net/flows.hpp>
#include <openspace/net/forwarding.hpp>
#include <openspace/net/scheduler.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/engine.hpp>
#include <openspace/sim/flow_sim.hpp>
#include <openspace/topology/builder.hpp>

namespace {

using namespace openspace;

constexpr int kPasses = 3;  // best-of to shrug off scheduler noise

double nowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Timed {
  double bestPassS = 0.0;
  std::uint64_t checksum = 0;
};

/// Time `pass` (returning a checksum) `passes` times; keep the fastest wall
/// time and require a stable checksum.
template <typename Pass>
Timed timeIt(Pass&& pass, int passes = kPasses) {
  Timed r;
  for (int p = 0; p < passes; ++p) {
    const double t0 = nowS();
    const std::uint64_t sum = pass();
    const double dt = nowS() - t0;
    if (p == 0 || dt < r.bestPassS) r.bestPassS = dt;
    if (p == 0) {
      r.checksum = sum;
    } else if (sum != r.checksum) {
      std::fprintf(stderr, "non-deterministic pass checksum\n");
      std::exit(1);
    }
  }
  return r;
}

int scaled(double base, double scale) {
  return std::max(1, static_cast<int>(base * scale));
}

// --- phase A: scheduler ----------------------------------------------------

/// Deterministic per-timer delay stream (identical on both sides): a 64-bit
/// LCG whose high bits pick a delay in [1 us, 0.1 s].
double nextDelayS(std::uint64_t& state) {
  state = state * 6364136223846793005ull + 1442695040888963407ull;
  return 1e-6 * static_cast<double>(1 + ((state >> 33) % 100'000));
}

std::vector<std::uint64_t> lcgSeeds(int timers) {
  std::vector<std::uint64_t> s(static_cast<std::size_t>(timers));
  for (int i = 0; i < timers; ++i) {
    s[static_cast<std::size_t>(i)] =
        0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(i) + 1);
  }
  return s;
}

std::uint64_t legacySchedulerPass(int timers, std::size_t targetEvents) {
  EventQueue q;
  std::vector<std::uint64_t> lcg = lcgSeeds(timers);
  std::uint64_t h = kFnvOffsetBasis;
  std::size_t fired = 0;
  std::function<void(int)> fire = [&](int timer) {
    const auto t = static_cast<std::size_t>(timer);
    h = fnv1a(h, static_cast<std::uint64_t>(timer));
    h = fnv1a(h, bitsOf(q.now()));
    if (++fired < targetEvents) {
      q.schedule(q.now() + nextDelayS(lcg[t]), [&fire, timer] { fire(timer); });
    }
  };
  for (int i = 0; i < timers; ++i) {
    const auto t = static_cast<std::size_t>(i);
    q.schedule(nextDelayS(lcg[t]), [&fire, i] { fire(i); });
  }
  q.runAll();
  return h;
}

std::uint64_t wheelSchedulerPass(int timers, std::size_t targetEvents) {
  struct Pod {
    std::uint32_t timer;
  };
  TimerWheel<Pod> w(1e-6);
  std::vector<std::uint64_t> lcg = lcgSeeds(timers);
  std::uint64_t h = kFnvOffsetBasis;
  std::size_t fired = 0;
  for (int i = 0; i < timers; ++i) {
    const auto t = static_cast<std::size_t>(i);
    w.schedule(nextDelayS(lcg[t]), Pod{static_cast<std::uint32_t>(i)});
  }
  w.runAll([&](double tS, const Pod& p) {
    h = fnv1a(h, p.timer);
    h = fnv1a(h, bitsOf(tS));
    if (++fired < targetEvents) {
      w.schedule(tS + nextDelayS(lcg[p.timer]), p);
    }
  });
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const char* jsonPath = argc > 1 ? argv[1] : "BENCH_flow_sim.json";
  const double scale =
      argc > 2 ? std::clamp(std::atof(argv[2]), 1e-3, 10.0) : 1.0;
  const double wallStartS = nowS();
  const int poolThreads = parallelThreadCount();

  // --- phase A: scheduler microbench --------------------------------------
  const int schedTimers = scaled(10'000, scale);
  const auto schedEvents =
      static_cast<std::size_t>(scaled(2'000'000, scale));
  const Timed schedLegacy =
      timeIt([&] { return legacySchedulerPass(schedTimers, schedEvents); });
  const Timed schedWheel =
      timeIt([&] { return wheelSchedulerPass(schedTimers, schedEvents); });
  const bool schedMatch = schedLegacy.checksum == schedWheel.checksum;
  // Both sides fire target + open-timer-tail events; count the actual total
  // for the events/s figure.
  const auto schedTotal =
      schedEvents + static_cast<std::size_t>(schedTimers);
  const double legacyEps =
      schedLegacy.bestPassS > 0.0
          ? static_cast<double>(schedTotal) / schedLegacy.bestPassS
          : 0.0;
  const double wheelEps =
      schedWheel.bestPassS > 0.0
          ? static_cast<double>(schedTotal) / schedWheel.bestPassS
          : 0.0;
  const double speedupScheduler =
      schedWheel.bestPassS > 0.0
          ? schedLegacy.bestPassS / schedWheel.bestPassS
          : 0.0;

  // --- shared constellation setup -----------------------------------------
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) {
    eph.publish(ProviderId{1}, el);
  }
  TopologyBuilder topo(eph);
  const struct {
    const char* name;
    double latDeg, lonDeg;
  } kGateways[] = {
      {"paris", 48.86, 2.35},    {"denver", 39.74, -104.99},
      {"jburg", -26.20, 28.05},  {"sydney", -33.87, 151.21},
      {"saopaulo", -23.55, -46.63}, {"tokyo", 35.68, 139.69},
  };
  std::vector<NodeId> gateways;
  for (const auto& gw : kGateways) {
    gateways.push_back(topo.nodeOf(topo.addGroundStation(
        {gw.name, Geodetic::fromDegrees(gw.latDeg, gw.lonDeg), ProviderId{1}})));
  }
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  opt.minElevationRad = deg2rad(10.0);
  const NetworkGraph g = topo.snapshot(0.0, opt);
  const RouteEngine engine(g, latencyCost());
  const auto snapshot = std::make_shared<const ConstellationSnapshot>(eph, 0.0);
  std::vector<NodeId> satNodes;
  for (const SatelliteId sid : eph.satellites()) {
    satNodes.push_back(topo.nodeOf(sid));
  }

  // --- phase B: simulator == legacy stack, bit for bit ---------------------
  const int equivFlows = scaled(2'000, scale);
  const double equivStopS = 0.5;
  std::vector<FlowSpec> flows;
  std::vector<std::uint32_t> flowRoute;  // index into routeForPair
  std::vector<Route> pairRoutes;
  std::unordered_map<std::uint64_t, std::uint32_t> pairIndex;
  for (int i = 0; i < equivFlows; ++i) {
    const NodeId src = satNodes[static_cast<std::size_t>(i) % satNodes.size()];
    const NodeId dst = gateways[static_cast<std::size_t>(i) % gateways.size()];
    const std::uint64_t key = src.value() * 1'000'003ull + dst.value();
    auto it = pairIndex.find(key);
    if (it == pairIndex.end()) {
      Route r = engine.shortestPath(src, dst);
      if (!r.valid()) continue;  // unreachable pair: skip
      it = pairIndex.emplace(key, static_cast<std::uint32_t>(pairRoutes.size()))
               .first;
      pairRoutes.push_back(std::move(r));
    }
    FlowSpec f;
    f.src = src;
    f.dst = dst;
    f.rateBps = 8e3 * static_cast<double>(1 + i % 5);
    f.packetBits = 12'000.0;
    f.stopS = equivStopS;
    flows.push_back(f);
    flowRoute.push_back(it->second);
  }

  const Timed equivLegacy = timeIt([&] {
    EventQueue ev;
    Rng rng(7);
    ForwardingEngine fwd(g, ev);
    std::uint64_t h = kFnvOffsetBasis;
    fwd.onComplete(
        [&](const DeliveryRecord& r) { h = mixDeliveryRecord(h, r); });
    FlowGenerator gen(ev, rng, [&](const Packet& p) {
      const std::uint64_t key = p.src.value() * 1'000'003ull + p.dst.value();
      fwd.send(p, pairRoutes[pairIndex.at(key)]);
    });
    for (const FlowSpec& f : flows) gen.addFlow(f);
    ev.runAll();
    return h;
  });

  std::uint64_t equivRecords = 0;
  const Timed equivSim = timeIt([&] {
    FlowSimulator sim(engine.sharedGraph(), FlowSimConfig{}.withSeed(7));
    std::vector<std::uint32_t> pathOf(pairRoutes.size(),
                                      FlowSimulator::kNoPath);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const std::uint32_t pr = flowRoute[i];
      if (pathOf[pr] == FlowSimulator::kNoPath) {
        pathOf[pr] = sim.addPath(pairRoutes[pr]);
      }
      sim.addFlow(flows[i], pathOf[pr]);
    }
    const FlowSimReport rep = sim.run();
    equivRecords = rep.packetsOffered;
    return rep.recordChecksum;
  });
  const bool equivMatch = equivLegacy.checksum == equivSim.checksum;
  const double speedupSim = equivSim.bestPassS > 0.0
                                ? equivLegacy.bestPassS / equivSim.bestPassS
                                : 0.0;

  // --- phase C: buildCityFlows serial == parallel ---------------------------
  CityFlowConfig cityCfg;
  cityCfg.users = scaled(20'000, scale);
  cityCfg.meanRateBps = 20e3;
  cityCfg.durationS = 0.5;
  cityCfg.minElevationRad = deg2rad(10.0);
  cityCfg.utcSeconds = 12.0 * 3600.0;
  cityCfg.seed = 31;
  setParallelThreadCount(1);
  const CityFlows citySerial =
      buildCityFlows(cityCfg, snapshot, satNodes, gateways, engine);
  setParallelThreadCount(std::max(poolThreads, 4));
  const int parThreads = parallelThreadCount();
  const CityFlows cityParallel =
      buildCityFlows(cityCfg, snapshot, satNodes, gateways, engine);
  setParallelThreadCount(poolThreads);
  const bool cityMatch = citySerial.checksum == cityParallel.checksum;

  // --- phase D: the constellation-scale run ---------------------------------
  CityFlowConfig scaleCfg;
  scaleCfg.users = scaled(110'000, scale);
  scaleCfg.meanRateBps = 20e3;
  scaleCfg.durationS = 2.0;
  scaleCfg.minElevationRad = deg2rad(10.0);
  scaleCfg.utcSeconds = 12.0 * 3600.0;
  scaleCfg.seed = 2024;
  const CityFlows cityScale =
      buildCityFlows(scaleCfg, snapshot, satNodes, gateways, engine);

  FlowSimulator sim(engine.sharedGraph(), FlowSimConfig{}
                                              .withSeed(2024)
                                              .withDuration(scaleCfg.durationS));
  std::vector<std::uint32_t> pathOf(cityScale.routes.size(),
                                    FlowSimulator::kNoPath);
  for (std::size_t i = 0; i < cityScale.specs.size(); ++i) {
    const std::uint32_t sat = cityScale.routeOf[i];
    if (pathOf[sat] == FlowSimulator::kNoPath) {
      pathOf[sat] = sim.addPath(cityScale.routes[sat]);
    }
    sim.addFlow(cityScale.specs[i], pathOf[sat]);
  }
  const double scaleT0 = nowS();
  const FlowSimReport rep = sim.run();
  const double scaleRunS = nowS() - scaleT0;
  const double scaleEps =
      scaleRunS > 0.0 ? static_cast<double>(rep.eventsExecuted) / scaleRunS
                      : 0.0;
  const double lossRate =
      rep.packetsOffered > 0
          ? static_cast<double>(rep.packetsDropped) /
                static_cast<double>(rep.packetsOffered)
          : 0.0;
  double maxUtil = 0.0;
  for (const double u : rep.edgeUtilization) maxUtil = std::max(maxUtil, u);
  const bool haveLatency = rep.packetsDelivered > 0;
  const double p50Ms = haveLatency ? rep.latency.percentileS(0.5) * 1e3 : 0.0;
  const double p95Ms = haveLatency ? rep.latency.p95S() * 1e3 : 0.0;
  const double p99Ms = haveLatency ? rep.latency.percentileS(0.99) * 1e3 : 0.0;

  const bool allMatch = schedMatch && equivMatch && cityMatch;

  // --- report ---------------------------------------------------------------
  std::printf("# Flow simulator: timer wheel vs EventQueue, FlowSimulator vs "
              "legacy stack (scale=%.3f, best of %d passes)\n\n",
              scale, kPasses);
  std::printf("%-12s %-14s %-12s %-12s %-10s\n", "phase", "work", "legacy_s",
              "new_s", "speedup");
  std::printf("%-12s %-14zu %-12.3f %-12.3f %-10.2f\n", "scheduler",
              schedTotal, schedLegacy.bestPassS, schedWheel.bestPassS,
              speedupScheduler);
  std::printf("%-12s %-14llu %-12.3f %-12.3f %-10.2f\n", "simulator",
              static_cast<unsigned long long>(equivRecords),
              equivLegacy.bestPassS, equivSim.bestPassS, speedupSim);
  std::printf("\n# scheduler: %d open timers, %.2fM events/s legacy, "
              "%.2fM events/s wheel\n",
              schedTimers, legacyEps / 1e6, wheelEps / 1e6);
  std::printf("# scale run: %zu flows (%zu users, %zu unserved), %llu "
              "packets, %llu events in %.3f s (%.2fM events/s)\n",
              cityScale.specs.size(),
              static_cast<std::size_t>(scaleCfg.users),
              cityScale.unservedUsers,
              static_cast<unsigned long long>(rep.packetsOffered),
              static_cast<unsigned long long>(rep.eventsExecuted), scaleRunS,
              scaleEps / 1e6);
  std::printf("# scale run: latency p50 %.2f ms  p95 %.2f ms  p99 %.2f ms, "
              "loss %.4f, peak edge utilization %.3f\n",
              p50Ms, p95Ms, p99Ms, lossRate, maxUtil);
  std::printf("# gates: scheduler %s  simulator==legacy %s  "
              "cityflows serial==parallel %s\n",
              schedMatch ? "MATCH" : "MISMATCH",
              equivMatch ? "MATCH" : "MISMATCH",
              cityMatch ? "MATCH" : "MISMATCH");

  const double wallS = nowS() - wallStartS;
  if (std::FILE* f = std::fopen(jsonPath, "w")) {
    std::fprintf(
        f,
        "{\n  \"bench\": \"flow_sim\",\n"
        "  \"wall_seconds\": %.6f,\n"
        "  \"threads\": %d,\n"
        "  \"scale\": %.4f,\n"
        "  \"sched_timers\": %d,\n"
        "  \"sched_events\": %zu,\n"
        "  \"sched_legacy_s\": %.6f,\n"
        "  \"sched_wheel_s\": %.6f,\n"
        "  \"sched_legacy_eps\": %.0f,\n"
        "  \"sched_wheel_eps\": %.0f,\n"
        "  \"speedup_scheduler\": %.3f,\n"
        "  \"equiv_flows\": %zu,\n"
        "  \"equiv_records\": %llu,\n"
        "  \"equiv_legacy_s\": %.6f,\n"
        "  \"equiv_sim_s\": %.6f,\n"
        "  \"speedup_sim\": %.3f,\n"
        "  \"cityflows_users\": %d,\n"
        "  \"cityflows_checksum\": \"%016llx\",\n"
        "  \"scale_users\": %d,\n"
        "  \"scale_flows\": %zu,\n"
        "  \"scale_packets\": %llu,\n"
        "  \"scale_dropped\": %llu,\n"
        "  \"scale_loss_rate\": %.6f,\n"
        "  \"scale_events\": %llu,\n"
        "  \"scale_run_s\": %.6f,\n"
        "  \"scale_events_per_s\": %.0f,\n"
        "  \"scale_p50_ms\": %.4f,\n"
        "  \"scale_p95_ms\": %.4f,\n"
        "  \"scale_p99_ms\": %.4f,\n"
        "  \"scale_max_utilization\": %.4f,\n"
        "  \"scale_record_checksum\": \"%016llx\",\n"
        "  \"checksums_match\": %s\n}\n",
        wallS, parThreads, scale, schedTimers, schedTotal,
        schedLegacy.bestPassS, schedWheel.bestPassS, legacyEps, wheelEps,
        speedupScheduler, flows.size(),
        static_cast<unsigned long long>(equivRecords), equivLegacy.bestPassS,
        equivSim.bestPassS, speedupSim, cityCfg.users,
        static_cast<unsigned long long>(citySerial.checksum), scaleCfg.users,
        cityScale.specs.size(),
        static_cast<unsigned long long>(rep.packetsOffered),
        static_cast<unsigned long long>(rep.packetsDropped), lossRate,
        static_cast<unsigned long long>(rep.eventsExecuted), scaleRunS,
        scaleEps, p50Ms, p95Ms, p99Ms, maxUtil,
        static_cast<unsigned long long>(rep.recordChecksum),
        allMatch ? "true" : "false");
    std::fclose(f);
    std::printf("# json: %s\n", jsonPath);
  }
  return allMatch ? 0 : 1;
}
