// Figure 2(a) reproduction: a simulated OpenSpace constellation that
// "achieves global coverage while maintaining inter-satellite distances and
// trajectories that allow for simple and sustained ISLs."
//
// We instantiate the Iridium-like Walker Star configuration the paper bases
// its simulation on, split ownership across six independent providers (one
// plane each — the democratized fleet), wire +grid ISLs, and report the
// constellation picture: sub-satellite points, ISL distance statistics, and
// instantaneous coverage.
#include <cstdio>

#include <openspace/coverage/coverage.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/topology/builder.hpp>

int main() {
  using namespace openspace;

  const WalkerConfig wc = iridiumConfig();
  const auto elements = makeWalkerStar(wc);

  // Six providers, one orbital plane each: independently owned, jointly
  // operated — the OpenSpace ownership model.
  EphemerisService eph;
  const int perPlane = wc.totalSatellites / wc.planes;
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const ProviderId owner =
        static_cast<ProviderId>(1 + static_cast<int>(i) / perPlane);
    eph.publish(owner, elements[i]);
  }

  TopologyBuilder topo(eph);
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = wc.planes;
  opt.maxIslRangeM = 6'000'000.0;
  const double t = 0.0;
  const NetworkGraph g = topo.snapshot(t, opt);

  std::printf("# Figure 2(a): simulated OpenSpace constellation (Iridium-like "
              "Walker Star %d/%d, %.0f km, %.1f deg)\n",
              wc.totalSatellites, wc.planes, wc.altitudeM / 1000.0,
              rad2deg(wc.inclinationRad));
  std::printf("# ownership: 6 providers, one plane each\n\n");

  // Sub-satellite points (the constellation picture), off the same cached
  // snapshot the topology builder just propagated.
  const auto snap = SnapshotCache::global().at(eph, t);
  const auto& sats = eph.satellites();
  std::printf("%-6s %-10s %-10s %-10s\n", "sat", "owner", "lat_deg", "lon_deg");
  for (std::size_t i = 0; i < sats.size(); ++i) {
    const Geodetic gd = ecefToGeodetic(snap->ecef(i));
    std::printf("%-6u %-10u %-10.2f %-10.2f\n", sats[i].value(),
                eph.record(sats[i]).owner.value(), rad2deg(gd.latitudeRad),
                rad2deg(gd.longitudeRad));
  }

  // ISL geometry: the paper highlights Walker Star's simple intra/inter-
  // plane ISLs. Report distance stats per link type.
  double minIsl = 1e12, maxIsl = 0.0, sumIsl = 0.0;
  int islCount = 0, crossProvider = 0;
  for (const LinkId lid : g.links()) {
    const Link& l = g.link(lid);
    if (l.type != LinkType::IslRf && l.type != LinkType::IslLaser) continue;
    minIsl = std::min(minIsl, l.distanceM);
    maxIsl = std::max(maxIsl, l.distanceM);
    sumIsl += l.distanceM;
    ++islCount;
    if (g.node(l.a).provider != g.node(l.b).provider) ++crossProvider;
  }
  std::printf("\n# ISLs: %d (+grid), cross-provider: %d\n", islCount,
              crossProvider);
  if (islCount > 0) {
    std::printf("# ISL distance km: min=%.0f mean=%.0f max=%.0f\n",
                minIsl / 1000.0, sumIsl / islCount / 1000.0, maxIsl / 1000.0);
  }

  // Instantaneous coverage of the full constellation.
  Rng rng(7);
  const auto cov = monteCarloCoverage(elements, t, deg2rad(10.0), 20'000, rng);
  std::printf("# instantaneous Monte-Carlo coverage (10 deg mask): %.1f%%\n",
              100.0 * cov.coverageFraction);
  return 0;
}
