// Anchor validation: the quantitative claims §4 cites.
//
//  * CBO primer: 72 satellites (12 per plane, 6 planes, 80 deg inclination)
//    provide about 95% global coverage.
//  * Iridium: 66 satellites at 780 km give (near-)global coverage, with a
//    Walker Star layout that keeps intra-/inter-plane ISLs simple.
#include <cstdio>

#include <openspace/coverage/coverage.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/topology/builder.hpp>

namespace {

void report(const char* label, const openspace::WalkerConfig& cfg,
            double maskDeg) {
  using namespace openspace;
  const auto sats = makeWalkerStar(cfg);
  Rng rng(99);
  // Time-averaged over one orbital period: instantaneous coverage of polar
  // constellations oscillates as planes converge at the poles.
  const double period = sats.front().periodS();
  const double avg = timeAveragedCoverage(sats, 0.0, period, 12,
                                          deg2rad(maskDeg), 8'000, rng);
  Rng rng2(123);
  const auto instant =
      monteCarloCoverage(sats, 0.0, deg2rad(maskDeg), 20'000, rng2);
  std::printf("%-22s T=%-4d P=%-3d incl=%-6.1f mask=%.0fdeg  "
              "instant=%.1f%%  time-avg=%.1f%%\n",
              label, cfg.totalSatellites, cfg.planes,
              rad2deg(cfg.inclinationRad), maskDeg,
              100.0 * instant.coverageFraction, 100.0 * avg);
}

}  // namespace

int main() {
  using namespace openspace;
  std::printf("# Anchor validation (paper section 4 citations)\n");
  std::printf("# CBO: 72 sats / 6 planes / 80 deg => ~95%% coverage\n");
  std::printf("# Iridium: 66 sats / 6 planes / 86.4 deg / 780 km => global\n\n");

  report("CBO-72 (5deg mask)", cboConfig(), 5.0);
  report("CBO-72 (10deg mask)", cboConfig(), 10.0);
  report("Iridium-66 (5deg)", iridiumConfig(), 5.0);
  report("Iridium-66 (10deg)", iridiumConfig(), 10.0);

  // Walker Star ISL simplicity: +grid link feasibility at t=0.
  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);
  TopologyBuilder topo(eph);
  SnapshotOptions opt;
  opt.wiring = IslWiring::PlusGrid;
  opt.planes = 6;
  const NetworkGraph g = topo.snapshot(0.0, opt);
  // A full +grid over 66 sats without the seam: 66 intra-plane + 55 inter-
  // plane candidates; count how many actually close.
  std::printf("\n# Iridium +grid ISLs closing at t=0: %zu (of 121 candidates)\n",
              g.linkCount());
  return 0;
}
