// Anchor C / ablation: handover cadence and the predictive-vs-reassociate
// comparison (§2.2 "Satellite Handovers").
//
// Expectation: LEO handovers are frequent (Starlink: every ~15 s with
// thousands of satellites; an Iridium-like 66-sat constellation hands over
// on the order of minutes). OpenSpace's predictive scheme should cut
// per-handover outage by orders of magnitude versus re-running association
// + RADIUS authentication every time.
//
// Besides the human-readable tables the bench writes a machine-readable
// JSON record to BENCH_handover.json (or argv[1]); argv[2] is an optional
// workload scale applied to the service window (0.2 for the perf-smoke
// lane). The timelines are deterministic seeded computations, so
// tools/bench_compare.py re-asserts the cadence numbers exactly against
// the committed baseline — any drift is a semantic change, not noise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include <openspace/geo/units.hpp>
#include <openspace/handover/handover.hpp>
#include <openspace/orbit/walker.hpp>

namespace {

double nowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeStats {
  int handovers = 0;
  double meanIntervalS = 0.0;
  double meanLatencyS = 0.0;
  double outageS = 0.0;
  double availabilityPct = 0.0;
};

struct CadenceRow {
  int sats = 0;
  int handovers = 0;
  double intervalS = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace openspace;

  const char* jsonPath = argc > 1 ? argv[1] : "BENCH_handover.json";
  const double scale =
      argc > 2 ? std::clamp(std::atof(argv[2]), 1e-3, 10.0) : 1.0;
  const double wallStartS = nowS();

  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);

  const HandoverPlanner planner(eph, deg2rad(10.0));
  const Geodetic user = Geodetic::fromDegrees(40.4406, -79.9959);  // Pittsburgh
  // Two hours of service at scale 1.0; never below ten minutes (a shorter
  // window has too few handovers to say anything).
  const double horizon = std::max(600.0, 2.0 * 3600.0 * scale);

  std::printf("# Handover study: Iridium-like 66-sat Walker Star, "
              "user at Pittsburgh, 10 deg mask, %.0f min window\n\n",
              horizon / 60.0);

  ModeStats predictive, reassociate;
  for (const HandoverMode mode :
       {HandoverMode::Predictive, HandoverMode::ReAssociate}) {
    const auto tl = simulateHandovers(planner, user, 0.0, horizon, mode);
    const char* name =
        (mode == HandoverMode::Predictive) ? "predictive" : "re-associate";
    double meanLatency = 0.0;
    for (const auto& ev : tl.events) meanLatency += ev.latencyS;
    if (!tl.events.empty()) {
      meanLatency /= static_cast<double>(tl.events.size());
    }
    ModeStats& out =
        (mode == HandoverMode::Predictive) ? predictive : reassociate;
    out.handovers = tl.handovers();
    out.meanIntervalS = tl.meanIntervalS;
    out.meanLatencyS = meanLatency;
    out.outageS = tl.outageS;
    out.availabilityPct = 100.0 * (1.0 - tl.outageS / horizon);
    std::printf("%-13s handovers=%-4d mean_interval=%6.1f s  "
                "mean_handover_latency=%8.3f ms  total_outage=%8.3f s  "
                "availability=%.4f%%\n",
                name, tl.handovers(), tl.meanIntervalS,
                toMilliseconds(meanLatency), tl.outageS,
                100.0 * (1.0 - tl.outageS / horizon));
  }

  // Handover cadence vs constellation density (the Starlink-15s anchor:
  // cadence shortens as fleets densify; rich fleets can afford to switch
  // to the best satellite often).
  std::printf("\n# cadence vs density (predictive):\n");
  std::printf("%-8s %-12s %-14s\n", "sats", "handovers", "interval_s");
  std::vector<CadenceRow> cadence;
  for (const int n : {11, 22, 44, 66, 132, 264}) {
    EphemerisService e2;
    WalkerConfig wc = iridiumConfig();
    wc.totalSatellites = n;
    wc.planes = (n % 11 == 0) ? n / 11 : 6;
    if (n % wc.planes != 0) wc.planes = 1;
    wc.phasing = wc.phasing % wc.planes;
    for (const auto& el : makeWalkerStar(wc)) e2.publish(ProviderId{1}, el);
    const HandoverPlanner p2(e2, deg2rad(10.0));
    const auto tl = simulateHandovers(p2, user, 0.0, horizon,
                                      HandoverMode::Predictive);
    cadence.push_back({n, tl.handovers(), tl.meanIntervalS});
    std::printf("%-8d %-12d %-14.1f\n", n, tl.handovers(), tl.meanIntervalS);
  }

  const double outageRatio =
      predictive.outageS > 0.0 ? reassociate.outageS / predictive.outageS
                               : 0.0;
  const double wallS = nowS() - wallStartS;
  if (std::FILE* f = std::fopen(jsonPath, "w")) {
    std::fprintf(
        f,
        "{\n  \"bench\": \"handover\",\n"
        "  \"wall_seconds\": %.6f,\n"
        "  \"scale\": %.4f,\n"
        "  \"horizon_s\": %.3f,\n"
        "  \"predictive_handovers\": %d,\n"
        "  \"predictive_mean_interval_s\": %.6f,\n"
        "  \"predictive_mean_latency_ms\": %.6f,\n"
        "  \"predictive_outage_s\": %.6f,\n"
        "  \"predictive_availability_pct\": %.6f,\n"
        "  \"reassociate_handovers\": %d,\n"
        "  \"reassociate_mean_interval_s\": %.6f,\n"
        "  \"reassociate_mean_latency_ms\": %.6f,\n"
        "  \"reassociate_outage_s\": %.6f,\n"
        "  \"reassociate_availability_pct\": %.6f,\n"
        "  \"outage_ratio\": %.3f,\n"
        "  \"cadence\": [",
        wallS, scale, horizon, predictive.handovers,
        predictive.meanIntervalS, 1e3 * predictive.meanLatencyS,
        predictive.outageS, predictive.availabilityPct,
        reassociate.handovers, reassociate.meanIntervalS,
        1e3 * reassociate.meanLatencyS, reassociate.outageS,
        reassociate.availabilityPct, outageRatio);
    for (std::size_t i = 0; i < cadence.size(); ++i) {
      std::fprintf(f,
                   "%s\n    {\"sats\": %d, \"handovers\": %d, "
                   "\"interval_s\": %.6f}",
                   i ? "," : "", cadence[i].sats, cadence[i].handovers,
                   cadence[i].intervalS);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("\n# json: %s\n", jsonPath);
  }
  return 0;
}
