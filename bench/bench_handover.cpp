// Anchor C / ablation: handover cadence and the predictive-vs-reassociate
// comparison (§2.2 "Satellite Handovers").
//
// Expectation: LEO handovers are frequent (Starlink: every ~15 s with
// thousands of satellites; an Iridium-like 66-sat constellation hands over
// on the order of minutes). OpenSpace's predictive scheme should cut
// per-handover outage by orders of magnitude versus re-running association
// + RADIUS authentication every time.
#include <cstdio>

#include <openspace/geo/units.hpp>
#include <openspace/handover/handover.hpp>
#include <openspace/orbit/walker.hpp>

int main() {
  using namespace openspace;

  EphemerisService eph;
  for (const auto& el : makeWalkerStar(iridiumConfig())) eph.publish(ProviderId{1}, el);

  const HandoverPlanner planner(eph, deg2rad(10.0));
  const Geodetic user = Geodetic::fromDegrees(40.4406, -79.9959);  // Pittsburgh
  const double horizon = 2.0 * 3600.0;  // two hours of service

  std::printf("# Handover study: Iridium-like 66-sat Walker Star, "
              "user at Pittsburgh, 10 deg mask, %.0f min window\n\n",
              horizon / 60.0);

  for (const HandoverMode mode :
       {HandoverMode::Predictive, HandoverMode::ReAssociate}) {
    const auto tl = simulateHandovers(planner, user, 0.0, horizon, mode);
    const char* name =
        (mode == HandoverMode::Predictive) ? "predictive" : "re-associate";
    double meanLatency = 0.0;
    for (const auto& ev : tl.events) meanLatency += ev.latencyS;
    if (!tl.events.empty()) {
      meanLatency /= static_cast<double>(tl.events.size());
    }
    std::printf("%-13s handovers=%-4d mean_interval=%6.1f s  "
                "mean_handover_latency=%8.3f ms  total_outage=%8.3f s  "
                "availability=%.4f%%\n",
                name, tl.handovers(), tl.meanIntervalS,
                toMilliseconds(meanLatency), tl.outageS,
                100.0 * (1.0 - tl.outageS / horizon));
  }

  // Handover cadence vs constellation density (the Starlink-15s anchor:
  // cadence shortens as fleets densify; rich fleets can afford to switch
  // to the best satellite often).
  std::printf("\n# cadence vs density (predictive):\n");
  std::printf("%-8s %-12s %-14s\n", "sats", "handovers", "interval_s");
  for (const int n : {11, 22, 44, 66, 132, 264}) {
    EphemerisService e2;
    WalkerConfig wc = iridiumConfig();
    wc.totalSatellites = n;
    wc.planes = (n % 11 == 0) ? n / 11 : 6;
    if (n % wc.planes != 0) wc.planes = 1;
    wc.phasing = wc.phasing % wc.planes;
    for (const auto& el : makeWalkerStar(wc)) e2.publish(ProviderId{1}, el);
    const HandoverPlanner p2(e2, deg2rad(10.0));
    const auto tl = simulateHandovers(p2, user, 0.0, horizon,
                                      HandoverMode::Predictive);
    std::printf("%-8d %-12d %-14.1f\n", n, tl.handovers(), tl.meanIntervalS);
  }
  return 0;
}
