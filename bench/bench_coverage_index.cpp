// Coverage-index benchmark: brute-force executable specs vs the spherical
// footprint index, on the library's two hottest query mixes.
//
// Scenarios:
//  * kernel66 / kernel1000 — the headline: the visibility query kernel of a
//    fig2c-style Monte-Carlo sweep, isolated from the RNG. The same
//    pre-drawn unit-sphere sample array is pushed through the brute
//    orbit-layer FootprintIndex::anyCovers (early-exit scan over every
//    footprint) and through FootprintIndex2::anyCovers (cell-grid index
//    with whole-cell cover certificates) at each snapshot of the time
//    grid, folding every boolean into a checksum. End-to-end MC timing is
//    RNG-bound (~60 ns/sample just to draw the direction), so this is the
//    apples-to-apples number for the index itself.
//  * mc66 / mc1000 — the same sweeps end to end (RNG included):
//    openspace::legacy::monteCarloCoverage (every sample tested against
//    every footprint) vs the indexed openspace::monteCarloCoverage,
//    single-core, plus the indexed path at the ambient thread count.
//  * assoc66 / assoc1000 — million-user association: per-user brute
//    closest-visible scans vs the batched associateUsers() fan-out,
//    single-core and parallel.
//
// Hard gates (nonzero exit so CI fails loudly rather than recording
// garbage):
//  * indexed == brute checksums, bit for bit, in every scenario (at 1000
//    satellites the association brute runs on a user subsample);
//  * serial == parallel checksums for every parallel path.
//
// Besides the human-readable table the bench writes a machine-readable
// JSON record to BENCH_coverage_index.json (or argv[1]). argv[2] is an
// optional workload scale factor (e.g. 0.02 for the TSan smoke lane).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include <openspace/auth/association.hpp>
#include <openspace/concurrency/parallel.hpp>
#include <openspace/coverage/coverage.hpp>
#include <openspace/coverage/footprint_index.hpp>
#include <openspace/coverage/legacy.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/walker.hpp>

namespace {

using namespace openspace;

constexpr int kPasses = 3;  // best-of to shrug off scheduler noise

double nowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v;
  h *= 0x100000001B3ull;
  return h;
}

std::uint64_t bitsOf(double v) noexcept {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

struct Timed {
  double bestPassS = 0.0;
  std::uint64_t checksum = 0;
};

/// Time `pass` (returning a checksum) `passes` times; keep the fastest wall
/// time and require a stable checksum.
template <typename Pass>
Timed timeIt(Pass&& pass, int passes = kPasses) {
  Timed r;
  for (int p = 0; p < passes; ++p) {
    const double t0 = nowS();
    const std::uint64_t sum = pass();
    const double dt = nowS() - t0;
    if (p == 0 || dt < r.bestPassS) r.bestPassS = dt;
    if (p == 0) {
      r.checksum = sum;
    } else if (sum != r.checksum) {
      std::fprintf(stderr, "non-deterministic pass checksum\n");
      std::exit(1);
    }
  }
  return r;
}

/// One Monte-Carlo coverage sweep over a time grid, folding every
/// coverage-fraction's bits. `estimator` is either the legacy spec or the
/// indexed estimator — identical signature, identical (gated) bits.
template <typename Estimator>
std::uint64_t mcSweep(const std::vector<OrbitalElements>& sats, int steps,
                      int samples, Estimator&& estimator) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  Rng rng(2024);
  for (int s = 0; s < steps; ++s) {
    const auto est =
        estimator(sats, s * 100.0, deg2rad(10.0), samples, rng);
    h = fnv1a(h, bitsOf(est.coverageFraction));
  }
  return h;
}

/// Push every pre-drawn sample through `index.anyCovers`, folding the
/// booleans 64 at a time so the checksum costs a fraction of a nanosecond
/// per query on both sides of the comparison.
template <typename Index>
std::uint64_t kernelPass(const Index& index, const std::vector<Vec3>& samples) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  std::uint64_t word = 0;
  std::size_t n = 0;
  for (const Vec3& v : samples) {
    word = (word << 1) | static_cast<std::uint64_t>(index.anyCovers(v));
    if (++n % 64 == 0) {
      h = fnv1a(h, word);
      word = 0;
    }
  }
  return fnv1a(h, word);
}

struct KernelTimings {
  Timed brute;
  Timed indexed;
  double indexBuildS = 0.0;  ///< one-time FootprintIndex2 builds, all steps
};

/// The pre-drawn-samples query kernel over a fig2c-style time grid: both
/// index flavors are built once per snapshot (outside the timed region —
/// the build cost is reported separately and amortized in production by
/// FootprintIndex2::compiled's LRU), then the identical sample array is
/// queried against each snapshot's footprints.
KernelTimings kernelSweep(const std::vector<OrbitalElements>& fleet, int steps,
                          const std::vector<Vec3>& samples, double maskRad) {
  std::vector<std::shared_ptr<const ConstellationSnapshot>> snaps;
  snaps.reserve(static_cast<std::size_t>(steps));
  for (int s = 0; s < steps; ++s) {
    snaps.push_back(SnapshotCache::global().at(fleet, s * 100.0));
  }
  std::vector<FootprintIndex> brute;
  brute.reserve(snaps.size());
  for (const auto& snap : snaps) brute.emplace_back(*snap, maskRad);

  KernelTimings kt;
  std::vector<FootprintIndex2> indexed;
  indexed.reserve(snaps.size());
  const double buildT0 = nowS();
  for (const auto& snap : snaps) indexed.emplace_back(snap, maskRad);
  kt.indexBuildS = nowS() - buildT0;

  kt.brute = timeIt([&] {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const auto& index : brute) h = fnv1a(h, kernelPass(index, samples));
    return h;
  });
  kt.indexed = timeIt([&] {
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const auto& index : indexed) h = fnv1a(h, kernelPass(index, samples));
    return h;
  });
  return kt;
}

std::uint64_t foldAssociations(const std::vector<UserAssociation>& out,
                               std::size_t limit) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t u = 0; u < std::min(out.size(), limit); ++u) {
    h = fnv1a(h, out[u].covered ? 1u : 0u);
    h = fnv1a(h, out[u].covered ? out[u].satelliteIndex : 0u);
    h = fnv1a(h, out[u].covered ? bitsOf(out[u].slantRangeM) : 0u);
  }
  return h;
}

/// The per-user brute association (ConstellationSnapshot::closestVisible
/// scans the whole fleet) — the spec associateUsers is gated against.
std::vector<UserAssociation> bruteAssociate(
    const std::vector<OrbitalElements>& fleet, double tSeconds,
    const std::vector<Geodetic>& users, double minElevationRad,
    std::size_t limit) {
  std::vector<UserAssociation> out(std::min(users.size(), limit));
  const auto snap = SnapshotCache::global().at(fleet, tSeconds);
  for (std::size_t u = 0; u < out.size(); ++u) {
    const Vec3 userEcef = geodeticToEcef(users[u]);
    const auto best = snap->closestVisible(userEcef, minElevationRad);
    if (!best) continue;
    out[u].covered = true;
    out[u].satelliteIndex = static_cast<std::uint32_t>(*best);
    out[u].slantRangeM = userEcef.distanceTo(snap->ecef(*best));
  }
  return out;
}

int scaled(double base, double scale) {
  return std::max(1, static_cast<int>(base * scale));
}

}  // namespace

int main(int argc, char** argv) {
  const char* jsonPath = argc > 1 ? argv[1] : "BENCH_coverage_index.json";
  const double scale =
      argc > 2 ? std::clamp(std::atof(argv[2]), 1e-3, 10.0) : 1.0;
  const double wallStartS = nowS();
  const int poolThreads = parallelThreadCount();

  const auto fleet66 = makeWalkerStar(iridiumConfig());
  Rng shellRng(7);
  const auto fleet1000 = makeRandomConstellation(1000, km(600.0), shellRng);

  const int mcSteps = 16;
  const int mc66Samples = scaled(20'000, scale);
  const int mc1000Samples = scaled(20'000, scale);
  const int kernelSamples = scaled(250'000, scale);
  const std::size_t assocUsers = static_cast<std::size_t>(scaled(1e6, scale));
  const std::size_t bruteSubsample =
      static_cast<std::size_t>(scaled(50'000, scale));

  Rng userRng(11);
  std::vector<Geodetic> users;
  users.reserve(assocUsers);
  for (std::size_t i = 0; i < assocUsers; ++i) {
    users.push_back(userRng.surfacePoint());
  }
  const double maskRad = deg2rad(10.0);
  const double assocT = 300.0;

  const auto legacyMc = [](const std::vector<OrbitalElements>& s, double t,
                           double mask, int n, Rng& rng) {
    return legacy::monteCarloCoverage(s, t, mask, n, rng);
  };
  const auto indexedMc = [](const std::vector<OrbitalElements>& s, double t,
                            double mask, int n, Rng& rng) {
    return monteCarloCoverage(s, t, mask, n, rng);
  };

  // --- Pre-drawn-samples query kernel (the headline speedup) -------------
  setParallelThreadCount(1);
  std::vector<Vec3> kernelDirs;
  kernelDirs.reserve(static_cast<std::size_t>(kernelSamples));
  {
    Rng kernelRng(2024);
    for (int i = 0; i < kernelSamples; ++i) {
      kernelDirs.push_back(kernelRng.unitSphere());
    }
  }
  const KernelTimings k66 =
      kernelSweep(fleet66, mcSteps, kernelDirs, maskRad);
  const KernelTimings k1000 = kernelSweep(fleet1000, 4, kernelDirs, maskRad);

  // --- Monte-Carlo sweeps end to end, single-core ------------------------
  const Timed mc66Brute =
      timeIt([&] { return mcSweep(fleet66, mcSteps, mc66Samples, legacyMc); });
  const Timed mc66Indexed =
      timeIt([&] { return mcSweep(fleet66, mcSteps, mc66Samples, indexedMc); });
  const Timed mc1000Brute = timeIt(
      [&] { return mcSweep(fleet1000, 4, mc1000Samples, legacyMc); });
  const Timed mc1000Indexed = timeIt(
      [&] { return mcSweep(fleet1000, 4, mc1000Samples, indexedMc); });

  // --- Association, single-core ------------------------------------------
  const Timed assoc66Brute = timeIt(
      [&] {
        return foldAssociations(
            bruteAssociate(fleet66, assocT, users, maskRad, users.size()),
            users.size());
      },
      2);
  const Timed assoc66Serial = timeIt(
      [&] {
        return foldAssociations(
            associateUsers(fleet66, assocT, users, maskRad), users.size());
      },
      2);
  const Timed assoc1000BruteSub = timeIt(
      [&] {
        return foldAssociations(
            bruteAssociate(fleet1000, assocT, users, maskRad, bruteSubsample),
            bruteSubsample);
      },
      2);
  const Timed assoc1000Serial = timeIt(
      [&] {
        return foldAssociations(
            associateUsers(fleet1000, assocT, users, maskRad), users.size());
      },
      2);
  const std::uint64_t assoc1000SerialSub = foldAssociations(
      associateUsers(fleet1000, assocT, users, maskRad), bruteSubsample);

  // --- Parallel paths (ambient thread count, floor of 4) -----------------
  setParallelThreadCount(std::max(poolThreads, 4));
  const int parThreads = parallelThreadCount();
  const Timed mc66Par =
      timeIt([&] { return mcSweep(fleet66, mcSteps, mc66Samples, indexedMc); });
  const Timed mc1000Par = timeIt(
      [&] { return mcSweep(fleet1000, 4, mc1000Samples, indexedMc); });
  const Timed assoc66Par = timeIt(
      [&] {
        return foldAssociations(
            associateUsers(fleet66, assocT, users, maskRad), users.size());
      },
      2);
  const Timed assoc1000Par = timeIt(
      [&] {
        return foldAssociations(
            associateUsers(fleet1000, assocT, users, maskRad), users.size());
      },
      2);
  setParallelThreadCount(poolThreads);

  // --- Gates ---------------------------------------------------------------
  const bool kernel66Match = k66.indexed.checksum == k66.brute.checksum;
  const bool kernel1000Match = k1000.indexed.checksum == k1000.brute.checksum;
  const bool mc66Match = mc66Indexed.checksum == mc66Brute.checksum;
  const bool mc1000Match = mc1000Indexed.checksum == mc1000Brute.checksum;
  const bool mc66ThreadInvariant = mc66Par.checksum == mc66Indexed.checksum;
  const bool mc1000ThreadInvariant =
      mc1000Par.checksum == mc1000Indexed.checksum;
  const bool assoc66Match = assoc66Serial.checksum == assoc66Brute.checksum;
  const bool assoc1000Match = assoc1000SerialSub == assoc1000BruteSub.checksum;
  const bool assoc66ThreadInvariant =
      assoc66Par.checksum == assoc66Serial.checksum;
  const bool assoc1000ThreadInvariant =
      assoc1000Par.checksum == assoc1000Serial.checksum;
  const bool allMatch = kernel66Match && kernel1000Match && mc66Match &&
                        mc1000Match && mc66ThreadInvariant &&
                        mc1000ThreadInvariant && assoc66Match &&
                        assoc1000Match && assoc66ThreadInvariant &&
                        assoc1000ThreadInvariant;

  const auto speedup = [](const Timed& brute, const Timed& fast) {
    return fast.bestPassS > 0.0 ? brute.bestPassS / fast.bestPassS : 0.0;
  };
  const double spKernel66 = speedup(k66.brute, k66.indexed);
  const double spKernel1000 = speedup(k1000.brute, k1000.indexed);
  const double spMc66 = speedup(mc66Brute, mc66Indexed);
  const double spMc1000 = speedup(mc1000Brute, mc1000Indexed);
  const double spAssoc66 = speedup(assoc66Brute, assoc66Serial);
  // The 1000-satellite brute ran on a subsample: scale its time up to the
  // full user count for the reported ratio.
  const double assoc1000BruteFullS =
      assoc1000BruteSub.bestPassS * static_cast<double>(users.size()) /
      static_cast<double>(bruteSubsample);
  const double spAssoc1000 =
      assoc1000Serial.bestPassS > 0.0
          ? assoc1000BruteFullS / assoc1000Serial.bestPassS
          : 0.0;

  std::printf("# Coverage index: brute spec vs spherical footprint index "
              "(scale=%.3f, best of %d passes)\n\n",
              scale, kPasses);
  std::printf("%-12s %-10s %-12s %-12s %-12s %-10s %-10s\n", "scenario",
              "sats", "work", "brute_s", "indexed_s", "speedup", "par_s");
  std::printf("%-12s %-10zu %-12d %-12.3f %-12.3f %-10.2f %-10s\n", "kernel",
              fleet66.size(), mcSteps * kernelSamples, k66.brute.bestPassS,
              k66.indexed.bestPassS, spKernel66, "-");
  std::printf("%-12s %-10zu %-12d %-12.3f %-12.3f %-10.2f %-10s\n", "kernel",
              fleet1000.size(), 4 * kernelSamples, k1000.brute.bestPassS,
              k1000.indexed.bestPassS, spKernel1000, "-");
  std::printf("%-12s %-10zu %-12d %-12.3f %-12.3f %-10.2f %-10.3f\n", "mc",
              fleet66.size(), mcSteps * mc66Samples, mc66Brute.bestPassS,
              mc66Indexed.bestPassS, spMc66, mc66Par.bestPassS);
  std::printf("%-12s %-10zu %-12d %-12.3f %-12.3f %-10.2f %-10.3f\n", "mc",
              fleet1000.size(), 4 * mc1000Samples, mc1000Brute.bestPassS,
              mc1000Indexed.bestPassS, spMc1000, mc1000Par.bestPassS);
  std::printf("%-12s %-10zu %-12zu %-12.3f %-12.3f %-10.2f %-10.3f\n",
              "associate", fleet66.size(), users.size(),
              assoc66Brute.bestPassS, assoc66Serial.bestPassS, spAssoc66,
              assoc66Par.bestPassS);
  std::printf("%-12s %-10zu %-12zu %-12.3f %-12.3f %-10.2f %-10.3f\n",
              "associate", fleet1000.size(), users.size(),
              assoc1000BruteFullS, assoc1000Serial.bestPassS, spAssoc1000,
              assoc1000Par.bestPassS);
  std::printf("\n# kernel rows query identical pre-drawn samples (RNG "
              "excluded); index builds: %.1f ms @66, %.1f ms @1000, "
              "amortized by the compiled() LRU in production\n",
              k66.indexBuildS * 1e3, k1000.indexBuildS * 1e3);
  std::printf("# associate@1000 brute timed on a %zu-user subsample, "
              "scaled to %zu users\n",
              bruteSubsample, users.size());
  std::printf("# gates: kernel66 %s  kernel1000 %s  mc66 %s  mc1000 %s  "
              "assoc66 %s  assoc1000 %s  serial==parallel %s\n",
              kernel66Match ? "MATCH" : "MISMATCH",
              kernel1000Match ? "MATCH" : "MISMATCH",
              mc66Match ? "MATCH" : "MISMATCH",
              mc1000Match ? "MATCH" : "MISMATCH",
              assoc66Match ? "MATCH" : "MISMATCH",
              assoc1000Match ? "MATCH" : "MISMATCH",
              (mc66ThreadInvariant && mc1000ThreadInvariant &&
               assoc66ThreadInvariant && assoc1000ThreadInvariant)
                  ? "MATCH"
                  : "MISMATCH");

  const double wallS = nowS() - wallStartS;
  if (std::FILE* f = std::fopen(jsonPath, "w")) {
    std::fprintf(
        f,
        "{\n  \"bench\": \"coverage_index\",\n"
        "  \"wall_seconds\": %.6f,\n"
        "  \"threads\": %d,\n"
        "  \"scale\": %.4f,\n"
        "  \"mc_steps\": %d,\n"
        "  \"mc66_samples\": %d,\n"
        "  \"kernel_samples\": %d,\n"
        "  \"assoc_users\": %zu,\n"
        "  \"kernel66_brute_s\": %.6f,\n"
        "  \"kernel66_indexed_s\": %.6f,\n"
        "  \"kernel66_index_build_s\": %.6f,\n"
        "  \"kernel1000_brute_s\": %.6f,\n"
        "  \"kernel1000_indexed_s\": %.6f,\n"
        "  \"kernel1000_index_build_s\": %.6f,\n"
        "  \"mc66_brute_s\": %.6f,\n"
        "  \"mc66_indexed_s\": %.6f,\n"
        "  \"mc66_parallel_s\": %.6f,\n"
        "  \"mc1000_brute_s\": %.6f,\n"
        "  \"mc1000_indexed_s\": %.6f,\n"
        "  \"mc1000_parallel_s\": %.6f,\n"
        "  \"assoc66_brute_s\": %.6f,\n"
        "  \"assoc66_indexed_s\": %.6f,\n"
        "  \"assoc66_parallel_s\": %.6f,\n"
        "  \"assoc1000_brute_full_s\": %.6f,\n"
        "  \"assoc1000_indexed_s\": %.6f,\n"
        "  \"assoc1000_parallel_s\": %.6f,\n"
        "  \"speedup_kernel66\": %.3f,\n"
        "  \"speedup_kernel1000\": %.3f,\n"
        "  \"speedup_mc66\": %.3f,\n"
        "  \"speedup_mc1000\": %.3f,\n"
        "  \"speedup_assoc66\": %.3f,\n"
        "  \"speedup_assoc1000\": %.3f,\n"
        "  \"kernel66_checksum\": \"%016llx\",\n"
        "  \"mc66_checksum\": \"%016llx\",\n"
        "  \"assoc66_checksum\": \"%016llx\",\n"
        "  \"checksums_match\": %s\n}\n",
        wallS, parThreads, scale, mcSteps, mc66Samples, kernelSamples,
        users.size(), k66.brute.bestPassS, k66.indexed.bestPassS,
        k66.indexBuildS, k1000.brute.bestPassS, k1000.indexed.bestPassS,
        k1000.indexBuildS,
        mc66Brute.bestPassS, mc66Indexed.bestPassS, mc66Par.bestPassS,
        mc1000Brute.bestPassS, mc1000Indexed.bestPassS, mc1000Par.bestPassS,
        assoc66Brute.bestPassS, assoc66Serial.bestPassS, assoc66Par.bestPassS,
        assoc1000BruteFullS, assoc1000Serial.bestPassS, assoc1000Par.bestPassS,
        spKernel66, spKernel1000, spMc66, spMc1000, spAssoc66, spAssoc1000,
        static_cast<unsigned long long>(k66.indexed.checksum),
        static_cast<unsigned long long>(mc66Indexed.checksum),
        static_cast<unsigned long long>(assoc66Serial.checksum),
        allMatch ? "true" : "false");
    std::fclose(f);
    std::printf("# json: %s\n", jsonPath);
  }
  return allMatch ? 0 : 1;
}
