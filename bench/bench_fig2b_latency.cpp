// Figure 2(b) reproduction: propagation latency vs. number of satellites.
//
// Paper setup (§4): fixed user and ground station, randomly distributed
// satellite orbits; latency estimated from the length of the shortest
// inter-satellite path between the pickup satellite and the relay
// satellite. Expected shape: latency falls sharply with the first ~25
// satellites, then plateaus around ~30 ms; ~4 satellites is the minimum
// for the user/station to be in range of anything at all.
#include <cstdio>

#include <openspace/geo/units.hpp>
#include <openspace/sim/fig2.hpp>

int main() {
  using namespace openspace;
  Fig2Config cfg;  // Pittsburgh user, Paris gateway, 780 km shells
  const int trials = 200;

  std::vector<int> counts;
  for (int n = 1; n <= 30; ++n) counts.push_back(n);
  for (int n = 35; n <= 100; n += 5) counts.push_back(n);

  const auto sweep = fig2LatencySweep(counts, trials, cfg, /*seed=*/2024);

  std::printf("# Figure 2(b): propagation latency vs constellation size\n");
  std::printf(
      "# user=Pittsburgh  station=Paris  alt=%.0f km  mask=%.0f deg  trials=%d\n",
      cfg.altitudeM / 1000.0, rad2deg(cfg.minElevationRad), trials);
  std::printf("%-6s %-13s %-14s %-14s %-10s\n", "sats", "connectivity",
              "latency_ms", "end2end_ms", "isl_hops");
  for (const auto& pt : sweep) {
    if (pt.connectedTrials == 0) {
      std::printf("%-6d %-13.3f %-14s %-14s %-10s\n", pt.satellites,
                  pt.connectivity, "-", "-", "-");
    } else {
      std::printf("%-6d %-13.3f %-14.2f %-14.2f %-10.2f\n", pt.satellites,
                  pt.connectivity, toMilliseconds(pt.meanLatencyS),
                  toMilliseconds(pt.meanEndToEndLatencyS), pt.meanIslHops);
    }
  }

  // Paper anchor checks (shape, not absolute): minimum ~4 sats for any
  // connectivity; plateau around 30 ms beyond ~25 satellites.
  double plateau = 0.0;
  int plateauPoints = 0;
  for (const auto& pt : sweep) {
    if (pt.satellites >= 25 && pt.connectedTrials > 0) {
      plateau += toMilliseconds(pt.meanLatencyS);
      ++plateauPoints;
    }
  }
  if (plateauPoints > 0) {
    std::printf("\n# plateau (N>=25) mean latency: %.2f ms (paper: ~30 ms)\n",
                plateau / plateauPoints);
  }
  return 0;
}
