// Figure 2(b) reproduction: propagation latency vs. number of satellites.
//
// Paper setup (§4): fixed user and ground station, randomly distributed
// satellite orbits; latency estimated from the length of the shortest
// inter-satellite path between the pickup satellite and the relay
// satellite. Expected shape: latency falls sharply with the first ~25
// satellites, then plateaus around ~30 ms; ~4 satellites is the minimum
// for the user/station to be in range of anything at all.
//
// Besides the human-readable table, the bench writes a machine-readable
// JSON record (wall time + every sweep point) to BENCH_fig2b_latency.json
// (or argv[1]) so the performance trajectory can be tracked across PRs.
#include <chrono>
#include <cstdio>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/sim/fig2.hpp>

int main(int argc, char** argv) {
  using namespace openspace;
  Fig2Config cfg;  // Pittsburgh user, Paris gateway, 780 km shells
  const int trials = 200;

  std::vector<int> counts;
  for (int n = 1; n <= 30; ++n) counts.push_back(n);
  for (int n = 35; n <= 100; n += 5) counts.push_back(n);

  const auto start = std::chrono::steady_clock::now();
  const auto sweep = fig2LatencySweep(counts, trials, cfg, /*seed=*/2024);
  const double wallS =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf("# Figure 2(b): propagation latency vs constellation size\n");
  std::printf(
      "# user=Pittsburgh  station=Paris  alt=%.0f km  mask=%.0f deg  trials=%d\n",
      cfg.altitudeM / 1000.0, rad2deg(cfg.minElevationRad), trials);
  std::printf("%-6s %-13s %-14s %-14s %-10s\n", "sats", "connectivity",
              "latency_ms", "end2end_ms", "isl_hops");
  for (const auto& pt : sweep) {
    if (pt.connectedTrials == 0) {
      std::printf("%-6d %-13.3f %-14s %-14s %-10s\n", pt.satellites,
                  pt.connectivity, "-", "-", "-");
    } else {
      std::printf("%-6d %-13.3f %-14.2f %-14.2f %-10.2f\n", pt.satellites,
                  pt.connectivity, toMilliseconds(pt.meanLatencyS),
                  toMilliseconds(pt.meanEndToEndLatencyS), pt.meanIslHops);
    }
  }

  // Paper anchor checks (shape, not absolute): minimum ~4 sats for any
  // connectivity; plateau around 30 ms beyond ~25 satellites.
  double plateau = 0.0;
  int plateauPoints = 0;
  for (const auto& pt : sweep) {
    if (pt.satellites >= 25 && pt.connectedTrials > 0) {
      plateau += toMilliseconds(pt.meanLatencyS);
      ++plateauPoints;
    }
  }
  if (plateauPoints > 0) {
    std::printf("\n# plateau (N>=25) mean latency: %.2f ms (paper: ~30 ms)\n",
                plateau / plateauPoints);
  }
  std::printf("# wall time: %.3f s (threads=%d)\n", wallS,
              parallelThreadCount());

  const char* jsonPath = argc > 1 ? argv[1] : "BENCH_fig2b_latency.json";
  if (std::FILE* f = std::fopen(jsonPath, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"fig2b_latency\",\n  \"wall_seconds\": %.6f,"
                 "\n  \"threads\": %d,\n  \"trials\": %d,\n  \"points\": [\n",
                 wallS, parallelThreadCount(), trials);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& pt = sweep[i];
      std::fprintf(f,
                   "    {\"satellites\": %d, \"connectivity\": %.6f, "
                   "\"mean_latency_s\": %.9f, \"mean_end_to_end_latency_s\": "
                   "%.9f, \"mean_isl_hops\": %.4f}%s\n",
                   pt.satellites, pt.connectivity, pt.meanLatencyS,
                   pt.meanEndToEndLatencyS, pt.meanIslHops,
                   i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# json: %s\n", jsonPath);
  }
  return 0;
}
