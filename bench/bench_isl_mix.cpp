// Ablation L: RF-only vs mixed RF+laser fleets (§2.1).
//
// The paper's interoperability floor is RF; laser terminals are an optional
// upgrade with much higher throughput at a $500k/15 kg premium. The sweep
// equips a growing fraction of an Iridium-like fleet with laser terminals
// and reports: ISL capacity distribution, bottleneck bandwidth of a
// reference trans-network path, and fleet cost.
#include <cstdio>

#include <openspace/econ/capex.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/dijkstra.hpp>
#include <openspace/topology/builder.hpp>

int main() {
  using namespace openspace;

  const WalkerConfig wc = iridiumConfig();

  std::printf("# ISL technology mix sweep (66-sat Walker Star)\n");
  std::printf("%-12s %-10s %-10s %-14s %-16s %-14s\n", "laser_frac",
              "rf_isls", "laser_isls", "mean_cap_mbps",
              "path_bneck_mbps", "fleet_cost_$M");

  for (const double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EphemerisService eph;
    for (const auto& el : makeWalkerStar(wc)) eph.publish(ProviderId{1}, el);
    TopologyBuilder topo(eph);

    const auto sats = eph.satellites();
    const auto laserCount =
        static_cast<std::size_t>(frac * static_cast<double>(sats.size()) + 0.5);
    for (std::size_t i = 0; i < sats.size(); ++i) {
      LinkCapabilities caps;
      caps.islBands = {Band::S, Band::Uhf};
      caps.hasLaserTerminal = (i % sats.size()) < laserCount;
      topo.setCapabilities(sats[i], caps);
    }
    const NodeId userNode = topo.addUser(
        {"sydney-user", Geodetic::fromDegrees(-33.87, 151.21), ProviderId{1}});
    const NodeId gwNode = topo.nodeOf(topo.addGroundStation(
        {"frankfurt-gw", Geodetic::fromDegrees(50.11, 8.68), ProviderId{2}}));

    SnapshotOptions opt;
    opt.wiring = IslWiring::PlusGrid;
    opt.planes = wc.planes;
    opt.minElevationRad = deg2rad(10.0);
    const NetworkGraph g = topo.snapshot(0.0, opt);

    int rfCount = 0, laserLinkCount = 0;
    double capSum = 0.0;
    int islCount = 0;
    for (const LinkId lid : g.links()) {
      const Link& l = g.link(lid);
      if (l.type == LinkType::IslRf) ++rfCount;
      if (l.type == LinkType::IslLaser) ++laserLinkCount;
      if (l.type == LinkType::IslRf || l.type == LinkType::IslLaser) {
        capSum += l.capacityBps;
        ++islCount;
      }
    }

    const Route path = shortestPath(g, userNode, gwNode, latencyCost());
    const double bneck = path.valid() ? path.bottleneckBps / 1e6 : 0.0;

    // Fleet cost: laser satellites carry the premium model.
    const double cost =
        static_cast<double>(laserCount) * laserEquippedSatellite().unitCostUsd() +
        static_cast<double>(sats.size() - laserCount) *
            rfOnlySatellite().unitCostUsd();

    std::printf("%-12.2f %-10d %-10d %-14.1f %-16.1f %-14.1f\n", frac, rfCount,
                laserLinkCount, islCount ? capSum / islCount / 1e6 : 0.0, bneck,
                cost / 1e6);
  }

  std::printf("\n# Expected shape: laser fraction raises mean ISL capacity and\n"
              "# eventually the end-to-end bottleneck (once a full laser path\n"
              "# exists), at a steeply rising fleet cost — the RF-minimum\n"
              "# standard keeps the entry barrier low.\n");
  return 0;
}
