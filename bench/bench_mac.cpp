// Ablation M: MAC scheme comparison (§2.1).
//
// The paper notes CSMA/CA "allows for flexibility in synchronization
// between satellites, however is prone to higher overhead and corresponding
// larger latency due to Inter-Frame Spacing and backoff window
// requirements". This bench quantifies the claim: access delay, per-frame
// overhead and throughput for CSMA/CA vs. TDMA across contention levels.
#include <cstdio>

#include <openspace/geo/rng.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/mac/csma.hpp>
#include <openspace/mac/reservation.hpp>

int main() {
  using namespace openspace;
  const CsmaConfig csma;
  const TdmaConfig tdma;
  const double duration = 30.0;  // simulated seconds

  std::printf("# MAC comparison: saturated stations on one ISL channel\n");
  std::printf("# CSMA/CA: DIFS=%.0fus slot=%.0fus CWmin=%d CWmax=%d | "
              "TDMA: slot=%.1fms guard=%.0fus\n\n",
              csma.difsS * 1e6, csma.slotTimeS * 1e6, csma.cwMin, csma.cwMax,
              tdma.slotS * 1e3, tdma.guardS * 1e6);
  std::printf("%-7s %-10s %-13s %-13s %-13s %-12s %-10s\n", "nodes", "scheme",
              "delay_ms", "p95_ms", "overhead_ms", "throughput", "collisions");

  for (const int nodes : {1, 2, 4, 8, 16, 32}) {
    Rng rng(static_cast<std::uint64_t>(nodes) * 1000 + 7);
    const MacSimResult c = simulateCsmaCa(csma, nodes, duration, rng);
    std::printf("%-7d %-10s %-13.3f %-13.3f %-13.3f %-12.3f %-10.3f\n", nodes,
                "csma/ca", toMilliseconds(c.meanAccessDelayS),
                toMilliseconds(c.p95AccessDelayS),
                toMilliseconds(c.meanOverheadS), c.throughputFraction,
                c.collisionFraction);
    const MacSimResult t = simulateTdma(tdma, nodes, duration);
    std::printf("%-7d %-10s %-13.3f %-13.3f %-13.3f %-12.3f %-10.3f\n", nodes,
                "tdma", toMilliseconds(t.meanAccessDelayS),
                toMilliseconds(t.p95AccessDelayS),
                toMilliseconds(t.meanOverheadS), t.throughputFraction,
                t.collisionFraction);
    Rng rng2(static_cast<std::uint64_t>(nodes) * 2000 + 9);
    const MacSimResult res =
        simulateReservationMac(ReservationConfig{}, nodes, duration, rng2);
    std::printf("%-7d %-10s %-13.3f %-13.3f %-13.3f %-12.3f %-10.3f\n", nodes,
                "reserv.", toMilliseconds(res.meanAccessDelayS),
                toMilliseconds(res.p95AccessDelayS),
                toMilliseconds(res.meanOverheadS), res.throughputFraction,
                res.collisionFraction);
  }

  std::printf("\n# closed-form CSMA/CA per-frame floor (idle channel): %.3f ms\n",
              toMilliseconds(csmaPerFrameOverheadS(csma)));
  return 0;
}
