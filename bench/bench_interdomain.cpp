// §3 BGP-comparison study, executable: how do BGP-style valley-free
// policies fare on a physically meshed LEO topology, versus the OpenSpace
// open-mesh policy? Plus the link-state dissemination floor (how stale
// congestion state inherently is) across fleet sizes.
//
// Provider adjacency is derived from the physical constellation: providers
// are adjacent when at least one cross-provider ISL exists in the t=0
// snapshot — the real contact structure the control plane must live on.
#include <cstdio>
#include <set>

#include <openspace/geo/units.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/routing/linkstate.hpp>
#include <openspace/routing/pathvector.hpp>
#include <openspace/topology/builder.hpp>

int main() {
  using namespace openspace;

  std::printf("# Inter-domain policy study on physical LEO adjacency\n\n");
  std::printf("%-10s %-10s %-12s %-14s %-12s %-12s\n", "providers", "policy",
              "reachability", "mean_path", "rounds", "messages");

  for (const int k : {3, 6, 11}) {
    // 66 satellites interleaved across k providers.
    EphemerisService eph;
    const auto elements = makeWalkerStar(iridiumConfig());
    for (std::size_t i = 0; i < elements.size(); ++i) {
      eph.publish(static_cast<ProviderId>(1 + (i % static_cast<std::size_t>(k))),
                  elements[i]);
    }
    TopologyBuilder topo(eph);
    SnapshotOptions opt;
    opt.wiring = IslWiring::PlusGrid;
    opt.planes = 6;
    const NetworkGraph g = topo.snapshot(0.0, opt);

    // Provider adjacency from cross-provider ISLs.
    std::set<std::pair<ProviderId, ProviderId>> adjacency;
    for (const LinkId lid : g.links()) {
      const Link& l = g.link(lid);
      const ProviderId pa = g.node(l.a).provider;
      const ProviderId pb = g.node(l.b).provider;
      if (pa != pb) adjacency.insert({std::min(pa, pb), std::max(pa, pb)});
    }
    std::vector<ProviderId> providers;
    for (int p = 1; p <= k; ++p) providers.push_back(static_cast<ProviderId>(p));

    // Mesh policy (OpenSpace).
    std::vector<ProviderLink> meshLinks;
    for (const auto& [a, b] : adjacency) {
      meshLinks.push_back({a, b, Relationship::Mesh, Relationship::Mesh});
    }
    const auto meshRep = runPathVector(providers, meshLinks);
    std::printf("%-10d %-10s %-12.3f %-14.2f %-12d %-12d\n", k, "mesh",
                meshRep.reachability, meshRep.meanPathHops, meshRep.rounds,
                meshRep.messages);

    // Gao-Rexford: impose a hierarchy the physical mesh does not have —
    // provider 1 is "tier 1"; everyone else is its customer; all other
    // adjacencies become peering (a typical forced mapping).
    std::vector<ProviderLink> grLinks;
    for (const auto& [a, b] : adjacency) {
      ProviderLink l{a, b, Relationship::Peer, Relationship::Peer};
      if (a == ProviderId{1}) {
        l.aToB = Relationship::Customer;  // 1 sees b as customer
        l.bToA = Relationship::Provider;
      } else if (b == ProviderId{1}) {
        l.bToA = Relationship::Customer;
        l.aToB = Relationship::Provider;
      }
      grLinks.push_back(l);
    }
    const auto grRep = runPathVector(providers, grLinks);
    std::printf("%-10d %-10s %-12.3f %-14.2f %-12d %-12d\n", k, "gao-rex",
                grRep.reachability, grRep.meanPathHops, grRep.rounds,
                grRep.messages);
  }

  // Link-state dissemination floor vs fleet size.
  std::printf("\n# LSA flood convergence (state staleness floor):\n");
  std::printf("%-8s %-10s %-14s %-14s %-10s\n", "sats", "reached",
              "converge_ms", "mean_ms", "messages");
  for (const int n : {24, 66, 120, 240}) {
    EphemerisService eph;
    WalkerConfig wc = iridiumConfig();
    wc.totalSatellites = n;
    wc.planes = 6;
    wc.totalSatellites -= wc.totalSatellites % wc.planes;
    for (const auto& el : makeWalkerStar(wc)) eph.publish(ProviderId{1}, el);
    TopologyBuilder topo(eph);
    SnapshotOptions opt;
    opt.wiring = IslWiring::PlusGrid;
    opt.planes = 6;
    const NetworkGraph g = topo.snapshot(0.0, opt);
    const NodeId origin = g.nodesOfKind(NodeKind::Satellite).front();
    const FloodReport rep = simulateLsaFlood(g, origin);
    std::printf("%-8d %-10d %-14.1f %-14.1f %-10d\n", wc.totalSatellites,
                rep.nodesReached, toMilliseconds(rep.convergenceTimeS),
                toMilliseconds(rep.meanArrivalS), rep.messagesSent);
  }

  std::printf("\n# Reading: on the physically meshed adjacency the open-mesh\n"
              "# policy is fully reachable; forcing a BGP-style hierarchy\n"
              "# onto it loses reachability (valley-free filtering discards\n"
              "# real paths) — the executable form of section 3's 'customer/\n"
              "# provider is not translatable to a meshed system'. The LSA\n"
              "# floor (tens of ms) is the staleness any congestion-aware\n"
              "# routing must tolerate.\n");
  return 0;
}
