# Empty compiler generated dependencies file for bench_fig2a_constellation.
# This may be replaced when dependencies are built.
