file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a_constellation.dir/bench_fig2a_constellation.cpp.o"
  "CMakeFiles/bench_fig2a_constellation.dir/bench_fig2a_constellation.cpp.o.d"
  "bench_fig2a_constellation"
  "bench_fig2a_constellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_constellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
