file(REMOVE_RECURSE
  "CMakeFiles/bench_mac.dir/bench_mac.cpp.o"
  "CMakeFiles/bench_mac.dir/bench_mac.cpp.o.d"
  "bench_mac"
  "bench_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
