# Empty dependencies file for bench_mac.
# This may be replaced when dependencies are built.
