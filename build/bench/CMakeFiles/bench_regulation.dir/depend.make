# Empty dependencies file for bench_regulation.
# This may be replaced when dependencies are built.
