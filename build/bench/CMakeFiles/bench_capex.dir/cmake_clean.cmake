file(REMOVE_RECURSE
  "CMakeFiles/bench_capex.dir/bench_capex.cpp.o"
  "CMakeFiles/bench_capex.dir/bench_capex.cpp.o.d"
  "bench_capex"
  "bench_capex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_capex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
