# Empty compiler generated dependencies file for bench_capex.
# This may be replaced when dependencies are built.
