# Empty dependencies file for bench_interdomain.
# This may be replaced when dependencies are built.
