file(REMOVE_RECURSE
  "CMakeFiles/bench_interdomain.dir/bench_interdomain.cpp.o"
  "CMakeFiles/bench_interdomain.dir/bench_interdomain.cpp.o.d"
  "bench_interdomain"
  "bench_interdomain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interdomain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
