# Empty compiler generated dependencies file for bench_fig2c_coverage.
# This may be replaced when dependencies are built.
