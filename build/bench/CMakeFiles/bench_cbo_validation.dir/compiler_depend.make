# Empty compiler generated dependencies file for bench_cbo_validation.
# This may be replaced when dependencies are built.
