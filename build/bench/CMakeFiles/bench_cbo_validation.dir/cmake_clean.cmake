file(REMOVE_RECURSE
  "CMakeFiles/bench_cbo_validation.dir/bench_cbo_validation.cpp.o"
  "CMakeFiles/bench_cbo_validation.dir/bench_cbo_validation.cpp.o.d"
  "bench_cbo_validation"
  "bench_cbo_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cbo_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
