# Empty compiler generated dependencies file for bench_isl_mix.
# This may be replaced when dependencies are built.
