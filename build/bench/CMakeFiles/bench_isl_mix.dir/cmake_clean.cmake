file(REMOVE_RECURSE
  "CMakeFiles/bench_isl_mix.dir/bench_isl_mix.cpp.o"
  "CMakeFiles/bench_isl_mix.dir/bench_isl_mix.cpp.o.d"
  "bench_isl_mix"
  "bench_isl_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_isl_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
