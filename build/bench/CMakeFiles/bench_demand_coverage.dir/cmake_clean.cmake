file(REMOVE_RECURSE
  "CMakeFiles/bench_demand_coverage.dir/bench_demand_coverage.cpp.o"
  "CMakeFiles/bench_demand_coverage.dir/bench_demand_coverage.cpp.o.d"
  "bench_demand_coverage"
  "bench_demand_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_demand_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
