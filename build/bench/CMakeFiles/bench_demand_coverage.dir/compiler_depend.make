# Empty compiler generated dependencies file for bench_demand_coverage.
# This may be replaced when dependencies are built.
