file(REMOVE_RECURSE
  "CMakeFiles/bench_routing_ablation.dir/bench_routing_ablation.cpp.o"
  "CMakeFiles/bench_routing_ablation.dir/bench_routing_ablation.cpp.o.d"
  "bench_routing_ablation"
  "bench_routing_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
