# Empty compiler generated dependencies file for bench_routing_ablation.
# This may be replaced when dependencies are built.
