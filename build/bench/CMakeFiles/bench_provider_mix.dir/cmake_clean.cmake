file(REMOVE_RECURSE
  "CMakeFiles/bench_provider_mix.dir/bench_provider_mix.cpp.o"
  "CMakeFiles/bench_provider_mix.dir/bench_provider_mix.cpp.o.d"
  "bench_provider_mix"
  "bench_provider_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_provider_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
