# Empty dependencies file for bench_provider_mix.
# This may be replaced when dependencies are built.
