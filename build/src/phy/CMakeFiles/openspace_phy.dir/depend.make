# Empty dependencies file for openspace_phy.
# This may be replaced when dependencies are built.
