
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/bands.cpp" "src/phy/CMakeFiles/openspace_phy.dir/bands.cpp.o" "gcc" "src/phy/CMakeFiles/openspace_phy.dir/bands.cpp.o.d"
  "/root/repo/src/phy/linkbudget.cpp" "src/phy/CMakeFiles/openspace_phy.dir/linkbudget.cpp.o" "gcc" "src/phy/CMakeFiles/openspace_phy.dir/linkbudget.cpp.o.d"
  "/root/repo/src/phy/power.cpp" "src/phy/CMakeFiles/openspace_phy.dir/power.cpp.o" "gcc" "src/phy/CMakeFiles/openspace_phy.dir/power.cpp.o.d"
  "/root/repo/src/phy/terminal.cpp" "src/phy/CMakeFiles/openspace_phy.dir/terminal.cpp.o" "gcc" "src/phy/CMakeFiles/openspace_phy.dir/terminal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/openspace_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
