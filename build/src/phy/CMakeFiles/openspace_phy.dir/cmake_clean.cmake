file(REMOVE_RECURSE
  "CMakeFiles/openspace_phy.dir/bands.cpp.o"
  "CMakeFiles/openspace_phy.dir/bands.cpp.o.d"
  "CMakeFiles/openspace_phy.dir/linkbudget.cpp.o"
  "CMakeFiles/openspace_phy.dir/linkbudget.cpp.o.d"
  "CMakeFiles/openspace_phy.dir/power.cpp.o"
  "CMakeFiles/openspace_phy.dir/power.cpp.o.d"
  "CMakeFiles/openspace_phy.dir/terminal.cpp.o"
  "CMakeFiles/openspace_phy.dir/terminal.cpp.o.d"
  "libopenspace_phy.a"
  "libopenspace_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
