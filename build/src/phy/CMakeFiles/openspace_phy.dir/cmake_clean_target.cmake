file(REMOVE_RECURSE
  "libopenspace_phy.a"
)
