# Empty compiler generated dependencies file for openspace_routing.
# This may be replaced when dependencies are built.
