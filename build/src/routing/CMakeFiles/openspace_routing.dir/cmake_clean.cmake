file(REMOVE_RECURSE
  "CMakeFiles/openspace_routing.dir/dijkstra.cpp.o"
  "CMakeFiles/openspace_routing.dir/dijkstra.cpp.o.d"
  "CMakeFiles/openspace_routing.dir/linkstate.cpp.o"
  "CMakeFiles/openspace_routing.dir/linkstate.cpp.o.d"
  "CMakeFiles/openspace_routing.dir/ondemand.cpp.o"
  "CMakeFiles/openspace_routing.dir/ondemand.cpp.o.d"
  "CMakeFiles/openspace_routing.dir/pathvector.cpp.o"
  "CMakeFiles/openspace_routing.dir/pathvector.cpp.o.d"
  "CMakeFiles/openspace_routing.dir/proactive.cpp.o"
  "CMakeFiles/openspace_routing.dir/proactive.cpp.o.d"
  "CMakeFiles/openspace_routing.dir/route.cpp.o"
  "CMakeFiles/openspace_routing.dir/route.cpp.o.d"
  "CMakeFiles/openspace_routing.dir/temporal.cpp.o"
  "CMakeFiles/openspace_routing.dir/temporal.cpp.o.d"
  "libopenspace_routing.a"
  "libopenspace_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
