file(REMOVE_RECURSE
  "libopenspace_routing.a"
)
