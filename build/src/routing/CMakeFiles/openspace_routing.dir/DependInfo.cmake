
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/dijkstra.cpp" "src/routing/CMakeFiles/openspace_routing.dir/dijkstra.cpp.o" "gcc" "src/routing/CMakeFiles/openspace_routing.dir/dijkstra.cpp.o.d"
  "/root/repo/src/routing/linkstate.cpp" "src/routing/CMakeFiles/openspace_routing.dir/linkstate.cpp.o" "gcc" "src/routing/CMakeFiles/openspace_routing.dir/linkstate.cpp.o.d"
  "/root/repo/src/routing/ondemand.cpp" "src/routing/CMakeFiles/openspace_routing.dir/ondemand.cpp.o" "gcc" "src/routing/CMakeFiles/openspace_routing.dir/ondemand.cpp.o.d"
  "/root/repo/src/routing/pathvector.cpp" "src/routing/CMakeFiles/openspace_routing.dir/pathvector.cpp.o" "gcc" "src/routing/CMakeFiles/openspace_routing.dir/pathvector.cpp.o.d"
  "/root/repo/src/routing/proactive.cpp" "src/routing/CMakeFiles/openspace_routing.dir/proactive.cpp.o" "gcc" "src/routing/CMakeFiles/openspace_routing.dir/proactive.cpp.o.d"
  "/root/repo/src/routing/route.cpp" "src/routing/CMakeFiles/openspace_routing.dir/route.cpp.o" "gcc" "src/routing/CMakeFiles/openspace_routing.dir/route.cpp.o.d"
  "/root/repo/src/routing/temporal.cpp" "src/routing/CMakeFiles/openspace_routing.dir/temporal.cpp.o" "gcc" "src/routing/CMakeFiles/openspace_routing.dir/temporal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/openspace_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/openspace_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/openspace_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/openspace_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/openspace_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
