# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("geo")
subdirs("orbit")
subdirs("phy")
subdirs("mac")
subdirs("topology")
subdirs("isl")
subdirs("routing")
subdirs("net")
subdirs("auth")
subdirs("handover")
subdirs("coverage")
subdirs("econ")
subdirs("security")
subdirs("regulation")
subdirs("io")
subdirs("sim")
subdirs("core")
