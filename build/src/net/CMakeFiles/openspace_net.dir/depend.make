# Empty dependencies file for openspace_net.
# This may be replaced when dependencies are built.
