file(REMOVE_RECURSE
  "libopenspace_net.a"
)
