# Empty compiler generated dependencies file for openspace_net.
# This may be replaced when dependencies are built.
