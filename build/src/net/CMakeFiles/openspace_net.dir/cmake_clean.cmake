file(REMOVE_RECURSE
  "CMakeFiles/openspace_net.dir/event.cpp.o"
  "CMakeFiles/openspace_net.dir/event.cpp.o.d"
  "CMakeFiles/openspace_net.dir/flows.cpp.o"
  "CMakeFiles/openspace_net.dir/flows.cpp.o.d"
  "CMakeFiles/openspace_net.dir/forwarding.cpp.o"
  "CMakeFiles/openspace_net.dir/forwarding.cpp.o.d"
  "CMakeFiles/openspace_net.dir/metrics.cpp.o"
  "CMakeFiles/openspace_net.dir/metrics.cpp.o.d"
  "libopenspace_net.a"
  "libopenspace_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
