# Empty compiler generated dependencies file for openspace_geo.
# This may be replaced when dependencies are built.
