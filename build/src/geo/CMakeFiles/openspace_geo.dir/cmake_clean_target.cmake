file(REMOVE_RECURSE
  "libopenspace_geo.a"
)
