file(REMOVE_RECURSE
  "CMakeFiles/openspace_geo.dir/geodetic.cpp.o"
  "CMakeFiles/openspace_geo.dir/geodetic.cpp.o.d"
  "CMakeFiles/openspace_geo.dir/rng.cpp.o"
  "CMakeFiles/openspace_geo.dir/rng.cpp.o.d"
  "CMakeFiles/openspace_geo.dir/units.cpp.o"
  "CMakeFiles/openspace_geo.dir/units.cpp.o.d"
  "libopenspace_geo.a"
  "libopenspace_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
