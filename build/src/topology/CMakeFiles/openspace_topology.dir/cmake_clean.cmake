file(REMOVE_RECURSE
  "CMakeFiles/openspace_topology.dir/builder.cpp.o"
  "CMakeFiles/openspace_topology.dir/builder.cpp.o.d"
  "CMakeFiles/openspace_topology.dir/graph.cpp.o"
  "CMakeFiles/openspace_topology.dir/graph.cpp.o.d"
  "libopenspace_topology.a"
  "libopenspace_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
