# Empty dependencies file for openspace_topology.
# This may be replaced when dependencies are built.
