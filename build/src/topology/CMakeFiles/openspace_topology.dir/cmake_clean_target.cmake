file(REMOVE_RECURSE
  "libopenspace_topology.a"
)
