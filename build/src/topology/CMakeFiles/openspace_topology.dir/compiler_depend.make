# Empty compiler generated dependencies file for openspace_topology.
# This may be replaced when dependencies are built.
