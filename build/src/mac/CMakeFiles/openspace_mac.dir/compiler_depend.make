# Empty compiler generated dependencies file for openspace_mac.
# This may be replaced when dependencies are built.
