file(REMOVE_RECURSE
  "libopenspace_mac.a"
)
