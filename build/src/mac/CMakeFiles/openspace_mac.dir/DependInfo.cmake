
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/beacon.cpp" "src/mac/CMakeFiles/openspace_mac.dir/beacon.cpp.o" "gcc" "src/mac/CMakeFiles/openspace_mac.dir/beacon.cpp.o.d"
  "/root/repo/src/mac/csma.cpp" "src/mac/CMakeFiles/openspace_mac.dir/csma.cpp.o" "gcc" "src/mac/CMakeFiles/openspace_mac.dir/csma.cpp.o.d"
  "/root/repo/src/mac/ofdma.cpp" "src/mac/CMakeFiles/openspace_mac.dir/ofdma.cpp.o" "gcc" "src/mac/CMakeFiles/openspace_mac.dir/ofdma.cpp.o.d"
  "/root/repo/src/mac/reservation.cpp" "src/mac/CMakeFiles/openspace_mac.dir/reservation.cpp.o" "gcc" "src/mac/CMakeFiles/openspace_mac.dir/reservation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/openspace_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/openspace_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/openspace_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
