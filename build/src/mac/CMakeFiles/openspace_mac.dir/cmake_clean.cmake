file(REMOVE_RECURSE
  "CMakeFiles/openspace_mac.dir/beacon.cpp.o"
  "CMakeFiles/openspace_mac.dir/beacon.cpp.o.d"
  "CMakeFiles/openspace_mac.dir/csma.cpp.o"
  "CMakeFiles/openspace_mac.dir/csma.cpp.o.d"
  "CMakeFiles/openspace_mac.dir/ofdma.cpp.o"
  "CMakeFiles/openspace_mac.dir/ofdma.cpp.o.d"
  "CMakeFiles/openspace_mac.dir/reservation.cpp.o"
  "CMakeFiles/openspace_mac.dir/reservation.cpp.o.d"
  "libopenspace_mac.a"
  "libopenspace_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
