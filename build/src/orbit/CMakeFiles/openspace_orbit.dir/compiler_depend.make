# Empty compiler generated dependencies file for openspace_orbit.
# This may be replaced when dependencies are built.
