file(REMOVE_RECURSE
  "libopenspace_orbit.a"
)
