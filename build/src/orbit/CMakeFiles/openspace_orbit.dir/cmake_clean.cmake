file(REMOVE_RECURSE
  "CMakeFiles/openspace_orbit.dir/elements.cpp.o"
  "CMakeFiles/openspace_orbit.dir/elements.cpp.o.d"
  "CMakeFiles/openspace_orbit.dir/ephemeris.cpp.o"
  "CMakeFiles/openspace_orbit.dir/ephemeris.cpp.o.d"
  "CMakeFiles/openspace_orbit.dir/maneuver.cpp.o"
  "CMakeFiles/openspace_orbit.dir/maneuver.cpp.o.d"
  "CMakeFiles/openspace_orbit.dir/visibility.cpp.o"
  "CMakeFiles/openspace_orbit.dir/visibility.cpp.o.d"
  "CMakeFiles/openspace_orbit.dir/walker.cpp.o"
  "CMakeFiles/openspace_orbit.dir/walker.cpp.o.d"
  "libopenspace_orbit.a"
  "libopenspace_orbit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_orbit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
