
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orbit/elements.cpp" "src/orbit/CMakeFiles/openspace_orbit.dir/elements.cpp.o" "gcc" "src/orbit/CMakeFiles/openspace_orbit.dir/elements.cpp.o.d"
  "/root/repo/src/orbit/ephemeris.cpp" "src/orbit/CMakeFiles/openspace_orbit.dir/ephemeris.cpp.o" "gcc" "src/orbit/CMakeFiles/openspace_orbit.dir/ephemeris.cpp.o.d"
  "/root/repo/src/orbit/maneuver.cpp" "src/orbit/CMakeFiles/openspace_orbit.dir/maneuver.cpp.o" "gcc" "src/orbit/CMakeFiles/openspace_orbit.dir/maneuver.cpp.o.d"
  "/root/repo/src/orbit/visibility.cpp" "src/orbit/CMakeFiles/openspace_orbit.dir/visibility.cpp.o" "gcc" "src/orbit/CMakeFiles/openspace_orbit.dir/visibility.cpp.o.d"
  "/root/repo/src/orbit/walker.cpp" "src/orbit/CMakeFiles/openspace_orbit.dir/walker.cpp.o" "gcc" "src/orbit/CMakeFiles/openspace_orbit.dir/walker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/openspace_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
