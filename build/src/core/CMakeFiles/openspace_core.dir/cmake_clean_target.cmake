file(REMOVE_RECURSE
  "libopenspace_core.a"
)
