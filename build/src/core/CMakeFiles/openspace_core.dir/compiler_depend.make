# Empty compiler generated dependencies file for openspace_core.
# This may be replaced when dependencies are built.
