file(REMOVE_RECURSE
  "CMakeFiles/openspace_core.dir/network.cpp.o"
  "CMakeFiles/openspace_core.dir/network.cpp.o.d"
  "libopenspace_core.a"
  "libopenspace_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
