# Empty dependencies file for openspace_security.
# This may be replaced when dependencies are built.
