file(REMOVE_RECURSE
  "CMakeFiles/openspace_security.dir/crypto.cpp.o"
  "CMakeFiles/openspace_security.dir/crypto.cpp.o.d"
  "CMakeFiles/openspace_security.dir/reputation.cpp.o"
  "CMakeFiles/openspace_security.dir/reputation.cpp.o.d"
  "libopenspace_security.a"
  "libopenspace_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
