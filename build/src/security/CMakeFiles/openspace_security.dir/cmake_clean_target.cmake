file(REMOVE_RECURSE
  "libopenspace_security.a"
)
