file(REMOVE_RECURSE
  "CMakeFiles/openspace_handover.dir/handover.cpp.o"
  "CMakeFiles/openspace_handover.dir/handover.cpp.o.d"
  "libopenspace_handover.a"
  "libopenspace_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
