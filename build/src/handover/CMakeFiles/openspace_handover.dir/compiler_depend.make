# Empty compiler generated dependencies file for openspace_handover.
# This may be replaced when dependencies are built.
