file(REMOVE_RECURSE
  "libopenspace_handover.a"
)
