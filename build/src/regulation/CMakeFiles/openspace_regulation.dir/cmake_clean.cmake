file(REMOVE_RECURSE
  "CMakeFiles/openspace_regulation.dir/regime.cpp.o"
  "CMakeFiles/openspace_regulation.dir/regime.cpp.o.d"
  "libopenspace_regulation.a"
  "libopenspace_regulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_regulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
