file(REMOVE_RECURSE
  "libopenspace_regulation.a"
)
