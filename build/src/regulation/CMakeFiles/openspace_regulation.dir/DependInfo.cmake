
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regulation/regime.cpp" "src/regulation/CMakeFiles/openspace_regulation.dir/regime.cpp.o" "gcc" "src/regulation/CMakeFiles/openspace_regulation.dir/regime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/openspace_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/openspace_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/openspace_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/openspace_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/openspace_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/openspace_orbit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
