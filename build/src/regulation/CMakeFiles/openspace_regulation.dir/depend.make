# Empty dependencies file for openspace_regulation.
# This may be replaced when dependencies are built.
