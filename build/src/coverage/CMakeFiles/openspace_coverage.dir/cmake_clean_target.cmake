file(REMOVE_RECURSE
  "libopenspace_coverage.a"
)
