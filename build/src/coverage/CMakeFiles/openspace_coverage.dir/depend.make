# Empty dependencies file for openspace_coverage.
# This may be replaced when dependencies are built.
