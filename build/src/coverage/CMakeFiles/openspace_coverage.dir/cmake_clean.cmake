file(REMOVE_RECURSE
  "CMakeFiles/openspace_coverage.dir/coverage.cpp.o"
  "CMakeFiles/openspace_coverage.dir/coverage.cpp.o.d"
  "libopenspace_coverage.a"
  "libopenspace_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
