file(REMOVE_RECURSE
  "CMakeFiles/openspace_io.dir/ephemeris_io.cpp.o"
  "CMakeFiles/openspace_io.dir/ephemeris_io.cpp.o.d"
  "libopenspace_io.a"
  "libopenspace_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
