file(REMOVE_RECURSE
  "libopenspace_io.a"
)
