# Empty compiler generated dependencies file for openspace_io.
# This may be replaced when dependencies are built.
