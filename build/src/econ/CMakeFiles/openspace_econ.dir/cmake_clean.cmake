file(REMOVE_RECURSE
  "CMakeFiles/openspace_econ.dir/capex.cpp.o"
  "CMakeFiles/openspace_econ.dir/capex.cpp.o.d"
  "CMakeFiles/openspace_econ.dir/incentives.cpp.o"
  "CMakeFiles/openspace_econ.dir/incentives.cpp.o.d"
  "CMakeFiles/openspace_econ.dir/ledger.cpp.o"
  "CMakeFiles/openspace_econ.dir/ledger.cpp.o.d"
  "libopenspace_econ.a"
  "libopenspace_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
