# Empty dependencies file for openspace_econ.
# This may be replaced when dependencies are built.
