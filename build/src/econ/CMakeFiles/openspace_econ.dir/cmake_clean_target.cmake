file(REMOVE_RECURSE
  "libopenspace_econ.a"
)
