# Empty dependencies file for openspace_sim.
# This may be replaced when dependencies are built.
