file(REMOVE_RECURSE
  "CMakeFiles/openspace_sim.dir/fig2.cpp.o"
  "CMakeFiles/openspace_sim.dir/fig2.cpp.o.d"
  "CMakeFiles/openspace_sim.dir/population.cpp.o"
  "CMakeFiles/openspace_sim.dir/population.cpp.o.d"
  "CMakeFiles/openspace_sim.dir/scenario.cpp.o"
  "CMakeFiles/openspace_sim.dir/scenario.cpp.o.d"
  "libopenspace_sim.a"
  "libopenspace_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
