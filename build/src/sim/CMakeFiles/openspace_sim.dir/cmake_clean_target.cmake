file(REMOVE_RECURSE
  "libopenspace_sim.a"
)
