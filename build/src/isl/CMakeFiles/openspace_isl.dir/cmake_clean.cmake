file(REMOVE_RECURSE
  "CMakeFiles/openspace_isl.dir/fleet.cpp.o"
  "CMakeFiles/openspace_isl.dir/fleet.cpp.o.d"
  "CMakeFiles/openspace_isl.dir/pairing.cpp.o"
  "CMakeFiles/openspace_isl.dir/pairing.cpp.o.d"
  "libopenspace_isl.a"
  "libopenspace_isl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_isl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
