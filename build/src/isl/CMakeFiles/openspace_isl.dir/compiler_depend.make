# Empty compiler generated dependencies file for openspace_isl.
# This may be replaced when dependencies are built.
