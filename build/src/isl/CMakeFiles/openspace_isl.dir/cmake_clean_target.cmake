file(REMOVE_RECURSE
  "libopenspace_isl.a"
)
