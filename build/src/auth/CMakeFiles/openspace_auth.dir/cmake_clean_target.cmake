file(REMOVE_RECURSE
  "libopenspace_auth.a"
)
