
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/auth/association.cpp" "src/auth/CMakeFiles/openspace_auth.dir/association.cpp.o" "gcc" "src/auth/CMakeFiles/openspace_auth.dir/association.cpp.o.d"
  "/root/repo/src/auth/certificate.cpp" "src/auth/CMakeFiles/openspace_auth.dir/certificate.cpp.o" "gcc" "src/auth/CMakeFiles/openspace_auth.dir/certificate.cpp.o.d"
  "/root/repo/src/auth/radius.cpp" "src/auth/CMakeFiles/openspace_auth.dir/radius.cpp.o" "gcc" "src/auth/CMakeFiles/openspace_auth.dir/radius.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/openspace_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/openspace_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/openspace_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/openspace_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/openspace_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/openspace_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
