# Empty compiler generated dependencies file for openspace_auth.
# This may be replaced when dependencies are built.
