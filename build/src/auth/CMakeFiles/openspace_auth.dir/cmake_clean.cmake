file(REMOVE_RECURSE
  "CMakeFiles/openspace_auth.dir/association.cpp.o"
  "CMakeFiles/openspace_auth.dir/association.cpp.o.d"
  "CMakeFiles/openspace_auth.dir/certificate.cpp.o"
  "CMakeFiles/openspace_auth.dir/certificate.cpp.o.d"
  "CMakeFiles/openspace_auth.dir/radius.cpp.o"
  "CMakeFiles/openspace_auth.dir/radius.cpp.o.d"
  "libopenspace_auth.a"
  "libopenspace_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
