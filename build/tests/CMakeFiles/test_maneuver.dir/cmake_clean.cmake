file(REMOVE_RECURSE
  "CMakeFiles/test_maneuver.dir/test_maneuver.cpp.o"
  "CMakeFiles/test_maneuver.dir/test_maneuver.cpp.o.d"
  "test_maneuver"
  "test_maneuver.pdb"
  "test_maneuver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maneuver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
