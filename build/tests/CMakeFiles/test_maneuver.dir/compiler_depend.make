# Empty compiler generated dependencies file for test_maneuver.
# This may be replaced when dependencies are built.
