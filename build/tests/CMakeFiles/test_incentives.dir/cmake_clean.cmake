file(REMOVE_RECURSE
  "CMakeFiles/test_incentives.dir/test_incentives.cpp.o"
  "CMakeFiles/test_incentives.dir/test_incentives.cpp.o.d"
  "test_incentives"
  "test_incentives.pdb"
  "test_incentives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_incentives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
