file(REMOVE_RECURSE
  "CMakeFiles/test_integration2.dir/test_integration2.cpp.o"
  "CMakeFiles/test_integration2.dir/test_integration2.cpp.o.d"
  "test_integration2"
  "test_integration2.pdb"
  "test_integration2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
