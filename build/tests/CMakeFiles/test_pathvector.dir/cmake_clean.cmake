file(REMOVE_RECURSE
  "CMakeFiles/test_pathvector.dir/test_pathvector.cpp.o"
  "CMakeFiles/test_pathvector.dir/test_pathvector.cpp.o.d"
  "test_pathvector"
  "test_pathvector.pdb"
  "test_pathvector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pathvector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
