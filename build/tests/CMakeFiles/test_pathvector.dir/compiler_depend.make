# Empty compiler generated dependencies file for test_pathvector.
# This may be replaced when dependencies are built.
