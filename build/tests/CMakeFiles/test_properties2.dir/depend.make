# Empty dependencies file for test_properties2.
# This may be replaced when dependencies are built.
