file(REMOVE_RECURSE
  "CMakeFiles/test_properties2.dir/test_properties2.cpp.o"
  "CMakeFiles/test_properties2.dir/test_properties2.cpp.o.d"
  "test_properties2"
  "test_properties2.pdb"
  "test_properties2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
