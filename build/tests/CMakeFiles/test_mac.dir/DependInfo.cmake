
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mac.cpp" "tests/CMakeFiles/test_mac.dir/test_mac.cpp.o" "gcc" "tests/CMakeFiles/test_mac.dir/test_mac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isl/CMakeFiles/openspace_isl.dir/DependInfo.cmake"
  "/root/repo/build/src/handover/CMakeFiles/openspace_handover.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/openspace_security.dir/DependInfo.cmake"
  "/root/repo/build/src/regulation/CMakeFiles/openspace_regulation.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/openspace_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/openspace_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/openspace_net.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/openspace_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/openspace_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/openspace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/openspace_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/openspace_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/openspace_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/openspace_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/openspace_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/orbit/CMakeFiles/openspace_orbit.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/openspace_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
