# Empty dependencies file for test_isl.
# This may be replaced when dependencies are built.
