file(REMOVE_RECURSE
  "CMakeFiles/test_handover.dir/test_handover.cpp.o"
  "CMakeFiles/test_handover.dir/test_handover.cpp.o.d"
  "test_handover"
  "test_handover.pdb"
  "test_handover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
