# Empty dependencies file for test_handover.
# This may be replaced when dependencies are built.
