# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_orbit[1]_include.cmake")
include("/root/repo/build/tests/test_phy[1]_include.cmake")
include("/root/repo/build/tests/test_mac[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_isl[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_auth[1]_include.cmake")
include("/root/repo/build/tests/test_handover[1]_include.cmake")
include("/root/repo/build/tests/test_econ[1]_include.cmake")
include("/root/repo/build/tests/test_incentives[1]_include.cmake")
include("/root/repo/build/tests/test_security[1]_include.cmake")
include("/root/repo/build/tests/test_regulation[1]_include.cmake")
include("/root/repo/build/tests/test_maneuver[1]_include.cmake")
include("/root/repo/build/tests/test_population[1]_include.cmake")
include("/root/repo/build/tests/test_temporal[1]_include.cmake")
include("/root/repo/build/tests/test_pathvector[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_integration2[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_properties2[1]_include.cmake")
