file(REMOVE_RECURSE
  "CMakeFiles/multi_provider_roaming.dir/multi_provider_roaming.cpp.o"
  "CMakeFiles/multi_provider_roaming.dir/multi_provider_roaming.cpp.o.d"
  "multi_provider_roaming"
  "multi_provider_roaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_provider_roaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
