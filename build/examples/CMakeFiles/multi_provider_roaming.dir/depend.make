# Empty dependencies file for multi_provider_roaming.
# This may be replaced when dependencies are built.
