# Empty compiler generated dependencies file for openspace_cli.
# This may be replaced when dependencies are built.
