file(REMOVE_RECURSE
  "CMakeFiles/openspace_cli.dir/openspace_cli.cpp.o"
  "CMakeFiles/openspace_cli.dir/openspace_cli.cpp.o.d"
  "openspace_cli"
  "openspace_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openspace_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
