# Empty dependencies file for iridium_constellation.
# This may be replaced when dependencies are built.
