file(REMOVE_RECURSE
  "CMakeFiles/iridium_constellation.dir/iridium_constellation.cpp.o"
  "CMakeFiles/iridium_constellation.dir/iridium_constellation.cpp.o.d"
  "iridium_constellation"
  "iridium_constellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iridium_constellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
