# Empty dependencies file for disaster_relief.
# This may be replaced when dependencies are built.
