file(REMOVE_RECURSE
  "CMakeFiles/handover_demo.dir/handover_demo.cpp.o"
  "CMakeFiles/handover_demo.dir/handover_demo.cpp.o.d"
  "handover_demo"
  "handover_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handover_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
