# Empty compiler generated dependencies file for constellation_planning.
# This may be replaced when dependencies are built.
