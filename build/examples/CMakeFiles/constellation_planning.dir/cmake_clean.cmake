file(REMOVE_RECURSE
  "CMakeFiles/constellation_planning.dir/constellation_planning.cpp.o"
  "CMakeFiles/constellation_planning.dir/constellation_planning.cpp.o.d"
  "constellation_planning"
  "constellation_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constellation_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
