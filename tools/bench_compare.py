#!/usr/bin/env python3
"""Warn-only benchmark regression check.

Compares freshly produced BENCH_*.json files against the committed
reference numbers in bench/baseline/. Two formats are understood:

* google-benchmark JSON ("benchmarks": [{"name", "real_time", ...}]) —
  per-benchmark real_time is compared by name;
* the custom routing-ablation record ("bench": "routing_ablation") —
  batch serial/parallel wall seconds are compared, and checksum agreement
  is re-asserted;
* the custom propagation record ("bench": "propagation") — per-step times
  for the scalar/batch/warm paths are compared, checksum agreement is
  re-asserted, and the batch speedup is checked against the 3x floor the
  kernel is expected to hold;
* the custom coverage-index record ("bench": "coverage_index") — indexed
  wall times are compared, brute==indexed / serial==parallel checksum
  agreement is re-asserted, and the query-kernel speedups are checked
  against the floors the spherical footprint index is expected to hold
  (4x at 66 satellites, 6x at 1000);
* the custom fig2c record ("bench": "fig2c_coverage") — wall time is
  compared and the coverage curve itself (a deterministic seeded
  computation) is re-asserted point for point against the baseline;
* the custom flow-simulator record ("bench": "flow_sim") — scheduler /
  simulator / scale-run wall times are compared, the wheel==EventQueue,
  simulator==legacy and serial==parallel checksum gates are re-asserted,
  and the timer-wheel speedup is checked against its 3x floor;
* the custom temporal-delta record ("bench": "temporal_delta") — delta
  wall times are compared, the delta==fresh / serial==parallel checksum
  gates are re-asserted, the graph/route speedups are checked against
  their 4x floors (headline target is 5x; the floor leaves noise margin),
  and route repair is checked to be actually repairing rather than
  falling back to fresh trees;
* the custom handover record ("bench": "handover") — the timelines are
  deterministic seeded computations, so cadence counts and outage numbers
  are re-asserted exactly against the baseline at equal scale, and the
  predictive scheme's outage reduction over re-association is checked
  against its 25x floor;
* the custom session record ("bench": "session") — the sweep==legacy and
  serial==parallel checksum gates are re-asserted, the cache-consults-
  every-handover invariant is re-checked, sweep wall times are compared,
  and the epoch sweep's speedup over the per-user planner scan is checked
  against its 10x floor (at meaningful scale).

CI hardware varies run to run, so this is a smoke alarm, not a gate: every
regression beyond the threshold prints a GitHub ::warning:: annotation and
the script still exits 0. The committed baselines document the numbers a
known machine produced; refresh them (tools/bench_compare.py --help shows
the layout) whenever an intentional perf change lands.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Warn when current time exceeds baseline by more than this factor.
DEFAULT_THRESHOLD = 1.5


def warn(msg: str) -> None:
    print(f"::warning::{msg}")


def load(path: Path):
    try:
        with path.open() as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        warn(f"bench_compare: cannot read {path}: {e}")
        return None


def google_benchmark_times(doc) -> dict[str, float]:
    """name -> real_time (ns) for plain (non-aggregate) entries."""
    times: dict[str, float] = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        t = b.get("real_time")
        if name is None or t is None:
            continue
        # Repetitions repeat names; keep the minimum (robust on noisy CI).
        times[name] = min(t, times.get(name, float("inf")))
    return times


def compare_google_benchmark(current, baseline, threshold: float) -> int:
    warned = 0
    cur = google_benchmark_times(current)
    base = google_benchmark_times(baseline)
    for name, base_t in sorted(base.items()):
        cur_t = cur.get(name)
        if cur_t is None:
            warn(f"benchmark {name} present in baseline but not in this run")
            warned += 1
            continue
        ratio = cur_t / base_t if base_t > 0 else float("inf")
        marker = " REGRESSION?" if ratio > threshold else ""
        print(f"  {name}: {cur_t:.0f} vs baseline {base_t:.0f} "
              f"({ratio:.2f}x){marker}")
        if ratio > threshold:
            warn(f"{name}: {cur_t:.0f} ns vs baseline {base_t:.0f} ns "
                 f"({ratio:.2f}x > {threshold:.2f}x)")
            warned += 1
    return warned


def compare_routing_ablation(current, baseline, threshold: float) -> int:
    warned = 0
    cur_batch = current.get("batch", {})
    base_batch = baseline.get("batch", {})
    if not cur_batch.get("checksums_match", False):
        warn("routing_ablation: serial/parallel batch checksums diverged")
        warned += 1
    for key in ("serial_seconds", "parallel_seconds"):
        cur_t = cur_batch.get(key)
        base_t = base_batch.get(key)
        if cur_t is None or base_t is None or base_t <= 0:
            continue
        ratio = cur_t / base_t
        marker = " REGRESSION?" if ratio > threshold else ""
        print(f"  batch.{key}: {cur_t:.4f}s vs baseline {base_t:.4f}s "
              f"({ratio:.2f}x){marker}")
        if ratio > threshold:
            warn(f"routing_ablation batch.{key}: {cur_t:.4f}s vs baseline "
                 f"{base_t:.4f}s ({ratio:.2f}x > {threshold:.2f}x)")
            warned += 1
    return warned


def compare_propagation(current, baseline, threshold: float) -> int:
    warned = 0
    if not current.get("checksums_match", False):
        warn("propagation: scalar/batch/warm or serial/parallel checksums "
             "diverged")
        warned += 1
    for key in ("scalar_us_per_step", "batch_us_per_step",
                "warm_us_per_step"):
        cur_t = current.get(key)
        base_t = baseline.get(key)
        if cur_t is None or base_t is None or base_t <= 0:
            continue
        ratio = cur_t / base_t
        marker = " REGRESSION?" if ratio > threshold else ""
        print(f"  {key}: {cur_t:.3f}us vs baseline {base_t:.3f}us "
              f"({ratio:.2f}x){marker}")
        if ratio > threshold:
            warn(f"propagation {key}: {cur_t:.3f}us vs baseline "
                 f"{base_t:.3f}us ({ratio:.2f}x > {threshold:.2f}x)")
            warned += 1
    # The batch kernel's reason to exist: warn if the speedup over the
    # scalar spec sinks below the floor the baseline machine demonstrated.
    for key, floor in (("speedup_batch", 3.0), ("speedup_warm", 3.0)):
        speedup = current.get(key)
        if speedup is None:
            continue
        print(f"  {key}: {speedup:.2f}x (floor {floor:.1f}x)")
        if speedup < floor:
            warn(f"propagation {key}: {speedup:.2f}x below the {floor:.1f}x "
                 f"floor")
            warned += 1
    return warned


def compare_coverage_index(current, baseline, threshold: float) -> int:
    warned = 0
    if not current.get("checksums_match", False):
        warn("coverage_index: brute/indexed or serial/parallel checksums "
             "diverged")
        warned += 1
    if current.get("scale") != baseline.get("scale"):
        # CI runs the bench at a reduced workload scale; absolute times are
        # incomparable then, but the speedup floors below still apply.
        print(f"  (scale {current.get('scale')} vs baseline "
              f"{baseline.get('scale')}: skipping wall-time comparison)")
    else:
        warned += _compare_coverage_index_times(current, baseline, threshold)
    # The index's reason to exist: the fig2c-style query kernel and the
    # association fan-out must stay well ahead of the brute specs.
    for key, floor in (("speedup_kernel66", 4.0), ("speedup_kernel1000", 6.0),
                       ("speedup_assoc66", 3.0), ("speedup_assoc1000", 8.0)):
        speedup = current.get(key)
        if speedup is None:
            continue
        print(f"  {key}: {speedup:.2f}x (floor {floor:.1f}x)")
        if speedup < floor:
            warn(f"coverage_index {key}: {speedup:.2f}x below the "
                 f"{floor:.1f}x floor")
            warned += 1
    return warned


def _compare_coverage_index_times(current, baseline, threshold: float) -> int:
    warned = 0
    for key in ("kernel66_indexed_s", "kernel1000_indexed_s",
                "mc66_indexed_s", "mc1000_indexed_s", "assoc66_indexed_s",
                "assoc1000_indexed_s", "mc66_parallel_s",
                "assoc66_parallel_s", "assoc1000_parallel_s"):
        cur_t = current.get(key)
        base_t = baseline.get(key)
        if cur_t is None or base_t is None or base_t <= 0:
            continue
        ratio = cur_t / base_t
        marker = " REGRESSION?" if ratio > threshold else ""
        print(f"  {key}: {cur_t:.4f}s vs baseline {base_t:.4f}s "
              f"({ratio:.2f}x){marker}")
        if ratio > threshold:
            warn(f"coverage_index {key}: {cur_t:.4f}s vs baseline "
                 f"{base_t:.4f}s ({ratio:.2f}x > {threshold:.2f}x)")
            warned += 1
    return warned


def compare_flow_sim(current, baseline, threshold: float) -> int:
    warned = 0
    if not current.get("checksums_match", False):
        warn("flow_sim: wheel/EventQueue, simulator/legacy or "
             "serial/parallel checksums diverged")
        warned += 1
    if current.get("scale") != baseline.get("scale"):
        # CI runs the bench at a reduced workload scale; absolute times are
        # incomparable then, but the speedup floor below still applies.
        print(f"  (scale {current.get('scale')} vs baseline "
              f"{baseline.get('scale')}: skipping wall-time comparison)")
    else:
        for key in ("sched_wheel_s", "equiv_sim_s", "scale_run_s"):
            cur_t = current.get(key)
            base_t = baseline.get(key)
            if cur_t is None or base_t is None or base_t <= 0:
                continue
            ratio = cur_t / base_t
            marker = " REGRESSION?" if ratio > threshold else ""
            print(f"  {key}: {cur_t:.4f}s vs baseline {base_t:.4f}s "
                  f"({ratio:.2f}x){marker}")
            if ratio > threshold:
                warn(f"flow_sim {key}: {cur_t:.4f}s vs baseline "
                     f"{base_t:.4f}s ({ratio:.2f}x > {threshold:.2f}x)")
                warned += 1
    # The wheel's reason to exist: POD slab records must keep it well ahead
    # of the closure-allocating EventQueue spec. The floor only holds at a
    # meaningful open-timer count, so skip it on heavily reduced lanes.
    speedup = current.get("speedup_scheduler")
    if speedup is not None:
        floor = 3.0 if current.get("scale", 1.0) >= 0.2 else None
        floor_txt = f" (floor {floor:.1f}x)" if floor else " (no floor at this scale)"
        print(f"  speedup_scheduler: {speedup:.2f}x{floor_txt}")
        if floor is not None and speedup < floor:
            warn(f"flow_sim speedup_scheduler: {speedup:.2f}x below the "
                 f"{floor:.1f}x floor")
            warned += 1
    return warned


def compare_temporal_delta(current, baseline, threshold: float) -> int:
    warned = 0
    if not current.get("checksums_match", False):
        warn("temporal_delta: delta/fresh or serial/parallel checksums "
             "diverged")
        warned += 1
    if current.get("scale") != baseline.get("scale"):
        # CI runs the bench at a reduced workload scale; absolute times are
        # incomparable then, but the speedup floors below still apply.
        print(f"  (scale {current.get('scale')} vs baseline "
              f"{baseline.get('scale')}: skipping wall-time comparison)")
    else:
        for key in ("graph_delta_s", "routes_delta_s"):
            cur_t = current.get(key)
            base_t = baseline.get(key)
            if cur_t is None or base_t is None or base_t <= 0:
                continue
            ratio = cur_t / base_t
            marker = " REGRESSION?" if ratio > threshold else ""
            print(f"  {key}: {cur_t:.4f}s vs baseline {base_t:.4f}s "
                  f"({ratio:.2f}x){marker}")
            if ratio > threshold:
                warn(f"temporal_delta {key}: {cur_t:.4f}s vs baseline "
                     f"{base_t:.4f}s ({ratio:.2f}x > {threshold:.2f}x)")
                warned += 1
    # The delta path's reason to exist: the ≥5x headline. The floors sit
    # below the measured 5.6-5.9x so machine noise doesn't flake, and only
    # apply at a meaningful step count (reduced lanes amortize the
    # structural steps over too few patched ones).
    for key, floor in (("speedup_graph", 4.0), ("speedup_routes", 4.0)):
        speedup = current.get(key)
        if speedup is None:
            continue
        if current.get("scale", 1.0) >= 0.2:
            print(f"  {key}: {speedup:.2f}x (floor {floor:.1f}x)")
            if speedup < floor:
                warn(f"temporal_delta {key}: {speedup:.2f}x below the "
                     f"{floor:.1f}x floor")
                warned += 1
        else:
            print(f"  {key}: {speedup:.2f}x (no floor at this scale)")
    # Route repair must actually be repairing: a fallback on every step
    # would silently degrade to the fresh path while still passing the
    # bit-identity gates.
    repaired = current.get("repaired_steps")
    fallback = current.get("fallback_steps")
    if repaired is not None and fallback is not None:
        print(f"  repair: {repaired} repaired, {fallback} fallback steps")
        if repaired > 0 and fallback > repaired:
            warn(f"temporal_delta: {fallback} fallback steps vs {repaired} "
                 f"repaired — repair is mostly falling back to fresh trees")
            warned += 1
    return warned


def compare_handover(current, baseline, threshold: float) -> int:
    warned = 0
    cur_t = current.get("wall_seconds")
    base_t = baseline.get("wall_seconds")
    if cur_t is not None and base_t is not None and base_t > 0:
        ratio = cur_t / base_t
        marker = " REGRESSION?" if ratio > threshold else ""
        print(f"  wall_seconds: {cur_t:.3f}s vs baseline {base_t:.3f}s "
              f"({ratio:.2f}x){marker}")
        if ratio > threshold:
            warn(f"handover wall_seconds: {cur_t:.3f}s vs baseline "
                 f"{base_t:.3f}s ({ratio:.2f}x > {threshold:.2f}x)")
            warned += 1
    # The predictive scheme's reason to exist: per-handover outage drops
    # from beacon wait + RADIUS RTT (~1.1 s) to signaling latency (~20 ms).
    # The ratio is per-handover, so it holds at any window scale.
    ratio = current.get("outage_ratio")
    if ratio is not None:
        print(f"  outage_ratio: {ratio:.1f}x (floor 25.0x)")
        if ratio < 25.0:
            warn(f"handover outage_ratio: predictive only {ratio:.1f}x "
                 f"less outage than re-association (floor 25x)")
            warned += 1
    if current.get("scale") != baseline.get("scale"):
        # A different window length changes every cadence count; only the
        # per-handover ratio above is comparable then.
        print(f"  (scale {current.get('scale')} vs baseline "
              f"{baseline.get('scale')}: skipping cadence comparison)")
        return warned
    # The timelines are fixed-seed deterministic computations: any drift
    # from the committed baseline is a semantic change, not noise.
    for key in ("predictive_handovers", "reassociate_handovers",
                "predictive_outage_s", "reassociate_outage_s"):
        a, b = current.get(key), baseline.get(key)
        if a is None or b is None:
            continue
        drifted = abs(a - b) > 1e-9 if isinstance(a, float) else a != b
        print(f"  {key}: {a} vs baseline {b}")
        if drifted:
            warn(f"handover {key}: {a} vs baseline {b} — the timeline is "
                 f"deterministic, so this is a semantic change, not noise")
            warned += 1
    cur_rows = current.get("cadence", [])
    base_rows = baseline.get("cadence", [])
    if [(r.get("sats"), r.get("handovers")) for r in cur_rows] != \
       [(r.get("sats"), r.get("handovers")) for r in base_rows]:
        warn("handover: cadence-vs-density table drifted from the baseline")
        warned += 1
    else:
        print(f"  cadence: {len(cur_rows)} density points match")
    return warned


def compare_session(current, baseline, threshold: float) -> int:
    warned = 0
    if not current.get("checksums_match", False):
        warn("session: sweep/legacy timeline or serial/parallel checksums "
             "diverged")
        warned += 1
    # Every handover consults the per-shard certificate cache exactly once
    # (hit or miss); a gap means the cache was silently bypassed.
    handovers = current.get("handovers")
    hits = current.get("cert_cache_hits")
    misses = current.get("cert_cache_misses")
    if None not in (handovers, hits, misses) and hits + misses != handovers:
        warn(f"session: cert cache consulted {hits + misses} times for "
             f"{handovers} handovers — the cache is being bypassed")
        warned += 1
    if current.get("scale") != baseline.get("scale"):
        # CI runs the bench at a reduced user count; absolute times are
        # incomparable then, but the speedup floor below still applies.
        print(f"  (scale {current.get('scale')} vs baseline "
              f"{baseline.get('scale')}: skipping wall-time comparison)")
    else:
        for key in ("seed_s", "sweep_serial_s", "sweep_parallel_s",
                    "baseline_probe_s"):
            cur_t = current.get(key)
            base_t = baseline.get(key)
            if cur_t is None or base_t is None or base_t <= 0:
                continue
            ratio = cur_t / base_t
            marker = " REGRESSION?" if ratio > threshold else ""
            print(f"  {key}: {cur_t:.4f}s vs baseline {base_t:.4f}s "
                  f"({ratio:.2f}x){marker}")
            if ratio > threshold:
                warn(f"session {key}: {cur_t:.4f}s vs baseline "
                     f"{base_t:.4f}s ({ratio:.2f}x > {threshold:.2f}x)")
                warned += 1
    # The sweep's reason to exist: the >= 10x headline over the per-user
    # planner scan. The floor only holds once per-epoch fixed costs (index
    # compile, heap walk) amortize over enough users, so skip it on heavily
    # reduced lanes.
    speedup = current.get("speedup_vs_planner")
    if speedup is not None:
        floor = 10.0 if current.get("scale", 1.0) >= 0.2 else None
        floor_txt = f" (floor {floor:.1f}x)" if floor \
            else " (no floor at this scale)"
        print(f"  speedup_vs_planner: {speedup:.2f}x{floor_txt}")
        if floor is not None and speedup < floor:
            warn(f"session speedup_vs_planner: {speedup:.2f}x below the "
                 f"{floor:.1f}x floor")
            warned += 1
    return warned


def compare_scale(current, baseline, threshold: float) -> int:
    warned = 0
    if not current.get("checksums_match", False):
        warn("scale: a hard gate diverged (serial/parallel, SIMD-vs-scalar "
             "bit-identity, delta==fresh, or indexed closestVisible)")
        warned += 1
    same_scale = current.get("scale") == baseline.get("scale")
    if not same_scale:
        # CI runs a reduced workload; absolute stage times are incomparable
        # then, but the kernel speedup floors below still apply.
        print(f"  (scale {current.get('scale')} vs baseline "
              f"{baseline.get('scale')}: skipping stage-time comparison)")
    base_tiers = {t.get("tier"): t for t in baseline.get("tiers", [])}
    for tier in current.get("tiers", []):
        name = tier.get("tier")
        base = base_tiers.get(name)
        if not tier.get("gates_match", False):
            warn(f"scale {name}: per-tier gates diverged")
            warned += 1
        reached = tier.get("route_reached")
        pairs = tier.get("route_pairs")
        if reached is not None and pairs and reached < pairs:
            warn(f"scale {name}: only {reached}/{pairs} route pairs "
                 f"reachable — the intra-shell ISL graph fragmented")
            warned += 1
        if same_scale and base is not None:
            for key in ("prop_simd_s", "index_build_s", "topo_build_s",
                        "route_s"):
                cur_t = tier.get(key)
                base_t = base.get(key)
                if cur_t is None or base_t is None or base_t <= 0:
                    continue
                ratio = cur_t / base_t
                marker = " REGRESSION?" if ratio > threshold else ""
                print(f"  {name} {key}: {cur_t:.4f}s vs baseline "
                      f"{base_t:.4f}s ({ratio:.2f}x){marker}")
                if ratio > threshold:
                    warn(f"scale {name} {key}: {cur_t:.4f}s vs baseline "
                         f"{base_t:.4f}s ({ratio:.2f}x > {threshold:.2f}x)")
                    warned += 1
    # The SIMD kernels' reason to exist: the >= 2x single-core acceptance
    # floor (measured 4-7x; the floor sits far below so machine noise
    # doesn't flake). Only meaningful when the AVX2 translation units
    # dispatched — on a scalar4-only host both sides run the same lanes.
    if current.get("cap_kernel_level") == "avx2":
        for key, floor in (("speedup_propagation_best", 2.0),
                           ("speedup_capindex_best", 2.0)):
            speedup = current.get(key)
            if speedup is None:
                continue
            print(f"  {key}: {speedup:.2f}x (floor {floor:.1f}x)")
            if speedup < floor:
                warn(f"scale {key}: {speedup:.2f}x below the "
                     f"{floor:.1f}x floor")
                warned += 1
    else:
        print("  (cap kernel dispatched scalar4: no speedup floors)")
    return warned


def compare_fig2c_coverage(current, baseline, threshold: float) -> int:
    warned = 0
    cur_t = current.get("wall_seconds")
    base_t = baseline.get("wall_seconds")
    if cur_t is not None and base_t is not None and base_t > 0:
        ratio = cur_t / base_t
        marker = " REGRESSION?" if ratio > threshold else ""
        print(f"  wall_seconds: {cur_t:.3f}s vs baseline {base_t:.3f}s "
              f"({ratio:.2f}x){marker}")
        if ratio > threshold:
            warn(f"fig2c_coverage wall_seconds: {cur_t:.3f}s vs baseline "
                 f"{base_t:.3f}s ({ratio:.2f}x > {threshold:.2f}x)")
            warned += 1
    # The curve is a fixed-seed deterministic computation: any drift from
    # the committed baseline is a semantic change, not noise.
    if current.get("full_coverage_at") != baseline.get("full_coverage_at"):
        warn(f"fig2c_coverage full_coverage_at: "
             f"{current.get('full_coverage_at')} vs baseline "
             f"{baseline.get('full_coverage_at')}")
        warned += 1
    cur_pts = current.get("points", [])
    base_pts = baseline.get("points", [])
    if len(cur_pts) != len(base_pts):
        warn(f"fig2c_coverage: {len(cur_pts)} points vs baseline "
             f"{len(base_pts)}")
        return warned + 1
    drift = 0.0
    for cur_p, base_p in zip(cur_pts, base_pts):
        for key in ("worst_case_coverage", "monte_carlo_coverage",
                    "mean_effective_satellites"):
            a, b = cur_p.get(key), base_p.get(key)
            if a is not None and b is not None:
                drift = max(drift, abs(a - b))
    print(f"  curve: {len(cur_pts)} points, max drift {drift:.2e}")
    if drift > 1e-9:
        warn(f"fig2c_coverage: coverage curve drifted from the baseline "
             f"(max {drift:.2e}) — the computation is seeded, so this is "
             f"a semantic change, not noise")
        warned += 1
    return warned


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+", type=Path,
                    help="freshly produced BENCH_*.json files")
    ap.add_argument("--baseline-dir", type=Path,
                    default=Path("bench/baseline"),
                    help="directory of committed baselines, matched by "
                         "file name (default: bench/baseline)")
    ap.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                    help="warn when current/baseline exceeds this factor")
    args = ap.parse_args()

    warned = 0
    for path in args.files:
        current = load(path)
        if current is None:
            warned += 1
            continue
        base_path = args.baseline_dir / path.name
        if not base_path.exists():
            warn(f"no committed baseline for {path.name} "
                 f"(expected {base_path}); skipping compare")
            warned += 1
            continue
        baseline = load(base_path)
        if baseline is None:
            warned += 1
            continue
        print(f"== {path.name} vs {base_path}")
        if current.get("bench") == "routing_ablation":
            warned += compare_routing_ablation(current, baseline,
                                               args.threshold)
        elif current.get("bench") == "propagation":
            warned += compare_propagation(current, baseline, args.threshold)
        elif current.get("bench") == "coverage_index":
            warned += compare_coverage_index(current, baseline,
                                             args.threshold)
        elif current.get("bench") == "flow_sim":
            warned += compare_flow_sim(current, baseline, args.threshold)
        elif current.get("bench") == "temporal_delta":
            warned += compare_temporal_delta(current, baseline,
                                             args.threshold)
        elif current.get("bench") == "handover":
            warned += compare_handover(current, baseline, args.threshold)
        elif current.get("bench") == "session":
            warned += compare_session(current, baseline, args.threshold)
        elif current.get("bench") == "scale":
            warned += compare_scale(current, baseline, args.threshold)
        elif current.get("bench") == "fig2c_coverage":
            warned += compare_fig2c_coverage(current, baseline,
                                             args.threshold)
        else:
            warned += compare_google_benchmark(current, baseline,
                                               args.threshold)

    print(f"bench_compare: {warned} warning(s) (informational only)")
    return 0  # warn-only by design: CI hardware is too noisy to gate on


if __name__ == "__main__":
    sys.exit(main())
