#!/usr/bin/env python3
"""Determinism lint: flag hazards that can break serial==parallel or
run-to-run reproducibility in library code.

Every performance claim in this repo rests on bit-identical results:
parallel paths equal serial paths, optimized paths equal their legacy
specs, benches gate on FNV checksums. The TSan lane and the checksum
gates catch such breakage *dynamically* — when a test happens to hit the
bad interleaving. This lint catches the known hazard patterns
*statically*, on every push, in every file:

  unordered-iteration   range-for over a `std::unordered_map/set` (or over
                        the result of a function returning one). Hash-table
                        iteration order is implementation- and run-defined;
                        if it reaches output ordering or a non-commutative
                        accumulation, results stop being reproducible.
  nondeterministic-source
                        `std::rand`, `srand`, `std::random_device`,
                        `time(...)`, `clock()`, `getpid`, `gettimeofday`,
                        or any `std::chrono::*_clock::now` in library code.
                        Library randomness must flow through the seeded
                        `openspace::Rng` streams; wall-clock reads belong
                        in benches (which live outside `src/` and are not
                        scanned).
  pointer-key           unordered container keyed on a pointer type, or
                        `std::hash<T*>`. Pointer values vary run to run
                        (ASLR, allocation order), so any ordering or
                        hashing derived from them is nondeterministic.
  parallelfor-capture   a by-reference capture mutated inside a
                        `parallelFor` body through a non-indexed operation
                        (`push_back`, `insert`, `+=`, `++`, ...). The
                        sanctioned patterns are per-slot writes
                        (`out[i] = ...`) and per-chunk locals merged after
                        the join; anything else is a data race AND an
                        ordering hazard even when made atomic.

Waiver philosophy matches tools/check_units.py: a real hit gets a fix, or
a same-line / line-above justification

    // det-waiver: <why this is order-independent / pre-thread / ...>

and a header may opt out wholesale with `// det-waiver-file: <reason>`
within its first ten lines (reserved for generic primitives).

Scope notes (documented limits, not bugs): declarations are resolved per
module (`src/<module>/`), so a `std::vector` member named like another
module's unordered map is not confused; `auto` deductions and iterator
loops (`X.begin()`) are not resolved; the parallelFor analysis only sees
by-reference captures mutated via the recognized mutating operations.

With `--compile-commands build/compile_commands.json` the set of scanned
translation units is taken from the compilation database (the same source
of truth clang-tidy and the thread-safety build use) instead of a glob;
headers are always discovered by glob since they are not TUs.

Exit status is non-zero when any unwaived violation is found. Run locally:

    python3 tools/check_determinism.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from dataclasses import dataclass

# --- waivers -----------------------------------------------------------------

WAIVER_RE = re.compile(r"//[/!<]*\s*det-waiver:\s*\S")
FILE_WAIVER_RE = re.compile(r"//[/!<]*\s*det-waiver-file:\s*\S")

# --- hazard patterns ---------------------------------------------------------

UNORDERED_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\s*<")

NONDET_SOURCE_RES = [re.compile(p) for p in (
    r"\bstd::rand\b",
    r"\bstd::srand\b",
    r"(?<![\w:])srand\s*\(",
    r"\brandom_device\b",
    r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0|&)",
    r"(?<![\w:.>])clock\s*\(\s*\)",
    r"\bgettimeofday\s*\(",
    r"\bgetpid\s*\(",
    r"\b(?:system|steady|high_resolution)_clock\s*::\s*now\b",
)]

HASH_PTR_RE = re.compile(r"\bstd::hash\s*<[^<>]*\*\s*>")

# Range-for: the separating colon must not be part of a `::`, and the
# range expression may contain one level of call parentheses.
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(([^;{}]*?)(?<!:):(?!:)((?:[^;(){}]|\([^()]*\))*)\)",
    re.DOTALL)

MUTATING_MEMBER_FNS = (
    "push_back", "emplace_back", "pop_back", "push_front", "emplace_front",
    "insert", "emplace", "try_emplace", "erase", "clear", "resize", "assign",
    "append", "merge", "splice",
)

# A postfix chain like `topo->adjacency[i]` or `r.samples`; group 1 is the
# base identifier, the whole match shows whether any step was indexed.
CHAIN = r"([A-Za-z_]\w*)((?:\s*(?:\.|->)\s*[A-Za-z_]\w*|\s*\[[^\]]*\])*)"
MUTATE_CALL_RE = re.compile(
    CHAIN + r"\s*(?:\.|->)\s*(?:" + "|".join(MUTATING_MEMBER_FNS) + r")\s*\(")
COMPOUND_ASSIGN_RE = re.compile(
    CHAIN + r"\s*(?:\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=)(?!=)")
INCDEC_RE = re.compile(r"(?:\+\+|--)\s*" + CHAIN + r"|" + CHAIN + r"\s*(?:\+\+|--)")

# Local declarations inside a lambda body (heuristic: type-ish tokens then a
# name followed by an initializer or declarator punctuation).
LOCAL_DECL_RE = re.compile(
    r"(?:\bconst\s+)?\b(?:auto|bool|int|unsigned|float|double|std::size_t|"
    r"size_t|std::u?int\d+_t|[A-Za-z_][\w:]*(?:<[^;(){}]*?>)?)\s*[&*]?\s+"
    r"([A-Za-z_]\w*)\s*(?:=|\{|\()")
STRUCTURED_BINDING_RE = re.compile(
    r"\bauto\s*[&]{0,2}\s*\[([^\]]+)\]\s*[=:]")

BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
LINE_COMMENT_RE = re.compile(r"//[^\n]*")
STRING_RE = re.compile(r'"(?:[^"\\\n]|\\.)*"')
CHAR_RE = re.compile(r"'(?:[^'\\\n]|\\.)*'")


@dataclass
class Violation:
    path: pathlib.Path
    line: int
    kind: str
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}: [{self.kind}] {self.message} "
                f"(waive with `// det-waiver: <reason>`)")


def blank_keep_lines(match: re.Match[str]) -> str:
    return re.sub(r"[^\n]", " ", match.group(0))


def strip_noncode(text: str) -> str:
    """Blank comments and literals, preserving offsets and line breaks."""
    text = BLOCK_COMMENT_RE.sub(blank_keep_lines, text)
    text = LINE_COMMENT_RE.sub(blank_keep_lines, text)
    text = STRING_RE.sub(blank_keep_lines, text)
    return CHAR_RE.sub(blank_keep_lines, text)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def balance_angles(text: str, open_idx: int) -> int:
    """Index just past the `>` matching the `<` at open_idx, or -1."""
    depth = 0
    i = open_idx
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}" and depth > 0 and c == ";":
            return -1  # ran off the declaration: a comparison, not a template
        i += 1
    return -1


IDENT_AFTER_RE = re.compile(r"\s*&?\s*([A-Za-z_]\w*)\s*([;={(,)]|$)")


def unordered_decls(text: str) -> tuple[dict[str, int], dict[str, int], list[tuple[int, str]]]:
    """Scan one file's stripped text for unordered-container declarations.

    Returns (variables, functions, pointer_key_sites): names of declared
    unordered variables/members, names of functions *returning* unordered
    containers, and offsets of pointer-keyed declarations.
    """
    variables: dict[str, int] = {}
    functions: dict[str, int] = {}
    ptr_sites: list[tuple[int, str]] = []
    for m in UNORDERED_RE.finditer(text):
        open_idx = m.end() - 1
        close = balance_angles(text, open_idx)
        if close < 0:
            continue
        args = text[open_idx + 1:close - 1]
        first_arg = args.split(",", 1)[0].strip()
        if first_arg.endswith("*"):
            ptr_sites.append((m.start(),
                              f"unordered container keyed on pointer type "
                              f"`{first_arg}`"))
        after = IDENT_AFTER_RE.match(text, close)
        if not after:
            continue
        name, terminator = after.group(1), after.group(2)
        if terminator == "(":
            functions[name] = m.start()
        elif terminator in ";={,":
            variables[name] = m.start()
    return variables, functions, ptr_sites


def find_matching_brace(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


def lambda_locals(params: str, body: str) -> set[str]:
    names: set[str] = set()
    for p in params.split(","):
        p = p.strip()
        if p:
            tok = re.findall(r"[A-Za-z_]\w*", p)
            if tok:
                names.add(tok[-1])
    for m in LOCAL_DECL_RE.finditer(body):
        names.add(m.group(1))
    for m in STRUCTURED_BINDING_RE.finditer(body):
        for part in m.group(1).split(","):
            part = part.strip()
            if part:
                names.add(part)
    return names


def parallelfor_hazards(text: str) -> list[tuple[int, str]]:
    """Mutations of by-reference captures inside parallelFor lambda bodies."""
    hazards: list[tuple[int, str]] = []
    for call in re.finditer(r"\bparallelFor\s*\(", text):
        lam = text.find("[", call.end())
        if lam < 0:
            continue
        cap_end = text.find("]", lam)
        if cap_end < 0:
            continue
        captures = text[lam + 1:cap_end]
        if "&" not in captures:
            continue  # by-value captures cannot mutate enclosing state
        paren = text.find("(", cap_end)
        paren_close = text.find(")", paren) if paren >= 0 else -1
        brace = text.find("{", cap_end)
        if brace < 0 or (0 <= paren_close < brace and paren < lam):
            continue
        params = text[paren + 1:paren_close] if 0 <= paren < brace else ""
        body_end = find_matching_brace(text, brace)
        if body_end < 0:
            continue
        body = text[brace + 1:body_end]
        local = lambda_locals(params, body)

        def record(m: re.Match[str], what: str) -> None:
            groups = [g for g in m.groups() if g is not None]
            base, chain = groups[0], groups[1] if len(groups) > 1 else ""
            if base in local:
                return
            if "[" in chain:
                return  # indexed per-slot access: the sanctioned pattern
            hazards.append(
                (brace + 1 + m.start(),
                 f"`{base}` is captured by reference and mutated ({what}) "
                 f"inside a parallelFor body; use the per-chunk buffer or "
                 f"indexed per-slot write pattern"))

        for m in MUTATE_CALL_RE.finditer(body):
            record(m, "container mutation")
        for m in COMPOUND_ASSIGN_RE.finditer(body):
            record(m, "compound assignment")
        for m in INCDEC_RE.finditer(body):
            record(m, "increment/decrement")
    return hazards


def last_component(expr: str) -> tuple[str, bool]:
    """Reduce a range-for expression to its final identifier.

    Returns (name, is_call). Indexed expressions (`a[i]`) and anything
    unparseable return ("", False).
    """
    expr = expr.strip()
    is_call = False
    if expr.endswith(")"):
        # A call: take the callee name.
        depth = 0
        for i in range(len(expr) - 1, -1, -1):
            if expr[i] == ")":
                depth += 1
            elif expr[i] == "(":
                depth -= 1
                if depth == 0:
                    expr = expr[:i]
                    is_call = True
                    break
        else:
            return "", False
    if expr.endswith("]"):
        return "", False  # element access, not container iteration
    m = re.search(r"([A-Za-z_]\w*)\s*$", expr)
    return (m.group(1), is_call) if m else ("", False)


@dataclass
class FileScan:
    path: pathlib.Path
    raw_lines: list[str]
    stripped: str
    variables: dict[str, int]
    functions: dict[str, int]
    ptr_sites: list[tuple[int, str]]


def scan_file(path: pathlib.Path) -> FileScan | None:
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.splitlines()
    if any(FILE_WAIVER_RE.search(line) for line in raw_lines[:10]):
        return None
    stripped = strip_noncode(raw)
    variables, functions, ptr_sites = unordered_decls(stripped)
    return FileScan(path, raw_lines, stripped, variables, functions, ptr_sites)


def module_of(path: pathlib.Path, roots: list[pathlib.Path]) -> str:
    for root in roots:
        try:
            rel = path.relative_to(root)
        except ValueError:
            continue
        return str(root / rel.parts[0]) if rel.parts else str(root)
    return str(path.parent)


def check(scans: list[FileScan], roots: list[pathlib.Path]) -> list[Violation]:
    # Declarations visible per module: a .cpp sees its own declarations plus
    # everything declared in its module's headers.
    mod_vars: dict[str, dict[str, int]] = {}
    mod_fns: dict[str, dict[str, int]] = {}
    for s in scans:
        mod = module_of(s.path, roots)
        mod_vars.setdefault(mod, {}).update(s.variables)
        mod_fns.setdefault(mod, {}).update(s.functions)

    violations: list[Violation] = []

    def waived(s: FileScan, line: int) -> bool:
        for ln in (line, line - 1):
            if 1 <= ln <= len(s.raw_lines) and WAIVER_RE.search(s.raw_lines[ln - 1]):
                return True
        return False

    def add(s: FileScan, offset: int, kind: str, message: str) -> None:
        line = line_of(s.stripped, offset)
        if not waived(s, line):
            violations.append(Violation(s.path, line, kind, message))

    for s in scans:
        mod = module_of(s.path, roots)
        known_vars = mod_vars.get(mod, {})
        known_fns = mod_fns.get(mod, {})

        # 1. unordered-iteration
        for m in RANGE_FOR_RE.finditer(s.stripped):
            name, is_call = last_component(m.group(2))
            if not name:
                continue
            if is_call and name in known_fns:
                add(s, m.start(), "unordered-iteration",
                    f"range-for over `{name}(...)`, which returns an "
                    f"unordered container; iteration order is not "
                    f"reproducible")
            elif not is_call and name in known_vars:
                add(s, m.start(), "unordered-iteration",
                    f"range-for over unordered container `{name}`; "
                    f"iteration order is not reproducible")

        # 2. nondeterministic-source
        for pattern in NONDET_SOURCE_RES:
            for m in pattern.finditer(s.stripped):
                add(s, m.start(), "nondeterministic-source",
                    f"`{m.group(0).strip()}` in library code; use the seeded "
                    f"openspace::Rng streams (clocks belong in bench/)")

        # 3. pointer-key
        for offset, msg in s.ptr_sites:
            add(s, offset, "pointer-key",
                msg + "; pointer values change run to run (ASLR)")
        for m in HASH_PTR_RE.finditer(s.stripped):
            add(s, m.start(), "pointer-key",
                f"`{m.group(0)}` hashes a pointer value; pointer values "
                f"change run to run (ASLR)")

        # 4. parallelfor-capture
        for offset, msg in parallelfor_hazards(s.stripped):
            add(s, offset, "parallelfor-capture", msg)

    return violations


def collect_files(roots: list[str], repo: pathlib.Path,
                  compile_commands: str | None) -> tuple[list[pathlib.Path], list[pathlib.Path]]:
    root_paths = [(repo / r) if not pathlib.Path(r).is_absolute()
                  else pathlib.Path(r) for r in roots]
    files: list[pathlib.Path] = []
    if compile_commands:
        with open(compile_commands, encoding="utf-8") as f:
            db = json.load(f)
        for entry in db:
            p = pathlib.Path(entry["file"])
            if not p.is_absolute():
                p = pathlib.Path(entry["directory"]) / p
            p = p.resolve()
            if any(p.is_relative_to(r.resolve()) for r in root_paths):
                files.append(p)
    else:
        for root in root_paths:
            files.extend(sorted(root.glob("**/*.cpp")))
    # Headers are not TUs, so they never appear in a compilation database;
    # glob them under the same roots either way.
    for root in root_paths:
        files.extend(sorted(root.glob("**/*.hpp")))
    seen: set[pathlib.Path] = set()
    unique = [f for f in files if not (f in seen or seen.add(f))]
    return unique, root_paths


def main() -> int:
    parser = argparse.ArgumentParser(
        description="determinism lint over library code")
    parser.add_argument("roots", nargs="*", default=["src"],
                        help="directories to scan (default: src)")
    parser.add_argument("--compile-commands", metavar="PATH", default=None,
                        help="compile_commands.json to take the TU list from "
                             "(same source of truth as clang-tidy)")
    args = parser.parse_args()

    repo = pathlib.Path(__file__).resolve().parent.parent
    files, root_paths = collect_files(args.roots, repo, args.compile_commands)
    if not files:
        print(f"check_determinism: no sources found under {args.roots}",
              file=sys.stderr)
        return 2

    scans = [s for s in (scan_file(f) for f in files) if s is not None]
    violations = check(scans, root_paths)
    violations.sort(key=lambda v: (str(v.path), v.line))
    for v in violations:
        print(v.render())
    print(f"check_determinism: scanned {len(scans)} files, "
          f"{len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
