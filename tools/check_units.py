#!/usr/bin/env python3
"""Units lint: enforce unit-suffix naming on raw-double quantities in public headers.

openspace uses SI doubles by convention (geo/units.hpp): meters, seconds,
hertz, bits-per-second, radians, watts. The convention is only useful if
every public signature names the unit it expects, so this lint walks every
public header (src/*/include/**/*.hpp) and requires each raw `double`
function parameter and aggregate member to either

  * end in a recognized unit suffix — snake (`_m`, `_s`, `_hz`, `_bps`,
    `_rad`, ...) or the house camelCase equivalent (`M`, `Seconds`, `Hz`,
    `Bps`, `Rad`, ...), or
  * be a recognized dimensionless name (ratio, fraction, weight, ...), or
  * carry an explicit same-line waiver: `// units: <reason>`.

Exit status is non-zero when any violation is found; CI runs this script
on every push. Run locally with:

    python3 tools/check_units.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

# --- policy -----------------------------------------------------------------

# Recognized unit suffixes. Keys are the canonical snake suffix (what the
# ISSUE calls out); values are accepted camelCase spellings of the same unit.
UNIT_SUFFIXES: dict[str, tuple[str, ...]] = {
    "_m": ("M", "Meters"),                    # meters
    "_m2": ("M2",),                           # square meters
    "_s": ("S", "Seconds", "Secs"),           # seconds
    "_hz": ("Hz",),                           # hertz
    "_bps": ("Bps",),                         # bits per second
    "_rad": ("Rad", "Radians"),               # radians
    "_deg": ("Deg", "Degrees"),               # degrees (I/O boundaries only)
    "_mps": ("Mps",),                         # meters per second
    "_mps2": ("Mps2",),                       # meters per second^2
    "_w": ("W", "Watts"),                     # watts
    "_k": ("K", "Kelvin"),                    # kelvin
    "_db": ("Db",),                           # decibels (ratio, log scale)
    "_dbw": ("Dbw",),                         # dBW
    "_dbm": ("Dbm",),                         # dBm
    "_dbi": ("Dbi",),                         # antenna gain dBi
    "_bits": ("Bits",),                       # bits
    "_bytes": ("Bytes",),                     # bytes
    "_gb": ("Gb",),                           # gigabytes (tariff accounting)
    "_usd": ("Usd",),                         # dollars
    "_usd_per_gb": ("UsdPerGb",),             # transit tariff
    "_usd_per_kg": ("UsdPerKg",),             # launch cost
    "_kg": ("Kg",),                           # kilograms
    "_per_s": ("PerS", "PerSecond"),          # rates (1/s)
    "_per_m2": ("PerM2",),                    # densities (1/m^2)
    "_wh": ("Wh",),                           # watt-hours (battery energy)
    "_m3": ("M3",),                           # cubic meters
    "_m3_per_s2": ("M3PerS2",),               # gravitational parameter mu
    "_mm_per_hour": ("MmPerHour",),           # rain rate (ITU-R attenuation)
}

# Names that are legitimately dimensionless doubles. Exact match, or the
# name may end with one of these (e.g. "latencyWeight", "packetLossRatio").
DIMENSIONLESS = (
    "ratio",
    "fraction",
    "factor",
    "weight",
    "penalty",
    "probability",
    "share",
    "efficiency",
    "utilization",
    "quantile",
    "percentile",
    "score",
    "scale",
    "alpha",
    "beta",
    "gamma",
    "epsilon",
    "tolerance",
    "eccentricity",  # orbital eccentricity is dimensionless
    "samples",
    "count",
    # Counts and pure numbers specific to this simulator's domain.
    "hops",          # path lengths in hops
    "frames",        # MAC frame counts
    "satellites",    # expected satellite counts
    "millions",      # population weights, in millions of people
    "coverage",      # covered fraction of time/demand, in [0, 1]
    "connectivity",  # connected fraction of node pairs, in [0, 1]
    "reachability",  # reachable fraction of provider pairs, in [0, 1]
    "synergy",       # coalition coverage gain, a difference of fractions
    "symmetry",      # min/max volume ratio, in [0, 1]
    "exponent",      # exponents are dimensionless by definition
    "quantile",
    "cost",          # route costs are weighted mixed-unit scalars
)

WAIVER_RE = re.compile(r"//[/!<]*\s*units:\s*\S")

# A header whose first lines carry `// units-file: <reason>` is exempt as a
# whole. Reserved for the primitive-math layer (vec3, rng, the unit
# conversion helpers themselves) where parameters are generic scalars.
FILE_WAIVER_RE = re.compile(r"//[/!<]*\s*units-file:\s*\S")

# A raw double quantity: `double <name>` directly followed by a terminator
# that makes it a parameter or member (`,` `)` `;` `=` `{`). Excludes
# pointers/references and `double foo(` function declarations.
DECL_RE = re.compile(r"\bdouble\s+([A-Za-z_]\w*)\s*(?=[,)\;={])")

BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
LINE_COMMENT_RE = re.compile(r"//[^\n]*")


def name_is_compliant(name: str) -> bool:
    name = name.rstrip("_")  # private members carry a trailing underscore
    lowered = name.lower()
    for snake, camels in UNIT_SUFFIXES.items():
        # A name that IS the unit states it as clearly as a suffix would
        # (e.g. `double bytes`, `deg2rad(double deg)`).
        if lowered == snake[1:]:
            return True
        if name.endswith(snake):
            return True
        for camel in camels:
            # A camelCase suffix needs a non-empty stem so a bare `M` or `S`
            # does not count as carrying a unit.
            if name.endswith(camel) and len(name) > len(camel):
                return True
    return any(lowered == d or lowered.endswith(d) for d in DIMENSIONLESS)


def strip_comments_keep_lines(text: str) -> str:
    """Blank out comments while preserving line numbers (waivers are read
    from the raw text separately)."""

    def blank(match: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = BLOCK_COMMENT_RE.sub(blank, text)
    return LINE_COMMENT_RE.sub(blank, text)


def check_file(path: pathlib.Path) -> list[str]:
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.splitlines()
    if any(FILE_WAIVER_RE.search(line) for line in raw_lines[:10]):
        return []
    stripped = strip_comments_keep_lines(raw)
    violations = []
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        for match in DECL_RE.finditer(line):
            name = match.group(1)
            if name_is_compliant(name):
                continue
            # Waiver on the declaration's line, or alone on the line above
            # (for declarations too long to share a line with a comment).
            if lineno <= len(raw_lines) and (
                WAIVER_RE.search(raw_lines[lineno - 1])
                or (lineno >= 2 and WAIVER_RE.search(raw_lines[lineno - 2]))
            ):
                continue
            violations.append(
                f"{path}:{lineno}: raw double `{name}` has no unit suffix "
                f"(see tools/check_units.py for the accepted suffixes; "
                f"waive with `// units: <reason>`)"
            )
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "roots",
        nargs="*",
        default=["src"],
        help="directories to scan (default: src)",
    )
    parser.add_argument(
        "--compile-commands",
        metavar="PATH",
        default=None,
        help="compile_commands.json to derive the module set from (the same "
        "source of truth clang-tidy uses); headers of every module that "
        "appears in the database are scanned",
    )
    args = parser.parse_args()

    repo = pathlib.Path(__file__).resolve().parent.parent
    headers: list[pathlib.Path] = []
    if args.compile_commands:
        # Modules = the directories whose TUs the build actually compiles;
        # their public headers are what the database's flags/includes cover.
        with open(args.compile_commands, encoding="utf-8") as f:
            db = json.load(f)
        modules: set[pathlib.Path] = set()
        for entry in db:
            p = pathlib.Path(entry["file"])
            if not p.is_absolute():
                p = pathlib.Path(entry["directory"]) / p
            p = p.resolve()
            for root in args.roots:
                base = (repo / root).resolve() if not pathlib.Path(root).is_absolute() \
                    else pathlib.Path(root).resolve()
                if p.is_relative_to(base) and p.relative_to(base).parts:
                    modules.add(base / p.relative_to(base).parts[0])
        for module in sorted(modules):
            headers.extend(sorted(module.glob("include/**/*.hpp")))
    for root in args.roots:
        base = (repo / root) if not pathlib.Path(root).is_absolute() else pathlib.Path(root)
        found = sorted(base.glob("*/include/**/*.hpp"))
        headers.extend(h for h in found if h not in headers)
        if not any(base.glob("*/include")):
            headers.extend(sorted(base.glob("**/*.hpp")))

    if not headers:
        print(f"check_units: no headers found under {args.roots}", file=sys.stderr)
        return 2

    violations: list[str] = []
    for header in headers:
        violations.extend(check_file(header))

    for v in violations:
        print(v)
    print(
        f"check_units: scanned {len(headers)} headers, "
        f"{len(violations)} violation(s)"
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
