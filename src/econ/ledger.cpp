#include <openspace/econ/ledger.hpp>

#include <algorithm>
#include <cmath>
#include <set>

#include <openspace/geo/error.hpp>

namespace openspace {

void TrafficLedger::record(ProviderId carrier, ProviderId owner, double bytes) {
  if (bytes < 0.0) {
    throw InvalidArgumentError("TrafficLedger::record: negative bytes");
  }
  entries_[{carrier, owner}] += bytes;
}

double TrafficLedger::carriedBytes(ProviderId carrier,
                                   ProviderId owner) const noexcept {
  const auto it = entries_.find({carrier, owner});
  return it == entries_.end() ? 0.0 : it->second;
}

double TrafficLedger::totalTransitBytes(ProviderId carrier) const noexcept {
  double total = 0.0;
  for (const auto& [key, bytes] : entries_) {
    if (key.first == carrier && key.second != carrier) total += bytes;
  }
  return total;
}

void SettlementEngine::addProvider(ProviderId p) {
  ledgers_.try_emplace(p, TrafficLedger(p));
}

void SettlementEngine::setTariff(const Tariff& t) {
  if (t.usdPerGb < 0.0) {
    throw InvalidArgumentError("SettlementEngine::setTariff: negative rate");
  }
  tariffs_[{t.carrier, t.owner}] = t.usdPerGb;
}

double SettlementEngine::tariffUsdPerGb(ProviderId carrier,
                                        ProviderId owner) const noexcept {
  const auto bilateral = tariffs_.find({carrier, owner});
  if (bilateral != tariffs_.end()) return bilateral->second;
  const auto fallback = tariffs_.find({carrier, ProviderId{0}});
  return fallback == tariffs_.end() ? 0.0 : fallback->second;
}

void SettlementEngine::recordRouteTraffic(const NetworkGraph& graph,
                                          const Route& route, ProviderId owner,
                                          double bytes) {
  if (!route.valid()) {
    throw InvalidArgumentError("recordRouteTraffic: invalid route");
  }
  if (bytes < 0.0) {
    throw InvalidArgumentError("recordRouteTraffic: negative bytes");
  }
  addProvider(owner);

  // Parties involved in the path: every provider owning a node on it.
  std::set<ProviderId> involved{owner};
  for (const NodeId n : route.nodes) involved.insert(graph.node(n).provider);
  for (const ProviderId p : involved) addProvider(p);

  // Hop i is transmitted by nodes[i]; its provider is the carrier.
  for (std::size_t i = 0; i < route.links.size(); ++i) {
    const ProviderId carrier = graph.node(route.nodes[i]).provider;
    if (carrier == owner) continue;  // own infrastructure is free
    for (const ProviderId p : involved) {
      ledgers_.at(p).record(carrier, owner, bytes);
    }
  }
}

bool SettlementEngine::crossVerify(double toleranceBytes) const {
  // Union of all (carrier, owner) keys seen by anyone.
  std::set<std::pair<ProviderId, ProviderId>> keys;
  for (const auto& [p, ledger] : ledgers_) {
    for (const auto& [key, bytes] : ledger.entries()) keys.insert(key);
  }
  // The two transacting parties (carrier and owner) each observe *every*
  // path carrying that owner's traffic over that carrier's assets, so their
  // books must agree exactly. A third party only participates in some of
  // those paths: its book is a witnessed subset, bounded above by the
  // transacting parties' totals.
  for (const auto& [carrier, owner] : keys) {
    const auto lc = ledgers_.find(carrier);
    const auto lo = ledgers_.find(owner);
    if (lc == ledgers_.end() || lo == ledgers_.end()) return false;
    const double byCarrier = lc->second.carriedBytes(carrier, owner);
    const double byOwner = lo->second.carriedBytes(carrier, owner);
    if (std::abs(byCarrier - byOwner) > toleranceBytes) return false;
    for (const auto& [p, ledger] : ledgers_) {
      if (p == carrier || p == owner) continue;
      if (ledger.carriedBytes(carrier, owner) >
          byCarrier + toleranceBytes) {
        return false;  // a witness claims more than the principals saw
      }
    }
  }
  return true;
}

std::vector<SettlementItem> SettlementEngine::settle() const {
  // Use each carrier's own ledger as the billing record (cross-verification
  // is the fraud check).
  std::vector<SettlementItem> items;
  for (const auto& [p, ledger] : ledgers_) {
    for (const auto& [key, bytes] : ledger.entries()) {
      const auto& [carrier, owner] = key;
      if (carrier != p || owner == carrier || bytes <= 0.0) continue;
      SettlementItem item;
      item.payer = owner;
      item.payee = carrier;
      item.bytes = bytes;
      item.amountUsd = bytes / 1e9 * tariffUsdPerGb(carrier, owner);
      items.push_back(item);
    }
  }
  return items;
}

std::vector<PeeringSuggestion> SettlementEngine::recommendPeering(
    double minSymmetry, double minBytes) const {
  std::vector<PeeringSuggestion> out;
  std::vector<ProviderId> ps = providers();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    for (std::size_t j = i + 1; j < ps.size(); ++j) {
      const ProviderId a = ps[i];
      const ProviderId b = ps[j];
      // Volumes per each carrier's own books.
      const auto la = ledgers_.find(a);
      const auto lb = ledgers_.find(b);
      if (la == ledgers_.end() || lb == ledgers_.end()) continue;
      const double aForB = la->second.carriedBytes(a, b);
      const double bForA = lb->second.carriedBytes(b, a);
      if (aForB < minBytes || bForA < minBytes) continue;
      const double sym = std::min(aForB, bForA) / std::max(aForB, bForA);
      if (sym >= minSymmetry) {
        out.push_back({a, b, aForB, bForA, sym});
      }
    }
  }
  return out;
}

const TrafficLedger& SettlementEngine::ledger(ProviderId p) const {
  const auto it = ledgers_.find(p);
  if (it == ledgers_.end()) {
    throw NotFoundError("SettlementEngine::ledger: unknown provider");
  }
  return it->second;
}

std::vector<ProviderId> SettlementEngine::providers() const {
  std::vector<ProviderId> out;
  out.reserve(ledgers_.size());
  for (const auto& [p, l] : ledgers_) out.push_back(p);
  return out;
}

}  // namespace openspace
