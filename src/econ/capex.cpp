#include <openspace/econ/capex.hpp>

#include <openspace/geo/error.hpp>

namespace openspace {

double SatelliteCostModel::totalMassKg() const {
  double mass = busMassKg;
  for (const TerminalSpec& t : terminals) mass += t.massKg;
  return mass;
}

double SatelliteCostModel::unitCostUsd() const {
  double cost = busCostUsd + integrationCostUsd + fccLicensingUsd;
  for (const TerminalSpec& t : terminals) cost += t.unitCostUsd;
  cost += totalMassKg() * launchUsdPerKg;
  return cost;
}

double DeploymentPlan::capexUsd() const {
  return satellites * satelliteModel.unitCostUsd() +
         groundStations * stationModel.unitCostUsd();
}

CollaborationCosts collaborationCosts(int providers, int totalSatellites,
                                      int totalStations,
                                      const SatelliteCostModel& satModel,
                                      const GroundStationCostModel& gsModel) {
  if (providers <= 0 || totalSatellites <= 0 || totalStations < 0) {
    throw InvalidArgumentError("collaborationCosts: non-positive inputs");
  }
  CollaborationCosts out;
  out.monolithicCapexUsd = totalSatellites * satModel.unitCostUsd() +
                           totalStations * gsModel.unitCostUsd();

  // Even split with remainders assigned to the first providers; the
  // per-provider figure reported is the largest share (worst case to join).
  const int satBase = totalSatellites / providers;
  const int satExtra = totalSatellites % providers;
  const int gsBase = totalStations / providers;
  const int gsExtra = totalStations % providers;

  double total = 0.0;
  double maxShare = 0.0;
  for (int p = 0; p < providers; ++p) {
    const int sats = satBase + (p < satExtra ? 1 : 0);
    const int stations = gsBase + (p < gsExtra ? 1 : 0);
    const double share =
        sats * satModel.unitCostUsd() + stations * gsModel.unitCostUsd();
    total += share;
    maxShare = std::max(maxShare, share);
  }
  out.perProviderCapexUsd = maxShare;
  out.totalCollaborativeUsd = total;
  return out;
}

SatelliteCostModel rfOnlySatellite() {
  SatelliteCostModel m;
  m.terminals = {terminals::sBandIsl(), terminals::uhfIsl(), terminals::kuGround()};
  return m;
}

SatelliteCostModel laserEquippedSatellite() {
  SatelliteCostModel m;
  m.terminals = {terminals::sBandIsl(), terminals::uhfIsl(), terminals::kuGround(),
                 terminals::laserIsl(), terminals::laserIsl()};
  return m;
}

}  // namespace openspace
