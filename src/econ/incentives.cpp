#include <openspace/econ/incentives.hpp>

#include <algorithm>
#include <cmath>
#include <numeric>

#include <openspace/geo/error.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/snapshot.hpp>

namespace openspace {

bool CoalitionAnalysis::selfEnforcing() const {
  return std::all_of(members.begin(), members.end(), [](const MemberIncentive& m) {
    return m.requiredTransferUsd <= 1e-9;
  });
}

namespace {

/// Coverage of the union of several fleets against a fixed sample set of
/// surface points (shared points make subset coverages comparable and the
/// Shapley marginals non-negative).
class CoverageOracle {
 public:
  CoverageOracle(const std::vector<CoalitionMember>& members, double tSeconds,
                 double minElevationRad, int samples, Rng& rng)
      : memberSeen_(members.size()) {
    // Precompute, per member, which sample points it covers.
    std::vector<Vec3> points;
    points.reserve(static_cast<std::size_t>(samples));
    for (int i = 0; i < samples; ++i) {
      points.push_back(rng.unitSphere() * wgs84::kMeanRadiusM);
    }
    for (std::size_t m = 0; m < members.size(); ++m) {
      const auto snap =
          SnapshotCache::global().at(members[m].fleet, tSeconds);
      const std::vector<Vec3>& eci = snap->eci();
      memberSeen_[m].assign(points.size(), false);
      for (std::size_t p = 0; p < points.size(); ++p) {
        for (const Vec3& sat : eci) {
          if (elevationAngleRad(points[p], sat) >= minElevationRad) {
            memberSeen_[m][p] = true;
            break;
          }
        }
      }
    }
    samples_ = points.size();
  }

  /// Coverage fraction of the union over `subset` (member indices).
  double coverage(const std::vector<std::size_t>& subset) const {
    if (subset.empty() || samples_ == 0) return 0.0;
    std::size_t covered = 0;
    for (std::size_t p = 0; p < samples_; ++p) {
      for (const std::size_t m : subset) {
        if (memberSeen_[m][p]) {
          ++covered;
          break;
        }
      }
    }
    return static_cast<double>(covered) / static_cast<double>(samples_);
  }

  double single(std::size_t m) const { return coverage({m}); }

 private:
  std::vector<std::vector<bool>> memberSeen_;
  std::size_t samples_ = 0;
};

}  // namespace

CoalitionAnalysis analyzeCoalition(const std::vector<CoalitionMember>& members,
                                   double marketUsd, double tSeconds,
                                   double minElevationRad, int coverageSamples,
                                   int shapleySamples, Rng& rng,
                                   double qualityExponent) {
  if (members.empty()) {
    throw InvalidArgumentError("analyzeCoalition: empty coalition");
  }
  if (marketUsd <= 0.0 || coverageSamples <= 0 || shapleySamples <= 0) {
    throw InvalidArgumentError("analyzeCoalition: non-positive parameters");
  }
  if (qualityExponent < 1.0) {
    throw InvalidArgumentError(
        "analyzeCoalition: quality exponent must be >= 1");
  }
  const auto revenue = [&](double coverage) {
    return marketUsd * std::pow(coverage, qualityExponent);
  };

  const CoverageOracle oracle(members, tSeconds, minElevationRad,
                              coverageSamples, rng);
  const std::size_t n = members.size();

  CoalitionAnalysis out;
  std::vector<std::size_t> everyone(n);
  std::iota(everyone.begin(), everyone.end(), 0u);
  out.coalitionCoverage = oracle.coverage(everyone);
  out.coalitionRevenueUsd = revenue(out.coalitionCoverage);

  // Sampled Shapley: average marginal coverage contribution over random
  // join orders.
  std::vector<double> marginal(n, 0.0);
  std::vector<std::size_t> order(everyone);
  for (int s = 0; s < shapleySamples; ++s) {
    // Fisher-Yates with the shared Rng.
    for (std::size_t i = n; i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap(order[i - 1], order[j]);
    }
    std::vector<std::size_t> prefix;
    double prev = 0.0;
    for (const std::size_t m : order) {
      prefix.push_back(m);
      const double cov = oracle.coverage(prefix);
      marginal[m] += cov - prev;
      prev = cov;
    }
  }
  double totalMarginal = 0.0;
  for (double& v : marginal) {
    v /= shapleySamples;
    totalMarginal += v;
  }

  double bestSingle = 0.0;
  for (std::size_t m = 0; m < n; ++m) {
    MemberIncentive mi;
    mi.name = members[m].name;
    mi.standaloneCoverage = oracle.single(m);
    mi.standaloneRevenueUsd = revenue(mi.standaloneCoverage);
    mi.shapleyShare =
        (totalMarginal > 0.0) ? marginal[m] / totalMarginal : 1.0 / static_cast<double>(n);
    mi.coalitionRevenueUsd = mi.shapleyShare * out.coalitionRevenueUsd;
    mi.requiredTransferUsd =
        std::max(0.0, mi.standaloneRevenueUsd - mi.coalitionRevenueUsd);
    out.sumStandaloneRevenueUsd += mi.standaloneRevenueUsd;
    bestSingle = std::max(bestSingle, mi.standaloneCoverage);
    out.members.push_back(std::move(mi));
  }
  out.coverageSynergy = out.coalitionCoverage - bestSingle;
  return out;
}

}  // namespace openspace
