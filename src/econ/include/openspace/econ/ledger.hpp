// Traffic accounting and settlement (paper §3).
//
// The OpenSpace cost model: the home ISP controls the full route of its
// users' traffic, so "the volume of traffic along this path is tracked by
// all parties involved to create an easily cross-verifiable account of the
// extent to which any given ISP's traffic was carried by the rest of the
// network." Monetary rates are bilateral, like BGP transit agreements.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include <openspace/routing/route.hpp>

namespace openspace {

/// One provider's view of carried traffic: (carrier, trafficOwner) -> bytes.
class TrafficLedger {
 public:
  explicit TrafficLedger(ProviderId observer) : observer_(observer) {}

  /// Record that `carrier` carried `bytes` of traffic owned by `owner`.
  /// Throws InvalidArgumentError for negative byte counts.
  void record(ProviderId carrier, ProviderId owner, double bytes);

  /// Bytes `carrier` carried for `owner` according to this observer.
  double carriedBytes(ProviderId carrier, ProviderId owner) const noexcept;

  /// Total bytes carried by `carrier` for anyone but itself.
  double totalTransitBytes(ProviderId carrier) const noexcept;

  ProviderId observer() const noexcept { return observer_; }
  const std::map<std::pair<ProviderId, ProviderId>, double>& entries()
      const noexcept {
    return entries_;
  }

 private:
  ProviderId observer_;
  std::map<std::pair<ProviderId, ProviderId>, double> entries_;
};

/// A bilateral tariff: what `carrier` charges `owner` per GB of transit.
struct Tariff {
  ProviderId carrier{};
  ProviderId owner{};  ///< 0 = default rate for any owner.
  double usdPerGb = 0.0;
};

/// A settlement line item.
struct SettlementItem {
  ProviderId payer{};    ///< Traffic owner.
  ProviderId payee{};    ///< Carrier.
  double bytes = 0.0;
  double amountUsd = 0.0;
};

/// A detected peering opportunity (§3: providers routing similar volumes
/// through each other "may decide to peer").
struct PeeringSuggestion {
  ProviderId a{};
  ProviderId b{};
  double aCarriedForB = 0.0;  ///< units: bytes
  double bCarriedForA = 0.0;  ///< units: bytes
  double symmetry = 0.0;      ///< min/max of the two volumes, in [0, 1].
};

/// Network-wide accounting engine: maintains every provider's ledger,
/// attributes route traffic to carriers, cross-verifies, and settles.
class SettlementEngine {
 public:
  /// Register a provider (creates its ledger). Idempotent.
  void addProvider(ProviderId p);

  /// Set a bilateral (or default, owner == 0) transit tariff.
  /// Throws InvalidArgumentError for negative rates.
  void setTariff(const Tariff& t);

  /// Tariff `carrier` charges `owner` (bilateral if set, else carrier's
  /// default, else 0).
  double tariffUsdPerGb(ProviderId carrier, ProviderId owner) const noexcept;

  /// Attribute `bytes` of `owner` traffic along `route` in `graph`: for
  /// each hop, the carrier is the provider of the transmitting (upstream)
  /// node; hops carried by `owner` itself are free. Every involved party's
  /// ledger records every hop (full-path visibility, §3).
  void recordRouteTraffic(const NetworkGraph& graph, const Route& route,
                          ProviderId owner, double bytes);

  /// True if all providers' ledgers agree on every (carrier, owner) pair
  /// within `toleranceBytes`.
  bool crossVerify(double toleranceBytes = 0.5) const;

  /// Compute who owes whom: sum of carried bytes x tariff.
  std::vector<SettlementItem> settle() const;

  /// Pairs of providers whose mutual carriage symmetry exceeds
  /// `minSymmetry` and whose volumes exceed `minBytes` in both directions.
  std::vector<PeeringSuggestion> recommendPeering(double minSymmetry = 0.7,
                                                  double minBytes = 1.0) const;

  const TrafficLedger& ledger(ProviderId p) const;
  std::vector<ProviderId> providers() const;

 private:
  std::map<ProviderId, TrafficLedger> ledgers_;
  std::map<std::pair<ProviderId, ProviderId>, double> tariffs_;
};

}  // namespace openspace
