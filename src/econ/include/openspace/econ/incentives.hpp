// Collaboration incentives (paper §5(4)).
//
// "How can larger satellite provider companies be incentivized to join
// OpenSpace and collaborate with smaller providers? ... it is worth
// expanding the cost model presented in Section 3 to include an incentive
// for this collaboration."
//
// Model: a provider's revenue is marketUsd * coverage^q with q > 1 (the
// continuity premium: the paper notes patchwork coverage "for a patchwork
// of regions around the globe rather than continuous global coverage" is
// commercially weak, so revenue grows superlinearly in coverage). Inside a
// coalition the pooled fleet's coverage is sold once and split among
// members by their (sampled-Shapley) marginal contribution.
// analyzeCoalition() asks, per provider: is my coalition share at least my
// standalone revenue — and if not, what side transfer makes joining
// rational (the §5(4) incentive)?
#pragma once

#include <string>
#include <vector>

#include <openspace/coverage/coverage.hpp>

namespace openspace {

/// One provider's fleet for the incentive analysis.
struct CoalitionMember {
  std::string name;
  std::vector<OrbitalElements> fleet;
};

/// Per-member outcome.
struct MemberIncentive {
  std::string name;
  double standaloneCoverage = 0.0;
  double standaloneRevenueUsd = 0.0;
  double shapleyShare = 0.0;         ///< Fraction of coalition revenue.
  double coalitionRevenueUsd = 0.0;  ///< shapleyShare * total revenue.
  /// Transfer (> 0) needed on top of the Shapley share to match the
  /// standalone revenue. Zero when joining is already rational.
  double requiredTransferUsd = 0.0;
};

/// Full analysis result.
struct CoalitionAnalysis {
  double coalitionCoverage = 0.0;
  double coalitionRevenueUsd = 0.0;
  double sumStandaloneRevenueUsd = 0.0;
  /// Coverage synergy: union coverage minus the best single member's.
  double coverageSynergy = 0.0;
  std::vector<MemberIncentive> members;

  /// True if every member's Shapley share >= its standalone revenue (the
  /// coalition is stable without side payments).
  bool selfEnforcing() const;
};

/// Run the analysis: coverage via Monte-Carlo sampling at time `tSeconds`
/// with mask `minElevationRad`; Shapley values estimated with
/// `shapleySamples` random permutations (deterministic given rng).
/// Throws InvalidArgumentError for an empty coalition, non-positive market
/// size or samples.
/// `qualityExponent` (> 1 for a continuity premium, default 2) controls how
/// strongly revenue rewards contiguous coverage.
CoalitionAnalysis analyzeCoalition(const std::vector<CoalitionMember>& members,
                                   double marketUsd, double tSeconds,
                                   double minElevationRad, int coverageSamples,
                                   int shapleySamples, Rng& rng,
                                   double qualityExponent = 2.0);

}  // namespace openspace
