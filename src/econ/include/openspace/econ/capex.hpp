// Capital-expenditure model (paper §3).
//
// "Manufacturing and launching satellites poses a significant cost, due to
// cost of materials, the expertise required ..., paying for licensing
// requirements, and launching and maneuvering satellites into the desired
// orbit." Anchors from the paper: the FCC's proposed small-satellite
// regulatory fee of ~$12,145, and the ~$500k laser terminal premium. The
// model exists to quantify §4's thesis: collaboration lets small providers
// reach service viability at a fraction of the go-it-alone cost.
#pragma once

#include <vector>

#include <openspace/phy/terminal.hpp>

namespace openspace {

/// Cost parameters (USD) for building + flying one satellite class.
struct SatelliteCostModel {
  double busCostUsd = 1.2e6;         ///< Structure, power, ADCS, OBC.
  double integrationCostUsd = 0.3e6; ///< Assembly, test, campaign.
  double launchUsdPerKg = 5'500.0;   ///< Rideshare-class pricing.
  double busMassKg = 95.0;           ///< Mass before comm terminals.
  double fccLicensingUsd = 12'145.0; ///< Paper's FCC small-sat fee.
  std::vector<TerminalSpec> terminals;  ///< Comm payload (adds cost + mass).

  /// Total unit cost: bus + integration + terminals + launch(mass) + fee.
  double unitCostUsd() const;
  /// Total launch mass including terminals.
  double totalMassKg() const;
};

/// Ground segment cost parameters.
struct GroundStationCostModel {
  double siteCostUsd = 1.5e6;      ///< Land, civil works, backhaul.
  double antennaCostUsd = 650'000; ///< The OS-KU-GS class dish.
  double annualOpexUsd = 200'000;

  double unitCostUsd() const { return siteCostUsd + antennaCostUsd; }
};

/// A provider's deployment plan.
struct DeploymentPlan {
  int satellites = 0;
  int groundStations = 0;
  SatelliteCostModel satelliteModel;
  GroundStationCostModel stationModel;

  double capexUsd() const;
};

/// Cost of a collaboration of `providers` splitting `totalSatellites` and
/// `totalStations` evenly (remainders to the first providers); per-provider
/// outlay is what a small firm must raise up-front to join OpenSpace,
/// versus the full-constellation cost a monolith must raise.
struct CollaborationCosts {
  double monolithicCapexUsd = 0.0;    ///< One firm builds everything.
  double perProviderCapexUsd = 0.0;   ///< Max single share under the split.
  double totalCollaborativeUsd = 0.0; ///< Sum over providers (== monolithic
                                      ///< up to integer split effects).
};

/// Throws InvalidArgumentError for non-positive providers/satellites.
CollaborationCosts collaborationCosts(int providers, int totalSatellites,
                                      int totalStations,
                                      const SatelliteCostModel& satModel,
                                      const GroundStationCostModel& gsModel);

/// Standard cost models: an RF-only smallsat and a laser-equipped one
/// (carries 2 laser terminals + S-band, per typical +grid fits).
SatelliteCostModel rfOnlySatellite();
SatelliteCostModel laserEquippedSatellite();

}  // namespace openspace
