#include <openspace/net/event.hpp>

#include <utility>

#include <openspace/geo/error.hpp>

namespace openspace {

void EventQueue::schedule(double tSeconds, Handler fn) {
  if (tSeconds < now_) {
    throw InvalidArgumentError("EventQueue::schedule: time is in the past");
  }
  events_.push(Ev{tSeconds, seq_++, std::move(fn)});
}

void EventQueue::scheduleIn(double delayS, Handler fn) {
  schedule(now_ + delayS, std::move(fn));
}

bool EventQueue::step() {
  if (events_.empty()) return false;
  // priority_queue::top is const; the handler must be moved out before pop.
  Ev ev = std::move(const_cast<Ev&>(events_.top()));
  events_.pop();
  now_ = ev.t;
  ev.fn();
  return true;
}

std::size_t EventQueue::run(double untilS) {
  std::size_t n = 0;
  while (!events_.empty() && events_.top().t <= untilS) {
    step();
    ++n;
  }
  if (now_ < untilS) now_ = untilS;
  return n;
}

std::size_t EventQueue::runAll() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

}  // namespace openspace
