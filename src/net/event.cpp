#include <openspace/net/event.hpp>

#include <utility>

#include <openspace/geo/error.hpp>

namespace openspace {

EventId EventQueue::schedule(double tSeconds, Handler fn) {
  if (tSeconds < nowS_) {
    throw InvalidArgumentError("EventQueue::schedule: time is in the past");
  }
  const std::uint64_t seq = seq_++;
  events_.push(Ev{tSeconds, seq, std::move(fn)});
  live_.insert(seq);
  return EventId{seq + 1};  // id 0 stays the reserved "unset" value
}

EventId EventQueue::scheduleIn(double delayS, Handler fn) {
  return schedule(nowS_ + delayS, std::move(fn));
}

bool EventQueue::cancel(EventId id) {
  if (!id.isValid()) return false;
  return live_.erase(id.value() - 1) > 0;
}

void EventQueue::prune() {
  while (!events_.empty() && !live_.contains(events_.top().seq)) {
    events_.pop();
  }
}

bool EventQueue::step() {
  prune();
  if (events_.empty()) return false;
  // priority_queue::top is const; the handler must be moved out before pop.
  Ev ev = std::move(const_cast<Ev&>(events_.top()));
  events_.pop();
  live_.erase(ev.seq);
  nowS_ = ev.tS;
  ev.fn();
  return true;
}

std::size_t EventQueue::run(double untilS) {
  std::size_t n = 0;
  prune();
  while (!events_.empty() && events_.top().tS <= untilS) {
    step();
    ++n;
    prune();
  }
  if (nowS_ < untilS) nowS_ = untilS;
  return n;
}

std::size_t EventQueue::runAll() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

}  // namespace openspace
