#include <openspace/net/event.hpp>

#include <utility>

#include <openspace/geo/error.hpp>

namespace openspace {

void EventQueue::schedule(double tSeconds, Handler fn) {
  if (tSeconds < nowS_) {
    throw InvalidArgumentError("EventQueue::schedule: time is in the past");
  }
  events_.push(Ev{tSeconds, seq_++, std::move(fn)});
}

void EventQueue::scheduleIn(double delayS, Handler fn) {
  schedule(nowS_ + delayS, std::move(fn));
}

bool EventQueue::step() {
  if (events_.empty()) return false;
  // priority_queue::top is const; the handler must be moved out before pop.
  Ev ev = std::move(const_cast<Ev&>(events_.top()));
  events_.pop();
  nowS_ = ev.tS;
  ev.fn();
  return true;
}

std::size_t EventQueue::run(double untilS) {
  std::size_t n = 0;
  while (!events_.empty() && events_.top().tS <= untilS) {
    step();
    ++n;
  }
  if (nowS_ < untilS) nowS_ = untilS;
  return n;
}

std::size_t EventQueue::runAll() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

}  // namespace openspace
