#include <openspace/net/flows.hpp>

#include <openspace/geo/error.hpp>

namespace openspace {

FlowGenerator::FlowGenerator(EventQueue& events, Rng& rng, Sink sink)
    : events_(events), rng_(rng), sink_(std::move(sink)) {
  if (!sink_) throw InvalidArgumentError("FlowGenerator: null sink");
}

void FlowGenerator::addFlow(const FlowSpec& flow) {
  if (flow.rateBps <= 0.0 || flow.packetBits <= 0.0) {
    throw InvalidArgumentError("FlowGenerator: rate and packet size must be > 0");
  }
  if (flow.stopS <= flow.startS) return;  // degenerate: no packets
  scheduleNext(flow, flow.startS);
}

void FlowGenerator::scheduleNext(const FlowSpec& flow, double afterS) {
  const double meanGapS = flow.packetBits / flow.rateBps;
  const double t = afterS + rng_.exponential(1.0 / meanGapS);
  if (t >= flow.stopS) return;
  events_.schedule(t, [this, flow, t]() {
    Packet p;
    p.id = nextId_++;
    p.src = flow.src;
    p.dst = flow.dst;
    p.sizeBits = flow.packetBits;
    p.createdAtS = t;
    p.qos = flow.qos;
    p.homeProvider = flow.homeProvider;
    ++emitted_;
    sink_(p);
    scheduleNext(flow, t);
  });
}

}  // namespace openspace
