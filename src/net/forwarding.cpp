#include <openspace/net/forwarding.hpp>

#include <openspace/geo/error.hpp>

namespace openspace {

ForwardingEngine::ForwardingEngine(const NetworkGraph& graph, EventQueue& events,
                                   QueueConfig cfg)
    : graph_(graph), events_(events), cfg_(cfg) {
  if (cfg_.maxQueueBits <= 0.0) {
    throw InvalidArgumentError("ForwardingEngine: queue limit must be > 0");
  }
}

void ForwardingEngine::onComplete(std::function<void(const DeliveryRecord&)> cb) {
  onComplete_ = std::move(cb);
}

ForwardingEngine::Tx& ForwardingEngine::txFor(DirectedLinkId id) {
  return tx_[id];
}

double ForwardingEngine::bitsCarried(LinkId id) const {
  const auto it = carriedBits_.find(id);
  return it == carriedBits_.end() ? 0.0 : it->second;
}

double ForwardingEngine::backlogBits(DirectedLinkId id) const {
  const auto it = tx_.find(id);
  return it == tx_.end() ? 0.0 : it->second.backlogBits;
}

void ForwardingEngine::send(const Packet& pkt, const Route& route) {
  if (!route.valid()) {
    finish(InFlight{pkt, route, 0}, false, DropReason::NoRoute);
    return;
  }
  if (route.nodes.front() != pkt.src || route.nodes.back() != pkt.dst) {
    throw InvalidArgumentError(
        "ForwardingEngine::send: route endpoints do not match packet");
  }
  if (pkt.sizeBits <= 0.0) {
    throw InvalidArgumentError("ForwardingEngine::send: packet size must be > 0");
  }
  arriveAtNode(InFlight{pkt, route, 0}, pkt.src);
}

void ForwardingEngine::arriveAtNode(InFlight f, NodeId node) {
  if (node == f.pkt.dst) {
    finish(f, true, DropReason::None);
    return;
  }
  if (f.hop >= f.route.links.size()) {
    finish(f, false, DropReason::NoRoute);  // route exhausted short of dst
    return;
  }
  const LinkId lid = f.route.links[f.hop];
  const Link& link = graph_.link(lid);
  if (link.a != node && link.b != node) {
    throw StateError("ForwardingEngine: route link not incident to node");
  }
  const DirectedLinkId did = directedFrom(link, node);
  Tx& tx = txFor(did);
  const double now = events_.now();

  // Drain the modeled backlog to what will still be queued at `now`.
  if (tx.busyUntilS <= now) {
    tx.backlogBits = 0.0;
  }
  if (tx.backlogBits + f.pkt.sizeBits > cfg_.maxQueueBits) {
    finish(f, false, DropReason::QueueOverflow);
    return;
  }

  const double start = std::max(now, tx.busyUntilS);
  const double txTime = f.pkt.sizeBits / link.capacityBps;
  tx.busyUntilS = start + txTime;
  tx.backlogBits += f.pkt.sizeBits;
  carriedBits_[lid] += f.pkt.sizeBits;

  // Backlog drains when serialization finishes; arrival happens one
  // propagation delay later.
  const double txDone = tx.busyUntilS;
  const double arrival = txDone + link.propagationDelayS;
  const NodeId next = link.otherEnd(node);
  const double sizeBits = f.pkt.sizeBits;
  events_.schedule(txDone, [this, did, sizeBits]() {
    Tx& t = txFor(did);
    t.backlogBits = std::max(0.0, t.backlogBits - sizeBits);
  });
  f.hop += 1;
  events_.schedule(arrival, [this, f = std::move(f), next]() mutable {
    arriveAtNode(std::move(f), next);
  });
}

void ForwardingEngine::finish(const InFlight& f, bool deliveredOk,
                              DropReason reason) {
  DeliveryRecord rec;
  rec.packet = f.pkt;
  rec.delivered = deliveredOk;
  rec.drop = reason;
  rec.hops = static_cast<int>(f.hop);
  if (deliveredOk) {
    rec.deliveredAtS = events_.now();
    rec.latencyS = rec.deliveredAtS - f.pkt.createdAtS;
    stats_.add(rec.latencyS);
    ++delivered_;
  } else {
    stats_.addLoss();
    ++dropped_;
  }
  if (onComplete_) onComplete_(rec);
}

}  // namespace openspace
