// Synthetic traffic generation.
//
// The paper (§5(1)) calls for "modelling a potential user base along with
// potential user traffic patterns"; these generators provide the synthetic
// equivalents: Poisson packet arrivals per flow, and constant-rate flows
// for saturation studies.
#pragma once

#include <functional>

#include <openspace/geo/rng.hpp>
#include <openspace/net/event.hpp>
#include <openspace/net/packet.hpp>

namespace openspace {

/// A unidirectional traffic flow specification.
struct FlowSpec {
  NodeId src{};
  NodeId dst{};
  double rateBps = 1e6;        ///< Mean offered load.
  double packetBits = 12'000;  ///< Packet size.
  QosClass qos = QosClass::Standard;
  ProviderId homeProvider{};
  double startS = 0.0;
  double stopS = 0.0;  ///< Exclusive; <= startS means no packets.
};

/// Emits packets for a set of flows into a sink callback via the event
/// queue. Poisson arrivals: exponential inter-packet gaps with mean
/// packetBits / rateBps. Deterministic given the Rng.
class FlowGenerator {
 public:
  using Sink = std::function<void(const Packet&)>;

  /// Throws InvalidArgumentError on flows with non-positive rate/size.
  FlowGenerator(EventQueue& events, Rng& rng, Sink sink);

  /// Register a flow; packets are scheduled lazily (one event at a time).
  void addFlow(const FlowSpec& flow);

  std::size_t packetsEmitted() const noexcept { return emitted_; }

 private:
  void scheduleNext(const FlowSpec& flow, double afterS);

  EventQueue& events_;
  Rng& rng_;
  Sink sink_;
  std::size_t emitted_ = 0;
  PacketId nextId_ = 1;
};

}  // namespace openspace
