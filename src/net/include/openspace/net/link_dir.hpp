// Typed link directions.
//
// A topology Link is undirected; every transmitter, queue and utilization
// counter lives on one *direction* of it. Those used to be addressed by a
// raw `bool fromA` flag plus a hand-rolled `link id * 2 + dir` map key at
// every call site — exactly the kind of convention that silently flips when
// one caller disagrees about what `true` means. LinkDir and DirectedLinkId
// make the direction a type: the a->b and b->a transmitters are distinct,
// hashable identities, and the only way to get one from a node is to say
// which node you are leaving.
#pragma once

#include <cstdint>
#include <functional>

#include <openspace/geo/error.hpp>
#include <openspace/topology/link.hpp>

namespace openspace {

/// One direction of an undirected link: from endpoint `a` toward `b`, or
/// the reverse.
enum class LinkDir : std::uint8_t {
  AtoB = 0,
  BtoA = 1,
};

/// The opposite direction.
[[nodiscard]] constexpr LinkDir reverse(LinkDir d) noexcept {
  return d == LinkDir::AtoB ? LinkDir::BtoA : LinkDir::AtoB;
}

/// One direction of one link: the identity of a transmitter.
struct DirectedLinkId {
  LinkId link{};
  LinkDir dir = LinkDir::AtoB;

  /// Dense packing (link id * 2 + dir) for flat maps and arrays; the typed
  /// replacement for the raw key arithmetic callers used to open-code.
  [[nodiscard]] constexpr std::uint64_t key() const noexcept {
    return static_cast<std::uint64_t>(link.value()) * 2 +
           static_cast<std::uint64_t>(dir);
  }

  [[nodiscard]] constexpr DirectedLinkId reversed() const noexcept {
    return DirectedLinkId{link, reverse(dir)};
  }

  friend constexpr bool operator==(DirectedLinkId, DirectedLinkId) noexcept =
      default;
};

/// Direction in which `link` is traversed when leaving node `from`. Throws
/// InvalidArgumentError if `from` is not an endpoint of the link.
[[nodiscard]] inline LinkDir directionFrom(const Link& link, NodeId from) {
  if (link.a == from) return LinkDir::AtoB;
  if (link.b == from) return LinkDir::BtoA;
  throw InvalidArgumentError("directionFrom: node is not an endpoint of link");
}

/// The transmitter `from` uses when sending over `link`.
[[nodiscard]] inline DirectedLinkId directedFrom(const Link& link, NodeId from) {
  return DirectedLinkId{link.id, directionFrom(link, from)};
}

}  // namespace openspace

template <>
struct std::hash<openspace::DirectedLinkId> {
  std::size_t operator()(openspace::DirectedLinkId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.key());
  }
};
