// Streaming latency/loss statistics.
#pragma once

#include <cstddef>
#include <vector>

namespace openspace {

/// Accumulates latency samples and computes summary statistics.
/// Percentiles use the nearest-rank method on the sorted sample set.
class LatencyStats {
 public:
  void add(double latencyS);
  void addLoss() noexcept { ++losses_; }

  std::size_t count() const noexcept { return samples_.size(); }
  std::size_t losses() const noexcept { return losses_; }
  double lossRate() const noexcept;
  double meanS() const;
  double minS() const;
  double maxS() const;
  /// quantile in [0, 1]; throws InvalidArgumentError outside, NotFoundError when
  /// empty.
  double percentileS(double quantile) const;
  double p50S() const { return percentileS(0.50); }
  double p95S() const { return percentileS(0.95); }
  double p99S() const { return percentileS(0.99); }

 private:
  void ensureSorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  std::size_t losses_ = 0;
  double sumS_ = 0.0;
};

}  // namespace openspace
