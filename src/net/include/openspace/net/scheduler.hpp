// High-throughput event scheduler: a hierarchical timer wheel.
//
// EventQueue (event.hpp) is the executable spec: a binary heap of
// heap-allocated std::function closures, O(log n) per operation with an
// allocation per event. At flow-simulator scale (tens of millions of
// events) both costs dominate the run. TimerWheel replaces them with
//
//  * POD event records in a slab arena — Payload must be trivially
//    copyable, records are recycled through a free list, and steady-state
//    scheduling allocates nothing;
//  * a hierarchy of 64-slot wheels (6 bits per level, 8 levels = 48 bits
//    of tick horizon): schedule/cancel are O(1), and advancing to the next
//    occupied instant is a bitmap scan (one rotr + countr_zero per level),
//    not a heap percolation.
//
// Ordering contract — identical to EventQueue's, and property-tested
// against it: events fire in ascending timestamp order, FIFO for equal
// timestamps. Timestamps are exact doubles; the tick quantization only
// buckets records, it never rounds firing times. Records that share a tick
// are drained through a small sorted buffer keyed by (tS, seq), so the
// global firing order is by (tS, seq) exactly as the legacy heap orders.
//
// Cancellation is O(1) and generation-checked: cancel() marks the record
// dead and invalidates its handle; the slot chains drop dead records
// lazily as the wheel sweeps over them.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include <openspace/core/ids.hpp>
#include <openspace/geo/error.hpp>

namespace openspace {

namespace detail {
struct TimerEventIdTag {};
}  // namespace detail

/// Cancellable handle for one TimerWheel event: packs a slab slot and a
/// generation stamp, so handles to fired/cancelled (recycled) records are
/// detected as stale instead of cancelling an unrelated event. A
/// default-constructed id is unset.
using TimerEventId = TaggedId<detail::TimerEventIdTag, std::uint64_t>;

/// Hierarchical timer wheel over POD payloads. `fire` callbacks receive
/// (double tS, const Payload&).
template <class Payload>
class TimerWheel {
  static_assert(std::is_trivially_copyable_v<Payload>,
                "TimerWheel payloads are slab-stored PODs; wrap non-trivial "
                "state in an index into caller-owned storage");

 public:
  /// `tickSeconds` is the bucketing granularity of level 0 (it bounds the
  /// sorted-buffer size per instant, not timestamp precision) and
  /// `originSeconds` is the initial now(). Throws InvalidArgumentError for
  /// a non-positive tick.
  explicit TimerWheel(double tickSeconds = 1e-6, double originSeconds = 0.0)
      : tickS_(tickSeconds), originS_(originSeconds), nowS_(originSeconds) {
    if (!(tickS_ > 0.0)) {
      throw InvalidArgumentError("TimerWheel: tick must be > 0");
    }
    for (auto& level : slots_) level.fill(kNil);
    bitmap_.fill(0);
  }

  /// Schedule `payload` at absolute time `tS`. Throws InvalidArgumentError
  /// if tS is before now() (no time travel — same contract as EventQueue).
  TimerEventId schedule(double tS, const Payload& payload) {
    if (tS < nowS_) {
      throw InvalidArgumentError("TimerWheel::schedule: time is in the past");
    }
    std::uint64_t tick = tickOf(tS);
    // now() can sit mid-tick after a bounded run(); a tick the sweep has
    // already drained still accepts new records at times >= now() — they
    // join the current instant's sorted buffer.
    if (tick < currentTick_) tick = currentTick_;
    const std::uint32_t idx = allocRecord();
    Rec& r = slab_[idx];
    r.tS = tS;
    r.seq = seq_++;
    r.tick = tick;
    r.live = 1;
    r.payload = payload;
    ++pending_;
    if (tick == currentTick_) {
      insertIntoDue(idx);
    } else {
      hashIn(idx, currentTick_);
    }
    return TimerEventId{(static_cast<std::uint64_t>(r.gen) << 32) |
                        (static_cast<std::uint64_t>(idx) + 1)};
  }

  /// Schedule `payload` `delayS` seconds from now.
  TimerEventId scheduleIn(double delayS, const Payload& payload) {
    return schedule(nowS_ + delayS, payload);
  }

  /// Cancel a pending event. Returns true if it was still pending; false
  /// for fired, already-cancelled, or stale/unset handles. O(1).
  bool cancel(TimerEventId id) {
    if (!id.isValid()) return false;
    const std::uint64_t raw = id.value();
    const std::uint64_t slot = (raw & 0xFFFFFFFFull);
    if (slot == 0 || slot > slab_.size()) return false;
    const std::uint32_t idx = static_cast<std::uint32_t>(slot - 1);
    Rec& r = slab_[idx];
    if (r.gen != static_cast<std::uint32_t>(raw >> 32) || !r.live) return false;
    r.live = 0;  // storage reclaimed lazily when the sweep reaches it
    --pending_;
    return true;
  }

  /// Fire at most one event. Returns false if nothing is pending.
  template <class Fire>
  bool step(Fire&& fire) {
    if (!refill(kNoBound)) return false;
    fireFront(fire);
    return true;
  }

  /// Fire every event with tS <= untilS, then advance now() to untilS.
  /// Returns the number of events fired.
  template <class Fire>
  std::size_t run(double untilS, Fire&& fire) {
    std::size_t n = 0;
    const std::uint64_t bound = untilS < nowS_ ? currentTick_ : tickOf(untilS);
    while (refill(bound)) {
      if (slab_[due_[dueCursor_]].tS > untilS) break;
      fireFront(fire);
      ++n;
    }
    if (nowS_ < untilS) nowS_ = untilS;
    return n;
  }

  /// Fire every pending event (no time bound). Returns the count.
  template <class Fire>
  std::size_t runAll(Fire&& fire) {
    std::size_t n = 0;
    while (step(fire)) ++n;
    return n;
  }

  double now() const noexcept { return nowS_; }
  bool empty() const noexcept { return pending_ == 0; }
  std::size_t pending() const noexcept { return pending_; }

 private:
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;  // 64
  static constexpr int kLevels = 8;              // 48-bit tick horizon
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint64_t kNoBound =
      std::numeric_limits<std::uint64_t>::max();

  struct Rec {
    double tS = 0.0;
    std::uint64_t seq = 0;
    std::uint64_t tick = 0;
    std::uint32_t next = kNil;  ///< Slot chain / free list link.
    std::uint32_t gen = 1;      ///< Handle generation; bumped on recycle.
    std::uint8_t live = 0;
    Payload payload{};
  };

  std::uint64_t tickOf(double tS) const noexcept {
    if (tS <= originS_) return 0;
    const double q = (tS - originS_) / tickS_;  // units: tick count
    // Clamp far-future times into the representable horizon; level-7 slots
    // re-hash on every wheel revolution, so huge ticks stay correct.
    constexpr double kMax = 9.0e18;  // units: tick count, < 2^63
    return q >= kMax ? static_cast<std::uint64_t>(kMax)
                     : static_cast<std::uint64_t>(q);
  }

  std::uint32_t allocRecord() {
    if (freeHead_ != kNil) {
      const std::uint32_t idx = freeHead_;
      freeHead_ = slab_[idx].next;
      return idx;
    }
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
  }

  void freeRecord(std::uint32_t idx) {
    Rec& r = slab_[idx];
    r.live = 0;
    ++r.gen;  // invalidate outstanding handles
    r.next = freeHead_;
    freeHead_ = idx;
  }

  /// (level, slot) bucket of a record `delta` ticks ahead of the sweep.
  static std::size_t levelOf(std::uint64_t delta) noexcept {
    const auto level =
        static_cast<std::size_t>(std::bit_width(delta) - 1) / kSlotBits;
    return level < kLevels ? level : kLevels - 1;
  }

  /// Hash a record into its wheel bucket relative to current tick `base`.
  void hashIn(std::uint32_t idx, std::uint64_t base) {
    Rec& r = slab_[idx];
    const std::size_t level = levelOf(r.tick - base);  // delta >= 1
    const auto slot = static_cast<std::size_t>(
        (r.tick >> (kSlotBits * level)) & (kSlots - 1));
    r.next = slots_[level][slot];
    slots_[level][slot] = idx;
    bitmap_[level] |= (1ull << slot);
  }

  /// Insert into the current instant's sorted buffer, keeping (tS, seq)
  /// order. New records always carry the largest seq, so upper_bound on tS
  /// lands them after every equal-time record — the FIFO tie-break.
  void insertIntoDue(std::uint32_t idx) {
    const double tS = slab_[idx].tS;
    const auto pos = std::upper_bound(
        due_.begin() + static_cast<std::ptrdiff_t>(dueCursor_), due_.end(), tS,
        [this](double lhsS, std::uint32_t i) { return lhsS < slab_[i].tS; });
    due_.insert(pos, idx);
  }

  /// Sort freshly loaded due records by (tS, seq).
  void sortDue() {
    std::sort(due_.begin(), due_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                const Rec& ra = slab_[a];
                const Rec& rb = slab_[b];
                return ra.tS < rb.tS || (ra.tS == rb.tS && ra.seq < rb.seq);
              });
  }

  /// Enter tick T (> currentTick_): cascade every level whose block newly
  /// changes, then load T's level-0 slot into the due buffer.
  void enter(std::uint64_t T) {
    // The caller (refill) guarantees the due buffer is fully consumed.
    due_.clear();
    dueCursor_ = 0;
    for (std::size_t level = kLevels - 1; level >= 1; --level) {
      const std::size_t shift = kSlotBits * level;
      if ((currentTick_ >> shift) == (T >> shift)) continue;
      const auto slot = static_cast<std::size_t>((T >> shift) & (kSlots - 1));
      std::uint32_t idx = detach(level, slot);
      while (idx != kNil) {
        const std::uint32_t nxt = slab_[idx].next;
        reinsert(idx, T);
        idx = nxt;
      }
    }
    currentTick_ = T;
    const auto slot0 = static_cast<std::size_t>(T & (kSlots - 1));
    std::uint32_t idx = detach(0, slot0);
    while (idx != kNil) {
      const std::uint32_t nxt = slab_[idx].next;
      reinsert(idx, T);
      idx = nxt;
    }
    sortDue();
  }

  /// Detach a slot's whole chain, clearing its occupancy bit.
  std::uint32_t detach(std::size_t level, std::size_t slot) {
    const std::uint32_t head = slots_[level][slot];
    slots_[level][slot] = kNil;
    bitmap_[level] &= ~(1ull << slot);
    return head;
  }

  /// Re-home one detached record relative to new current tick T.
  void reinsert(std::uint32_t idx, std::uint64_t T) {
    Rec& r = slab_[idx];
    if (!r.live) {
      freeRecord(idx);
      return;
    }
    if (r.tick <= T) {
      due_.push_back(idx);  // due this instant; sorted by the caller
      return;
    }
    hashIn(idx, T);
  }

  /// Ensure due_[dueCursor_] references a live record, advancing the wheel
  /// as far as `boundTick` if needed. Returns false when nothing (more)
  /// fires within the bound.
  bool refill(std::uint64_t boundTick) {
    for (;;) {
      while (dueCursor_ < due_.size()) {
        const std::uint32_t idx = due_[dueCursor_];
        if (slab_[idx].live) return true;
        freeRecord(idx);  // cancelled while queued in the due buffer
        ++dueCursor_;
      }
      if (pending_ == 0) return false;
      const std::uint64_t next = nextOccupiedTick();
      if (next == kNoBound) return false;  // only dead records remained
      if (next > boundTick) {
        // All of (currentTick_, boundTick] is verifiably empty; park the
        // sweep at the bound so a later bounded run resumes cheaply.
        if (boundTick != kNoBound && boundTick > currentTick_)
          enter(boundTick);
        return false;
      }
      enter(next);
    }
  }

  /// Earliest tick > currentTick_ whose slot could hold records: exact at
  /// level 0, block-entry granular at higher levels (entering the block
  /// cascades the slot down, re-running the search).
  std::uint64_t nextOccupiedTick() const {
    std::uint64_t best = kNoBound;
    {
      const auto off = static_cast<int>(currentTick_ & (kSlots - 1));
      const std::uint64_t w = std::rotr(bitmap_[0], off) & ~1ull;
      if (w != 0) {
        best = currentTick_ +
               static_cast<std::uint64_t>(std::countr_zero(w));
      }
    }
    for (std::size_t level = 1; level < kLevels; ++level) {
      const std::size_t shift = kSlotBits * level;
      const std::uint64_t block = currentTick_ >> shift;
      const auto off = static_cast<int>(block & (kSlots - 1));
      const std::uint64_t w = std::rotr(bitmap_[level], off);
      std::uint64_t d;
      if ((w & ~1ull) != 0) {
        d = static_cast<std::uint64_t>(std::countr_zero(w & ~1ull));
      } else if ((w & 1ull) != 0) {
        d = kSlots;  // only wrap-around records: due next revolution
      } else {
        continue;
      }
      const std::uint64_t cand = (block + d) << shift;
      best = std::min(best, cand);
    }
    return best;
  }

  template <class Fire>
  void fireFront(Fire&& fire) {
    const std::uint32_t idx = due_[dueCursor_++];
    const Rec rec = slab_[idx];  // copy out before recycling the slot
    freeRecord(idx);
    --pending_;
    nowS_ = rec.tS;
    fire(rec.tS, rec.payload);
  }

  double tickS_;
  double originS_;
  double nowS_;
  std::uint64_t currentTick_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t pending_ = 0;
  std::vector<Rec> slab_;
  std::uint32_t freeHead_ = kNil;
  std::array<std::array<std::uint32_t, kSlots>, kLevels> slots_;
  std::array<std::uint64_t, kLevels> bitmap_;
  std::vector<std::uint32_t> due_;  ///< currentTick_'s records, (tS, seq) sorted.
  std::size_t dueCursor_ = 0;
};

}  // namespace openspace
