// Packets and delivery accounting.
#pragma once

#include <cstdint>

#include <openspace/routing/route.hpp>

namespace openspace {

using PacketId = std::uint64_t;

/// A simulated datagram.
struct Packet {
  PacketId id = 0;
  NodeId src{};
  NodeId dst{};
  double sizeBits = 12'000.0;  ///< Default ~1500 B MTU.
  double createdAtS = 0.0;
  QosClass qos = QosClass::Standard;
  ProviderId homeProvider{};  ///< The user's home ISP (drives accounting).
};

/// Why a packet failed to deliver.
enum class DropReason { None, QueueOverflow, NoRoute, Ttl };

/// Per-packet delivery record.
struct DeliveryRecord {
  Packet packet;
  bool delivered = false;
  DropReason drop = DropReason::None;
  double deliveredAtS = 0.0;
  double latencyS = 0.0;
  int hops = 0;
};

}  // namespace openspace
