// Discrete-event simulation core.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>

namespace openspace {

/// A monotonic discrete-event queue. Events scheduled for the same time
/// fire in scheduling order (FIFO tie-break), which keeps runs
/// deterministic.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedule `fn` at absolute time `tSeconds`. Throws InvalidArgumentError
  /// if tSeconds is before now() (no time travel).
  void schedule(double tSeconds, Handler fn);

  /// Schedule `fn` `delayS` seconds from now.
  void scheduleIn(double delayS, Handler fn);

  /// Run until the queue empties or simulated time would exceed `untilS`.
  /// Returns the number of events executed.
  std::size_t run(double untilS);

  /// Run every pending event (no time bound).
  std::size_t runAll();

  /// Execute at most one event. Returns false if the queue is empty.
  bool step();

  double now() const noexcept { return nowS_; }
  bool empty() const noexcept { return events_.empty(); }
  std::size_t pending() const noexcept { return events_.size(); }

 private:
  struct Ev {
    double tS;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const noexcept {
      return a.tS > b.tS || (a.tS == b.tS && a.seq > b.seq);
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, Later> events_;
  double nowS_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace openspace
