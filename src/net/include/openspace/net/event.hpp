// Discrete-event simulation core (the legacy executable spec).
//
// EventQueue is the reference scheduler: a (time, sequence) priority queue
// of type-erased handlers. The hierarchical timer wheel in scheduler.hpp is
// the production path for large event counts; property tests pin the wheel's
// firing order to this queue's, so EventQueue stays authoritative for the
// ordering semantics both implement.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>

#include <openspace/core/ids.hpp>

namespace openspace {

namespace detail {
struct EventIdTag {};
}  // namespace detail

/// Cancellable handle for one scheduled event. Ids are unique for the
/// lifetime of their queue (never reused); a default-constructed id is
/// unset.
using EventId = TaggedId<detail::EventIdTag, std::uint64_t>;

/// A monotonic discrete-event queue.
///
/// Ordering guarantee (API contract, shared with TimerWheel): events fire
/// in ascending time, and events scheduled for the *same* time fire in the
/// order they were scheduled (FIFO tie-break). This keeps runs
/// deterministic: a simulation's behavior is a pure function of its inputs,
/// never of container iteration order.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedule `fn` at absolute time `tSeconds`; returns a handle usable
  /// with cancel(). Throws InvalidArgumentError if tSeconds is before
  /// now() (no time travel).
  EventId schedule(double tSeconds, Handler fn);

  /// Schedule `fn` `delayS` seconds from now.
  EventId scheduleIn(double delayS, Handler fn);

  /// Cancel a pending event. Returns true if the event was still pending
  /// (it will not fire); false if it already fired, was already cancelled,
  /// or the id is unset/unknown. O(1) amortized: the entry is dropped
  /// lazily when it surfaces.
  bool cancel(EventId id);

  /// Run until the queue empties or simulated time would exceed `untilS`.
  /// Returns the number of events executed (cancelled events don't count).
  std::size_t run(double untilS);

  /// Run every pending event (no time bound).
  std::size_t runAll();

  /// Execute at most one event. Returns false if the queue is empty.
  bool step();

  double now() const noexcept { return nowS_; }
  bool empty() const noexcept { return live_.empty(); }
  std::size_t pending() const noexcept { return live_.size(); }

 private:
  struct Ev {
    double tS;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const noexcept {
      return a.tS > b.tS || (a.tS == b.tS && a.seq > b.seq);
    }
  };

  /// Drop cancelled entries off the top of the heap.
  void prune();

  std::priority_queue<Ev, std::vector<Ev>, Later> events_;
  /// Sequence numbers of still-pending (not fired, not cancelled) events.
  std::unordered_set<std::uint64_t> live_;
  double nowS_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace openspace
