// Store-and-forward packet transport over a topology snapshot.
//
// Each link direction has one transmitter: packets serialize at link
// capacity, wait in a byte-bounded drop-tail queue while the transmitter
// is busy, then incur the link's propagation delay. This yields real
// queueing under load — the congestion that §2.2 says proactive routing
// cannot anticipate.
#pragma once

#include <functional>
#include <unordered_map>

#include <openspace/net/event.hpp>
#include <openspace/net/link_dir.hpp>
#include <openspace/net/metrics.hpp>
#include <openspace/net/packet.hpp>

namespace openspace {

/// Per-direction transmitter queue limits.
struct QueueConfig {
  double maxQueueBits = 8e6;  ///< ~1 MB buffer per link direction.
};

class ForwardingEngine {
 public:
  /// The graph and event queue must outlive the engine.
  ForwardingEngine(const NetworkGraph& graph, EventQueue& events,
                   QueueConfig cfg = {});

  /// Inject `pkt` at events.now() to travel along `route` (source-routed;
  /// the paper's home-ISP controls the full path, §3). Throws
  /// InvalidArgumentError if the route is invalid or does not start at
  /// pkt.src / end at pkt.dst.
  void send(const Packet& pkt, const Route& route);

  /// Completion callback (delivered or dropped). Optional.
  void onComplete(std::function<void(const DeliveryRecord&)> cb);

  /// Aggregate delivery stats.
  const LatencyStats& stats() const noexcept { return stats_; }
  std::size_t delivered() const noexcept { return delivered_; }
  std::size_t dropped() const noexcept { return dropped_; }

  /// Bits so far offered to each link (both directions), for utilization
  /// estimates feeding the congestion-aware router.
  double bitsCarried(LinkId id) const;

  /// Current queue backlog of one link direction, bits.
  double backlogBits(DirectedLinkId id) const;
  double backlogBits(LinkId id, LinkDir dir) const {
    return backlogBits(DirectedLinkId{id, dir});
  }

 private:
  struct Tx {
    double busyUntilS = 0.0;
    double backlogBits = 0.0;
  };
  struct InFlight {
    Packet pkt;
    Route route;
    std::size_t hop = 0;  ///< Next link index to traverse.
  };

  void arriveAtNode(InFlight f, NodeId node);
  void finish(const InFlight& f, bool delivered, DropReason reason);
  Tx& txFor(DirectedLinkId id);

  const NetworkGraph& graph_;
  EventQueue& events_;
  QueueConfig cfg_;
  std::unordered_map<DirectedLinkId, Tx> tx_;
  std::unordered_map<LinkId, double> carriedBits_;
  std::function<void(const DeliveryRecord&)> onComplete_;
  LatencyStats stats_;
  std::size_t delivered_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace openspace
