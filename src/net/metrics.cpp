#include <openspace/net/metrics.hpp>

#include <algorithm>
#include <cmath>

#include <openspace/geo/error.hpp>

namespace openspace {

void LatencyStats::add(double latencyS) {
  if (latencyS < 0.0) {
    throw InvalidArgumentError("LatencyStats::add: negative latency");
  }
  samples_.push_back(latencyS);
  sumS_ += latencyS;
  sorted_ = false;
}

double LatencyStats::lossRate() const noexcept {
  const std::size_t total = samples_.size() + losses_;
  return total == 0 ? 0.0 : static_cast<double>(losses_) / static_cast<double>(total);
}

double LatencyStats::meanS() const {
  if (samples_.empty()) throw NotFoundError("LatencyStats: no samples");
  return sumS_ / static_cast<double>(samples_.size());
}

void LatencyStats::ensureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyStats::minS() const {
  if (samples_.empty()) throw NotFoundError("LatencyStats: no samples");
  ensureSorted();
  return samples_.front();
}

double LatencyStats::maxS() const {
  if (samples_.empty()) throw NotFoundError("LatencyStats: no samples");
  ensureSorted();
  return samples_.back();
}

double LatencyStats::percentileS(double quantile) const {
  if (quantile < 0.0 || quantile > 1.0) {
    throw InvalidArgumentError("LatencyStats::percentileS: quantile outside [0,1]");
  }
  if (samples_.empty()) throw NotFoundError("LatencyStats: no samples");
  ensureSorted();
  const auto idx = static_cast<std::size_t>(
      std::ceil(quantile * static_cast<double>(samples_.size())));
  return samples_[std::min(samples_.size() - 1, idx == 0 ? 0 : idx - 1)];
}

}  // namespace openspace
