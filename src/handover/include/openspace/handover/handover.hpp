// Satellite handover (paper §2.2, "Satellite Handovers").
//
// LEO satellites cover a small area and move fast: "frequent handovers
// between satellites is necessary to provide continuous connectivity"
// (Starlink hands over every ~15 s). OpenSpace exploits the public
// ephemeris: the serving satellite picks its successor in advance and
// communicates it to the user, who "establishes a new session with the
// successor. This eliminates the need to run authentication and
// association protocols again, ensuring a smooth handoff."
//
// The module provides the predictive planner, the re-association baseline,
// and a timeline simulator producing handover cadence + outage statistics.
#pragma once

#include <optional>
#include <vector>

#include <openspace/geo/geodetic.hpp>
#include <openspace/orbit/ephemeris.hpp>
#include <openspace/orbit/propagation_batch.hpp>

namespace openspace {

/// A planned handover decision.
struct HandoverPlan {
  bool found = false;
  double serviceEndsAtS = 0.0;    ///< Serving satellite drops below the mask.
  SatelliteId successor{};
  double successorUntilS = 0.0;   ///< How long the successor will serve.
};

/// Plans handovers from the shared ephemeris.
class HandoverPlanner {
 public:
  /// Throws InvalidArgumentError for elevation outside [0, pi/2).
  HandoverPlanner(const EphemerisService& ephemeris, double minElevationRad);

  /// When satellite `sat` stops being visible from `user` (first mask
  /// crossing after `fromS`, searched up to fromS+horizonS; returns
  /// fromS+horizonS if still visible at the horizon, fromS if not visible
  /// at fromS). The horizon is a hard search bound; throws
  /// InvalidArgumentError unless it is finite and >= 0.
  double visibilityEndS(SatelliteId sat, const Geodetic& user, double fromS,
                        double horizonS = 3'600.0) const;

  /// The visibilityEndS search running on a caller-provided sweep already
  /// reset() to the satellite's elements: same coarse scan + bisection,
  /// same result bit-for-bit (visibilityEndS delegates here after seeding
  /// a fresh sweep). Candidate loops — bestSatelliteAt, the session-plane
  /// epoch sweep — reuse one SatelliteSweep object across satellites
  /// instead of constructing one per visibility query.
  double visibilityEndWith(SatelliteSweep& sweep, const Geodetic& user,
                           double fromS, double horizonS = 3'600.0) const;

  /// Best serving satellite at time t: visible and longest remaining
  /// service (maximizes time-to-next-handover), excluding `exclude`.
  std::optional<SatelliteId> bestSatelliteAt(const Geodetic& user, double tSeconds,
                                             SatelliteId exclude = {}) const;

  /// Closest visible satellite at time t (the association rule).
  std::optional<SatelliteId> closestSatelliteAt(const Geodetic& user,
                                                double tSeconds) const;

  /// Build the predictive plan for the current serving satellite.
  HandoverPlan plan(SatelliteId current, const Geodetic& user, double nowS,
                    double horizonS = 3'600.0) const;

  double minElevationRad() const noexcept { return minElevationRad_; }
  const EphemerisService& ephemeris() const noexcept { return ephemeris_; }

 private:
  const EphemerisService& ephemeris_;
  double minElevationRad_;
};

/// Handover execution mode under study.
enum class HandoverMode {
  Predictive,   ///< §2.2 scheme: successor known in advance, no re-auth.
  ReAssociate,  ///< Baseline: full beacon scan + RADIUS on every handover.
};

/// Baseline parameters: what a full re-association costs.
struct ReAssociationCost {
  double beaconPeriodS = 2.0;  ///< Mean wait = period/2 before association.
  double authRttS = 0.120;     ///< RADIUS RTT over ISLs to the home ISP.
};

/// One executed handover.
struct HandoverEvent {
  double atS = 0.0;
  SatelliteId from{};
  SatelliteId to{};
  double latencyS = 0.0;  ///< Signaling time; service gap for ReAssociate.
};

/// A simulated service timeline for one fixed user.
struct HandoverTimeline {
  std::vector<HandoverEvent> events;
  double coveredS = 0.0;       ///< Time with a serving satellite.
  double outageS = 0.0;        ///< Gaps (no visible satellite + handover gaps).
  double meanIntervalS = 0.0;  ///< Mean time between handovers.
  int handovers() const noexcept { return static_cast<int>(events.size()); }
};

/// Simulate the serving-satellite timeline for a user over [t0S, t1S].
/// Predictive mode: make-before-break, outage only from signaling latency
/// (one hop to successor). ReAssociate mode: break-before-make, outage =
/// beacon wait + auth RTT per handover. Throws InvalidArgumentError if
/// t1S <= t0S.
HandoverTimeline simulateHandovers(const HandoverPlanner& planner,
                                   const Geodetic& user, double t0S, double t1S,
                                   HandoverMode mode,
                                   const ReAssociationCost& reassocCost = {});

}  // namespace openspace
