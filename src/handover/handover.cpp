#include <openspace/handover/handover.hpp>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <vector>

#include <openspace/coverage/footprint_index.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/propagation_batch.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/visibility.hpp>

namespace openspace {

namespace {

/// Ascending candidate indices that may be visible from `user` — the
/// footprint index prunes the fleet, the callers then apply the exact
/// elevationFrom predicate the brute scans used. Sorting restores the
/// brute loops' ascending visit order, which their first-wins tie
/// breaking depends on.
std::vector<std::uint32_t> visibleCandidates(
    const std::shared_ptr<const ConstellationSnapshot>& snap,
    const Geodetic& user, double minElevationRad) {
  const auto footprints = FootprintIndex2::compiled(snap, minElevationRad);
  std::vector<std::uint32_t> candidates;
  footprints->forEachGroundCandidate(
      geodeticToEcef(user),
      [&](std::uint32_t i) { candidates.push_back(i); });
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

}  // namespace

HandoverPlanner::HandoverPlanner(const EphemerisService& ephemeris,
                                 double minElevationRad)
    : ephemeris_(ephemeris), minElevationRad_(minElevationRad) {
  if (minElevationRad < 0.0 || minElevationRad >= std::numbers::pi / 2.0) {
    throw InvalidArgumentError("HandoverPlanner: elevation mask out of range");
  }
}

double HandoverPlanner::visibilityEndS(SatelliteId sat, const Geodetic& user,
                                       double fromS, double horizonS) const {
  // Warm-started single-satellite sweep: the coarse scan and the bisection
  // evaluate the same orbit dozens of times in sequence. A fresh sweep per
  // call and a reset() one are bit-identical, so this is exactly
  // visibilityEndWith on a reused object.
  SatelliteSweep sweep(ephemeris_.record(sat).elements);
  return visibilityEndWith(sweep, user, fromS, horizonS);
}

double HandoverPlanner::visibilityEndWith(SatelliteSweep& sweep,
                                          const Geodetic& user, double fromS,
                                          double horizonS) const {
  // The horizon is an explicit, finite search bound: a satellite that never
  // drops below the mask (e.g. a mask of 0 over a pole-adjacent user, or a
  // horizon shorter than the pass) yields fromS + horizonS rather than an
  // unbounded scan.
  if (!(horizonS >= 0.0) || std::isinf(horizonS)) {
    throw InvalidArgumentError(
        "visibilityEndS: horizon must be finite and >= 0");
  }
  const auto visible = [&](double t) {
    return elevationFrom(sweep.positionEciAt(t), user, t) >= minElevationRad_;
  };
  if (!visible(fromS)) return fromS;
  // Coarse forward scan (10 s grid, clamped to the horizon) then bisect
  // the set edge to ~1 ms.
  const double step = 10.0;
  const double horizonEndS = fromS + horizonS;
  double lo = fromS;
  double hi = horizonEndS;
  bool crossed = false;
  for (double t = fromS + step; t < horizonEndS + step; t += step) {
    const double clampedS = std::min(t, horizonEndS);
    if (!visible(clampedS)) {
      lo = std::max(fromS, t - step);
      hi = clampedS;
      crossed = true;
      break;
    }
    if (clampedS >= horizonEndS) break;
  }
  // Still visible at every grid point up to the horizon: no LOS transition
  // inside the search window.
  if (!crossed) return horizonEndS;
  for (int i = 0; i < 40 && hi - lo > 1e-3; ++i) {
    const double mid = 0.5 * (lo + hi);
    (visible(mid) ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

std::optional<SatelliteId> HandoverPlanner::bestSatelliteAt(
    const Geodetic& user, double tSeconds, SatelliteId exclude) const {
  std::optional<SatelliteId> best;
  double bestUntil = -1.0;
  const auto snap = SnapshotCache::global().at(ephemeris_, tSeconds);
  const auto& sats = ephemeris_.satellites();
  // Index-pruned, ascending candidates; the predicate and the strict
  // `until > bestUntil` first-wins rule are the brute scan's, so skipping
  // the never-visible satellites cannot change the winner. One sweep
  // object serves every candidate's visibility search: reset() re-seeds
  // it bit-identically to the fresh per-call sweep visibilityEndS builds,
  // pinned against the per-candidate path in tests/test_handover.cpp.
  SatelliteSweep sweep;
  for (const std::uint32_t i : visibleCandidates(snap, user, minElevationRad_)) {
    const SatelliteId sid = sats[i];
    if (sid == exclude) continue;
    const Vec3& pos = snap->eci(i);
    if (elevationFrom(pos, user, tSeconds) < minElevationRad_) continue;
    sweep.reset(ephemeris_.record(sid).elements);
    const double until = visibilityEndWith(sweep, user, tSeconds);
    if (until > bestUntil) {
      bestUntil = until;
      best = sid;
    }
  }
  return best;
}

std::optional<SatelliteId> HandoverPlanner::closestSatelliteAt(
    const Geodetic& user, double tSeconds) const {
  const Vec3 userEcef = geodeticToEcef(user);
  std::optional<SatelliteId> best;
  double bestRange = std::numeric_limits<double>::infinity();
  const auto snap = SnapshotCache::global().at(ephemeris_, tSeconds);
  const auto& sats = ephemeris_.satellites();
  for (const std::uint32_t i : visibleCandidates(snap, user, minElevationRad_)) {
    const Vec3& pos = snap->eci(i);
    if (elevationFrom(pos, user, tSeconds) < minElevationRad_) continue;
    const double range = userEcef.distanceTo(snap->ecef(i));
    if (range < bestRange) {
      bestRange = range;
      best = sats[i];
    }
  }
  return best;
}

HandoverPlan HandoverPlanner::plan(SatelliteId current, const Geodetic& user,
                                   double nowS, double horizonS) const {
  HandoverPlan p;
  p.serviceEndsAtS = visibilityEndS(current, user, nowS, horizonS);
  // Pick the successor as the best satellite at the moment service ends
  // (slightly before, so the successor is already up when we switch).
  const double switchAt = std::max(nowS, p.serviceEndsAtS - 1e-3);
  const auto succ = bestSatelliteAt(user, switchAt, current);
  if (!succ) return p;  // found == false: service gap ahead
  p.found = true;
  p.successor = *succ;
  p.successorUntilS = visibilityEndS(*succ, user, switchAt, horizonS);
  return p;
}

namespace {

/// Signaling latency of a predictive handover: the serving satellite tells
/// the user its successor (one downlink), the user opens a session with the
/// successor (one round trip). No authentication.
double predictiveLatencyS(const EphemerisService& eph, const Geodetic& user,
                          SatelliteId from, SatelliteId to, double tSeconds) {
  const Vec3 u = geodeticToEcef(user);
  const double downS =
      u.distanceTo(eciToEcef(eph.positionEci(from, tSeconds), tSeconds)) /
      kSpeedOfLightMps;
  const double upS =
      u.distanceTo(eciToEcef(eph.positionEci(to, tSeconds), tSeconds)) /
      kSpeedOfLightMps;
  return downS + 2.0 * upS;
}

}  // namespace

HandoverTimeline simulateHandovers(const HandoverPlanner& planner,
                                   const Geodetic& user, double t0S, double t1S,
                                   HandoverMode mode,
                                   const ReAssociationCost& reassocCost) {
  if (t1S <= t0S) throw InvalidArgumentError("simulateHandovers: t1S <= t0S");

  HandoverTimeline tl;
  double t = t0S;
  std::optional<SatelliteId> serving = planner.bestSatelliteAt(user, t);
  while (!serving && t < t1S) {
    // No coverage: scan forward for first acquisition.
    tl.outageS += std::min(10.0, t1S - t);
    t += 10.0;
    if (t < t1S) serving = planner.bestSatelliteAt(user, t);
  }

  while (t < t1S && serving) {
    const double until =
        std::min(planner.visibilityEndS(*serving, user, t), t1S);
    tl.coveredS += until - t;
    if (until >= t1S) break;

    const auto next = planner.bestSatelliteAt(user, until - 1e-3, *serving);
    if (!next) {
      // Coverage hole: wait for any satellite.
      double scan = until;
      std::optional<SatelliteId> reacq;
      while (scan < t1S && !(reacq = planner.bestSatelliteAt(user, scan))) {
        scan += 10.0;
      }
      tl.outageS += std::min(scan, t1S) - until;
      serving = reacq;
      t = scan;
      continue;
    }

    HandoverEvent ev;
    ev.atS = until;
    ev.from = *serving;
    ev.to = *next;
    if (mode == HandoverMode::Predictive) {
      // Make-before-break using the published successor; the only service
      // interruption is the session-switch signaling.
      ev.latencyS = predictiveLatencyS(planner.ephemeris(), user, *serving,
                                       *next, until);
      tl.outageS += ev.latencyS;
    } else {
      ev.latencyS = reassocCost.beaconPeriodS / 2.0 + reassocCost.authRttS;
      tl.outageS += ev.latencyS;
    }
    tl.events.push_back(ev);
    serving = *next;
    t = until + ev.latencyS;
  }

  if (tl.events.size() >= 2) {
    tl.meanIntervalS = (tl.events.back().atS - tl.events.front().atS) /
                       static_cast<double>(tl.events.size() - 1);
  } else if (tl.events.size() == 1) {
    tl.meanIntervalS = t1S - t0S;
  }
  return tl;
}

}  // namespace openspace
