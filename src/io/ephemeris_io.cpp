#include <openspace/io/ephemeris_io.hpp>

#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include <openspace/geo/error.hpp>

namespace openspace {

namespace {

void setFullPrecision(std::ostream& os) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
}

[[noreturn]] void malformed(int lineNo, const std::string& line,
                            const std::string& why) {
  throw ProtocolError("ephemeris_io: line " + std::to_string(lineNo) + " " +
                      why + ": '" + line + "'");
}

}  // namespace

void saveEphemeris(const EphemerisService& eph, std::ostream& os) {
  setFullPrecision(os);
  os << "# openspace ephemeris v1: sat <id> <owner> <a_m> <e> <incl> <raan>"
        " <argp> <M0>\n";
  for (const SatelliteId sid : eph.satellites()) {
    const EphemerisRecord& rec = eph.record(sid);
    const OrbitalElements& el = rec.elements;
    os << "sat " << sid << ' ' << rec.owner << ' ' << el.semiMajorAxisM << ' '
       << el.eccentricity << ' ' << el.inclinationRad << ' ' << el.raanRad
       << ' ' << el.argPerigeeRad << ' ' << el.meanAnomalyAtEpochRad << '\n';
  }
}

EphemerisService loadEphemeris(std::istream& is) {
  EphemerisService eph;
  std::string line;
  int lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    if (kind != "sat") continue;  // site lines and unknown records: skip
    // Serialization boundary: ids cross the wire as raw integers.
    SatelliteId::rep_type idValue = 0;
    ProviderId::rep_type ownerValue = 0;
    OrbitalElements el;
    ss >> idValue >> ownerValue >> el.semiMajorAxisM >> el.eccentricity >>
        el.inclinationRad >> el.raanRad >> el.argPerigeeRad >>
        el.meanAnomalyAtEpochRad;
    if (ss.fail()) malformed(lineNo, line, "has a malformed sat record");
    const SatelliteId id{idValue};
    const ProviderId owner{ownerValue};
    if (!id.isValid()) malformed(lineNo, line, "uses reserved satellite id 0");
    // Note the isfinite checks: "nan" and "inf" parse as valid doubles, and
    // NaN compares false against every range bound below.
    if (!std::isfinite(el.semiMajorAxisM) || !std::isfinite(el.eccentricity) ||
        !std::isfinite(el.inclinationRad) || !std::isfinite(el.raanRad) ||
        !std::isfinite(el.argPerigeeRad) ||
        !std::isfinite(el.meanAnomalyAtEpochRad)) {
      malformed(lineNo, line, "has non-finite elements");
    }
    if (el.semiMajorAxisM <= 0.0 || el.eccentricity < 0.0 ||
        el.eccentricity >= 1.0) {
      malformed(lineNo, line, "has non-physical elements");
    }
    try {
      eph.publishWithId(id, owner, el);
    } catch (const InvalidArgumentError&) {
      malformed(lineNo, line, "duplicates satellite id");
    }
  }
  return eph;
}

void saveSites(const std::vector<SiteRecord>& sites, std::ostream& os) {
  setFullPrecision(os);
  os << "# openspace sites v1: site <kind> <provider> <lat> <lon> <alt>"
        " <name...>\n";
  for (const SiteRecord& s : sites) {
    os << "site " << (s.isStation ? "station" : "user") << ' '
       << s.site.provider << ' ' << s.site.location.latitudeRad << ' '
       << s.site.location.longitudeRad << ' ' << s.site.location.altitudeM
       << ' ' << s.site.name << '\n';
  }
}

std::vector<SiteRecord> loadSites(std::istream& is) {
  std::vector<SiteRecord> out;
  std::string line;
  int lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string kind;
    ss >> kind;
    if (kind != "site") continue;
    SiteRecord rec;
    std::string siteKind;
    ProviderId::rep_type providerValue = 0;
    ss >> siteKind >> providerValue >> rec.site.location.latitudeRad >>
        rec.site.location.longitudeRad >> rec.site.location.altitudeM;
    if (ss.fail()) malformed(lineNo, line, "has a malformed site record");
    if (!std::isfinite(rec.site.location.latitudeRad) ||
        !std::isfinite(rec.site.location.longitudeRad) ||
        !std::isfinite(rec.site.location.altitudeM)) {
      malformed(lineNo, line, "has a non-finite coordinate");
    }
    rec.site.provider = ProviderId{providerValue};
    if (siteKind == "station") {
      rec.isStation = true;
    } else if (siteKind == "user") {
      rec.isStation = false;
    } else {
      malformed(lineNo, line, "has unknown site kind '" + siteKind + "'");
    }
    std::getline(ss, rec.site.name);
    // Trim the single separating space.
    if (!rec.site.name.empty() && rec.site.name.front() == ' ') {
      rec.site.name.erase(0, 1);
    }
    if (rec.site.name.empty()) malformed(lineNo, line, "is missing a name");
    out.push_back(std::move(rec));
  }
  return out;
}

std::string ephemerisToString(const EphemerisService& eph) {
  std::ostringstream os;
  saveEphemeris(eph, os);
  return os.str();
}

EphemerisService ephemerisFromString(const std::string& text) {
  std::istringstream is(text);
  return loadEphemeris(is);
}

}  // namespace openspace
