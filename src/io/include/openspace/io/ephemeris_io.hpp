// Ephemeris and ground-site serialization.
//
// The paper's routing premise is a *public* topology: "the radar-tracked
// orbital paths of satellites are well-known and readily available on
// public websites". This module is that interchange surface: a simple
// line-oriented text format (one record per line, '#' comments) for
// publishing and consuming constellation ephemerides and ground assets, so
// independent OpenSpace participants — and independent tools — can share
// one topology file the way operators share TLE sets.
//
// Format (whitespace-separated):
//   sat   <id> <owner> <a_m> <e> <incl_rad> <raan_rad> <argp_rad> <M0_rad>
//   site  <kind> <provider> <lat_rad> <lon_rad> <alt_m> <name...>
// Doubles are written round-trip exact (max_digits10).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include <openspace/orbit/ephemeris.hpp>
#include <openspace/topology/builder.hpp>

namespace openspace {

/// Write every record of `eph` to `os` in publication order.
void saveEphemeris(const EphemerisService& eph, std::ostream& os);

/// Parse an ephemeris written by saveEphemeris (ignores `site` lines,
/// blank lines and comments). Satellite ids are preserved. Throws
/// ProtocolError on malformed records or duplicate ids.
EphemerisService loadEphemeris(std::istream& is);

/// A ground-site record as serialized.
struct SiteRecord {
  bool isStation = false;  ///< kind: "station" or "user".
  GroundSite site;
};

/// Write ground sites (appendable after saveEphemeris in the same file).
void saveSites(const std::vector<SiteRecord>& sites, std::ostream& os);

/// Parse all `site` lines (ignores satellite lines). Throws ProtocolError
/// on malformed records.
std::vector<SiteRecord> loadSites(std::istream& is);

/// Convenience: serialize to / parse from strings.
std::string ephemerisToString(const EphemerisService& eph);
EphemerisService ephemerisFromString(const std::string& text);

}  // namespace openspace
