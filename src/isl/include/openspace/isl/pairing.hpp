// The OpenSpace ISL establishment protocol (paper §2.1).
//
// Sequence between heterogeneous satellites owned by different providers:
//
//   1. Every satellite periodically broadcasts an RF beacon (presence,
//      identity, orbit, capabilities). RF is the discovery plane because
//      all OpenSpace satellites must carry it and RF antennas broadcast.
//   2. On receiving a beacon, a satellite may initiate pairing by sending a
//      pair request carrying its technical specifications ("for example
//      whether optical links are supported, and the exact position of its
//      laser diodes").
//   3. The receiver accepts or rejects (power, terminal count, policy).
//      On acceptance an RF ISL is active after one more propagation delay.
//   4. If both ends have laser terminals, spare power, and available
//      optical bandwidth, they re-orient (slew) so the terminals point at
//      each other, run pointing/acquisition/tracking, and upgrade the link
//      to optical.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include <openspace/mac/beacon.hpp>
#include <openspace/phy/power.hpp>
#include <openspace/phy/terminal.hpp>

namespace openspace {

/// Lifecycle of one ISL as seen by one endpoint.
enum class IslState {
  Idle,           ///< No relationship with the peer.
  PairRequested,  ///< We sent a pair request, awaiting response.
  RfActive,       ///< RF ISL carrying traffic.
  Acquiring,      ///< Slewing / optical pointing-acquisition in progress.
  OpticalActive,  ///< Laser ISL carrying traffic (RF kept as control channel).
  Torn,           ///< Link torn down.
};

std::string_view islStateName(IslState s) noexcept;

/// Pair request message (step 2).
struct PairRequest {
  SatelliteId from{};
  SatelliteId to{};
  ProviderId fromProvider{};
  double txTimeS = 0.0;
  LinkCapabilities capabilities;  ///< Includes laser boresight if present.
};

/// Pair response message (step 3).
struct PairResponse {
  SatelliteId from{};
  SatelliteId to{};
  bool accepted = false;
  bool offerOptical = false;  ///< Receiver also wants the laser upgrade.
  std::string reason;         ///< Reject reason, for diagnostics.
};

/// Per-satellite protocol agent: owns the satellite's capabilities, its
/// power budget, and the state of each peer relationship.
class IslEndpoint {
 public:
  /// Throws InvalidArgumentError if capabilities advertise no RF band
  /// (violates the OpenSpace minimum), or laser capability without laser
  /// hardware parameters.
  IslEndpoint(SatelliteId id, ProviderId provider, LinkCapabilities caps,
              PowerBudget power);

  /// Build this satellite's beacon for time t.
  BeaconMessage makeBeacon(double tSeconds, const OrbitalElements& elements) const;

  /// Decide whether to initiate pairing with the beacon's sender. Returns
  /// the request to transmit, or nullopt (already paired / at capacity /
  /// self-beacon).
  std::optional<PairRequest> considerPairing(const BeaconMessage& beacon,
                                             double tSeconds);

  /// Handle an incoming pair request (we are the receiver).
  PairResponse onPairRequest(const PairRequest& req, double tSeconds);

  /// Handle the response to our earlier request. Returns true if the RF
  /// link is now active on this side. Throws StateError if no request to
  /// this peer is outstanding.
  bool onPairResponse(const PairResponse& resp, double tSeconds);

  /// Tear down the link with `peer` (range loss, handover, policy),
  /// releasing its power commitments. Throws NotFoundError if unknown.
  void teardown(SatelliteId peer);

  /// Begin the optical upgrade with an RF-active peer. Returns the time at
  /// which the optical link will be ready (slew + acquisition), or nullopt
  /// if the upgrade is not possible (capability/power). `slewAngleRad` is
  /// the re-orientation this endpoint must execute.
  std::optional<double> beginOpticalUpgrade(SatelliteId peer, double slewAngleRad,
                                            double tSeconds);

  /// Mark the optical link active (both sides completed acquisition).
  void completeOpticalUpgrade(SatelliteId peer);

  /// Abandon an in-progress optical upgrade and fall back to the RF link
  /// (peer could not follow through). Throws StateError if not acquiring.
  void abortOpticalUpgrade(SatelliteId peer);

  IslState stateWith(SatelliteId peer) const noexcept;
  std::size_t activeLinkCount() const noexcept;
  bool atCapacity() const noexcept;

  SatelliteId id() const noexcept { return id_; }
  ProviderId provider() const noexcept { return provider_; }
  const LinkCapabilities& capabilities() const noexcept { return caps_; }
  const PowerBudget& power() const noexcept { return power_; }
  PowerBudget& power() noexcept { return power_; }

  /// Laser acquisition time after slew completes (PAT settle; constant in
  /// this model, following beaconless-pointing budgets from prior work).
  static constexpr double kOpticalAcquisitionS = 8.0;
  /// Energy cost of a slew maneuver per radian (reaction wheels), Wh/rad.
  static constexpr double kSlewEnergyWhPerRad = 1.2;

 private:
  struct PeerState {
    IslState state = IslState::Idle;
    int rfPowerCommit = 0;      ///< PowerBudget commitment id (0 = none).
    int opticalPowerCommit = 0;
  };

  PeerState& peer(SatelliteId id);
  bool tryCommitRf(PeerState& ps, SatelliteId peerId);

  SatelliteId id_;
  ProviderId provider_;
  LinkCapabilities caps_;
  PowerBudget power_;
  TerminalSpec rfSpec_;
  TerminalSpec laserSpec_;
  std::unordered_map<SatelliteId, PeerState> peers_;
};

/// Outcome of a full two-party establishment attempt.
struct IslEstablishment {
  bool rfEstablished = false;
  bool opticalEstablished = false;
  double rfReadyAtS = 0.0;       ///< When the RF link starts carrying data.
  double opticalReadyAtS = 0.0;  ///< When the laser link is usable (if any).
  std::string failureReason;
};

/// Drive the full handshake between two endpoints at time t, given their
/// current ECI positions (for propagation delays and slew geometry).
/// This is the reference implementation of the §2.1 protocol; the event-
/// driven simulator reuses the same endpoint methods with real message
/// scheduling.
IslEstablishment establishIsl(IslEndpoint& a, IslEndpoint& b, const Vec3& posA,
                              const Vec3& posB, double tSeconds);

}  // namespace openspace
