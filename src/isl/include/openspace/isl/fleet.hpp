// Fleet-level ISL coordination.
//
// IslFleet owns one IslEndpoint per satellite and runs discovery rounds:
// every satellite beacons, in-range line-of-sight neighbors receive, and
// the §2.1 pairing protocol runs between willing pairs (nearest candidates
// first — beacon strength orders candidates in range). The result is the
// set of live ISLs, which the topology layer turns into graph links.
#pragma once

#include <map>

#include <openspace/isl/pairing.hpp>
#include <openspace/orbit/ephemeris.hpp>

namespace openspace {

/// A live inter-satellite link at fleet level.
struct FleetLink {
  SatelliteId a{};
  SatelliteId b{};
  bool optical = false;
  double establishedAtS = 0.0;
  double distanceM = 0.0;
};

/// Configuration for a discovery round.
struct FleetConfig {
  double rfDiscoveryRangeM = 4'000'000.0;  ///< Beacon decode range.
  double losClearanceM = 80'000.0;         ///< Atmosphere grazing margin.
  /// Default power budget for satellites not configured explicitly. Sized
  /// so a satellite can hold a few RF ISLs plus one active laser terminal
  /// (S-band 28 W each, laser 80 W).
  double generationW = 230.0;
  double batteryWh = 300.0;
  double busLoadW = 35.0;
};

class IslFleet {
 public:
  /// Creates an endpoint per published satellite with the given
  /// capabilities map (missing entries get the RF-only default).
  IslFleet(const EphemerisService& ephemeris, const FleetConfig& cfg);

  /// Override a satellite's capabilities (before any discovery round).
  void setCapabilities(SatelliteId id, const LinkCapabilities& caps);

  /// Run one discovery + pairing round at time t. New links are appended
  /// to the live set; links whose endpoints moved out of range or lost
  /// line of sight are torn down first. Returns links established this round.
  std::vector<FleetLink> runDiscoveryRound(double tSeconds);

  /// Currently live links.
  const std::vector<FleetLink>& liveLinks() const noexcept { return live_; }

  const IslEndpoint& endpoint(SatelliteId id) const;
  IslEndpoint& endpoint(SatelliteId id);

 private:
  const EphemerisService& ephemeris_;
  FleetConfig cfg_;
  std::map<SatelliteId, IslEndpoint> endpoints_;
  std::vector<FleetLink> live_;
};

}  // namespace openspace
