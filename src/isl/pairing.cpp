#include <openspace/isl/pairing.hpp>

#include <algorithm>
#include <cmath>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>

namespace openspace {

std::string_view islStateName(IslState s) noexcept {
  switch (s) {
    case IslState::Idle: return "idle";
    case IslState::PairRequested: return "pair-requested";
    case IslState::RfActive: return "rf-active";
    case IslState::Acquiring: return "acquiring";
    case IslState::OpticalActive: return "optical-active";
    case IslState::Torn: return "torn";
  }
  return "?";
}

IslEndpoint::IslEndpoint(SatelliteId id, ProviderId provider, LinkCapabilities caps,
                         PowerBudget power)
    : id_(id),
      provider_(provider),
      caps_(std::move(caps)),
      power_(std::move(power)),
      rfSpec_(terminals::sBandIsl()),
      laserSpec_(terminals::laserIsl()) {
  const bool hasRf = std::any_of(caps_.islBands.begin(), caps_.islBands.end(),
                                 [](Band b) { return b != Band::Optical; });
  if (!hasRf) {
    throw InvalidArgumentError(
        "IslEndpoint: satellite must support at least one RF ISL band");
  }
  if (caps_.maxIslCount < 1) {
    throw InvalidArgumentError("IslEndpoint: maxIslCount must be >= 1");
  }
}

BeaconMessage IslEndpoint::makeBeacon(double tSeconds,
                                      const OrbitalElements& elements) const {
  BeaconMessage b;
  b.satellite = id_;
  b.provider = provider_;
  b.txTimeS = tSeconds;
  b.elements = elements;
  b.capabilities = caps_;
  return b;
}

IslEndpoint::PeerState& IslEndpoint::peer(SatelliteId peerId) {
  return peers_[peerId];
}

IslState IslEndpoint::stateWith(SatelliteId peerId) const noexcept {
  const auto it = peers_.find(peerId);
  return (it == peers_.end()) ? IslState::Idle : it->second.state;
}

std::size_t IslEndpoint::activeLinkCount() const noexcept {
  std::size_t n = 0;
  // det-waiver: commutative count accumulation, order cannot reach result
  for (const auto& [peerId, ps] : peers_) {
    if (ps.state == IslState::RfActive || ps.state == IslState::Acquiring ||
        ps.state == IslState::OpticalActive || ps.state == IslState::PairRequested) {
      ++n;
    }
  }
  return n;
}

bool IslEndpoint::atCapacity() const noexcept {
  return activeLinkCount() >= static_cast<std::size_t>(caps_.maxIslCount);
}

std::optional<PairRequest> IslEndpoint::considerPairing(const BeaconMessage& beacon,
                                                        double tSeconds) {
  if (beacon.satellite == id_) return std::nullopt;  // our own beacon
  if (stateWith(beacon.satellite) != IslState::Idle &&
      stateWith(beacon.satellite) != IslState::Torn) {
    return std::nullopt;  // already engaged with this peer
  }
  if (atCapacity()) return std::nullopt;
  if (!power_.canCommit(rfSpec_.powerDrawW)) return std::nullopt;

  PairRequest req;
  req.from = id_;
  req.to = beacon.satellite;
  req.fromProvider = provider_;
  req.txTimeS = tSeconds;
  req.capabilities = caps_;
  peer(beacon.satellite).state = IslState::PairRequested;
  return req;
}

bool IslEndpoint::tryCommitRf(PeerState& ps, SatelliteId peerId) {
  if (!power_.canCommit(rfSpec_.powerDrawW)) return false;
  ps.rfPowerCommit =
      power_.commit(rfSpec_.powerDrawW, "isl-rf:" + std::to_string(peerId.value()));
  return true;
}

PairResponse IslEndpoint::onPairRequest(const PairRequest& req, double /*tSeconds*/) {
  PairResponse resp;
  resp.from = id_;
  resp.to = req.from;

  PeerState& ps = peer(req.from);
  if (ps.state == IslState::RfActive || ps.state == IslState::OpticalActive ||
      ps.state == IslState::Acquiring) {
    resp.accepted = false;
    resp.reason = "already linked";
    return resp;
  }
  // Simultaneous requests: the lower id yields (accepts) so exactly one
  // side's request carries the handshake.
  if (atCapacity() && ps.state != IslState::PairRequested) {
    resp.accepted = false;
    resp.reason = "terminal capacity exhausted";
    return resp;
  }
  // Shared RF band required (the standardized minimum guarantees overlap,
  // but a misconfigured fleet must be rejected cleanly).
  const bool shareRf = std::any_of(
      caps_.islBands.begin(), caps_.islBands.end(), [&](Band mine) {
        return mine != Band::Optical &&
               std::find(req.capabilities.islBands.begin(),
                         req.capabilities.islBands.end(),
                         mine) != req.capabilities.islBands.end();
      });
  if (!shareRf) {
    resp.accepted = false;
    resp.reason = "no common RF ISL band";
    return resp;
  }
  if (!tryCommitRf(ps, req.from)) {
    resp.accepted = false;
    resp.reason = "insufficient power";
    return resp;
  }
  ps.state = IslState::RfActive;
  resp.accepted = true;
  resp.offerOptical = caps_.hasLaserTerminal && req.capabilities.hasLaserTerminal &&
                      power_.canCommit(laserSpec_.powerDrawW);
  return resp;
}

bool IslEndpoint::onPairResponse(const PairResponse& resp, double /*tSeconds*/) {
  PeerState& ps = peer(resp.from);
  if (ps.state != IslState::PairRequested) {
    throw StateError("IslEndpoint: pair response without outstanding request");
  }
  if (!resp.accepted) {
    ps.state = IslState::Idle;
    return false;
  }
  if (!tryCommitRf(ps, resp.from)) {
    // Power evaporated between request and response; abort cleanly.
    ps.state = IslState::Idle;
    return false;
  }
  ps.state = IslState::RfActive;
  return true;
}

void IslEndpoint::teardown(SatelliteId peerId) {
  const auto it = peers_.find(peerId);
  if (it == peers_.end() || it->second.state == IslState::Idle ||
      it->second.state == IslState::Torn) {
    throw NotFoundError("IslEndpoint::teardown: no link with peer");
  }
  if (it->second.rfPowerCommit != 0) power_.release(it->second.rfPowerCommit);
  if (it->second.opticalPowerCommit != 0) {
    power_.release(it->second.opticalPowerCommit);
  }
  it->second = PeerState{};
  it->second.state = IslState::Torn;
}

std::optional<double> IslEndpoint::beginOpticalUpgrade(SatelliteId peerId,
                                                       double slewAngleRad,
                                                       double tSeconds) {
  PeerState& ps = peer(peerId);
  if (ps.state != IslState::RfActive) {
    throw StateError("beginOpticalUpgrade: RF link must be active first");
  }
  if (!caps_.hasLaserTerminal) return std::nullopt;
  if (!power_.canCommit(laserSpec_.powerDrawW)) return std::nullopt;
  const double slewEnergyWh = kSlewEnergyWhPerRad * std::abs(slewAngleRad);
  if (slewEnergyWh > power_.batteryChargeWh()) return std::nullopt;

  power_.drawEnergy(slewEnergyWh);
  ps.opticalPowerCommit =
      power_.commit(laserSpec_.powerDrawW, "isl-laser:" + std::to_string(peerId.value()));
  ps.state = IslState::Acquiring;
  const double slewTimeS =
      (laserSpec_.slewRateRadPerS > 0.0)
          ? std::abs(slewAngleRad) / laserSpec_.slewRateRadPerS
          : 0.0;
  return tSeconds + slewTimeS + kOpticalAcquisitionS;
}

void IslEndpoint::completeOpticalUpgrade(SatelliteId peerId) {
  PeerState& ps = peer(peerId);
  if (ps.state != IslState::Acquiring) {
    throw StateError("completeOpticalUpgrade: not in acquisition");
  }
  ps.state = IslState::OpticalActive;
}

void IslEndpoint::abortOpticalUpgrade(SatelliteId peerId) {
  PeerState& ps = peer(peerId);
  if (ps.state != IslState::Acquiring) {
    throw StateError("abortOpticalUpgrade: not in acquisition");
  }
  if (ps.opticalPowerCommit != 0) {
    power_.release(ps.opticalPowerCommit);
    ps.opticalPowerCommit = 0;
  }
  ps.state = IslState::RfActive;
}

IslEstablishment establishIsl(IslEndpoint& a, IslEndpoint& b, const Vec3& posA,
                              const Vec3& posB, double tSeconds) {
  IslEstablishment out;
  const double propS = posA.distanceTo(posB) / kSpeedOfLightMps;

  // Step 1: b's beacon reaches a.
  const BeaconMessage beacon = b.makeBeacon(tSeconds, OrbitalElements{});
  auto req = a.considerPairing(beacon, tSeconds + propS);
  if (!req) {
    out.failureReason = "initiator declined to pair (capacity/power/state)";
    return out;
  }
  // Step 2-3: request flies to b, response flies back.
  const PairResponse resp = b.onPairRequest(*req, tSeconds + 2.0 * propS);
  const bool rfUp = a.onPairResponse(resp, tSeconds + 3.0 * propS);
  if (!rfUp) {
    if (resp.accepted) b.teardown(a.id());  // roll back b's half-open link
    out.failureReason = resp.accepted ? "initiator lost power" : resp.reason;
    return out;
  }
  out.rfEstablished = true;
  out.rfReadyAtS = tSeconds + 3.0 * propS;

  // Step 4: optional optical upgrade. Slew angle: rotate each boresight
  // onto the line of sight. Capabilities carry body-frame boresights; with
  // no attitude model we take the angle between the advertised boresight
  // and the LoS direction as the required re-orientation.
  if (resp.offerOptical && a.capabilities().hasLaserTerminal) {
    const Vec3 losAB = (posB - posA).normalized();
    const Vec3 losBA = (posA - posB).normalized();
    const double angA = angleBetween(a.capabilities().laserBoresightBody, losAB);
    const double angB = angleBetween(b.capabilities().laserBoresightBody, losBA);
    const auto readyA = a.beginOpticalUpgrade(b.id(), angA, out.rfReadyAtS);
    if (readyA) {
      const auto readyB = b.beginOpticalUpgrade(a.id(), angB, out.rfReadyAtS);
      if (readyB) {
        a.completeOpticalUpgrade(b.id());
        b.completeOpticalUpgrade(a.id());
        out.opticalEstablished = true;
        out.opticalReadyAtS = std::max(*readyA, *readyB);
      } else {
        // b could not follow through; both sides stay on the RF link.
        a.abortOpticalUpgrade(b.id());
        out.failureReason = "optical upgrade aborted on responder; RF retained";
      }
    }
  }
  return out;
}

}  // namespace openspace
