#include <openspace/isl/fleet.hpp>

#include <openspace/orbit/snapshot.hpp>

#include <algorithm>

#include <openspace/geo/error.hpp>
#include <openspace/geo/geodetic.hpp>

namespace openspace {

namespace {

LinkCapabilities rfOnlyDefault() {
  LinkCapabilities caps;
  caps.islBands = {Band::S, Band::Uhf};
  caps.hasLaserTerminal = false;
  caps.maxIslCount = 4;
  return caps;
}

}  // namespace

IslFleet::IslFleet(const EphemerisService& ephemeris, const FleetConfig& cfg)
    : ephemeris_(ephemeris), cfg_(cfg) {
  for (const SatelliteId sid : ephemeris_.satellites()) {
    const auto& rec = ephemeris_.record(sid);
    endpoints_.emplace(
        sid, IslEndpoint(sid, rec.owner, rfOnlyDefault(),
                         PowerBudget(cfg.generationW, cfg.batteryWh, cfg.busLoadW)));
  }
}

void IslFleet::setCapabilities(SatelliteId id, const LinkCapabilities& caps) {
  const auto it = endpoints_.find(id);
  if (it == endpoints_.end()) {
    throw NotFoundError("IslFleet::setCapabilities: unknown satellite");
  }
  const auto& rec = ephemeris_.record(id);
  it->second = IslEndpoint(
      id, rec.owner, caps,
      PowerBudget(cfg_.generationW, cfg_.batteryWh, cfg_.busLoadW));
}

const IslEndpoint& IslFleet::endpoint(SatelliteId id) const {
  const auto it = endpoints_.find(id);
  if (it == endpoints_.end()) throw NotFoundError("IslFleet: unknown satellite");
  return it->second;
}

IslEndpoint& IslFleet::endpoint(SatelliteId id) {
  const auto it = endpoints_.find(id);
  if (it == endpoints_.end()) throw NotFoundError("IslFleet: unknown satellite");
  return it->second;
}

std::vector<FleetLink> IslFleet::runDiscoveryRound(double tSeconds) {
  const auto& sats = ephemeris_.satellites();
  const auto snap = SnapshotCache::global().at(ephemeris_, tSeconds);
  const std::vector<Vec3>& pos = snap->eci();
  std::map<SatelliteId, std::size_t> index;
  for (std::size_t i = 0; i < sats.size(); ++i) {
    index[sats[i]] = i;
  }

  const auto inContact = [&](SatelliteId a, SatelliteId b) {
    const Vec3& pa = pos[index.at(a)];
    const Vec3& pb = pos[index.at(b)];
    return pa.distanceTo(pb) <= cfg_.rfDiscoveryRangeM &&
           lineOfSightClear(pa, pb, cfg_.losClearanceM);
  };

  // Tear down links whose geometry no longer supports them.
  std::vector<FleetLink> kept;
  kept.reserve(live_.size());
  for (const FleetLink& l : live_) {
    if (inContact(l.a, l.b)) {
      FleetLink updated = l;
      updated.distanceM = pos[index.at(l.a)].distanceTo(pos[index.at(l.b)]);
      kept.push_back(updated);
    } else {
      endpoints_.at(l.a).teardown(l.b);
      endpoints_.at(l.b).teardown(l.a);
    }
  }
  live_ = std::move(kept);

  // Discovery: for each satellite, candidate peers sorted by distance
  // (beacon SNR ordering), pairing attempted nearest-first.
  std::vector<FleetLink> established;
  for (std::size_t i = 0; i < sats.size(); ++i) {
    std::vector<std::pair<double, std::size_t>> candidates;
    for (std::size_t j = 0; j < sats.size(); ++j) {
      if (j == i || !inContact(sats[i], sats[j])) continue;
      candidates.emplace_back(pos[i].distanceTo(pos[j]), j);
    }
    std::sort(candidates.begin(), candidates.end());
    IslEndpoint& me = endpoints_.at(sats[i]);
    for (const auto& [dist, j] : candidates) {
      if (me.atCapacity()) break;
      IslEndpoint& them = endpoints_.at(sats[j]);
      if (me.stateWith(sats[j]) != IslState::Idle &&
          me.stateWith(sats[j]) != IslState::Torn) {
        continue;
      }
      const IslEstablishment est =
          establishIsl(me, them, pos[i], pos[j], tSeconds);
      if (est.rfEstablished) {
        FleetLink l;
        l.a = sats[i];
        l.b = sats[j];
        l.optical = est.opticalEstablished;
        l.establishedAtS =
            est.opticalEstablished ? est.opticalReadyAtS : est.rfReadyAtS;
        l.distanceM = dist;
        live_.push_back(l);
        established.push_back(l);
      }
    }
  }
  return established;
}

}  // namespace openspace
