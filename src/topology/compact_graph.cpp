#include <openspace/topology/compact_graph.hpp>

#include <algorithm>
#include <cmath>

#include <openspace/core/assert.hpp>
#include <openspace/geo/error.hpp>

namespace openspace {

const std::vector<std::uint32_t>& CompactGraph::edgesOfLink(LinkId id) const {
  static const std::vector<std::uint32_t> kEmpty;
  const auto it = linkEdges_.find(id);
  return it == linkEdges_.end() ? kEmpty : it->second;
}

CompactGraph compileGraph(const NetworkGraph& g, const CompactGraph::CostFn& cost,
                          ProviderId home) {
  CompactGraph out;
  const std::vector<NodeId>& order = g.nodes();
  const std::size_t n = order.size();
  OPENSPACE_ASSERT(n < CompactGraph::kInvalidIndex,
                   "dense node indices fit in 32 bits");
  out.denseToNode_ = order;
  out.nodeKind_.reserve(n);
  out.nodeToDense_.reserve(n);
  std::uint32_t maxIdValue = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.nodeToDense_.emplace(order[i], static_cast<std::uint32_t>(i));
    out.nodeKind_.push_back(g.node(order[i]).kind);
    maxIdValue = std::max(maxIdValue, order[i].value());
  }
  // Builder-assigned ids are dense (1..N), so a direct-mapped table makes
  // indexOf a single load. Skip it for pathological sparse id spaces where
  // it would waste memory.
  if (n > 0 && maxIdValue <= 4 * n + 1024) {
    out.idToDense_.assign(maxIdValue + 1, CompactGraph::kInvalidIndex);
    for (std::size_t i = 0; i < n; ++i) {
      out.idToDense_[order[i].value()] = static_cast<std::uint32_t>(i);
    }
  }

  out.rowOffset_.reserve(n + 1);
  out.rowOffset_.push_back(0);
  const std::size_t edgeGuess = 2 * g.linkCount();
  out.edgeTo_.reserve(edgeGuess);
  out.edgeFrom_.reserve(edgeGuess);
  out.edgeCost_.reserve(edgeGuess);
  out.edgePropS_.reserve(edgeGuess);
  out.edgeQueueS_.reserve(edgeGuess);
  out.edgeCapBps_.reserve(edgeGuess);
  out.edgeLinkId_.reserve(edgeGuess);

  for (std::size_t i = 0; i < n; ++i) {
    const NodeId u = order[i];
    for (const LinkId lid : g.linksOf(u)) {
      const Link& l = g.link(lid);
      const double c = cost(g, l, home);
      if (std::isnan(c) || c < 0.0) {
        throw InvalidArgumentError("compileGraph: negative or NaN link cost");
      }
      if (std::isinf(c)) continue;  // forbidden edge: dropped at compile time
      const NodeId v = l.otherEnd(u);
      const auto itV = out.nodeToDense_.find(v);
      OPENSPACE_ASSERT(itV != out.nodeToDense_.end(),
                       "every link endpoint is a graph node");
      const auto e = static_cast<std::uint32_t>(out.edgeTo_.size());
      out.edgeTo_.push_back(itV->second);
      out.edgeFrom_.push_back(static_cast<std::uint32_t>(i));
      out.edgeCost_.push_back(c);
      out.edgePropS_.push_back(l.propagationDelayS);
      out.edgeQueueS_.push_back(l.queueingDelayS);
      out.edgeCapBps_.push_back(l.capacityBps);
      out.edgeLinkId_.push_back(lid);
      out.linkEdges_[lid].push_back(e);
    }
    out.rowOffset_.push_back(static_cast<std::uint32_t>(out.edgeTo_.size()));
  }
  return out;
}

}  // namespace openspace
