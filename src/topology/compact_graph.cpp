#include <openspace/topology/compact_graph.hpp>

#include <algorithm>
#include <cmath>

#include <openspace/core/assert.hpp>
#include <openspace/core/hash.hpp>
#include <openspace/geo/error.hpp>

namespace openspace {

std::uint64_t CompactGraph::contentChecksum() const noexcept {
  std::uint64_t h = kFnvOffsetBasis;
  h = fnv1a(h, nodes_->denseToNode.size());
  for (const NodeId id : nodes_->denseToNode) h = fnv1a(h, id.value());
  for (const NodeKind k : nodes_->nodeKind) {
    h = fnv1a(h, static_cast<std::uint64_t>(k));
  }
  for (const std::uint32_t o : rowOffset_) h = fnv1a(h, o);
  h = fnv1a(h, edgeTo_.size());
  for (std::size_t e = 0; e < edgeTo_.size(); ++e) {
    h = fnv1a(h, edgeTo_[e]);
    h = fnv1a(h, edgeFrom_[e]);
    h = fnv1a(h, bitsOf(edgeCost_[e]));
    h = fnv1a(h, bitsOf(edgePropS_[e]));
    h = fnv1a(h, bitsOf(edgeQueueS_[e]));
    h = fnv1a(h, bitsOf(edgeCapBps_[e]));
    h = fnv1a(h, edgeLinkId_[e].value());
  }
  // The link->edges map, walked in link-id order so hash-map iteration
  // order never leaks into the checksum.
  for (std::size_t lid = 0; lid < linkEdges_.size(); ++lid) {
    const LinkEdgeRange& r = linkEdges_[lid];
    if (r.count == 0) continue;
    h = fnv1a(h, lid);
    for (const std::uint32_t e : r) h = fnv1a(h, e);
  }
  if (!sparseLinkEdges_.empty()) {
    std::vector<LinkId> ids;
    ids.reserve(sparseLinkEdges_.size());
    // det-waiver: keys collected then sorted before any use — order cannot leak
    for (const auto& [lid, r] : sparseLinkEdges_) ids.push_back(lid);
    std::sort(ids.begin(), ids.end(),
              [](LinkId a, LinkId b) { return a.value() < b.value(); });
    for (const LinkId lid : ids) {
      const LinkEdgeRange& r = sparseLinkEdges_.at(lid);
      h = fnv1a(h, lid.value());
      for (const std::uint32_t e : r) h = fnv1a(h, e);
    }
  }
  return h;
}

CompactGraph compileGraph(const NetworkGraph& g, const CompactGraph::CostFn& cost,
                          ProviderId home) {
  CompactGraph out;
  const std::vector<NodeId>& order = g.nodes();
  const std::size_t n = order.size();
  OPENSPACE_ASSERT(n < CompactGraph::kInvalidIndex,
                   "dense node indices fit in 32 bits");
  auto nt = std::make_shared<CompactGraph::NodeTable>();
  nt->denseToNode = order;
  nt->nodeKind.reserve(n);
  nt->nodeToDense.reserve(n);
  std::uint32_t maxIdValue = 0;
  for (std::size_t i = 0; i < n; ++i) {
    nt->nodeToDense.emplace(order[i], static_cast<std::uint32_t>(i));
    nt->nodeKind.push_back(g.node(order[i]).kind);
    maxIdValue = std::max(maxIdValue, order[i].value());
  }
  // Builder-assigned ids are dense (1..N), so a direct-mapped table makes
  // indexOf a single load. Skip it for pathological sparse id spaces where
  // it would waste memory.
  if (n > 0 && maxIdValue <= 4 * n + 1024) {
    nt->idToDense.assign(maxIdValue + 1, CompactGraph::kInvalidIndex);
    for (std::size_t i = 0; i < n; ++i) {
      nt->idToDense[order[i].value()] = static_cast<std::uint32_t>(i);
    }
  }
  out.nodes_ = std::move(nt);

  out.rowOffset_.reserve(n + 1);
  out.rowOffset_.push_back(0);
  const std::size_t edgeGuess = 2 * g.linkCount();
  out.edgeTo_.reserve(edgeGuess);
  out.edgeFrom_.reserve(edgeGuess);
  out.edgeCost_.reserve(edgeGuess);
  out.edgePropS_.reserve(edgeGuess);
  out.edgeQueueS_.reserve(edgeGuess);
  out.edgeCapBps_.reserve(edgeGuess);
  out.edgeLinkId_.reserve(edgeGuess);

  // Same density heuristic as node ids: builder link ids are 1..L, so the
  // direct-mapped table covers them all and the sparse map stays empty.
  std::uint64_t maxLinkIdValue = 0;
  for (const LinkId lid : g.links()) {
    maxLinkIdValue = std::max<std::uint64_t>(maxLinkIdValue, lid.value());
  }
  const bool denseLinks = maxLinkIdValue <= 4 * g.linkCount() + 1024;
  if (denseLinks) out.linkEdges_.resize(maxLinkIdValue + 1);

  const auto noteLinkEdge = [&](LinkId lid, std::uint32_t e) {
    if (denseLinks) {
      CompactGraph::LinkEdgeRange& r = out.linkEdges_[lid.value()];
      OPENSPACE_ASSERT(r.count < 2, "an undirected link compiles to <= 2 edges");
      r.e[r.count++] = e;
    } else {
      CompactGraph::LinkEdgeRange& r = out.sparseLinkEdges_[lid];
      OPENSPACE_ASSERT(r.count < 2, "an undirected link compiles to <= 2 edges");
      r.e[r.count++] = e;
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    const NodeId u = order[i];
    for (const LinkId lid : g.linksOf(u)) {
      const Link& l = g.link(lid);
      const double c = cost(g, l, home);
      if (std::isnan(c) || c < 0.0) {
        throw InvalidArgumentError("compileGraph: negative or NaN link cost");
      }
      if (std::isinf(c)) continue;  // forbidden edge: dropped at compile time
      const NodeId v = l.otherEnd(u);
      const auto itV = out.nodes_->nodeToDense.find(v);
      OPENSPACE_ASSERT(itV != out.nodes_->nodeToDense.end(),
                       "every link endpoint is a graph node");
      const auto e = static_cast<std::uint32_t>(out.edgeTo_.size());
      out.edgeTo_.push_back(itV->second);
      out.edgeFrom_.push_back(static_cast<std::uint32_t>(i));
      out.edgeCost_.push_back(c);
      out.edgePropS_.push_back(l.propagationDelayS);
      out.edgeQueueS_.push_back(l.queueingDelayS);
      out.edgeCapBps_.push_back(l.capacityBps);
      out.edgeLinkId_.push_back(lid);
      noteLinkEdge(lid, e);
    }
    out.rowOffset_.push_back(static_cast<std::uint32_t>(out.edgeTo_.size()));
  }
  return out;
}

}  // namespace openspace
