#include <openspace/topology/delta.hpp>

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include <openspace/core/assert.hpp>
#include <openspace/core/hash.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/geo/wgs84.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {

namespace {

/// losClearanceM sentinel that makes lineOfSightClear() unconditionally
/// true (block radius collapses to zero). The NearestNeighbors wiring
/// selects its k candidates by distance alone and only applies the
/// line-of-sight filter to the selected pairs — so its candidate adjacency
/// must be range-pruned but NOT LOS-pruned, or a blocked near neighbor
/// would be silently backfilled by a farther one the fresh path never
/// considers.
constexpr double kNoLosClearanceM = -wgs84::kMeanRadiusM;

std::uint64_t pairKey(NodeId a, NodeId b) noexcept {
  return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
}

/// The CSR-visible payload of two specs is bitwise identical (distanceM is
/// excluded: compileGraph never materializes it).
bool samePayload(const LinkSpec& x, const LinkSpec& y) noexcept {
  return bitsOf(x.propagationDelayS) == bitsOf(y.propagationDelayS) &&
         bitsOf(x.queueingDelayS) == bitsOf(y.queueingDelayS) &&
         bitsOf(x.capacityBps) == bitsOf(y.capacityBps);
}

bool sameStructure(const LinkSpec& x, const LinkSpec& y) noexcept {
  return x.a == y.a && x.b == y.b && x.type == y.type && x.band == y.band;
}

}  // namespace

TemporalCostModel delayCostModel() {
  TemporalCostModel m;
  m.spec = [](const LinkSpec& s) { return s.totalDelayS(); };
  m.link = [](const NetworkGraph&, const Link& l, ProviderId) {
    return l.totalDelayS();
  };
  m.kind = TemporalCostModel::Kind::Delay;
  return m;
}

TemporalCostModel hopCostModel() {
  TemporalCostModel m;
  m.spec = [](const LinkSpec&) { return 1.0; };
  m.link = [](const NetworkGraph&, const Link&, ProviderId) { return 1.0; };
  m.kind = TemporalCostModel::Kind::Hop;
  return m;
}

IncrementalTopology::IncrementalTopology(const TopologyBuilder& builder,
                                         const SnapshotOptions& opt,
                                         TemporalCostModel model)
    : builder_(builder), opt_(opt), model_(std::move(model)) {
  if (!model_.spec) {
    throw InvalidArgumentError("IncrementalTopology: null spec cost model");
  }
  const std::vector<SatelliteId>& sats = builder_.ephemeris().satellites();
  satIds_ = sats;
  const std::size_t s = sats.size();

  // Node template, replicating snapshot()'s emission order: satellites in
  // ephemeris order, then ground stations, then users (flag-gated).
  satNode_.reserve(s);
  for (const SatelliteId sid : sats) satNode_.push_back(builder_.nodeOf(sid));
  auto nt = std::make_shared<CompactGraph::NodeTable>();
  for (std::size_t i = 0; i < s; ++i) {
    nt->denseToNode.push_back(satNode_[i]);
    nt->nodeKind.push_back(NodeKind::Satellite);
  }
  const auto addSites = [&](const std::vector<TopologyBuilder::SiteEntry>& sites,
                            NodeKind kind, std::vector<SiteRec>& out) {
    for (const auto& entry : sites) {
      out.push_back({entry.node, geodeticToEcef(entry.site.location),
                     static_cast<std::uint32_t>(nt->denseToNode.size())});
      nt->denseToNode.push_back(entry.node);
      nt->nodeKind.push_back(kind);
    }
  };
  if (opt_.includeGroundStations) {
    addSites(builder_.stationSites(), NodeKind::GroundStation, stationRecs_);
  }
  if (opt_.includeUserLinks) {
    addSites(builder_.userSites(), NodeKind::User, userRecs_);
  }
  const std::size_t n = nt->denseToNode.size();
  OPENSPACE_ASSERT(n < CompactGraph::kInvalidIndex,
                   "dense node indices fit in 32 bits");

  // Same lookup structures as compileGraph: the hash map always, the
  // direct-map table under the same density heuristic.
  std::uint32_t maxIdValue = 0;
  nt->nodeToDense.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nt->nodeToDense.emplace(nt->denseToNode[i], static_cast<std::uint32_t>(i));
    maxIdValue = std::max(maxIdValue, nt->denseToNode[i].value());
  }
  if (n > 0 && maxIdValue <= 4 * n + 1024) {
    nt->idToDense.assign(maxIdValue + 1, CompactGraph::kInvalidIndex);
    for (std::size_t i = 0; i < n; ++i) {
      nt->idToDense[nt->denseToNode[i].value()] = static_cast<std::uint32_t>(i);
    }
  }
  nodeTable_ = std::move(nt);

  satLaser_.assign(s, 0);
  acceptedIsl_.resize(s);

  if (opt_.wiring == IslWiring::PlusGrid) {
    // The builder validates these per snapshot; validate once up front.
    if (opt_.planes <= 0 || s == 0 ||
        s % static_cast<std::size_t>(opt_.planes) != 0) {
      throw InvalidArgumentError(
          "snapshot: PlusGrid wiring requires planes dividing the fleet");
    }
    const PlaneGrid grid(s, opt_.planes);
    const auto addPair = [&](std::size_t i, std::size_t j) {
      if (i == j) {
        throw InvalidArgumentError(
            "IncrementalTopology: PlusGrid wiring wires a satellite to "
            "itself (degenerate plane/slot counts)");
      }
      plusGridPairs_.emplace_back(static_cast<std::uint32_t>(i),
                                  static_cast<std::uint32_t>(j));
    };
    for (std::size_t idx = 0; idx < s; ++idx) {
      const PlaneId plane = grid.planeOf(idx);
      const std::size_t slot = grid.slotOf(idx);
      addPair(idx, grid.indexOf(plane, slot + 1));
      if (!grid.isSeamPlane(plane) || opt_.interPlaneSeam) {
        addPair(idx, grid.indexOf(grid.nextPlane(plane), slot));
      }
    }
  }
}

void IncrementalTopology::enumerateSpecs(const ConstellationSnapshot& snap) {
  nextSpecs_.clear();
  const std::size_t s = satIds_.size();
  // Laser flags only move when someone calls setCapabilities(); keying the
  // refresh on the builder's version counter turns the per-step capability
  // hash lookups into a no-op for the common static-capability sweep.
  if (const std::uint64_t v = builder_.capabilitiesVersion();
      v != satLaserVersion_) {
    for (std::size_t i = 0; i < s; ++i) {
      satLaser_[i] =
          builder_.capabilities(satIds_[i]).hasLaserTerminal ? char{1} : char{0};
    }
    satLaserVersion_ = v;
  }
  for (std::size_t i = 0; i < s; ++i) {
    acceptedIsl_[i].clear();
  }
  const std::vector<Vec3>& satEci = snap.eci();

  // The tryAddIsl twin: identical filters in identical order, with the
  // builder's findLink() dedup replayed against the accepted-neighbor
  // lists (only *accepted* links suppress a later duplicate attempt — a
  // filtered attempt must leave the later attempt free to re-evaluate,
  // exactly like the fresh path).
  const auto tryIsl = [&](std::size_t i, std::size_t j) {
    const double dist = satEci[i].distanceTo(satEci[j]);
    if (dist > opt_.maxIslRangeM) return;
    if (!lineOfSightClear(satEci[i], satEci[j], km(80.0))) return;
    for (const std::uint32_t q : acceptedIsl_[i]) {
      if (q == j) return;  // findLink dedup replay
    }
    const bool laser = opt_.preferLaser && satLaser_[i] != 0 && satLaser_[j] != 0;
    const double cap = islCapacityBps(dist, laser);
    if (cap <= 0.0) return;
    acceptedIsl_[i].push_back(static_cast<std::uint32_t>(j));
    acceptedIsl_[j].push_back(static_cast<std::uint32_t>(i));
    LinkSpec spec;
    spec.a = satNode_[i];
    spec.b = satNode_[j];
    spec.type = laser ? LinkType::IslLaser : LinkType::IslRf;
    spec.band = laser ? Band::Optical : Band::S;
    spec.distanceM = dist;
    spec.propagationDelayS = dist / kSpeedOfLightMps;
    spec.capacityBps = cap;
    nextSpecs_.push_back(spec);
  };

  switch (opt_.wiring) {
    case IslWiring::PlusGrid: {
      for (const auto& [i, j] : plusGridPairs_) tryIsl(i, j);
      break;
    }
    case IslWiring::NearestNeighbors: {
      // Range-pruned (never LOS-pruned, see kNoLosClearanceM) candidates
      // from the snapshot's spatial grid. Every in-range neighbor is
      // strictly closer than every out-of-range one, so the k smallest
      // (distance, index) pairs of the fresh all-pairs scan that survive
      // the range filter are exactly the min(k, in-range) smallest
      // in-range pairs — same accepted set, same emission order.
      const auto topo = snap.islTopology(opt_.maxIslRangeM, kNoLosClearanceM);
      for (std::size_t i = 0; i < s; ++i) {
        nnCand_.clear();
        for (const auto& [j, d] : topo->adjacency[i]) nnCand_.emplace_back(d, j);
        const std::size_t k = std::min(
            nnCand_.size(), static_cast<std::size_t>(std::max(0, opt_.nearestK)));
        std::partial_sort(nnCand_.begin(),
                          nnCand_.begin() + static_cast<std::ptrdiff_t>(k),
                          nnCand_.end());
        for (std::size_t q = 0; q < k; ++q) tryIsl(i, nnCand_[q].second);
      }
      break;
    }
    case IslWiring::AllInRange: {
      const auto topo = snap.islTopology(opt_.maxIslRangeM);
      for (std::size_t i = 0; i < s; ++i) {
        for (const auto& neighbor : topo->adjacency[i]) {
          if (neighbor.first > i) tryIsl(i, neighbor.first);
        }
      }
      break;
    }
  }

  // Conservative horizon prefilter: elevationAngleRad(site, sat) is
  // pi/2 - acos(dot(up, los)/..) with both norms positive, so its sign is
  // the sign of dot(site, sat - site). A non-positive dot therefore proves
  // elev <= 0 < minElevationRad and the sat can be skipped without
  // evaluating the two normalizations + acos; every survivor still goes
  // through the exact elevation test, so the accepted set — and every
  // emitted double — is bit-identical to the fresh path's. Only sound for
  // a strictly positive mask (elev == 0 must still be rejected by it).
  const bool horizonPrefilter = opt_.minElevationRad > 0.0;
  const std::vector<Vec3>& satEcefArr = snap.ecef();
  const auto groundLinks = [&](const std::vector<SiteRec>& sites, LinkType type) {
    for (const SiteRec& site : sites) {
      for (std::size_t i = 0; i < s; ++i) {
        const Vec3& satEcef = satEcefArr[i];
        if (horizonPrefilter && (satEcef - site.ecef).dot(site.ecef) <= 0.0) {
          continue;
        }
        const double elev = elevationAngleRad(site.ecef, satEcef);
        if (elev < opt_.minElevationRad) continue;
        const double dist = site.ecef.distanceTo(satEcef);
        const double cap = (type == LinkType::Gsl)
                               ? gslCapacityBps(dist, elev)
                               : userLinkCapacityBps(dist, elev);
        if (cap <= 0.0) continue;
        LinkSpec spec;
        spec.a = satNode_[i];
        spec.b = site.node;
        spec.type = type;
        spec.band = Band::Ku;
        spec.distanceM = dist;
        spec.propagationDelayS = dist / kSpeedOfLightMps;
        spec.capacityBps = cap;
        nextSpecs_.push_back(spec);
      }
    }
  };
  if (opt_.includeGroundStations) groundLinks(stationRecs_, LinkType::Gsl);
  if (opt_.includeUserLinks) groundLinks(userRecs_, LinkType::UserLink);
}

void IncrementalTopology::evaluateCosts() {
  nextCosts_.resize(nextSpecs_.size());
  // The canonical models are inlined (same expressions as their factory
  // lambdas, so the produced doubles are identical); only Custom models
  // pay the type-erased call per link.
  switch (model_.kind) {
    case TemporalCostModel::Kind::Hop:
      std::fill(nextCosts_.begin(), nextCosts_.end(), 1.0);
      return;
    case TemporalCostModel::Kind::Delay:
      for (std::size_t p = 0; p < nextSpecs_.size(); ++p) {
        const double c = nextSpecs_[p].totalDelayS();
        if (std::isnan(c) || c < 0.0) {
          throw InvalidArgumentError("compileGraph: negative or NaN link cost");
        }
        nextCosts_[p] = c;
      }
      return;
    case TemporalCostModel::Kind::Custom:
      break;
  }
  for (std::size_t p = 0; p < nextSpecs_.size(); ++p) {
    const double c = model_.spec(nextSpecs_[p]);
    if (std::isnan(c) || c < 0.0) {
      throw InvalidArgumentError("compileGraph: negative or NaN link cost");
    }
    nextCosts_[p] = c;
  }
}

std::shared_ptr<const CompactGraph> IncrementalTopology::rebuildFromSpecs() const {
  auto g = std::make_shared<CompactGraph>();
  g->nodes_ = nodeTable_;  // shared, never copied
  const std::size_t n = nodeTable_->denseToNode.size();
  const std::size_t linkCount = nextSpecs_.size();

  const auto denseOf = [&](NodeId id) -> std::uint32_t {
    const CompactGraph::NodeTable& nt = *nodeTable_;
    if (id.value() < nt.idToDense.size() &&
        nt.idToDense[id.value()] != CompactGraph::kInvalidIndex) {
      return nt.idToDense[id.value()];
    }
    const auto it = nt.nodeToDense.find(id);
    OPENSPACE_ASSERT(it != nt.nodeToDense.end(),
                     "every spec endpoint is a template node");
    return it->second;
  };

  // Counting-sort CSR build. Walking specs in ascending position within
  // each row reproduces compileGraph's per-node adjacency order exactly:
  // NetworkGraph::linksOf() lists links in addLink order, which is spec
  // order by construction.
  std::vector<std::uint32_t> degree(n, 0);
  std::size_t edgeCount = 0;
  for (std::size_t p = 0; p < linkCount; ++p) {
    if (std::isinf(nextCosts_[p])) continue;  // forbidden: dropped, both ways
    ++degree[denseOf(nextSpecs_[p].a)];
    ++degree[denseOf(nextSpecs_[p].b)];
    edgeCount += 2;
  }
  g->rowOffset_.resize(n + 1);
  g->rowOffset_[0] = 0;
  for (std::size_t u = 0; u < n; ++u) {
    g->rowOffset_[u + 1] = g->rowOffset_[u] + degree[u];
  }
  g->edgeTo_.resize(edgeCount);
  g->edgeFrom_.resize(edgeCount);
  g->edgeCost_.resize(edgeCount);
  g->edgePropS_.resize(edgeCount);
  g->edgeQueueS_.resize(edgeCount);
  g->edgeCapBps_.resize(edgeCount);
  g->edgeLinkId_.resize(edgeCount);
  g->linkEdges_.resize(linkCount + 1);

  std::vector<std::uint32_t> fill(g->rowOffset_.begin(), g->rowOffset_.end() - 1);
  for (std::size_t p = 0; p < linkCount; ++p) {
    if (std::isinf(nextCosts_[p])) continue;
    const LinkSpec& spec = nextSpecs_[p];
    const std::uint32_t ua = denseOf(spec.a);
    const std::uint32_t ub = denseOf(spec.b);
    const LinkId lid{static_cast<LinkId::rep_type>(p + 1)};
    const std::uint32_t ea = fill[ua]++;
    const std::uint32_t eb = fill[ub]++;
    const auto place = [&](std::uint32_t e, std::uint32_t from, std::uint32_t to) {
      g->edgeTo_[e] = to;
      g->edgeFrom_[e] = from;
      g->edgeCost_[e] = nextCosts_[p];
      g->edgePropS_[e] = spec.propagationDelayS;
      g->edgeQueueS_[e] = spec.queueingDelayS;
      g->edgeCapBps_[e] = spec.capacityBps;
      g->edgeLinkId_[e] = lid;
    };
    place(ea, ua, ub);
    place(eb, ub, ua);
    CompactGraph::LinkEdgeRange& r = g->linkEdges_[p + 1];
    r.count = 2;
    r.e[0] = std::min(ea, eb);  // compileGraph records edges in ascending
    r.e[1] = std::max(ea, eb);  // edge-index order
  }
  return g;
}

std::shared_ptr<const CompactGraph> IncrementalTopology::patchCosts(
    const std::vector<std::uint32_t>& changed) const {
  auto g = std::make_shared<CompactGraph>(*graph_);
  for (const std::uint32_t p : changed) {
    const LinkSpec& spec = nextSpecs_[p];
    const CompactGraph::LinkEdgeRange r = g->linkEdges_[p + 1];
    for (const std::uint32_t e : r) {
      g->edgeCost_[e] = nextCosts_[p];
      g->edgePropS_[e] = spec.propagationDelayS;
      g->edgeQueueS_[e] = spec.queueingDelayS;
      g->edgeCapBps_[e] = spec.capacityBps;
    }
  }
  return g;
}

void IncrementalTopology::diffStructural() {
  std::unordered_map<std::uint64_t, std::uint32_t> prevByPair;
  prevByPair.reserve(specs_.size());
  for (std::size_t p = 0; p < specs_.size(); ++p) {
    prevByPair.emplace(pairKey(specs_[p].a, specs_[p].b),
                       static_cast<std::uint32_t>(p));
  }
  for (const LinkSpec& spec : nextSpecs_) {
    const auto it = prevByPair.find(pairKey(spec.a, spec.b));
    if (it == prevByPair.end()) {
      ++delta_.addedLinks;
      continue;
    }
    if (samePayload(specs_[it->second], spec)) {
      ++delta_.unchangedLinks;
    } else {
      ++delta_.costChangedLinks;
    }
    prevByPair.erase(it);
  }
  delta_.removedLinks = prevByPair.size();
}

const TopologyDelta& IncrementalTopology::step(double tSeconds) {
  if (builder_.satelliteCount() != satIds_.size() ||
      (opt_.includeGroundStations &&
       builder_.groundStationCount() != stationRecs_.size()) ||
      (opt_.includeUserLinks && builder_.userCount() != userRecs_.size())) {
    throw StateError(
        "IncrementalTopology: builder registry changed mid-sweep (the node "
        "template is fixed at construction)");
  }
  const auto snap = SnapshotCache::global().at(builder_.ephemeris(), tSeconds);
  enumerateSpecs(*snap);
  evaluateCosts();

  delta_ = TopologyDelta{};
  delta_.tSeconds = tSeconds;
  delta_.linkCount = nextSpecs_.size();

  if (!graph_) {
    delta_.structural = true;
    delta_.addedLinks = nextSpecs_.size();
    graph_ = rebuildFromSpecs();
  } else {
    bool structural = nextSpecs_.size() != specs_.size();
    changedSpecs_.clear();
    if (!structural) {
      for (std::size_t p = 0; p < nextSpecs_.size(); ++p) {
        if (!sameStructure(specs_[p], nextSpecs_[p]) ||
            std::isinf(costs_[p]) != std::isinf(nextCosts_[p])) {
          structural = true;
          break;
        }
        if (!samePayload(specs_[p], nextSpecs_[p]) ||
            bitsOf(costs_[p]) != bitsOf(nextCosts_[p])) {
          changedSpecs_.push_back(static_cast<std::uint32_t>(p));
        }
      }
    }
    if (structural) {
      delta_.structural = true;
      diffStructural();
      graph_ = rebuildFromSpecs();
    } else {
      delta_.costChangedLinks = changedSpecs_.size();
      delta_.unchangedLinks = nextSpecs_.size() - changedSpecs_.size();
      if (!changedSpecs_.empty()) {
        graph_ = patchCosts(changedSpecs_);
      }
      // else: bitwise-identical step (repeated timestamp) — share the
      // previous graph as-is.
    }
  }

  specs_.swap(nextSpecs_);
  costs_.swap(nextCosts_);
  ++steps_;
  return delta_;
}

}  // namespace openspace
