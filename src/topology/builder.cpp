#include <openspace/topology/builder.hpp>

#include <algorithm>
#include <cmath>

#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/orbit/walker.hpp>
#include <openspace/orbit/visibility.hpp>
#include <openspace/phy/linkbudget.hpp>

namespace openspace {

namespace {

LinkCapabilities defaultCapabilities() {
  LinkCapabilities caps;
  caps.islBands = {Band::S, Band::Uhf};  // the RF interoperability minimum
  caps.hasLaserTerminal = false;
  caps.maxIslCount = 4;
  return caps;
}

}  // namespace

// These helpers run once per candidate link per snapshot — the hottest
// leaf of every temporal sweep. Each terminal pair is compiled once into a
// CapacityKernel with a 3 dB pointing/polarization/implementation margin;
// the kernel is bit-identical to the full computeLinkBudget() +
// modcodRateBps() round trip by contract (property-tested in test_phy).

double islCapacityBps(double distanceM, bool laser) {
  static const CapacityKernel rf(terminals::sBandIsl(), terminals::sBandIsl(),
                                 3.0);
  static const CapacityKernel optical(terminals::laserIsl(),
                                      terminals::laserIsl(), 3.0);
  return (laser ? optical : rf).rateBps(distanceM, 0.0);
}

double gslCapacityBps(double distanceM, double elevationRad) {
  static const CapacityKernel kernel(terminals::kuGround(),
                                     terminals::kuGroundStation(), 3.0);
  const double atm = atmosphericLossDb(Band::Ku, std::max(elevationRad, 0.01));
  return kernel.rateBps(distanceM, atm);
}

double userLinkCapacityBps(double distanceM, double elevationRad) {
  static const CapacityKernel kernel(terminals::kuGround(),
                                     terminals::kuUserTerminal(), 3.0);
  const double atm = atmosphericLossDb(Band::Ku, std::max(elevationRad, 0.01));
  return kernel.rateBps(distanceM, atm);
}

TopologyBuilder::TopologyBuilder(const EphemerisService& ephemeris)
    : ephemeris_(ephemeris) {
  for (const SatelliteId sid : ephemeris_.satellites()) {
    const NodeId nid{nextNodeValue_++};
    satNodes_.emplace(sid, nid);
    nodeSats_.emplace(nid, sid);
    caps_.emplace(sid, defaultCapabilities());
  }
}

void TopologyBuilder::setCapabilities(SatelliteId id, LinkCapabilities caps) {
  if (!satNodes_.contains(id)) {
    throw NotFoundError("TopologyBuilder::setCapabilities: unknown satellite");
  }
  if (caps.islBands.empty()) {
    throw InvalidArgumentError(
        "TopologyBuilder: OpenSpace satellites must support at least one RF "
        "ISL band (interoperability minimum, paper section 2.1)");
  }
  caps_[id] = std::move(caps);
  ++capsVersion_;
}

const LinkCapabilities& TopologyBuilder::capabilities(SatelliteId id) const {
  const auto it = caps_.find(id);
  if (it == caps_.end()) {
    throw NotFoundError("TopologyBuilder::capabilities: unknown satellite");
  }
  return it->second;
}

GroundStationId TopologyBuilder::addGroundStation(GroundSite site) {
  const NodeId id{nextNodeValue_++};
  stations_.push_back({id, std::move(site)});
  return GroundStationId{static_cast<GroundStationId::rep_type>(stations_.size())};
}

NodeId TopologyBuilder::addUser(GroundSite site) {
  const NodeId id{nextNodeValue_++};
  users_.push_back({id, std::move(site)});
  return id;
}

NodeId TopologyBuilder::nodeOf(SatelliteId id) const {
  const auto it = satNodes_.find(id);
  if (it == satNodes_.end()) {
    throw NotFoundError("TopologyBuilder::nodeOf: unknown satellite");
  }
  return it->second;
}

NodeId TopologyBuilder::nodeOf(GroundStationId id) const {
  if (!id.isValid() || id.value() > stations_.size()) {
    throw NotFoundError("TopologyBuilder::nodeOf: unknown ground station");
  }
  return stations_[id.value() - 1].node;
}

std::vector<GroundStationId> TopologyBuilder::groundStations() const {
  std::vector<GroundStationId> out;
  out.reserve(stations_.size());
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    out.push_back(GroundStationId{static_cast<GroundStationId::rep_type>(i + 1)});
  }
  return out;
}

SatelliteId TopologyBuilder::satelliteOf(NodeId id) const {
  const auto it = nodeSats_.find(id);
  if (it == nodeSats_.end()) {
    throw NotFoundError("TopologyBuilder::satelliteOf: node is not a satellite");
  }
  return it->second;
}

NetworkGraph TopologyBuilder::snapshot(double tSeconds,
                                       const SnapshotOptions& opt) const {
  NetworkGraph g;

  // --- nodes -----------------------------------------------------------
  // One shared propagation of the whole fleet (LRU-cached across repeated
  // snapshots of the same instant).
  const auto& sats = ephemeris_.satellites();
  const auto snap = SnapshotCache::global().at(ephemeris_, tSeconds);
  const std::vector<Vec3>& satEci = snap->eci();
  for (std::size_t i = 0; i < sats.size(); ++i) {
    const auto& rec = ephemeris_.record(sats[i]);
    Node n;
    n.id = satNodes_.at(sats[i]);
    n.kind = NodeKind::Satellite;
    n.provider = rec.owner;
    n.name = "sat-" + std::to_string(sats[i].value());
    n.satellite = sats[i];
    g.addNode(std::move(n));
  }
  if (opt.includeGroundStations) {
    for (const auto& s : stations_) {
      Node n;
      n.id = s.node;
      n.kind = NodeKind::GroundStation;
      n.provider = s.site.provider;
      n.name = s.site.name;
      n.location = s.site.location;
      g.addNode(std::move(n));
    }
  }
  if (opt.includeUserLinks) {
    for (const auto& u : users_) {
      Node n;
      n.id = u.node;
      n.kind = NodeKind::User;
      n.provider = u.site.provider;
      n.name = u.site.name;
      n.location = u.site.location;
      g.addNode(std::move(n));
    }
  }

  // --- ISLs ------------------------------------------------------------
  const auto tryAddIsl = [&](std::size_t i, std::size_t j) {
    const double dist = satEci[i].distanceTo(satEci[j]);
    if (dist > opt.maxIslRangeM) return;
    if (!lineOfSightClear(satEci[i], satEci[j], km(80.0))) return;
    const NodeId na = satNodes_.at(sats[i]);
    const NodeId nb = satNodes_.at(sats[j]);
    if (g.findLink(na, nb)) return;
    const bool laser = opt.preferLaser && caps_.at(sats[i]).hasLaserTerminal &&
                       caps_.at(sats[j]).hasLaserTerminal;
    const double cap = islCapacityBps(dist, laser);
    if (cap <= 0.0) return;
    Link l;
    l.a = na;
    l.b = nb;
    l.type = laser ? LinkType::IslLaser : LinkType::IslRf;
    l.band = laser ? Band::Optical : Band::S;
    l.distanceM = dist;
    l.propagationDelayS = dist / kSpeedOfLightMps;
    l.capacityBps = cap;
    g.addLink(l);
  };

  switch (opt.wiring) {
    case IslWiring::PlusGrid: {
      if (opt.planes <= 0 || sats.empty() ||
          sats.size() % static_cast<std::size_t>(opt.planes) != 0) {
        throw InvalidArgumentError(
            "snapshot: PlusGrid wiring requires planes dividing the fleet");
      }
      const PlaneGrid grid(sats.size(), opt.planes);
      for (std::size_t idx = 0; idx < sats.size(); ++idx) {
        const PlaneId plane = grid.planeOf(idx);
        const std::size_t slot = grid.slotOf(idx);
        // Intra-plane ring neighbor.
        tryAddIsl(idx, grid.indexOf(plane, slot + 1));
        // Same-slot neighbor in the next plane (seam optional).
        if (!grid.isSeamPlane(plane) || opt.interPlaneSeam) {
          tryAddIsl(idx, grid.indexOf(grid.nextPlane(plane), slot));
        }
      }
      break;
    }
    case IslWiring::NearestNeighbors: {
      for (std::size_t i = 0; i < sats.size(); ++i) {
        std::vector<std::pair<double, std::size_t>> dists;
        dists.reserve(sats.size());
        for (std::size_t j = 0; j < sats.size(); ++j) {
          if (j == i) continue;
          dists.emplace_back(satEci[i].distanceTo(satEci[j]), j);
        }
        const std::size_t k =
            std::min(dists.size(), static_cast<std::size_t>(std::max(0, opt.nearestK)));
        std::partial_sort(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(k),
                          dists.end());
        for (std::size_t n = 0; n < k; ++n) tryAddIsl(i, dists[n].second);
      }
      break;
    }
    case IslWiring::AllInRange: {
      // Candidate pairs from the snapshot's spatially pruned adjacency
      // (range + line-of-sight prefiltered) instead of an all-pairs scan.
      const auto isl = snap->islTopology(opt.maxIslRangeM);
      for (std::size_t i = 0; i < sats.size(); ++i) {
        for (const auto& neighbor : isl->adjacency[i]) {
          if (neighbor.first > i) tryAddIsl(i, neighbor.first);
        }
      }
      break;
    }
  }

  // --- ground links ------------------------------------------------------
  const auto addGroundLinks = [&](const std::vector<SiteEntry>& sites,
                                  LinkType type) {
    for (const auto& site : sites) {
      const Vec3 siteEcef = geodeticToEcef(site.site.location);
      for (std::size_t i = 0; i < sats.size(); ++i) {
        const Vec3& satEcef = snap->ecef(i);
        const double elev = elevationAngleRad(siteEcef, satEcef);
        if (elev < opt.minElevationRad) continue;
        const double dist = siteEcef.distanceTo(satEcef);
        const double cap = (type == LinkType::Gsl)
                               ? gslCapacityBps(dist, elev)
                               : userLinkCapacityBps(dist, elev);
        if (cap <= 0.0) continue;
        Link l;
        l.a = satNodes_.at(sats[i]);
        l.b = site.node;
        l.type = type;
        l.band = Band::Ku;
        l.distanceM = dist;
        l.propagationDelayS = dist / kSpeedOfLightMps;
        l.capacityBps = cap;
        g.addLink(l);
      }
    }
  };
  if (opt.includeGroundStations) addGroundLinks(stations_, LinkType::Gsl);
  if (opt.includeUserLinks) addGroundLinks(users_, LinkType::UserLink);

  return g;
}

}  // namespace openspace
