// Incremental temporal topology: delta-patched CompactGraphs.
//
// A temporal sweep (routing/temporal.hpp, sim/flow_sweep.hpp) needs one
// compiled CompactGraph per time step. The fresh path builds each step from
// scratch: TopologyBuilder::snapshot() materializes a hash-map NetworkGraph
// (node/link maps, adjacency vectors, per-node name strings), then
// compileGraph() walks it back down into flat arrays. Between consecutive
// steps almost none of that structure changes — the node set is static, the
// link *set* changes rarely (an ISL or ground contact opening/closing), and
// only the per-link payloads (range, delay, capacity) drift.
//
// IncrementalTopology exploits that: per step it enumerates the snapshot's
// links directly into a flat ordered LinkSpec list (no NetworkGraph, no
// hashing, no strings), diffs that list against the previous step, and
// produces the new CompactGraph by patching — copying the previous flat
// arrays and overwriting the payload of changed links; only a structural
// change (link set or order) triggers an array rebuild, and even that is a
// counting-sort pass over the specs, never a NetworkGraph.
//
// Bit-identity contract: graph() after step(t) is indistinguishable from
//   compileGraph(builder.snapshot(t, opt), model.link, home)
// — same dense node numbering, same CSR edge order, same LinkIds, same
// payload and cost doubles to the last bit (contentChecksum()-equal).
// The fresh path stays the executable spec; property tests sweep all three
// IslWiring policies on randomized constellations and compare checksums
// every step. The argument for why the enumeration reproduces the builder's
// link order exactly (including NearestNeighbors selection-order and
// duplicate-attempt semantics) lives in DESIGN.md §13.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include <openspace/topology/builder.hpp>
#include <openspace/topology/compact_graph.hpp>

namespace openspace {

/// Everything the builder knows about one snapshot link, in link-insertion
/// order. Field-for-field the subset of Link that compileGraph() consumes;
/// LinkId is implicit (position p in the per-step list => LinkId p+1,
/// matching NetworkGraph::addLink's sequential assignment).
struct LinkSpec {
  NodeId a{};  ///< Same endpoint order as the builder's Link (a = satellite
               ///< of the outer loop / lower index; b = neighbor or site).
  NodeId b{};
  LinkType type = LinkType::IslRf;
  Band band = Band::S;
  double distanceM = 0.0;
  double propagationDelayS = 0.0;
  double queueingDelayS = 0.0;  ///< Always 0 for builder snapshots.
  double capacityBps = 0.0;

  double totalDelayS() const noexcept {
    return propagationDelayS + queueingDelayS;
  }
};

/// Cost model over a LinkSpec — the delta-path twin of routing's LinkCostFn.
/// Must be a pure function of the spec (no NetworkGraph, no provider
/// context: the delta path never materializes either).
using LinkSpecCostFn = std::function<double(const LinkSpec&)>;

/// A cost model expressed both ways: `spec` drives the delta path, `link`
/// is the executable-spec equivalent for fresh compileGraph(). The pair
/// must agree bit-for-bit on builder-produced links — the delta==fresh
/// property gates depend on it.
struct TemporalCostModel {
  LinkSpecCostFn spec;
  CompactGraph::CostFn link;
  /// Set by the canonical factories below so the per-step cost loop can
  /// inline the evaluation instead of going through the type-erased
  /// `spec` call; hand-built models stay Custom (always correct, just the
  /// std::function call per link). The tag MUST agree with `spec` — the
  /// inlined expressions are the factories' own lambdas.
  enum class Kind { Custom, Delay, Hop } kind = Kind::Custom;
};

/// Edge weight = total link delay (seconds) — the temporal router's model.
TemporalCostModel delayCostModel();
/// Edge weight = 1 per link (hop count) — cost-static, so only structural
/// link churn perturbs routes; the route-repair showcase model.
TemporalCostModel hopCostModel();

/// How a multi-snapshot consumer builds its per-step graphs.
enum class TemporalBuild {
  Delta,         ///< IncrementalTopology patching (production path).
  FreshCompile,  ///< builder.snapshot() + compileGraph() per step (the
                 ///< executable spec the delta path is pinned against).
};

/// What one step() changed relative to the previous step.
struct TopologyDelta {
  double tSeconds = 0.0;
  /// Link set/order changed => the CSR arrays were rebuilt; false => the
  /// previous arrays were copied and payload-patched in place.
  bool structural = false;
  std::size_t addedLinks = 0;    ///< Present now, absent last step (by endpoints).
  std::size_t removedLinks = 0;  ///< Present last step, absent now.
  std::size_t costChangedLinks = 0;  ///< Persisting, any payload bit changed.
  std::size_t unchangedLinks = 0;    ///< Persisting, bitwise identical.
  std::size_t linkCount = 0;         ///< Total links this step.
};

/// Per-step compiled-topology producer. One instance walks one sweep:
/// construct, then call step(t) for each (monotonic or not) timestamp and
/// read graph(). Satellite positions come from SnapshotCache::global(), so
/// repeated sweeps over the same window share propagations with every other
/// snapshot consumer.
///
/// The builder's registry (satellites, ground sites) must not change while
/// a sweep is running; step() throws StateError if it does. The builder
/// must outlive this object.
class IncrementalTopology {
 public:
  /// Validates wiring options eagerly (the fresh path validates per
  /// snapshot): throws InvalidArgumentError for PlusGrid options the
  /// builder would reject, including degenerate self-loop grids.
  IncrementalTopology(const TopologyBuilder& builder, const SnapshotOptions& opt,
                      TemporalCostModel model = delayCostModel());

  /// Advance to time t: enumerate, diff, patch. Returns what changed.
  const TopologyDelta& step(double tSeconds);

  /// The compiled graph of the last step() — contentChecksum()-identical
  /// to a fresh compile of the same snapshot. Null before the first step.
  std::shared_ptr<const CompactGraph> graph() const noexcept { return graph_; }
  /// The last step's links in insertion order (LinkId p+1 == specs()[p]).
  const std::vector<LinkSpec>& linkSpecs() const noexcept { return specs_; }
  const TopologyDelta& lastDelta() const noexcept { return delta_; }
  std::size_t stepCount() const noexcept { return steps_; }

 private:
  struct SiteRec {
    NodeId node;
    Vec3 ecef;
    std::uint32_t dense;
  };

  void enumerateSpecs(const class ConstellationSnapshot& snap);
  void evaluateCosts();
  std::shared_ptr<const CompactGraph> rebuildFromSpecs() const;
  std::shared_ptr<const CompactGraph> patchCosts(
      const std::vector<std::uint32_t>& changed) const;
  void diffStructural();

  const TopologyBuilder& builder_;
  SnapshotOptions opt_;
  TemporalCostModel model_;

  // Immutable node template, replicating the fresh compile's dense
  // numbering (sats in ephemeris order, then stations, then users) and its
  // lookup structures (nodeToDense always; idToDense when the id range is
  // dense — the same heuristic compileGraph applies). Built once and
  // shared by pointer into every produced CompactGraph, so per-step
  // patches never re-copy the node hash map.
  std::shared_ptr<const CompactGraph::NodeTable> nodeTable_;

  // Per-satellite constants (node id, dense index) and per-step laser
  // capability flags (re-read each step: capabilities may change).
  std::vector<SatelliteId> satIds_;
  std::vector<NodeId> satNode_;
  std::vector<char> satLaser_;
  /// builder_.capabilitiesVersion() satLaser_ was last refreshed at; ~0
  /// forces the first step to read every satellite's capabilities.
  std::uint64_t satLaserVersion_ = ~std::uint64_t{0};
  std::vector<SiteRec> stationRecs_;
  std::vector<SiteRec> userRecs_;

  /// PlusGrid candidate pairs in the builder's attempt order, duplicates
  /// preserved (the builder's findLink dedup is replayed at runtime).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> plusGridPairs_;

  // Step state.
  std::vector<LinkSpec> specs_, nextSpecs_;
  std::vector<double> costs_, nextCosts_;
  std::shared_ptr<const CompactGraph> graph_;
  TopologyDelta delta_;
  std::size_t steps_ = 0;

  // Reusable per-step scratch.
  std::vector<std::vector<std::uint32_t>> acceptedIsl_;  ///< findLink replay.
  std::vector<std::pair<double, std::size_t>> nnCand_;
  std::vector<std::uint32_t> changedSpecs_;
};

}  // namespace openspace
