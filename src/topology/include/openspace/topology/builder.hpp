// Snapshot builder: geometry + capabilities -> NetworkGraph at time t.
//
// The builder owns the stable node table (satellites from the shared
// ephemeris, ground stations and users at fixed sites) and materializes a
// topology snapshot for any instant: which ISLs exist under the configured
// wiring policy, which ground links are above the elevation mask, and what
// capacity each link closes at given the standardized terminals.
#pragma once

#include <cstdint>
#include <unordered_map>

#include <openspace/mac/beacon.hpp>
#include <openspace/phy/terminal.hpp>
#include <openspace/topology/graph.hpp>

namespace openspace {

/// A fixed ground site (station or user).
struct GroundSite {
  std::string name;
  Geodetic location;
  ProviderId provider{};
};

/// How ISLs are wired in a snapshot.
enum class IslWiring {
  /// +grid: intra-plane ring neighbors plus same-slot neighbors in adjacent
  /// planes. Requires plane geometry (Walker constellations); the paper
  /// notes Walker Star's "relative simplicity in establishing ISLs both on
  /// the same orbital plane and adjacent planes".
  PlusGrid,
  /// Each satellite pairs with its k nearest line-of-sight neighbors —
  /// the general policy for uncoordinated multi-provider fleets.
  NearestNeighbors,
  /// Every line-of-sight pair within range (small constellations only).
  AllInRange,
};

/// Snapshot construction options.
struct SnapshotOptions {
  IslWiring wiring = IslWiring::NearestNeighbors;
  int nearestK = 4;                   ///< For NearestNeighbors.
  int planes = 0;                     ///< For PlusGrid: plane count.
  bool interPlaneSeam = false;        ///< PlusGrid: wire across the Walker seam.
  double maxIslRangeM = 6'000'000.0;  ///< ISLs longer than this do not close.
  double minElevationRad = 0.0;       ///< Elevation mask for ground links
                                      ///< (default ~0: horizon).
  bool includeUserLinks = true;
  bool includeGroundStations = true;
  /// If both endpoints advertise laser terminals, upgrade the ISL to
  /// optical (§2.1: RF minimum, laser optional).
  bool preferLaser = true;
};

class TopologyBuilder {
 public:
  /// A registered ground site and its stable node id.
  struct SiteEntry {
    NodeId node;
    GroundSite site;
  };

  /// The ephemeris service must outlive the builder.
  explicit TopologyBuilder(const EphemerisService& ephemeris);

  /// Satellites default to RF-only (S-band + UHF) capabilities; override
  /// per satellite to add laser terminals etc. Throws NotFoundError for
  /// satellites absent from the ephemeris.
  void setCapabilities(SatelliteId id, LinkCapabilities caps);

  const LinkCapabilities& capabilities(SatelliteId id) const;

  /// Register a ground station; returns its stable typed handle.
  GroundStationId addGroundStation(GroundSite site);
  NodeId addUser(GroundSite site);

  /// NodeId of a satellite (assigned at construction, ephemeris order).
  NodeId nodeOf(SatelliteId id) const;
  /// NodeId of a registered ground station. Throws NotFoundError.
  NodeId nodeOf(GroundStationId id) const;
  /// SatelliteId behind a node. Throws if the node is not a satellite.
  SatelliteId satelliteOf(NodeId id) const;
  /// All registered ground stations, in registration order.
  std::vector<GroundStationId> groundStations() const;

  /// Materialize the topology at time t.
  NetworkGraph snapshot(double tSeconds, const SnapshotOptions& opt) const;

  const EphemerisService& ephemeris() const noexcept { return ephemeris_; }
  /// Bumped by every setCapabilities() call. Lets per-step consumers
  /// (IncrementalTopology) skip re-reading all capabilities when nothing
  /// changed, without weakening the "capabilities may change mid-sweep"
  /// contract.
  std::uint64_t capabilitiesVersion() const noexcept { return capsVersion_; }
  std::size_t satelliteCount() const noexcept { return satNodes_.size(); }
  std::size_t groundStationCount() const noexcept { return stations_.size(); }
  std::size_t userCount() const noexcept { return users_.size(); }

  /// Registered ground stations / users in registration order — the order
  /// snapshot() emits their nodes and ground links in. The incremental
  /// topology pipeline (topology/delta.hpp) replays that order without
  /// building a NetworkGraph.
  const std::vector<SiteEntry>& stationSites() const noexcept { return stations_; }
  const std::vector<SiteEntry>& userSites() const noexcept { return users_; }

 private:
  const EphemerisService& ephemeris_;
  std::unordered_map<SatelliteId, NodeId> satNodes_;
  std::unordered_map<NodeId, SatelliteId> nodeSats_;
  std::unordered_map<SatelliteId, LinkCapabilities> caps_;
  std::uint64_t capsVersion_ = 0;
  std::vector<SiteEntry> stations_;
  std::vector<SiteEntry> users_;
  NodeId::rep_type nextNodeValue_ = 1;
};

/// Capacity (bps) an ISL closes at over `distanceM` using the standardized
/// terminals: optical if `laser`, else S-band radios. Returns 0 if the
/// MODCOD ladder cannot close the link at that distance.
double islCapacityBps(double distanceM, bool laser);

/// Capacity of a satellite<->ground-station (gateway) link at `distanceM`
/// and `elevationRad` (atmospheric loss applies), standardized Ku terminals.
double gslCapacityBps(double distanceM, double elevationRad);

/// Capacity of a satellite<->user-terminal link.
double userLinkCapacityBps(double distanceM, double elevationRad);

}  // namespace openspace
