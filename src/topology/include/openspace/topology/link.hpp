// Typed links between OpenSpace nodes.
#pragma once

#include <cstdint>
#include <string_view>

#include <openspace/core/ids.hpp>
#include <openspace/phy/bands.hpp>
#include <openspace/topology/node.hpp>

namespace openspace {

/// Kinds of links in the OpenSpace topology (paper §2: ground-to-satellite,
/// satellite-to-satellite, satellite-to-ground).
enum class LinkType {
  IslRf,     ///< Inter-satellite RF link (the interoperability minimum).
  IslLaser,  ///< Inter-satellite optical link (optional upgrade).
  Gsl,       ///< Satellite <-> ground station (gateway) link.
  UserLink,  ///< Satellite <-> user terminal link.
};

std::string_view linkTypeName(LinkType t) noexcept;

/// An undirected link in a topology snapshot. Distance/latency/capacity are
/// snapshot-time values; ownership & tariff feed the routing cost model.
struct Link {
  LinkId id{};
  NodeId a{};
  NodeId b{};
  LinkType type = LinkType::IslRf;
  Band band = Band::S;
  double distanceM = 0.0;
  double propagationDelayS = 0.0;
  double capacityBps = 0.0;
  /// Queueing/processing delay currently observed on this link (congestion
  /// state; §2.2 notes it cannot be predicted from ephemeris alone).
  double queueingDelayS = 0.0;
  /// Per-byte transit tariff (set by whoever owns the carrying asset; §3).
  double tariffUsdPerGb = 0.0;

  /// Total one-way latency contribution of this link.
  double totalDelayS() const noexcept { return propagationDelayS + queueingDelayS; }

  /// The endpoint that is not `from`. Throws InvalidArgumentError if `from`
  /// is not an endpoint.
  NodeId otherEnd(NodeId from) const;
};

}  // namespace openspace
