// Immutable flat (CSR) compilation of a NetworkGraph snapshot.
//
// NetworkGraph is the mutable, hash-map-backed construction form of a
// topology snapshot. Routing never needs mutation: it needs the fastest
// possible "for each out-edge of u" walk, with every per-edge quantity the
// cost model can ask about already materialized. compileGraph() performs a
// one-shot translation: nodes get dense indices 0..N-1 in insertion order,
// each undirected link becomes two directed CSR edges, and the caller's
// cost callback is evaluated exactly once per directed edge at compile
// time — the search hot loop never touches a std::function, a hash map, or
// the cost model again. This is the paper's §2.7 observation turned into a
// data structure: the LEO topology is predictable and public, so each
// snapshot can be compiled once and queried many times.
//
// Semantics (mirroring the legacy lazy-evaluation Dijkstra):
//   * cost == +inf  -> the edge is forbidden and dropped at compile time;
//   * cost < 0 / NaN -> InvalidArgumentError at compile time (the legacy
//     path threw on first relaxation; compilation tightens this to "at
//     compile", catching negative edges even in unreachable components).
//
// Temporal sweeps need one compiled graph per time step; recompiling from a
// fresh NetworkGraph every step repeats all of the hash-map construction
// work even though consecutive snapshots differ by a handful of links.
// topology/delta.hpp (IncrementalTopology) therefore patches CompactGraphs
// directly — contentChecksum() is the bit-identity witness the delta==fresh
// property tests and bench gates compare.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include <openspace/topology/graph.hpp>

namespace openspace {

class CompactGraph {
 public:
  /// Sentinel for "no such node / edge".
  static constexpr std::uint32_t kInvalidIndex = 0xFFFFFFFFu;

  /// Same signature as routing's LinkCostFn (they are the same
  /// std::function type; the alias lives in the routing layer).
  using CostFn = std::function<double(const NetworkGraph&, const Link&, ProviderId)>;

  /// The (at most 2) directed edge indices compiled from one undirected
  /// link, in ascending edge-index order. Small enough to return by value;
  /// iterable like a container.
  struct LinkEdgeRange {
    std::uint32_t count = 0;
    std::uint32_t e[2] = {kInvalidIndex, kInvalidIndex};

    bool empty() const noexcept { return count == 0; }
    std::uint32_t size() const noexcept { return count; }
    std::uint32_t front() const noexcept { return e[0]; }
    const std::uint32_t* begin() const noexcept { return e; }
    const std::uint32_t* end() const noexcept { return e + count; }
  };

  std::size_t nodeCount() const noexcept { return nodes_->denseToNode.size(); }
  std::size_t edgeCount() const noexcept { return edgeTo_.size(); }

  /// Dense index of a NodeId, or kInvalidIndex when absent.
  std::uint32_t indexOf(NodeId id) const {
    // Builder-produced ids are small and sequential, so the common case is
    // one array load; the hash map only backs sparse / oversized ids.
    if (id.value() < nodes_->idToDense.size()) {
      return nodes_->idToDense[id.value()];
    }
    const auto it = nodes_->nodeToDense.find(id);
    return it == nodes_->nodeToDense.end() ? kInvalidIndex : it->second;
  }
  NodeId nodeAt(std::uint32_t dense) const {
    return nodes_->denseToNode[dense];
  }
  const std::vector<NodeId>& nodes() const noexcept {
    return nodes_->denseToNode;
  }
  NodeKind kindAt(std::uint32_t dense) const { return nodes_->nodeKind[dense]; }

  /// CSR row of directed out-edges of dense node u: [rowBegin, rowEnd).
  std::uint32_t rowBegin(std::uint32_t u) const { return rowOffset_[u]; }
  std::uint32_t rowEnd(std::uint32_t u) const { return rowOffset_[u + 1]; }

  std::uint32_t edgeTarget(std::uint32_t e) const { return edgeTo_[e]; }
  std::uint32_t edgeSource(std::uint32_t e) const { return edgeFrom_[e]; }
  double edgeCost(std::uint32_t e) const { return edgeCost_[e]; }
  double edgePropagationDelayS(std::uint32_t e) const { return edgePropS_[e]; }
  double edgeQueueingDelayS(std::uint32_t e) const { return edgeQueueS_[e]; }
  double edgeCapacityBps(std::uint32_t e) const { return edgeCapBps_[e]; }
  LinkId edgeLink(std::uint32_t e) const { return edgeLinkId_[e]; }

  /// Directed edge indices compiled from undirected link `id` (0, 1 or 2
  /// entries — fewer than 2 when a direction was dropped as forbidden).
  /// Returns an empty range for unknown links.
  LinkEdgeRange edgesOfLink(LinkId id) const {
    // Builder-assigned link ids are dense (1..L), so the common case is one
    // array load; the hash map only backs sparse id spaces (e.g. graphs
    // with removed links).
    if (id.value() < linkEdges_.size()) return linkEdges_[id.value()];
    const auto it = sparseLinkEdges_.find(id);
    return it == sparseLinkEdges_.end() ? LinkEdgeRange{} : it->second;
  }

  /// FNV-1a over everything observable through this interface: node order,
  /// node kinds, CSR layout, every per-edge double (raw bits), edge->link
  /// and link->edge maps. Two graphs checksum equal iff a consumer cannot
  /// tell them apart — the delta==fresh bit-identity witness.
  std::uint64_t contentChecksum() const noexcept;

  friend CompactGraph compileGraph(const NetworkGraph& g, const CostFn& cost,
                                   ProviderId home);
  /// topology/delta.hpp: builds/patches CompactGraphs without a
  /// NetworkGraph, reproducing compileGraph's layout bit-for-bit.
  friend class IncrementalTopology;

 private:
  /// The node half of the graph: dense numbering and both id lookup
  /// structures. Immutable once built and independent of the per-step edge
  /// payload, so cost-patched copies of a graph (IncrementalTopology)
  /// share one table by shared_ptr instead of re-copying the hash map on
  /// every step.
  struct NodeTable {
    std::vector<NodeId> denseToNode;
    std::vector<NodeKind> nodeKind;
    /// Direct-mapped id -> dense table (kInvalidIndex for gaps); built only
    /// when the id range is close to the node count, empty otherwise.
    std::vector<std::uint32_t> idToDense;
    std::unordered_map<NodeId, std::uint32_t> nodeToDense;
  };
  /// Never null (default-constructed graphs hold an empty table).
  std::shared_ptr<const NodeTable> nodes_ = std::make_shared<NodeTable>();
  std::vector<std::uint32_t> rowOffset_;  ///< size nodeCount()+1.
  std::vector<std::uint32_t> edgeTo_;
  std::vector<std::uint32_t> edgeFrom_;
  std::vector<double> edgeCost_;
  std::vector<double> edgePropS_;
  std::vector<double> edgeQueueS_;
  std::vector<double> edgeCapBps_;
  std::vector<LinkId> edgeLinkId_;
  /// Direct-mapped LinkId value -> directed edges (count==0 for gaps);
  /// built when the link id range is close to the link count.
  std::vector<LinkEdgeRange> linkEdges_;
  std::unordered_map<LinkId, LinkEdgeRange> sparseLinkEdges_;
};

/// Compile `g` into CSR form under `cost` as provider `home`. Evaluates the
/// cost callback once per directed edge; throws InvalidArgumentError on a
/// negative or NaN cost, drops +inf (forbidden) edges.
CompactGraph compileGraph(const NetworkGraph& g, const CompactGraph::CostFn& cost,
                          ProviderId home = {});

}  // namespace openspace
