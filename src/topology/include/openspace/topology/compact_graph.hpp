// Immutable flat (CSR) compilation of a NetworkGraph snapshot.
//
// NetworkGraph is the mutable, hash-map-backed construction form of a
// topology snapshot. Routing never needs mutation: it needs the fastest
// possible "for each out-edge of u" walk, with every per-edge quantity the
// cost model can ask about already materialized. compileGraph() performs a
// one-shot translation: nodes get dense indices 0..N-1 in insertion order,
// each undirected link becomes two directed CSR edges, and the caller's
// cost callback is evaluated exactly once per directed edge at compile
// time — the search hot loop never touches a std::function, a hash map, or
// the cost model again. This is the paper's §2.7 observation turned into a
// data structure: the LEO topology is predictable and public, so each
// snapshot can be compiled once and queried many times.
//
// Semantics (mirroring the legacy lazy-evaluation Dijkstra):
//   * cost == +inf  -> the edge is forbidden and dropped at compile time;
//   * cost < 0 / NaN -> InvalidArgumentError at compile time (the legacy
//     path threw on first relaxation; compilation tightens this to "at
//     compile", catching negative edges even in unreachable components).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include <openspace/topology/graph.hpp>

namespace openspace {

class CompactGraph {
 public:
  /// Sentinel for "no such node / edge".
  static constexpr std::uint32_t kInvalidIndex = 0xFFFFFFFFu;

  /// Same signature as routing's LinkCostFn (they are the same
  /// std::function type; the alias lives in the routing layer).
  using CostFn = std::function<double(const NetworkGraph&, const Link&, ProviderId)>;

  std::size_t nodeCount() const noexcept { return denseToNode_.size(); }
  std::size_t edgeCount() const noexcept { return edgeTo_.size(); }

  /// Dense index of a NodeId, or kInvalidIndex when absent.
  std::uint32_t indexOf(NodeId id) const {
    // Builder-produced ids are small and sequential, so the common case is
    // one array load; the hash map only backs sparse / oversized ids.
    if (id.value() < idToDense_.size()) return idToDense_[id.value()];
    const auto it = nodeToDense_.find(id);
    return it == nodeToDense_.end() ? kInvalidIndex : it->second;
  }
  NodeId nodeAt(std::uint32_t dense) const { return denseToNode_[dense]; }
  const std::vector<NodeId>& nodes() const noexcept { return denseToNode_; }
  NodeKind kindAt(std::uint32_t dense) const { return nodeKind_[dense]; }

  /// CSR row of directed out-edges of dense node u: [rowBegin, rowEnd).
  std::uint32_t rowBegin(std::uint32_t u) const { return rowOffset_[u]; }
  std::uint32_t rowEnd(std::uint32_t u) const { return rowOffset_[u + 1]; }

  std::uint32_t edgeTarget(std::uint32_t e) const { return edgeTo_[e]; }
  std::uint32_t edgeSource(std::uint32_t e) const { return edgeFrom_[e]; }
  double edgeCost(std::uint32_t e) const { return edgeCost_[e]; }
  double edgePropagationDelayS(std::uint32_t e) const { return edgePropS_[e]; }
  double edgeQueueingDelayS(std::uint32_t e) const { return edgeQueueS_[e]; }
  double edgeCapacityBps(std::uint32_t e) const { return edgeCapBps_[e]; }
  LinkId edgeLink(std::uint32_t e) const { return edgeLinkId_[e]; }

  /// Directed edge indices compiled from undirected link `id` (0, 1 or 2
  /// entries — fewer than 2 when a direction was dropped as forbidden).
  /// Returns an empty span-like vector reference for unknown links.
  const std::vector<std::uint32_t>& edgesOfLink(LinkId id) const;

  friend CompactGraph compileGraph(const NetworkGraph& g, const CostFn& cost,
                                   ProviderId home);

 private:
  std::vector<NodeId> denseToNode_;
  std::vector<NodeKind> nodeKind_;
  /// Direct-mapped id -> dense table (kInvalidIndex for gaps); built only
  /// when the id range is close to the node count, empty otherwise.
  std::vector<std::uint32_t> idToDense_;
  std::unordered_map<NodeId, std::uint32_t> nodeToDense_;
  std::vector<std::uint32_t> rowOffset_;  ///< size nodeCount()+1.
  std::vector<std::uint32_t> edgeTo_;
  std::vector<std::uint32_t> edgeFrom_;
  std::vector<double> edgeCost_;
  std::vector<double> edgePropS_;
  std::vector<double> edgeQueueS_;
  std::vector<double> edgeCapBps_;
  std::vector<LinkId> edgeLinkId_;
  std::unordered_map<LinkId, std::vector<std::uint32_t>> linkEdges_;
};

/// Compile `g` into CSR form under `cost` as provider `home`. Evaluates the
/// cost callback once per directed edge; throws InvalidArgumentError on a
/// negative or NaN cost, drops +inf (forbidden) edges.
CompactGraph compileGraph(const NetworkGraph& g, const CompactGraph::CostFn& cost,
                          ProviderId home = {});

}  // namespace openspace
