// The topology snapshot graph.
//
// A NetworkGraph is one instant of the time-varying OpenSpace topology:
// nodes are stable across snapshots (same NodeIds), links come and go as
// geometry and pairing decisions change. Routing operates on snapshots;
// the paper's proactive scheme precomputes routes for future snapshots
// because the ephemeris makes them predictable.
#pragma once

#include <unordered_map>
#include <vector>

#include <openspace/topology/link.hpp>

namespace openspace {

class NetworkGraph {
 public:
  /// Add a node. Throws InvalidArgumentError on duplicate NodeId or on a
  /// node whose kind/position fields are inconsistent.
  void addNode(Node node);

  /// Add an undirected link between existing nodes. Returns its LinkId.
  /// Throws NotFoundError for unknown endpoints, InvalidArgumentError for
  /// self-loops or non-positive capacity.
  LinkId addLink(Link link);

  /// Remove a link (e.g. ISL teardown). Throws NotFoundError.
  void removeLink(LinkId id);

  const Node& node(NodeId id) const;
  Node& node(NodeId id);
  const Link& link(LinkId id) const;
  Link& link(LinkId id);
  bool hasNode(NodeId id) const noexcept;

  /// Links incident to `id` (by LinkId). Throws NotFoundError.
  const std::vector<LinkId>& linksOf(NodeId id) const;

  /// All node ids in insertion order.
  const std::vector<NodeId>& nodes() const noexcept { return nodeOrder_; }
  /// All live link ids in insertion order.
  std::vector<LinkId> links() const;

  std::size_t nodeCount() const noexcept { return nodeOrder_.size(); }
  std::size_t linkCount() const noexcept { return liveLinks_; }

  /// Nodes of a given kind.
  std::vector<NodeId> nodesOfKind(NodeKind k) const;

  /// The (at most one) link between two nodes, or nullopt.
  std::optional<LinkId> findLink(NodeId a, NodeId b) const;

 private:
  std::unordered_map<NodeId, Node> nodes_;
  std::vector<NodeId> nodeOrder_;
  std::unordered_map<LinkId, Link> links_;
  std::vector<LinkId> linkOrder_;
  std::unordered_map<NodeId, std::vector<LinkId>> adjacency_;
  LinkId::rep_type nextLinkIdValue_ = 1;
  std::size_t liveLinks_ = 0;
};

}  // namespace openspace
