// Network nodes: satellites, ground stations, and ground users.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include <openspace/core/ids.hpp>
#include <openspace/geo/geodetic.hpp>
#include <openspace/orbit/ephemeris.hpp>

namespace openspace {

/// Kinds of OpenSpace network participants.
enum class NodeKind { Satellite, GroundStation, User };

/// A network node. Satellites carry their ephemeris id (position comes from
/// the shared EphemerisService); ground assets carry a fixed geodetic
/// location.
struct Node {
  NodeId id{};
  NodeKind kind = NodeKind::Satellite;
  ProviderId provider{};
  std::string name;
  /// Set iff kind == Satellite.
  std::optional<SatelliteId> satellite;
  /// Set iff kind != Satellite.
  std::optional<Geodetic> location;

  bool isSatellite() const noexcept { return kind == NodeKind::Satellite; }
  bool isGroundStation() const noexcept { return kind == NodeKind::GroundStation; }
  bool isUser() const noexcept { return kind == NodeKind::User; }
};

std::string_view nodeKindName(NodeKind k) noexcept;

}  // namespace openspace
