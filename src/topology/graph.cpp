#include <openspace/topology/graph.hpp>

#include <algorithm>
#include <utility>

#include <openspace/geo/error.hpp>

namespace openspace {

std::string_view nodeKindName(NodeKind k) noexcept {
  switch (k) {
    case NodeKind::Satellite: return "satellite";
    case NodeKind::GroundStation: return "ground-station";
    case NodeKind::User: return "user";
  }
  return "?";
}

std::string_view linkTypeName(LinkType t) noexcept {
  switch (t) {
    case LinkType::IslRf: return "ISL-RF";
    case LinkType::IslLaser: return "ISL-laser";
    case LinkType::Gsl: return "GSL";
    case LinkType::UserLink: return "user-link";
  }
  return "?";
}

NodeId Link::otherEnd(NodeId from) const {
  if (from == a) return b;
  if (from == b) return a;
  throw InvalidArgumentError("Link::otherEnd: node is not an endpoint");
}

void NetworkGraph::addNode(Node node) {
  if (nodes_.contains(node.id)) {
    throw InvalidArgumentError("NetworkGraph: duplicate node id " +
                               std::to_string(node.id.value()));
  }
  const bool sat = node.kind == NodeKind::Satellite;
  if (sat != node.satellite.has_value() || sat == node.location.has_value()) {
    throw InvalidArgumentError(
        "NetworkGraph: node must have exactly the position source its kind "
        "implies (satellite id for satellites, geodetic fix otherwise)");
  }
  const NodeId id = node.id;
  nodes_.emplace(id, std::move(node));
  nodeOrder_.push_back(id);
  adjacency_.try_emplace(id);
}

LinkId NetworkGraph::addLink(Link link) {
  if (!nodes_.contains(link.a) || !nodes_.contains(link.b)) {
    throw NotFoundError("NetworkGraph::addLink: unknown endpoint");
  }
  if (link.a == link.b) {
    throw InvalidArgumentError("NetworkGraph::addLink: self-loop");
  }
  if (link.capacityBps <= 0.0) {
    throw InvalidArgumentError("NetworkGraph::addLink: capacity must be > 0");
  }
  link.id = LinkId{nextLinkIdValue_++};
  const LinkId id = link.id;
  adjacency_[link.a].push_back(id);
  adjacency_[link.b].push_back(id);
  links_.emplace(id, link);
  linkOrder_.push_back(id);
  ++liveLinks_;
  return id;
}

void NetworkGraph::removeLink(LinkId id) {
  const auto it = links_.find(id);
  if (it == links_.end()) {
    throw NotFoundError("NetworkGraph::removeLink: unknown link");
  }
  auto scrub = [&](NodeId n) {
    auto& v = adjacency_[n];
    v.erase(std::remove(v.begin(), v.end(), id), v.end());
  };
  scrub(it->second.a);
  scrub(it->second.b);
  links_.erase(it);
  linkOrder_.erase(std::remove(linkOrder_.begin(), linkOrder_.end(), id),
                   linkOrder_.end());
  --liveLinks_;
}

const Node& NetworkGraph::node(NodeId id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    throw NotFoundError("NetworkGraph: unknown node " + std::to_string(id.value()));
  }
  return it->second;
}

Node& NetworkGraph::node(NodeId id) {
  return const_cast<Node&>(std::as_const(*this).node(id));
}

const Link& NetworkGraph::link(LinkId id) const {
  const auto it = links_.find(id);
  if (it == links_.end()) {
    throw NotFoundError("NetworkGraph: unknown link " + std::to_string(id.value()));
  }
  return it->second;
}

Link& NetworkGraph::link(LinkId id) {
  return const_cast<Link&>(std::as_const(*this).link(id));
}

bool NetworkGraph::hasNode(NodeId id) const noexcept { return nodes_.contains(id); }

const std::vector<LinkId>& NetworkGraph::linksOf(NodeId id) const {
  const auto it = adjacency_.find(id);
  if (it == adjacency_.end()) {
    throw NotFoundError("NetworkGraph::linksOf: unknown node");
  }
  return it->second;
}

std::vector<LinkId> NetworkGraph::links() const { return linkOrder_; }

std::vector<NodeId> NetworkGraph::nodesOfKind(NodeKind k) const {
  std::vector<NodeId> out;
  for (const NodeId id : nodeOrder_) {
    if (nodes_.at(id).kind == k) out.push_back(id);
  }
  return out;
}

std::optional<LinkId> NetworkGraph::findLink(NodeId a, NodeId b) const {
  const auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return std::nullopt;
  for (const LinkId lid : it->second) {
    const Link& l = links_.at(lid);
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return lid;
  }
  return std::nullopt;
}

}  // namespace openspace
