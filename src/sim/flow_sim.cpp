#include <openspace/sim/flow_sim.hpp>

#include <algorithm>
#include <bit>
#include <cmath>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/coverage/footprint_index.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/orbit/snapshot.hpp>
#include <openspace/routing/engine.hpp>
#include <openspace/sim/population.hpp>

namespace openspace {

std::uint64_t mixDeliveryRecord(std::uint64_t h, const DeliveryRecord& rec) noexcept {
  h = fnv1a(h, rec.packet.id);
  h = fnv1a(h, rec.packet.src.value());
  h = fnv1a(h, rec.packet.dst.value());
  h = fnv1a(h, bitsOf(rec.packet.sizeBits));
  h = fnv1a(h, bitsOf(rec.packet.createdAtS));
  h = fnv1a(h, rec.delivered ? 1u : 0u);
  h = fnv1a(h, static_cast<std::uint64_t>(rec.drop));
  h = fnv1a(h, bitsOf(rec.deliveredAtS));
  h = fnv1a(h, bitsOf(rec.latencyS));
  h = fnv1a(h, static_cast<std::uint64_t>(rec.hops));
  return h;
}

FlowSimulator::FlowSimulator(std::shared_ptr<const CompactGraph> graph,
                             FlowSimConfig cfg)
    : graph_(std::move(graph)),
      cfg_(cfg),
      wheel_(cfg.tickS, cfg.startS),  // validates tickS > 0
      rng_(cfg.seed) {
  if (!graph_) {
    throw InvalidArgumentError("FlowSimulator: null graph");
  }
  if (cfg_.maxQueueBits <= 0.0) {
    throw InvalidArgumentError("FlowSimulator: queue limit must be > 0");
  }
  edges_.resize(graph_->edgeCount());
  bitsCarried_.assign(graph_->edgeCount(), 0.0);
}

std::uint32_t FlowSimulator::addPath(const Route& route) {
  if (!route.valid()) {
    throw InvalidArgumentError("FlowSimulator::addPath: invalid route");
  }
  PathInfo info;
  info.src = route.nodes.front();
  info.dst = route.nodes.back();
  std::uint32_t cur = graph_->indexOf(info.src);
  const std::uint32_t dst = graph_->indexOf(info.dst);
  if (cur == CompactGraph::kInvalidIndex || dst == CompactGraph::kInvalidIndex) {
    throw NotFoundError("FlowSimulator::addPath: route endpoint not in graph");
  }
  info.off = static_cast<std::uint32_t>(pathEdges_.size());
  for (const LinkId lid : route.links) {
    // The legacy engine delivers the moment the packet touches dst, even
    // mid-route; truncating here keeps hop counts identical.
    if (cur == dst) break;
    const auto& candidates = graph_->edgesOfLink(lid);
    std::uint32_t found = CompactGraph::kInvalidIndex;
    for (const std::uint32_t e : candidates) {
      if (graph_->edgeSource(e) == cur) {
        found = e;
        break;
      }
    }
    if (found == CompactGraph::kInvalidIndex) {
      throw InvalidArgumentError(
          "FlowSimulator::addPath: route traverses an edge the compiled "
          "graph does not carry");
    }
    pathEdges_.push_back(found);
    cur = graph_->edgeTarget(found);
  }
  if (cur != dst) {
    throw InvalidArgumentError(
        "FlowSimulator::addPath: route does not reach its destination");
  }
  info.len = static_cast<std::uint32_t>(pathEdges_.size()) - info.off;
  paths_.push_back(info);
  return static_cast<std::uint32_t>(paths_.size() - 1);
}

std::uint32_t FlowSimulator::addFlow(const FlowSpec& flow, std::uint32_t pathId) {
  if (flow.rateBps <= 0.0 || flow.packetBits <= 0.0) {
    throw InvalidArgumentError(
        "FlowSimulator::addFlow: rate and packet size must be > 0");
  }
  if (pathId != kNoPath) {
    if (pathId >= paths_.size()) {
      throw InvalidArgumentError("FlowSimulator::addFlow: unknown path id");
    }
    const PathInfo& p = paths_[pathId];
    if (p.src != flow.src || p.dst != flow.dst) {
      throw InvalidArgumentError(
          "FlowSimulator::addFlow: path endpoints do not match flow");
    }
  }
  FlowState f;
  f.spec = flow;
  f.path = pathId;
  flows_.push_back(f);
  return static_cast<std::uint32_t>(flows_.size() - 1);
}

std::uint32_t FlowSimulator::addFlow(const FlowSpec& flow, const Route& route) {
  return addFlow(flow, route.valid() ? addPath(route) : kNoPath);
}

void FlowSimulator::onComplete(std::function<void(const DeliveryRecord&)> cb) {
  onComplete_ = std::move(cb);
}

std::uint32_t FlowSimulator::allocPkt() {
  if (pktFreeHead_ != 0xFFFFFFFFu) {
    const std::uint32_t slot = pktFreeHead_;
    pktFreeHead_ = pkts_[slot].next;
    return slot;
  }
  pkts_.emplace_back();
  return static_cast<std::uint32_t>(pkts_.size() - 1);
}

void FlowSimulator::freePkt(std::uint32_t slot) {
  pkts_[slot].next = pktFreeHead_;
  pktFreeHead_ = slot;
}

void FlowSimulator::scheduleNextEmit(std::uint32_t flow, double afterS) {
  // Token-identical arithmetic to FlowGenerator::scheduleNext: same mean,
  // same draw, same exclusive stopS bound.
  const FlowSpec& spec = flows_[flow].spec;
  const double meanGapS = spec.packetBits / spec.rateBps;
  const double t = afterS + rng_.exponential(1.0 / meanGapS);
  if (t >= spec.stopS) return;
  wheel_.schedule(t, Ev{kEmit, flow, 0});
}

void FlowSimulator::dispatch(double tS, const Ev& ev) {
  switch (ev.kind) {
    case kEmit: {
      FlowState& f = flows_[ev.a];
      const PacketId pid = nextPacketId_++;
      ++offered_;
      ++f.offered;
      if (f.path == kNoPath) {
        finish(ev.a, pid, tS, 0, false, DropReason::NoRoute);
      } else {
        const std::uint32_t slot = allocPkt();
        PktState& p = pkts_[slot];
        p.createdAtS = tS;
        p.id = pid;
        p.flow = ev.a;
        p.hop = 0;
        arrive(slot);
      }
      scheduleNextEmit(ev.a, tS);
      break;
    }
    case kTxDone: {
      EdgeState& tx = edges_[ev.a];
      const double sizeBits = flows_[ev.b].spec.packetBits;
      tx.backlogBits = std::max(0.0, tx.backlogBits - sizeBits);
      break;
    }
    case kArrive:
      arrive(ev.a);
      break;
  }
}

void FlowSimulator::arrive(std::uint32_t pktSlot) {
  PktState& p = pkts_[pktSlot];
  const FlowState& f = flows_[p.flow];
  const PathInfo& path = paths_[f.path];
  if (p.hop == path.len) {
    finish(p.flow, p.id, p.createdAtS, p.hop, true, DropReason::None);
    freePkt(pktSlot);
    return;
  }
  const std::uint32_t e = pathEdges_[path.off + p.hop];
  EdgeState& tx = edges_[e];
  const double now = wheel_.now();
  const double sizeBits = f.spec.packetBits;

  // Identical floating-point expressions, in the same order, as
  // ForwardingEngine::arriveAtNode — the bit-for-bit contract.
  if (tx.busyUntilS <= now) {
    tx.backlogBits = 0.0;
  }
  if (tx.backlogBits + sizeBits > cfg_.maxQueueBits) {
    finish(p.flow, p.id, p.createdAtS, p.hop, false, DropReason::QueueOverflow);
    freePkt(pktSlot);
    return;
  }
  const double start = std::max(now, tx.busyUntilS);
  const double txTime = sizeBits / graph_->edgeCapacityBps(e);
  tx.busyUntilS = start + txTime;
  tx.backlogBits += sizeBits;
  bitsCarried_[e] += sizeBits;

  const double txDone = tx.busyUntilS;
  const double arrival = txDone + graph_->edgePropagationDelayS(e);
  wheel_.schedule(txDone, Ev{kTxDone, e, p.flow});
  p.hop += 1;
  wheel_.schedule(arrival, Ev{kArrive, pktSlot, 0});
}

void FlowSimulator::finish(std::uint32_t flowIdx, PacketId id, double createdAtS,
                           std::uint32_t hops, bool deliveredOk,
                           DropReason reason) {
  FlowState& f = flows_[flowIdx];
  DeliveryRecord rec;
  rec.packet.id = id;
  rec.packet.src = f.spec.src;
  rec.packet.dst = f.spec.dst;
  rec.packet.sizeBits = f.spec.packetBits;
  rec.packet.createdAtS = createdAtS;
  rec.packet.qos = f.spec.qos;
  rec.packet.homeProvider = f.spec.homeProvider;
  rec.delivered = deliveredOk;
  rec.drop = reason;
  rec.hops = static_cast<int>(hops);
  if (deliveredOk) {
    rec.deliveredAtS = wheel_.now();
    rec.latencyS = rec.deliveredAtS - createdAtS;
    stats_.add(rec.latencyS);
    ++delivered_;
    if (f.delivered == 0) {
      f.minLatencyS = rec.latencyS;
      f.maxLatencyS = rec.latencyS;
    } else {
      f.minLatencyS = std::min(f.minLatencyS, rec.latencyS);
      f.maxLatencyS = std::max(f.maxLatencyS, rec.latencyS);
      f.jitterSumS += std::abs(rec.latencyS - f.lastLatencyS);
    }
    f.latencySumS += rec.latencyS;
    f.lastLatencyS = rec.latencyS;
    ++f.delivered;
  } else {
    stats_.addLoss();
    ++dropped_;
    ++f.dropped;
  }
  checksum_ = mixDeliveryRecord(checksum_, rec);
  if (onComplete_) onComplete_(rec);
}

FlowSimReport FlowSimulator::run() {
  if (ran_) {
    throw StateError("FlowSimulator::run: single-shot; already ran");
  }
  ran_ = true;

  // Seed every flow's first emission in registration order — the same
  // order (and the same single RNG stream) as legacy addFlow calls.
  for (std::uint32_t i = 0; i < flows_.size(); ++i) {
    const FlowSpec& spec = flows_[i].spec;
    if (spec.stopS <= spec.startS) continue;  // degenerate: no packets
    scheduleNextEmit(i, spec.startS);
  }
  const std::size_t fired =
      wheel_.runAll([this](double tS, const Ev& ev) { dispatch(tS, ev); });

  FlowSimReport rep;
  rep.packetsOffered = offered_;
  rep.packetsDelivered = delivered_;
  rep.packetsDropped = dropped_;
  rep.eventsExecuted = fired;
  rep.latency = std::move(stats_);
  rep.flows.reserve(flows_.size());
  for (const FlowState& f : flows_) {
    FlowSummary s;
    s.offered = f.offered;
    s.delivered = f.delivered;
    s.dropped = f.dropped;
    if (f.delivered > 0) {
      s.meanLatencyS = f.latencySumS / static_cast<double>(f.delivered);
      s.minLatencyS = f.minLatencyS;
      s.maxLatencyS = f.maxLatencyS;
    }
    if (f.delivered > 1) {
      s.meanJitterS = f.jitterSumS / static_cast<double>(f.delivered - 1);
    }
    rep.flows.push_back(s);
  }
  rep.edgeBitsCarried = std::move(bitsCarried_);
  rep.edgeUtilization.assign(rep.edgeBitsCarried.size(), 0.0);
  for (std::size_t e = 0; e < rep.edgeBitsCarried.size(); ++e) {
    const double cap = graph_->edgeCapacityBps(static_cast<std::uint32_t>(e));
    if (cap > 0.0 && cfg_.durationS > 0.0) {
      rep.edgeUtilization[e] = rep.edgeBitsCarried[e] / (cap * cfg_.durationS);
    }
  }
  rep.recordChecksum = checksum_;
  return rep;
}

CityFlows buildCityFlows(const CityFlowConfig& cfg,
                         std::shared_ptr<const ConstellationSnapshot> snapshot,
                         const std::vector<NodeId>& satNodes,
                         const std::vector<NodeId>& gateways,
                         const RouteEngine& engine) {
  if (!snapshot) {
    throw InvalidArgumentError("buildCityFlows: null snapshot");
  }
  if (cfg.users < 0) {
    throw InvalidArgumentError("buildCityFlows: users must be >= 0");
  }
  if (cfg.meanRateBps <= 0.0 || cfg.packetBits <= 0.0 || cfg.durationS <= 0.0) {
    throw InvalidArgumentError(
        "buildCityFlows: rate, packet size and duration must be > 0");
  }
  if (satNodes.size() != snapshot->size()) {
    throw InvalidArgumentError(
        "buildCityFlows: satNodes must map every snapshot satellite");
  }
  if (gateways.empty()) {
    throw InvalidArgumentError("buildCityFlows: at least one gateway required");
  }

  CityFlows out;

  // Per-satellite uplink routes: one batched tree sweep, then the cheapest
  // reachable gateway per satellite (ties to the first listed gateway).
  const std::vector<PathTree> trees = engine.batchShortestPathTrees(satNodes);
  out.routes.resize(satNodes.size());
  for (std::size_t s = 0; s < trees.size(); ++s) {
    double bestCost = std::numeric_limits<double>::infinity();
    NodeId bestGw{};
    for (const NodeId gw : gateways) {
      const double c = trees[s].costTo(gw);
      if (c < bestCost) {
        bestCost = c;
        bestGw = gw;
      }
    }
    if (bestGw.isValid()) out.routes[s] = trees[s].routeTo(bestGw);
  }

  // Serial user sampling: one RNG stream, independent of thread count.
  Rng rng(cfg.seed);
  const PopulationModel pop(defaultWorldPopulation().centers(),
                            cfg.ruralFraction);
  const std::vector<SampledUser> users = pop.sampleUsers(cfg.users, rng);

  const auto index = FootprintIndex2::compiled(snapshot, cfg.minElevationRad);

  // Association + rate jitter fan out over fixed 4096-user chunks, each
  // with its own chunk-seeded RNG and its own output slots — bit-identical
  // at any thread count.
  constexpr std::size_t kChunk = 4096;
  constexpr std::uint32_t kUnserved = 0xFFFFFFFFu;
  std::vector<FlowSpec> specs(users.size());
  std::vector<std::uint32_t> satOf(users.size(), kUnserved);
  parallelFor(users.size(), kChunk, [&](std::size_t begin, std::size_t end) {
    const std::uint64_t chunk = begin / kChunk;
    Rng chunkRng(cfg.seed ^ (0x9E3779B97F4A7C15ull * (chunk + 1)));
    for (std::size_t u = begin; u < end; ++u) {
      // Draw before the visibility test so the chunk's draw sequence does
      // not depend on which users end up served.
      const double jitter = chunkRng.uniform(0.5, 1.5);
      const auto sat = index->closestVisible(users[u].location);
      if (!sat || !out.routes[*sat].valid()) continue;
      satOf[u] = static_cast<std::uint32_t>(*sat);
      FlowSpec& s = specs[u];
      s.src = satNodes[*sat];
      s.dst = out.routes[*sat].nodes.back();
      s.rateBps = cfg.meanRateBps * users[u].weight *
                  diurnalDemandFactor(cfg.utcSeconds,
                                      users[u].location.longitudeRad) *
                  jitter;
      s.packetBits = cfg.packetBits;
      s.startS = cfg.startS;
      s.stopS = cfg.startS + cfg.durationS;
    }
  });

  out.specs.reserve(users.size());
  out.routeOf.reserve(users.size());
  for (std::size_t u = 0; u < users.size(); ++u) {
    if (satOf[u] == kUnserved) {
      ++out.unservedUsers;
      continue;
    }
    out.specs.push_back(specs[u]);
    out.routeOf.push_back(satOf[u]);
  }

  std::uint64_t h = kFnvOffsetBasis;
  for (std::size_t i = 0; i < out.specs.size(); ++i) {
    const FlowSpec& s = out.specs[i];
    h = fnv1a(h, s.src.value());
    h = fnv1a(h, s.dst.value());
    h = fnv1a(h, bitsOf(s.rateBps));
    h = fnv1a(h, bitsOf(s.packetBits));
    h = fnv1a(h, bitsOf(s.startS));
    h = fnv1a(h, bitsOf(s.stopS));
    h = fnv1a(h, out.routeOf[i]);
  }
  h = fnv1a(h, static_cast<std::uint64_t>(out.unservedUsers));
  out.checksum = h;
  return out;
}

}  // namespace openspace
