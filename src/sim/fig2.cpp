#include <openspace/sim/fig2.hpp>

#include <limits>

#include <openspace/concurrency/parallel.hpp>
#include <openspace/coverage/coverage.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/snapshot.hpp>

namespace openspace {

namespace {

/// splitmix64 finalizer, for deriving independent per-trial RNG streams.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic seed of trial `trial` at constellation size `n`: trials
/// are independent streams, so the sweep can evaluate them in parallel and
/// aggregate in trial order with bit-identical results at any thread count.
std::uint64_t trialSeed(std::uint64_t seed, std::uint64_t salt, int n,
                        std::size_t trial) {
  return mix64(seed ^ mix64(salt ^ (static_cast<std::uint64_t>(n) *
                                    std::uint64_t{0x9E3779B97F4A7C15ull}) ^
                            (trial * std::uint64_t{0xD1B54A32D192ED03ull})));
}

constexpr std::uint64_t kLatencySalt = 0x6C62272E07BB0142ull;
constexpr std::uint64_t kCoverageSalt = 0x27D4EB2F165667C5ull;

/// One latency trial against an already-propagated snapshot. The ISL
/// adjacency is built (and cached) on the snapshot, once per timestep —
/// not once per (src, dst) query — and shortestIslPath runs on per-thread
/// reusable scratch arenas, so the per-trial cost is the Dijkstra itself
/// with no allocation.
Fig2Trial runTrialOnSnapshot(const ConstellationSnapshot& snap,
                             const Fig2Config& cfg) {
  Fig2Trial trial;
  const auto up = snap.closestVisible(cfg.user, cfg.minElevationRad);
  const auto down = snap.closestVisible(cfg.groundStation, cfg.minElevationRad);
  trial.userCovered = up.has_value();
  trial.stationCovered = down.has_value();
  if (!up || !down) return trial;

  const auto path = snap.shortestIslPath(*up, *down, cfg.maxIslRangeM);
  if (!path) return trial;

  trial.connected = true;
  trial.pathLengthM = path->first;
  trial.islHops = path->second;
  trial.latencyS = trial.pathLengthM / kSpeedOfLightMps;

  const Vec3 userEcef = geodeticToEcef(cfg.user);
  const Vec3 gsEcef = geodeticToEcef(cfg.groundStation);
  const double upLegM = userEcef.distanceTo(snap.ecef(*up));
  const double downLegM = gsEcef.distanceTo(snap.ecef(*down));
  trial.endToEndLatencyS = (trial.pathLengthM + upLegM + downLegM) / kSpeedOfLightMps;
  return trial;
}

}  // namespace

Fig2Trial runFig2Trial(int n, const Fig2Config& cfg, Rng& rng) {
  if (n <= 0) return Fig2Trial{};
  const ConstellationSnapshot snap(makeRandomConstellation(n, cfg.altitudeM, rng),
                                   cfg.tSeconds);
  return runTrialOnSnapshot(snap, cfg);
}

std::vector<Fig2Point> fig2LatencySweep(const std::vector<int>& satelliteCounts,
                                        int trials, const Fig2Config& cfg,
                                        std::uint64_t seed) {
  if (satelliteCounts.empty()) {
    throw InvalidArgumentError("fig2LatencySweep: empty sweep");
  }
  if (trials < 1) throw InvalidArgumentError("fig2LatencySweep: trials < 1");

  std::vector<Fig2Point> out;
  out.reserve(satelliteCounts.size());
  const std::size_t trialCount = static_cast<std::size_t>(trials);
  std::vector<Fig2Trial> results(trialCount);
  for (const int n : satelliteCounts) {
    parallelFor(trialCount, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t t = begin; t < end; ++t) {
        Rng rng(trialSeed(seed, kLatencySalt, n, t));
        results[t] = runFig2Trial(n, cfg, rng);
      }
    });
    Fig2Point pt;
    pt.satellites = n;
    pt.trials = trials;
    double latSum = 0.0, e2eSum = 0.0, hopSum = 0.0;
    for (const Fig2Trial& trial : results) {
      if (trial.connected) {
        ++pt.connectedTrials;
        latSum += trial.latencyS;
        e2eSum += trial.endToEndLatencyS;
        hopSum += trial.islHops;
      }
    }
    pt.connectivity = static_cast<double>(pt.connectedTrials) / trials;
    if (pt.connectedTrials > 0) {
      pt.meanLatencyS = latSum / pt.connectedTrials;
      pt.meanEndToEndLatencyS = e2eSum / pt.connectedTrials;
      pt.meanIslHops = hopSum / pt.connectedTrials;
    }
    out.push_back(pt);
  }
  return out;
}

std::vector<Fig2CoveragePoint> fig2CoverageSweep(
    const std::vector<int>& satelliteCounts, int trials, const Fig2Config& cfg,
    std::uint64_t seed) {
  if (satelliteCounts.empty()) {
    throw InvalidArgumentError("fig2CoverageSweep: empty sweep");
  }
  if (trials < 1) throw InvalidArgumentError("fig2CoverageSweep: trials < 1");

  struct TrialResult {
    double worstCase = 0.0;
    double monteCarlo = 0.0;
    double effective = 0.0;
  };

  std::vector<Fig2CoveragePoint> out;
  out.reserve(satelliteCounts.size());
  const std::size_t trialCount = static_cast<std::size_t>(trials);
  std::vector<TrialResult> results(trialCount);
  for (const int n : satelliteCounts) {
    parallelFor(trialCount, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t t = begin; t < end; ++t) {
        Rng rng(trialSeed(seed, kCoverageSalt, n, t));
        const auto sats = makeRandomConstellation(n, cfg.altitudeM, rng);
        // Both estimators hit the same SnapshotCache entry: the
        // constellation is propagated once per trial, not twice.
        const CoverageEstimate wc =
            worstCaseOverlapCoverage(sats, cfg.tSeconds, cfg.minElevationRad);
        const CoverageEstimate mc = monteCarloCoverage(
            sats, cfg.tSeconds, cfg.minElevationRad, 2'000, rng);
        results[t] = {wc.coverageFraction, mc.coverageFraction,
                      static_cast<double>(wc.effectiveSatellites)};
      }
    });
    Fig2CoveragePoint pt;
    pt.satellites = n;
    double wcSum = 0.0, mcSum = 0.0, effSum = 0.0;
    for (const TrialResult& r : results) {
      wcSum += r.worstCase;
      mcSum += r.monteCarlo;
      effSum += r.effective;
    }
    pt.worstCaseCoverage = wcSum / trials;
    pt.monteCarloCoverage = mcSum / trials;
    pt.meanEffectiveSatellites = effSum / trials;
    out.push_back(pt);
  }
  return out;
}

}  // namespace openspace
