#include <openspace/sim/fig2.hpp>

#include <limits>
#include <queue>

#include <openspace/coverage/coverage.hpp>
#include <openspace/geo/error.hpp>
#include <openspace/geo/units.hpp>
#include <openspace/orbit/visibility.hpp>

namespace openspace {

namespace {

/// Closest satellite visible from `site` above the mask; nullopt if none.
std::optional<std::size_t> pickupSatellite(const std::vector<Vec3>& eci,
                                           const Geodetic& site, double t,
                                           double minElev) {
  const Vec3 siteEcef = geodeticToEcef(site);
  std::optional<std::size_t> best;
  double bestRange = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < eci.size(); ++i) {
    const Vec3 satEcef = eciToEcef(eci[i], t);
    if (elevationAngleRad(siteEcef, satEcef) < minElev) continue;
    const double range = siteEcef.distanceTo(satEcef);
    if (range < bestRange) {
      bestRange = range;
      best = i;
    }
  }
  return best;
}

/// Dijkstra over the satellite-only ISL graph, edge weight = distance.
/// Returns (path length, hops) from src to dst, or nullopt if disconnected.
std::optional<std::pair<double, int>> shortestIslPath(const std::vector<Vec3>& eci,
                                                      std::size_t src,
                                                      std::size_t dst,
                                                      double maxRangeM) {
  const std::size_t n = eci.size();
  if (src == dst) return std::make_pair(0.0, 0);
  // Adjacency: in-range + line-of-sight pairs.
  std::vector<std::vector<std::pair<std::size_t, double>>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = eci[i].distanceTo(eci[j]);
      if (d <= maxRangeM && lineOfSightClear(eci[i], eci[j], km(80.0))) {
        adj[i].emplace_back(j, d);
        adj[j].emplace_back(i, d);
      }
    }
  }
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<int> hops(n, 0);
  using Q = std::pair<double, std::size_t>;
  std::priority_queue<Q, std::vector<Q>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (const auto& [v, w] : adj[u]) {
      if (d + w < dist[v]) {
        dist[v] = d + w;
        hops[v] = hops[u] + 1;
        pq.emplace(dist[v], v);
      }
    }
  }
  if (std::isinf(dist[dst])) return std::nullopt;
  return std::make_pair(dist[dst], hops[dst]);
}

}  // namespace

Fig2Trial runFig2Trial(int n, const Fig2Config& cfg, Rng& rng) {
  Fig2Trial trial;
  if (n <= 0) return trial;
  const std::vector<OrbitalElements> sats =
      makeRandomConstellation(n, cfg.altitudeM, rng);
  std::vector<Vec3> eci(sats.size());
  for (std::size_t i = 0; i < sats.size(); ++i) {
    eci[i] = positionEci(sats[i], cfg.tSeconds);
  }

  const auto up = pickupSatellite(eci, cfg.user, cfg.tSeconds, cfg.minElevationRad);
  const auto down =
      pickupSatellite(eci, cfg.groundStation, cfg.tSeconds, cfg.minElevationRad);
  trial.userCovered = up.has_value();
  trial.stationCovered = down.has_value();
  if (!up || !down) return trial;

  const auto path = shortestIslPath(eci, *up, *down, cfg.maxIslRangeM);
  if (!path) return trial;

  trial.connected = true;
  trial.pathLengthM = path->first;
  trial.islHops = path->second;
  trial.latencyS = trial.pathLengthM / kSpeedOfLightMps;

  const Vec3 userEcef = geodeticToEcef(cfg.user);
  const Vec3 gsEcef = geodeticToEcef(cfg.groundStation);
  const double upLegM = userEcef.distanceTo(eciToEcef(eci[*up], cfg.tSeconds));
  const double downLegM = gsEcef.distanceTo(eciToEcef(eci[*down], cfg.tSeconds));
  trial.endToEndLatencyS = (trial.pathLengthM + upLegM + downLegM) / kSpeedOfLightMps;
  return trial;
}

std::vector<Fig2Point> fig2LatencySweep(const std::vector<int>& satelliteCounts,
                                        int trials, const Fig2Config& cfg,
                                        std::uint64_t seed) {
  if (satelliteCounts.empty()) {
    throw InvalidArgumentError("fig2LatencySweep: empty sweep");
  }
  if (trials < 1) throw InvalidArgumentError("fig2LatencySweep: trials < 1");

  std::vector<Fig2Point> out;
  out.reserve(satelliteCounts.size());
  for (const int n : satelliteCounts) {
    Rng rng(seed ^ (static_cast<std::uint64_t>(n) *
                    std::uint64_t{0x9E3779B97F4A7C15ull}));
    Fig2Point pt;
    pt.satellites = n;
    pt.trials = trials;
    double latSum = 0.0, e2eSum = 0.0, hopSum = 0.0;
    for (int t = 0; t < trials; ++t) {
      const Fig2Trial trial = runFig2Trial(n, cfg, rng);
      if (trial.connected) {
        ++pt.connectedTrials;
        latSum += trial.latencyS;
        e2eSum += trial.endToEndLatencyS;
        hopSum += trial.islHops;
      }
    }
    pt.connectivity = static_cast<double>(pt.connectedTrials) / trials;
    if (pt.connectedTrials > 0) {
      pt.meanLatencyS = latSum / pt.connectedTrials;
      pt.meanEndToEndLatencyS = e2eSum / pt.connectedTrials;
      pt.meanIslHops = hopSum / pt.connectedTrials;
    }
    out.push_back(pt);
  }
  return out;
}

std::vector<Fig2CoveragePoint> fig2CoverageSweep(
    const std::vector<int>& satelliteCounts, int trials, const Fig2Config& cfg,
    std::uint64_t seed) {
  if (satelliteCounts.empty()) {
    throw InvalidArgumentError("fig2CoverageSweep: empty sweep");
  }
  if (trials < 1) throw InvalidArgumentError("fig2CoverageSweep: trials < 1");

  std::vector<Fig2CoveragePoint> out;
  out.reserve(satelliteCounts.size());
  for (const int n : satelliteCounts) {
    Rng rng(seed ^ (static_cast<std::uint64_t>(n) *
                    std::uint64_t{0xD1B54A32D192ED03ull}));
    Fig2CoveragePoint pt;
    pt.satellites = n;
    double wcSum = 0.0, mcSum = 0.0, effSum = 0.0;
    for (int t = 0; t < trials; ++t) {
      const auto sats = makeRandomConstellation(n, cfg.altitudeM, rng);
      const CoverageEstimate wc =
          worstCaseOverlapCoverage(sats, cfg.tSeconds, cfg.minElevationRad);
      const CoverageEstimate mc = monteCarloCoverage(
          sats, cfg.tSeconds, cfg.minElevationRad, 2'000, rng);
      wcSum += wc.coverageFraction;
      mcSum += mc.coverageFraction;
      effSum += wc.effectiveSatellites;
    }
    pt.worstCaseCoverage = wcSum / trials;
    pt.monteCarloCoverage = mcSum / trials;
    pt.meanEffectiveSatellites = effSum / trials;
    out.push_back(pt);
  }
  return out;
}

}  // namespace openspace
