#include <openspace/sim/session_scenarios.hpp>

#include <cmath>
#include <numbers>

#include <openspace/geo/error.hpp>
#include <openspace/geo/wgs84.hpp>

namespace openspace {

namespace {

/// One home ISP stands in for the federation in scenario runs — every
/// certificate verifies locally either way (§2.2 shared federation
/// knowledge), so provider multiplicity would only change labels.
constexpr std::uint64_t kScenarioIssuerSecret = 0x5E55'10'4Aull;

CertificateAuthority scenarioAuthority(double lifetimeS) {
  return CertificateAuthority(ProviderId{1}, kScenarioIssuerSecret, lifetimeS);
}

/// A surface point uniformly distributed (by area) within `radiusM` of
/// `center`: draw a bearing and an area-uniform central angle, walk the
/// great circle. Deterministic given the Rng.
Geodetic pointNear(const Geodetic& center, double radiusM, Rng& rng) {
  const double maxAngle = radiusM / wgs84::kMeanRadiusM;
  const double u = rng.uniform(0.0, 1.0);
  const double angle =
      std::acos(1.0 - u * (1.0 - std::cos(maxAngle)));  // area-uniform
  const double bearing = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double lat1 = center.latitudeRad;
  const double lat2 = std::asin(std::sin(lat1) * std::cos(angle) +
                                std::cos(lat1) * std::sin(angle) *
                                    std::cos(bearing));
  const double lon2 =
      center.longitudeRad +
      std::atan2(std::sin(bearing) * std::sin(angle) * std::cos(lat1),
                 std::cos(angle) - std::sin(lat1) * std::sin(lat2));
  return Geodetic{lat2, lon2, 0.0};
}

std::vector<SessionSeed> basePopulationSeeds(const SessionScenarioConfig& cfg,
                                             const CertificateAuthority& ca,
                                             Rng& rng) {
  const PopulationModel world = defaultWorldPopulation();
  const auto users =
      world.sampleUsers(static_cast<int>(cfg.baseUsers), rng);
  return issueSeedCertificates(ca, users, /*firstUser=*/1, cfg.t0S);
}

}  // namespace

std::vector<SessionSeed> issueSeedCertificates(
    const CertificateAuthority& authority,
    const std::vector<SampledUser>& users, UserId firstUser, double nowS) {
  std::vector<SessionSeed> seeds;
  seeds.reserve(users.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    const UserId uid = firstUser + i;
    const Certificate cert = authority.issue(uid, nowS);
    seeds.push_back(
        SessionSeed{uid, users[i].location, cert.expiresAtS, cert.tag});
  }
  return seeds;
}

std::vector<SessionSeed> flashCrowdSeeds(const CertificateAuthority& authority,
                                         const Geodetic& center, double radiusM,
                                         std::size_t count, UserId firstUser,
                                         double nowS, Rng& rng) {
  if (!(radiusM >= 0.0)) {
    throw InvalidArgumentError("flashCrowdSeeds: radius must be >= 0");
  }
  std::vector<SampledUser> users;
  users.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    users.push_back(SampledUser{pointNear(center, radiusM, rng), 1.0});
  }
  return issueSeedCertificates(authority, users, firstUser, nowS);
}

SessionScenarioResult runFlashCrowdScenario(const EphemerisService& ephemeris,
                                            const SessionScenarioConfig& cfg,
                                            const Geodetic& crowdCenter,
                                            double crowdRadiusM,
                                            std::size_t crowdUsers) {
  Rng rng(cfg.rngSeed);
  const CertificateAuthority ca = scenarioAuthority(cfg.certLifetimeS);
  SweepConfig sweepCfg;
  sweepCfg.minElevationRad = cfg.minElevationRad;
  const HandoverSweep sweep(ephemeris, sweepCfg);
  SessionTable table(ephemeris.satellites().size());

  SessionScenarioResult out;
  const auto base = basePopulationSeeds(cfg, ca, rng);
  sweep.seed(table, base, cfg.t0S, SeedMode::ClosestAssociation);
  out.seededUsers += base.size();

  const std::size_t arriveAt = cfg.epochCount / 2;
  for (std::size_t e = 0; e < cfg.epochCount; ++e) {
    if (e == arriveAt && crowdUsers > 0) {
      const auto crowd = flashCrowdSeeds(
          ca, crowdCenter, crowdRadiusM, crowdUsers,
          /*firstUser=*/1 + base.size(), table.clockS(), rng);
      sweep.seed(table, crowd, table.clockS(), SeedMode::ClosestAssociation);
      out.seededUsers += crowd.size();
    }
    out.epochs.push_back(sweep.runEpoch(table, table.clockS() + cfg.epochS));
  }
  out.finalActive = table.activeCount();
  out.finalStateChecksum = table.stateChecksum();
  return out;
}

SessionScenarioResult runRegionalOutageScenario(
    const EphemerisService& ephemeris, const SessionScenarioConfig& cfg,
    const Geodetic& outageCenter, double outageRadiusM) {
  Rng rng(cfg.rngSeed);
  const CertificateAuthority ca = scenarioAuthority(cfg.certLifetimeS);
  SweepConfig sweepCfg;
  sweepCfg.minElevationRad = cfg.minElevationRad;
  const HandoverSweep sweep(ephemeris, sweepCfg);
  SessionTable table(ephemeris.satellites().size());

  SessionScenarioResult out;
  const auto base = basePopulationSeeds(cfg, ca, rng);
  sweep.seed(table, base, cfg.t0S, SeedMode::ClosestAssociation);
  out.seededUsers += base.size();

  const std::size_t outageAt = cfg.epochCount / 2;
  std::vector<SessionSeed> reseed;
  for (std::size_t e = 0; e < cfg.epochCount; ++e) {
    if (e == outageAt) {
      out.droppedSessions = table.disassociateRegion(outageCenter, outageRadiusM);
      // The dropped users queue for re-association: fresh certificates,
      // same ids and sites, seeded one epoch after the outage.
      const Vec3 centerEcef = geodeticToEcef(outageCenter);
      for (const SessionSeed& s : base) {
        if (geodeticToEcef(s.location).distanceTo(centerEcef) > outageRadiusM) {
          continue;
        }
        const Certificate cert = ca.issue(s.user, table.clockS() + cfg.epochS);
        reseed.push_back(
            SessionSeed{s.user, s.location, cert.expiresAtS, cert.tag});
      }
    }
    if (e == outageAt + 1 && !reseed.empty()) {
      sweep.seed(table, reseed, table.clockS(), SeedMode::ClosestAssociation);
      out.seededUsers += reseed.size();
    }
    out.epochs.push_back(sweep.runEpoch(table, table.clockS() + cfg.epochS));
  }
  out.finalActive = table.activeCount();
  out.finalStateChecksum = table.stateChecksum();
  return out;
}

SessionScenarioResult runDiurnalLoadShiftScenario(
    const EphemerisService& ephemeris, const SessionScenarioConfig& cfg,
    std::size_t arrivalsPerEpoch) {
  Rng rng(cfg.rngSeed);
  const CertificateAuthority ca = scenarioAuthority(cfg.certLifetimeS);
  SweepConfig sweepCfg;
  sweepCfg.minElevationRad = cfg.minElevationRad;
  const HandoverSweep sweep(ephemeris, sweepCfg);
  SessionTable table(ephemeris.satellites().size());
  const PopulationModel world = defaultWorldPopulation();

  SessionScenarioResult out;
  const auto base = basePopulationSeeds(cfg, ca, rng);
  sweep.seed(table, base, cfg.t0S, SeedMode::ClosestAssociation);
  out.seededUsers += base.size();
  UserId nextUser = 1 + base.size();

  for (std::size_t e = 0; e < cfg.epochCount; ++e) {
    // Thin an arrival batch by the local diurnal demand at each candidate's
    // longitude: evening longitudes admit most of their draws, morning
    // longitudes few — the admitted load tracks the peak westward.
    const auto candidates =
        world.sampleUsers(static_cast<int>(arrivalsPerEpoch), rng);
    std::vector<SampledUser> admitted;
    for (const SampledUser& c : candidates) {
      const double f = diurnalDemandFactor(table.clockS(), c.location.longitudeRad);
      if (rng.chance(f)) admitted.push_back(c);
    }
    if (!admitted.empty()) {
      const auto seeds =
          issueSeedCertificates(ca, admitted, nextUser, table.clockS());
      sweep.seed(table, seeds, table.clockS(), SeedMode::ClosestAssociation);
      nextUser += seeds.size();
      out.seededUsers += seeds.size();
    }
    out.epochs.push_back(sweep.runEpoch(table, table.clockS() + cfg.epochS));
  }
  out.finalActive = table.activeCount();
  out.finalStateChecksum = table.stateChecksum();
  return out;
}

}  // namespace openspace
