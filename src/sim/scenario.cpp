#include <openspace/sim/scenario.hpp>

#include <numbers>

#include <openspace/geo/error.hpp>

namespace openspace {

Scenario::Scenario(const ScenarioConfig& cfg)
    : cfg_(cfg), beacons_(cfg.beaconPeriodS), rng_(cfg.seed) {
  if (cfg.providers.empty()) {
    throw InvalidArgumentError("Scenario: at least one provider required");
  }
  int totalSats = 0;
  for (const auto& p : cfg.providers) {
    if (p.satellites <= 0) {
      throw InvalidArgumentError("Scenario: provider '" + p.name +
                                 "' must contribute satellites");
    }
    totalSats += p.satellites;
  }

  // --- publish orbits ----------------------------------------------------
  if (cfg.coordinatedWalker) {
    WalkerConfig wc;
    // Round total up to a multiple of the plane count; surplus slots stay
    // unfilled (satellites are assigned round-robin from the plan).
    const int planes = std::max(1, cfg.walkerPlanes);
    const int perPlane = (totalSats + planes - 1) / planes;
    wc.totalSatellites = perPlane * planes;
    wc.planes = planes;
    wc.phasing = 1 % planes;
    wc.altitudeM = cfg.altitudeM;
    wc.inclinationRad = cfg.inclinationRad;
    const auto plan = makeWalkerStar(wc);
    std::size_t slot = 0;
    for (std::size_t p = 0; p < cfg.providers.size(); ++p) {
      for (int s = 0; s < cfg.providers[p].satellites; ++s) {
        ephemeris_.publish(providerId(p), plan[slot++]);
      }
    }
  } else {
    for (std::size_t p = 0; p < cfg.providers.size(); ++p) {
      const auto sats =
          makeRandomConstellation(cfg.providers[p].satellites, cfg.altitudeM, rng_);
      for (const auto& el : sats) ephemeris_.publish(providerId(p), el);
    }
  }

  // --- capabilities (laser fractions) -------------------------------------
  builder_ = std::make_unique<TopologyBuilder>(ephemeris_);
  for (std::size_t p = 0; p < cfg.providers.size(); ++p) {
    const auto fleet = ephemeris_.satellitesOf(providerId(p));
    const auto laserCount = static_cast<std::size_t>(
        cfg.providers[p].laserFraction * static_cast<double>(fleet.size()) + 0.5);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      LinkCapabilities caps;
      caps.islBands = {Band::S, Band::Uhf};
      caps.hasLaserTerminal = i < laserCount;
      caps.maxIslCount = 4;
      builder_->setCapabilities(fleet[i], caps);
    }
  }

  // --- ground segment ------------------------------------------------------
  for (const auto& st : cfg.stations) {
    if (st.ownerProviderIndex >= cfg.providers.size()) {
      throw InvalidArgumentError("Scenario: station owner index out of range");
    }
    GroundSite site{st.name, st.location, providerId(st.ownerProviderIndex)};
    stations_.push_back(builder_->addGroundStation(site));
  }

  // --- users + AAA ----------------------------------------------------------
  for (std::size_t p = 0; p < cfg.providers.size(); ++p) {
    radius_.emplace_back(providerId(p),
                         0xC0FFEE00ull + static_cast<std::uint64_t>(p));
  }
  for (std::size_t u = 0; u < cfg.users.size(); ++u) {
    const auto& us = cfg.users[u];
    if (us.homeProviderIndex >= cfg.providers.size()) {
      throw InvalidArgumentError("Scenario: user home provider out of range");
    }
    GroundSite site{us.name, us.location, providerId(us.homeProviderIndex)};
    userNodes_.push_back(builder_->addUser(site));
    const auto secret = 0xAB5EED00ull + static_cast<std::uint64_t>(u);
    radius_[us.homeProviderIndex].enroll(static_cast<UserId>(u + 1), secret);
    agents_.emplace_back(static_cast<UserId>(u + 1),
                         providerId(us.homeProviderIndex), secret, us.location);
  }

  // --- settlement ------------------------------------------------------------
  for (std::size_t p = 0; p < cfg.providers.size(); ++p) {
    settlement_.addProvider(providerId(p));
    settlement_.setTariff(
        {providerId(p), ProviderId{}, cfg.providers[p].transitTariffUsdPerGb});
  }
}

ProviderId Scenario::providerId(std::size_t index) const {
  if (index >= cfg_.providers.size()) {
    throw InvalidArgumentError("Scenario::providerId: index out of range");
  }
  return static_cast<ProviderId>(index + 1);
}

NetworkGraph Scenario::snapshot(double tSeconds) const {
  SnapshotOptions opt;
  opt.wiring = IslWiring::NearestNeighbors;
  opt.nearestK = 4;
  opt.minElevationRad = cfg_.minElevationRad;
  return builder_->snapshot(tSeconds, opt);
}

std::vector<BeaconMessage> Scenario::beaconsAt(double tSeconds) const {
  std::vector<BeaconMessage> out;
  for (const SatelliteId sid : ephemeris_.satellites()) {
    const auto& rec = ephemeris_.record(sid);
    BeaconMessage b;
    b.satellite = sid;
    b.provider = rec.owner;
    b.txTimeS = tSeconds;
    b.elements = rec.elements;
    b.capabilities = builder_->capabilities(sid);
    out.push_back(std::move(b));
  }
  return out;
}

NodeId Scenario::userNode(std::size_t userIndex) const {
  if (userIndex >= userNodes_.size()) {
    throw InvalidArgumentError("Scenario::userNode: index out of range");
  }
  return userNodes_[userIndex];
}

GroundStationId Scenario::stationId(std::size_t stationIndex) const {
  if (stationIndex >= stations_.size()) {
    throw InvalidArgumentError("Scenario::stationId: index out of range");
  }
  return stations_[stationIndex];
}

NodeId Scenario::stationNode(std::size_t stationIndex) const {
  return builder_->nodeOf(stationId(stationIndex));
}

NodeId Scenario::homeGatewayOf(std::size_t userIndex) const {
  if (userIndex >= cfg_.users.size()) {
    throw InvalidArgumentError("Scenario::homeGatewayOf: index out of range");
  }
  const std::size_t home = cfg_.users[userIndex].homeProviderIndex;
  for (std::size_t s = 0; s < cfg_.stations.size(); ++s) {
    if (cfg_.stations[s].ownerProviderIndex == home) {
      return builder_->nodeOf(stations_[s]);
    }
  }
  throw NotFoundError("Scenario: user's home provider owns no ground station");
}

AssociationResult Scenario::associateUser(std::size_t userIndex, double tSeconds) {
  if (userIndex >= agents_.size()) {
    throw InvalidArgumentError("Scenario::associateUser: index out of range");
  }
  const NetworkGraph g = snapshot(tSeconds);
  const std::size_t home = cfg_.users[userIndex].homeProviderIndex;
  return agents_[userIndex].associate(beaconsAt(tSeconds), g, *builder_,
                                      radius_[home], homeGatewayOf(userIndex),
                                      tSeconds, cfg_.minElevationRad, beacons_);
}

AdaptiveReport Scenario::runAdaptiveEpochs(double tSeconds, int epochs,
                                           double epochDurationS,
                                           double rateBps) {
  if (epochs < 1) {
    throw InvalidArgumentError("runAdaptiveEpochs: epochs must be >= 1");
  }
  if (epochDurationS <= 0.0 || rateBps <= 0.0) {
    throw InvalidArgumentError(
        "runAdaptiveEpochs: duration and rate must be > 0");
  }
  NetworkGraph g = snapshot(tSeconds);  // shared, mutated between epochs
  AdaptiveReport rep;
  std::vector<Route> prevRoutes(cfg_.users.size());

  for (int e = 0; e < epochs; ++e) {
    EventQueue events;
    const double epochStart = tSeconds + e * epochDurationS;
    events.run(epochStart);
    ForwardingEngine engine(g, events);
    const OnDemandRouter router(g, latencyCost());

    std::vector<Route> routes(cfg_.users.size());
    for (std::size_t u = 0; u < cfg_.users.size(); ++u) {
      routes[u] = router.route(userNodes_[u], homeGatewayOf(u));
      if (e > 0 && routes[u].valid() && prevRoutes[u].valid() &&
          routes[u].nodes != prevRoutes[u].nodes) {
        ++rep.reroutedFlows;
      }
    }

    FlowGenerator gen(events, rng_, [&](const Packet& p) {
      for (std::size_t u = 0; u < userNodes_.size(); ++u) {
        if (userNodes_[u] == p.src) {
          engine.send(p, routes[u]);
          return;
        }
      }
    });
    for (std::size_t u = 0; u < cfg_.users.size(); ++u) {
      if (!routes[u].valid()) continue;
      FlowSpec flow;
      flow.src = userNodes_[u];
      flow.dst = homeGatewayOf(u);
      flow.rateBps = rateBps;
      flow.homeProvider = providerId(cfg_.users[u].homeProviderIndex);
      flow.startS = epochStart;
      flow.stopS = epochStart + epochDurationS;
      gen.addFlow(flow);
    }
    events.runAll();

    rep.epochMeanLatencyS.push_back(
        engine.stats().count() > 0 ? engine.stats().meanS() : 0.0);
    rep.epochLossRate.push_back(engine.stats().lossRate());
    rep.totalDelivered += engine.delivered();
    rep.totalDropped += engine.dropped();
    prevRoutes = routes;

    // Feedback: measured utilization -> queueing-delay estimates on the
    // shared graph for the next epoch's route computation.
    for (const LinkId lid : g.links()) {
      Link& l = g.link(lid);
      const double utilization =
          engine.bitsCarried(lid) / (l.capacityBps * epochDurationS);
      l.queueingDelayS = (utilization > 0.0)
                             ? estimateQueueingDelayS(utilization, l.capacityBps)
                             : 0.0;
    }
  }
  return rep;
}

TrafficReport Scenario::runTrafficEpoch(double tSeconds, double durationS,
                                        double rateBps, QosClass qos) {
  if (durationS <= 0.0 || rateBps <= 0.0) {
    throw InvalidArgumentError("runTrafficEpoch: duration and rate must be > 0");
  }
  const NetworkGraph g = snapshot(tSeconds);
  EventQueue events;
  events.run(tSeconds);  // advance the clock to the epoch start
  ForwardingEngine engine(g, events);
  const OnDemandRouter router(g, makeCostFunction(CostWeights::forQos(qos)));

  // Precompute each user's route to its home gateway; account on delivery.
  std::vector<Route> routes(cfg_.users.size());
  for (std::size_t u = 0; u < cfg_.users.size(); ++u) {
    routes[u] = router.route(userNodes_[u], homeGatewayOf(u));
  }
  engine.onComplete([&](const DeliveryRecord& rec) {
    if (!rec.delivered) return;
    for (std::size_t u = 0; u < userNodes_.size(); ++u) {
      if (userNodes_[u] == rec.packet.src) {
        settlement_.recordRouteTraffic(g, routes[u], rec.packet.homeProvider,
                                       rec.packet.sizeBits / 8.0);
        break;
      }
    }
  });

  FlowGenerator gen(events, rng_, [&](const Packet& p) {
    for (std::size_t u = 0; u < userNodes_.size(); ++u) {
      if (userNodes_[u] == p.src) {
        engine.send(p, routes[u]);
        return;
      }
    }
  });
  for (std::size_t u = 0; u < cfg_.users.size(); ++u) {
    if (!routes[u].valid()) continue;  // uncovered user offers no traffic
    FlowSpec flow;
    flow.src = userNodes_[u];
    flow.dst = homeGatewayOf(u);
    flow.rateBps = rateBps;
    flow.qos = qos;
    flow.homeProvider = providerId(cfg_.users[u].homeProviderIndex);
    flow.startS = tSeconds;
    flow.stopS = tSeconds + durationS;
    gen.addFlow(flow);
  }
  events.runAll();

  TrafficReport rep;
  rep.packetsOffered = gen.packetsEmitted();
  rep.packetsDelivered = engine.delivered();
  rep.packetsDropped = engine.dropped();
  if (engine.stats().count() > 0) {
    rep.meanLatencyS = engine.stats().meanS();
    rep.p95LatencyS = engine.stats().p95S();
  }
  rep.lossProbability = engine.stats().lossRate();
  rep.ledgersCrossVerified = settlement_.crossVerify();
  rep.settlement = settlement_.settle();
  for (const auto& item : rep.settlement) rep.totalSettlementUsd += item.amountUsd;
  return rep;
}

}  // namespace openspace
