// Discrete-event flow simulation at constellation scale.
//
// The per-snapshot results so far are load-free: Figure 2's latency is pure
// propagation delay. FlowSimulator closes that gap — it drives Poisson
// packet flows through compiled-snapshot routes and per-direction link
// transmitters on the hierarchical timer wheel (net/scheduler.hpp), and
// reports what the analytic numbers cannot: queueing latency distributions,
// loss under buffer pressure, per-flow jitter and per-link utilization.
//
// Semantics are pinned to the legacy toy-scale stack (EventQueue +
// FlowGenerator + ForwardingEngine): given the same flows and RNG seed, the
// simulator reproduces the legacy delivery records bit-for-bit — same
// packet ids, timestamps, latencies, drop reasons, and completion order.
// Property tests enforce this; the legacy path stays the executable spec.
//
// Scale comes from three changes, not from semantic shortcuts:
//  * timer-wheel scheduling of 12-byte POD event records (no per-event
//    closure allocation, no heap percolation);
//  * routes compiled once into flat directed-edge index arrays over the
//    CompactGraph (no hash lookups per hop);
//  * per-flow/per-edge state in dense arrays indexed by small integers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include <openspace/core/hash.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/net/flows.hpp>
#include <openspace/net/metrics.hpp>
#include <openspace/net/packet.hpp>
#include <openspace/net/scheduler.hpp>
#include <openspace/topology/compact_graph.hpp>

namespace openspace {

class ConstellationSnapshot;
class RouteEngine;

// The FNV-1a mixing helpers (kFnvOffsetBasis / fnv1a / bitsOf) shared by the
// simulator's record checksum and the benches' serial==parallel /
// simulator==legacy gates live in core/hash.hpp.

/// Fold one delivery record into a running FNV checksum. Used identically
/// on legacy ForwardingEngine records and FlowSimulator records, so the
/// equivalence gates compare full record streams, not summaries.
std::uint64_t mixDeliveryRecord(std::uint64_t h, const DeliveryRecord& rec) noexcept;

/// Builder-style simulator configuration.
struct FlowSimConfig {
  double startS = 0.0;        ///< Simulation clock origin.
  double durationS = 1.0;     ///< Utilization denominator (reporting only).
  double maxQueueBits = 8e6;  ///< Per link-direction drop-tail buffer.
  double tickS = 1e-6;        ///< Timer-wheel bucketing granularity.
  std::uint64_t seed = 1;     ///< Poisson arrival RNG seed.

  FlowSimConfig& withStart(double s) { startS = s; return *this; }
  FlowSimConfig& withDuration(double s) { durationS = s; return *this; }
  FlowSimConfig& withQueueBits(double bits) { maxQueueBits = bits; return *this; }
  FlowSimConfig& withTick(double s) { tickS = s; return *this; }
  FlowSimConfig& withSeed(std::uint64_t s) { seed = s; return *this; }
};

/// Per-flow outcome summary.
struct FlowSummary {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  double meanLatencyS = 0.0;
  double minLatencyS = 0.0;
  double maxLatencyS = 0.0;
  /// Mean |latency delta| between consecutive delivered packets (RFC 3550
  /// style inter-arrival jitter, unsmoothed).
  double meanJitterS = 0.0;
};

/// What one run() produces.
struct FlowSimReport {
  std::uint64_t packetsOffered = 0;
  std::uint64_t packetsDelivered = 0;
  std::uint64_t packetsDropped = 0;
  std::uint64_t eventsExecuted = 0;
  LatencyStats latency;             ///< Aggregate over all flows.
  std::vector<FlowSummary> flows;   ///< By flow index (addFlow order).
  /// Per directed CSR edge (CompactGraph edge index): bits offered to the
  /// transmitter, and utilization = bits / (capacity * durationS). Backlogs
  /// queued before startS + durationS drain to completion after the horizon,
  /// so a saturated edge can report utilization > 1.
  std::vector<double> edgeBitsCarried;
  std::vector<double> edgeUtilization;
  /// FNV-1a over every delivery record in completion order.
  std::uint64_t recordChecksum = kFnvOffsetBasis;
};

/// Event-driven flow simulator over one compiled topology snapshot.
/// Single-shot: configure, add paths/flows, run() once.
class FlowSimulator {
 public:
  /// Flows with this path id drop every packet with DropReason::NoRoute —
  /// the legacy invalid-route behavior.
  static constexpr std::uint32_t kNoPath = 0xFFFFFFFFu;

  /// Throws InvalidArgumentError for a null graph or non-positive queue
  /// limit / tick.
  explicit FlowSimulator(std::shared_ptr<const CompactGraph> graph,
                         FlowSimConfig cfg = {});

  /// Compile `route` into directed edge indices; returns a path id shared
  /// by any number of flows. Throws InvalidArgumentError if the route is
  /// invalid or traverses an edge the compiled graph dropped, NotFoundError
  /// for nodes absent from the snapshot.
  std::uint32_t addPath(const Route& route);

  /// Register a flow on a previously added path (or kNoPath). Throws
  /// InvalidArgumentError on non-positive rate/size or if the path
  /// endpoints do not match the flow's src/dst (the legacy send() check,
  /// moved to registration time). Returns the flow index.
  std::uint32_t addFlow(const FlowSpec& flow, std::uint32_t pathId);

  /// Convenience: addPath + addFlow; an invalid route maps to kNoPath.
  std::uint32_t addFlow(const FlowSpec& flow, const Route& route);

  /// Optional per-record callback, field-identical to the legacy
  /// ForwardingEngine records (the equivalence tests hook this).
  void onComplete(std::function<void(const DeliveryRecord&)> cb);

  std::size_t flowCount() const noexcept { return flows_.size(); }

  /// Run to completion (all flows exhausted past their stopS). Single-shot:
  /// throws StateError on a second call.
  FlowSimReport run();

 private:
  enum EvKind : std::uint32_t { kEmit = 0, kTxDone = 1, kArrive = 2 };
  struct Ev {
    std::uint32_t kind;
    std::uint32_t a;  ///< kEmit: flow index; kTxDone: edge; kArrive: packet slot.
    std::uint32_t b;  ///< kTxDone: flow index (drain size); else unused.
  };
  struct PathInfo {
    std::uint32_t off = 0;  ///< Into pathEdges_.
    std::uint32_t len = 0;
    NodeId src{};
    NodeId dst{};
  };
  struct FlowState {
    FlowSpec spec;
    std::uint32_t path = kNoPath;
    std::uint64_t offered = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    double latencySumS = 0.0;
    double minLatencyS = 0.0;
    double maxLatencyS = 0.0;
    double lastLatencyS = 0.0;
    double jitterSumS = 0.0;
  };
  struct PktState {
    double createdAtS = 0.0;
    PacketId id = 0;
    std::uint32_t flow = 0;
    std::uint32_t hop = 0;
    std::uint32_t next = 0;  ///< Free-list link.
  };
  struct EdgeState {
    double busyUntilS = 0.0;
    double backlogBits = 0.0;
  };

  void dispatch(double tS, const Ev& ev);
  void scheduleNextEmit(std::uint32_t flow, double afterS);
  void arrive(std::uint32_t pktSlot);
  void finish(std::uint32_t flowIdx, PacketId id, double createdAtS,
              std::uint32_t hops, bool delivered, DropReason reason);
  std::uint32_t allocPkt();
  void freePkt(std::uint32_t slot);

  std::shared_ptr<const CompactGraph> graph_;
  FlowSimConfig cfg_;
  TimerWheel<Ev> wheel_;
  Rng rng_;
  bool ran_ = false;

  std::vector<PathInfo> paths_;
  std::vector<std::uint32_t> pathEdges_;  ///< Flat directed-edge arena.
  std::vector<FlowState> flows_;
  std::vector<PktState> pkts_;
  std::uint32_t pktFreeHead_ = 0xFFFFFFFFu;
  std::vector<EdgeState> edges_;      ///< By CSR edge index.
  std::vector<double> bitsCarried_;   ///< By CSR edge index.

  PacketId nextPacketId_ = 1;
  std::uint64_t offered_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t checksum_ = kFnvOffsetBasis;
  LatencyStats stats_;
  std::function<void(const DeliveryRecord&)> onComplete_;
};

/// City-weighted traffic synthesis for one snapshot (paper §5(1)): sample
/// a world-model user base, associate each user to its serving satellite
/// via the footprint index, and offer one uplink flow per served user from
/// that satellite to the best-reachable gateway.
struct CityFlowConfig {
  int users = 10'000;
  double meanRateBps = 20e3;    ///< Scaled by user weight, diurnal factor
                                ///< and a per-user uniform jitter in [0.5, 1.5).
  double packetBits = 12'000.0;
  double startS = 0.0;
  double durationS = 1.0;
  double minElevationRad = 0.0;
  double utcSeconds = 0.0;      ///< Time of day for the diurnal demand curve.
  double ruralFraction = 0.3;
  std::uint64_t seed = 1;
};

/// One flow per served user; users with no visible satellite (or whose
/// satellite reaches no gateway) are counted, not offered.
struct CityFlows {
  std::vector<FlowSpec> specs;
  /// Per spec: index into `routes` (== serving satellite index).
  std::vector<std::uint32_t> routeOf;
  /// Per satellite: route to its cheapest-reachable gateway (invalid when
  /// no gateway is reachable).
  std::vector<Route> routes;
  std::size_t unservedUsers = 0;
  /// FNV-1a over the generated specs — the serial==parallel determinism
  /// witness (user association and rate jitter run on the thread pool).
  std::uint64_t checksum = kFnvOffsetBasis;
};

/// Deterministic at any thread count: users are sampled on one serial RNG
/// stream, association/jitter fan out in fixed 4096-user chunks with
/// chunk-seeded RNGs, and results land in per-user slots. `satNodes[i]`
/// must be the NodeId of snapshot satellite i.
CityFlows buildCityFlows(const CityFlowConfig& cfg,
                         std::shared_ptr<const ConstellationSnapshot> snapshot,
                         const std::vector<NodeId>& satNodes,
                         const std::vector<NodeId>& gateways,
                         const RouteEngine& engine);

}  // namespace openspace
