// The paper's §4 "simplified simulation" (Figure 2).
//
// Setup, per the paper: "We run a simplified simulation, fixing the user
// and ground station coordinates and randomly distributing satellites[']
// orbital paths. We then compute the shortest path between the satellite
// that picks up the user's signal, and the satellite that will relay that
// signal to the ground station, and use this path length to estimate
// latency."
//
// Figure 2(b): propagation latency vs. number of satellites — drops
// steeply, then plateaus near ~30 ms past ~25 satellites; ~4 satellites is
// the minimum for any connectivity.
// Figure 2(c): coverage vs. number of satellites under the worst-case
// overlap model — total Earth coverage around ~50 satellites.
#pragma once

#include <optional>

#include <openspace/geo/rng.hpp>
#include <openspace/orbit/walker.hpp>

namespace openspace {

/// Configuration of the Figure 2 experiment.
struct Fig2Config {
  double altitudeM = 780'000.0;       ///< Iridium-like regime.
  Geodetic user = Geodetic::fromDegrees(40.4406, -79.9959);   ///< Pittsburgh.
  Geodetic groundStation = Geodetic::fromDegrees(48.8566, 2.3522);  ///< Paris.
  /// Elevation mask. The paper's simplified simulation counts a satellite
  /// as "in range" whenever it is above the horizon, so the default is 0.
  double minElevationRad = 0.0;
  /// ISLs beyond this range do not close. Default ~ the line-of-sight limit
  /// between two 780 km satellites grazing the atmosphere.
  double maxIslRangeM = 6'400'000.0;
  double tSeconds = 0.0;              ///< Snapshot instant.
};

/// One latency trial outcome.
struct Fig2Trial {
  bool userCovered = false;     ///< Some satellite picks up the user.
  bool stationCovered = false;  ///< Some satellite reaches the station.
  bool connected = false;       ///< An ISL path links the two satellites.
  double pathLengthM = 0.0;     ///< Inter-satellite shortest path length.
  double latencyS = 0.0;        ///< pathLength / c (the paper's estimate).
  double endToEndLatencyS = 0.0;///< + user uplink and station downlink legs.
  int islHops = 0;
};

/// Run one trial with `n` randomly distributed satellites.
Fig2Trial runFig2Trial(int n, const Fig2Config& cfg, Rng& rng);

/// Aggregate of many trials at one constellation size.
struct Fig2Point {
  int satellites = 0;
  int trials = 0;
  int connectedTrials = 0;
  double connectivity = 0.0;        ///< Fraction of trials with a full path.
  double meanLatencyS = 0.0;        ///< Over connected trials.
  double meanEndToEndLatencyS = 0.0;
  double meanIslHops = 0.0;
};

/// Figure 2(b) engine: sweep constellation sizes, `trials` random
/// constellations each. Deterministic given the seed. Throws
/// InvalidArgumentError on empty sweep or trials < 1.
std::vector<Fig2Point> fig2LatencySweep(const std::vector<int>& satelliteCounts,
                                        int trials, const Fig2Config& cfg,
                                        std::uint64_t seed);

/// Figure 2(c) point: worst-case-overlap and Monte-Carlo coverage for `n`
/// random satellites, averaged over `trials` constellations.
struct Fig2CoveragePoint {
  int satellites = 0;
  double worstCaseCoverage = 0.0;
  double monteCarloCoverage = 0.0;
  double meanEffectiveSatellites = 0.0;
};

std::vector<Fig2CoveragePoint> fig2CoverageSweep(
    const std::vector<int>& satelliteCounts, int trials, const Fig2Config& cfg,
    std::uint64_t seed);

}  // namespace openspace
