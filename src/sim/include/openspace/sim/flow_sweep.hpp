// Multi-snapshot flow simulation over the incremental topology path.
//
// flow_sim.hpp simulates one compiled snapshot; a constellation study wants
// a *sweep* — the same demand set replayed across a time grid while the
// topology drifts underneath it. runFlowSweep() drives that loop through
// the delta machinery end to end: one IncrementalTopology produces each
// step's CompactGraph by payload-patching (topology/delta.hpp), per-source
// routing trees are carried forward with RouteEngine::repairShortestPathTree
// instead of re-running Dijkstra from scratch, and one FlowSimulator slice
// runs per step over the routes those trees select.
//
// Determinism gates: every step folds its route node sequences and the
// slice's delivery-record checksum into one sweep checksum. Running the
// same sweep with TemporalBuild::FreshCompile (full snapshot + compileGraph
// + fresh Dijkstra per step) must produce the identical checksum — the
// delta path's graphs are bit-identical and repaired trees equal fresh
// trees node-for-node, so the simulated packet streams match bit-for-bit.
// Property tests and bench_temporal_delta enforce this.
#pragma once

#include <cstdint>
#include <vector>

#include <openspace/core/hash.hpp>
#include <openspace/sim/flow_sim.hpp>
#include <openspace/topology/builder.hpp>
#include <openspace/topology/delta.hpp>

namespace openspace {

/// One persistent demand: a flow offered on every step of the sweep, routed
/// over that step's shortest delay path (skipped on steps where dst is
/// unreachable from src — the packets would all drop NoRoute anyway).
struct FlowSweepDemand {
  NodeId src{};
  NodeId dst{};
  double rateBps = 1e6;
  double packetBits = 12'000.0;
};

struct FlowSweepConfig {
  double t0S = 0.0;
  double horizonS = 60.0;  ///< Sweep covers [t0S, t0S + horizonS).
  double stepS = 10.0;     ///< One topology + simulator slice per step.
  /// Per-slice simulator knobs. startS/durationS are overwritten per step;
  /// the seed is re-derived per step (FNV-mixed with the step index) so
  /// slices are decorrelated but reproducible.
  FlowSimConfig sim;
  TemporalBuild build = TemporalBuild::Delta;
};

/// Per-step outcome, in grid order.
struct FlowSweepStep {
  double tS = 0.0;
  bool structural = false;    ///< Link set changed (CSR rebuilt this step).
  bool treesRepaired = false; ///< All carried trees repaired (no fallback).
  std::uint64_t packetsOffered = 0;
  std::uint64_t packetsDelivered = 0;
  std::uint64_t packetsDropped = 0;
  std::uint64_t recordChecksum = 0;  ///< The slice's delivery-record FNV.
};

struct FlowSweepReport {
  std::vector<FlowSweepStep> steps;
  std::uint64_t packetsOffered = 0;
  std::uint64_t packetsDelivered = 0;
  std::uint64_t packetsDropped = 0;
  std::size_t structuralSteps = 0;  ///< Steps that rebuilt the CSR arrays.
  std::size_t repairedSteps = 0;    ///< Steps where every tree was repaired.
  /// FNV-1a over every step's route node sequences and record checksum, in
  /// grid order — the delta==fresh sweep witness.
  std::uint64_t checksum = kFnvOffsetBasis;
};

/// Run `demands` across the sweep grid. Throws InvalidArgumentError for a
/// non-positive step/horizon or a demand with an unset endpoint; unknown
/// endpoints surface as NotFoundError from the routing layer on the first
/// step. The builder's registry must stay frozen for the duration.
FlowSweepReport runFlowSweep(const TopologyBuilder& builder,
                             const SnapshotOptions& opt,
                             const std::vector<FlowSweepDemand>& demands,
                             const FlowSweepConfig& cfg);

}  // namespace openspace
