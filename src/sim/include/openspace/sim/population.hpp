// User-base modeling (paper §5(1)).
//
// "Defining these parameters requires ... modelling a potential user base
// along with potential user traffic patterns." PopulationModel provides
// the synthetic user base: a catalog of major population centers with
// weights, area-weighted rural sampling, a diurnal demand curve, and the
// demand-weighted coverage metric (what fraction of *demand*, not area,
// the constellation serves — the commercially relevant number, given that
// satellite Internet demand skews to places terrestrial networks skip).
#pragma once

#include <string>
#include <vector>

#include <openspace/geo/rng.hpp>
#include <openspace/orbit/elements.hpp>

namespace openspace {

/// A population center.
struct PopulationCenter {
  std::string name;
  Geodetic location;
  double weightMillions = 0.0;  ///< Relative demand weight (~population).
};

/// A sampled user with a demand weight.
struct SampledUser {
  Geodetic location;
  double weight = 1.0;
};

/// World population model mixing urban centers and diffuse rural demand.
class PopulationModel {
 public:
  /// `ruralFraction` of total demand is spread area-uniformly over land-ish
  /// latitudes (|lat| < 65 deg); the rest concentrates at the centers.
  /// Throws InvalidArgumentError if centers is empty or ruralFraction is
  /// outside [0, 1].
  PopulationModel(std::vector<PopulationCenter> centers, double ruralFraction);

  /// Draw `n` users; city users scatter within ~200 km of their center.
  /// Deterministic given the Rng.
  std::vector<SampledUser> sampleUsers(int n, Rng& rng) const;

  /// Fraction of total demand weight within sight (>= minElevationRad) of
  /// at least one satellite at time t, using `samples` draws.
  double demandWeightedCoverage(const std::vector<OrbitalElements>& sats,
                                double tSeconds, double minElevationRad,
                                int samples, Rng& rng) const;

  const std::vector<PopulationCenter>& centers() const noexcept {
    return centers_;
  }
  double totalWeightMillions() const noexcept { return totalWeight_; }

 private:
  std::vector<PopulationCenter> centers_;
  double ruralFraction_;
  double totalWeight_ = 0.0;
};

/// Diurnal demand multiplier in [0.3, 1.0]: demand peaks in the local
/// evening (20:00) and troughs in the morning (08:00). `utcSeconds` is time
/// of day; longitude shifts local time.
double diurnalDemandFactor(double utcSeconds, double longitudeRad);

/// A default 24-center world model (large cities across all continents,
/// weights loosely proportional to metro population) with 30% rural demand
/// — enough structure for demand-weighted studies without shipping a
/// population raster.
PopulationModel defaultWorldPopulation();

}  // namespace openspace
