// Session-plane scenarios (paper §5(1) user modeling x §2.2 handovers).
//
// Three stress patterns the democratized-access architecture has to absorb,
// each driven end-to-end through the sharded SessionTable + HandoverSweep
// epoch kernel:
//
//  * flash crowd — a burst of users associating inside one metro area at
//    an epoch boundary (a stadium event, a disaster): seeds pile into the
//    satellites over one region and the sweep keeps every prior session's
//    predicted-handover schedule untouched;
//  * regional ground-station outage — every session in a radius drops to
//    Disassociated mid-run (SessionTable::disassociateRegion) and
//    re-associates through a fresh seed at the next epoch boundary;
//  * diurnal load shift — arrivals per epoch follow diurnalDemandFactor at
//    each user's longitude, so the serving load migrates westward with the
//    evening peak while standing sessions keep handing over.
//
// All scenarios are deterministic given the config seed (explicit Rng,
// deterministic sweep) — their final table checksums are stable across
// thread counts, which makes them usable as integration tests.
#pragma once

#include <cstdint>
#include <vector>

#include <openspace/auth/certificate.hpp>
#include <openspace/geo/rng.hpp>
#include <openspace/session/handover_sweep.hpp>
#include <openspace/sim/population.hpp>

namespace openspace {

/// Issue a roaming certificate per sampled user and package the users as
/// session seeds, ids firstUser, firstUser+1, ... in sample order.
std::vector<SessionSeed> issueSeedCertificates(
    const CertificateAuthority& authority,
    const std::vector<SampledUser>& users, UserId firstUser, double nowS);

/// `count` flash-crowd seeds scattered uniformly within `radiusM` (surface
/// chord) of `center`, certificates issued at `nowS`. Deterministic given
/// the Rng.
std::vector<SessionSeed> flashCrowdSeeds(const CertificateAuthority& authority,
                                         const Geodetic& center, double radiusM,
                                         std::size_t count, UserId firstUser,
                                         double nowS, Rng& rng);

/// Common scenario shape: a base population seeded at t0, then
/// `epochCount` sweep epochs of `epochS` seconds each.
struct SessionScenarioConfig {
  std::size_t baseUsers = 20'000;
  double t0S = 0.0;
  double epochS = 60.0;
  std::size_t epochCount = 10;
  double minElevationRad = 0.1745;  ///< ~10 deg.
  double certLifetimeS = 86'400.0;
  std::uint64_t rngSeed = 42;
};

/// Scenario outcome: per-epoch sweep stats plus the final table state.
struct SessionScenarioResult {
  std::vector<EpochStats> epochs;
  std::size_t seededUsers = 0;     ///< Total sessions seeded over the run.
  std::size_t droppedSessions = 0; ///< Sessions dropped by the disturbance.
  std::size_t finalActive = 0;
  std::uint64_t finalStateChecksum = 0;
};

/// Flash crowd: the base population runs for half the epochs, then
/// `crowdUsers` extra seeds land within `crowdRadiusM` of `crowdCenter` at
/// the midpoint epoch boundary and the run continues.
SessionScenarioResult runFlashCrowdScenario(const EphemerisService& ephemeris,
                                            const SessionScenarioConfig& cfg,
                                            const Geodetic& crowdCenter,
                                            double crowdRadiusM,
                                            std::size_t crowdUsers);

/// Regional outage: at the midpoint epoch boundary every session within
/// `outageRadiusM` of `outageCenter` is disassociated; one epoch later the
/// dropped users re-associate (fresh certificates) and the run continues.
SessionScenarioResult runRegionalOutageScenario(
    const EphemerisService& ephemeris, const SessionScenarioConfig& cfg,
    const Geodetic& outageCenter, double outageRadiusM);

/// Diurnal load shift: each epoch boundary admits up to `arrivalsPerEpoch`
/// new users, each accepted with probability diurnalDemandFactor at its
/// longitude and the epoch's start-of-epoch UTC time — arrivals track the
/// evening peak as it sweeps westward.
SessionScenarioResult runDiurnalLoadShiftScenario(
    const EphemerisService& ephemeris, const SessionScenarioConfig& cfg,
    std::size_t arrivalsPerEpoch);

}  // namespace openspace
