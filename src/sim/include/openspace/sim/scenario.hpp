// End-to-end multi-provider scenario orchestration.
//
// A Scenario assembles everything the paper describes into one runnable
// system: several independent providers publish satellites to the shared
// ephemeris, ground stations and users sit at fixed sites, users associate
// and authenticate with their home ISP through ISLs, traffic flows through
// heterogeneous links, and every carried byte lands in the settlement
// ledgers. Examples and integration tests drive this type; the benchmarks
// use it for the ablation studies.
#pragma once

#include <memory>
#include <string>

#include <openspace/auth/association.hpp>
#include <openspace/econ/ledger.hpp>
#include <openspace/net/flows.hpp>
#include <openspace/net/forwarding.hpp>
#include <openspace/routing/ondemand.hpp>
#include <openspace/sim/fig2.hpp>

namespace openspace {

/// One provider joining the scenario.
struct ProviderSpec {
  std::string name;
  int satellites = 0;
  double laserFraction = 0.0;  ///< Fraction of the fleet with laser terminals.
  double transitTariffUsdPerGb = 0.05;  ///< Default rate charged to others.
};

/// One subscriber terminal.
struct UserSpec {
  std::string name;
  Geodetic location;
  std::size_t homeProviderIndex = 0;  ///< Index into ScenarioConfig::providers.
};

/// One gateway site.
struct StationSpec {
  std::string name;
  Geodetic location;
  std::size_t ownerProviderIndex = 0;
};

/// Scenario configuration.
struct ScenarioConfig {
  std::vector<ProviderSpec> providers;
  std::vector<StationSpec> stations;
  std::vector<UserSpec> users;
  double altitudeM = 780'000.0;
  /// true: all fleets are coordinated into one Walker-Star-like structure
  /// (phased planes split across providers). false: every provider's
  /// satellites fly independent random orbits (the uncoordinated case).
  bool coordinatedWalker = false;
  int walkerPlanes = 6;
  double inclinationRad = 1.508;  ///< ~86.4 deg.
  double minElevationRad = 0.1745;
  double beaconPeriodS = 2.0;
  std::uint64_t seed = 42;
};

/// Result of one adaptive simulation run (see runAdaptiveEpochs).
struct AdaptiveReport {
  /// Per-epoch mean latency; adaptation shows as epoch 0 (uninformed
  /// routes) being slower than later epochs once congestion state feeds
  /// back into route choice.
  std::vector<double> epochMeanLatencyS;
  std::vector<double> epochLossRate;
  std::size_t totalDelivered = 0;
  std::size_t totalDropped = 0;
  int reroutedFlows = 0;  ///< Flows whose path changed after feedback.
};

/// Result of one traffic epoch.
struct TrafficReport {
  std::size_t packetsOffered = 0;
  std::size_t packetsDelivered = 0;
  std::size_t packetsDropped = 0;
  double meanLatencyS = 0.0;
  double p95LatencyS = 0.0;
  double lossProbability = 0.0;
  bool ledgersCrossVerified = false;
  std::vector<SettlementItem> settlement;
  double totalSettlementUsd = 0.0;
};

class Scenario {
 public:
  /// Builds the whole system: ephemeris, capabilities, topology builder,
  /// RADIUS servers, settlement tariffs. Throws InvalidArgumentError on an
  /// empty provider list or providers without satellites.
  explicit Scenario(const ScenarioConfig& cfg);

  /// Providers are identified 1..N in config order.
  ProviderId providerId(std::size_t index) const;

  /// Topology snapshot at time t (nearest-k ISL wiring).
  NetworkGraph snapshot(double tSeconds) const;

  /// Associate user `userIndex` at time t against the snapshot: beacon
  /// scan, RADIUS over ISLs to the home provider's gateway, certificate.
  AssociationResult associateUser(std::size_t userIndex, double tSeconds);

  /// Run a traffic epoch: each user sends Poisson traffic at `rateBps` to
  /// its home provider's gateway over routes chosen by the congestion-aware
  /// router; carried bytes are settled per §3.
  TrafficReport runTrafficEpoch(double tSeconds, double durationS,
                                double rateBps, QosClass qos = QosClass::Standard);

  /// The §2.2/§5(2) closed loop: run `epochs` consecutive traffic epochs on
  /// the time-t snapshot. After each epoch, per-link utilization measured
  /// by the forwarding engine is converted into queueing-delay estimates
  /// (M/M/1) on the shared graph, and routes are recomputed — congestion
  /// the proactive table could not predict is discovered and avoided.
  /// Throws InvalidArgumentError for epochs < 1 or non-positive
  /// duration/rate.
  AdaptiveReport runAdaptiveEpochs(double tSeconds, int epochs,
                                   double epochDurationS, double rateBps);

  const EphemerisService& ephemeris() const noexcept { return ephemeris_; }
  const TopologyBuilder& topology() const noexcept { return *builder_; }
  SettlementEngine& settlement() noexcept { return settlement_; }
  NodeId userNode(std::size_t userIndex) const;
  /// Typed handle of station `stationIndex` (config order).
  GroundStationId stationId(std::size_t stationIndex) const;
  NodeId stationNode(std::size_t stationIndex) const;
  NodeId homeGatewayOf(std::size_t userIndex) const;
  const ScenarioConfig& config() const noexcept { return cfg_; }

  /// All beacons audible anywhere at time t (the shared broadcast medium;
  /// per-user RF range filtering happens at selection via the elevation
  /// mask).
  std::vector<BeaconMessage> beaconsAt(double tSeconds) const;

 private:
  ScenarioConfig cfg_;
  EphemerisService ephemeris_;
  std::unique_ptr<TopologyBuilder> builder_;
  std::vector<RadiusServer> radius_;  ///< One per provider.
  std::vector<AssociationAgent> agents_;
  std::vector<NodeId> userNodes_;
  std::vector<GroundStationId> stations_;
  SettlementEngine settlement_;
  BeaconSchedule beacons_;
  Rng rng_;
};

}  // namespace openspace
